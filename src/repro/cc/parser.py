"""Recursive-descent parser for the MCC C subset.

Produces the AST of :mod:`repro.cc.cast`.  Supported top level:
struct definitions (with flexible trailing array members) and function
definitions/declarations.  No typedefs, no function pointers, no globals —
the paper's kernels pass all state through parameters, which is also what
makes them specializable by DBrew.
"""

from __future__ import annotations

from repro.cc import cast as A
from repro.cc.ctypes import (
    CHAR, DOUBLE, FLOAT, INT, LONG, UCHAR, UINT, ULONG, VOID,
    CType, StructType, array_of, pointer_to,
)
from repro.cc.lexer import Token, tokenize
from repro.errors import CompileError

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

# binary precedence table: higher binds tighter
_BIN_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.structs: dict[str, StructType] = {}

    # -- token helpers ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept(self, text: str) -> bool:
        tok = self.peek()
        if tok.kind in ("punct", "kw") and tok.text == text:
            self.next()
            return True
        return False

    def expect(self, text: str) -> Token:
        tok = self.peek()
        if tok.kind in ("punct", "kw") and tok.text == text:
            return self.next()
        raise CompileError(f"line {tok.line}: expected {text!r}, got {tok.text!r}")

    def expect_ident(self) -> str:
        tok = self.next()
        if tok.kind != "ident":
            raise CompileError(f"line {tok.line}: expected identifier, got {tok.text!r}")
        return tok.text

    # -- types ---------------------------------------------------------------

    def at_type(self) -> bool:
        tok = self.peek()
        return tok.kind == "kw" and tok.text in (
            "int", "long", "double", "float", "char", "void", "struct",
            "const", "static", "unsigned",
        )

    def parse_base_type(self) -> CType:
        while self.accept("const") or self.accept("static"):
            pass
        unsigned = False
        if self.accept("unsigned"):
            unsigned = True
        tok = self.peek()
        if tok.text == "struct":
            self.next()
            name = self.expect_ident()
            st = self.structs.get(name)
            if st is None:
                st = StructType(name)
                self.structs[name] = st
            if self.peek().text == "{":
                self._parse_struct_body(st)
            return st.ctype
        mapping = {
            "void": VOID,
            "char": UCHAR if unsigned else CHAR,
            "int": UINT if unsigned else INT,
            "long": ULONG if unsigned else LONG,
            "double": DOUBLE,
            "float": FLOAT,
        }
        if tok.kind == "kw" and tok.text in mapping:
            self.next()
            base = mapping[tok.text]
            if tok.text == "long" and self.peek().text in ("long", "int"):
                self.next()  # long long / long int
            while self.accept("const"):
                pass
            return base
        raise CompileError(f"line {tok.line}: expected a type, got {tok.text!r}")

    def parse_pointers(self, base: CType) -> CType:
        t = base
        while self.accept("*"):
            while self.accept("const"):
                pass
            t = pointer_to(t)
        return t

    def _parse_struct_body(self, st: StructType) -> None:
        self.expect("{")
        members: list[tuple[str, CType, int]] = []
        while not self.accept("}"):
            base = self.parse_base_type()
            while True:
                mtype = self.parse_pointers(base)
                mname = self.expect_ident()
                count = 1
                if self.accept("["):
                    if self.peek().text == "]":
                        count = 0  # flexible array member
                    else:
                        tok = self.next()
                        if tok.kind != "int":
                            raise CompileError(
                                f"line {tok.line}: array size must be an integer literal"
                            )
                        count = int(tok.value)  # type: ignore[arg-type]
                    self.expect("]")
                members.append((mname, mtype, count))
                if not self.accept(","):
                    break
            self.expect(";")
        st.define(members)

    # -- expressions ------------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> A.Expr:
        lhs = self.parse_conditional()
        tok = self.peek()
        if tok.kind == "punct" and tok.text in _ASSIGN_OPS:
            self.next()
            rhs = self.parse_assignment()
            node: A.Expr = A.Assign(tok.text, lhs, rhs)
            node.line = tok.line
            return node
        return lhs

    def parse_conditional(self) -> A.Expr:
        cond = self.parse_binary(0)
        if self.accept("?"):
            then = self.parse_expr()
            self.expect(":")
            other = self.parse_conditional()
            return A.Conditional(cond, then, other)
        return cond

    def parse_binary(self, min_prec: int) -> A.Expr:
        lhs = self.parse_unary()
        while True:
            tok = self.peek()
            prec = _BIN_PREC.get(tok.text) if tok.kind == "punct" else None
            if prec is None or prec < min_prec:
                return lhs
            self.next()
            rhs = self.parse_binary(prec + 1)
            node = A.Binary(tok.text, lhs, rhs)
            node.line = tok.line
            lhs = node

    def parse_unary(self) -> A.Expr:
        tok = self.peek()
        if tok.text in ("-", "!", "~", "*", "&") and tok.kind == "punct":
            self.next()
            operand = self.parse_unary()
            node: A.Expr = A.Unary(tok.text, operand)
            node.line = tok.line
            return node
        if tok.text in ("++", "--"):
            self.next()
            operand = self.parse_unary()
            return A.Unary("pre" + tok.text, operand)
        if tok.text == "sizeof":
            self.next()
            self.expect("(")
            if self.at_type():
                t = self.parse_pointers(self.parse_base_type())
                self.expect(")")
                return A.SizeofType(t)
            inner = self.parse_expr()
            self.expect(")")
            return A.SizeofType(VOID)  # sizeof(expr) resolved in sema via ctype
        if tok.text == "(" and self._is_cast_ahead():
            self.next()
            t = self.parse_pointers(self.parse_base_type())
            self.expect(")")
            return A.Cast(t, self.parse_unary())
        return self.parse_postfix()

    def _is_cast_ahead(self) -> bool:
        if self.peek().text != "(":
            return False
        nxt = self.peek(1)
        return nxt.kind == "kw" and nxt.text in (
            "int", "long", "double", "float", "char", "void", "struct", "unsigned", "const",
        )

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if tok.text == "[":
                self.next()
                idx = self.parse_expr()
                self.expect("]")
                expr = A.Index(expr, idx)
            elif tok.text == ".":
                self.next()
                expr = A.Member(expr, self.expect_ident(), arrow=False)
            elif tok.text == "->":
                self.next()
                expr = A.Member(expr, self.expect_ident(), arrow=True)
            elif tok.text in ("++", "--"):
                self.next()
                expr = A.Unary("post" + tok.text, expr)
            else:
                return expr

    def parse_primary(self) -> A.Expr:
        tok = self.next()
        if tok.kind == "int":
            node: A.Expr = A.IntLit(int(tok.value))  # type: ignore[arg-type]
        elif tok.kind == "float":
            node = A.FloatLit(float(tok.value))  # type: ignore[arg-type]
        elif tok.kind == "ident":
            if self.peek().text == "(":
                self.next()
                args: list[A.Expr] = []
                if self.peek().text != ")":
                    args.append(self.parse_expr())
                    while self.accept(","):
                        args.append(self.parse_expr())
                self.expect(")")
                node = A.Call(tok.text, args)
            else:
                node = A.Ident(tok.text)
        elif tok.text == "(":
            node = self.parse_expr()
            self.expect(")")
        else:
            raise CompileError(f"line {tok.line}: unexpected token {tok.text!r}")
        node.line = tok.line
        return node

    # -- statements ----------------------------------------------------------

    def parse_stmt(self) -> A.Stmt:
        tok = self.peek()
        if tok.text == "{":
            return self.parse_block()
        if tok.text == "if":
            self.next()
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            then = self.parse_stmt()
            otherwise = self.parse_stmt() if self.accept("else") else None
            return A.If(cond, then, otherwise)
        if tok.text == "while":
            self.next()
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            return A.While(cond, self.parse_stmt())
        if tok.text == "do":
            self.next()
            body = self.parse_stmt()
            self.expect("while")
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            self.expect(";")
            return A.DoWhile(body, cond)
        if tok.text == "for":
            self.next()
            self.expect("(")
            init: A.Stmt | None = None
            if not self.accept(";"):
                if self.at_type():
                    init = self.parse_declaration()
                else:
                    init = A.ExprStmt(self.parse_expr())
                    self.expect(";")
            cond = None
            if not self.accept(";"):
                cond = self.parse_expr()
                self.expect(";")
            step = None
            if self.peek().text != ")":
                step = self.parse_expr()
            self.expect(")")
            return A.For(init, cond, step, self.parse_stmt())
        if tok.text == "return":
            self.next()
            value = None if self.peek().text == ";" else self.parse_expr()
            self.expect(";")
            return A.Return(value)
        if tok.text == "break":
            self.next()
            self.expect(";")
            return A.Break()
        if tok.text == "continue":
            self.next()
            self.expect(";")
            return A.Continue()
        if self.at_type():
            return self.parse_declaration()
        expr = self.parse_expr()
        self.expect(";")
        return A.ExprStmt(expr)

    def parse_declaration(self) -> A.Stmt:
        """One or more declarators; multiple become a Block of Decls."""
        base = self.parse_base_type()
        decls: list[A.Stmt] = []
        while True:
            t = self.parse_pointers(base)
            name = self.expect_ident()
            if self.accept("["):
                tok = self.next()
                if tok.kind != "int":
                    raise CompileError(f"line {tok.line}: local array size must be literal")
                t = array_of(t, int(tok.value))  # type: ignore[arg-type]
                self.expect("]")
            init = self.parse_expr() if self.accept("=") else None
            decls.append(A.Decl(name, t, init))
            if not self.accept(","):
                break
        self.expect(";")
        if len(decls) == 1:
            return decls[0]
        return A.Block(decls)

    def parse_block(self) -> A.Block:
        self.expect("{")
        stmts: list[A.Stmt] = []
        while not self.accept("}"):
            stmts.append(self.parse_stmt())
        return A.Block(stmts)

    # -- top level ----------------------------------------------------------

    def parse_program(self) -> A.Program:
        functions: list[A.FuncDef] = []
        while self.peek().kind != "eof":
            base = self.parse_base_type()
            if self.accept(";"):
                continue  # bare struct definition
            t = self.parse_pointers(base)
            name = self.expect_ident()
            self.expect("(")
            params: list[A.Param] = []
            if self.peek().text != ")":
                if self.peek().text == "void" and self.peek(1).text == ")":
                    self.next()
                else:
                    while True:
                        pbase = self.parse_base_type()
                        ptype = self.parse_pointers(pbase)
                        pname = self.expect_ident()
                        params.append(A.Param(pname, ptype))
                        if not self.accept(","):
                            break
            self.expect(")")
            if self.accept(";"):
                functions.append(A.FuncDef(name, t, params, None))
                continue
            body = self.parse_block()
            functions.append(A.FuncDef(name, t, params, body))
        return A.Program(functions, dict(self.structs))


def parse(source: str) -> A.Program:
    """Parse C source text into a Program AST."""
    return Parser(tokenize(source)).parse_program()
