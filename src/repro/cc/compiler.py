"""MCC compiler driver: C source -> machine code inside an Image.

``compile_c`` runs the whole pipeline and installs every defined function
into the image's static code region, returning a :class:`CompiledProgram`
with the symbol table, per-function TAC (for the vectorizer tests and
debugging), and per-function instruction listings (for DBrew and the
lifter tests that inspect compiler idioms).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.backend.emit import EmitOptions, emit_function
from repro.backend.opt import optimize
from repro.backend.tac import TFunc
from repro.cc.lower import lower_function
from repro.cc.parser import parse
from repro.cc.sema import analyze
from repro.cc.vectorize import try_vectorize
from repro.cpu.image import Image
from repro.errors import CompileError
from repro.x86.asm import Item, Label, assemble_full
from repro.x86.instr import Instruction


class RodataPool:
    """Interning constant pool backed by an image's rodata region."""

    def __init__(self, image: Image) -> None:
        self.image = image
        self._f64: dict[bytes, int] = {}
        self._blobs: dict[tuple[bytes, int], int] = {}

    def f64(self, value: float) -> int:
        key = struct.pack("<d", value)
        addr = self._f64.get(key)
        if addr is None:
            addr = self.image.alloc_rodata(key, align=8)
            self._f64[key] = addr
        return addr

    def data(self, payload: bytes, align: int = 16) -> int:
        key = (payload, align)
        addr = self._blobs.get(key)
        if addr is None:
            addr = self.image.alloc_rodata(payload, align=align)
            self._blobs[key] = addr
        return addr


@dataclass
class CompilerOptions:
    """MCC behaviour knobs.

    The defaults model ``gcc -O3 -mno-avx``: lea-chain constant multiplies
    and SSE auto-vectorization of recognized stencil loops.
    """

    vectorize: bool = True
    mul_style: str = "lea"
    const_addressing: str = "riprel"


@dataclass
class CompiledProgram:
    """Result of compiling one translation unit."""

    image: Image
    functions: dict[str, int]  # name -> entry address
    tac: dict[str, TFunc] = field(default_factory=dict)
    listings: dict[str, list[Instruction]] = field(default_factory=dict)
    vectorized: set[str] = field(default_factory=set)

    def disasm(self, name: str) -> str:
        from repro.x86.printer import format_block
        return format_block(self.listings[name])


def compile_c(
    source: str,
    image: Image | None = None,
    options: CompilerOptions | None = None,
    extra_symbols: dict[str, int] | None = None,
) -> CompiledProgram:
    """Compile C source and install all functions into ``image``."""
    options = options or CompilerOptions()
    image = image or Image()
    pool = RodataPool(image)
    program = parse(source)
    infos = analyze(program)

    emit_opts = EmitOptions(
        mul_style=options.mul_style,
        const_addressing=options.const_addressing,
    )

    items: list[Item] = []
    vectorized: set[str] = set()
    tac_by_name: dict[str, TFunc] = {}
    defined = [f for f in program.functions if f.body is not None]
    if not defined:
        raise CompileError("no function definitions in translation unit")
    for func in defined:
        tf = lower_function(func, infos[func.name], infos)
        optimize(tf)  # clean lowering artifacts so the vectorizer sees canon shape
        if options.vectorize and try_vectorize(tf):
            vectorized.add(func.name)
        optimize(tf)
        tac_by_name[func.name] = tf
        items.extend(emit_function(tf, pool, emit_opts, extra_symbols))

    base = image.next_code_addr()
    code, placed, labels = assemble_full(items, base)

    # carve the blob into per-function symbols
    func_addrs = {f.name: labels[f.name] for f in defined}
    image.add_function("$tu", code)  # reserve the space under a unit symbol
    del image.symbols["$tu"]
    listings: dict[str, list[Instruction]] = {}
    ordered = sorted(func_addrs.items(), key=lambda kv: kv[1])
    for i, (name, addr) in enumerate(ordered):
        end = ordered[i + 1][1] if i + 1 < len(ordered) else base + len(code)
        image.symbols[name] = addr
        image.func_sizes[name] = end - addr
        listings[name] = [ins for ins in placed if addr <= ins.addr < end]

    return CompiledProgram(
        image=image,
        functions=func_addrs,
        tac=tac_by_name,
        listings=listings,
        vectorized=vectorized,
    )
