"""SSE loop vectorizer for stencil-shaped innermost loops (GCC -O3 model).

Operates on TAC before the cleanup passes.  The recognizer matches the
counted-loop shape MCC's ``for`` lowering produces::

    head:  br l  i, limit -> body, exit
    body:  fload/lf/fadd/fsub/fmul ... ; fstore [sbase + i*8 + d] ; jmp step
    step:  add t, i, 1 ; mov i, t ; jmp head

with every ``fload`` addressing ``[base + i*8 + const]`` and the stored
value an expression DAG over those loads, f64 constants and +,-,*: exactly
a 2d stencil row sweep.  On a match the loop is rewritten to process two
elements per iteration with packed-double TAC ops:

* a scalar *peel* loop runs until the store address is 16-byte aligned
  (GCC's alignment peeling — the paper's Sec. VI-B notes GCC "includes
  alignment checks to perform aligned loads where possible" while LLVM's
  forced vectorization uses unaligned accesses throughout);
* the vector loop uses an aligned store and unaligned loads (the ±1-point
  neighbours of a stencil can never be co-aligned with the store);
* the original scalar loop remains as the remainder epilogue.

Loops with calls, integer side effects, or multiple stores are rejected —
real auto-vectorizers are exactly this narrow, which the paper leans on
(LLVM refuses the lifted loop entirely for lack of type metadata).
"""

from __future__ import annotations

from dataclasses import replace

from repro.backend.tac import TAddr, TBlock, TFunc, TInstr, VReg

_SCALAR_TO_VECTOR = {"fadd": "vadd", "fsub": "vsub", "fmul": "vmul"}


def _match_step(step: TBlock, ivar: VReg, head_label: str) -> bool:
    """Recognize `i += 1` in either fused or add+mov form."""
    ins = step.instrs
    if not ins or ins[-1].op != "jmp" or ins[-1].labels != (head_label,):
        return False
    body = ins[:-1]
    if len(body) == 1:
        (a,) = body
        return a.op == "add" and a.dst == ivar and a.a == ivar and a.b == 1
    if len(body) == 2:
        a, b = body
        return (
            a.op == "add" and a.a == ivar and a.b == 1 and a.dst is not None
            and b.op == "mov" and b.dst == ivar and b.a == a.dst
        )
    return False


def _find_candidate(func: TFunc) -> tuple[TBlock, TBlock, TBlock] | None:
    """Find (head, body, step) blocks of a vectorizable counted loop."""
    bmap = func.block_map()
    for head in func.blocks:
        term = head.terminator
        if term.op != "br" or term.cc != "l" or len(head.instrs) != 1:
            continue
        if not isinstance(term.a, VReg):
            continue
        body = bmap.get(term.labels[0])
        if body is None or body.terminator.op != "jmp":
            continue
        step = bmap.get(body.terminator.labels[0])
        if step is None:
            continue
        if not _match_step(step, term.a, head.label):
            continue
        return head, body, step
    return None


def try_vectorize(func: TFunc) -> bool:
    """Vectorize one innermost loop in place; returns True on success."""
    cand = _find_candidate(func)
    if cand is None:
        return False
    head, body, step = cand
    br = head.terminator
    ivar = br.a
    limit = br.b
    assert isinstance(ivar, VReg)

    # --- analyze the body ---------------------------------------------------
    loads: dict[VReg, TAddr] = {}
    computed: dict[VReg, TInstr] = {}
    consts: set[VReg] = set()
    store: TInstr | None = None
    for ins in body.instrs[:-1]:  # exclude the jmp
        if ins.op == "fload":
            assert ins.addr is not None and ins.dst is not None
            addr = ins.addr
            if addr.index != ivar or addr.scale != 8 or addr.base is None:
                return False
            loads[ins.dst] = addr
            computed[ins.dst] = ins
        elif ins.op in ("fadd", "fsub", "fmul"):
            assert ins.dst is not None
            computed[ins.dst] = ins
        elif ins.op == "lf":
            assert ins.dst is not None
            consts.add(ins.dst)
            computed[ins.dst] = ins
        elif ins.op == "fstore":
            if store is not None:
                return False
            store = ins
        else:
            return False
    if store is None or store.addr is None or not isinstance(store.a, VReg):
        return False
    saddr = store.addr
    if saddr.index != ivar or saddr.scale != 8 or saddr.base is None:
        return False
    if store.a not in computed:
        return False

    # every computation must feed the store (no stray side outputs)
    needed: set[VReg] = set()
    work = [store.a]
    while work:
        v = work.pop()
        if v in needed:
            continue
        needed.add(v)
        ins = computed.get(v)
        if ins is None:
            return False  # value defined outside the loop: not handled
        for u in (ins.a, ins.b):
            if isinstance(u, VReg) and u != ivar:
                if u in computed:
                    work.append(u)
                else:
                    return False
    for v in computed:
        if v not in needed:
            return False

    # --- build the vector body ----------------------------------------------
    vhead_label = func.new_label("vhead")
    vbody_label = func.new_label("vbody")
    vmap: dict[VReg, VReg] = {}

    def vreg_for(v: VReg) -> VReg:
        if v not in vmap:
            vmap[v] = func.new_vreg("v")
        return vmap[v]

    vinstrs: list[TInstr] = []
    for ins in body.instrs[:-1]:
        if ins is store:
            continue
        assert ins.dst is not None
        if ins.op == "fload":
            vinstrs.append(
                TInstr(op="vload", dst=vreg_for(ins.dst), addr=ins.addr, aligned=False)
            )
        elif ins.op == "lf":
            scalar = func.new_vreg("f")
            vinstrs.append(TInstr(op="lf", dst=scalar, fimm=ins.fimm))
            vinstrs.append(TInstr(op="vbroadcast", dst=vreg_for(ins.dst), a=scalar))
        else:
            assert isinstance(ins.a, VReg) and isinstance(ins.b, VReg)
            vinstrs.append(
                TInstr(op=_SCALAR_TO_VECTOR[ins.op], dst=vreg_for(ins.dst),
                       a=vreg_for(ins.a), b=vreg_for(ins.b))
            )
    vinstrs.append(TInstr(op="vstore", addr=saddr, a=vmap[store.a], aligned=True))
    vinstrs.append(TInstr(op="add", dst=ivar, a=ivar, b=2))
    vinstrs.append(TInstr(op="jmp", labels=(vhead_label,)))

    # --- stitch the CFG --------------------------------------------------------
    # The original head label becomes the alignment/peel entry so incoming
    # edges need no rewriting; the scalar loop is retained as the tail.
    entry_label = head.label
    tail_label = func.new_label("vtail")
    peel_label = func.new_label("vpeel")
    chk_label = func.new_label("valignchk")
    exit_label = br.labels[1]

    head.label = tail_label  # scalar loop head now serves the remainder

    # peel body: copy of the scalar body + step, looping to the entry check
    b_peel = TBlock(peel_label)
    for ins in body.instrs[:-1]:
        b_peel.instrs.append(replace(ins))
    for ins in step.instrs[:-1]:
        b_peel.instrs.append(replace(ins))
    b_peel.instrs.append(TInstr(op="jmp", labels=(entry_label,)))

    b_entry = TBlock(entry_label)
    b_entry.instrs.append(
        TInstr(op="br", cc="l", a=ivar, b=limit, labels=(chk_label, exit_label))
    )

    b_chk = TBlock(chk_label)
    taddr = func.new_vreg("i")
    tlow = func.new_vreg("i")
    b_chk.instrs.append(TInstr(op="lea", dst=taddr, addr=saddr))
    b_chk.instrs.append(TInstr(op="and", dst=tlow, a=taddr, b=15))
    b_chk.instrs.append(
        TInstr(op="br", cc="ne", a=tlow, b=0, labels=(peel_label, vhead_label))
    )

    b_vhead = TBlock(vhead_label)
    ip1 = func.new_vreg("i")
    b_vhead.instrs.append(TInstr(op="add", dst=ip1, a=ivar, b=1))
    b_vhead.instrs.append(
        TInstr(op="br", cc="l", a=ip1, b=limit, labels=(vbody_label, tail_label))
    )

    b_vbody = TBlock(vbody_label)
    b_vbody.instrs.extend(vinstrs)

    idx = func.blocks.index(head)
    func.blocks[idx:idx] = [b_entry, b_chk, b_peel, b_vhead, b_vbody]
    return True
