"""Type system for the MCC C subset.

Types are interned value objects.  Integer widths follow LP64:
``char``=1, ``int``=4, ``long``=8; pointers are 8 bytes.  Struct layout is
delegated to :mod:`repro.mem.layout` so compiled code and hand-built data
structures agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CompileError
from repro.mem.layout import StructLayout


@dataclass(frozen=True)
class CType:
    kind: str  # 'void', 'int', 'double', 'float', 'ptr', 'struct', 'func', 'array'
    size: int
    signed: bool = True
    pointee: "CType | None" = None
    struct: "StructType | None" = None
    ret: "CType | None" = None
    params: tuple["CType", ...] = ()
    elem: "CType | None" = None
    count: int = 0

    @property
    def is_integer(self) -> bool:
        return self.kind == "int"

    @property
    def is_float(self) -> bool:
        return self.kind in ("double", "float")

    @property
    def is_pointer(self) -> bool:
        return self.kind == "ptr"

    @property
    def is_scalar(self) -> bool:
        return self.kind in ("int", "double", "float", "ptr")

    def __str__(self) -> str:
        if self.kind == "int":
            base = {1: "char", 2: "short", 4: "int", 8: "long"}[self.size]
            return base if self.signed else f"unsigned {base}"
        if self.kind == "ptr":
            return f"{self.pointee}*"
        if self.kind == "struct":
            assert self.struct is not None
            return f"struct {self.struct.name}"
        if self.kind == "array":
            return f"{self.elem}[{self.count or ''}]"
        if self.kind == "func":
            return f"{self.ret}({', '.join(map(str, self.params))})"
        return self.kind


VOID = CType("void", 0)
CHAR = CType("int", 1)
UCHAR = CType("int", 1, signed=False)
INT = CType("int", 4)
UINT = CType("int", 4, signed=False)
LONG = CType("int", 8)
ULONG = CType("int", 8, signed=False)
DOUBLE = CType("double", 8)
FLOAT = CType("float", 4)


def pointer_to(t: CType) -> CType:
    return CType("ptr", 8, pointee=t)


def array_of(t: CType, count: int) -> CType:
    return CType("array", t.size * count, elem=t, count=count)


def func_type(ret: CType, params: tuple[CType, ...]) -> CType:
    return CType("func", 0, ret=ret, params=params)


class StructType:
    """A named struct with member types and a computed SysV layout."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.members: list[tuple[str, CType, int]] = []  # (name, type, count)
        self.layout: StructLayout | None = None
        self.ctype = CType("struct", 0, struct=self)

    def define(self, members: list[tuple[str, CType, int]]) -> None:
        """Fill in the member list and compute the layout (count 0 = flexible)."""
        if self.layout is not None:
            raise CompileError(f"struct {self.name} redefined")
        self.members = members
        layout_members: list[tuple[str, str | StructLayout, int]] = []
        for mname, mtype, count in members:
            layout_members.append((mname, _layout_kind(mtype), count))
        try:
            self.layout = StructLayout(self.name, layout_members)
        except ValueError as exc:
            raise CompileError(f"struct {self.name}: {exc}") from None
        object.__setattr__(self.ctype, "size", self.layout.size)

    @property
    def is_complete(self) -> bool:
        return self.layout is not None

    def member(self, name: str) -> tuple[CType, int]:
        """Return (type, byte offset) of a member; arrays decay later."""
        if self.layout is None:
            raise CompileError(f"struct {self.name} is incomplete")
        for mname, mtype, count in self.members:
            if mname == name:
                field_ = self.layout.fields[name]
                if count != 1:
                    return array_of(mtype, count), field_.offset
                return mtype, field_.offset
        raise CompileError(f"struct {self.name} has no member {name!r}")


def _layout_kind(t: CType) -> str | StructLayout:
    if t.kind == "int":
        return {1: "char", 2: "short", 4: "int", 8: "long"}[t.size]
    if t.kind == "double":
        return "double"
    if t.kind == "float":
        return "float"
    if t.kind == "ptr":
        return "ptr"
    if t.kind == "struct":
        assert t.struct is not None
        if t.struct.layout is None:
            raise CompileError(f"member of incomplete struct {t.struct.name}")
        return t.struct.layout
    raise CompileError(f"type {t} not allowed in struct")


def common_arith_type(a: CType, b: CType) -> CType:
    """Usual arithmetic conversions (subset: int widths + double)."""
    if a.kind == "double" or b.kind == "double":
        return DOUBLE
    if a.kind == "float" or b.kind == "float":
        return FLOAT if (a.kind != "double" and b.kind != "double") else DOUBLE
    if a.is_integer and b.is_integer:
        size = max(a.size, b.size, 4)  # integer promotion to >= int
        signed = a.signed if a.size >= b.size else b.signed
        if a.size == b.size:
            signed = a.signed and b.signed
        return CType("int", size, signed=signed)
    raise CompileError(f"invalid operands: {a} and {b}")
