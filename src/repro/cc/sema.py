"""Semantic analysis: name resolution, type checking, implicit conversions.

Annotates every expression node with ``ctype``, resolves identifiers to
uniquely renamed local slots (stored as ``node.resolved``), and inserts
explicit :class:`~repro.cc.cast.Cast` nodes for all implicit conversions so
lowering never has to reason about type promotion.
"""

from __future__ import annotations

from repro.cc import cast as A
from repro.cc.ctypes import (
    DOUBLE, INT, LONG, VOID,
    CType, StructType, common_arith_type, pointer_to,
)
from repro.errors import CompileError


class FunctionInfo:
    """Signature + local slot table for one function."""

    def __init__(self, func: A.FuncDef) -> None:
        self.name = func.name
        self.ret = func.ret
        self.params = [(p.name, p.ctype) for p in func.params]
        self.locals: dict[str, CType] = {}  # resolved name -> type

    @property
    def param_types(self) -> tuple[CType, ...]:
        return tuple(t for _n, t in self.params)


class Sema:
    def __init__(self, program: A.Program) -> None:
        self.program = program
        self.functions: dict[str, FunctionInfo] = {}
        self._scopes: list[dict[str, tuple[str, CType]]] = []
        self._current: FunctionInfo | None = None
        self._counter = 0

    # -- scopes ----------------------------------------------------------

    def push_scope(self) -> None:
        self._scopes.append({})

    def pop_scope(self) -> None:
        self._scopes.pop()

    def declare(self, name: str, ctype: CType) -> str:
        scope = self._scopes[-1]
        if name in scope:
            raise CompileError(f"redeclaration of {name!r}")
        self._counter += 1
        resolved = f"{name}.{self._counter}"
        scope[name] = (resolved, ctype)
        assert self._current is not None
        self._current.locals[resolved] = ctype
        return resolved

    def lookup(self, name: str) -> tuple[str, CType]:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        raise CompileError(f"use of undeclared identifier {name!r}")

    # -- driver -------------------------------------------------------------

    def run(self) -> dict[str, FunctionInfo]:
        for func in self.program.functions:
            if func.name in self.functions and func.body is not None:
                existing = self.functions[func.name]
                if existing.param_types != tuple(p.ctype for p in func.params):
                    raise CompileError(f"conflicting declaration of {func.name!r}")
            self.functions[func.name] = FunctionInfo(func)
        for func in self.program.functions:
            if func.body is not None:
                self._check_function(func)
        return self.functions

    def _check_function(self, func: A.FuncDef) -> None:
        info = self.functions[func.name]
        self._current = info
        self.push_scope()
        for p in func.params:
            if not (p.ctype.is_scalar):
                raise CompileError(
                    f"{func.name}: parameter {p.name!r} must be scalar "
                    "(struct-by-value is not in the subset)"
                )
            resolved = self.declare(p.name, p.ctype)
            p.name = resolved  # lowering reads the resolved name
        self._stmt(func.body)
        self.pop_scope()
        self._current = None

    # -- statements -----------------------------------------------------------

    def _stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Block):
            self.push_scope()
            for s in stmt.stmts:
                self._stmt(s)
            self.pop_scope()
        elif isinstance(stmt, A.Decl):
            if stmt.init is not None:
                value = self._expr(stmt.init)
                stmt.init = self._convert(value, stmt.ctype)
            stmt.name = self.declare(stmt.name, stmt.ctype)
        elif isinstance(stmt, A.ExprStmt):
            stmt.expr = self._expr(stmt.expr)
        elif isinstance(stmt, A.If):
            stmt.cond = self._scalar(self._expr(stmt.cond))
            self._stmt(stmt.then)
            if stmt.otherwise is not None:
                self._stmt(stmt.otherwise)
        elif isinstance(stmt, A.While):
            stmt.cond = self._scalar(self._expr(stmt.cond))
            self._stmt(stmt.body)
        elif isinstance(stmt, A.DoWhile):
            self._stmt(stmt.body)
            stmt.cond = self._scalar(self._expr(stmt.cond))
        elif isinstance(stmt, A.For):
            self.push_scope()
            if stmt.init is not None:
                self._stmt(stmt.init)
            if stmt.cond is not None:
                stmt.cond = self._scalar(self._expr(stmt.cond))
            if stmt.step is not None:
                stmt.step = self._expr(stmt.step)
            self._stmt(stmt.body)
            self.pop_scope()
        elif isinstance(stmt, A.Return):
            assert self._current is not None
            if stmt.value is not None:
                if self._current.ret is VOID:
                    raise CompileError(f"{self._current.name}: returning a value from void")
                stmt.value = self._convert(self._expr(stmt.value), self._current.ret)
            elif self._current.ret is not VOID:
                raise CompileError(f"{self._current.name}: missing return value")
        elif isinstance(stmt, (A.Break, A.Continue)):
            pass
        else:
            raise CompileError(f"unknown statement {stmt!r}")

    # -- expressions --------------------------------------------------------

    def _scalar(self, expr: A.Expr) -> A.Expr:
        assert expr.ctype is not None
        if not expr.ctype.is_scalar:
            raise CompileError(f"scalar required, got {expr.ctype}")
        return expr

    def _convert(self, expr: A.Expr, to: CType) -> A.Expr:
        """Insert an implicit cast when types differ."""
        src = expr.ctype
        assert src is not None
        if src == to:
            return expr
        ok = (
            (src.is_integer and (to.is_integer or to.is_float))
            or (src.is_float and (to.is_integer or to.is_float))
            or (src.is_pointer and to.is_pointer)
            or (src.is_integer and to.is_pointer and isinstance(expr, A.IntLit) and expr.value == 0)
            or (src.is_pointer and to.is_integer and to.size == 8)
        )
        if not ok:
            raise CompileError(f"cannot convert {src} to {to}")
        node = A.Cast(to, expr)
        node.ctype = to
        return node

    def _decay(self, expr: A.Expr) -> A.Expr:
        """Array-to-pointer decay."""
        assert expr.ctype is not None
        if expr.ctype.kind == "array":
            assert expr.ctype.elem is not None
            decayed = A.Unary("&decay", expr)
            decayed.ctype = pointer_to(expr.ctype.elem)
            return decayed
        return expr

    def _expr(self, expr: A.Expr) -> A.Expr:
        result = self._expr_inner(expr)
        assert result.ctype is not None, f"untyped expression {result!r}"
        return result

    def _expr_inner(self, expr: A.Expr) -> A.Expr:
        if isinstance(expr, A.IntLit):
            expr.ctype = LONG if expr.value > 2**31 - 1 or expr.value < -(2**31) else INT
            return expr
        if isinstance(expr, A.FloatLit):
            expr.ctype = DOUBLE
            return expr
        if isinstance(expr, A.Ident):
            resolved, ctype = self.lookup(expr.name)
            expr.resolved = resolved  # type: ignore[attr-defined]
            expr.ctype = ctype
            return self._decay(expr)
        if isinstance(expr, A.SizeofType):
            expr.ctype = LONG
            return expr
        if isinstance(expr, A.Cast):
            expr.operand = self._expr(expr.operand)
            expr.ctype = expr.to
            return expr
        if isinstance(expr, A.Unary):
            return self._unary(expr)
        if isinstance(expr, A.Binary):
            return self._binary(expr)
        if isinstance(expr, A.Assign):
            return self._assign(expr)
        if isinstance(expr, A.Conditional):
            expr.cond = self._scalar(self._expr(expr.cond))
            expr.then = self._expr(expr.then)
            expr.otherwise = self._expr(expr.otherwise)
            t = common_arith_type(expr.then.ctype, expr.otherwise.ctype) \
                if not expr.then.ctype.is_pointer else expr.then.ctype
            expr.then = self._convert(expr.then, t)
            expr.otherwise = self._convert(expr.otherwise, t)
            expr.ctype = t
            return expr
        if isinstance(expr, A.Call):
            info = self.functions.get(expr.func)
            if info is None:
                raise CompileError(f"call to undeclared function {expr.func!r}")
            if len(expr.args) != len(info.params):
                raise CompileError(
                    f"{expr.func} expects {len(info.params)} args, got {len(expr.args)}"
                )
            expr.args = [
                self._convert(self._expr(a), t)
                for a, (_n, t) in zip(expr.args, info.params)
            ]
            expr.ctype = info.ret
            return expr
        if isinstance(expr, A.Index):
            expr.base = self._expr(expr.base)
            expr.index = self._convert(self._expr(expr.index), LONG)
            bt = expr.base.ctype
            assert bt is not None
            if not bt.is_pointer:
                raise CompileError(f"cannot index {bt}")
            assert bt.pointee is not None
            expr.ctype = bt.pointee
            return self._decay(expr)
        if isinstance(expr, A.Member):
            expr.base = self._expr(expr.base)
            bt = expr.base.ctype
            assert bt is not None
            if expr.arrow:
                if not bt.is_pointer or bt.pointee is None or bt.pointee.kind != "struct":
                    raise CompileError(f"-> on non-struct-pointer {bt}")
                st = bt.pointee.struct
            else:
                if bt.kind != "struct":
                    raise CompileError(f". on non-struct {bt}")
                st = bt.struct
            assert isinstance(st, StructType)
            mtype, _off = st.member(expr.name)
            expr.ctype = mtype
            return self._decay(expr)
        raise CompileError(f"unknown expression {expr!r}")

    def _unary(self, expr: A.Unary) -> A.Expr:
        op = expr.op
        expr.operand = self._expr(expr.operand)
        t = expr.operand.ctype
        assert t is not None
        if op == "-":
            if not (t.is_integer or t.is_float):
                raise CompileError(f"unary - on {t}")
            expr.ctype = common_arith_type(t, INT) if t.is_integer else t
            expr.operand = self._convert(expr.operand, expr.ctype)
        elif op in ("!",):
            self._scalar(expr.operand)
            expr.ctype = INT
        elif op == "~":
            if not t.is_integer:
                raise CompileError(f"~ on {t}")
            expr.ctype = common_arith_type(t, INT)
            expr.operand = self._convert(expr.operand, expr.ctype)
        elif op == "*":
            if not t.is_pointer or t.pointee is None:
                raise CompileError(f"dereference of {t}")
            expr.ctype = t.pointee
            return self._decay(expr)
        elif op == "&":
            if not self._is_lvalue(expr.operand):
                raise CompileError("& requires an lvalue")
            expr.ctype = pointer_to(t)
        elif op in ("pre++", "pre--", "post++", "post--"):
            if not self._is_lvalue(expr.operand):
                raise CompileError(f"{op} requires an lvalue")
            if not (t.is_integer or t.is_pointer):
                raise CompileError(f"{op} on {t}")
            expr.ctype = t
        else:
            raise CompileError(f"unknown unary {op}")
        return expr

    def _binary(self, expr: A.Binary) -> A.Expr:
        op = expr.op
        expr.lhs = self._expr(expr.lhs)
        expr.rhs = self._expr(expr.rhs)
        lt, rt = expr.lhs.ctype, expr.rhs.ctype
        assert lt is not None and rt is not None
        if op in ("&&", "||"):
            self._scalar(expr.lhs)
            self._scalar(expr.rhs)
            expr.ctype = INT
            return expr
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if lt.is_pointer and rt.is_pointer:
                pass
            elif lt.is_pointer and rt.is_integer:
                expr.rhs = self._convert(expr.rhs, LONG)
            elif rt.is_pointer and lt.is_integer:
                expr.lhs = self._convert(expr.lhs, LONG)
            else:
                common = common_arith_type(lt, rt)
                expr.lhs = self._convert(expr.lhs, common)
                expr.rhs = self._convert(expr.rhs, common)
            expr.ctype = INT
            return expr
        if op in ("+", "-") and (lt.is_pointer or rt.is_pointer):
            if lt.is_pointer and rt.is_integer:
                expr.rhs = self._convert(expr.rhs, LONG)
                expr.ctype = lt
            elif rt.is_pointer and lt.is_integer and op == "+":
                expr.lhs, expr.rhs = expr.rhs, self._convert(expr.lhs, LONG)
                expr.ctype = rt
            elif lt.is_pointer and rt.is_pointer and op == "-":
                if lt.pointee != rt.pointee:
                    raise CompileError("pointer difference of unrelated types")
                expr.ctype = LONG
            else:
                raise CompileError(f"invalid pointer arithmetic {lt} {op} {rt}")
            return expr
        if op in ("<<", ">>"):
            if not (lt.is_integer and rt.is_integer):
                raise CompileError(f"shift on {lt}, {rt}")
            expr.lhs = self._convert(expr.lhs, common_arith_type(lt, INT))
            expr.rhs = self._convert(expr.rhs, INT)
            expr.ctype = expr.lhs.ctype
            return expr
        if op in ("&", "|", "^", "%") and not (lt.is_integer and rt.is_integer):
            raise CompileError(f"{op} on {lt}, {rt}")
        common = common_arith_type(lt, rt)
        expr.lhs = self._convert(expr.lhs, common)
        expr.rhs = self._convert(expr.rhs, common)
        expr.ctype = common
        return expr

    def _assign(self, expr: A.Assign) -> A.Expr:
        expr.target = self._expr(expr.target)
        if not self._is_lvalue(expr.target):
            raise CompileError("assignment target is not an lvalue")
        tt = expr.target.ctype
        assert tt is not None
        if expr.op != "=":
            # desugar a OP= b -> a = a OP b; that re-evaluates the target
            # expression, which is only sound without side effects in it
            if _has_side_effects(expr.target):
                raise CompileError(
                    "side effects in a compound-assignment target are not "
                    "supported (the target is evaluated twice)"
                )
            binop = expr.op[:-1]
            rhs = A.Binary(binop, expr.target, expr.value)
            rhs = self._binary(rhs)
            expr.op = "="
            expr.value = self._convert(rhs, tt)
        else:
            expr.value = self._convert(self._expr(expr.value), tt)
        expr.ctype = tt
        return expr

    @staticmethod
    def _is_lvalue(expr: A.Expr) -> bool:
        if isinstance(expr, (A.Ident, A.Index, A.Member)):
            return True
        if isinstance(expr, A.Unary) and expr.op == "*":
            return True
        return False


def _has_side_effects(expr: A.Expr) -> bool:
    """True when evaluating ``expr`` twice would differ from once."""
    if isinstance(expr, (A.Call, A.Assign)):
        return True
    if isinstance(expr, A.Unary) and expr.op in (
        "pre++", "pre--", "post++", "post--",
    ):
        return True
    for name in getattr(expr, "__dataclass_fields__", {}):
        child = getattr(expr, name)
        if isinstance(child, A.Expr) and _has_side_effects(child):
            return True
        if isinstance(child, list) and any(
            isinstance(c, A.Expr) and _has_side_effects(c) for c in child
        ):
            return True
    return False


def analyze(program: A.Program) -> dict[str, FunctionInfo]:
    """Run semantic analysis; returns per-function info keyed by name."""
    return Sema(program).run()
