"""Lowering: checked AST -> TAC.

Strategy (classic "promote to 64-bit"):

* every scalar local lives in one virtual register; narrow integer types
  are kept sign/zero-extended to 64 bits at loads and truncated at stores,
  so register arithmetic is uniformly 64-bit;
* address-taken locals and local arrays get frame slots;
* lvalues lower to :class:`~repro.backend.tac.TAddr` so x86 addressing
  modes (base + index*scale + disp) fall out naturally — this is what makes
  DBrew's and the lifter's address reconstruction realistic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.backend.tac import INVERT_CC, TAddr, TBlock, TFunc, TInstr, VReg
from repro.cc import cast as A
from repro.cc.ctypes import CType, DOUBLE, LONG, StructType
from repro.cc.sema import FunctionInfo
from repro.errors import CompileError

IntVal = Union[VReg, int]


@dataclass
class LValue:
    """A resolved assignable location."""

    kind: str  # 'var' (vreg-homed scalar) or 'mem'
    var: VReg | None = None
    addr: TAddr | None = None
    ctype: CType | None = None


def _cls_of(t: CType) -> str:
    if t.is_float:
        return "f"
    return "i"


def _int_cc(op: str, signed: bool) -> str:
    if signed:
        return {"<": "l", ">": "g", "<=": "le", ">=": "ge", "==": "e", "!=": "ne"}[op]
    return {"<": "b", ">": "a", "<=": "be", ">=": "ae", "==": "e", "!=": "ne"}[op]


def _float_cc(op: str) -> str:
    # ucomisd sets cf/zf like an unsigned compare
    return {"<": "b", ">": "a", "<=": "be", ">=": "ae", "==": "e", "!=": "ne"}[op]


class Lowerer:
    """Lowers one function."""

    def __init__(self, func: A.FuncDef, info: FunctionInfo,
                 functions: dict[str, FunctionInfo]) -> None:
        self.ast = func
        self.info = info
        self.functions = functions
        self.tf = TFunc(name=func.name)
        self.vars: dict[str, VReg] = {}
        self.var_types: dict[str, CType] = {}
        self.frame_vars: dict[str, tuple[int, CType]] = {}  # name -> (slot, type)
        self.block: TBlock | None = None
        self._loops: list[tuple[str, str]] = []  # (break label, continue label)
        self._addr_taken: set[str] = set()

    # -- emission helpers ------------------------------------------------------

    def emit(self, **kw: object) -> TInstr:
        ins = TInstr(**kw)  # type: ignore[arg-type]
        assert self.block is not None, "emission outside a block"
        self.block.instrs.append(ins)
        return ins

    def new_block(self, label: str) -> None:
        self.block = self.tf.block(label)

    def terminated(self) -> bool:
        return bool(self.block and self.block.instrs and self.block.instrs[-1].is_terminator)

    def ensure_terminated(self, label: str) -> None:
        if not self.terminated():
            self.emit(op="jmp", labels=(label,))

    # -- driver ----------------------------------------------------------------

    def run(self) -> TFunc:
        assert self.ast.body is not None
        self._find_address_taken(self.ast.body)
        self.tf.ret_cls = None if self.ast.ret.kind == "void" else _cls_of(self.ast.ret)
        self.new_block("entry")
        iparams: list[VReg] = []
        fparams: list[VReg] = []
        for p in self.ast.params:
            v = self._declare_var(p.name, p.ctype)
            if _cls_of(p.ctype) == "f":
                fparams.append(v if v is not None else self._frame_param(p))
            else:
                iparams.append(v if v is not None else self._frame_param(p))
        self.tf.iparams = tuple(iparams)
        self.tf.fparams = tuple(fparams)
        self._stmt(self.ast.body)
        if not self.terminated():
            if self.tf.ret_cls is None:
                self.emit(op="ret")
            else:
                # C allows missing return; result is unspecified -> return 0
                zero = self.tf.new_vreg(self.tf.ret_cls)
                if self.tf.ret_cls == "i":
                    self.emit(op="li", dst=zero, imm=0)
                else:
                    self.emit(op="lf", dst=zero, fimm=0.0)
                self.emit(op="ret", a=zero)
        return self.tf

    def _frame_param(self, p: A.Param) -> VReg:
        raise CompileError(f"address-taken parameter {p.name!r} not supported")

    def _declare_var(self, name: str, ctype: CType) -> VReg | None:
        """Give a local a home; returns its vreg, or None if frame-allocated."""
        needs_memory = (
            name in self._addr_taken
            or ctype.kind in ("array", "struct")
        )
        if needs_memory:
            size = max(ctype.size, 1)
            align = 16 if size >= 16 else 8
            slot = self.tf.new_slot(size, align)
            self.frame_vars[name] = (slot, ctype)
            return None
        v = self.tf.new_vreg(_cls_of(ctype))
        self.vars[name] = v
        self.var_types[name] = ctype
        return v

    def _find_address_taken(self, node: object) -> None:
        if isinstance(node, A.Unary) and node.op == "&":
            target = node.operand
            if isinstance(target, A.Ident):
                # sema renames later; record by original or resolved name
                self._addr_taken.add(getattr(target, "resolved", target.name))
        for child in _children(node):
            self._find_address_taken(child)

    # -- statements --------------------------------------------------------------

    def _stmt(self, stmt: A.Stmt) -> None:
        if self.terminated() and not isinstance(stmt, A.Block):
            return  # unreachable code after return/break
        if isinstance(stmt, A.Block):
            for s in stmt.stmts:
                self._stmt(s)
        elif isinstance(stmt, A.Decl):
            v = self._declare_var(stmt.name, stmt.ctype)
            if stmt.init is not None:
                if v is None:
                    slot, _ = self.frame_vars[stmt.name]
                    base = self.tf.new_vreg("i")
                    self.emit(op="frame", dst=base, slot=slot)
                    self._store(TAddr(base=base), stmt.init, stmt.ctype)
                else:
                    self._eval_into(stmt.init, v)
        elif isinstance(stmt, A.ExprStmt):
            self._expr(stmt.expr)
        elif isinstance(stmt, A.If):
            lt = self.tf.new_label("then")
            lf = self.tf.new_label("else")
            lj = self.tf.new_label("endif")
            self._cond(stmt.cond, lt, lf)
            self.new_block(lt)
            self._stmt(stmt.then)
            self.ensure_terminated(lj)
            self.new_block(lf)
            if stmt.otherwise is not None:
                self._stmt(stmt.otherwise)
            self.ensure_terminated(lj)
            self.new_block(lj)
        elif isinstance(stmt, A.While):
            lh = self.tf.new_label("whead")
            lb = self.tf.new_label("wbody")
            le = self.tf.new_label("wend")
            self.ensure_terminated(lh)
            self.new_block(lh)
            self._cond(stmt.cond, lb, le)
            self.new_block(lb)
            self._loops.append((le, lh))
            self._stmt(stmt.body)
            self._loops.pop()
            self.ensure_terminated(lh)
            self.new_block(le)
        elif isinstance(stmt, A.DoWhile):
            lb = self.tf.new_label("dbody")
            lc = self.tf.new_label("dcond")
            le = self.tf.new_label("dend")
            self.ensure_terminated(lb)
            self.new_block(lb)
            self._loops.append((le, lc))
            self._stmt(stmt.body)
            self._loops.pop()
            self.ensure_terminated(lc)
            self.new_block(lc)
            self._cond(stmt.cond, lb, le)
            self.new_block(le)
        elif isinstance(stmt, A.For):
            if stmt.init is not None:
                self._stmt(stmt.init)
            lh = self.tf.new_label("fhead")
            lb = self.tf.new_label("fbody")
            ls = self.tf.new_label("fstep")
            le = self.tf.new_label("fend")
            self.ensure_terminated(lh)
            self.new_block(lh)
            if stmt.cond is not None:
                self._cond(stmt.cond, lb, le)
            else:
                self.emit(op="jmp", labels=(lb,))
            self.new_block(lb)
            self._loops.append((le, ls))
            self._stmt(stmt.body)
            self._loops.pop()
            self.ensure_terminated(ls)
            self.new_block(ls)
            if stmt.step is not None:
                self._expr(stmt.step)
            self.ensure_terminated(lh)
            self.new_block(le)
        elif isinstance(stmt, A.Return):
            if stmt.value is None:
                self.emit(op="ret")
            else:
                v = self._expr_vreg(stmt.value)
                self.emit(op="ret", a=v)
            # block stays terminated; trailing dead statements are skipped
        elif isinstance(stmt, A.Break):
            if not self._loops:
                raise CompileError("break outside a loop")
            self.emit(op="jmp", labels=(self._loops[-1][0],))
            self.new_block(self.tf.new_label("after_break"))
        elif isinstance(stmt, A.Continue):
            if not self._loops:
                raise CompileError("continue outside a loop")
            self.emit(op="jmp", labels=(self._loops[-1][1],))
            self.new_block(self.tf.new_label("after_continue"))
        else:
            raise CompileError(f"cannot lower statement {stmt!r}")

    # -- conditions ----------------------------------------------------------

    def _cond(self, expr: A.Expr, lt: str, lf: str) -> None:
        if isinstance(expr, A.Binary) and expr.op in ("<", ">", "<=", ">=", "==", "!="):
            t = expr.lhs.ctype
            assert t is not None
            if t.is_float:
                a = self._expr_vreg(expr.lhs)
                b = self._expr_vreg(expr.rhs)
                self.emit(op="fbr", cc=_float_cc(expr.op), a=a, b=b, labels=(lt, lf))
            else:
                a = self._expr_int(expr.lhs)
                b = self._expr_int(expr.rhs)
                signed = not (t.is_integer and not t.signed)
                if isinstance(a, int) and isinstance(b, int):
                    taken = _const_compare(expr.op, a, b, signed)
                    self.emit(op="jmp", labels=(lt if taken else lf,))
                    return
                if isinstance(a, int):
                    a_v = self.tf.new_vreg("i")
                    self.emit(op="li", dst=a_v, imm=a)
                    a = a_v
                self.emit(op="br", cc=_int_cc(expr.op, signed), a=a, b=b,
                          signed=signed, labels=(lt, lf))
            return
        if isinstance(expr, A.Binary) and expr.op == "&&":
            mid = self.tf.new_label("and")
            self._cond(expr.lhs, mid, lf)
            self.new_block(mid)
            self._cond(expr.rhs, lt, lf)
            return
        if isinstance(expr, A.Binary) and expr.op == "||":
            mid = self.tf.new_label("or")
            self._cond(expr.lhs, lt, mid)
            self.new_block(mid)
            self._cond(expr.rhs, lt, lf)
            return
        if isinstance(expr, A.Unary) and expr.op == "!":
            self._cond(expr.operand, lf, lt)
            return
        t = expr.ctype
        assert t is not None
        if t.is_float:
            a = self._expr_vreg(expr)
            zero = self.tf.new_vreg("f")
            self.emit(op="lf", dst=zero, fimm=0.0)
            self.emit(op="fbr", cc="ne", a=a, b=zero, labels=(lt, lf))
            return
        a = self._expr_int(expr)
        if isinstance(a, int):
            self.emit(op="jmp", labels=(lt if a != 0 else lf,))
            return
        self.emit(op="br", cc="ne", a=a, b=0, labels=(lt, lf))

    # -- expressions -----------------------------------------------------------

    def _expr(self, expr: A.Expr) -> IntVal | VReg | None:
        """Evaluate for value (may be None for void calls)."""
        t = expr.ctype
        assert t is not None
        if isinstance(expr, A.IntLit):
            return expr.value
        if isinstance(expr, A.FloatLit):
            v = self.tf.new_vreg("f")
            self.emit(op="lf", dst=v, fimm=expr.value)
            return v
        if isinstance(expr, A.SizeofType):
            return expr.of.size
        if isinstance(expr, A.Ident):
            name = expr.resolved  # type: ignore[attr-defined]
            if name in self.vars:
                return self.vars[name]
            lv = self._lvalue(expr)
            return self._load(lv)
        if isinstance(expr, A.Cast):
            return self._cast(expr)
        if isinstance(expr, A.Unary):
            return self._unary(expr)
        if isinstance(expr, A.Binary):
            return self._binary(expr)
        if isinstance(expr, A.Assign):
            return self._assign(expr)
        if isinstance(expr, A.Conditional):
            return self._conditional(expr)
        if isinstance(expr, A.Call):
            return self._call(expr)
        if isinstance(expr, (A.Index, A.Member)):
            lv = self._lvalue(expr)
            return self._load(lv)
        raise CompileError(f"cannot lower expression {expr!r}")

    def _expr_int(self, expr: A.Expr) -> IntVal:
        v = self._expr(expr)
        assert v is not None and (isinstance(v, int) or v.cls == "i")
        return v

    def _expr_vreg(self, expr: A.Expr) -> VReg:
        v = self._expr(expr)
        if isinstance(v, int):
            r = self.tf.new_vreg("i")
            self.emit(op="li", dst=r, imm=v)
            return r
        assert v is not None
        return v

    def _eval_into(self, expr: A.Expr, dst: VReg) -> None:
        v = self._expr(expr)
        if isinstance(v, int):
            self.emit(op="li", dst=dst, imm=v)
        elif v is not None and v != dst:
            self.emit(op="mov", dst=dst, a=v)

    # -- lvalues -------------------------------------------------------------

    def _lvalue(self, expr: A.Expr) -> LValue:
        t = expr.ctype
        assert t is not None
        if isinstance(expr, A.Ident):
            name = expr.resolved  # type: ignore[attr-defined]
            if name in self.vars:
                return LValue("var", var=self.vars[name], ctype=t)
            slot, ctype = self.frame_vars[name]
            base = self.tf.new_vreg("i")
            self.emit(op="frame", dst=base, slot=slot)
            return LValue("mem", addr=TAddr(base=base), ctype=ctype)
        if isinstance(expr, A.Unary) and expr.op == "*":
            ptr = self._expr_vreg(expr.operand)
            return LValue("mem", addr=TAddr(base=ptr), ctype=t)
        if isinstance(expr, A.Unary) and expr.op == "&decay":
            return self._lvalue(expr.operand)
        if isinstance(expr, A.Index):
            base = self._expr_vreg(expr.base)
            elem = t
            idx_expr, const_off = _split_index(expr.index)
            disp = const_off * elem.size
            if idx_expr is None:
                return LValue("mem", addr=TAddr(base=base, disp=disp), ctype=t)
            idx = self._expr_int(idx_expr)
            if isinstance(idx, int):
                return LValue(
                    "mem", addr=TAddr(base=base, disp=disp + idx * elem.size), ctype=t
                )
            if elem.size in (1, 2, 4, 8):
                return LValue(
                    "mem",
                    addr=TAddr(base=base, index=idx, scale=elem.size, disp=disp),
                    ctype=t,
                )
            scaled = self.tf.new_vreg("i")
            self.emit(op="mul", dst=scaled, a=idx, b=elem.size)
            return LValue(
                "mem", addr=TAddr(base=base, index=scaled, scale=1, disp=disp), ctype=t
            )
        if isinstance(expr, A.Member):
            if expr.arrow:
                base = self._expr_vreg(expr.base)
                bt = expr.base.ctype
                assert bt is not None and bt.pointee is not None
                st = bt.pointee.struct
                assert isinstance(st, StructType)
                _mt, off = st.member(expr.name)
                return LValue("mem", addr=TAddr(base=base, disp=off), ctype=t)
            base_lv = self._lvalue(expr.base)
            assert base_lv.kind == "mem" and base_lv.addr is not None
            bt = expr.base.ctype
            assert bt is not None
            st = bt.struct
            assert isinstance(st, StructType)
            _mt, off = st.member(expr.name)
            a = base_lv.addr
            return LValue("mem", addr=TAddr(base=a.base, index=a.index,
                                            scale=a.scale, disp=a.disp + off,
                                            sym=a.sym), ctype=t)
        raise CompileError(f"not an lvalue: {expr!r}")

    def _addr_of(self, lv: LValue) -> VReg:
        assert lv.kind == "mem" and lv.addr is not None
        v = self.tf.new_vreg("i")
        self.emit(op="lea", dst=v, addr=lv.addr)
        return v

    def _load(self, lv: LValue) -> IntVal | VReg:
        t = lv.ctype
        assert t is not None
        if lv.kind == "var":
            assert lv.var is not None
            return lv.var
        assert lv.addr is not None
        if t.kind == "array":
            return self._addr_of(lv)  # decay
        if t.is_float:
            if t.kind == "float":
                raise CompileError("binary32 float is outside the subset; use double")
            v = self.tf.new_vreg("f")
            self.emit(op="fload", dst=v, addr=lv.addr)
            return v
        v = self.tf.new_vreg("i")
        width = 8 if t.is_pointer else t.size
        self.emit(op="load", dst=v, addr=lv.addr, width=width,
                  signed=t.signed if t.is_integer else False)
        return v

    def _store(self, addr: TAddr, value_expr: A.Expr, t: CType) -> IntVal | VReg:
        if t.is_float:
            v = self._expr_vreg(value_expr)
            self.emit(op="fstore", addr=addr, a=v)
            return v
        v = self._expr_int(value_expr)
        width = 8 if t.is_pointer else t.size
        self.emit(op="store", addr=addr, a=v, width=width)
        return v

    # -- expression families ------------------------------------------------------

    def _cast(self, expr: A.Cast) -> IntVal | VReg:
        src_t = expr.operand.ctype
        dst_t = expr.to
        assert src_t is not None
        if dst_t.kind == "float" or src_t.kind == "float":
            raise CompileError("binary32 float is outside the subset; use double")
        if src_t.is_float and dst_t.is_float:
            return self._expr(expr.operand)
        if src_t.is_float and dst_t.is_integer:
            a = self._expr_vreg(expr.operand)
            v = self.tf.new_vreg("i")
            self.emit(op="f2i", dst=v, a=a)
            if dst_t.size < 8:
                w = self.tf.new_vreg("i")
                self.emit(op="ext", dst=w, a=v, width=dst_t.size, signed=dst_t.signed)
                return w
            return v
        if src_t.is_integer and dst_t.is_float:
            a = self._expr(expr.operand)
            if isinstance(a, int):
                v = self.tf.new_vreg("f")
                self.emit(op="lf", dst=v, fimm=float(a))
                return v
            v = self.tf.new_vreg("f")
            self.emit(op="i2f", dst=v, a=a)
            return v
        # int/pointer <-> int/pointer
        a = self._expr(expr.operand)
        if isinstance(a, int):
            if dst_t.is_integer and dst_t.size < 8:
                bits = dst_t.size * 8
                a &= (1 << bits) - 1
                if dst_t.signed and a >> (bits - 1):
                    a -= 1 << bits
            return a
        if dst_t.is_integer and dst_t.size < 8 and src_t.size > dst_t.size:
            v = self.tf.new_vreg("i")
            self.emit(op="ext", dst=v, a=a, width=dst_t.size, signed=dst_t.signed)
            return v
        return a

    def _unary(self, expr: A.Unary) -> IntVal | VReg:
        op = expr.op
        t = expr.ctype
        assert t is not None
        if op == "&decay":
            return self._addr_of(self._lvalue(expr.operand))
        if op == "&":
            return self._addr_of(self._lvalue(expr.operand))
        if op == "*":
            return self._load(self._lvalue(expr))
        if op == "-":
            if t.is_float:
                a = self._expr_vreg(expr.operand)
                v = self.tf.new_vreg("f")
                self.emit(op="fneg", dst=v, a=a)
                return v
            a = self._expr_int(expr.operand)
            if isinstance(a, int):
                return -a
            v = self.tf.new_vreg("i")
            self.emit(op="neg", dst=v, a=a)
            return v
        if op == "~":
            a = self._expr_int(expr.operand)
            if isinstance(a, int):
                return ~a
            v = self.tf.new_vreg("i")
            self.emit(op="not", dst=v, a=a)
            return v
        if op == "!":
            a = self._expr(expr.operand)
            if isinstance(a, int):
                return int(a == 0)
            assert isinstance(a, VReg)
            if a.cls == "f":
                zero = self.tf.new_vreg("f")
                self.emit(op="lf", dst=zero, fimm=0.0)
                # !x on a double: compare equal to zero
                lt = self.tf.new_label("nz1")
                lf = self.tf.new_label("nz0")
                lj = self.tf.new_label("nzj")
                out = self.tf.new_vreg("i")
                self.emit(op="fbr", cc="e", a=a, b=zero, labels=(lt, lf))
                self.new_block(lt)
                self.emit(op="li", dst=out, imm=1)
                self.emit(op="jmp", labels=(lj,))
                self.new_block(lf)
                self.emit(op="li", dst=out, imm=0)
                self.emit(op="jmp", labels=(lj,))
                self.new_block(lj)
                return out
            v = self.tf.new_vreg("i")
            self.emit(op="setcc", dst=v, cc="e", a=a, b=0)
            return v
        if op in ("pre++", "pre--", "post++", "post--"):
            return self._incdec(expr)
        raise CompileError(f"cannot lower unary {op}")

    def _incdec(self, expr: A.Unary) -> IntVal | VReg:
        target = expr.operand
        t = target.ctype
        assert t is not None
        step = t.pointee.size if t.is_pointer and t.pointee else 1
        delta = step if "++" in expr.op else -step
        lv = self._lvalue(target)
        old = self._load(lv)
        old_v = old if isinstance(old, VReg) else None
        if old_v is None:
            r = self.tf.new_vreg("i")
            self.emit(op="li", dst=r, imm=old)  # type: ignore[arg-type]
            old_v = r
        if expr.op.startswith("post"):
            saved = self.tf.new_vreg("i")
            self.emit(op="mov", dst=saved, a=old_v)
        new = self.tf.new_vreg("i")
        self.emit(op="add", dst=new, a=old_v, b=delta)
        if lv.kind == "var":
            assert lv.var is not None
            self.emit(op="mov", dst=lv.var, a=new)
        else:
            assert lv.addr is not None
            width = 8 if t.is_pointer else t.size
            self.emit(op="store", addr=lv.addr, a=new, width=width)
        return saved if expr.op.startswith("post") else new

    def _binary(self, expr: A.Binary) -> IntVal | VReg:
        op = expr.op
        t = expr.ctype
        assert t is not None
        if op in ("&&", "||"):
            out = self.tf.new_vreg("i")
            lt = self.tf.new_label("b1")
            lf = self.tf.new_label("b0")
            lj = self.tf.new_label("bj")
            self._cond(expr, lt, lf)
            self.new_block(lt)
            self.emit(op="li", dst=out, imm=1)
            self.emit(op="jmp", labels=(lj,))
            self.new_block(lf)
            self.emit(op="li", dst=out, imm=0)
            self.emit(op="jmp", labels=(lj,))
            self.new_block(lj)
            return out
        if op in ("<", ">", "<=", ">=", "==", "!="):
            lt_t = expr.lhs.ctype
            assert lt_t is not None
            if lt_t.is_float:
                out = self.tf.new_vreg("i")
                l1 = self.tf.new_label("c1")
                l0 = self.tf.new_label("c0")
                lj = self.tf.new_label("cj")
                self._cond(expr, l1, l0)
                self.new_block(l1)
                self.emit(op="li", dst=out, imm=1)
                self.emit(op="jmp", labels=(lj,))
                self.new_block(l0)
                self.emit(op="li", dst=out, imm=0)
                self.emit(op="jmp", labels=(lj,))
                self.new_block(lj)
                return out
            a = self._expr_int(expr.lhs)
            b = self._expr_int(expr.rhs)
            signed = not (lt_t.is_integer and not lt_t.signed)
            if isinstance(a, int) and isinstance(b, int):
                return int(_const_compare(op, a, b, signed))
            if isinstance(a, int):
                r = self.tf.new_vreg("i")
                self.emit(op="li", dst=r, imm=a)
                a = r
            v = self.tf.new_vreg("i")
            self.emit(op="setcc", dst=v, cc=_int_cc(op, signed), a=a, b=b, signed=signed)
            return v

        # pointer arithmetic
        lt_t, rt_t = expr.lhs.ctype, expr.rhs.ctype
        assert lt_t is not None and rt_t is not None
        if op in ("+", "-") and lt_t.is_pointer:
            base = self._expr_vreg(expr.lhs)
            if rt_t.is_pointer:  # pointer difference
                other = self._expr_vreg(expr.rhs)
                diff = self.tf.new_vreg("i")
                self.emit(op="sub", dst=diff, a=base, b=other)
                assert lt_t.pointee is not None
                size = lt_t.pointee.size
                if size > 1:
                    out = self.tf.new_vreg("i")
                    if size & (size - 1) == 0:
                        self.emit(op="sar", dst=out, a=diff, b=size.bit_length() - 1)
                    else:
                        self.emit(op="div", dst=out, a=diff, b=size)
                    return out
                return diff
            idx = self._expr_int(expr.rhs)
            assert lt_t.pointee is not None
            size = lt_t.pointee.size
            out = self.tf.new_vreg("i")
            if isinstance(idx, int):
                self.emit(op="add" if op == "+" else "sub", dst=out, a=base, b=idx * size)
                return out
            if size != 1:
                scaled = self.tf.new_vreg("i")
                self.emit(op="mul", dst=scaled, a=idx, b=size)
                idx = scaled
            self.emit(op="add" if op == "+" else "sub", dst=out, a=base, b=idx)
            return out

        if t.is_float:
            a = self._expr_vreg(expr.lhs)
            b = self._expr_vreg(expr.rhs)
            v = self.tf.new_vreg("f")
            fop = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}.get(op)
            if fop is None:
                raise CompileError(f"{op} on doubles")
            self.emit(op=fop, dst=v, a=a, b=b)
            return v

        a = self._expr_int(expr.lhs)
        b = self._expr_int(expr.rhs)
        if isinstance(a, int) and isinstance(b, int):
            return _const_int_binop(op, a, b)
        top = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
               "&": "and", "|": "or", "^": "xor", "<<": "shl",
               ">>": "sar" if t.signed else "shr"}.get(op)
        if top is None:
            raise CompileError(f"cannot lower binary {op}")
        if isinstance(a, int) and top in ("add", "mul", "and", "or", "xor"):
            a, b = b, a  # commute immediate to the right
        if isinstance(a, int):
            r = self.tf.new_vreg("i")
            self.emit(op="li", dst=r, imm=a)
            a = r
        v = self.tf.new_vreg("i")
        self.emit(op=top, dst=v, a=a, b=b)
        return v

    def _assign(self, expr: A.Assign) -> IntVal | VReg:
        target = expr.target
        t = target.ctype
        assert t is not None
        lv = self._lvalue(target)
        if lv.kind == "var":
            assert lv.var is not None
            self._eval_into(expr.value, lv.var)
            return lv.var
        assert lv.addr is not None
        return self._store(lv.addr, expr.value, t)

    def _conditional(self, expr: A.Conditional) -> VReg:
        t = expr.ctype
        assert t is not None
        out = self.tf.new_vreg(_cls_of(t))
        lt = self.tf.new_label("q1")
        lf = self.tf.new_label("q0")
        lj = self.tf.new_label("qj")
        self._cond(expr.cond, lt, lf)
        self.new_block(lt)
        self._eval_into(expr.then, out)
        self.emit(op="jmp", labels=(lj,))
        self.new_block(lf)
        self._eval_into(expr.otherwise, out)
        self.emit(op="jmp", labels=(lj,))
        self.new_block(lj)
        return out

    def _call(self, expr: A.Call) -> VReg | None:
        info = self.functions[expr.func]
        iargs: list[VReg] = []
        fargs: list[VReg] = []
        for arg in expr.args:
            at = arg.ctype
            assert at is not None
            if at.is_float:
                fargs.append(self._expr_vreg(arg))
            else:
                iargs.append(self._expr_vreg(arg))
        if len(iargs) > 6 or len(fargs) > 8:
            raise CompileError(f"{expr.func}: too many arguments for register passing")
        dst = None
        if info.ret.kind != "void":
            dst = self.tf.new_vreg(_cls_of(info.ret))
        self.emit(op="call", dst=dst, func=expr.func,
                  iargs=tuple(iargs), fargs=tuple(fargs))
        return dst


def _split_index(expr: A.Expr) -> tuple[A.Expr | None, int]:
    """Peel a constant offset out of an index expression.

    ``x + 3`` -> (x, 3); ``x - SZ`` -> (x, -SZ); constants fold entirely.
    Looks through the int->long casts sema inserts (legal because signed
    overflow in the index is UB in C, which is exactly the license GCC
    uses to do the same folding).
    """
    e: A.Expr = expr
    while isinstance(e, A.Cast) and e.to.is_integer and \
            e.operand.ctype is not None and e.operand.ctype.is_integer:
        e = e.operand
    if isinstance(e, A.IntLit):
        return None, e.value
    if isinstance(e, A.Binary) and e.op in ("+", "-"):
        lhs, rhs = e.lhs, e.rhs
        while isinstance(rhs, A.Cast) and rhs.to.is_integer:
            rhs = rhs.operand
        if isinstance(rhs, A.IntLit):
            inner, c = _split_index(lhs)
            off = rhs.value if e.op == "+" else -rhs.value
            return inner, c + off
        while isinstance(lhs, A.Cast) and lhs.to.is_integer:
            lhs = lhs.operand
        if isinstance(lhs, A.IntLit) and e.op == "+":
            inner, c = _split_index(e.rhs)
            return inner, c + lhs.value
    return e, 0


def _const_compare(op: str, a: int, b: int, signed: bool) -> bool:
    if not signed:
        a &= 2**64 - 1
        b &= 2**64 - 1
    return {"<": a < b, ">": a > b, "<=": a <= b, ">=": a >= b,
            "==": a == b, "!=": a != b}[op]


def _const_int_binop(op: str, a: int, b: int) -> int:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            raise CompileError("constant division by zero")
        return int(a / b)
    if op == "%":
        if b == 0:
            raise CompileError("constant modulo by zero")
        return a - int(a / b) * b
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    if op == "<<":
        return a << (b & 63)
    if op == ">>":
        return a >> (b & 63)
    raise CompileError(f"unknown constant op {op}")


def _children(node: object) -> list[object]:
    out: list[object] = []
    if hasattr(node, "__dataclass_fields__"):
        for name in node.__dataclass_fields__:  # type: ignore[attr-defined]
            v = getattr(node, name)
            if isinstance(v, (A.Expr, A.Stmt)):
                out.append(v)
            elif isinstance(v, list):
                out.extend(x for x in v if isinstance(x, (A.Expr, A.Stmt)))
    return out


def lower_function(func: A.FuncDef, info: FunctionInfo,
                   functions: dict[str, FunctionInfo]) -> TFunc:
    """Lower one checked function to TAC."""
    return Lowerer(func, info, functions).run()
