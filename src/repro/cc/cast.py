"""AST node definitions for the MCC C subset.

Expression nodes carry a ``ctype`` slot filled in by semantic analysis
(:mod:`repro.cc.sema`); lowering (:mod:`repro.cc.lower`) requires it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cc.ctypes import CType


# -- expressions -----------------------------------------------------------


@dataclass
class Expr:
    ctype: Optional[CType] = field(default=None, init=False, repr=False)
    line: int = field(default=0, init=False, repr=False)


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class Ident(Expr):
    name: str


@dataclass
class Unary(Expr):
    op: str  # '-', '!', '~', '*', '&', 'pre++', 'pre--', 'post++', 'post--'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # + - * / % << >> < > <= >= == != & | ^ && ||
    lhs: Expr
    rhs: Expr


@dataclass
class Assign(Expr):
    op: str  # '=', '+=', '-=', '*=', '/=' ...
    target: Expr
    value: Expr


@dataclass
class Call(Expr):
    func: str
    args: list[Expr]


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Member(Expr):
    base: Expr
    name: str
    arrow: bool  # True for '->'


@dataclass
class Cast(Expr):
    to: CType
    operand: Expr


@dataclass
class SizeofType(Expr):
    of: CType


@dataclass
class Conditional(Expr):
    cond: Expr
    then: Expr
    otherwise: Expr


# -- statements ------------------------------------------------------------


@dataclass
class Stmt:
    line: int = field(default=0, init=False, repr=False)


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Decl(Stmt):
    name: str
    ctype: CType
    init: Expr | None


@dataclass
class Block(Stmt):
    stmts: list[Stmt]


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    otherwise: Stmt | None


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class For(Stmt):
    init: Stmt | None  # Decl or ExprStmt
    cond: Expr | None
    step: Expr | None
    body: Stmt


@dataclass
class Return(Stmt):
    value: Expr | None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# -- top level -------------------------------------------------------------


@dataclass
class Param:
    name: str
    ctype: CType


@dataclass
class FuncDef:
    name: str
    ret: CType
    params: list[Param]
    body: Block | None  # None for declarations


@dataclass
class Program:
    functions: list[FuncDef]
    structs: dict[str, object]  # name -> StructType
