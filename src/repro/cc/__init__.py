"""MCC — the mini C compiler used as this project's "GCC".

MCC compiles the C subset needed by the paper's kernels (structs with
flexible array members, pointers, ``for`` loops, doubles, function calls)
into x86-64 machine code inside a simulated :class:`repro.cpu.Image`.

Pipeline: ``lexer`` -> ``parser`` -> ``sema`` -> AST lowering (``lower``)
-> TAC (``repro.backend``) -> optimization (``repro.backend.opt``) ->
register allocation -> x86-64 emission.  An optional loop vectorizer
(``vectorize``) reproduces GCC's ``-O3`` SSE vectorization for
stencil-shaped innermost loops.
"""

from repro.cc.compiler import CompiledProgram, compile_c

__all__ = ["CompiledProgram", "compile_c"]
