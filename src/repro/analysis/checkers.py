"""Checker registry: run any subset of the soundness lints by name.

The registry is the single entry point the lint CLI, the guard's static
pre-gate and the per-pass validator all share, so adding a checker in one
place makes it available everywhere.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.ir.module import Function, Module

from repro.analysis.findings import Finding
from repro.analysis.memregion import check_memory_regions
from repro.analysis.strictness import check_strict_ssa
from repro.analysis.undef import check_undef_uses

#: name -> per-function checker returning findings
CHECKERS: dict[str, Callable[[Function], list[Finding]]] = {
    "undef-use": check_undef_uses,
    "mem-region": check_memory_regions,
    "ssa-strict": check_strict_ssa,
}

#: checkers cheap enough for the guard's inline pre-gate
DEFAULT_PREGATE = ("ssa-strict", "undef-use", "mem-region")


def run_checkers(func: Function,
                 checkers: Iterable[str] | None = None) -> list[Finding]:
    """Run the named checkers (all by default) over one function."""
    names = list(checkers) if checkers is not None else list(CHECKERS)
    out: list[Finding] = []
    for name in names:
        try:
            fn = CHECKERS[name]
        except KeyError:
            raise ValueError(
                f"unknown checker {name!r} (have: {', '.join(sorted(CHECKERS))})"
            ) from None
        out.extend(fn(func))
    return out


def run_checkers_module(module: Module,
                        checkers: Iterable[str] | None = None) -> list[Finding]:
    """Run checkers over every defined function in a module."""
    out: list[Finding] = []
    for func in module.functions.values():
        if not func.is_declaration:
            out.extend(run_checkers(func, checkers))
    return out
