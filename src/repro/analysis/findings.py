"""Finding: one static-analysis diagnostic.

Checkers return findings instead of raising: a lint run wants *all*
problems (the verifier's raise-on-first contract is the wrong shape for
reporting), and the guard's static pre-gate needs to distinguish
must-reject errors from advisory warnings.
"""

from __future__ import annotations

from dataclasses import dataclass

#: finding severities, strongest first
ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a static checker."""

    checker: str
    function: str
    message: str
    severity: str = ERROR
    #: block name of the offending instruction ("" when function-level)
    block: str = ""
    #: printed form of the offending instruction ("" when block-level)
    instruction: str = ""

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def format(self) -> str:
        where = f"@{self.function}"
        if self.block:
            where += f":{self.block}"
        line = f"{where}: {self.severity}: [{self.checker}] {self.message}"
        if self.instruction:
            line += f"  ({self.instruction})"
        return line

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.format()


def errors_only(findings: list[Finding]) -> list[Finding]:
    """The subset of findings with error severity."""
    return [f for f in findings if f.is_error]
