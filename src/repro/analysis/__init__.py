"""Static analysis over the lifted IR: dataflow engine, soundness
checkers, and per-pass translation validation.

The rewriter's trust chain has three layers; this package is the middle
one.  The IR verifier (:mod:`repro.ir.verifier`) checks *well-formedness*,
the guard's differential gate (:mod:`repro.guard.verify`) checks *observed
behavior* — and ``repro.analysis`` checks *provable* properties in between:

* :mod:`~repro.analysis.dataflow` — a small lattice-based engine with a
  dense block solver (forward/backward worklist) and a sparse SSA value
  solver (meet over phis, optional widening);
* :mod:`~repro.analysis.undef` / :mod:`~repro.analysis.memregion` /
  :mod:`~repro.analysis.strictness` — lifter-soundness checkers built on
  the engine (undef reaching observable sinks, provably out-of-bounds
  accesses to fixed memory regions, strict-SSA and Φ-coverage violations);
* :mod:`~repro.analysis.deadflags` — Fig. 6-style proof of which status
  flags the optimizer eliminated;
* :mod:`~repro.analysis.validate` — per-pass translation validation for
  ``run_o3(..., validate=True)``: clone before each pass, verify after,
  differentially interpret on seeded probes, roll back and quarantine the
  offending pass on divergence;
* :mod:`~repro.analysis.machine` — machine-level translation validation:
  decode the bytes the backend just emitted, reconstruct the machine CFG,
  symbolically execute it and prove it equivalent to the source IR
  block-by-block (register allocation, stack discipline, memory effects);
* :mod:`~repro.analysis.lint` — the CLI regression gate
  (``python -m repro.analysis.lint``) over the example/stencil corpus.
"""

from repro.analysis.checkers import (
    CHECKERS,
    DEFAULT_PREGATE,
    run_checkers,
    run_checkers_module,
)
from repro.analysis.clone import (
    clone_function,
    functions_structurally_equal,
    restore_function,
)
from repro.analysis.dataflow import (
    BACKWARD,
    FORWARD,
    BlockProblem,
    BlockStates,
    BoolLattice,
    Lattice,
    SetLattice,
    ValueProblem,
    ValueStates,
    predecessor_map,
    reachable_blocks,
    reverse_postorder,
    solve_block_problem,
    solve_value_problem,
)
from repro.analysis.deadflags import (
    FLAG_LETTERS,
    FlagReport,
    analyze_flags,
    analyze_module_flags,
)
from repro.analysis.findings import ERROR, WARNING, Finding, errors_only
from repro.analysis.machine import (
    CodeWitness,
    MachineVerifier,
    VerifyOptions,
    VerifyResult,
    build_mcfg,
    build_witness,
    verify_witness,
)
from repro.analysis.memregion import check_memory_regions
from repro.analysis.strictness import check_strict_ssa
from repro.analysis.undef import check_undef_uses
from repro.analysis.validate import (
    PassValidator,
    PassVerdict,
    ValidationOptions,
    ValidatorStats,
)

__all__ = [
    "BACKWARD",
    "FORWARD",
    "BlockProblem",
    "BlockStates",
    "BoolLattice",
    "CHECKERS",
    "CodeWitness",
    "DEFAULT_PREGATE",
    "ERROR",
    "FLAG_LETTERS",
    "Finding",
    "FlagReport",
    "Lattice",
    "MachineVerifier",
    "PassValidator",
    "PassVerdict",
    "SetLattice",
    "ValidationOptions",
    "ValidatorStats",
    "ValueProblem",
    "ValueStates",
    "VerifyOptions",
    "VerifyResult",
    "WARNING",
    "analyze_flags",
    "analyze_module_flags",
    "build_mcfg",
    "build_witness",
    "check_memory_regions",
    "check_strict_ssa",
    "check_undef_uses",
    "clone_function",
    "errors_only",
    "functions_structurally_equal",
    "predecessor_map",
    "reachable_blocks",
    "restore_function",
    "reverse_postorder",
    "run_checkers",
    "run_checkers_module",
    "solve_block_problem",
    "solve_value_problem",
    "verify_witness",
]
