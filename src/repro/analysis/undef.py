"""Undef-use detector (lifter-soundness lint).

Unwritten guest registers lift to ``undef`` (Sec. III-C), and that is fine
*as long as nothing observable consumes them* — "these unused nodes will be
removed by the optimizer".  A lifter or pass bug that routes an undef (or a
value computed from one) into a store, a branch condition, a memory address
or the return value is a real miscompile: the JIT will materialize garbage.

The checker is a taint analysis on the sparse SSA engine: ``undef`` is
tainted, taint propagates through computation and across phi joins
(a value is *maybe-undef* if any path can produce undef), and findings are
raised at observable sinks only.  ``select`` merges like a phi; a load's
*result* is clean (memory contents are defined by the machine model) but a
load *address* must not be tainted.

Taint is **byte-granular**: the abstract state of a value is a bitmask with
one bit per byte that may be undef.  The lifter demands this — SSE facets
round-trip through ``i128`` phis, and idioms like ``movsd`` + ``unpcklpd``
insert a loaded double into lane 0 of an xmm whose *upper* lane is undef,
then splat lane 0 over both lanes.  The result is fully defined, which only
a representation tracking insertelement / shufflevector / bitcast at byte
precision can see; whole-value taint would flag every vectorized store.

One deliberate exception: storing a tainted *value* through a pointer that
derives from an ``alloca`` is benign — the lifter spills callee-saved
registers (undef at entry) to the virtual stack in every prologue, and
function-local scratch is only observable through a later load, whose
result the machine model defines.  Tainted store *addresses* are always
flagged, alloca-based or not.
"""

from __future__ import annotations

from typing import Callable

from repro.ir import instructions as I
from repro.ir.module import Function
from repro.ir.values import Undef, Value

from repro.analysis.dataflow import (
    BoolLattice, Lattice, ValueProblem, reachable_blocks, solve_value_problem,
)
from repro.analysis.findings import ERROR, Finding
from repro.ir.values import Constant

CHECKER = "undef-use"


def _nbytes(t) -> int:
    """Byte width of a type (at least one byte, so i1 taints as a byte)."""
    try:
        return max(t.size_bytes(), 1)
    except Exception:
        return 1


def _full(t) -> int:
    return (1 << _nbytes(t)) - 1


class _MaskLattice(Lattice):
    """Bitmask of maybe-undef bytes; join is bitwise or."""

    def bottom(self) -> int:
        return 0

    def join(self, a: int, b: int) -> int:
        return a | b

    def leq(self, a: int, b: int) -> bool:
        return (a | b) == b


class _AllocaBased(ValueProblem):
    """May the value point into an ``alloca``'d region?  (join = or)"""

    def lattice(self) -> BoolLattice:
        return BoolLattice()

    def initial(self, value: Value) -> bool:
        return False

    def transfer(self, ins: I.Instruction,
                 get: Callable[[Value], bool]) -> bool:
        if isinstance(ins, I.Alloca):
            return True
        if isinstance(ins, (I.GEP, I.Cast, I.Select)):
            return any(get(op) for op in ins.operands)
        if isinstance(ins, I.BinOp) and ins.opcode in ("add", "sub"):
            return any(get(op) for op in ins.operands)
        return False


class _TaintProblem(ValueProblem):
    def lattice(self) -> _MaskLattice:
        return _MaskLattice()

    def initial(self, value: Value) -> int:
        return _full(value.type) if isinstance(value, Undef) else 0

    def transfer(self, ins: I.Instruction,
                 get: Callable[[Value], int]) -> int:
        if isinstance(ins, (I.Load, I.Call, I.Alloca)):
            # results come from memory / callee / allocator — defined even
            # when an operand is tainted (the *operand* use is the sink)
            return 0
        if isinstance(ins, I.InsertElement):
            vec, val, idx = ins.operands
            es = _nbytes(ins.type.elem)
            if isinstance(idx, Constant):
                lane = (1 << es) - 1 << (idx.value * es)
                return (get(vec) & ~lane) | (get(val) << (idx.value * es))
            # unknown lane: a clean insert cannot add taint, a tainted one
            # could land anywhere
            return get(vec) | (_full(ins.type) if get(val) else 0)
        if isinstance(ins, I.ExtractElement):
            vec, idx = ins.operands
            es = _nbytes(ins.type)
            if isinstance(idx, Constant):
                return (get(vec) >> (idx.value * es)) & ((1 << es) - 1)
            return _full(ins.type) if get(vec) else 0
        if isinstance(ins, I.ShuffleVector):
            a, b = ins.operands
            es = _nbytes(ins.type.elem)
            n = a.type.count
            lane = (1 << es) - 1
            out = 0
            for i, src in enumerate(ins.mask):
                m = get(a) >> (src * es) if src < n else get(b) >> ((src - n) * es)
                out |= (m & lane) << (i * es)
            return out
        if isinstance(ins, I.Cast):
            m = get(ins.operands[0])
            if ins.opcode in ("bitcast", "inttoptr", "ptrtoint"):
                return m & _full(ins.type)  # same-size reinterpretation
            if ins.opcode == "trunc":
                return m & _full(ins.type)
            if ins.opcode == "zext":
                return m  # high bytes become defined zeros
            return _full(ins.type) if m else 0
        if isinstance(ins, I.Select):
            _cond, a, b = ins.operands
            base = get(a) | get(b)
            return _full(ins.type) if get(_cond) else base
        if any(get(op) for op in ins.operands):
            return _full(ins.type)
        return 0


def _sinks(ins: I.Instruction) -> list[tuple[Value, str]]:
    """(operand, role) pairs whose taint is an observable miscompile."""
    out: list[tuple[Value, str]] = []
    if isinstance(ins, I.Store):
        out.append((ins.operands[0], "stored value"))
        out.append((ins.operands[1], "store address"))
    elif isinstance(ins, I.Load):
        out.append((ins.operands[0], "load address"))
    elif isinstance(ins, I.Br) and ins.is_conditional:
        out.append((ins.operands[0], "branch condition"))
    elif isinstance(ins, I.Ret) and ins.value is not None:
        out.append((ins.value, "return value"))
    elif isinstance(ins, I.Call):
        for i, op in enumerate(ins.operands):
            out.append((op, f"call argument {i}"))
    return out


def check_undef_uses(func: Function) -> list[Finding]:
    """Report maybe-undef values reaching observable sinks."""
    if func.is_declaration or not func.blocks:
        return []
    states = solve_value_problem(func, _TaintProblem())
    local = solve_value_problem(func, _AllocaBased())
    reachable = reachable_blocks(func)
    findings: list[Finding] = []
    for blk in func.blocks:
        if blk not in reachable:
            continue  # dead code cannot misbehave at runtime
        for ins in blk.instructions:
            for op, role in _sinks(ins):
                if (role == "stored value"
                        and local.get(ins.operands[1])):
                    continue  # spill to function-local scratch: benign
                if states.get(op):
                    findings.append(Finding(
                        checker=CHECKER, function=func.name,
                        severity=ERROR, block=blk.name,
                        instruction=repr(ins).strip(),
                        message=f"possibly-undef value used as {role}",
                    ))
    return findings
