"""SSA-strictness and Φ-coverage checker.

A findings-collecting (non-throwing) superset of ``ir/verifier.py``'s
structural rules.  Where the verifier raises on the first malformation —
the right contract for "abort this compile" — a lint run wants the full
list, and it wants rules the raise-path deliberately leaves out:

* Φ incoming lists must match predecessors *exactly*: no missing edge, no
  stale extra (classic ``simplifycfg`` residue), **no duplicate** incoming
  block (``set()`` comparison in the verifier cannot see duplicates), and
  no operand/incoming length skew;
* Φ nodes with zero incoming edges (orphaned after block removal);
* reachable uses of values defined in unreachable blocks (the verifier
  skips these entirely; after DCE drops the dead block, the use would
  become detached);
* detached operands and missing/misplaced terminators, collected rather
  than raised;
* unreachable blocks themselves, reported as warnings (legal IR, but in a
  lifted trace they usually mean the lifter emitted a side exit nothing
  jumps to).

Dominance violations are verified via the same immediate-dominator walk as
the verifier, but reported as findings.
"""

from __future__ import annotations

import networkx as nx

from repro.ir import instructions as I
from repro.ir.module import Function
from repro.ir.values import Value

from repro.analysis.dataflow import predecessor_map, reachable_blocks
from repro.analysis.findings import ERROR, WARNING, Finding

CHECKER = "ssa-strict"


def _finding(func: Function, blk, msg: str, severity: str = ERROR,
             ins: I.Instruction | None = None) -> Finding:
    return Finding(
        checker=CHECKER, function=func.name, message=msg, severity=severity,
        block=blk.name if blk is not None else "",
        instruction=repr(ins).strip() if ins is not None else "",
    )


def check_strict_ssa(func: Function) -> list[Finding]:
    """All strictness findings for one function (never raises)."""
    if func.is_declaration or not func.blocks:
        return []
    findings: list[Finding] = []
    preds = predecessor_map(func)
    reachable = reachable_blocks(func)
    block_set = set(func.blocks)

    pos: dict[int, tuple[object, int]] = {}
    for blk in func.blocks:
        for i, ins in enumerate(blk.instructions):
            pos[id(ins)] = (blk, i)

    for blk in func.blocks:
        if blk not in reachable:
            findings.append(_finding(
                func, blk, "unreachable block", severity=WARNING))

        term = blk.terminator
        if term is None:
            findings.append(_finding(func, blk, "block lacks a terminator"))
        seen_non_phi = False
        for ins in blk.instructions:
            if ins.is_terminator and ins is not term:
                findings.append(_finding(
                    func, blk, "terminator in the middle of a block", ins=ins))
            if isinstance(ins, I.Phi):
                if seen_non_phi:
                    findings.append(_finding(
                        func, blk, "phi after a non-phi instruction", ins=ins))
            else:
                seen_non_phi = True
        for succ in blk.successors():
            if succ not in block_set:
                findings.append(_finding(
                    func, blk, f"branch to foreign block {succ.name}"))

        # Φ-coverage: exact predecessor match, strictly
        bpreds = preds.get(blk, [])
        for phi in blk.phis():
            if len(phi.operands) != len(phi.incoming_blocks):
                findings.append(_finding(
                    func, blk,
                    f"phi has {len(phi.operands)} value(s) for "
                    f"{len(phi.incoming_blocks)} incoming block(s)", ins=phi))
                continue
            if not phi.incoming_blocks:
                findings.append(_finding(
                    func, blk, "phi with no incoming edges", ins=phi))
                continue
            seen_ids: set[int] = set()
            for b in phi.incoming_blocks:
                if id(b) in seen_ids:
                    findings.append(_finding(
                        func, blk,
                        f"phi lists incoming block {b.name} more than once",
                        ins=phi))
                seen_ids.add(id(b))
            inc = {id(b) for b in phi.incoming_blocks}
            pred_ids = {id(b) for b in bpreds}
            for b in bpreds:
                if id(b) not in inc:
                    findings.append(_finding(
                        func, blk,
                        f"phi misses incoming for predecessor {b.name}",
                        ins=phi))
            for b in phi.incoming_blocks:
                if id(b) not in pred_ids:
                    findings.append(_finding(
                        func, blk,
                        f"phi has stale incoming for non-predecessor {b.name}",
                        ins=phi))

        # operand sanity: detached values, reachable uses of unreachable defs
        for ins in blk.instructions:
            for op in ins.operands:
                if not isinstance(op, I.Instruction):
                    continue
                if id(op) not in pos:
                    findings.append(_finding(
                        func, blk,
                        f"use of detached value %{op.name or '?'}", ins=ins))
                    continue
                def_blk, _ = pos[id(op)]
                if blk in reachable and def_blk not in reachable:
                    findings.append(_finding(
                        func, blk,
                        f"reachable use of %{op.name or '?'} defined in "
                        f"unreachable block {def_blk.name}", ins=ins))

    findings.extend(_dominance_findings(func, reachable, pos))
    return findings


def _dominance_findings(func: Function, reachable, pos) -> list[Finding]:
    g = nx.DiGraph()
    for blk in func.blocks:
        g.add_node(blk)
        for succ in blk.successors():
            g.add_edge(blk, succ)
    try:
        idom = nx.immediate_dominators(g, func.entry)
    except Exception:  # malformed CFG already reported structurally
        return []

    def dominates(a, b) -> bool:
        while True:
            if a is b:
                return True
            parent = idom.get(b)
            if parent is None or parent is b:
                return a is b
            b = parent

    out: list[Finding] = []

    def check_use(v: Value, use_blk, use_idx: int, user: I.Instruction) -> None:
        if not isinstance(v, I.Instruction) or id(v) not in pos:
            return
        def_blk, def_idx = pos[id(v)]
        if def_blk not in reachable:
            return  # reported separately as unreachable-def use
        if def_blk is use_blk:
            if def_idx >= use_idx:
                out.append(_finding(
                    func, use_blk,
                    f"%{v.name or '?'} used before its definition", ins=user))
        elif not dominates(def_blk, use_blk):
            out.append(_finding(
                func, use_blk,
                f"definition of %{v.name or '?'} in {def_blk.name} does not "
                f"dominate this use", ins=user))

    for blk in func.blocks:
        if blk not in reachable:
            continue
        for i, ins in enumerate(blk.instructions):
            if isinstance(ins, I.Phi):
                for v, pred in ins.incoming():
                    if pred in reachable:
                        check_use(v, pred, len(pred.instructions), ins)
                continue
            for v in ins.operands:
                check_use(v, blk, i, ins)
    return out
