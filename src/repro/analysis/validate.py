"""Per-pass translation validation for the -O3 pipeline.

PR 2's differential gate runs end-to-end: it can say *that* a specialized
function diverged, never *which pass* miscompiled it.  This module closes
that gap.  In validate mode ``run_o3`` hands every pass application to a
:class:`PassValidator`, which

1. snapshots the function body (:func:`~repro.analysis.clone.clone_function`),
2. runs the pass,
3. checks the output **structurally** — the raising verifier plus the
   strict SSA findings — and **behaviorally**, by interpreting the pre- and
   post-pass bodies on seeded probe vectors over identical deterministic
   memories and comparing return values *and* non-stack memory effects,
4. on rejection rolls the function back in place, records the verdict, and
   quarantines only the offending pass via a :class:`NegativeCache`
   (key ``o3pass:<name>``) — the rest of the pipeline keeps running, so a
   single broken pass degrades optimization quality instead of killing the
   ladder rung.

A probe on which the *pre-pass* body itself faults (e.g. a sampled integer
dereferenced as a pointer) is inconclusive and skipped, mirroring the
dynamic gate's policy: passes may remove traps from dead code, but must
preserve every well-defined execution.  Comparison of float returns uses a
small relative tolerance because the default pipeline runs fast-math
reassociation.
"""

from __future__ import annotations

import functools
import time
import weakref
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cache.negative import NegativeCache
from repro.errors import IRError, ReproError
from repro.ir.interp import Interpreter
from repro.ir.module import Function
from repro.ir.verifier import verify
from repro.mem.memory import Memory

from repro.analysis.clone import (
    clone_function, function_fingerprint, functions_structurally_equal,
    restore_function,
)
from repro.analysis.findings import Finding, errors_only
from repro.analysis.strictness import check_strict_ssa

#: deterministic probe samples (mirrors the dynamic gate's tables)
_F64_SAMPLES = (0.0, 1.0, -1.5, 2.25, 0.5, -3.0, 8.0, -0.125)
_I64_SAMPLES = (0, 1, 2, 3, 5, 8, 13, 21)

#: scratch memory handed to pointer-ish parameters, one slot per arg
SCRATCH_BASE = 0x6400_0000
SCRATCH_SLOT = 0x1000
SCRATCH_SLOTS = 16

#: the interpreter's stack region — excluded from memory comparison
#: (dead stack slots legitimately differ after mem2reg/DCE)
_STACK_LO = 0x7000_0000 - (1 << 20)
_STACK_HI = 0x7000_0000


@dataclass(frozen=True)
class ValidationOptions:
    """Per-pass validation configuration."""

    #: probe vectors interpreted per validated pass application
    probes: int = 4
    #: sample-rotation seed
    seed: int = 0
    #: per-probe interpreter step ceiling
    max_steps: int = 200_000
    #: run the raising verifier + strict SSA findings on pass output
    structural: bool = True
    #: run differential interpretation of pre vs post bodies
    behavioral: bool = True
    #: restore the pre-pass body when a pass is rejected
    rollback: bool = True
    #: NegativeCache TTL for quarantined passes (seconds)
    quarantine_ttl: float = 30.0
    #: relative tolerance for float return values (fast-math reassociation)
    tolerance: float = 1e-9
    #: stop probing after this many inconclusive probes if *none* was
    #: conclusive yet — further samples from the same tables rarely start
    #: succeeding, and lifted code whose pointers the scratch slots cannot
    #: satisfy would otherwise pay full probe cost for zero signal
    max_inconclusive_scout: int = 2


@dataclass
class PassVerdict:
    """What per-pass validation concluded about one pass application."""

    pass_name: str
    ok: bool = True
    #: the function changed (the pass's own claim, or structural diff)
    changed: bool = False
    #: skipped because the pass is currently quarantined
    quarantined: bool = False
    #: pre-pass body was restored after rejection
    rolled_back: bool = False
    reason: str | None = None
    findings: list[Finding] = field(default_factory=list)
    probes_run: int = 0
    seconds: float = 0.0


@dataclass
class ValidatorStats:
    """Aggregate counters across one validator's lifetime."""

    validated: int = 0
    accepted: int = 0
    rejected: int = 0
    structural_rejections: int = 0
    behavioral_rejections: int = 0
    quarantine_skips: int = 0
    rollbacks: int = 0
    probes_run: int = 0
    #: pre-pass probe runs served from the memoized baseline (the accepted
    #: output of the previous pass) instead of re-interpretation
    baseline_reuses: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)


class PassValidator:
    """Validates pass applications; quarantines passes that miscompile."""

    def __init__(self, options: ValidationOptions = ValidationOptions(),
                 negative: NegativeCache | None = None) -> None:
        self.options = options
        self.negative = negative if negative is not None else NegativeCache(
            ttl=options.quarantine_ttl)
        self.stats = ValidatorStats()
        #: memoized probe results for the *current* body of the last
        #: validated function: ``(id(func), fingerprint, {probe: result})``.
        #: Consecutive pass validations of one function re-interpret the
        #: same pre-pass body the previous validation just measured; the
        #: fingerprint re-check makes reuse safe against outside mutation.
        self._baseline: tuple[int, tuple, dict] | None = None
        #: memoized pre-pass snapshot ``(weakref(func), clone)``: while
        #: passes keep reporting (truthfully) "no change", the body stays
        #: identical, so one clone serves every consecutive application
        #: instead of re-cloning per pass.  Assumes run_pass is the only
        #: mutator of ``func`` between calls — true for the O3 pipeline;
        #: external callers that mutate between calls must use a fresh
        #: validator (or accept a spurious lying-pass rejection).
        self._snapshot: tuple[weakref.ref, Function] | None = None

    # -- the wrapper the pipeline calls per pass ------------------------------

    def run_pass(self, name: str, thunk: Callable[[], Any], func: Function,
                 *, changed_of: Callable[[Any], bool] = bool,
                 ) -> tuple[Any, PassVerdict]:
        """Run one pass application under validation.

        Returns ``(pass result, verdict)``.  On rejection the pass result
        is still returned (callers read ``verdict.changed``, which is False
        after a rollback).  Exceptions from the pass itself propagate — a
        *raising* pass is the ladder's problem, not a silent miscompile.
        """
        key = f"o3pass:{name}"
        ent = self.negative.check(key)
        if ent is not None:
            self.stats.quarantine_skips += 1
            return None, PassVerdict(
                pass_name=name, ok=False, quarantined=True,
                reason=ent.reason)

        t0 = time.perf_counter()
        snapshot = None
        if self._snapshot is not None and self._snapshot[0]() is func:
            snapshot = self._snapshot[1]
        if snapshot is None:
            snapshot = clone_function(func)
            self._snapshot = (weakref.ref(func), snapshot)
        result = thunk()
        changed = bool(changed_of(result))
        if not changed and functions_structurally_equal(func, snapshot):
            # provably a no-op: nothing to validate; the snapshot stays
            # valid for the next pass application
            return result, PassVerdict(pass_name=name, ok=True,
                                       seconds=time.perf_counter() - t0)
        # the body changed (or the pass lied): whatever happens next —
        # acceptance installs a new body, rollback consumes the snapshot's
        # blocks — this snapshot cannot serve another application
        self._snapshot = None

        self.stats.validated += 1
        verdict = PassVerdict(pass_name=name, changed=True)
        before_results, after_results = self._validate(snapshot, func, verdict)
        verdict.seconds = time.perf_counter() - t0
        self.stats.probes_run += verdict.probes_run

        if verdict.ok:
            self.stats.accepted += 1
        else:
            self.stats.rejected += 1
            if self.options.rollback:
                restore_function(func, snapshot)
                verdict.rolled_back = True
                verdict.changed = False
                self.stats.rollbacks += 1
            self.negative.record(key, name, verdict.reason or "rejected",
                                 {"stage": "validate", "pass": name})
        # memoize probe results for whatever body the function now holds:
        # the accepted output (or the restored input) is the next pass's
        # pre-pass body, so its probes need not be re-interpreted
        body_results = before_results if verdict.rolled_back else after_results
        if body_results:
            self._baseline = (id(func), function_fingerprint(func),
                              body_results)
        return result, verdict

    # -- validation ----------------------------------------------------------

    def _validate(self, before: Function, after: Function,
                  verdict: PassVerdict) -> tuple[dict | None, dict | None]:
        """Fill in the verdict; returns the per-probe results of the pre-
        and post-pass bodies (None when behavioral checking didn't run)."""
        if self.options.structural:
            try:
                verify(after)
            except IRError as exc:
                verdict.ok = False
                verdict.reason = f"verifier: {exc}"
                self.stats.structural_rejections += 1
                return None, None
            findings = errors_only(check_strict_ssa(after))
            if findings:
                verdict.ok = False
                verdict.findings = findings
                verdict.reason = f"strict-ssa: {findings[0].message}"
                self.stats.structural_rejections += 1
                return None, None
        before_results = after_results = None
        if self.options.behavioral:
            cached = None
            if (self._baseline is not None
                    and self._baseline[0] == id(after)
                    and self._baseline[1] == function_fingerprint(before)):
                cached = self._baseline[2]
            reason, probes, before_results, after_results = \
                self._differential(before, after, cached)
            verdict.probes_run = probes
            if reason is not None:
                verdict.ok = False
                verdict.reason = reason
                self.stats.behavioral_rejections += 1
        return before_results, after_results

    def _differential(self, before: Function, after: Function,
                      cached: dict | None = None,
                      ) -> tuple[str | None, int, dict, dict]:
        """Interpret both bodies on probe vectors; first divergence wins.

        ``cached`` maps probe vectors to memoized pre-pass results (the
        baseline); probes found there skip the ``before`` interpretation.
        Returns ``(reason, conclusive probes, before results, after
        results)`` so the caller can seed the next baseline.
        """
        module = after.module
        saved_addrs = {}
        if module is not None:
            saved_addrs = {name: g.addr
                           for name, g in module.globals.items()}
        conclusive = 0
        attempted = 0
        scout = max(1, self.options.max_inconclusive_scout)
        before_results: dict = {}
        after_results: dict = {}
        try:
            for probe in self._probes(after):
                if conclusive == 0 and attempted >= scout:
                    break  # nothing conclusive: stop scouting
                attempted += 1
                if cached is not None and probe in cached:
                    want, err_b, mem_b = cached[probe]
                    self.stats.baseline_reuses += 1
                else:
                    want, err_b, mem_b = self._probe_run(before, probe)
                before_results[probe] = (want, err_b, mem_b)
                if err_b is not None:
                    continue  # the pre-pass body rejects this input
                got, err_a, mem_a = self._probe_run(after, probe)
                after_results[probe] = (got, err_a, mem_a)
                conclusive += 1
                if err_a is not None:
                    return (f"probe {probe!r}: pass output failed "
                            f"({err_a}) where input succeeded"
                            ), conclusive, before_results, after_results
                addr = _mem_diff(mem_b, mem_a)
                if addr is not None:
                    return (f"probe {probe!r}: memory divergence at "
                            f"{addr:#x}"), conclusive, before_results, \
                        after_results
                if not self._agree(want, got):
                    return (f"probe {probe!r}: return divergence "
                            f"(expected {want!r}, got {got!r})"
                            ), conclusive, before_results, after_results
        finally:
            if module is not None:
                for name, g in module.globals.items():
                    g.addr = saved_addrs.get(name)
        return None, conclusive, before_results, after_results

    def _probe_run(self, func: Function, args: tuple,
                   ) -> tuple[object, str | None, list[tuple[int, bytes]]]:
        module = func.module
        if module is not None:
            for g in module.globals.values():
                g.addr = None  # force deterministic re-placement per run
        mem = Memory()
        mem.map(SCRATCH_BASE, SCRATCH_SLOT * SCRATCH_SLOTS,
                _scratch_pattern(SCRATCH_SLOT * SCRATCH_SLOTS))
        interp = Interpreter(module if module is not None else _orphan(func),
                             mem)
        interp.max_steps = self.options.max_steps
        try:
            rv = interp.run(func, list(args))
            return rv, None, mem.snapshot()
        except ReproError as exc:
            # inconclusive: the snapshot is never compared, don't copy it
            return None, f"{type(exc).__name__}: {exc}", None

    def _probes(self, func: Function) -> list[tuple]:
        """Deterministic argument vectors for the function's signature.

        Probes alternate between two classes, scratch-address probes
        first: even probes substitute per-slot scratch addresses for
        integer parameters — lifted code routinely receives addresses as
        i64, and probes that only pass small integers would leave every
        memory access inconclusive — and odd probes pass small integers.
        Leading with one probe of each class lets the inconclusive-scout
        cutoff sample both before giving up.
        """
        n = self.options.probes
        out: list[tuple] = []
        for k in range(n):
            use_addr = k % 2 == 0
            vec: list[object] = []
            for slot, arg in enumerate(func.args):
                t = arg.type
                idx = (k + self.options.seed + slot * 3) % len(_I64_SAMPLES)
                if t.is_float:
                    vec.append(_F64_SAMPLES[idx])
                elif t.is_vector:
                    vec.append(tuple(
                        _F64_SAMPLES[idx] if t.elem.is_float else _I64_SAMPLES[idx]
                        for _ in range(t.count)))  # type: ignore[attr-defined]
                elif t.is_pointer or use_addr:
                    vec.append(SCRATCH_BASE
                               + (slot % SCRATCH_SLOTS) * SCRATCH_SLOT)
                else:
                    vec.append(_I64_SAMPLES[idx])
            out.append(tuple(vec))
        return out

    def _agree(self, a: object, b: object) -> bool:
        if a is None and b is None:
            return True
        if isinstance(a, tuple) and isinstance(b, tuple) and len(a) == len(b):
            return all(self._agree(x, y) for x, y in zip(a, b))
        if isinstance(a, float) or isinstance(b, float):
            if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
                return False
            x, y = float(a), float(b)
            if x != x and y != y:
                return True  # both NaN
            tol = self.options.tolerance
            return abs(x - y) <= tol * max(1.0, abs(x), abs(y))
        return a == b


@functools.lru_cache(maxsize=4)
def _scratch_pattern(size: int) -> bytes:
    # (i * 37 + 11) mod 256 has period 256: tile one cycle instead of
    # generating size bytes through a Python genexpr on every probe run
    cycle = bytes((i * 37 + 11) & 0xFF for i in range(256))
    return (cycle * (size // 256 + 1))[:size]


def _mem_diff(a: list[tuple[int, bytes]],
              b: list[tuple[int, bytes]]) -> int | None:
    """First differing non-stack address between two memory snapshots."""
    da = {s: d for s, d in a if not (_STACK_LO <= s < _STACK_HI)}
    db = {s: d for s, d in b if not (_STACK_LO <= s < _STACK_HI)}
    for s in sorted(set(da) | set(db)):
        x, y = da.get(s, b""), db.get(s, b"")
        if x == y:
            continue
        for off in range(min(len(x), len(y))):
            if x[off] != y[off]:
                return s + off
        return s + min(len(x), len(y))
    return None


def _orphan(func: Function):
    """A throwaway module wrapper for validating detached functions."""
    from repro.ir.module import Module
    m = Module(f"validate.{func.name}")
    return m
