"""Lint runner: lift a known-clean corpus and fail on any checker finding.

``python -m repro.analysis.lint`` compiles a small fixed corpus with the
in-tree C compiler, lifts every function through the production lifter, and
runs the soundness checkers (:data:`repro.analysis.checkers.CHECKERS`) on
the lifted IR — and, with ``--post-o3``, again after the full -O3 pipeline.
The corpus is *clean by construction*, so every finding is a true positive
against the lifter or an optimizer pass; CI runs this as a regression gate.

Corpora:

* ``examples`` — the small C kernels from the examples/ directory
  (Horner polynomial, dot product, clamped sum);
* ``stencil``  — the six non-calling Sec. VI stencil kernels
  (``apply_{direct,flat,sorted}``, ``line_{direct,flat,sorted}``).

``--stats`` additionally prints the per-function dead-flag report
(:func:`repro.analysis.deadflags.analyze_flags`) — the Fig. 6 story: after
-O3 the status-flag network should be dead or eliminated almost everywhere.

``--machine`` extends the gate to the machine layer: each corpus function
is JIT-compiled back into its program image and the emitted bytes are
verified against the IR by :mod:`repro.analysis.machine` (translation
validation).  A refuted proof is an ERROR finding; an inconclusive proof
is a WARNING (the production pipeline downgrades those to a mandatory
dynamic gate rather than rejecting).

Exit status is 1 when any ERROR-severity finding is reported (warnings are
printed but do not fail the run), 2 on usage errors, and 3 when the lint
run itself crashes — so CI can tell "the corpus regressed" from "the
toolchain fell over".
"""

from __future__ import annotations

import argparse
import json
import sys
import traceback
from dataclasses import asdict, dataclass, field

from repro.cc import compile_c
from repro.ir.module import Function, Module
from repro.ir.passes import run_o3
from repro.lift import FunctionSignature, LiftOptions, lift_function
from repro.stencil.sources import (
    ELEMENT_SIGNATURE, LINE_SIGNATURE, kernel_source,
)

from repro.analysis.checkers import CHECKERS, run_checkers
from repro.analysis.deadflags import FlagReport, analyze_flags
from repro.analysis.findings import ERROR, WARNING, Finding

_POLY_SOURCE = """
double poly(double* coeff, long n, double x) {
    double acc = 0.0;
    for (long i = 0; i < n; i++) {
        acc = acc * x + coeff[i];
    }
    return acc;
}
"""

_DOT_SOURCE = """
double dot(double* a, double* b, long n) {
    double acc = 0.0;
    for (long i = 0; i < n; i++) {
        acc = acc + a[i] * b[i];
    }
    return acc;
}
"""

_CLAMP_SOURCE = """
long clamp_sum(long* v, long n, long lo, long hi) {
    long acc = 0;
    for (long i = 0; i < n; i++) {
        long x = v[i];
        if (x < lo) { x = lo; }
        if (x > hi) { x = hi; }
        acc = acc + x;
    }
    return acc;
}
"""

#: corpus name -> list of (C source, {function name -> signature})
CORPORA: dict[str, list[tuple[str, dict[str, FunctionSignature]]]] = {
    "examples": [
        (_POLY_SOURCE, {"poly": FunctionSignature(("i", "i", "f"), "f")}),
        (_DOT_SOURCE, {"dot": FunctionSignature(("i", "i", "i"), "f")}),
        (_CLAMP_SOURCE,
         {"clamp_sum": FunctionSignature(("i", "i", "i", "i"), "i")}),
    ],
    "stencil": [
        (kernel_source(16), {
            "apply_direct": FunctionSignature(ELEMENT_SIGNATURE, None),
            "apply_flat": FunctionSignature(ELEMENT_SIGNATURE, None),
            "apply_sorted": FunctionSignature(ELEMENT_SIGNATURE, None),
            # line_call_* call through unannotated pointers — the lifter
            # needs known_functions for those; the six direct kernels
            # exercise the same addressing patterns without calls
            "line_direct": FunctionSignature(LINE_SIGNATURE, None),
            "line_flat": FunctionSignature(LINE_SIGNATURE, None),
            "line_sorted": FunctionSignature(LINE_SIGNATURE, None),
        }),
    ],
}


@dataclass
class LintResult:
    """Everything one lint run produced, ready for text or JSON output."""

    functions: int = 0
    findings: list[Finding] = field(default_factory=list)
    flag_reports: list[FlagReport] = field(default_factory=list)
    #: per-function machine-verification verdicts (``--machine``)
    machine: list[dict] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.is_error]

    def to_json(self) -> dict:
        return {
            "functions": self.functions,
            "errors": len(self.errors),
            "warnings": len(self.findings) - len(self.errors),
            "findings": [asdict(f) for f in self.findings],
            "flags": [
                {"function": r.function,
                 "consumed": sorted(r.consumed),
                 "dead": r.dead_flags(),
                 "eliminated": r.eliminated_flags()}
                for r in self.flag_reports
            ],
            "machine": self.machine,
        }

    def to_sarif(self) -> dict:
        """SARIF-shaped report: one run, one rule per checker."""
        rules = sorted({f.checker for f in self.findings})
        results = [
            {
                "ruleId": f.checker,
                "level": "error" if f.is_error else "warning",
                "message": {"text": f.message},
                "locations": [{
                    "logicalLocations": [{
                        "name": f.function, "kind": "function",
                    }],
                }],
            }
            for f in self.findings
        ]
        return {
            "version": "2.1.0",
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "runs": [{
                "tool": {"driver": {
                    "name": "repro.analysis.lint",
                    "rules": [{"id": r} for r in rules],
                }},
                "results": results,
                "properties": {
                    "functions": self.functions,
                    "machine": self.machine,
                },
            }],
        }


def _lift_corpus(corpus: str) -> list[tuple[Function, object]]:
    """Compile and lift every corpus function; (function, image) pairs."""
    lifted: list[tuple[Function, object]] = []
    for source, signatures in CORPORA[corpus]:
        program = compile_c(source)
        for name, sig in signatures.items():
            module = Module(f"lint.{corpus}.{name}")
            func = lift_function(
                program.image.memory, program.image.symbol(name), sig,
                LiftOptions(name=f"{name}.lifted"), module,
            )
            lifted.append((func, program.image))
    return lifted


def _machine_verify(func: Function, image, result: LintResult) -> None:
    """JIT ``func`` back into its image and verify the emitted bytes."""
    from repro.analysis.machine import PROVED, REFUTED, verify_witness
    from repro.ir.codegen import JITEngine

    jit = JITEngine(image)
    jit.compile_function(func, name=f"{func.name}.mc")
    report = verify_witness(jit.last_witness)
    result.machine.append({
        "function": func.name,
        "verdict": report.verdict,
        "blocks": report.blocks_checked,
        "paths": report.paths_checked,
        "seconds": round(report.seconds, 6),
    })
    result.findings.extend(report.findings)
    if report.verdict != PROVED and not any(
            f.is_error for f in report.findings):
        # surface verdicts that carry no checker finding of their own
        result.findings.append(Finding(
            checker="machine.verify",
            function=func.name,
            severity=ERROR if report.verdict == REFUTED else WARNING,
            message=f"machine proof {report.verdict}: "
                    + "; ".join(report.reasons or ["no reason recorded"]),
        ))


def run_lint(corpora: list[str], *, post_o3: bool = False,
             checkers: list[str] | None = None,
             stats: bool = False, machine: bool = False) -> LintResult:
    """Lint the named corpora; the programmatic core of the CLI."""
    result = LintResult()
    for corpus in corpora:
        for func, image in _lift_corpus(corpus):
            result.functions += 1
            result.findings.extend(run_checkers(func, checkers))
            # the machine layer verifies what the production backend
            # emits, which is always the post-O3 form — the verifier's
            # term canonicalization is defined over that shape
            if post_o3 or stats or machine:
                run_o3(func)
            if post_o3:
                result.findings.extend(run_checkers(func, checkers))
            if stats:
                result.flag_reports.append(analyze_flags(func))
            if machine:
                _machine_verify(func, image, result)
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="lift the clean corpus and fail on checker findings")
    parser.add_argument("--corpus", default="all",
                        choices=sorted(CORPORA) + ["all"],
                        help="which corpus to lint (default: all)")
    parser.add_argument("--post-o3", action="store_true",
                        help="also run the checkers after the -O3 pipeline")
    parser.add_argument("--checkers", default=None, metavar="A,B",
                        help="comma-separated checker subset "
                             f"(default: all of {','.join(sorted(CHECKERS))})")
    parser.add_argument("--stats", action="store_true",
                        help="print the post-O3 dead-flag report per function")
    parser.add_argument("--machine", action="store_true",
                        help="JIT-compile each function (post-O3, the "
                             "production form) and verify the emitted "
                             "machine code against the IR")
    parser.add_argument("--format", default=None, dest="fmt",
                        choices=("text", "json", "sarif"),
                        help="output format (default: text)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="alias for --format json")
    args = parser.parse_args(argv)

    fmt = args.fmt or ("json" if args.as_json else "text")
    corpora = sorted(CORPORA) if args.corpus == "all" else [args.corpus]
    checkers = args.checkers.split(",") if args.checkers else None
    try:
        result = run_lint(corpora, post_o3=args.post_o3, checkers=checkers,
                          stats=args.stats, machine=args.machine)
    except ValueError as exc:  # unknown checker name
        parser.error(str(exc))
    except Exception:
        # a crash is not a finding: exit 3 so CI can tell them apart
        traceback.print_exc()
        print("lint run crashed", file=sys.stderr)
        return 3

    if fmt == "json":
        print(json.dumps(result.to_json(), indent=2))
    elif fmt == "sarif":
        print(json.dumps(result.to_sarif(), indent=2))
    else:
        for finding in result.findings:
            print(finding.format())
        if args.stats:
            for report in result.flag_reports:
                print(report.summary())
        if args.machine:
            for entry in result.machine:
                print(f"machine {entry['function']}: {entry['verdict']} "
                      f"({entry['blocks']} blocks, {entry['paths']} paths, "
                      f"{entry['seconds'] * 1e3:.2f} ms)")
        errors = len(result.errors)
        warnings = len(result.findings) - errors
        print(f"linted {result.functions} functions "
              f"({', '.join(corpora)}): {errors} errors, "
              f"{warnings} warnings")
    return 1 if result.errors else 0


if __name__ == "__main__":
    sys.exit(main())
