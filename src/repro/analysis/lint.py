"""Lint runner: lift a known-clean corpus and fail on any checker finding.

``python -m repro.analysis.lint`` compiles a small fixed corpus with the
in-tree C compiler, lifts every function through the production lifter, and
runs the soundness checkers (:data:`repro.analysis.checkers.CHECKERS`) on
the lifted IR — and, with ``--post-o3``, again after the full -O3 pipeline.
The corpus is *clean by construction*, so every finding is a true positive
against the lifter or an optimizer pass; CI runs this as a regression gate.

Corpora:

* ``examples`` — the small C kernels from the examples/ directory
  (Horner polynomial, dot product, clamped sum);
* ``stencil``  — the six non-calling Sec. VI stencil kernels
  (``apply_{direct,flat,sorted}``, ``line_{direct,flat,sorted}``).

``--stats`` additionally prints the per-function dead-flag report
(:func:`repro.analysis.deadflags.analyze_flags`) — the Fig. 6 story: after
-O3 the status-flag network should be dead or eliminated almost everywhere.

Exit status is 1 when any ERROR-severity finding is reported (warnings are
printed but do not fail the run), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict, dataclass, field

from repro.cc import compile_c
from repro.ir.module import Function, Module
from repro.ir.passes import run_o3
from repro.lift import FunctionSignature, LiftOptions, lift_function
from repro.stencil.sources import (
    ELEMENT_SIGNATURE, LINE_SIGNATURE, kernel_source,
)

from repro.analysis.checkers import CHECKERS, run_checkers
from repro.analysis.deadflags import FlagReport, analyze_flags
from repro.analysis.findings import Finding

_POLY_SOURCE = """
double poly(double* coeff, long n, double x) {
    double acc = 0.0;
    for (long i = 0; i < n; i++) {
        acc = acc * x + coeff[i];
    }
    return acc;
}
"""

_DOT_SOURCE = """
double dot(double* a, double* b, long n) {
    double acc = 0.0;
    for (long i = 0; i < n; i++) {
        acc = acc + a[i] * b[i];
    }
    return acc;
}
"""

_CLAMP_SOURCE = """
long clamp_sum(long* v, long n, long lo, long hi) {
    long acc = 0;
    for (long i = 0; i < n; i++) {
        long x = v[i];
        if (x < lo) { x = lo; }
        if (x > hi) { x = hi; }
        acc = acc + x;
    }
    return acc;
}
"""

#: corpus name -> list of (C source, {function name -> signature})
CORPORA: dict[str, list[tuple[str, dict[str, FunctionSignature]]]] = {
    "examples": [
        (_POLY_SOURCE, {"poly": FunctionSignature(("i", "i", "f"), "f")}),
        (_DOT_SOURCE, {"dot": FunctionSignature(("i", "i", "i"), "f")}),
        (_CLAMP_SOURCE,
         {"clamp_sum": FunctionSignature(("i", "i", "i", "i"), "i")}),
    ],
    "stencil": [
        (kernel_source(16), {
            "apply_direct": FunctionSignature(ELEMENT_SIGNATURE, None),
            "apply_flat": FunctionSignature(ELEMENT_SIGNATURE, None),
            "apply_sorted": FunctionSignature(ELEMENT_SIGNATURE, None),
            # line_call_* call through unannotated pointers — the lifter
            # needs known_functions for those; the six direct kernels
            # exercise the same addressing patterns without calls
            "line_direct": FunctionSignature(LINE_SIGNATURE, None),
            "line_flat": FunctionSignature(LINE_SIGNATURE, None),
            "line_sorted": FunctionSignature(LINE_SIGNATURE, None),
        }),
    ],
}


@dataclass
class LintResult:
    """Everything one lint run produced, ready for text or JSON output."""

    functions: int = 0
    findings: list[Finding] = field(default_factory=list)
    flag_reports: list[FlagReport] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.is_error]

    def to_json(self) -> dict:
        return {
            "functions": self.functions,
            "errors": len(self.errors),
            "warnings": len(self.findings) - len(self.errors),
            "findings": [asdict(f) for f in self.findings],
            "flags": [
                {"function": r.function,
                 "consumed": sorted(r.consumed),
                 "dead": r.dead_flags(),
                 "eliminated": r.eliminated_flags()}
                for r in self.flag_reports
            ],
        }


def _lift_corpus(corpus: str) -> list[Function]:
    """Compile and lift every function of one corpus, fresh modules."""
    lifted: list[Function] = []
    for source, signatures in CORPORA[corpus]:
        program = compile_c(source)
        for name, sig in signatures.items():
            module = Module(f"lint.{corpus}.{name}")
            func = lift_function(
                program.image.memory, program.image.symbol(name), sig,
                LiftOptions(name=f"{name}.lifted"), module,
            )
            lifted.append(func)
    return lifted


def run_lint(corpora: list[str], *, post_o3: bool = False,
             checkers: list[str] | None = None,
             stats: bool = False) -> LintResult:
    """Lint the named corpora; the programmatic core of the CLI."""
    result = LintResult()
    for corpus in corpora:
        for func in _lift_corpus(corpus):
            result.functions += 1
            result.findings.extend(run_checkers(func, checkers))
            if post_o3 or stats:
                run_o3(func)
            if post_o3:
                result.findings.extend(run_checkers(func, checkers))
            if stats:
                result.flag_reports.append(analyze_flags(func))
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="lift the clean corpus and fail on checker findings")
    parser.add_argument("--corpus", default="all",
                        choices=sorted(CORPORA) + ["all"],
                        help="which corpus to lint (default: all)")
    parser.add_argument("--post-o3", action="store_true",
                        help="also run the checkers after the -O3 pipeline")
    parser.add_argument("--checkers", default=None, metavar="A,B",
                        help="comma-separated checker subset "
                             f"(default: all of {','.join(sorted(CHECKERS))})")
    parser.add_argument("--stats", action="store_true",
                        help="print the post-O3 dead-flag report per function")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit machine-readable JSON instead of text")
    args = parser.parse_args(argv)

    corpora = sorted(CORPORA) if args.corpus == "all" else [args.corpus]
    checkers = args.checkers.split(",") if args.checkers else None
    try:
        result = run_lint(corpora, post_o3=args.post_o3, checkers=checkers,
                          stats=args.stats)
    except ValueError as exc:  # unknown checker name
        parser.error(str(exc))

    if args.as_json:
        print(json.dumps(result.to_json(), indent=2))
    else:
        for finding in result.findings:
            print(finding.format())
        if args.stats:
            for report in result.flag_reports:
                print(report.summary())
        errors = len(result.errors)
        warnings = len(result.findings) - errors
        print(f"linted {result.functions} functions "
              f"({', '.join(corpora)}): {errors} errors, "
              f"{warnings} warnings")
    return 1 if result.errors else 0


if __name__ == "__main__":
    sys.exit(main())
