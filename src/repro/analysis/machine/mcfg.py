"""Machine-level CFG reconstruction over freshly emitted bytes.

Recursive-descent decoding from the function entry plus every known
block label.  The resulting instruction map supports two audits that the
symbolic verifier itself does not perform:

* **overlap** — two reachable instructions whose byte ranges intersect
  without sharing a start address mean the encoder produced ambiguous
  bytes (or a jump targets the middle of an instruction);
* **unreachable bytes** — gaps never covered by any decoded instruction
  are dead bytes the emitter paid for (or worse, a block whose label was
  dropped).  Reported as a warning: dead code is waste, not unsoundness.

The block structure (``MBlock``) is what a second-ISA backend would need
to reimplement; everything else here is ISA-neutral bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.findings import ERROR, Finding, WARNING
from repro.analysis.machine.witness import CodeWitness
from repro.x86.decoder import DecodeError, decode_one
from repro.x86.instr import Imm, Instruction
from repro.x86.isa import control_class


@dataclass
class MBlock:
    """A maximal straight-line run of decoded instructions."""

    addr: int
    instructions: list[Instruction] = field(default_factory=list)
    successors: tuple[int, ...] = ()

    @property
    def end(self) -> int:
        if not self.instructions:
            return self.addr
        return self.instructions[-1].end


@dataclass
class MachineCFG:
    """Decoded control-flow graph of one emitted function."""

    blocks: dict[int, MBlock]
    findings: list[Finding]

    @property
    def ok(self) -> bool:
        return not any(f.is_error for f in self.findings)


def build_mcfg(witness: CodeWitness) -> MachineCFG:
    """Reconstruct the CFG of ``witness`` and audit the encoding."""
    base, end = witness.base, witness.end
    findings: list[Finding] = []

    def finding(checker: str, message: str, severity: str = ERROR) -> None:
        findings.append(Finding(checker=checker, function=witness.name,
                                message=message, severity=severity))

    # -- pass 1: reachable instruction starts -------------------------------
    decoded: dict[int, Instruction] = {}
    roots = [witness.entry, *witness.block_addrs.values()]
    work = sorted(set(roots))
    seen_roots = set(work)
    while work:
        pc = work.pop()
        while base <= pc < end and pc not in decoded:
            try:
                ins = decode_one(witness.code, pc - base, pc)
            except DecodeError as exc:
                finding("machine.cfg.decode-error",
                        f"undecodable bytes at {pc:#x}: {exc}")
                break
            decoded[pc] = ins
            klass = control_class(ins.mnemonic)
            if klass in ("jmp", "jcc"):
                tgt = ins.operands[0]
                if isinstance(tgt, Imm):
                    if base <= tgt.value < end:
                        if tgt.value not in decoded:
                            work.append(tgt.value)
                    else:
                        finding("machine.cfg.decode-error",
                                f"branch at {pc:#x} targets {tgt.value:#x} "
                                f"outside the function")
                if klass == "jmp":
                    break
            elif klass == "ret":
                break
            pc = ins.end

    # -- pass 2: overlap audit ----------------------------------------------
    starts = sorted(decoded)
    for i, s in enumerate(starts):
        e = decoded[s].end
        for j in range(i + 1, len(starts)):
            s2 = starts[j]
            if s2 >= e:
                break
            finding("machine.cfg.overlap",
                    f"instructions at {s:#x}..{e:#x} and {s2:#x} overlap")

    # -- pass 3: unreachable-byte audit --------------------------------------
    covered = 0
    gap_start = None
    gaps: list[tuple[int, int]] = []
    pc = base
    idx = 0
    while pc < end:
        if idx < len(starts) and starts[idx] == pc:
            if gap_start is not None:
                gaps.append((gap_start, pc))
                gap_start = None
            covered += decoded[pc].length
            pc = decoded[pc].end
            idx += 1
            while idx < len(starts) and starts[idx] < pc:
                idx += 1  # overlapping start, already reported above
        else:
            if gap_start is None:
                gap_start = pc
            pc += 1
    if gap_start is not None:
        gaps.append((gap_start, end))
    for lo, hi in gaps:
        finding("machine.cfg.unreachable-bytes",
                f"{hi - lo} unreachable byte(s) at {lo:#x}..{hi:#x}",
                severity=WARNING)

    # -- pass 4: fold instructions into blocks -------------------------------
    leaders = set(seen_roots)
    for s in starts:
        ins = decoded[s]
        klass = control_class(ins.mnemonic)
        if klass in ("jmp", "jcc"):
            tgt = ins.operands[0]
            if isinstance(tgt, Imm) and base <= tgt.value < end:
                leaders.add(tgt.value)
            if klass == "jcc":
                leaders.add(ins.end)
        elif klass == "ret":
            leaders.add(ins.end)
    blocks: dict[int, MBlock] = {}
    cur: MBlock | None = None
    for s in starts:
        ins = decoded[s]
        if cur is None or s in leaders:
            cur = MBlock(addr=s)
            blocks[s] = cur
        cur.instructions.append(ins)
        klass = control_class(ins.mnemonic)
        succs: tuple[int, ...] | None = None
        if klass == "jmp":
            tgt = ins.operands[0]
            succs = (tgt.value,) if isinstance(tgt, Imm) else ()
        elif klass == "jcc":
            tgt = ins.operands[0]
            succs = (tgt.value, ins.end) if isinstance(tgt, Imm) \
                else (ins.end,)
        elif klass == "ret":
            succs = ()
        elif ins.end in leaders:
            succs = (ins.end,)
        if succs is not None:
            cur.successors = succs
            cur = None
    return MachineCFG(blocks=blocks, findings=findings)
