"""IR-side symbolic executor: a term-level mirror of the lowering.

For every MiniLLVM construct this module computes the *same canonical
term* the machine-side executor derives from the emitted bytes, by
replaying the decisions of :class:`repro.ir.codegen.lower.Lowerer` and
the emitter symbolically:

* integer values are 64-bit zero-extended canonical terms; i32 operations
  pre-mask both operands and the result to 32 bits (32-bit register forms
  zero-extend on write, so the machine side does exactly this);
* fused compares (`icmp` used only by branches / selects) never
  materialize — branch sites rebuild the condition term from the compare's
  operands, mirroring ``_icmp_parts``;
* GEPs produce naive ``base + index*size`` linear terms; the ``lin``
  normal form provably absorbs every peeling `address_of` performs;
* loads/stores/calls go through the shared :class:`MemState` so effect
  order and load-fence terms line up with the machine side.

Also home to the IR liveness analysis the per-block induction needs.
Liveness is computed over *located* values: a value without a machine home
(fused compare, folded GEP, copy-propagated cast) is expanded into the
located values it is recomputed from.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.analysis.machine import terms as T
from repro.analysis.machine.state import Inconclusive, MemState
from repro.ir import instructions as I
from repro.ir.irtypes import DoubleType, IntType, PointerType, VectorType
from repro.ir.module import BasicBlock, Function, GlobalVariable
from repro.ir.values import (
    Argument, Constant, ConstantFP, ConstantVector, Undef, Value,
)

#: icmp predicate -> emitter condition code (mirror of Lowerer._icmp_parts)
ICMP_CC = {"eq": "e", "ne": "ne", "slt": "l", "sle": "le", "sgt": "g",
           "sge": "ge", "ult": "b", "ule": "be", "ugt": "a", "uge": "ae"}

#: fcmp predicate -> cc (mirror of lower._FCMP_CC; ucomisd semantics)
FCMP_CC = {
    "oeq": "e", "one": "ne", "olt": "b", "ole": "be", "ogt": "a", "oge": "ae",
    "ueq": "e", "une": "ne", "ult": "b", "ule": "be", "ugt": "a", "uge": "ae",
}


def fp_bits(v: float) -> int:
    return int.from_bytes(struct.pack("<d", float(v)), "little")


def _cls_of(t) -> str:
    if isinstance(t, DoubleType):
        return "f"
    if isinstance(t, VectorType) or (isinstance(t, IntType) and t.bits == 128):
        return "v"
    return "i"


def _is_leaf(v: Value) -> bool:
    return isinstance(v, (Constant, ConstantFP, ConstantVector, Undef,
                          GlobalVariable, Function))


# -- liveness over located values ---------------------------------------------


class Liveness:
    """live_in/live_out per block, in terms of located values.

    ``expand(v)`` maps a value to the set of located values needed to
    recompute it: located values map to themselves; leaves to nothing;
    location-less instructions to the union over their operands.
    """

    def __init__(self, func: Function, value_locs: dict[int, tuple]) -> None:
        self.func = func
        self.locs = value_locs
        self.by_id: dict[int, Value] = {}
        for a in func.args:
            self.by_id[id(a)] = a
        for ins in func.instructions():
            self.by_id[id(ins)] = ins
        self._expand_cache: dict[int, frozenset[int]] = {}
        self.live_in: dict[str, frozenset[int]] = {}
        self._compute()

    def expand(self, v: Value) -> frozenset[int]:
        key = id(v)
        got = self._expand_cache.get(key)
        if got is not None:
            return got
        if _is_leaf(v):
            out: frozenset[int] = frozenset()
        elif key in self.locs or isinstance(v, (Argument, I.Phi)):
            out = frozenset((key,))
        elif isinstance(v, I.Instruction):
            self._expand_cache[key] = frozenset()  # cycle guard
            acc: set[int] = set()
            for op in v.operands:
                acc |= self.expand(op)
            out = frozenset(acc)
        else:
            out = frozenset()
        self._expand_cache[key] = out
        return out

    def _uses(self, ins: I.Instruction) -> frozenset[int]:
        acc: set[int] = set()
        for op in ins.operands:
            acc |= self.expand(op)
        return frozenset(acc)

    def _compute(self) -> None:
        func = self.func
        live_in: dict[str, set[int]] = {b.name: set() for b in func.blocks}
        changed = True
        while changed:
            changed = False
            for blk in reversed(func.blocks):
                live: set[int] = set()
                for succ in blk.successors():
                    sl = set(live_in[succ.name])
                    for phi in succ.phis():
                        sl.discard(id(phi))
                        if id(phi) in self.locs:
                            inc = phi.incoming_for(blk)
                            if inc is not None:
                                sl |= self.expand(inc)
                    live |= sl
                for ins in reversed(blk.instructions):
                    if isinstance(ins, I.Phi):
                        continue
                    live.discard(id(ins))
                    live |= self._uses(ins)
                for phi in blk.phis():
                    live.discard(id(phi))
                if live != live_in[blk.name]:
                    live_in[blk.name] = live
                    changed = True
        self.live_in = {k: frozenset(v) for k, v in live_in.items()}

    def check_set(self, blk: BasicBlock) -> list[Value]:
        """Values whose location must be proven at entry to ``blk``."""
        ids = set(self.live_in[blk.name])
        for phi in blk.phis():
            if id(phi) in self.locs:
                ids.add(id(phi))
        return [self.by_id[i] for i in sorted(ids)]


# -- the mirror executor ------------------------------------------------------


@dataclass
class IRPath:
    """One symbolic path through the IR of a single extended block."""

    block: BasicBlock
    index: int
    env: dict[int, T.Term]
    mem: MemState
    constraints: list[T.Term] = field(default_factory=list)

    def fork(self) -> "IRPath":
        return IRPath(self.block, self.index, dict(self.env),
                      self.mem.clone(), list(self.constraints))


@dataclass
class IRExit:
    """Where an IR path left the block."""

    kind: str                     # 'edge' | 'ret' | 'trap'
    constraints: frozenset
    env: dict[int, T.Term]
    mem: MemState
    landing: BasicBlock | None = None   # for 'edge'
    phi_terms: dict[int, T.Term] = field(default_factory=dict)
    ret_term: T.Term | None = None      # for 'ret' (None for void)
    ret_cls: str = ""


class IRExecutor:
    """Mirrors the lowering over one block, forking at conditional exits."""

    def __init__(self, witness, arities: dict[str, tuple[int, int]],
                 max_paths: int = 64) -> None:
        self.wit = witness
        self.func: Function = witness.func
        self.arities = arities
        self.max_paths = max_paths
        self._use_counts: dict[int, int] = {}
        self._branch_only: dict[int, bool] = {}
        self._select_only: dict[int, bool] = {}
        for ins in self.func.instructions():
            for op in ins.operands:
                self._use_counts[id(op)] = self._use_counts.get(id(op), 0) + 1

    # -- lowering-predicate mirrors ------------------------------------------

    def _single_use_here(self, value: Value, user: I.Instruction) -> bool:
        if self._use_counts.get(id(value), 0) != 1:
            return False
        for op in user.operands:
            if op is value:
                return True
        return False

    def only_used_by_branches(self, value: Value) -> bool:
        got = self._branch_only.get(id(value))
        if got is not None:
            return got
        ok = True
        for ins in self.func.instructions():
            for op in ins.operands:
                if op is value:
                    if not (isinstance(ins, I.Br) and ins.is_conditional
                            and self._single_use_here(value, ins)):
                        ok = False
        self._branch_only[id(value)] = ok
        return ok

    def only_used_by_selects(self, value: Value) -> bool:
        got = self._select_only.get(id(value))
        if got is not None:
            return got
        ok = True
        for ins in self.func.instructions():
            for op in ins.operands:
                if op is value and not isinstance(ins, I.Select):
                    ok = False
        self._select_only[id(value)] = ok
        return ok

    # -- terms ----------------------------------------------------------------

    def term(self, p: IRPath, v: Value) -> T.Term:
        """Canonical term of ``v`` (for 'v'-class values: a lane pair)."""
        got = p.env.get(id(v))
        if got is not None:
            return got
        t = self._leaf_or_recompute(p, v)
        p.env[id(v)] = t
        return t

    def _leaf_or_recompute(self, p: IRPath, v: Value) -> T.Term:
        if isinstance(v, Constant):
            if _cls_of(v.type) == "v":
                raw = v.value
                return (T.const(raw & T.MASK64), T.const(raw >> 64))
            return T.const(v.value)
        if isinstance(v, ConstantFP):
            return T.const(fp_bits(v.value))
        if isinstance(v, ConstantVector):
            elems = v.elements
            e0 = elems[0].value if hasattr(elems[0], "value") else 0.0
            e1 = elems[1].value if len(elems) > 1 and hasattr(elems[1], "value") else 0.0
            return (T.const(fp_bits(float(e0))), T.const(fp_bits(float(e1))))
        if isinstance(v, Undef):
            cls = _cls_of(v.type)
            return (0, 0) if cls == "v" else 0
        if isinstance(v, GlobalVariable):
            if v.addr is None:
                raise Inconclusive(f"global @{v.name} unplaced")
            return T.const(v.addr)
        if isinstance(v, Argument):
            raise Inconclusive(f"argument %{v.name} not seeded")
        if isinstance(v, I.Phi):
            raise Inconclusive("phi demanded outside its env")
        if isinstance(v, I.Instruction):
            return self._recompute(p, v)
        raise Inconclusive(f"cannot evaluate {v!r}")

    def _recompute(self, p: IRPath, ins: I.Instruction) -> T.Term:
        """Pure recomputation of a location-less instruction's value."""
        if isinstance(ins, I.BinOp):
            return self._binop_term(p, ins)
        if isinstance(ins, I.ICmp):
            a, b, cc, w = self._icmp_parts(p, ins)
            return T.cc_term(cc, w, a, b)
        if isinstance(ins, I.FCmp):
            if ins.pred not in FCMP_CC:
                raise Inconclusive(f"fcmp {ins.pred}")
            return T.fcc_term(FCMP_CC[ins.pred],
                              self.lo(self.term(p, ins.operands[0])),
                              self.lo(self.term(p, ins.operands[1])))
        if isinstance(ins, I.GEP):
            return self._gep_term(p, ins)
        if isinstance(ins, I.Cast):
            return self._cast_term(p, ins)
        if isinstance(ins, I.Alloca):
            return self._alloca_term(ins)
        if isinstance(ins, I.Select) and _cls_of(ins.type) == "i":
            cond, a_v, b_v = ins.operands
            return T.ite(self._select_cond(p, cond),
                         self.term(p, a_v), self.term(p, b_v))
        raise Inconclusive(f"cannot recompute {ins.opcode} without a home")

    @staticmethod
    def lo(t: T.Term) -> T.Term:
        return t[0] if isinstance(t, tuple) and len(t) == 2 and not isinstance(t[0], str) else t

    # -- op mirrors -----------------------------------------------------------

    def _int_operand(self, p: IRPath, v: Value) -> T.Term:
        """Mirror of Lowerer.int_operand (immediates stay sign-extended)."""
        if isinstance(v, Constant) and -(2**31) <= v.signed < 2**31:
            return T.const(v.signed)
        return self.term(p, v)

    def _sext64(self, p: IRPath, v: Value) -> T.Term:
        bits = v.type.bits
        t = self.term(p, v)
        if bits in (64, 1):
            return t
        return T.sext(8 * max(1, bits // 8), t)

    def _icmp_parts(self, p: IRPath, cmp: I.ICmp
                    ) -> tuple[T.Term, T.Term, str, int]:
        t = cmp.operands[0].type
        bits = t.bits if isinstance(t, IntType) else 64
        signed = cmp.pred in ("slt", "sle", "sgt", "sge")
        width = 8
        if bits in (64, 1) or not signed:
            a = self.term(p, cmp.operands[0])
            b = self._int_operand(p, cmp.operands[1])
        elif bits == 32:
            width = 4
            a = self.term(p, cmp.operands[0])
            rhs = cmp.operands[1]
            b = T.const(rhs.signed) if isinstance(rhs, Constant) else self.term(p, rhs)
        else:
            a = self._sext64(p, cmp.operands[0])
            rhs = cmp.operands[1]
            b = T.const(rhs.signed) if isinstance(rhs, Constant) \
                else self._sext64(p, rhs)
        return a, b, ICMP_CC[cmp.pred], width

    def _binop_term(self, p: IRPath, ins: I.BinOp) -> T.Term:
        t = ins.type
        a_v, b_v = ins.operands
        opc = ins.opcode
        if isinstance(t, VectorType) or (isinstance(t, IntType) and t.bits == 128):
            a = self.term(p, a_v)
            b = self.term(p, b_v)
            if opc in ("fadd", "fsub", "fmul"):
                return (T.fp_term(opc, a[0], b[0]), T.fp_term(opc, a[1], b[1]))
            if opc in ("and", "or", "xor"):
                op = {"and": T.op_and, "or": T.op_or, "xor": T.op_xor}[opc]
                return (op(a[0], b[0]), op(a[1], b[1]))
            raise Inconclusive(f"vector {opc}")
        if isinstance(t, DoubleType):
            return T.fp_term({"fadd": "fadd", "fsub": "fsub", "fmul": "fmul",
                              "fdiv": "fdiv"}[opc],
                             self.lo(self.term(p, a_v)), self.lo(self.term(p, b_v)))
        assert isinstance(t, IntType)
        bits = t.bits
        width = 4 if bits == 32 else 8
        mask_after = bits not in (32, 64) and opc not in ("and", "or", "lshr")

        def at_w(x: T.Term) -> T.Term:
            return T.mask(32, x) if width == 4 else x

        if opc in ("add", "sub", "mul", "and", "or", "xor", "shl", "lshr"):
            a = at_w(self.term(p, a_v))
            b = at_w(self._int_operand(p, b_v))
            if opc == "add":
                res = T.op_add(a, b)
            elif opc == "sub":
                res = T.op_sub(a, b)
            elif opc == "mul":
                res = T.op_mul(a, b)
            elif opc == "and":
                res = T.op_and(a, b)
            elif opc == "or":
                res = T.op_or(a, b)
            elif opc == "xor":
                res = T.op_xor(a, b)
            elif opc == "shl":
                res = T.op_shl(width, a, b)
            else:
                res = T.op_shr(width, a, b)
            res = at_w(res)
        elif opc == "ashr":
            a = self._sext64(p, a_v) if bits not in (32, 64) \
                else self.term(p, a_v)
            b = self._int_operand(p, b_v)
            res = at_w(T.op_sar(width, at_w(a), at_w(b) if not isinstance(b, int) else b))
        elif opc in ("sdiv", "srem", "udiv", "urem"):
            if opc in ("udiv", "urem") and bits == 32:
                raise Inconclusive("udiv i32 is not lowered")
            if bits in (32, 64) or opc in ("udiv", "urem"):
                a = self.term(p, a_v)
                b = self.term(p, b_v) if opc in ("sdiv", "srem") \
                    else self._int_operand(p, b_v)
            else:
                a = self._sext64(p, a_v)
                b = T.const(b_v.signed) if isinstance(b_v, Constant) \
                    else self._sext64(p, b_v)
            op = T.op_idiv if opc in ("sdiv", "udiv") else T.op_irem
            res = at_w(op(width, at_w(a), at_w(b)))
        else:
            raise Inconclusive(f"binop {opc}")
        if mask_after:
            res = T.mask(1 if bits == 1 else 8 * max(1, bits // 8), res)
        return res

    def _gep_term(self, p: IRPath, g: I.GEP) -> T.Term:
        base = self.term(p, g.operands[0])
        idx = g.operands[1]
        size = g.elem.size_bytes()
        if isinstance(idx, Constant):
            return T.op_add(base, T.const(idx.signed * size))
        if isinstance(idx.type, IntType) and idx.type.bits != 64:
            raise Inconclusive("non-i64 GEP index")
        return T.op_add(base, T.op_scale(self.term(p, idx), size))

    def _alloca_term(self, ins: I.Alloca) -> T.Term:
        off = self.wit.alloca_offsets.get(id(ins))
        if off is None:
            raise Inconclusive("alloca without frame slot")
        return T.stack_addr(off - 8)  # rbp = rsp0 - 8

    def _cast_term(self, p: IRPath, ins: I.Cast) -> T.Term:
        (src,) = ins.operands
        op = ins.opcode
        dst_t = ins.type
        if op == "trunc":
            bits = dst_t.bits
            t = self.term(p, src)
            if _cls_of(src.type) == "v":
                t = t[0]
            if bits == 64:
                return t
            if bits == 1:
                return T.mask(1, t)
            if bits < 8:
                raise Inconclusive(f"trunc to i{bits}")
            return T.mask(8 * (bits // 8), t)
        if op == "zext":
            if _cls_of(dst_t) == "v":
                return (self.term(p, src), 0)
            return self.term(p, src)
        if op == "sext":
            sbits = src.type.bits
            dbits = dst_t.bits
            v = self._sext64(p, src) if sbits > 1 else self.term(p, src)
            if sbits == 1 and dbits > 1:
                neg = T.op_neg(v)
                return T.mask(8 * (dbits // 8), neg) if dbits < 64 else neg
            return T.mask(8 * (dbits // 8), v) if dbits < 64 else v
        if op in ("inttoptr", "ptrtoint"):
            return self.term(p, src)
        if op == "bitcast":
            scls, dcls = _cls_of(src.type), _cls_of(dst_t)
            t = self.term(p, src)
            if scls == dcls:
                return t
            if scls == "i" and dcls == "f":
                return t
            if scls == "f" and dcls == "i":
                return self.lo(t)
            if scls == "f" and dcls == "v":
                return (self.lo(t), 0)
            if scls == "v" and dcls == "f":
                return t[0]
            raise Inconclusive(f"bitcast {src.type} -> {dst_t}")
        if op in ("sitofp", "uitofp"):
            v = self._sext64(p, src) if op == "sitofp" else self.term(p, src)
            return ("cvt_i2f", v)
        if op == "fptosi":
            t = ("cvt_f2i", self.lo(self.term(p, src)))
            bits = dst_t.bits
            return T.mask(8 * (bits // 8), t) if bits < 64 else t
        raise Inconclusive(f"cast {op}")

    def _select_cond(self, p: IRPath, cond: Value) -> T.Term:
        if isinstance(cond, I.ICmp) and self.only_used_by_selects(cond):
            a, b, cc, w = self._icmp_parts(p, cond)
            return T.cc_term(cc, w, a, b)
        return T.cc_term("ne", 8, self.term(p, cond), 0)

    def _branch_cond(self, p: IRPath, cond: Value, at: I.Instruction) -> T.Term:
        """Mirror of Lowerer._terminator / _emit_cond_jump condition forms."""
        if isinstance(cond, I.ICmp) and self._single_use_here(cond, at):
            a, b, cc, w = self._icmp_parts(p, cond)
            return T.cc_term(cc, w, a, b)
        if isinstance(cond, I.FCmp) and self._single_use_here(cond, at) \
                and cond.pred in FCMP_CC:
            return T.fcc_term(FCMP_CC[cond.pred],
                              self.lo(self.term(p, cond.operands[0])),
                              self.lo(self.term(p, cond.operands[1])))
        return T.cc_term("ne", 8, self.term(p, cond), 0)

    def _diamond_cond(self, p: IRPath, cond: Value) -> T.Term:
        """Mirror of _emit_cond_jump (float-select diamonds)."""
        if isinstance(cond, I.ICmp):
            a, b, cc, w = self._icmp_parts(p, cond)
            return T.cc_term(cc, w, a, b)
        return T.cc_term("ne", 8, self.term(p, cond), 0)

    # -- memory ---------------------------------------------------------------

    def _store_val(self, t: T.Term, w: int) -> T.Term:
        return T.mask(8 * w, t) if w < 8 else t

    def _do_load(self, p: IRPath, addr: T.Term, w: int) -> T.Term:
        off = T.stack_offset(addr)
        if off is not None:
            return p.mem.stack_read(off, w)
        if isinstance(addr, int):
            lo, hi = self.wit.rodata_range
            if lo <= addr and addr + w <= hi and self.wit.read_rodata is not None:
                return T.const(int.from_bytes(self.wit.read_rodata(addr, w), "little"))
        return p.mem.load(addr, w)

    def _do_store(self, p: IRPath, addr: T.Term, w: int, val: T.Term) -> None:
        off = T.stack_offset(addr)
        if off is not None:
            p.mem.stack_write(off, w, self._store_val(val, w))
            return
        p.mem.store(addr, w, self._store_val(val, w))

    # -- execution ------------------------------------------------------------

    def run_block(self, block: BasicBlock, env: dict[int, T.Term],
                  mem: MemState) -> list[IRExit]:
        """Execute ``block`` from ``env``; fork at conditional exits."""
        exits: list[IRExit] = []
        work = [IRPath(block, 0, env, mem)]
        while work:
            p = work.pop()
            self._run_path(p, work, exits)
            if len(exits) + len(work) > self.max_paths:
                raise Inconclusive("too many IR paths")
        return exits

    def _run_path(self, p: IRPath, work: list[IRPath],
                  exits: list[IRExit]) -> None:
        instrs = p.block.instructions
        while p.index < len(instrs):
            ins = instrs[p.index]
            p.index += 1
            if isinstance(ins, I.Phi):
                continue
            if ins.is_terminator:
                self._terminator(p, ins, work, exits)
                return
            if not self._instr(p, ins, work):
                return  # forked; clones continue from the worklist
        raise Inconclusive(f"block {p.block.name} lacks a terminator")

    def _instr(self, p: IRPath, ins: I.Instruction, work: list[IRPath]) -> bool:
        """Execute one instruction; False if the path forked (select diamond)."""
        if isinstance(ins, I.Select) and _cls_of(ins.type) != "i":
            cond = self._diamond_cond(p, ins.operands[0])
            neg = T.negate_cond(cond)
            if isinstance(cond, int):
                p.env[id(ins)] = self.term(
                    p, ins.operands[1] if cond else ins.operands[2])
                return True
            if neg is None:
                raise Inconclusive("unnegatable select condition")
            q = p.fork()
            p.constraints.append(cond)
            p.env[id(ins)] = self.term(p, ins.operands[1])
            q.constraints.append(neg)
            q.env[id(ins)] = self.term(q, ins.operands[2])
            work.append(p)
            work.append(q)
            return False
        if isinstance(ins, (I.BinOp, I.GEP, I.Cast, I.Alloca)):
            p.env[id(ins)] = self._recompute(p, ins)
            return True
        if isinstance(ins, I.ICmp):
            if not self.only_used_by_branches(ins):
                a, b, cc, w = self._icmp_parts(p, ins)
                p.env[id(ins)] = T.cc_term(cc, w, a, b)
            return True
        if isinstance(ins, I.FCmp):
            if not self.only_used_by_branches(ins):
                if ins.pred not in FCMP_CC:
                    raise Inconclusive(f"fcmp {ins.pred}")
                p.env[id(ins)] = T.fcc_term(
                    FCMP_CC[ins.pred],
                    self.lo(self.term(p, ins.operands[0])),
                    self.lo(self.term(p, ins.operands[1])))
            return True
        if isinstance(ins, I.Select):  # integer select: no fork
            cond, a_v, b_v = ins.operands
            p.env[id(ins)] = T.ite(self._select_cond(p, cond),
                                   self.term(p, a_v), self.term(p, b_v))
            return True
        if isinstance(ins, I.Load):
            self._load(p, ins)
            return True
        if isinstance(ins, I.Store):
            self._store(p, ins)
            return True
        if isinstance(ins, I.ExtractElement):
            vec, idx = ins.operands
            if not isinstance(idx, Constant):
                raise Inconclusive("dynamic extractelement")
            p.env[id(ins)] = self.term(p, vec)[idx.value & 1]
            return True
        if isinstance(ins, I.InsertElement):
            vec, val, idx = ins.operands
            if not isinstance(idx, Constant):
                raise Inconclusive("dynamic insertelement")
            vt = self.term(p, vec)
            sv = self.lo(self.term(p, val))
            p.env[id(ins)] = (sv, vt[1]) if idx.value == 0 else (vt[0], sv)
            return True
        if isinstance(ins, I.ShuffleVector):
            a, b = ins.operands
            m0, m1 = ins.mask
            at = self.term(p, a if m0 < 2 else b)
            bt = self.term(p, a if m1 < 2 else b)
            p.env[id(ins)] = (at[m0 & 1], bt[m1 & 1])
            return True
        if isinstance(ins, I.Call):
            self._call(p, ins)
            return True
        raise Inconclusive(f"cannot mirror {ins.opcode}")

    def _load(self, p: IRPath, ins: I.Load) -> None:
        t = ins.type
        addr = self.term(p, ins.operands[0])
        cls = _cls_of(t)
        if cls == "f":
            p.env[id(ins)] = self._do_load(p, addr, 8)
        elif cls == "v":
            lo = self._do_load(p, addr, 8)
            hi = self._do_load(p, T.op_add(addr, 8), 8)
            p.env[id(ins)] = (lo, hi)
        else:
            width = t.size_bytes() if isinstance(t, IntType) else 8
            if isinstance(t, IntType) and t.bits == 1:
                width = 1
            val = self._do_load(p, addr, width)
            if isinstance(t, IntType) and t.bits == 1:
                val = T.mask(1, val)
            p.env[id(ins)] = val

    def _store(self, p: IRPath, ins: I.Store) -> None:
        value, pointer = ins.operands
        t = value.type
        addr = self.term(p, pointer)
        cls = _cls_of(t)
        if cls == "f":
            self._do_store(p, addr, 8, self.lo(self.term(p, value)))
        elif cls == "v":
            vt = self.term(p, value)
            self._do_store(p, addr, 8, vt[0])
            self._do_store(p, T.op_add(addr, 8), 8, vt[1])
        else:
            width = t.size_bytes() if isinstance(t, IntType) else 8
            self._do_store(p, addr, width, self.term(p, value))

    #: SWAR popcount constants, mirroring Lowerer._intrinsic
    _CTPOP = ((1, 0x55), (2, 0x33), (4, 0x0F))

    def _call(self, p: IRPath, ins: I.Call) -> None:
        if ins.intrinsic:
            name = ins.callee_name
            if name.startswith("llvm.ctpop"):
                v = self.term(p, ins.operands[0])
                t3 = T.op_sub(v, T.op_and(T.op_shr(8, v, 1), 0x55))
                a3 = T.op_add(T.op_and(t3, 0x33),
                              T.op_and(T.op_shr(8, t3, 2), 0x33))
                b2 = T.op_add(a3, T.op_shr(8, a3, 4))
                p.env[id(ins)] = T.op_and(b2, 0x0F)
                return
            raise Inconclusive(f"intrinsic {name}")
        iargs: list[T.Term] = []
        fargs: list[T.Term] = []
        for arg in ins.operands:
            cls = _cls_of(arg.type)
            if cls == "f":
                fargs.append(self.lo(self.term(p, arg)))
            elif cls == "i":
                iargs.append(self.term(p, arg))
            else:
                raise Inconclusive("vector call argument")
        escapes = any(T.references_stack(t) for t in iargs)
        n = p.mem.call(("call", ins.callee_name, tuple(iargs), tuple(fargs)),
                       escapes)
        if not ins.type.is_void:
            if _cls_of(ins.type) == "f":
                p.env[id(ins)] = ("fret", n)
            else:
                p.env[id(ins)] = ("ret", n)

    # -- terminators and edges ------------------------------------------------

    def _terminator(self, p: IRPath, ins: I.Instruction,
                    work: list[IRPath], exits: list[IRExit]) -> None:
        if isinstance(ins, I.Ret):
            rt = None
            rc = ""
            if ins.value is not None:
                rc = _cls_of(ins.value.type)
                rt = self.lo(self.term(p, ins.value)) if rc == "f" \
                    else self.term(p, ins.value)
                if rc == "v":
                    raise Inconclusive("vector return")
            exits.append(IRExit("ret", frozenset(p.constraints), p.env, p.mem,
                                ret_term=rt, ret_cls=rc))
            return
        if isinstance(ins, I.Unreachable):
            exits.append(IRExit("trap", frozenset(p.constraints), p.env, p.mem))
            return
        if isinstance(ins, I.Br):
            if not ins.is_conditional:
                self._edge(p, p.block, ins.targets[0], exits)
                return
            cond = self._branch_cond(p, ins.operands[0], ins)
            if isinstance(cond, int):
                self._edge(p, p.block, ins.targets[0 if cond else 1], exits)
                return
            neg = T.negate_cond(cond)
            if neg is None:
                raise Inconclusive("unnegatable branch condition")
            q = p.fork()
            p.constraints.append(cond)
            self._edge(p, p.block, ins.targets[0], exits)
            q.constraints.append(neg)
            self._edge(q, q.block, ins.targets[1], exits)
            return
        raise Inconclusive(f"terminator {ins.opcode}")

    def _edge(self, p: IRPath, pred: BasicBlock, succ: BasicBlock,
              exits: list[IRExit]) -> None:
        """Resolve the edge pred->succ, following label-less forward blocks."""
        phi_terms: dict[int, T.Term] = {}
        seen: set[int] = set()
        for _hop in range(64):
            phi_terms = {}
            for phi in succ.phis():
                inc = phi.incoming_for(pred)
                if inc is None:
                    raise Inconclusive(f"phi %{phi.name}: no incoming for {pred.name}")
                if isinstance(inc, Undef):
                    continue
                phi_terms[id(phi)] = self.term(p, inc)
            if succ.name in self.wit.block_addrs:
                exits.append(IRExit("edge", frozenset(p.constraints), p.env,
                                    p.mem, landing=succ, phi_terms=phi_terms))
                return
            if succ.terminator is not None \
                    and isinstance(succ.terminator, I.Unreachable):
                exits.append(IRExit("trap", frozenset(p.constraints),
                                    p.env, p.mem))
                return
            # transparent block: bind its phis, execute its body purely,
            # and follow its unconditional branch
            if id(succ) in seen:
                raise Inconclusive("forwarding cycle")
            seen.add(id(succ))
            p.env.update(phi_terms)
            effects_before = len(p.mem.effects)
            for ins in succ.instructions:
                if isinstance(ins, I.Phi) or ins.is_terminator:
                    continue
                if isinstance(ins, (I.Store, I.Call)):
                    raise Inconclusive(
                        f"effectful instruction in label-less block {succ.name}")
                if not self._instr(p, ins, []):
                    raise Inconclusive(
                        f"forking instruction in label-less block {succ.name}")
            if len(p.mem.effects) != effects_before:
                raise Inconclusive(f"effects in label-less block {succ.name}")
            term = succ.terminator
            if not isinstance(term, I.Br) or term.is_conditional:
                raise Inconclusive(
                    f"label-less block {succ.name} has a non-trivial exit")
            pred, succ = succ, term.targets[0]
        raise Inconclusive("forwarding chain too long")
