"""Machine-level translation validator.

Decodes the bytes the backend just emitted, symbolically executes every
basic block over an abstract register/flag/stack state, and checks the
result against the source MiniLLVM IR block by block.  The proof is an
induction over the block invariant

    at entry to block B, loc(v) holds term(v) for every live-in v

seeded with fresh symbolic values per block and discharged at every
successor edge (with phi substitution) and at every return.  Both sides
build values through :mod:`repro.analysis.machine.terms`, so semantic
correspondence reduces to structural equality of canonical terms.

Beyond value correspondence the executor enforces the machine-only
obligations: register-allocation soundness (a clobbered live value shows
up as a term mismatch at the next edge), callee-saved discipline and
return-address integrity at ``ret``, balanced stack adjustments, no
writes into the protected save area, no accesses below the red zone, and
no stores over the return sentinel.

The driver is ISA-neutral: everything x86-specific lives in the
:class:`X86Executor`; a second ISA plugs in by providing another executor
with the same ``seed_entry / seed_block / run`` surface.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.findings import ERROR, Finding, WARNING
from repro.analysis.machine import terms as T
from repro.analysis.machine.irexec import IRExecutor, IRExit, IRPath, Liveness, _cls_of
from repro.analysis.machine.state import Inconclusive, MemState, match_effects
from repro.analysis.machine.witness import CodeWitness
from repro.cpu.image import RETURN_SENTINEL
from repro.ir import instructions as I
from repro.x86 import registers as R
from repro.x86.decoder import DecodeError, decode_one
from repro.x86.instr import Imm, Instruction, Mem, Reg
from repro.x86.isa import cc_of, control_class

PROVED = "proved"
REFUTED = "refuted"
INCONCLUSIVE = "inconclusive"

#: condition codes both executors can evaluate against cmp/ucomisd flags
_USABLE_CC = frozenset({"e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae"})

_CALLEE_SAVED = frozenset(R.SYSV_CALLEE_SAVED)

#: mnemonics that leave RFLAGS untouched
_FLAG_PRESERVING = frozenset({
    "mov", "movzx", "movsx", "movsxd", "lea", "push", "pop", "nop",
    "movsd", "movupd", "movapd", "movhpd", "movlpd", "movq",
    "unpcklpd", "unpckhpd", "haddpd", "shufpd",
    "pxor", "pand", "por", "xorpd", "andpd", "orpd",
    "addsd", "subsd", "mulsd", "divsd", "addpd", "subpd", "mulpd",
    "cvtsi2sd", "cvttsd2si", "cqo", "cdq", "not",
})


class _Refuted(Exception):
    """Abort the current run; the ERROR finding is already recorded."""


@dataclass(frozen=True)
class VerifyOptions:
    """Budget knobs for one verification run."""

    max_paths: int = 64       #: symbolic paths per block (both sides)
    max_steps: int = 4096     #: machine instructions per path


@dataclass
class VerifyResult:
    """Outcome of verifying one compiled function."""

    verdict: str                       #: proved | refuted | inconclusive
    findings: list[Finding] = field(default_factory=list)
    reasons: list[str] = field(default_factory=list)  #: inconclusive causes
    blocks_checked: int = 0
    paths_checked: int = 0
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.verdict == PROVED


@dataclass
class MachState:
    """Abstract x86 machine state along one symbolic path."""

    regs: list          #: 16 GPR terms (64-bit canonical)
    xmm: list           #: 16 (lo, hi) lane-term pairs
    flags: object       #: None | ("icmp",w,a,b) | ("fcmp",a,b) | ("arith",)
    mem: MemState
    constraints: list
    pc: int = 0
    steps: int = 0
    prologue_ok: bool = False   #: writes into the save area allowed

    def clone(self) -> "MachState":
        return MachState(list(self.regs), list(self.xmm), self.flags,
                         self.mem.clone(), list(self.constraints),
                         self.pc, self.steps, self.prologue_ok)


@dataclass
class MachExit:
    """Where one machine path left the block."""

    kind: str                  #: 'edge' | 'ret' | 'trap'
    constraints: frozenset
    state: MachState
    pc: int = 0                #: target block address for 'edge'
    retaddr: object = None     #: popped return-address term for 'ret'


class X86Executor:
    """Symbolic interpreter for the decoded x86 bytes of one function."""

    def __init__(self, verifier: "MachineVerifier") -> None:
        self.v = verifier
        self.wit = verifier.wit
        self._decode_cache: dict[int, Instruction] = {}
        saves = self.wit.used_callee_saved
        #: [lo, hi) of retaddr + saved rbp + saved callee regs, rsp0-relative
        self.protected = (-(8 + 8 * len(saves)), 8)
        self.frame_total = 8 + 8 * len(saves) + self.wit.local_size

    # -- seeding --------------------------------------------------------------

    def seed_entry(self) -> MachState:
        regs = [("sym", f"reg:{R.gp_name(i, 8)}") for i in range(16)]
        xmm = [(("sym", ("xlo", j)), ("sym", ("xhi", j))) for j in range(16)]
        iarg = farg = 0
        for arg in self.wit.func.args:
            cls = _cls_of(arg.type)
            if cls == "i":
                if iarg >= len(R.SYSV_INT_ARGS):
                    raise Inconclusive("more than 6 integer arguments")
                regs[R.SYSV_INT_ARGS[iarg]] = ("sym", ("iarg", iarg))
                iarg += 1
            elif cls == "f":
                if farg >= 8:
                    raise Inconclusive("more than 8 float arguments")
                xmm[farg] = (("sym", ("farg", farg)), ("sym", ("farghi", farg)))
                farg += 1
            else:
                raise Inconclusive("vector argument")
        regs[R.RSP] = T.RSP0
        st = MachState(regs, xmm, None, MemState(self.v.alloca_ranges), [],
                       pc=self.wit.entry, prologue_ok=True)
        st.mem.stack[0] = (8, ("sym", "retaddr"))
        return st

    def seed_block(self, addr: int) -> MachState:
        regs = [("sym", ("loc", i)) for i in range(16)]
        regs[R.RSP] = T.stack_addr(-self.frame_total)
        regs[R.RBP] = T.stack_addr(-8)
        xmm = [(("sym", ("xlo", j)), ("sym", ("xhi", j))) for j in range(16)]
        return MachState(regs, xmm, None, MemState(self.v.alloca_ranges), [],
                         pc=addr)

    def seed_value(self, loc: tuple, cls: str):
        """The IR-side term for a value homed at ``loc`` at block entry."""
        kind, n = loc
        if kind == "reg":
            return ("sym", ("loc", n))
        if kind == "xmm":
            lo = ("sym", ("xlo", n))
            return (lo, ("sym", ("xhi", n))) if cls == "v" else lo
        if kind == "spill":
            lo = ("sload", 0, n - 8, 8)
            return (lo, ("sload", 0, n, 8)) if cls == "v" else lo
        raise Inconclusive(f"unknown location {loc!r}")

    def read_loc(self, st: MachState, loc: tuple, cls: str):
        """What the machine currently holds at ``loc``."""
        kind, n = loc
        if kind == "reg":
            return st.regs[n]
        if kind == "xmm":
            return st.xmm[n] if cls == "v" else st.xmm[n][0]
        if kind == "spill":
            lo = st.mem.stack_read(n - 8, 8)
            return (lo, st.mem.stack_read(n, 8)) if cls == "v" else lo
        raise Inconclusive(f"unknown location {loc!r}")

    # -- the run loop ---------------------------------------------------------

    def run(self, st: MachState) -> list[MachExit]:
        exits: list[MachExit] = []
        work = [st]
        opts = self.v.opts
        while work:
            s = work.pop()
            while True:
                if s.steps > 0 and s.pc in self.v.stops:
                    exits.append(MachExit("edge", frozenset(s.constraints),
                                          s, pc=s.pc))
                    break
                ins = self._decode(s.pc)
                s.steps += 1
                if s.steps > opts.max_steps:
                    raise Inconclusive("machine path exceeds step budget")
                done = self._exec(s, ins, work)
                if done is not None:
                    exits.append(done)
                    break
                if len(work) + len(exits) > opts.max_paths:
                    raise Inconclusive("too many machine paths")
        return exits

    def _decode(self, pc: int) -> Instruction:
        got = self._decode_cache.get(pc)
        if got is not None:
            return got
        wit = self.wit
        if not wit.base <= pc < wit.end:
            self.v.error("machine.decode",
                         f"control flow leaves the function: {pc:#x}")
        try:
            ins = decode_one(wit.code, pc - wit.base, pc)
        except DecodeError as exc:
            self.v.error("machine.decode", f"undecodable bytes at {pc:#x}: {exc}")
        self._decode_cache[pc] = ins
        return ins

    # -- operand access -------------------------------------------------------

    def _rd_gp(self, st: MachState, r: Reg):
        # Corrupted bytes can decode to a form whose operand is memory or
        # a vector register where the handler assumed a GP register —
        # inconclusive (the mutant stays uninstalled), never a crash.
        if not isinstance(r, Reg) or r.kind != "gp" or r.index is None:
            raise Inconclusive(f"operand {r!r} where a GP register "
                               "was expected")
        v = st.regs[r.index]
        if r.size == 8:
            return v
        if r.size == 4:
            return T.mask(32, v)
        if r.size == 2:
            return T.mask(16, v)
        if r.high8:
            raise Inconclusive("high-8 register read")
        return T.mask(8, v)

    def _wr_gp(self, st: MachState, r: Reg, val) -> None:
        if not isinstance(r, Reg) or r.kind != "gp" or r.index is None:
            raise Inconclusive(f"operand {r!r} where a GP register "
                               "was expected")
        if r.size == 8:
            st.regs[r.index] = val
        elif r.size == 4:
            st.regs[r.index] = T.mask(32, val)
        elif r.size == 1 and not r.high8:
            st.regs[r.index] = ("merge1", st.regs[r.index], T.mask(8, val))
        else:
            raise Inconclusive(f"unsupported register write {r!r}")

    def _addr(self, st: MachState, m: Mem):
        if not isinstance(m, Mem):
            raise Inconclusive(f"operand {m!r} where a memory operand "
                               "was expected")
        if m.seg:
            raise Inconclusive(f"segment override {m.seg}")
        if m.riprel:
            return T.const(m.disp)
        t = T.const(m.disp)
        if m.base is not None:
            t = T.op_add(t, st.regs[m.base.index])
        if m.index is not None:
            t = T.op_add(t, T.op_scale(st.regs[m.index.index], m.scale))
        return t

    def _check_stack(self, st: MachState, off: int, w: int, write: bool) -> None:
        lo, hi = self.protected
        if write:
            if off < 8 and off + w > 0:
                self.v.error("machine.stack.protected",
                             f"write over the return address slot "
                             f"[{off},{off + w})")
            if not st.prologue_ok and off < hi and off + w > lo:
                self.v.error("machine.stack.protected",
                             f"write into the save area [{off},{off + w})")
        rsp_off = T.stack_offset(st.regs[R.RSP])
        if rsp_off is None:
            raise Inconclusive("stack access with non-affine rsp")
        if off < rsp_off - 128:
            self.v.error("machine.stack.redzone",
                         f"access at rsp0{off:+d} below the red zone "
                         f"(rsp is at rsp0{rsp_off:+d})")

    def _read_at(self, st: MachState, addr, w: int):
        off = T.stack_offset(addr)
        if off is not None:
            self._check_stack(st, off, w, write=False)
            return st.mem.stack_read(off, w)
        if isinstance(addr, int):
            lo, hi = self.wit.rodata_range
            if lo <= addr and addr + w <= hi and self.wit.read_rodata is not None:
                return T.const(int.from_bytes(
                    self.wit.read_rodata(addr, w), "little"))
        return st.mem.load(addr, w)

    def _write_at(self, st: MachState, addr, w: int, val) -> None:
        off = T.stack_offset(addr)
        if off is not None:
            self._check_stack(st, off, w, write=True)
            st.mem.stack_write(off, w, T.mask(8 * w, val) if w < 8 else val)
            return
        if isinstance(addr, int) and addr < RETURN_SENTINEL + 8 \
                and addr + w > RETURN_SENTINEL:
            self.v.error("machine.mem.sentinel",
                         f"store over the return sentinel at {addr:#x}")
        st.mem.store(addr, w, T.mask(8 * w, val) if w < 8 else val)

    def _value(self, st: MachState, op, width: int | None = None):
        """Read a gp-class operand (Reg/Imm/Mem) as a term."""
        if isinstance(op, Reg):
            return self._rd_gp(st, op)
        if isinstance(op, Imm):
            return T.const(op.value)
        return self._read_at(st, self._addr(st, op), width or op.size)

    def _xmm_lane(self, st: MachState, op, lane: int):
        if isinstance(op, Reg):
            return st.xmm[op.index][lane]
        addr = self._addr(st, op)
        return self._read_at(st, T.op_add(addr, 8 * lane), 8)

    # -- conditions -----------------------------------------------------------

    def _cond(self, st: MachState, cc: str):
        if cc not in _USABLE_CC:
            raise Inconclusive(f"condition {cc} not modeled")
        f = st.flags
        if isinstance(f, tuple) and f[0] == "icmp":
            return T.cc_term(cc, f[1], f[2], f[3])
        if isinstance(f, tuple) and f[0] == "fcmp":
            return T.fcc_term(cc, f[1], f[2])
        raise Inconclusive("conditional use of unmodeled flags")

    # -- instruction dispatch -------------------------------------------------

    def _exec(self, st: MachState, ins: Instruction,
              work: list[MachState]) -> MachExit | None:
        mn = ins.mnemonic
        ops = ins.operands
        klass = control_class(mn)
        if klass == "jmp":
            (tgt,) = ops
            if not isinstance(tgt, Imm):
                raise Inconclusive("indirect jump")
            if tgt.value == ins.addr:
                return MachExit("trap", frozenset(st.constraints), st)
            st.pc = tgt.value
            return None
        if klass == "jcc":
            (tgt,) = ops
            if not isinstance(tgt, Imm):
                raise Inconclusive("indirect jcc")
            cond = self._cond(st, cc_of(mn))
            if isinstance(cond, int):
                st.pc = tgt.value if cond else ins.end
                return None
            neg = T.negate_cond(cond)
            taken = st.clone()
            taken.constraints.append(cond)
            taken.pc = tgt.value
            work.append(taken)
            st.constraints.append(neg)
            st.pc = ins.end
            return None
        if klass == "call":
            self._call(st, ins)
            st.pc = ins.end
            return None
        if klass == "ret":
            return self._ret(st)
        try:
            self._exec_plain(st, ins)
        except (TypeError, AttributeError, IndexError, KeyError) as exc:
            # Corrupted bytes can decode to a syntactically valid
            # instruction whose operand shapes no handler models (memory
            # where a register is assumed, wrong register class, a bad
            # operand count).  That is an unprovable stream, not a
            # verifier crash.
            raise Inconclusive(
                f"malformed operands for {ins.mnemonic} at "
                f"{ins.addr:#x}: {exc}")
        if mn not in _FLAG_PRESERVING and not mn.startswith(("set", "cmov")) \
                and mn not in ("cmp", "ucomisd"):
            st.flags = ("arith",)
        st.pc = ins.end
        return None

    def _call(self, st: MachState, ins: Instruction) -> None:
        (tgt,) = ins.operands
        if not isinstance(tgt, Imm):
            raise Inconclusive("indirect call")
        names = self.v.addr_names.get(tgt.value)
        if names is None:
            self.v.error("machine.call.target",
                         f"call to unknown address {tgt.value:#x}")
        rsp_off = T.stack_offset(st.regs[R.RSP])
        if rsp_off is None:
            raise Inconclusive("call with non-affine rsp")
        if rsp_off % 16 != 8:
            self.v.error("machine.call.alignment",
                         f"stack misaligned at call: rsp = rsp0{rsp_off:+d}")
        if any(n in self.v._bad_arity for n in names):
            raise Inconclusive(f"callee {names!r} used with varying arity")
        arities = {self.v.arities[n] for n in names if n in self.v.arities}
        if len(arities) > 1:
            raise Inconclusive(f"ambiguous call-target arity for {names!r}")
        ni, _nf = arities.pop() if arities else (6, 8)
        isnap = tuple(st.regs[r] for r in R.SYSV_INT_ARGS)
        fsnap = tuple(st.xmm[j][0] for j in range(8))
        escapes = any(T.references_stack(st.regs[r])
                      for r in R.SYSV_INT_ARGS[:ni])
        n = st.mem.call(("mcall", names, isnap, fsnap), escapes)
        for i in range(16):
            if i in (R.RSP,) or i in _CALLEE_SAVED:
                continue
            st.regs[i] = ("ret", n) if i == R.RAX else ("clobber", n, i)
        st.xmm[0] = (("fret", n), ("fclobber", n, 0, 1))
        for j in range(1, 16):
            st.xmm[j] = (("fclobber", n, j, 0), ("fclobber", n, j, 1))
        st.flags = ("arith",)

    def _ret(self, st: MachState) -> MachExit:
        rsp_off = T.stack_offset(st.regs[R.RSP])
        if rsp_off is None:
            raise Inconclusive("ret with non-affine rsp")
        retaddr = st.mem.stack_read(rsp_off, 8)
        st.regs[R.RSP] = T.op_add(st.regs[R.RSP], 8)
        return MachExit("ret", frozenset(st.constraints), st, retaddr=retaddr)

    def _exec_plain(self, st: MachState, ins: Instruction) -> None:
        mn = ins.mnemonic
        ops = ins.operands
        if mn == "nop":
            return
        if mn == "push":
            (src,) = ops
            st.regs[R.RSP] = T.op_add(st.regs[R.RSP], T.const(-8))
            off = T.stack_offset(st.regs[R.RSP])
            if off is None:
                raise Inconclusive("push with non-affine rsp")
            self._check_stack(st, off, 8, write=True)
            st.mem.stack_write(off, 8, self._value(st, src))
            return
        if mn == "pop":
            (dst,) = ops
            off = T.stack_offset(st.regs[R.RSP])
            if off is None:
                raise Inconclusive("pop with non-affine rsp")
            val = st.mem.stack_read(off, 8)
            st.regs[R.RSP] = T.op_add(st.regs[R.RSP], 8)
            self._wr_gp(st, dst, val)
            return
        if mn == "mov":
            dst, src = ops
            if isinstance(dst, Reg) and dst.kind == "gp":
                self._wr_gp(st, dst, self._value(st, src, dst.size))
                return
            if isinstance(dst, Mem):
                self._write_at(st, self._addr(st, dst), dst.size,
                               self._value(st, src, dst.size))
                return
            raise Inconclusive("mov form not modeled")
        if mn == "movzx":
            dst, src = ops
            self._wr_gp(st, dst, self._value(st, src))
            return
        if mn in ("movsx", "movsxd"):
            dst, src = ops
            bits = 32 if mn == "movsxd" else 8 * src.size
            self._wr_gp(st, dst, T.sext(bits, self._value(st, src)))
            return
        if mn == "lea":
            dst, src = ops
            self._wr_gp(st, dst, self._addr(st, src))
            return
        if mn in ("add", "sub", "and", "or", "xor"):
            dst, src = ops
            w = dst.size if isinstance(dst, Reg) else dst.size
            a = self._value(st, dst, w)
            b = self._value(st, src, w)
            fn = {"add": T.op_add, "sub": T.op_sub, "and": T.op_and,
                  "or": T.op_or, "xor": T.op_xor}[mn]
            res = fn(a, b)
            if isinstance(dst, Reg):
                self._wr_gp(st, dst, res)
            else:
                self._write_at(st, self._addr(st, dst), w, res)
            return
        if mn in ("shl", "shr", "sar"):
            dst, cnt = ops
            w = dst.size
            a = self._rd_gp(st, dst)
            if isinstance(cnt, Imm):
                b = cnt.value
            else:  # the cl form
                b = T.mask(8, st.regs[R.RCX])
            fn = {"shl": T.op_shl, "shr": T.op_shr, "sar": T.op_sar}[mn]
            self._wr_gp(st, dst, fn(4 if w == 4 else 8, a, b))
            return
        if mn == "imul":
            if len(ops) == 2:
                dst, src = ops
                res = T.op_mul(self._rd_gp(st, dst),
                               self._value(st, src, dst.size))
            elif len(ops) == 3:
                dst, src, imm = ops
                res = T.op_mul(self._value(st, src, dst.size),
                               T.const(imm.value))
            else:
                raise Inconclusive("one-operand imul")
            self._wr_gp(st, dst, res)
            return
        if mn == "neg":
            (dst,) = ops
            self._wr_gp(st, dst, T.op_neg(self._rd_gp(st, dst)))
            return
        if mn == "not":
            (dst,) = ops
            self._wr_gp(st, dst, T.op_xor(self._rd_gp(st, dst), T.MASK64))
            return
        if mn == "cqo":
            st.regs[R.RDX] = ("signhi", 8, st.regs[R.RAX])
            return
        if mn == "cdq":
            st.regs[R.RDX] = T.mask(
                32, ("signhi", 4, T.mask(32, st.regs[R.RAX])))
            return
        if mn == "idiv":
            (src,) = ops
            w = 4 if src.size == 4 else 8
            rax = st.regs[R.RAX] if w == 8 else T.mask(32, st.regs[R.RAX])
            expect = ("signhi", 8, st.regs[R.RAX]) if w == 8 \
                else T.mask(32, ("signhi", 4, T.mask(32, st.regs[R.RAX])))
            if st.regs[R.RDX] != expect:
                raise Inconclusive("idiv without matching sign extension")
            b = self._value(st, src, w)
            if w == 4:
                b = T.mask(32, b)
            q = T.op_idiv(w, rax, b)
            r = T.op_irem(w, rax, b)
            if w == 4:
                q, r = T.mask(32, q), T.mask(32, r)
            st.regs[R.RAX] = q
            st.regs[R.RDX] = r
            return
        if mn == "cmp":
            a, b = ops
            w = a.size if isinstance(a, (Reg, Mem)) else b.size
            st.flags = ("icmp", 4 if w == 4 else 8,
                        self._value(st, a, w), self._value(st, b, w))
            return
        if mn == "ucomisd":
            a, b = ops
            st.flags = ("fcmp", self._xmm_lane(st, a, 0),
                        self._xmm_lane(st, b, 0))
            return
        if mn.startswith("set") and cc_of(mn) is not None:
            (dst,) = ops
            cond = self._cond(st, cc_of(mn))
            if not isinstance(dst, Reg):
                raise Inconclusive("setcc to memory")
            self._wr_gp(st, dst, cond)
            return
        if mn.startswith("cmov") and cc_of(mn) is not None:
            dst, src = ops
            cond = self._cond(st, cc_of(mn))
            cur = self._rd_gp(st, dst)
            new = self._value(st, src, dst.size)
            self._wr_gp(st, dst, T.ite(cond, new, cur))
            return
        # -- SSE ------------------------------------------------------------
        if mn == "movq":
            dst, src = ops
            if isinstance(dst, Reg) and dst.kind == "xmm":
                st.xmm[dst.index] = (self._value(st, src, 8), 0)
            else:
                self._wr_gp(st, dst, st.xmm[src.index][0])
            return
        if mn == "movsd":
            dst, src = ops
            if isinstance(dst, Reg) and isinstance(src, Reg):
                st.xmm[dst.index] = (st.xmm[src.index][0],
                                     st.xmm[dst.index][1])
            elif isinstance(dst, Reg):
                st.xmm[dst.index] = (self._xmm_lane(st, src, 0), 0)
            else:
                self._write_at(st, self._addr(st, dst), 8,
                               st.xmm[src.index][0])
            return
        if mn in ("movupd", "movapd"):
            dst, src = ops
            if isinstance(dst, Reg) and isinstance(src, Reg):
                st.xmm[dst.index] = st.xmm[src.index]
            elif isinstance(dst, Reg):
                st.xmm[dst.index] = (self._xmm_lane(st, src, 0),
                                     self._xmm_lane(st, src, 1))
            else:
                addr = self._addr(st, dst)
                lanes = st.xmm[src.index]
                self._write_at(st, addr, 8, lanes[0])
                self._write_at(st, T.op_add(addr, 8), 8, lanes[1])
            return
        if mn == "movhpd":
            dst, src = ops
            if isinstance(dst, Reg):
                st.xmm[dst.index] = (st.xmm[dst.index][0],
                                     self._read_at(st, self._addr(st, src), 8))
            else:
                self._write_at(st, self._addr(st, dst), 8,
                               st.xmm[src.index][1])
            return
        if mn == "movlpd":
            dst, src = ops
            if isinstance(dst, Reg):
                st.xmm[dst.index] = (self._read_at(st, self._addr(st, src), 8),
                                     st.xmm[dst.index][1])
            else:
                self._write_at(st, self._addr(st, dst), 8,
                               st.xmm[src.index][0])
            return
        if mn == "unpcklpd":
            dst, src = ops
            st.xmm[dst.index] = (st.xmm[dst.index][0],
                                 self._xmm_lane(st, src, 0))
            return
        if mn == "unpckhpd":
            dst, src = ops
            st.xmm[dst.index] = (st.xmm[dst.index][1],
                                 self._xmm_lane(st, src, 1))
            return
        if mn == "haddpd":
            dst, src = ops
            d = st.xmm[dst.index]
            st.xmm[dst.index] = (
                T.fp_term("fadd", d[0], d[1]),
                T.fp_term("fadd", self._xmm_lane(st, src, 0),
                          self._xmm_lane(st, src, 1)))
            return
        if mn == "shufpd":
            dst, src, imm = ops
            sel = imm.value
            st.xmm[dst.index] = (st.xmm[dst.index][sel & 1],
                                 self._xmm_lane(st, src, (sel >> 1) & 1))
            return
        if mn in ("pxor", "xorpd"):
            dst, src = ops
            if isinstance(src, Reg) and src.index == dst.index:
                st.xmm[dst.index] = (0, 0)
            else:
                d = st.xmm[dst.index]
                st.xmm[dst.index] = (
                    T.op_xor(d[0], self._xmm_lane(st, src, 0)),
                    T.op_xor(d[1], self._xmm_lane(st, src, 1)))
            return
        if mn in ("pand", "andpd", "por", "orpd"):
            dst, src = ops
            fn = T.op_and if mn in ("pand", "andpd") else T.op_or
            d = st.xmm[dst.index]
            st.xmm[dst.index] = (fn(d[0], self._xmm_lane(st, src, 0)),
                                 fn(d[1], self._xmm_lane(st, src, 1)))
            return
        if mn in ("addsd", "subsd", "mulsd", "divsd"):
            dst, src = ops
            op = {"addsd": "fadd", "subsd": "fsub",
                  "mulsd": "fmul", "divsd": "fdiv"}[mn]
            d = st.xmm[dst.index]
            st.xmm[dst.index] = (
                T.fp_term(op, d[0], self._xmm_lane(st, src, 0)), d[1])
            return
        if mn in ("addpd", "subpd", "mulpd"):
            dst, src = ops
            op = {"addpd": "fadd", "subpd": "fsub", "mulpd": "fmul"}[mn]
            d = st.xmm[dst.index]
            st.xmm[dst.index] = (
                T.fp_term(op, d[0], self._xmm_lane(st, src, 0)),
                T.fp_term(op, d[1], self._xmm_lane(st, src, 1)))
            return
        if mn == "cvtsi2sd":
            dst, src = ops
            st.xmm[dst.index] = (("cvt_i2f", self._value(st, src, 8)),
                                 st.xmm[dst.index][1])
            return
        if mn == "cvttsd2si":
            dst, src = ops
            self._wr_gp(st, dst, ("cvt_f2i", self._xmm_lane(st, src, 0)))
            return
        raise Inconclusive(f"unmodeled instruction {mn}")


class MachineVerifier:
    """Proves one :class:`CodeWitness` correct, block by block."""

    def __init__(self, witness: CodeWitness,
                 options: VerifyOptions = VerifyOptions()) -> None:
        self.wit = witness
        self.opts = options
        self.findings: list[Finding] = []
        self.reasons: list[str] = []
        self.blocks_checked = 0
        self.paths_checked = 0
        self.stops = frozenset(witness.block_addrs.values())
        #: absolute address -> candidate callee names
        self.addr_names: dict[int, tuple[str, ...]] = {}
        for nm, addr in sorted(witness.call_targets.items()):
            self.addr_names[addr] = self.addr_names.get(addr, ()) + (nm,)
        #: callee name -> (int-arity, float-arity), from IR call sites
        self.arities: dict[str, tuple[int, int]] = {}
        self._bad_arity: set[str] = set()
        for ins in witness.func.instructions():
            if isinstance(ins, I.Call) and not ins.intrinsic:
                ni = sum(1 for a in ins.operands if _cls_of(a.type) == "i")
                nf = sum(1 for a in ins.operands if _cls_of(a.type) == "f")
                prev = self.arities.setdefault(ins.callee_name, (ni, nf))
                if prev != (ni, nf):
                    self._bad_arity.add(ins.callee_name)
        self.alloca_ranges = self._alloca_ranges()
        self.x86 = X86Executor(self)
        self.irx = IRExecutor(witness, self.arities,
                              max_paths=options.max_paths)
        self.liveness = Liveness(witness.func, witness.value_locs)

    def _alloca_ranges(self) -> tuple[tuple[int, int], ...]:
        sizes = dict(self.wit.frame_slots)
        out = []
        for off in set(self.wit.alloca_offsets.values()):
            size = sizes.get(off, 8)
            out.append((off - 8, off - 8 + size))
        return tuple(sorted(out))

    # -- findings -------------------------------------------------------------

    def error(self, checker: str, message: str, block: str = "") -> None:
        self.findings.append(Finding(checker=checker, function=self.wit.name,
                                     message=message, severity=ERROR,
                                     block=block))
        raise _Refuted()

    def soft_error(self, checker: str, message: str, block: str = "") -> None:
        self.findings.append(Finding(checker=checker, function=self.wit.name,
                                     message=message, severity=ERROR,
                                     block=block))

    def warn(self, checker: str, message: str) -> None:
        self.findings.append(Finding(checker=checker, function=self.wit.name,
                                     message=message, severity=WARNING))

    # -- driver ---------------------------------------------------------------

    def verify(self) -> VerifyResult:
        t0 = time.perf_counter()
        self._static_checks()
        self._run_guarded("<entry>", self._verify_entry)
        for blk in self.wit.func.blocks[:]:
            if blk.name not in self.wit.block_addrs:
                continue  # transparent at the TAC level; covered via edges
            if isinstance(blk.terminator, I.Unreachable):
                continue  # trap body; edges into it are still checked
            self._run_guarded(blk.name, lambda b=blk: self._verify_block(b))
        errors = [f for f in self.findings if f.is_error]
        if errors:
            verdict = REFUTED
        elif self.reasons:
            verdict = INCONCLUSIVE
        else:
            verdict = PROVED
        return VerifyResult(verdict=verdict, findings=self.findings,
                            reasons=self.reasons,
                            blocks_checked=self.blocks_checked,
                            paths_checked=self.paths_checked,
                            seconds=time.perf_counter() - t0)

    def _run_guarded(self, label: str, fn) -> None:
        try:
            fn()
            self.blocks_checked += 1
        except _Refuted:
            pass
        except Inconclusive as exc:
            self.reasons.append(f"{label}: {exc.reason}")

    def _static_checks(self) -> None:
        slots = self.wit.frame_slots
        for i in range(len(slots)):
            o1, s1 = slots[i]
            for j in range(i + 1, len(slots)):
                o2, s2 = slots[j]
                if o1 < o2 + s2 and o2 < o1 + s1:
                    self.soft_error(
                        "machine.stack.frame-overlap",
                        f"frame slots [{o1},{o1 + s1}) and [{o2},{o2 + s2}) "
                        f"overlap")
        for ins in self.wit.func.instructions():
            if isinstance(ins, I.BinOp) and ins.opcode in ("udiv", "urem"):
                self.warn(
                    "machine.lowering.udiv-as-idiv",
                    f"{ins.opcode} lowered through signed idiv; correct only "
                    f"when both operands fit in 63 bits")

    # -- per-block verification ----------------------------------------------

    def _verify_entry(self) -> None:
        func = self.wit.func
        entry = func.blocks[0]
        st = self.x86.seed_entry()
        env: dict[int, object] = {}
        iarg = farg = 0
        for arg in func.args:
            cls = _cls_of(arg.type)
            if cls == "i":
                env[id(arg)] = ("sym", ("iarg", iarg))
                iarg += 1
            elif cls == "f":
                env[id(arg)] = ("sym", ("farg", farg))
                farg += 1
        mem = MemState(self.alloca_ranges)
        ir_exits: list[IRExit] = []
        p = IRPath(entry, 0, env, mem)
        # the prologue run ends at the entry block's label; model it as the
        # virtual edge <entry-of-function> -> first block
        self.irx._edge(p, None, entry, ir_exits)
        mach_exits = self.x86.run(st)
        self._check_exits("<entry>", mach_exits, ir_exits)

    def _verify_block(self, blk) -> None:
        wit = self.wit
        st = self.x86.seed_block(wit.block_addrs[blk.name])
        env: dict[int, object] = {}
        for v in self.liveness.check_set(blk):
            loc = wit.value_locs.get(id(v))
            if loc is None:
                raise Inconclusive(f"live-in {v.short()} has no location")
            env[id(v)] = self.x86.seed_value(loc, wit.value_cls[id(v)])
        ir_exits = self.irx.run_block(blk, env, MemState(self.alloca_ranges))
        mach_exits = self.x86.run(st)
        self._check_exits(blk.name, mach_exits, ir_exits)

    # -- edge and return checks ----------------------------------------------

    @staticmethod
    def _exit_key(constraints: frozenset) -> frozenset | None:
        """Pairing key; None when the path is statically infeasible."""
        live = set()
        for c in constraints:
            if isinstance(c, int):
                if c == 0:
                    return None
                continue
            live.add(c)
        return frozenset(live)

    def _check_exits(self, block: str, mach_exits: list[MachExit],
                     ir_exits: list[IRExit]) -> None:
        mkeys: dict[frozenset, MachExit] = {}
        for me in mach_exits:
            key = self._exit_key(me.constraints)
            if key is None:
                continue
            if key in mkeys:
                raise Inconclusive("duplicate machine path constraints")
            mkeys[key] = me
        ikeys: dict[frozenset, IRExit] = {}
        for ie in ir_exits:
            key = self._exit_key(ie.constraints)
            if key is None:
                continue
            if key in ikeys:
                raise Inconclusive("duplicate IR path constraints")
            ikeys[key] = ie
        if set(mkeys) != set(ikeys):
            raise Inconclusive(
                f"path constraints do not pair: machine has "
                f"{len(mkeys)} feasible paths, IR has {len(ikeys)}")
        for key, me in mkeys.items():
            ie = ikeys[key]
            self.paths_checked += 1
            if me.kind != ie.kind:
                self.error("machine.block.exit",
                           f"machine path exits via {me.kind}, "
                           f"IR via {ie.kind}", block=block)
            if me.kind == "edge":
                self._check_edge(block, me, ie)
            elif me.kind == "ret":
                self._check_ret(block, me, ie)
            # 'trap' pairs need no state check: the IR declared the path
            # unreachable and the machine provably self-loops

    def _check_edge(self, block: str, me: MachExit, ie: IRExit) -> None:
        wit = self.wit
        landing = ie.landing
        want = wit.block_addrs.get(landing.name)
        if want is None:
            raise Inconclusive(f"landing block {landing.name} has no address")
        if me.pc != want:
            self.error("machine.block.target",
                       f"edge to {landing.name} lands at {me.pc:#x}, "
                       f"expected {want:#x}", block=block)
        st = me.state
        for v in self.liveness.check_set(landing):
            loc = wit.value_locs.get(id(v))
            if loc is None:
                raise Inconclusive(
                    f"live-in {v.short()} of {landing.name} has no location")
            cls = wit.value_cls[id(v)]
            if id(v) in ie.phi_terms:
                ir_term = ie.phi_terms[id(v)]
            elif id(v) in ie.env:
                ir_term = ie.env[id(v)]
            else:
                raise Inconclusive(
                    f"no IR term for live value {v.short()} at the edge "
                    f"to {landing.name}")
            got = self.x86.read_loc(st, loc, cls)
            if got != ir_term:
                self.error(
                    "machine.block.value",
                    f"{v.short()} at {loc!r} entering {landing.name}: "
                    f"machine holds {got!r}, IR computes {ir_term!r}",
                    block=block)
        self._check_common(block, st, ie)
        rsp_off = T.stack_offset(st.regs[R.RSP])
        if rsp_off != -self.x86.frame_total:
            self.error("machine.stack.unbalanced",
                       f"rsp offset {rsp_off!r} at a block edge, expected "
                       f"-{self.x86.frame_total}", block=block)
        if st.regs[R.RBP] != T.stack_addr(-8):
            self.error("machine.stack.unbalanced",
                       "rbp does not hold the frame base at a block edge",
                       block=block)

    def _check_ret(self, block: str, me: MachExit, ie: IRExit) -> None:
        st = me.state
        rsp_off = T.stack_offset(st.regs[R.RSP])
        if rsp_off != 8:
            self.error("machine.stack.unbalanced",
                       f"rsp offset {rsp_off!r} after ret, expected +8",
                       block=block)
        if me.retaddr not in (("sym", "retaddr"), ("sload", 0, 0, 8)):
            self.error("machine.ret.address",
                       f"returns to {me.retaddr!r}, not the caller's "
                       f"return address", block=block)
        saves = self.wit.used_callee_saved
        expected: list[tuple[int, int]] = [(R.RBP, -8)]
        expected += [(reg, -16 - 8 * i) for i, reg in enumerate(saves)]
        for reg, off in expected:
            got = st.regs[reg]
            ok = got == ("sym", f"reg:{R.gp_name(reg, 8)}") \
                or got == ("sload", 0, off, 8)
            if not ok:
                self.error(
                    "machine.ret.callee-saved",
                    f"callee-saved {R.gp_name(reg, 8)} not restored: "
                    f"holds {got!r}", block=block)
        for reg in _CALLEE_SAVED:
            if reg in (R.RBP,) or reg in saves or reg == R.RSP:
                continue
            got = st.regs[reg]
            untouched = got == ("sym", f"reg:{R.gp_name(reg, 8)}") \
                or got == ("sym", ("loc", reg))
            if not untouched:
                self.error(
                    "machine.ret.callee-saved",
                    f"callee-saved {R.gp_name(reg, 8)} clobbered without "
                    f"being saved: holds {got!r}", block=block)
        if ie.ret_term is not None:
            got = st.xmm[0][0] if ie.ret_cls == "f" else st.regs[R.RAX]
            if got != ie.ret_term:
                self.error(
                    "machine.ret.value",
                    f"return value mismatch: machine returns {got!r}, "
                    f"IR computes {ie.ret_term!r}", block=block)
        self._check_common(block, st, ie)

    def _check_common(self, block: str, st: MachState, ie: IRExit) -> None:
        msg = match_effects(st.mem.effects, ie.mem.effects)
        if msg is not None:
            self.error("machine.mem.effects", msg, block=block)
        if st.mem.alloca_entries() != ie.mem.alloca_entries():
            self.error(
                "machine.mem.stack",
                f"stack objects diverge: machine {st.mem.alloca_entries()!r} "
                f"vs IR {ie.mem.alloca_entries()!r}", block=block)


def verify_witness(witness: CodeWitness,
                   options: VerifyOptions = VerifyOptions()) -> VerifyResult:
    """Verify one compiled function against its IR; never raises."""
    from repro.obs.trace import TRACER as _TR
    if not _TR.enabled:
        return _verify(witness, options)
    with _TR.span("machine.verify", {"func": witness.name}):
        return _verify(witness, options)


def _verify(witness: CodeWitness, options: VerifyOptions) -> VerifyResult:
    t0 = time.perf_counter()
    try:
        return MachineVerifier(witness, options).verify()
    except Inconclusive as exc:
        return VerifyResult(verdict=INCONCLUSIVE, reasons=[exc.reason],
                            seconds=time.perf_counter() - t0)
    except RecursionError:
        return VerifyResult(verdict=INCONCLUSIVE,
                            reasons=["recursion limit during verification"],
                            seconds=time.perf_counter() - t0)
