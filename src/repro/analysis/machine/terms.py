"""Canonical term algebra for the machine-layer translation validator.

Both symbolic executors — the IR-side mirror of the lowering and the
machine-side interpreter of decoded x86 — build values from the helpers in
this module, so *semantic* equality questions reduce to *structural*
equality of canonical terms.  The canonicalizer therefore has one job:
collapse every rewriting freedom the backend actually exercises onto a
single normal form:

* ``lin`` — a linear combination ``sum(coeff_i * t_i) + const`` (mod 2^64)
  absorbs add/sub/neg chains, GEP index peeling (``address_of`` folds
  ``add x, C`` and ``shl x, k`` into base+index*scale+disp operands), and
  GCC-style ``synth_mult`` lea/shl multiply chains;
* ``mask``/``sext`` — width changes; 32-bit register writes zero-extend,
  so i32 operations are ``mask(32, op(mask(32, a), mask(32, b)))`` on both
  sides by construction;
* commutative operand sorting — the emitter freely swaps operands of
  add/mul/and/or/xor (and addsd/mulsd) when the destination already holds
  the second operand;
* constant folding mod 2^64 — mirrors ``repro.backend.opt.local_propagate``
  so TAC-level folding and term-level folding agree.

Terms are plain ints (constants, always reduced mod 2^64) or nested
tuples whose first element is a tag.  Tuples are hashable and compare
structurally; deterministic ordering uses ``repr``.
"""

from __future__ import annotations

from typing import Union

MASK64 = (1 << 64) - 1

#: a term: an int constant (mod 2^64) or a tagged tuple
Term = Union[int, tuple]

#: condition-code inversion (mirror of repro.backend.tac.INVERT_CC)
INVERT_CC = {
    "e": "ne", "ne": "e", "l": "ge", "ge": "l", "le": "g", "g": "le",
    "b": "ae", "ae": "b", "be": "a", "a": "be",
}


def const(v: int) -> int:
    return v & MASK64


def is_const(t: Term) -> bool:
    return isinstance(t, int)


def _key(t: Term) -> str:
    return repr(t)


def _signed(v: int, bits: int = 64) -> int:
    v &= (1 << bits) - 1
    return v - (1 << bits) if v >= (1 << (bits - 1)) else v


# -- linear combinations -----------------------------------------------------


def _to_lin(t: Term) -> tuple[tuple[tuple[Term, int], ...], int]:
    if isinstance(t, int):
        return (), t
    if isinstance(t, tuple) and t[0] == "lin":
        return t[1], t[2]
    return ((t, 1),), 0


def _from_lin(addends: dict, c: int) -> Term:
    c &= MASK64
    items = tuple(sorted(
        ((t, k & MASK64) for t, k in addends.items() if k & MASK64),
        key=lambda tk: _key(tk[0])))
    if not items:
        return c
    if len(items) == 1 and items[0][1] == 1 and c == 0:
        return items[0][0]
    return ("lin", items, c)


def op_add(a: Term, b: Term) -> Term:
    aa, ac = _to_lin(a)
    ba, bc = _to_lin(b)
    merged: dict = {}
    for t, k in aa + ba:
        merged[t] = merged.get(t, 0) + k
    return _from_lin(merged, ac + bc)


def op_scale(t: Term, k: int) -> Term:
    k &= MASK64
    if k == 0:
        return 0
    if k == 1:
        return t
    aa, ac = _to_lin(t)
    return _from_lin({tt: kk * k for tt, kk in aa}, ac * k)


def op_sub(a: Term, b: Term) -> Term:
    return op_add(a, op_scale(b, MASK64))  # -1 mod 2^64


def op_neg(t: Term) -> Term:
    return op_scale(t, MASK64)


def op_mul(a: Term, b: Term) -> Term:
    if isinstance(a, int) and isinstance(b, int):
        return (a * b) & MASK64
    if isinstance(a, int):
        return op_scale(b, a)
    if isinstance(b, int):
        return op_scale(a, b)
    x, y = sorted((a, b), key=_key)
    return ("mul", x, y)


# -- bitwise -----------------------------------------------------------------


def _width_of(t: Term) -> int:
    """Upper bound on significant bits of a term's value."""
    if isinstance(t, int):
        return t.bit_length()
    tag = t[0]
    if tag == "mask":
        return t[1]
    if tag in ("cc", "fcc"):
        return 1
    if tag == "load":  # ("load", n, addr, w): zero-extended w-byte value
        return 8 * t[3]
    if tag == "sload":  # ("sload", ver, off, w)
        return 8 * t[3]
    if tag == "sldx":  # ("sldx", k, ver, addr, w, stack_snapshot)
        return 8 * t[4]
    if tag == "ite":
        return max(_width_of(t[2]), _width_of(t[3]))
    return 64


def mask(bits: int, t: Term) -> Term:
    if bits >= 64:
        return t
    if bits <= 0:
        return 0
    if isinstance(t, int):
        return t & ((1 << bits) - 1)
    if isinstance(t, tuple) and t[0] == "mask":
        return mask(min(bits, t[1]), t[2])
    if isinstance(t, tuple) and t[0] == "lin":
        # the low ``bits`` bits of a linear combination depend only on the
        # low ``bits`` bits of each coefficient: reduce them so a 64-bit
        # sign-extended immediate (machine side) and a pre-masked 32-bit
        # immediate (IR side) canonicalize identically under the mask
        m = (1 << bits) - 1
        reduced: dict = {}
        for tt, kk in t[1]:
            reduced[tt] = reduced.get(tt, 0) + (kk & m)
        t2 = _from_lin(reduced, t[2] & m)
        if t2 != t:
            return mask(bits, t2)
    if isinstance(t, tuple) and t[0] in ("and", "or", "xor") \
            and isinstance(t[2], int):
        # bitwise ops act bit-for-bit, so under a width mask the constant
        # operand is only observable modulo the mask: a sign-extended
        # 64-bit immediate (machine side, e.g. ``xor eax, -1``) and a
        # pre-masked 32-bit immediate (IR side) canonicalize identically.
        # Saturating/annihilating constants fold the whole node.
        m = (1 << bits) - 1
        c = t[2] & m
        if t[0] == "or" and c == m:
            return m
        if t[0] == "and" and c == 0:
            return 0
        if (c == 0 and t[0] in ("or", "xor")) or (c == m and t[0] == "and"):
            return mask(bits, t[1])  # identity element under the mask
        if c != t[2]:
            return mask(bits, (t[0], t[1], c))
    if isinstance(t, tuple) and t[0] == "merge1" and bits <= 8:
        # ("merge1", old, new): byte write into a wider register; a narrow
        # read sees only the new byte (the setcc cl / movzx dst, cl idiom)
        return mask(bits, t[2])
    if _width_of(t) <= bits:
        return t
    return ("mask", bits, t)


def sext(bits: int, t: Term) -> Term:
    """Sign-extend the low ``bits`` bits of ``t`` to 64."""
    if bits >= 64:
        return t
    # sext only observes the low ``bits`` bits: a wider (or equal) mask on
    # the operand is invisible (movsx reads through a width-masked view,
    # the IR mirror uses the raw term — same normal form for both)
    while isinstance(t, tuple) and t[0] == "mask" and t[1] >= bits:
        t = t[2]
    if isinstance(t, int):
        return _signed(t, bits) & MASK64
    if _width_of(t) < bits:  # sign bit statically zero
        return t
    return ("sext", bits, t)


def op_and(a: Term, b: Term) -> Term:
    if isinstance(a, int) and isinstance(b, int):
        return a & b
    if isinstance(b, int):
        a, b = b, a
    if isinstance(a, int):  # a const, b term
        if a == MASK64:
            return b
        if (a & (a + 1)) == 0:  # 2^k - 1
            return mask(a.bit_length(), b)
        return ("and", b, a)
    if a == b:
        return a
    x, y = sorted((a, b), key=_key)
    return ("and", x, y)


def op_or(a: Term, b: Term) -> Term:
    if isinstance(a, int) and isinstance(b, int):
        return a | b
    if isinstance(b, int):
        a, b = b, a
    if isinstance(a, int):
        if a == 0:
            return b
        if a == MASK64:
            return MASK64
        return ("or", b, a)
    if a == b:
        return a
    x, y = sorted((a, b), key=_key)
    return ("or", x, y)


def op_xor(a: Term, b: Term) -> Term:
    if isinstance(a, int) and isinstance(b, int):
        return a ^ b
    if a == b:
        return 0
    if isinstance(b, int):
        a, b = b, a
    if isinstance(a, int):
        if a == 0:
            return b
        return ("xor", b, a)
    x, y = sorted((a, b), key=_key)
    return ("xor", x, y)


# -- shifts and division -----------------------------------------------------


def _count_mask(w: int) -> int:
    return 31 if w == 4 else 63


def _canon_count(w: int, b: Term) -> Term:
    """Hardware masks the count to 5 (32-bit) or 6 (64-bit) bits; the
    machine side reads it through ``cl`` (a mask-8 view), the IR side uses
    the raw term — mask(5/6) is the common normal form of both."""
    return mask(5 if w == 4 else 6, b)


def op_shl(w: int, a: Term, b: Term) -> Term:
    if isinstance(b, int):
        k = b & _count_mask(w)
        if k == 0:
            return a
        return op_mul(a, 1 << k)  # caller masks the write at width w
    return ("shl", w, a, _canon_count(w, b))


def op_shr(w: int, a: Term, b: Term) -> Term:
    if isinstance(b, int):
        k = b & _count_mask(w)
        if k == 0:
            return a
        if isinstance(a, int):
            av = a & ((1 << 32) - 1) if w == 4 else a
            return av >> k
        return ("shr", w, a, k)
    return ("shr", w, a, _canon_count(w, b))


def op_sar(w: int, a: Term, b: Term) -> Term:
    if isinstance(b, int):
        k = b & _count_mask(w)
        if k == 0:
            return a
        if isinstance(a, int):
            return (_signed(a, 32 if w == 4 else 64) >> k) & MASK64
        return ("sar", w, a, k)
    return ("sar", w, a, _canon_count(w, b))


def op_idiv(w: int, a: Term, b: Term) -> Term:
    if isinstance(a, int) and isinstance(b, int):
        bits = 32 if w == 4 else 64
        sa, sb = _signed(a, bits), _signed(b, bits)
        if sb != 0:
            q = abs(sa) // abs(sb)  # x86 truncates toward zero
            if (sa < 0) != (sb < 0):
                q = -q
            return q & MASK64
    return ("idiv", w, a, b)


def op_irem(w: int, a: Term, b: Term) -> Term:
    if isinstance(a, int) and isinstance(b, int):
        bits = 32 if w == 4 else 64
        sa, sb = _signed(a, bits), _signed(b, bits)
        if sb != 0:
            r = abs(sa) % abs(sb)
            if sa < 0:
                r = -r
            return r & MASK64
    return ("irem", w, a, b)


# -- conditions --------------------------------------------------------------

_CC_SIGNED = {"l", "le", "g", "ge"}


def cc_term(cc: str, w: int, a: Term, b: Term) -> Term:
    """Integer condition: outcome of ``cmp a, b`` at operand width ``w``
    observed through condition code ``cc`` (emitter cc names)."""
    a = mask(32, a) if w == 4 else a
    b = mask(32, b) if w == 4 else b
    if isinstance(a, int) and isinstance(b, int):
        bits = 32 if w == 4 else 64
        if cc in _CC_SIGNED:
            x, y = _signed(a, bits), _signed(b, bits)
        else:
            x, y = a, b
        return int({
            "e": x == y, "ne": x != y,
            "l": x < y, "le": x <= y, "g": x > y, "ge": x >= y,
            "b": x < y, "be": x <= y, "a": x > y, "ae": x >= y,
        }[cc])
    return ("cc", cc, 4 if w == 4 else 8, a, b)


def fcc_term(cc: str, a: Term, b: Term) -> Term:
    """Float condition: ``ucomisd a, b`` observed through ``cc``."""
    return ("fcc", cc, a, b)


def negate_cond(t: Term) -> Term | None:
    """The logical negation of a condition term, or None if unknown."""
    if isinstance(t, int):
        return 0 if t else 1
    if t[0] == "cc":
        return ("cc", INVERT_CC[t[1]], t[2], t[3], t[4])
    if t[0] == "fcc":
        return ("fcc", INVERT_CC[t[1]], t[2], t[3])
    return None


def ite(c: Term, a: Term, b: Term) -> Term:
    if isinstance(c, int):
        return a if c else b
    if a == b:
        return a
    return ("ite", c, a, b)


# -- floating point (uninterpreted, commutativity-normalized) ----------------

_FP_COMMUTATIVE = {"fadd", "fmul"}


def fp_term(op: str, a: Term, b: Term) -> Term:
    if op in _FP_COMMUTATIVE:
        x, y = sorted((a, b), key=_key)
        return (op, x, y)
    return (op, a, b)


# -- stack addresses ---------------------------------------------------------

#: the symbolic stack pointer at function entry (points at the return
#: address); every frame address is ``lin {RSP0: 1} + delta``
RSP0: Term = ("sym", "rsp0")


def stack_offset(t: Term) -> int | None:
    """If ``t`` is rsp0 + concrete delta, the delta; else None."""
    if t == RSP0:
        return 0
    if isinstance(t, tuple) and t[0] == "lin":
        addends, c = t[1], t[2]
        if len(addends) == 1 and addends[0] == (RSP0, 1):
            return _signed(c)
    return None


def references_stack(t: Term) -> bool:
    """True if RSP0 appears anywhere in the term."""
    if isinstance(t, int):
        return False
    if t == RSP0:
        return True
    return any(references_stack(x) for x in t[1:] if isinstance(x, (tuple, int)))


def stack_addr(delta: int) -> Term:
    return op_add(RSP0, const(delta))
