"""Shared symbolic state for the two executors of the machine verifier.

The proof strategy is *dual symbolic execution*: the machine-side executor
interprets decoded x86 and the IR-side executor mirrors the lowering,
both building values from :mod:`repro.analysis.machine.terms` and memory
effects through the :class:`MemState` here.  Because both sides use the
same abstract memory, semantic questions ("does the emitted store write
the same value the IR store writes?") reduce to structural comparisons of
effect lists and stack entries at block boundaries.

Memory is split in two:

* the **stack** — addresses of the form ``rsp0 + concrete delta``.  Known
  entries live in a dict keyed by rsp0-relative offset; reads of offsets
  never written in the current block produce ``("sload", ver, off, w)``,
  i.e. "whatever the slot held at block entry".  ``ver`` bumps whenever a
  symbolic store or a stack-escaping call may have rewritten slots.
* **general memory** — everything else.  Stores and calls append to an
  ordered effect list; loads forward from it when the store provably
  matches, skip provably-disjoint stores, and otherwise produce a
  ``("load", k, addr, w)`` fence term pinned to the effect prefix.
"""

from __future__ import annotations

from repro.analysis.machine import terms as T


class Inconclusive(Exception):
    """The proof cannot be completed (not a refutation)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def _ranges_overlap(a: int, aw: int, b: int, bw: int) -> bool:
    return a < b + bw and b < a + aw


class MemState:
    """Symbolic memory: known stack slots + ordered general-memory effects.

    ``alloca_ranges`` are the rsp0-relative byte ranges of IR-visible frame
    objects; only those entries are invalidated when a call may write
    through an escaped stack pointer (spill slots never escape).
    """

    __slots__ = ("stack", "effects", "ver", "alloca_ranges")

    def __init__(self, alloca_ranges: tuple[tuple[int, int], ...] = ()) -> None:
        self.stack: dict[int, tuple[int, T.Term]] = {}
        self.effects: list[tuple] = []
        self.ver = 0
        self.alloca_ranges = alloca_ranges

    def clone(self) -> "MemState":
        m = MemState(self.alloca_ranges)
        m.stack = dict(self.stack)
        m.effects = list(self.effects)
        m.ver = self.ver
        return m

    # -- stack ----------------------------------------------------------------

    def stack_read(self, off: int, w: int) -> T.Term:
        hit = self.stack.get(off)
        if hit is not None:
            if hit[0] == w:
                return hit[1]
            raise Inconclusive(f"stack read width {w} over entry width {hit[0]}")
        for o, (ew, _v) in self.stack.items():
            if _ranges_overlap(off, w, o, ew):
                raise Inconclusive(f"stack read [{off},{off + w}) overlaps entry at {o}")
        # only IR-visible frame objects can be rewritten behind our back
        # (through escaped pointers); retaddr/saves/spills are ABI-protected,
        # so their "block entry" contents are version-stable
        ver = self.ver if self.in_alloca_range(off) else 0
        return ("sload", ver, off, w)

    def stack_write(self, off: int, w: int, val: T.Term) -> None:
        for o, (ew, _v) in self.stack.items():
            if o == off and ew == w:
                continue
            if _ranges_overlap(off, w, o, ew):
                raise Inconclusive(f"stack write [{off},{off + w}) overlaps entry at {o}")
        self.stack[off] = (w, val)

    def in_alloca_range(self, off: int) -> bool:
        return any(lo <= off < hi for lo, hi in self.alloca_ranges)

    def invalidate_allocas(self) -> None:
        """A call (or symbolic store) may have rewritten escaped frame slots."""
        self.ver += 1
        for o in [o for o in self.stack if self.in_alloca_range(o)]:
            del self.stack[o]

    def alloca_entries(self) -> tuple[tuple[int, int, T.Term], ...]:
        return tuple(sorted(
            (o, w, v) for o, (w, v) in self.stack.items()
            if self.in_alloca_range(o)))

    # -- general memory -------------------------------------------------------

    @staticmethod
    def _disjoint(a1: T.Term, w1: int, a2: T.Term, w2: int) -> bool:
        d = T.op_sub(a1, a2)
        if not isinstance(d, int):
            return False
        sd = d - (1 << 64) if d >= (1 << 63) else d
        return sd >= w2 or -sd >= w1

    def load(self, addr: T.Term, w: int) -> T.Term:
        """Forward from matching stores; fence at may-alias stores or calls."""
        k = len(self.effects)
        for e in reversed(self.effects):
            if e[0] == "store":
                _tag, eaddr, ew, eval_ = e
                if eaddr == addr and ew == w:
                    return eval_
                if self._disjoint(addr, w, eaddr, ew):
                    k -= 1
                    continue
            break
        if T.references_stack(addr):
            # the load may alias concrete stack entries that never entered
            # the effect list: pin their current contents into the term so
            # structural equality still implies semantic equality
            return ("sldx", k, self.ver, addr, w, self.alloca_entries())
        return ("load", k, addr, w)

    def store(self, addr: T.Term, w: int, val: T.Term) -> None:
        self.effects.append(("store", addr, w, val))
        if T.references_stack(addr):
            self.invalidate_allocas()

    def call(self, effect: tuple, escapes_stack: bool) -> int:
        """Record a call effect; returns its index (the havoc tag)."""
        n = len(self.effects)
        self.effects.append(effect)
        if escapes_stack:
            self.invalidate_allocas()
        return n


def match_effects(machine: list[tuple], ir: list[tuple]) -> str | None:
    """Compare the two effect sequences; returns a mismatch description.

    Store effects must match exactly.  Call effects pair a machine-side
    argument-register snapshot against the IR call's actual argument terms
    (the machine does not know arity, so it snapshots the full SysV
    argument file and the IR side selects the checked prefix).
    """
    if len(machine) != len(ir):
        return f"effect count {len(machine)} != {len(ir)}"
    for i, (me, ie) in enumerate(zip(machine, ir)):
        if me[0] == "store" and ie[0] == "store":
            if me != ie:
                return f"effect {i}: store mismatch {me!r} != {ie!r}"
            continue
        if me[0] == "mcall" and ie[0] == "call":
            _tag, mnames, isnap, fsnap = me
            _tag2, iname, iargs, fargs = ie
            if iname not in mnames:  # mnames: candidate names of the target
                return f"effect {i}: call target {mnames!r} != {iname!r}"
            if tuple(isnap[:len(iargs)]) != tuple(iargs):
                return f"effect {i}: call int args differ for {iname!r}"
            if tuple(fsnap[:len(fargs)]) != tuple(fargs):
                return f"effect {i}: call float args differ for {iname!r}"
            continue
        return f"effect {i}: kind {me[0]!r} vs {ie[0]!r}"
    return None
