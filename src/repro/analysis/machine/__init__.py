"""Machine-level translation validation (static binary verification).

Decodes the bytes the backend just emitted, reconstructs the machine
CFG, symbolically executes each block, and proves it equivalent to the
source MiniLLVM IR.  See DESIGN.md §13 for the proof obligations.
"""

from repro.analysis.machine.mcfg import MachineCFG, build_mcfg
from repro.analysis.machine.verifier import (
    INCONCLUSIVE,
    PROVED,
    REFUTED,
    MachineVerifier,
    VerifyOptions,
    VerifyResult,
    verify_witness,
)
from repro.analysis.machine.witness import CodeWitness, build_witness

__all__ = [
    "CodeWitness",
    "INCONCLUSIVE",
    "MachineCFG",
    "MachineVerifier",
    "PROVED",
    "REFUTED",
    "VerifyOptions",
    "VerifyResult",
    "build_mcfg",
    "build_witness",
    "verify_witness",
]
