"""Compilation witness: everything the machine verifier needs to relate
emitted bytes back to the source IR.

The backend produces a :class:`CodeWitness` as a cheap side product of every
``JITEngine.compile_function`` (dict building only — no verification work).
The witness is deliberately *descriptive*, not trusted: the verifier uses it
to know where to look (value homes, block addresses, frame layout) and then
proves the properties independently from the decoded bytes.  A corrupted
witness makes the proof fail or go inconclusive; it cannot make wrong code
verify, because both symbolic executors read locations through the same
witness and the machine side executes only the actual bytes.

This module is backend-neutral: nothing in it is x86-specific except the
meaning of the integers inside location tuples, which only the ISA executor
interprets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.ir.module import Function

#: location forms: ("reg", gp_index) | ("xmm", xmm_index) | ("spill", rbp_off)
Location = tuple


@dataclass
class CodeWitness:
    """Maps one compiled function's IR onto its emitted machine code."""

    func: Function                      #: IR function as lowered (edges split)
    name: str                           #: install name in the image
    code: bytes                         #: emitted bytes
    base: int                           #: load address of ``code``
    entry: int                          #: function entry address
    block_addrs: dict[str, int]         #: IR block name -> machine address
    value_locs: dict[int, Location]     #: id(Value) -> home location
    value_cls: dict[int, str]           #: id(Value) -> 'i' | 'f' | 'v'
    alloca_offsets: dict[int, int]      #: id(Alloca) -> rbp-relative offset
    frame_slots: tuple[tuple[int, int], ...]  #: (rbp_off, size) per slot
    used_callee_saved: tuple[int, ...]  #: pushed callee-saved registers
    local_size: int                     #: sub rsp, N in the prologue
    call_targets: dict[str, int]        #: callee name -> absolute address
    rodata_range: tuple[int, int] = (0, 0)   #: [start, end) constant region
    read_rodata: Callable[[int, int], bytes] | None = field(
        default=None, repr=False)

    @property
    def end(self) -> int:
        return self.base + len(self.code)


def build_witness(
    *,
    func: Function,
    name: str,
    code: bytes,
    base: int,
    labels: dict[str, int],
    lower_info,
    emit_info,
    symbols: dict[str, int],
    rodata_range: tuple[int, int] = (0, 0),
    read_rodata: Callable[[int, int], bytes] | None = None,
) -> CodeWitness:
    """Assemble a witness from the lowering and emission byproducts."""
    assignments = emit_info.assignments
    frame_offsets = emit_info.frame_offsets

    value_locs: dict[int, Location] = {}
    value_cls: dict[int, str] = {}

    def record(value) -> None:
        vreg = lower_info.vmap.get(id(value))
        if vreg is None:
            return
        a = assignments.get(vreg)
        if a is None:
            return
        value_cls[id(value)] = vreg.cls
        if a.is_reg:
            value_locs[id(value)] = (
                ("reg", a.value) if vreg.cls == "i" else ("xmm", a.value))
        else:
            value_locs[id(value)] = ("spill", frame_offsets[a.value])

    for arg in func.args:
        record(arg)
    for ins in func.instructions():
        record(ins)

    alloca_offsets = {
        vid: frame_offsets[slot]
        for vid, slot in lower_info.alloca_slots.items()
        if slot in frame_offsets
    }

    block_addrs = {}
    for blk in func.blocks:
        addr = labels.get(f"{func.name}$b.{blk.name}")
        if addr is not None:
            block_addrs[blk.name] = addr

    frame_slots = tuple(sorted(
        (off, size)
        for off, size in (
            (frame_offsets[slot], size)
            for slot, (size, _align) in emit_info.slot_sizes.items()
            if slot in frame_offsets
        )
    ))

    call_targets = dict(symbols)
    for lname, addr in labels.items():
        if "$" not in lname:
            call_targets[lname] = addr

    return CodeWitness(
        func=func,
        name=name,
        code=code,
        base=base,
        entry=labels.get(func.name, base),
        block_addrs=block_addrs,
        value_locs=value_locs,
        value_cls=value_cls,
        alloca_offsets=alloca_offsets,
        frame_slots=frame_slots,
        used_callee_saved=tuple(emit_info.used_callee_saved),
        local_size=emit_info.local_size,
        call_targets=call_targets,
        rodata_range=rodata_range,
        read_rodata=read_rodata,
    )
