"""Probe-ops pregate: statically prove probes are effect-only.

Runs before codegen on every instrumented install.  The dynamic layers
(differential gate with the probe-buffer whitelist, machine verifier)
check executions; this checker proves the *shape*: every probe-tagged
store and load targets the probe buffer's extent, and no program
instruction consumes a probe value.  If an optimization pass — or a bug
in the injector — ever bends a probe's address chain out of the buffer
or leaks a probe value into program dataflow, the install is rejected
here with attribution, before any code is emitted.

The address proof is a tiny interval evaluation over the probe chains
the injector emits: constants are exact, ``and`` with a constant mask
bounds an unknown (the ring cursor) to ``[0, mask]``, ``add``/``mul``
combine bounds.  Anything outside that grammar is TOP and fails the
containment check — conservative by construction.
"""

from __future__ import annotations

from repro.analysis.findings import ERROR, Finding
from repro.ir import instructions as I
from repro.ir.module import Function
from repro.ir.values import Constant

_TOP = (0, (1 << 64) - 1)


def _range(value, memo: dict[int, tuple[int, int]]) -> tuple[int, int]:
    """Inclusive [lo, hi] bounds of a probe-chain value."""
    got = memo.get(id(value))
    if got is not None:
        return got
    out = _TOP
    if isinstance(value, Constant):
        out = (value.value, value.value)
    elif isinstance(value, I.Cast) and value.opcode == "inttoptr":
        out = _range(value.operands[0], memo)
    elif isinstance(value, I.BinOp):
        a = _range(value.operands[0], memo)
        b = _range(value.operands[1], memo)
        if value.opcode == "add":
            if a != _TOP and b != _TOP:
                out = (a[0] + b[0], a[1] + b[1])
        elif value.opcode == "mul":
            if a != _TOP and b != _TOP:
                prods = [x * y for x in a for y in b]
                out = (min(prods), max(prods))
        elif value.opcode == "and":
            if isinstance(value.operands[1], Constant):
                out = (0, value.operands[1].value)
            elif isinstance(value.operands[0], Constant):
                out = (0, value.operands[0].value)
    memo[id(value)] = out
    return out


def check_probe_ops(func: Function, extent: tuple[int, int]) -> list[Finding]:
    """Findings for probe accesses not provably inside ``extent`` and for
    program instructions depending on probe values."""
    lo, hi = extent
    findings: list[Finding] = []
    memo: dict[int, tuple[int, int]] = {}

    def flag(blk, ins, message):
        findings.append(Finding(
            checker="probe-ops", function=func.name, message=message,
            severity=ERROR, block=blk.name, instruction=repr(ins)))

    for blk in func.blocks:
        for ins in blk.instructions:
            if ins.probe is None:
                # effect-only: program code must not read probe values
                for op in ins.operands:
                    if isinstance(op, I.Instruction) and op.probe is not None:
                        flag(blk, ins,
                             f"program instruction consumes probe value "
                             f"%{op.name} (tag {op.probe})")
                continue
            if isinstance(ins, (I.Load, I.Store)):
                width = 8
                alo, ahi = _range(ins.operands[-1], memo)
                if not (lo <= alo and ahi + width <= hi):
                    flag(blk, ins,
                         f"probe {ins.opcode} address range "
                         f"[{alo:#x},{ahi + width:#x}) escapes the probe "
                         f"buffer [{lo:#x},{hi:#x})")
    return findings
