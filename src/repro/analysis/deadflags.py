"""Dead-flag analysis: which of the six status flags are never consumed.

The lifter eagerly computes o/s/z/a/p/c as individual i1 values after every
flag-writing instruction and threads them through per-block phis named
``fl<letter>`` (Sec. III-D).  The paper's bet is that the optimizer deletes
almost all of them; Fig. 6 quantifies how much the flag cache helps.  This
analysis *proves* the claim per function: a flag letter is **dead** when
every one of its phis is consumed only by the flag network itself (other
``fl*`` phis), i.e. no real instruction ever reads the flag.

The result feeds flag-cache statistics and the lint's ``--stats`` view; a
dead flag is not an error (it is the expected, desirable case), so this
module reports a :class:`FlagReport` rather than findings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.ir import instructions as I
from repro.ir.module import Function

FLAG_LETTERS = "oszapc"

_FLAG_PHI = re.compile(r"fl([oszapc])\d*$")


def flag_letter_of(ins: I.Instruction) -> str | None:
    """The flag letter a lifted flag phi carries, or None."""
    if not isinstance(ins, I.Phi):
        return None
    m = _FLAG_PHI.fullmatch(ins.name or "")
    return m.group(1) if m else None


@dataclass
class FlagReport:
    """Per-function flag liveness: which letters survive optimization."""

    function: str
    #: letters with at least one ``fl*`` phi still in the IR
    present: set[str] = field(default_factory=set)
    #: letters whose value is read by at least one non-flag-phi instruction
    consumed: set[str] = field(default_factory=set)
    #: number of flag phis per letter
    phi_counts: dict[str, int] = field(default_factory=dict)

    def dead_flags(self) -> list[str]:
        """Letters whose phis exist but feed only the flag network."""
        return [f for f in FLAG_LETTERS
                if f in self.present and f not in self.consumed]

    def eliminated_flags(self) -> list[str]:
        """Letters with no phis left at all (fully folded away)."""
        return [f for f in FLAG_LETTERS if f not in self.present]

    def summary(self) -> str:
        def fmt(letters) -> str:
            return "".join(letters) or "-"
        return (f"@{self.function}: flags consumed={fmt(sorted(self.consumed))} "
                f"dead={fmt(self.dead_flags())} "
                f"eliminated={fmt(self.eliminated_flags())}")


def analyze_flags(func: Function) -> FlagReport:
    """Classify each status flag as consumed, dead, or eliminated."""
    report = FlagReport(function=func.name)
    if func.is_declaration or not func.blocks:
        return report

    users: dict[int, list[I.Instruction]] = {}
    flag_phis: list[tuple[I.Phi, str]] = []
    for blk in func.blocks:
        for ins in blk.instructions:
            for op in ins.operands:
                users.setdefault(id(op), []).append(ins)
            letter = flag_letter_of(ins)
            if letter is not None:
                flag_phis.append((ins, letter))
                report.present.add(letter)
                report.phi_counts[letter] = report.phi_counts.get(letter, 0) + 1

    for phi, letter in flag_phis:
        if letter in report.consumed:
            continue
        for user in users.get(id(phi), ()):
            if flag_letter_of(user) is None:
                report.consumed.add(letter)
                break
    return report


def analyze_module_flags(func_iter) -> list[FlagReport]:
    """Flag reports for an iterable of functions."""
    return [analyze_flags(f) for f in func_iter]
