"""Function body cloning for snapshot / rollback / differential replay.

The per-pass validator needs (a) a pre-pass snapshot it can interpret
against the post-pass function, and (b) the ability to roll the function
back when a pass is rejected — *in place*, because callers (module tables,
cache entries, the pipeline driver) hold the Function object itself.

The twin produced by :func:`clone_function` shares the original's
``Argument`` objects (so the interpreter binds the same formals for both
bodies) and all external values (constants, globals, called functions);
only blocks and instructions are duplicated.  It is deliberately *not*
registered in any module.
"""

from __future__ import annotations

from repro.ir import instructions as I
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Argument, Constant, ConstantFP, ConstantVector, Undef


def clone_function(func: Function, name: str | None = None) -> Function:
    """An unregistered twin of ``func`` sharing args and external values."""
    twin = Function(name or f"{func.name}.snapshot", func.ftype)
    twin.args = func.args  # shared formals: bodies are interchangeable
    twin.module = func.module  # for global placement; not in module.functions
    twin.always_inline = func.always_inline
    twin.is_declaration = func.is_declaration
    twin._name_counter = func._name_counter

    vmap: dict[int, object] = {}
    bmap: dict[int, BasicBlock] = {}
    for blk in func.blocks:
        nb = BasicBlock(blk.name)
        nb.function = twin
        bmap[id(blk)] = nb
        twin.blocks.append(nb)
        for ins in blk.instructions:
            c = ins.clone_shallow()
            c.block = nb
            c.probe = ins.probe  # keep probe tags strippable after rollback
            vmap[id(ins)] = c
            nb.instructions.append(c)
    for blk in func.blocks:
        nb = bmap[id(blk)]
        for ins in nb.instructions:
            ins.operands = [vmap.get(id(op), op) for op in ins.operands]
            if isinstance(ins, I.Br):
                ins.targets = [bmap.get(id(t), t) for t in ins.targets]
            if isinstance(ins, I.Phi):
                ins.incoming_blocks = [bmap.get(id(b), b)
                                       for b in ins.incoming_blocks]
    return twin


def restore_function(func: Function, snapshot: Function) -> None:
    """Replace ``func``'s body with a snapshot's blocks, in place.

    The snapshot must come from :func:`clone_function` on the same
    function (shared args); after this call the snapshot must not be used
    again — its blocks now belong to ``func``.
    """
    func.blocks = snapshot.blocks
    for blk in func.blocks:
        blk.function = func
    snapshot.blocks = []
    # rollback is a mutation: any cached derived state (interpreter traces)
    # keyed by the pre-rollback version must be invalidated
    func.bump_version()


def _operand_key(op: object, pos: dict[int, tuple[int, int]],
                 bpos: dict[int, int]) -> object:
    """Position-based structural key for one operand (shared by equality
    and fingerprinting; ignores value names)."""
    if isinstance(op, I.Instruction):
        return ("ins", pos.get(id(op)))
    if isinstance(op, Constant):
        return ("c", id(op.type), op.value)
    if isinstance(op, ConstantFP):
        return ("cf", id(op.type), repr(op.value))
    if isinstance(op, ConstantVector):
        return ("cv", id(op.type),
                tuple(_operand_key(e, pos, bpos) for e in op.elements))
    if isinstance(op, Undef):
        return ("undef", id(op.type))
    if isinstance(op, Argument):
        return ("arg", op.index)
    # globals, functions: identity (shared between the twins)
    return ("ext", id(op))


def _positions(func: Function) -> tuple[dict[int, tuple[int, int]],
                                        dict[int, int]]:
    pos: dict[int, tuple[int, int]] = {}
    bpos = {id(blk): i for i, blk in enumerate(func.blocks)}
    for bi, blk in enumerate(func.blocks):
        for ii, ins in enumerate(blk.instructions):
            pos[id(ins)] = (bi, ii)
    return pos, bpos


def _instruction_key(ins: I.Instruction, pos: dict[int, tuple[int, int]],
                     bpos: dict[int, int]) -> tuple:
    """Everything position-based equality compares about one instruction."""
    extra: tuple = ()
    if isinstance(ins, (I.ICmp, I.FCmp)):
        extra = ("pred", ins.pred)
    elif isinstance(ins, I.GEP):
        extra = ("elem", id(ins.elem))
    elif isinstance(ins, I.ShuffleVector):
        extra = ("mask", tuple(ins.mask))
    elif isinstance(ins, I.Alloca):
        extra = ("alloca", ins.size, ins.align)
    elif isinstance(ins, (I.Load, I.Store)):
        extra = ("align", ins.align)
    elif isinstance(ins, I.Call):
        extra = ("callee", ins.callee_name)
    elif isinstance(ins, I.Br):
        extra = ("targets", tuple(bpos.get(id(t)) for t in ins.targets))
    if isinstance(ins, I.Phi):
        extra = ("incoming",
                 tuple(bpos.get(id(t)) for t in ins.incoming_blocks))
    return (ins.opcode, id(ins.type),
            tuple(_operand_key(op, pos, bpos) for op in ins.operands), extra)


def function_fingerprint(func: Function) -> tuple:
    """A hashable structural key: two bodies compare
    :func:`functions_structurally_equal` iff their fingerprints are equal
    (within one process — external values key by object identity).

    Cheap (one body walk, no interpretation); the validator uses it to
    re-validate a memoized baseline before trusting it.
    """
    pos, bpos = _positions(func)
    return tuple(
        tuple(_instruction_key(ins, pos, bpos) for ins in blk.instructions)
        for blk in func.blocks)


def functions_structurally_equal(a: Function, b: Function) -> bool:
    """Structural (position-based) equality of two function bodies.

    Used to detect passes that mutate a function while reporting "no
    change" — a silent miscompile the validator must still examine.
    Compares block/instruction shape, opcodes, instruction payload and
    operand identity up to position; ignores value *names*.
    """
    if len(a.blocks) != len(b.blocks):
        return False
    pos_a, bpos_a = _positions(a)
    pos_b, bpos_b = _positions(b)

    operand_key = _operand_key

    for blk_a, blk_b in zip(a.blocks, b.blocks):
        if len(blk_a.instructions) != len(blk_b.instructions):
            return False
        for x, y in zip(blk_a.instructions, blk_b.instructions):
            if x.opcode != y.opcode or x.type is not y.type:
                return False
            if len(x.operands) != len(y.operands):
                return False
            for ox, oy in zip(x.operands, y.operands):
                if operand_key(ox, pos_a, bpos_a) != operand_key(oy, pos_b, bpos_b):
                    return False
            if isinstance(x, (I.ICmp, I.FCmp)):
                if x.pred != y.pred:  # type: ignore[union-attr]
                    return False
            if isinstance(x, I.GEP) and x.elem is not y.elem:  # type: ignore[union-attr]
                return False
            if isinstance(x, I.ShuffleVector) and x.mask != y.mask:  # type: ignore[union-attr]
                return False
            if isinstance(x, I.Alloca):
                if (x.size, x.align) != (y.size, y.align):  # type: ignore[union-attr]
                    return False
            if isinstance(x, (I.Load, I.Store)) and x.align != y.align:  # type: ignore[union-attr]
                return False
            if isinstance(x, I.Call) and x.callee_name != y.callee_name:  # type: ignore[union-attr]
                return False
            if isinstance(x, I.Br):
                ta = [bpos_a.get(id(t)) for t in x.targets]
                tb = [bpos_b.get(id(t)) for t in y.targets]  # type: ignore[union-attr]
                if ta != tb:
                    return False
            if isinstance(x, I.Phi):
                ia = [bpos_a.get(id(t)) for t in x.incoming_blocks]
                ib = [bpos_b.get(id(t)) for t in y.incoming_blocks]  # type: ignore[union-attr]
                if ia != ib:
                    return False
    return True
