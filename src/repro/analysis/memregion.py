"""Memory-region bounds checker for specialized code.

``lift.fixation`` clones fixed memory regions into the module as
:class:`~repro.ir.module.GlobalVariable` rodata (Sec. IV).  Every load or
store whose address is derived from such a region must land inside the
cloned bytes — an out-of-region access in specialized code means the
rewriter baked in an address the original program never touched, which is
how "lightweight" rewriters silently corrupt neighbouring state.

The checker runs an interval analysis on the sparse SSA solver.  Abstract
states (plain tuples, so lattice equality is ``==``):

* ``None`` — bottom, unreached;
* ``("int", lo, hi)`` — a signed integer in ``[lo, hi]`` (``None``
  endpoint = unbounded on that side);
* ``("ptr", region, lo, hi)`` — a pointer ``region + off`` with byte
  offset ``off`` in ``[lo, hi]``;
* ``TOP`` — anything (arguments, loaded values, foreign pointers).

Only *provably bounded* pointer intervals are compared against the
region's initializer size, so the checker reports **zero findings** when
it cannot decide: loop indices widen to unbounded, unknown bases are TOP.
That keeps the lint false-positive-free on the clean corpus while still
catching the interesting case — post-O3 specialized code, where constant
propagation has folded indices to literals and bounds are exact.
"""

from __future__ import annotations

from typing import Callable

from repro.ir import instructions as I
from repro.ir.irtypes import FunctionType, VoidType
from repro.ir.module import Function, GlobalVariable
from repro.ir.values import Constant, Value

from repro.analysis.dataflow import (
    Lattice, ValueProblem, reachable_blocks, solve_value_problem,
)
from repro.analysis.findings import ERROR, Finding

CHECKER = "mem-region"

TOP = ("top",)


def _iv_join(al: int | None, ah: int | None,
             bl: int | None, bh: int | None) -> tuple[int | None, int | None]:
    lo = None if al is None or bl is None else min(al, bl)
    hi = None if ah is None or bh is None else max(ah, bh)
    return lo, hi


def _iv_add(al, ah, bl, bh):
    lo = None if al is None or bl is None else al + bl
    hi = None if ah is None or bh is None else ah + bh
    return lo, hi


def _iv_sub(al, ah, bl, bh):
    lo = None if al is None or bh is None else al - bh
    hi = None if ah is None or bl is None else ah - bl
    return lo, hi


def _iv_mul(al, ah, bl, bh):
    if None in (al, ah, bl, bh):
        return None, None
    prods = (al * bl, al * bh, ah * bl, ah * bh)
    return min(prods), max(prods)


def _iv_scale(lo, hi, k: int):
    """Interval times a non-negative constant scale factor."""
    slo = None if lo is None else lo * k
    shi = None if hi is None else hi * k
    return slo, shi


class _RegionLattice(Lattice):
    def bottom(self) -> object:
        return None

    def join(self, a: object, b: object) -> object:
        if a is None:
            return b
        if b is None:
            return a
        if a == b:
            return a
        if a == TOP or b == TOP:
            return TOP
        ka, kb = a[0], b[0]  # type: ignore[index]
        if ka == "int" and kb == "int":
            lo, hi = _iv_join(a[1], a[2], b[1], b[2])  # type: ignore[index]
            return ("int", lo, hi)
        if ka == "ptr" and kb == "ptr" and a[1] is b[1]:  # type: ignore[index]
            lo, hi = _iv_join(a[2], a[3], b[2], b[3])  # type: ignore[index]
            return ("ptr", a[1], lo, hi)  # type: ignore[index]
        return TOP


class _RegionProblem(ValueProblem):
    def lattice(self) -> _RegionLattice:
        return _RegionLattice()

    def initial(self, value: Value) -> object:
        if isinstance(value, Constant):
            s = value.signed
            return ("int", s, s)
        if isinstance(value, GlobalVariable):
            return ("ptr", value, 0, 0)
        return TOP

    def widen(self, old: object, new: object) -> object:
        """Unstable endpoints go straight to unbounded (no finding)."""
        if (old is None or new is None or old == TOP or new == TOP
                or old[0] != new[0]):  # type: ignore[index]
            return TOP
        if old[0] == "ptr":  # type: ignore[index]
            if old[1] is not new[1]:  # type: ignore[index]
                return TOP
            lo = old[2] if old[2] == new[2] else None  # type: ignore[index]
            hi = old[3] if old[3] == new[3] else None  # type: ignore[index]
            return ("ptr", old[1], lo, hi)  # type: ignore[index]
        lo = old[1] if old[1] == new[1] else None  # type: ignore[index]
        hi = old[2] if old[2] == new[2] else None  # type: ignore[index]
        return ("int", lo, hi)

    def transfer(self, ins: I.Instruction,
                 get: Callable[[Value], object]) -> object:
        if isinstance(ins, I.GEP):
            ptr, idx = get(ins.operands[0]), get(ins.operands[1])
            if ptr is None or idx is None:
                return None  # operand unreached yet
            if ptr == TOP or ptr[0] != "ptr":  # type: ignore[index]
                return TOP
            if idx == TOP or idx[0] != "int":  # type: ignore[index]
                off_lo = off_hi = None
            else:
                off_lo, off_hi = _iv_scale(idx[1], idx[2],  # type: ignore[index]
                                           ins.elem.size_bytes())
            lo, hi = _iv_add(ptr[2], ptr[3], off_lo, off_hi)  # type: ignore[index]
            return ("ptr", ptr[1], lo, hi)  # type: ignore[index]
        if isinstance(ins, I.BinOp):
            return self._binop(ins, get)
        if isinstance(ins, I.Cast):
            return self._cast(ins, get)
        if isinstance(ins, I.Select):
            return self.lattice().join(get(ins.operands[1]),
                                       get(ins.operands[2]))
        # loads, calls, compares, vector ops: unknown
        return TOP

    def _binop(self, ins: I.BinOp, get: Callable[[Value], object]) -> object:
        a, b = get(ins.operands[0]), get(ins.operands[1])
        if a is None or b is None:
            return None
        if a == TOP or b == TOP:
            return TOP
        ka, kb = a[0], b[0]  # type: ignore[index]
        if ins.opcode == "add":
            if ka == "int" and kb == "int":
                return ("int", *_iv_add(a[1], a[2], b[1], b[2]))  # type: ignore[index]
            if ka == "ptr" and kb == "int":
                return ("ptr", a[1], *_iv_add(a[2], a[3], b[1], b[2]))  # type: ignore[index]
            if ka == "int" and kb == "ptr":
                return ("ptr", b[1], *_iv_add(b[2], b[3], a[1], a[2]))  # type: ignore[index]
            return TOP
        if ins.opcode == "sub":
            if ka == "int" and kb == "int":
                return ("int", *_iv_sub(a[1], a[2], b[1], b[2]))  # type: ignore[index]
            if ka == "ptr" and kb == "int":
                return ("ptr", a[1], *_iv_sub(a[2], a[3], b[1], b[2]))  # type: ignore[index]
            return TOP
        if ins.opcode == "mul" and ka == "int" and kb == "int":
            return ("int", *_iv_mul(a[1], a[2], b[1], b[2]))  # type: ignore[index]
        return TOP

    def _cast(self, ins: I.Cast, get: Callable[[Value], object]) -> object:
        v = get(ins.operands[0])
        if v is None or v == TOP:
            return v if v is None else TOP
        if ins.opcode in ("bitcast", "inttoptr", "ptrtoint", "sext"):
            return v  # value-preserving for our signed-interval view
        if ins.opcode == "zext":
            if v[0] == "int" and v[1] is not None and v[1] >= 0:  # type: ignore[index]
                return v
            return TOP
        return TOP


def _access_size(ins: I.Instruction) -> int | None:
    t = ins.type if isinstance(ins, I.Load) else ins.operands[0].type
    if isinstance(t, (VoidType, FunctionType)):
        return None
    try:
        return t.size_bytes()
    except (TypeError, NotImplementedError):
        return None


def check_memory_regions(func: Function) -> list[Finding]:
    """Flag loads/stores provably able to escape their cloned region."""
    if func.is_declaration or not func.blocks:
        return []
    states = solve_value_problem(func, _RegionProblem())
    reachable = reachable_blocks(func)
    findings: list[Finding] = []
    for blk in func.blocks:
        if blk not in reachable:
            continue
        for ins in blk.instructions:
            if not isinstance(ins, (I.Load, I.Store)):
                continue
            ptr = ins.operands[0] if isinstance(ins, I.Load) else ins.operands[1]
            st = states.get(ptr)
            if st is None or st == TOP or st[0] != "ptr":  # type: ignore[index]
                continue
            region, lo, hi = st[1], st[2], st[3]  # type: ignore[index]
            if not isinstance(region, GlobalVariable):
                continue
            if lo is None or hi is None:
                continue  # widened / unbounded: cannot prove anything
            size = _access_size(ins)
            if size is None:
                continue
            limit = len(region.initializer)
            if lo < 0 or hi + size > limit:
                what = "load" if isinstance(ins, I.Load) else "store"
                findings.append(Finding(
                    checker=CHECKER, function=func.name,
                    severity=ERROR, block=blk.name,
                    instruction=repr(ins).strip(),
                    message=(
                        f"{what} of {size} byte(s) at @{region.name}"
                        f"[{lo}..{hi}] may escape region of {limit} bytes"),
                ))
    return findings
