"""Generic lattice-based dataflow engine over the MiniLLVM CFG.

Two solver shapes cover the analyses this repo needs:

* :func:`solve_block_problem` — the classic dense worklist solver: one
  lattice state per basic-block boundary, forward or backward, join at
  control-flow merges.  Reaching definitions, liveness, available
  expressions all fit here.

* :func:`solve_value_problem` — a *sparse* SSA solver: one abstract value
  per SSA value, propagated along def-use edges with meet-over-phis (a
  phi's state is the join of its incoming values' states).  Because the IR
  is SSA, this converges in a fraction of the dense solver's work and is
  the engine behind the undef-use and memory-region checkers.

Both solvers take a :class:`Lattice` — a bounded join-semilattice given by
``bottom()`` and ``join()``.  States must be hashable-comparable with
``==``; the solvers iterate to a fixpoint and rely on finite ascending
chains, so domains with infinite chains (intervals) must widen via the
``widen_after`` hook of the sparse solver.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.ir import instructions as I
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Value

FORWARD = "forward"
BACKWARD = "backward"


class Lattice:
    """A bounded join-semilattice.

    Subclasses provide ``bottom`` (the least element, meaning "no
    information yet / unreached") and ``join`` (the least upper bound).
    ``leq`` is derived; override it when a cheaper test exists.
    """

    def bottom(self) -> object:
        raise NotImplementedError

    def join(self, a: object, b: object) -> object:
        raise NotImplementedError

    def leq(self, a: object, b: object) -> bool:
        return self.join(a, b) == b

    def join_all(self, states: Iterable[object]) -> object:
        out = self.bottom()
        for s in states:
            out = self.join(out, s)
        return out


class SetLattice(Lattice):
    """Powerset lattice: bottom = empty set, join = union."""

    def bottom(self) -> frozenset:
        return frozenset()

    def join(self, a: object, b: object) -> frozenset:
        return frozenset(a) | frozenset(b)  # type: ignore[arg-type]

    def leq(self, a: object, b: object) -> bool:
        return frozenset(a) <= frozenset(b)  # type: ignore[arg-type]


class BoolLattice(Lattice):
    """Two-point lattice: False (bottom) -> True.  Taint-style facts."""

    def bottom(self) -> bool:
        return False

    def join(self, a: object, b: object) -> bool:
        return bool(a) or bool(b)


# -- CFG helpers --------------------------------------------------------------


def predecessor_map(func: Function) -> dict[BasicBlock, list[BasicBlock]]:
    """Block -> predecessor list in one scan (Function.predecessors is
    O(blocks) per query, which is quadratic when every block asks)."""
    preds: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in func.blocks}
    for blk in func.blocks:
        for succ in blk.successors():
            if succ in preds:
                preds[succ].append(blk)
    return preds


def reverse_postorder(func: Function) -> list[BasicBlock]:
    """Reverse postorder from the entry (unreachable blocks appended last,
    in layout order, so dense solvers still visit them)."""
    seen: set[int] = set()
    order: list[BasicBlock] = []

    def visit(blk: BasicBlock) -> None:
        # iterative DFS: lifted CFGs can be deep chains
        stack: list[tuple[BasicBlock, int]] = [(blk, 0)]
        seen.add(id(blk))
        while stack:
            b, i = stack[-1]
            succs = b.successors()
            if i < len(succs):
                stack[-1] = (b, i + 1)
                s = succs[i]
                if id(s) not in seen:
                    seen.add(id(s))
                    stack.append((s, 0))
            else:
                order.append(b)
                stack.pop()

    if func.blocks:
        visit(func.entry)
    rpo = list(reversed(order))
    for blk in func.blocks:
        if id(blk) not in seen:
            rpo.append(blk)
    return rpo


def reachable_blocks(func: Function) -> set[BasicBlock]:
    """Blocks reachable from the entry."""
    if not func.blocks:
        return set()
    out: set[BasicBlock] = set()
    work = [func.entry]
    while work:
        b = work.pop()
        if b in out:
            continue
        out.add(b)
        work.extend(b.successors())
    return out


# -- dense (block-level) solver ------------------------------------------------


class BlockProblem:
    """A dense dataflow problem: per-block transfer over a lattice.

    ``direction`` is :data:`FORWARD` (in = join of predecessors' out) or
    :data:`BACKWARD` (out = join of successors' in).  ``boundary`` is the
    state at the entry (forward) / at every exit block (backward).
    """

    direction: str = FORWARD

    def lattice(self) -> Lattice:
        raise NotImplementedError

    def boundary(self, func: Function) -> object:
        return self.lattice().bottom()

    def transfer(self, block: BasicBlock, state: object) -> object:
        """The state after (forward) / before (backward) the block."""
        raise NotImplementedError


class BlockStates:
    """Solved per-block states: ``inp[block]`` and ``out[block]``."""

    def __init__(self, inp: dict[BasicBlock, object],
                 out: dict[BasicBlock, object]) -> None:
        self.inp = inp
        self.out = out


def solve_block_problem(func: Function, problem: BlockProblem,
                        max_iterations: int = 10_000) -> BlockStates:
    """Worklist iteration to the least fixpoint."""
    lat = problem.lattice()
    preds = predecessor_map(func)
    forward = problem.direction == FORWARD
    if forward:
        edges_in = preds
        edges_out = {b: b.successors() for b in func.blocks}
    else:
        edges_in = {b: b.successors() for b in func.blocks}
        edges_out = preds

    inp: dict[BasicBlock, object] = {b: lat.bottom() for b in func.blocks}
    out: dict[BasicBlock, object] = {b: lat.bottom() for b in func.blocks}
    boundary = problem.boundary(func)
    if forward:
        if func.blocks:
            inp[func.entry] = boundary
    else:
        for b in func.blocks:
            if not b.successors():
                inp[b] = boundary

    order = reverse_postorder(func)
    if not forward:
        order = list(reversed(order))
    work: list[BasicBlock] = list(order)
    queued = {id(b) for b in work}
    steps = 0
    while work:
        steps += 1
        if steps > max_iterations:
            raise RuntimeError(
                f"dataflow did not converge in {max_iterations} steps "
                f"(@{func.name}: non-monotone transfer or unbounded lattice?)")
        blk = work.pop(0)
        queued.discard(id(blk))
        sources = edges_in[blk]
        if sources:
            joined = lat.join_all(out[p] for p in sources)
            if forward and blk is func.entry:
                # an entry with a back edge still starts from the boundary
                joined = lat.join(joined, boundary)
            inp[blk] = joined
        elif forward and blk is not func.entry:
            inp[blk] = lat.bottom()
        new_out = problem.transfer(blk, inp[blk])
        if new_out != out[blk]:
            out[blk] = new_out
            for s in edges_out[blk]:
                if id(s) not in queued:
                    queued.add(id(s))
                    work.append(s)
    if forward:
        return BlockStates(inp, out)
    # backward: "inp" is the state at block exit, "out" at block entry —
    # rename so callers always read inp=before, out=after in layout order
    return BlockStates(out, inp)


# -- sparse (SSA value-level) solver -------------------------------------------


class ValueProblem:
    """A sparse SSA dataflow problem (forward along def-use edges).

    * ``initial(value)`` — the abstract state of a non-instruction value
      (arguments, constants, globals, undef);
    * ``transfer(ins, get)`` — the state of a non-phi instruction result,
      where ``get(operand)`` reads the current state of any operand;
    * phis take the meet (join) over their incoming values' states —
      override ``transfer_phi`` for path-sensitive variants;
    * ``widen(old, new)`` — called instead of plain replacement once a
      value changed state more than ``widen_after`` times, to cut infinite
      ascending chains (interval domains).  Default: keep ``new``.
    """

    def lattice(self) -> Lattice:
        raise NotImplementedError

    def initial(self, value: Value) -> object:
        return self.lattice().bottom()

    def transfer(self, ins: I.Instruction,
                 get: Callable[[Value], object]) -> object:
        raise NotImplementedError

    def transfer_phi(self, phi: I.Phi,
                     get: Callable[[Value], object]) -> object:
        lat = self.lattice()
        return lat.join_all(get(v) for v, _b in phi.incoming())

    def widen(self, old: object, new: object) -> object:
        return new


class ValueStates:
    """Solved per-SSA-value abstract states (id-keyed)."""

    def __init__(self, states: dict[int, object], problem: ValueProblem) -> None:
        self._states = states
        self._problem = problem

    def get(self, value: Value) -> object:
        if id(value) in self._states:
            return self._states[id(value)]
        return self._problem.initial(value)


def solve_value_problem(func: Function, problem: ValueProblem,
                        widen_after: int = 8) -> ValueStates:
    """Sparse forward propagation along def-use edges to a fixpoint."""
    states: dict[int, object] = {}
    users: dict[int, list[I.Instruction]] = {}
    instrs: list[I.Instruction] = []
    for blk in reverse_postorder(func):
        for ins in blk.instructions:
            instrs.append(ins)
            for op in ins.operands:
                users.setdefault(id(op), []).append(ins)

    def get(value: Value) -> object:
        if id(value) in states:
            return states[id(value)]
        return problem.initial(value)

    lat = problem.lattice()
    for ins in instrs:
        states[id(ins)] = lat.bottom()

    changes: dict[int, int] = {}
    work = list(instrs)
    queued = {id(i) for i in work}
    while work:
        ins = work.pop(0)
        queued.discard(id(ins))
        if isinstance(ins, I.Phi):
            new = problem.transfer_phi(ins, get)
        else:
            new = problem.transfer(ins, get)
        old = states[id(ins)]
        if new == old:
            continue
        n = changes.get(id(ins), 0) + 1
        changes[id(ins)] = n
        if n > widen_after:
            new = problem.widen(old, new)
            if new == old:
                continue
        states[id(ins)] = new
        for user in users.get(id(ins), ()):
            if id(user) not in queued:
                queued.add(id(user))
                work.append(user)
    return ValueStates(states, problem)
