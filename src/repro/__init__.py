"""repro: runtime binary rewriting with LLVM-style post-processing.

A from-scratch Python reproduction of Engelke & Weidendorfer, *Using LLVM
for Optimized Lightweight Binary Re-Writing at Runtime* (HIPS/IPDPSW 2017).

The public API mirrors the paper's workflow:

>>> from repro import compile_c, Simulator, Rewriter, BinaryTransformer
>>> program = compile_c("long f(long a, long b) { return a * b; }")
>>> sim = Simulator(program.image)
>>> sim.call_int("f", (6, 7))
42
>>> Rewriter(program.image, "f").set_signature(("i", "i")) \\
...     .set_par(1, 7).rewrite(name="f_x7")        # DBrew specialization
...
>>> from repro.lift import FunctionSignature
>>> tx = BinaryTransformer(program.image)
>>> tx.llvm_identity("f_x7", FunctionSignature(("i", "i"), "i"),
...                  name="f_x7_opt")               # lift -> -O3 -> JIT

See DESIGN.md for the architecture and EXPERIMENTS.md for the reproduced
evaluation.
"""

from repro.analysis import (
    Finding,
    PassValidator,
    ValidationOptions,
    analyze_flags,
    run_checkers,
)
from repro.cc import CompiledProgram, compile_c
from repro.cpu import CostModel, HASWELL, Image, Simulator
from repro.dbrew import Rewriter
from repro.farm import CompileJob, CompileResult, FarmClient, FarmPool
from repro.guard import Budget, BudgetExceededError, GuardedTransformer
from repro.instrument import (
    InstrumentOptions,
    InstrumentedFunction,
    Instrumenter,
    ProbeBuffer,
    strip_instrumentation,
)
from repro.jit import BinaryTransformer, TransformResult
from repro.lift import FunctionSignature, LiftOptions, lift_function
from repro.lift.fixation import FixedMemory
from repro.obs import TRACER, Tracer, metrics, trace_to_chrome
from repro.tier import DispatchHandle, EdgeProfile, TieredEngine, TierPolicy

__version__ = "1.0.0"

__all__ = [
    "BinaryTransformer",
    "Budget",
    "BudgetExceededError",
    "CompileJob",
    "CompileResult",
    "CompiledProgram",
    "CostModel",
    "DispatchHandle",
    "EdgeProfile",
    "FarmClient",
    "FarmPool",
    "Finding",
    "FixedMemory",
    "FunctionSignature",
    "GuardedTransformer",
    "HASWELL",
    "Image",
    "InstrumentOptions",
    "InstrumentedFunction",
    "Instrumenter",
    "LiftOptions",
    "PassValidator",
    "ProbeBuffer",
    "Rewriter",
    "Simulator",
    "TRACER",
    "TierPolicy",
    "TieredEngine",
    "Tracer",
    "TransformResult",
    "ValidationOptions",
    "analyze_flags",
    "compile_c",
    "lift_function",
    "metrics",
    "run_checkers",
    "strip_instrumentation",
    "trace_to_chrome",
]
