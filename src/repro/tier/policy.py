"""Promotion/demotion policy for the tiered execution engine.

The policy layer is deliberately free of threads, compiles and images: it
answers three questions from plain numbers — *should this handle request a
higher tier now?* (call-count thresholds), *should it fall back to a lower
tier?* (measured cycle costs with hysteresis), and *may it ever try tier T
again?* (rejection pinning, re-promotion back-off).  Everything
time-dependent takes an injectable clock, so the whole decision procedure
is unit-testable with a fake clock (tests/tier/test_policy.py).

The hysteresis rules exist to prevent *flapping*:

* a demotion raises that tier's re-promotion threshold by
  ``repromote_backoff``x, so a tier that measured worse is not retried
  after a handful more calls;
* a demotion requires ``demote_after`` *consecutive* worse observations,
  each beyond the ``hysteresis`` margin, so one noisy sample cannot
  demote;
* a fresh install is protected by ``min_dwell_seconds`` before any
  demotion, so warm-up noise (cold caches, first-run effects) is not
  mistaken for a regression;
* a gate rejection (or any failed upgrade) *pins* the handle strictly
  below the rejected tier — the guard's negative cache would make retries
  cheap, but the policy should not even enqueue them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

#: tier indices (also usable as plain ints)
T0, T1, T2 = 0, 1, 2
NUM_TIERS = 3
TIER_NAMES = ("T0", "T1", "T2")


@dataclass(frozen=True)
class TierPolicy:
    """Tuning knobs for one engine's promotion/demotion behavior."""

    #: calls after which tier 1 / tier 2 compilation is requested
    promote_calls: tuple[int, int] = (8, 64)
    #: a higher tier must not be more than this fraction *worse* than a
    #: lower ready tier (measured cycles) before the demote streak counts
    hysteresis: float = 0.10
    #: consecutive worse-than-lower-tier observations before demoting
    demote_after: int = 3
    #: multiplier applied to a demoted tier's re-promotion threshold
    repromote_backoff: float = 4.0
    #: EWMA smoothing factor for observed per-call cycle costs
    ewma_alpha: float = 0.3
    #: no demotion until this long after the tier was installed
    min_dwell_seconds: float = 0.0
    #: dispatch slow-path cadence once every promotion is resolved
    review_interval: int = 64

    def threshold(self, tier: int) -> int:
        return self.promote_calls[tier - 1]


class ProfileSource:
    """Where a governor's hotness numbers come from.

    The default (no source attached) is call counting — the dispatch
    handle's raw invocation count.  :class:`EdgeProfile` replaces it with
    basic-block edge heat read from an instrumented tier's probe buffer,
    so a loopy kernel gets hot per *iteration* instead of per call.
    Implementations are duck-typed: anything with ``hotness()`` /
    ``rebase()`` / ``describe()`` works.
    """

    def hotness(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def rebase(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - interface
        return type(self).__name__


class EdgeProfile(ProfileSource):
    """Edge-heat hotness from an instrumented function's probe buffer.

    Reads the per-block counters that T1's probes maintain
    (:class:`~repro.instrument.ProbeBuffer`); hotness is the hottest
    block's count, so one call through a 1000-iteration loop contributes
    1000 heat — call counting would need 1000 separate calls to see the
    same.  ``rebase`` snapshots the current raw heat as the new zero
    (the buffer itself is owned by the installed code and never reset
    under it).
    """

    def __init__(self, buffer) -> None:
        self.buffer = buffer
        self.base = 0

    def _raw(self) -> int:
        return self.buffer.hotness()

    def hotness(self) -> int:
        return max(0, self._raw() - self.base)

    def rebase(self) -> None:
        self.base = self._raw()

    def describe(self) -> str:
        return f"edges@{self.buffer.addr:#x}"


@dataclass
class TierGovernor:
    """Mutable per-handle decision state driven by a :class:`TierPolicy`.

    The governor never touches the dispatch code itself; the engine asks
    :meth:`next_target` on the dispatch slow path, :meth:`observe` when the
    caller reports measured cycles, and informs it of installs, rejections
    and demotions so the back-off state stays honest.

    With a :class:`ProfileSource` attached (``profile``), promotion
    eligibility uses ``max(effective calls, profile hotness)`` — the
    profile can only accelerate promotion, never starve it below the
    call-count baseline (a frozen or stale buffer degrades to exact
    call-count behavior).  Demotion stays cycle-EWMA-driven either way.
    """

    policy: TierPolicy = field(default_factory=TierPolicy)
    clock: Callable[[], float] = time.monotonic
    #: highest tier this handle may run at (lowered by rejections)
    pinned_max: int = NUM_TIERS - 1
    pin_reason: str | None = None
    #: per-tier effective promotion thresholds (scaled by demotion back-off)
    thresholds: dict[int, int] = field(default_factory=dict)
    #: EWMA of observed per-call cycles, per tier actually executed
    cycles: dict[int, float] = field(default_factory=dict)
    install_time: dict[int, float] = field(default_factory=dict)
    demotions: int = 0
    worse_streak: int = 0
    #: calls are counted from here (rebased when the fixation key changes)
    base_calls: int = 0
    #: optional hotness source (e.g. :class:`EdgeProfile`); None = calls
    profile: ProfileSource | None = None

    def __post_init__(self) -> None:
        if not self.thresholds:
            self.thresholds = {t: self.policy.threshold(t)
                               for t in range(1, NUM_TIERS)}

    # -- promotion ---------------------------------------------------------

    def _effective(self, calls: int) -> int:
        """Hotness at ``calls``: rebased call count, profile-boosted."""
        eff = calls - self.base_calls
        if self.profile is not None:
            eff = max(eff, self.profile.hotness())
        return eff

    def next_target(self, calls: int, current: int,
                    in_flight: set[int] | frozenset[int] = frozenset(),
                    ) -> int | None:
        """The highest tier worth requesting at this call count, or None.

        Honors the pin, the (back-off-scaled) thresholds and tiers already
        compiling.  Returns the *highest* eligible tier: a handle that got
        hot while T1 was still queued goes straight for T2 rather than
        serializing the ladder.
        """
        eff = self._effective(calls)
        for tier in range(self.pinned_max, current, -1):
            if tier in in_flight:
                continue
            if eff >= self.thresholds[tier]:
                return tier
        return None

    def next_review(self, calls: int, current: int) -> int:
        """The call count at which the dispatch slow path should run next."""
        eff = self._effective(calls)
        pending = [self.thresholds[t] for t in range(current + 1,
                                                     self.pinned_max + 1)
                   if self.thresholds[t] > eff]
        if pending:
            if self.profile is None:
                return self.base_calls + min(pending)
            # profile heat grows between calls; re-check soon enough that
            # an eligible promotion is not deferred by a stale estimate,
            # but never later than the call-count baseline would
            gap = min(pending) - eff
            return calls + max(1, min(gap, self.policy.review_interval))
        return calls + self.policy.review_interval

    # -- measurement / demotion --------------------------------------------

    def observe(self, tier: int, cycles: float) -> int | None:
        """Fold one measured cost in; returns a demotion target or None."""
        alpha = self.policy.ewma_alpha
        prev = self.cycles.get(tier)
        self.cycles[tier] = cycles if prev is None else (
            alpha * cycles + (1.0 - alpha) * prev)
        if tier == 0:
            self.worse_streak = 0
            return None
        best_lower = min((t for t in self.cycles if t < tier),
                         key=lambda t: self.cycles[t], default=None)
        if best_lower is None:
            return None
        if self.cycles[tier] > self.cycles[best_lower] * (
                1.0 + self.policy.hysteresis):
            self.worse_streak += 1
        else:
            self.worse_streak = 0
            return None
        if self.worse_streak < self.policy.demote_after:
            return None
        installed = self.install_time.get(tier)
        if installed is not None and self.clock() - installed < \
                self.policy.min_dwell_seconds:
            return None
        return best_lower

    # -- lifecycle notifications -------------------------------------------

    def on_install(self, tier: int) -> None:
        self.install_time[tier] = self.clock()
        self.worse_streak = 0

    def on_reject(self, tier: int, reason: str) -> None:
        """A compile for ``tier`` failed or was gate-rejected: pin below it."""
        if tier - 1 < self.pinned_max:
            self.pinned_max = tier - 1
            self.pin_reason = reason

    def on_demote(self, from_tier: int, calls: int) -> None:
        """Back off the demoted tier's re-promotion threshold."""
        self.demotions += 1
        self.worse_streak = 0
        eff = max(calls - self.base_calls, self.thresholds[from_tier])
        self.thresholds[from_tier] = int(eff * self.policy.repromote_backoff)

    def rebase(self, calls: int) -> None:
        """Start counting hotness from scratch (fixation key superseded)."""
        self.base_calls = calls
        self.thresholds = {t: self.policy.threshold(t)
                           for t in range(1, NUM_TIERS)}
        self.cycles.clear()
        self.install_time.clear()
        self.worse_streak = 0
        self.pinned_max = NUM_TIERS - 1
        self.pin_reason = None
        if self.profile is not None:
            self.profile.rebase()

    def snapshot(self) -> dict[str, Any]:
        return {
            "pinned_max": self.pinned_max,
            "pin_reason": self.pin_reason,
            "thresholds": dict(self.thresholds),
            "cycles_ewma": dict(self.cycles),
            "demotions": self.demotions,
            "worse_streak": self.worse_streak,
            "profile": self.profile.describe() if self.profile else "calls",
        }
