"""TieredEngine: background compilation behind zero-stall dispatch.

The engine owns a small :class:`~concurrent.futures.ThreadPoolExecutor` of
compile workers plus the dispatch table of registered
:class:`~repro.tier.handle.DispatchHandle` objects.  The life of a handle:

1. **register** — the handle starts at T0 (the original code); the first
   call costs exactly a counter bump and an attribute read.
2. **promotion** — when the call counter crosses a governor threshold the
   dispatch slow path *enqueues* a compile job and returns immediately;
   callers keep running the current tier while the worker compiles.
3. **install** — the worker installs the result by swapping the handle's
   immutable :class:`TierCode` record under the handle lock, but only if
   the job's fixation *epoch* still matches the handle; a ``refix`` racing
   with a compile supersedes it and the stale result is discarded, never
   installed.
4. **demotion** — measured per-call costs reported via
   :meth:`DispatchHandle.observe` feed the governor's EWMA; a tier that is
   consistently worse than a lower ready tier is demoted (with back-off,
   so it does not flap).

Tier meanings (:mod:`repro.tier.policy`):

* **T1** is the cheap rung: :class:`~repro.jit.BinaryTransformer` with
  :meth:`O3Options.lightweight` — the paper's Sec. VII "small subset of
  passes" proposal; with fixes it runs ``llvm-fix``, otherwise a plain
  lift-and-regenerate.
* **T2** is the full specialization: the
  :class:`~repro.guard.GuardedTransformer` ladder (``dbrew+llvm`` when
  there is anything to specialize) with the differential gate as
  *admission control* — a rejected candidate pins the handle at its
  current tier instead of ever serving unverified code.

Worker compiles are *cooperative*: each job's
:class:`~repro.guard.Budget` gets a yield hook that blocks on the
engine's run gate, so :meth:`pause` throttles in-flight compiles at their
next trace-point/sweep/stage checkpoint without any stage knowing about
threads.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.cache import SpecializationCache
from repro.cpu.image import Image
from repro.errors import ReproError
from repro.guard import (
    Budget, DifferentialGate, GateOptions, GuardedTransformer,
)
from repro.ir.codegen import JITOptions
from repro.ir.passes import O3Options
from repro.jit import BinaryTransformer, TransformResult
from repro.lift import FunctionSignature, LiftOptions
from repro.lift.fixation import FixedMemory
from repro.obs.metrics import CounterView, MetricsRegistry
from repro.obs.trace import TRACER as _TR, Span
from repro.tier.handle import DispatchHandle, TierCode
from repro.tier.policy import NUM_TIERS, T1, T2, TierGovernor, TierPolicy


class TierStats:
    """Aggregate engine counters (read with :meth:`snapshot`).

    Backed by a :class:`~repro.obs.metrics.MetricsRegistry`: the int
    attributes are :class:`~repro.obs.metrics.CounterView` thin views and
    the dict-valued fields are registry-owned
    :class:`~repro.obs.metrics.CounterFamily` objects, so one
    ``registry.snapshot()``/``reset()`` is authoritative while the legacy
    attribute protocol (``stats.refixes += 1``,
    ``stats.installs[tier] += 1``) keeps working unchanged.
    """

    registered = CounterView("_registered")
    #: finished jobs discarded because a refix superseded their epoch
    stale_discards = CounterView("_stale_discards")
    demotions = CounterView("_demotions")
    refixes = CounterView("_refixes")
    #: TransformResults observed via the per-call profiling hook
    pipeline_results = CounterView("_pipeline_results")
    #: of those, served by joining another thread's in-flight compile
    coalesced = CounterView("_coalesced")
    #: compile jobs shipped to the farm (attempted, not necessarily served)
    farm_jobs = CounterView("_farm_jobs")
    #: farm requests that fell back to the in-process pipeline
    farm_fallbacks = CounterView("_farm_fallbacks")
    #: farm results served from the shared store without compiling
    farm_cache_hits = CounterView("_farm_cache_hits")
    #: farm results that joined another process's in-flight compile
    farm_coalesced = CounterView("_farm_coalesced")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        r = registry if registry is not None else MetricsRegistry()
        self.registry = r
        self._registered = r.counter("tier.registered")
        self._stale_discards = r.counter("tier.stale_discards")
        self._demotions = r.counter("tier.demotions")
        self._refixes = r.counter("tier.refixes")
        self._pipeline_results = r.counter("tier.pipeline_results")
        self._coalesced = r.counter("tier.coalesced")
        self._farm_jobs = r.counter("tier.farm.jobs")
        self._farm_fallbacks = r.counter("tier.farm.fallbacks")
        self._farm_cache_hits = r.counter("tier.farm.cache_hits")
        self._farm_coalesced = r.counter("tier.farm.coalesced")
        upgrade = {t: 0 for t in range(1, NUM_TIERS)}
        #: compile jobs submitted / installed / rejected, by target tier
        self.submitted = r.family("tier.submitted", upgrade)
        self.installs = r.family("tier.installs", upgrade)
        self.rejections = r.family("tier.rejections", upgrade)
        #: wall seconds spent inside compile jobs, by target tier
        self.compile_seconds = r.family(
            "tier.compile_seconds", {t: 0.0 for t in range(1, NUM_TIERS)})
        #: pipeline results served from a warm cache stage (stage -> count)
        self.cache_served = r.family("tier.cache_served")

    def reset(self) -> None:
        self.registry.reset()

    def snapshot(self) -> dict[str, Any]:
        return {
            "registered": self.registered,
            "submitted": dict(self.submitted),
            "installs": dict(self.installs),
            "rejections": dict(self.rejections),
            "compile_seconds": dict(self.compile_seconds),
            "stale_discards": self.stale_discards,
            "demotions": self.demotions,
            "refixes": self.refixes,
            "pipeline_results": self.pipeline_results,
            "coalesced": self.coalesced,
            "cache_served": dict(self.cache_served),
            "farm_jobs": self.farm_jobs,
            "farm_fallbacks": self.farm_fallbacks,
            "farm_cache_hits": self.farm_cache_hits,
            "farm_coalesced": self.farm_coalesced,
        }


@dataclass(frozen=True)
class _Job:
    """One queued background compile."""

    handle: DispatchHandle
    target: int
    epoch: int
    seq: int
    #: the submitting context's span (None when tracing is off) — the
    #: worker adopts it so its compile span nests under the dispatch site
    parent_span: Span | None = None


class TieredEngine:
    """Hotness-profiled tiered execution over one image."""

    def __init__(self, image: Image, *,
                 cache: SpecializationCache | None = None,
                 policy: TierPolicy | None = None,
                 max_workers: int = 2,
                 clock: Callable[[], float] = time.monotonic,
                 gate_options: GateOptions = GateOptions(),
                 lift_options: LiftOptions | None = None,
                 jit_options: JITOptions | None = None,
                 t2_o3_options: O3Options | None = None,
                 budget_factory: Callable[[], Budget] | None = None,
                 machine_verify: bool = False,
                 registry: MetricsRegistry | None = None,
                 on_install: "Callable[[DispatchHandle, TierCode], None] | None"
                 = None,
                 farm: "Any | None" = None,
                 farm_timeout: float = 60.0,
                 profile: str = "calls",
                 instrument_options: "Any | None" = None) -> None:
        if profile not in ("calls", "edges"):
            raise ValueError(f"unknown profile source {profile!r}")
        self.image = image
        #: one registry owns every layer's metrics under this engine: tier
        #: counters here, cache.* via the default cache, guard.* via the
        #: per-job T2 GuardedTransformers (get-or-create shares counters)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.cache = cache if cache is not None \
            else SpecializationCache(registry=self.registry)
        self.policy = policy if policy is not None else TierPolicy()
        self.clock = clock
        self.gate_options = gate_options
        self.lift_options = lift_options
        self.jit_options = jit_options
        self.t2_o3_options = t2_o3_options
        #: per-job budget source; the engine chains its throttle gate onto
        #: whatever yield hook the factory's budgets already carry
        self.budget_factory = budget_factory
        #: statically verify every fresh T1/T2 emission against its source
        #: IR (:mod:`repro.analysis.machine`) before installing it; a
        #: refuted proof rejects the job, an inconclusive proof on the
        #: ungated T1 tier downgrades to a one-off differential gate
        self.machine_verify = machine_verify
        #: called (outside the handle lock) after every install — the
        #: stencil driver uses this to invalidate simulator decode caches
        self.on_install = on_install
        #: optional :class:`~repro.farm.FarmClient`: when set, compile
        #: jobs are shipped to the worker-process pool first and the
        #: in-process pipelines below become the fallback path
        self.farm = farm
        self.farm_timeout = farm_timeout
        #: governor hotness source: "calls" (raw invocation counts) or
        #: "edges" — T1 compiles instrumented with edge counters
        #: (``repro.instrument``) and each handle's governor promotes on
        #: basic-block heat read from the live probe buffer
        self.profile = profile
        self.instrument_options = instrument_options
        self.stats = TierStats(self.registry)
        self._queue_depth = self.registry.gauge("tier.queue_depth")
        self._dispatch_seconds = self.registry.histogram(
            "tier.dispatch_seconds",
            (1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 1e-4, 1e-3))
        self.registry.view("tier.cycles_ewma", self._ewma_view)
        self.handles: dict[str, DispatchHandle] = {}
        self._lock = threading.RLock()
        self._seq = itertools.count()
        self._closed = False
        #: set = run, cleared = throttle workers at their next checkpoint
        self._run_gate = threading.Event()
        self._run_gate.set()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-tier")

    def _ewma_view(self) -> dict[str, dict[int, float]]:
        """Registry view: per-handle governor EWMAs (owned by the policy
        layer, which stays metrics-free; exposed read-only here)."""
        with self._lock:
            return {name: dict(h.governor.cycles)
                    for name, h in self.handles.items()}

    # -- registration ------------------------------------------------------

    def register(self, func: str | int, signature: FunctionSignature, *,
                 fixes: dict[int, int | float | FixedMemory] | None = None,
                 mem_regions: Sequence[tuple[int, int]] = (),
                 probes: Sequence[tuple] = (),
                 name: str | None = None,
                 dbrew_func: str | int | None = None,
                 policy: TierPolicy | None = None) -> DispatchHandle:
        """Front a (function, fixation) pair with a dispatch handle.

        ``fixes``/``mem_regions``/``probes``/``dbrew_func`` have the same
        meaning as in :meth:`GuardedTransformer.transform`; they define the
        fixation key the upgrade tiers compile for.  The handle starts at
        T0 and is immediately dispatchable.
        """
        if self._closed:
            raise RuntimeError("TieredEngine is closed")
        entry = self.image.symbol(func) if isinstance(func, str) else func
        base = func if isinstance(func, str) else f"f{func:x}"
        hname = name or f"{base}.tiered"
        governor = TierGovernor(policy=policy or self.policy,
                                clock=self.clock)
        handle = DispatchHandle(self, hname, func, entry, signature, fixes,
                                mem_regions, probes, dbrew_func, governor)
        if _TR.enabled:
            # __class__ swap to a timed subclass: DispatchHandle.address()
            # itself stays the bare three-step hot path when tracing is off
            handle._enable_dispatch_trace(self._dispatch_seconds)
        with self._lock:
            if hname in self.handles:
                raise ValueError(f"handle {hname!r} already registered")
            self.handles[hname] = handle
            self.stats.registered += 1
        return handle

    def refix(self, handle: DispatchHandle,
              fixes: dict[int, int | float | FixedMemory] | None = None, *,
              mem_regions: Sequence[tuple[int, int]] = (),
              probes: Sequence[tuple] = ()) -> None:
        """Supersede the handle's fixation key (new parameter values).

        Bumps the compile epoch — in-flight jobs for the old key finish
        but their results are discarded at install time — drops every
        upgrade tier, rebases hotness, and falls back to T0 until the new
        key earns its promotions.
        """
        with handle._cv:
            handle.epoch += 1
            handle.fixes = dict(fixes) if fixes else None
            handle.mem_regions = tuple(mem_regions)
            handle.probes = tuple(probes)
            handle.governor.rebase(handle.calls)
            handle._version += 1
            t0 = TierCode(0, handle.entry, handle.name, handle._version,
                          handle.epoch, "original")
            handle.codes = {0: t0}
            handle._code = t0
            handle._next_review = handle.governor.next_review(handle.calls, 0)
            handle._cv.notify_all()
        with self._lock:
            self.stats.refixes += 1

    # -- dispatch slow path ------------------------------------------------

    def _review(self, handle: DispatchHandle) -> None:
        """Counter crossed a threshold: maybe enqueue a compile.

        Non-blocking by construction: if another thread holds the handle
        lock (an install or a concurrent review), this call just returns —
        the counter keeps climbing and a later call retries.
        """
        if self._closed:
            return
        job = None
        if not handle._cv.acquire(blocking=False):
            return
        try:
            cur = handle._code.tier
            target = handle.governor.next_target(handle.calls, cur,
                                                 handle.in_flight)
            if target is not None:
                handle.in_flight.add(target)
                job = _Job(handle, target, handle.epoch, next(self._seq),
                           _TR.current() if _TR.enabled else None)
            handle._next_review = handle.governor.next_review(
                handle.calls, cur)
        finally:
            handle._cv.release()
        if job is not None:
            with self._lock:
                self.stats.submitted[job.target] += 1
                self._queue_depth.inc()
            if _TR.enabled:
                _TR.instant("tier.promote", {"handle": handle.name,
                                             "target": job.target})
            self._pool.submit(self._run_job, job)

    def _observe(self, handle: DispatchHandle, tier: int,
                 cycles: float) -> None:
        with handle._cv:
            demote_to = handle.governor.observe(tier, cycles)
            if demote_to is None or demote_to not in handle.codes \
                    or handle._code.tier != tier:
                return
            handle.governor.on_demote(tier, handle.calls)
            handle._code = handle.codes[demote_to]
            handle._next_review = handle.governor.next_review(
                handle.calls, demote_to)
            handle._cv.notify_all()
        with self._lock:
            self.stats.demotions += 1
        if _TR.enabled:
            _TR.instant("tier.demote", {"handle": handle.name,
                                        "from": tier, "to": demote_to})

    # -- background compilation --------------------------------------------

    def _job_budget(self) -> Budget:
        budget = self.budget_factory() if self.budget_factory else Budget()
        inner = budget.yield_hook

        def hook() -> None:
            self._run_gate.wait()
            if inner is not None:
                inner()

        budget.yield_hook = hook
        return budget

    def _note_result(self, result: TransformResult) -> None:
        with self._lock:
            self.stats.pipeline_results += 1
            if result.coalesced:
                self.stats.coalesced += 1
            if result.cache_stage is not None:
                self.stats.cache_served[result.cache_stage] = (
                    self.stats.cache_served.get(result.cache_stage, 0) + 1)

    def _run_job(self, job: _Job) -> None:
        if not _TR.enabled:
            return self._run_job_impl(job)
        # worker threads do not inherit the submit-site context: adopt the
        # captured parent so the compile span nests under the dispatch span
        token = _TR.adopt(job.parent_span)
        try:
            with _TR.span("tier.compile", {"handle": job.handle.name,
                                           "target": job.target,
                                           "seq": job.seq}):
                return self._run_job_impl(job)
        finally:
            _TR.release(token)

    def _run_job_impl(self, job: _Job) -> None:
        handle = job.handle
        self._run_gate.wait()
        if handle.epoch != job.epoch or self._closed:
            with handle._cv:
                handle.in_flight.discard(job.target)
                handle._cv.notify_all()
            with self._lock:
                self.stats.stale_discards += 1
                self._queue_depth.dec()
            return

        t0 = time.perf_counter()
        addr = mode = reject_reason = None
        verified = False
        out_name = f"{handle.name}.t{job.target}.e{job.epoch}.s{job.seq}"
        try:
            farm_out = self._compile_farm(handle, job, out_name) \
                if self.farm is not None else None
            if farm_out is not None:
                addr, mode, verified, reject_reason = farm_out
            elif job.target == T1:
                addr, mode = self._compile_t1(handle, out_name)
            else:
                addr, mode, verified, reject_reason = self._compile_t2(
                    handle, out_name)
        except ReproError as exc:
            reject_reason = f"{type(exc).__name__}: {exc}"
        except BaseException as exc:  # pragma: no cover - defensive
            reject_reason = f"internal error: {exc!r}"
        seconds = time.perf_counter() - t0

        installed: TierCode | None = None
        outcome = "stale"
        with handle._cv:
            handle.in_flight.discard(job.target)
            try:
                if handle.epoch != job.epoch:
                    with self._lock:
                        self.stats.stale_discards += 1
                elif reject_reason is not None or addr is None:
                    outcome = "reject"
                    handle.governor.on_reject(
                        job.target, reject_reason or "no result")
                    with self._lock:
                        self.stats.rejections[job.target] += 1
                else:
                    outcome = "install"
                    handle._version += 1
                    installed = TierCode(job.target, addr, out_name,
                                         handle._version, job.epoch,
                                         mode or "?", verified)
                    handle.codes[job.target] = installed
                    if job.target > handle._code.tier:
                        handle._code = installed
                    handle.governor.on_install(job.target)
                    with self._lock:
                        self.stats.installs[job.target] += 1
                handle._next_review = handle.governor.next_review(
                    handle.calls, handle._code.tier)
            finally:
                handle._cv.notify_all()
        with self._lock:
            self.stats.compile_seconds[job.target] += seconds
            self._queue_depth.dec()
        if _TR.enabled:
            _TR.instant(f"tier.{outcome}",
                        {"handle": handle.name, "target": job.target,
                         "seconds": seconds,
                         "reason": reject_reason})
        if installed is not None and self.on_install is not None:
            self.on_install(handle, installed)

    def _farm_pipeline_options(
            self, handle: DispatchHandle,
            target: int) -> tuple[O3Options, tuple[str, ...]]:
        """The exact pipeline configuration the local tiers would use —
        the farm must key and run the *same* work, or results would not be
        interchangeable with the in-process fallback."""
        if target == T1:
            o3 = O3Options.lightweight()
            if handle.fixes:
                o3 = o3.replace(enable_inline=True)
            return o3, ()
        specializing = bool(handle.fixes) or bool(handle.mem_regions)
        o3 = self.t2_o3_options if self.t2_o3_options is not None \
            else O3Options()
        return o3, ("dbrew+llvm",) if specializing else ("llvm",)

    def _compile_farm(self, handle: DispatchHandle, job: _Job, out_name: str,
                      ) -> tuple[int | None, str | None, bool, str | None] | None:
        """Ship one compile to the farm; None means "compile in-process".

        The worker returns a position-independent post-O3 module; the
        engine runs the (cheap) code generation here, into its own image —
        so a farm install costs the client one codegen, never a lift or an
        O3 pipeline.  Every farm deficiency (unkeyable function, timeout,
        dead pool, retryable result, open circuit breaker) falls back to
        the local tiers; only a content-determined negative verdict is
        surfaced as a rejection.
        """
        from repro.farm import protocol as fp
        # breaker fast-skip: while the client's circuit is open, job-key
        # hashing and image publication would be thrown away — degrade to
        # the in-process tiers before doing any of it.  getattr keeps
        # duck-typed farm stubs (tests) working without the method.
        avail = getattr(self.farm, "available", None)
        if avail is not None and not avail():
            with self._lock:
                self.stats.farm_fallbacks += 1
            return None
        target = job.target
        if target == T1 and self.profile == "edges" and not handle.fixes:
            # instrumented T1 modules bake this image's probe-buffer
            # address into their IR — position-dependent by construction,
            # so they are compiled in-process (the farm job key carries an
            # instrument= component regardless, keeping instrumented and
            # plain artifacts digest-distinct)
            return None
        o3, ladder = self._farm_pipeline_options(handle, target)
        dbrew = handle.dbrew_func if target != T1 else None
        jit = self.jit_options if self.jit_options is not None \
            else JITOptions()
        # publish (or re-verify) the image snapshot *before* keying: the
        # job key folds the spec key in, so results computed against
        # different snapshots can never be served interchangeably
        image_key = self.farm.ensure_image(self.image)
        jkey = fp.compute_job_key(
            self.image, handle.func, handle.signature, handle.fixes,
            handle.mem_regions, handle.probes, target, ladder, dbrew,
            self.lift_options, o3, jit, self.gate_options,
            image_key=image_key)
        if jkey is None:
            with self._lock:
                self.stats.farm_fallbacks += 1
            return None
        with self._lock:
            self.stats.farm_jobs += 1
        budget = self.budget_factory() if self.budget_factory else None
        cur = _TR.current() if _TR.enabled else None
        cjob = fp.CompileJob(
            key=jkey, name=out_name, tier=target, func=handle.func,
            signature=handle.signature, fixes=fp.freeze_fixes(handle.fixes),
            mem_regions=tuple(handle.mem_regions),
            probes=tuple(handle.probes), dbrew_func=dbrew, ladder=ladder,
            image_key=image_key,
            lift=fp.freeze_lift_options(self.lift_options),
            o3=o3, jit=jit, gate=self.gate_options,
            budget=fp.freeze_budget(budget),
            epoch=job.epoch, seq=job.seq, trace=_TR.enabled,
            parent_span_id=cur.span_id if cur is not None else None,
            machine_verify=self.machine_verify)
        res = self.farm.compile(cjob, timeout=self.farm_timeout)
        if res is None or (not res.ok and res.retryable):
            with self._lock:
                self.stats.farm_fallbacks += 1
            return None
        with self._lock:
            if res.cache_stage == "farm":
                self.stats.farm_cache_hits += 1
                self.stats.cache_served["farm"] = (
                    self.stats.cache_served.get("farm", 0) + 1)
            if res.coalesced:
                self.stats.farm_coalesced += 1
        if not res.ok:
            return None, None, False, res.reject_reason or "farm rejection"
        main = res.module.functions[res.main_name]
        from repro.ir.codegen.jit import JITEngine
        addr = JITEngine(self.image, jit).compile_function(
            main, name=out_name)
        if target == T1:
            # the worker's proof covers its own emission; an inconclusive
            # farm verdict means this client-side install must pass the
            # one-off gate T1 would otherwise skip
            self._t1_machine_gate(handle, addr, res.machine_verdict)
        return addr, res.mode, res.verified, None

    def _compile_t1(self, handle: DispatchHandle,
                    out_name: str) -> tuple[int, str]:
        """The cheap tier: lightweight pass subset, no gate.

        T1 code is produced by the same lifter/codegen as everything else
        and carries no fixation when the handle has none, so it is served
        ungated — the differential gate is T2's admission control, where
        specialization actually changes semantics-relevant structure.
        """
        budget = self._job_budget().start()
        if self.profile == "edges" and not handle.fixes:
            return self._compile_t1_instrumented(handle, out_name)
        o3 = O3Options.lightweight()
        if handle.fixes:
            # the fixation wrapper calls the lifted original, which only
            # exists inside the module — the inliner must collapse that
            # call or codegen has no symbol to resolve it against
            o3 = o3.replace(enable_inline=True)
        tx = BinaryTransformer(
            self.image, o3_options=o3,
            cache=self.cache, budget=budget,
            lift_options=self.lift_options, jit_options=self.jit_options,
            machine_verify=self.machine_verify)
        tx.on_result = self._note_result
        if handle.fixes:
            res = tx.llvm_fixed(handle.func, handle.signature, handle.fixes,
                                name=out_name)
            self._t1_machine_gate(handle, res.addr, res.machine_verdict)
            return res.addr, "llvm-fix"
        res = tx.llvm_identity(handle.func, handle.signature, name=out_name)
        self._t1_machine_gate(handle, res.addr, res.machine_verdict)
        return res.addr, "llvm"

    def _compile_t1_instrumented(self, handle: DispatchHandle,
                                 out_name: str) -> tuple[int, str]:
        """Edge-profile T1: the cheap tier compiled with probes.

        The instrumenter runs the full boundary stack — probe-ops pregate,
        machine verification of the instrumented emission, and the
        differential gate under the probe-buffer effects-whitelist.  A
        handle registered without probe vectors gets a ``min_conclusive=0``
        gate (sampled integers cannot exercise pointer parameters), which
        matches plain T1's ungated trust level while still comparing every
        probe that *is* conclusive.  On success the handle's governor
        switches to the :class:`~repro.tier.EdgeProfile` source bound to
        the fresh buffer, so promotion to T2 runs on block heat.

        Instrumented artifacts never enter the specialization cache: the
        module bakes the buffer address in, so the install is unique to
        this buffer by construction.
        """
        from dataclasses import replace as _dc_replace

        from repro.instrument import Instrumenter, InstrumentOptions
        from repro.tier.policy import EdgeProfile

        gate_opts = self.gate_options
        if not handle.probes:
            gate_opts = _dc_replace(gate_opts, min_conclusive=0)
        inst = Instrumenter(
            self.image, lift_options=self.lift_options,
            jit_options=self.jit_options, gate_options=gate_opts,
            machine_verify=self.machine_verify)
        res = inst.instrument(
            handle.func, handle.signature,
            options=self.instrument_options or InstrumentOptions(),
            probes=tuple(handle.probes), name=out_name)
        # attach before the install commits: a stale-epoch discard leaves
        # a frozen buffer behind, which is safe — the governor takes
        # max(calls, heat), so a dead profile degrades to call counting
        handle.governor.profile = EdgeProfile(res.buffer)
        return res.addr, "llvm+instr"

    def _t1_machine_gate(self, handle: DispatchHandle, addr: int,
                         verdict: str | None) -> None:
        """T1 normally installs ungated; an *inconclusive* machine proof
        downgrades that privilege to a mandatory one-off differential
        gate.  (A refuted proof never reaches here — the transformer
        raises before installation.)"""
        if verdict != "inconclusive":
            return
        DifferentialGate(self.image, self.gate_options).gate(
            handle.entry, addr, handle.signature, handle.fixes,
            handle.probes)

    def _compile_t2(self, handle: DispatchHandle, out_name: str,
                    ) -> tuple[int | None, str | None, bool, str | None]:
        """The full tier: guarded dbrew+llvm+O3 with gate admission.

        The guard's own ladder is restricted to the strongest applicable
        rung: T2 is *the* specialization tier, so a failure there must pin
        the handle (reported as a rejection), not silently install a rung
        the cheaper tiers already cover.
        """
        budget = self._job_budget()
        guard = GuardedTransformer(
            self.image, cache=self.cache, budget=budget,
            gate_options=self.gate_options, lift_options=self.lift_options,
            o3_options=self.t2_o3_options, jit_options=self.jit_options,
            machine_verify=self.machine_verify, registry=self.registry)
        guard.tx.on_result = self._note_result
        specializing = bool(handle.fixes) or bool(handle.mem_regions)
        ladder = ("dbrew+llvm",) if specializing else ("llvm",)
        res = guard.transform(
            handle.func, handle.signature, handle.fixes,
            mem_regions=handle.mem_regions, name=out_name,
            probes=handle.probes, ladder=ladder,
            dbrew_func=handle.dbrew_func)
        if res.degraded:
            failures = "; ".join(res.failure_summary()) or "ladder degraded"
            return None, None, False, failures
        verified = res.verified or (res.result is not None
                                    and res.result.machine_gated)
        return res.addr, res.mode, verified, None

    # -- scheduling controls -----------------------------------------------

    def pause(self) -> None:
        """Throttle background compiles at their next budget checkpoint."""
        self._run_gate.clear()

    def resume(self) -> None:
        self._run_gate.set()

    @property
    def paused(self) -> bool:
        return not self._run_gate.is_set()

    def drain(self, timeout: float | None = None) -> bool:
        """Block until no compile is queued or running; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for handle in list(self.handles.values()):
            with handle._cv:
                remaining = None if deadline is None else \
                    deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    if handle.in_flight:
                        return False
                    continue
                if not handle._cv.wait_for(lambda: not handle.in_flight,
                                           remaining):
                    return False
        return True

    def close(self, wait: bool = True) -> None:
        """Stop accepting work and shut the pool down.

        The run gate is re-opened first so paused workers can finish (or
        discard) instead of deadlocking the shutdown.
        """
        self._closed = True
        self.resume()
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "TieredEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "closed": self._closed,
                "paused": self.paused,
                "stats": self.stats.snapshot(),
                "handles": {n: h.snapshot()
                            for n, h in self.handles.items()},
            }
