"""Tiered execution engine: hotness-profiled background compilation.

The paper's headline cost is rewriting latency (Fig. 10: tens of
milliseconds per specialization), which it amortizes by hand — the caller
decides when rewriting pays off.  BAAR and LeanBin show the runtime-system
fix: profile hotness, keep callers on the best *ready* code, and move
LLVM-grade optimization off the hot path into background workers.  This
package is that architecture for the repro pipeline:

* :class:`TieredEngine` — registers (function, fixation) pairs, owns the
  background compile pool and the dispatch table;
* :class:`DispatchHandle` — the per-registration front door: ``address()``
  returns the best ready tier's entry address in sub-microsecond time and
  never stalls on a compile;
* :class:`TierPolicy` / :class:`TierGovernor` — call-count promotion
  thresholds, measured-cycle demotion with hysteresis, gate-rejection
  pinning;
* tiers — **T0** the original code, **T1** a lightweight ``llvm-fix``
  rewrite (:meth:`O3Options.lightweight`), **T2** the full
  dbrew+llvm+O3 specialization admitted through the
  :class:`~repro.guard.GuardedTransformer` ladder and differential gate.
"""

from repro.tier.engine import TierStats, TieredEngine
from repro.tier.handle import DispatchHandle, TierCode
from repro.tier.policy import (
    NUM_TIERS,
    T0,
    T1,
    T2,
    TIER_NAMES,
    EdgeProfile,
    ProfileSource,
    TierGovernor,
    TierPolicy,
)

__all__ = [
    "DispatchHandle",
    "EdgeProfile",
    "NUM_TIERS",
    "ProfileSource",
    "T0",
    "T1",
    "T2",
    "TIER_NAMES",
    "TierCode",
    "TierGovernor",
    "TierPolicy",
    "TierStats",
    "TieredEngine",
]
