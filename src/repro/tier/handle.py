"""Dispatch handles: the zero-stall front door of the tiered engine.

A :class:`DispatchHandle` fronts one registered (function, fixation) pair.
Its job splits into a *hot path* that must cost well under a microsecond —
:meth:`DispatchHandle.address` bumps a call counter and returns the entry
address of the best ready tier — and a *cold path* that runs only when the
counter crosses a governor threshold and merely *enqueues* background work.

The zero-stall guarantee rests on two CPython facts:

* reading/writing a single instance attribute is atomic under the GIL, so
  the active code is kept as one immutable :class:`TierCode` record in
  ``handle._code`` and upgrades swap the whole record — a dispatching
  thread sees either the old tier or the new one, never a torn mix of
  address and metadata;
* the call counter tolerates lost increments (two racing ``calls += 1``
  may collapse into one): hotness is a heuristic, and the review slow path
  re-reads the counter under the handle lock anyway.

Everything that mutates tier state (installs, demotions, rebasing after a
``refix``) happens under ``handle._cv`` inside the engine; the handle
itself exposes only waiting and reporting.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from repro.lift import FunctionSignature
from repro.lift.fixation import FixedMemory
from repro.tier.policy import TIER_NAMES, TierGovernor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tier.engine import TieredEngine


@dataclass(frozen=True)
class TierCode:
    """One installed tier's code: immutable, swapped as a whole.

    ``epoch`` records which fixation-key generation compiled this code;
    the engine discards installs whose epoch no longer matches the handle
    (the compile was superseded by a :meth:`TieredEngine.refix`).
    """

    tier: int
    addr: int
    name: str
    #: monotonically increasing per handle; tie-breaks same-tier reinstalls
    version: int
    #: fixation-key generation this code was compiled for
    epoch: int
    #: pipeline mode that produced it ("original", "llvm-fix", "dbrew+llvm", ...)
    mode: str
    #: passed the differential gate (T2 installs through the guard)
    verified: bool = False

    @property
    def tier_name(self) -> str:
        return TIER_NAMES[self.tier]


class DispatchHandle:
    """Per-registration dispatch state; created by :meth:`TieredEngine.register`."""

    def __init__(self, engine: "TieredEngine", name: str,
                 func: str | int, entry: int,
                 signature: FunctionSignature,
                 fixes: dict[int, int | float | FixedMemory] | None,
                 mem_regions: Sequence[tuple[int, int]],
                 probes: Sequence[tuple],
                 dbrew_func: str | int | None,
                 governor: TierGovernor) -> None:
        self.engine = engine
        self.name = name
        self.func = func
        self.entry = entry
        self.signature = signature
        self.fixes = dict(fixes) if fixes else None
        self.mem_regions = tuple(mem_regions)
        self.probes = tuple(probes)
        self.dbrew_func = dbrew_func
        self.governor = governor
        self._cv = threading.Condition()
        #: fixation-key generation; bumped by refix, checked at install
        self.epoch = 0
        self._version = 0
        #: tiers with a background compile queued or running
        self.in_flight: set[int] = set()
        #: every ready tier's code for the current epoch (T0 always present)
        self.codes: dict[int, TierCode] = {
            0: TierCode(0, entry, name, 0, 0, "original")}
        #: the active tier — single-attribute swap, GIL-atomic (module doc)
        self._code: TierCode = self.codes[0]
        self.calls = 0
        self._next_review = governor.next_review(0, 0)
        #: dispatch-latency histogram; set by :meth:`_enable_dispatch_trace`.
        #: Pre-declared so every instance lays out its dict identically
        #: (CPython shared-keys friendly) whether or not tracing is on.
        self._dispatch_histogram = None

    # -- hot path ----------------------------------------------------------

    def address(self) -> int:
        """Entry address of the best ready tier; never blocks on a compile.

        This is the dispatch hot path: one counter bump, one compare, one
        attribute read.  Lost increments under races are acceptable; the
        threshold comparison routes roughly every ``review_interval``-th
        call through the engine's (still non-blocking) review.
        """
        self.calls = c = self.calls + 1
        if c >= self._next_review:
            self.engine._review(self)
        return self._code.addr

    def _enable_dispatch_trace(self, histogram) -> None:
        """Swap this handle's class to a timed-dispatch subclass.

        When tracing is off no handle is touched and dispatch stays the
        bare counter-bump-and-read.  The switch is a ``__class__`` swap
        rather than an instance-dict shadow of ``address`` on purpose:
        writing an instance attribute with a method's *name* inserts that
        name into the class's CPython shared-keys dictionary, which
        permanently deoptimizes ``LOAD_METHOD`` specialization for every
        future :class:`DispatchHandle` — a measured ~15% tax on the hot
        path of untraced handles.  A subclass override keeps the name at
        class level and leaves plain handles fully specialized.  The
        engine calls this at registration time only while the tracer is
        enabled.
        """
        self._dispatch_histogram = histogram
        self.__class__ = _TracedDispatchHandle

    @property
    def code(self) -> TierCode:
        return self._code

    @property
    def tier(self) -> int:
        return self._code.tier

    # -- feedback ----------------------------------------------------------

    def observe(self, cycles: float) -> None:
        """Report the measured per-call cost of the currently active tier.

        Feeds the governor's EWMA; if the active tier has been measurably
        worse than a lower ready tier for long enough (hysteresis), the
        engine demotes the handle to the best lower tier.
        """
        self.engine._observe(self, self._code.tier, cycles)

    def wait_for_tier(self, tier: int, timeout: float | None = None) -> bool:
        """Block until the active tier is ``>= tier`` (testing/benchmarks).

        Returns False on timeout, and also when the goal has become
        unreachable — the governor pinned the handle below ``tier`` and no
        compile for it is in flight — so a gate rejection does not hang
        the waiter.  Production callers never need this; dispatch always
        proceeds at the best ready tier.
        """
        def done() -> bool:
            return (self._code.tier >= tier
                    or (self.governor.pinned_max < tier
                        and not any(t >= tier for t in self.in_flight)))

        with self._cv:
            if not self._cv.wait_for(done, timeout):
                return False
            return self._code.tier >= tier

    def snapshot(self) -> dict[str, Any]:
        code = self._code
        return {
            "name": self.name,
            "calls": self.calls,
            "epoch": self.epoch,
            "tier": code.tier,
            "tier_name": code.tier_name,
            "addr": code.addr,
            "mode": code.mode,
            "verified": code.verified,
            "ready_tiers": sorted(self.codes),
            "in_flight": sorted(self.in_flight),
            "governor": self.governor.snapshot(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c = self._code
        return (f"<DispatchHandle {self.name} {c.tier_name}@{c.addr:#x} "
                f"calls={self.calls} epoch={self.epoch}>")


class _TracedDispatchHandle(DispatchHandle):
    """Dispatch handle whose ``address()`` feeds a latency histogram.

    Instances start life as plain :class:`DispatchHandle` objects and are
    switched over via ``__class__`` assignment in
    :meth:`DispatchHandle._enable_dispatch_trace` (see its docstring for
    why a subclass beats an instance-dict shadow).
    """

    def address(self) -> int:
        t0 = time.perf_counter()
        addr = DispatchHandle.address(self)
        self._dispatch_histogram.observe(time.perf_counter() - t0)
        return addr
