"""DBrew: dynamic binary rewriting by partial evaluation (Sec. II).

The rewriter decodes a compiled function, *emulates* every instruction whose
inputs are known (function parameters fixed via ``set_par``, memory regions
declared fixed via ``set_mem``, the guest stack), and *emits* specialized
copies of the rest — materializing known register values with ``mov``
instructions and folding known addresses into absolute memory operands,
exactly the code shapes of the paper's Fig. 8.

Known conditional branches are followed (loops over fixed descriptors fully
unroll); unknown branches fork the meta-state and the loop-closing states
are deduplicated by digest, with a widening fallback that bounds unrolling.
Direct calls are inlined up to a configurable depth.

``Rewriter`` mirrors the C API of Fig. 2/3: ``dbrew_new`` ->
:class:`Rewriter`, ``dbrew_setpar`` -> :meth:`Rewriter.set_par`,
``dbrew_setmem`` -> :meth:`Rewriter.set_mem`, ``dbrew_rewrite`` ->
:meth:`Rewriter.rewrite`.
"""

from repro.dbrew.rewriter import (
    ErrorHandler, Rewriter, RewriteStats, default_error_handler,
    raising_error_handler,
)

__all__ = ["ErrorHandler", "Rewriter", "RewriteStats",
           "default_error_handler", "raising_error_handler"]
