"""The DBrew rewriter: decode -> partially evaluate -> encode (Sec. II).

The rewrite driver walks *trace points* — (guest address, inline return
stack, meta-state) triples.  Known control flow is followed inline (this is
what unrolls loops over fixed descriptors); unknown conditional branches
fork the state and targets are deduplicated by state digest, so loops whose
condition is unknown close after at most one peeled copy.  A widening
fallback bounds unrolling of known-trip loops (``unroll_limit``).

Emitted code runs under a small fixed frame (``sub rsp, 136``) so that
stack slots of *emulated* pushes can be addressed rsp-relative without
clashing with calls; all guest rbp/rsp addressing is rewritten to
rsp-relative absolute slots, which is why DBrew output looks "flat"
(Fig. 8 top).
"""

from __future__ import annotations

import struct
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.cpu.image import Image
from repro.cpu.semantics import execute
from repro.cpu.state import CPUState
from repro.dbrew.iinfo import analyze
from repro.dbrew.metastate import (
    VSP_BASE, MetaState, MetaValue, StackSlot, is_stack_address, stack_offset,
)
from repro.errors import RewriteError
from repro.mem.memory import Memory
from repro.obs.trace import TRACER as _TR
from repro.x86 import isa
from repro.x86.asm import Item, Label, LabelRef, assemble_full
from repro.x86.decoder import decode_one
from repro.x86.instr import Imm, Instruction, Mem, Reg, gp, make, xmm
from repro.x86.registers import RSP, SYSV_INT_ARGS

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.guard.budget import Budget

_FRAME = 136  # keeps rsp 16-aligned at emitted call sites
_MASK64 = (1 << 64) - 1

#: ``handler(rewriter, exc) -> entry address`` invoked when a rewrite hits
#: an internal :class:`RewriteError` (the paper's Sec. II error contract)
ErrorHandler = Callable[["Rewriter", RewriteError], int]


def default_error_handler(rewriter: "Rewriter", exc: RewriteError) -> int:
    """Sec. II's default policy: fall back to the original function."""
    return rewriter.entry


def raising_error_handler(rewriter: "Rewriter", exc: RewriteError) -> int:
    """Propagate instead of falling back (what the guard ladder installs:
    it owns the fallback decision and needs the error to record the rung)."""
    raise exc


@dataclass
class RewriteStats:
    """Counters for one rewrite."""

    decoded: int = 0
    emulated: int = 0
    emitted: int = 0
    materializations: int = 0
    points: int = 0
    widenings: int = 0


@dataclass
class _Point:
    label: str
    addr: int
    rstack: tuple[int, ...]
    state: MetaState


class Rewriter:
    """Mirror of the Fig. 2/3 configuration API."""

    def __init__(self, image: Image, func: str | int, *,
                 cache: "SpecializationCache | None" = None,
                 budget: "Budget | None" = None) -> None:
        self.image = image
        self.entry = image.symbol(func) if isinstance(func, str) else func
        self.func_name = func if isinstance(func, str) else f"f{func:x}"
        self.signature: tuple[str, ...] = ()
        self.ret_class: str | None = "i"
        self._fixed: dict[int, int] = {}  # param index -> raw 64-bit value
        self._mem_regions: list[tuple[int, int]] = []
        self.unroll_limit = 512
        self.inline_depth = 8
        self.code_size_limit = 1 << 16
        self.error_handler: ErrorHandler = default_error_handler
        #: the RewriteError the last rewrite() recovered from (None = clean)
        self.last_error: RewriteError | None = None
        self.stats = RewriteStats()
        self.verbose = False
        self.cache = cache
        self.budget = budget
        #: content digest of the last emitted code (feeds the LLVM
        #: post-processing cache key in the DBrew+LLVM composition)
        self.last_digest: str | None = None
        self._decode_cache: dict[int, Instruction] = {}

    # -- configuration (dbrew_setpar / dbrew_setmem) ---------------------------

    def set_signature(self, params: tuple[str, ...], ret: str | None = "i") -> "Rewriter":
        """Parameter classes ('i'/'f') and return class, required before
        set_par (DBrew's C-ABI contract, Sec. II)."""
        self.signature = params
        self.ret_class = ret
        return self

    def set_par(self, index: int, value: int) -> "Rewriter":
        """Fix an integer/pointer parameter to a constant (dbrew_setpar)."""
        self._fixed[index] = value & _MASK64
        return self

    def set_par_f64(self, index: int, value: float) -> "Rewriter":
        """Fix a double parameter to a constant."""
        self._fixed[index] = int.from_bytes(struct.pack("<d", value), "little")
        return self

    def set_mem(self, start: int, end: int) -> "Rewriter":
        """Declare [start, end) as fixed memory (dbrew_setmem)."""
        self._mem_regions.append((start, end))
        return self

    def set_unroll_limit(self, n: int) -> "Rewriter":
        self.unroll_limit = n
        return self

    def set_inline_depth(self, n: int) -> "Rewriter":
        self.inline_depth = n
        return self

    # -- rewriting -----------------------------------------------------------------

    def _cache_key(self) -> str | None:
        """Content key of this rewrite: entry bytes + full configuration.

        ``set_mem`` regions hash their *contents* — that data is what the
        rewrite bakes into the emitted code, so two rewrites over the same
        region with different data must not collide.
        """
        from repro.cache import keys as cache_keys

        extent = cache_keys.function_extent(self.image, self.entry)
        if extent is None:
            return None
        code = self.image.memory.read(extent[0], extent[1])
        parts = [b"dbrew", code,
                 ",".join(self.signature).encode(),
                 (self.ret_class or "-").encode(),
                 repr(sorted(self._fixed.items())).encode(),
                 b"%d:%d:%d" % (self.unroll_limit, self.inline_depth,
                                self.code_size_limit)]
        for start, end in sorted(self._mem_regions):
            parts.append(b"mem%d:%d:" % (start, end)
                         + self.image.memory.read(start, end - start))
        return cache_keys.digest_bytes(*parts)

    def rewrite(self, *, name: str | None = None) -> int:
        """Rewrite; returns the new entry address.

        On internal failure the default error handler returns the original
        function (Sec. II); a custom ``error_handler(rewriter, exc)`` may
        return an address instead.

        With a :class:`~repro.cache.SpecializationCache` attached, an
        identical rewrite (same entry bytes, same ``set_par``/``set_mem``
        configuration) returns the previously emitted code.
        """
        if not _TR.enabled:
            return self._rewrite_front(name)
        with _TR.span("rewrite", {"func": self.func_name}):
            return self._rewrite_front(name)

    def _rewrite_front(self, name: str | None) -> int:
        rkey = self._cache_key() if self.cache is not None else None
        if rkey is not None:
            assert self.cache is not None
            hit = self.cache.get_rewrite(self.image, rkey)
            if hit is not None:
                addr, cached_name = hit
                new_name = name or f"{self.func_name}.rewritten"
                self.image.symbols[new_name] = addr
                self.image.func_sizes[new_name] = \
                    self.image.func_sizes[cached_name]
                self.last_digest = self.cache.code_digest(self.image, addr)
                return addr
        self.last_error = None
        try:
            addr = self._rewrite(name)
        except RewriteError as exc:
            exc.with_context(stage="rewrite", func=self.func_name,
                             addr=self.entry)
            self.last_error = exc
            return self.error_handler(self, exc)
        if rkey is not None and addr != self.entry:
            assert self.cache is not None
            installed = self.image.symbol_at(addr)
            if installed is not None:
                self.cache.put_rewrite(self.image, rkey, addr, installed)
        if self.cache is not None:
            self.last_digest = self.cache.code_digest(self.image, addr)
        return addr

    def _initial_state(self) -> MetaState:
        for idx in self._fixed:
            if not 0 <= idx < len(self.signature):
                raise RewriteError(
                    f"set_par index {idx} outside the declared signature "
                    f"(set_signature must describe all parameters, Sec. II)"
                )
        st = MetaState()
        st.gpr[RSP] = MetaValue.of(VSP_BASE)
        st.runtime_sp_off = -_FRAME
        self._pinned_params: list[tuple[int, int]] = []
        int_idx = 0
        f_idx = 0
        for i, cls in enumerate(self.signature):
            if cls == "i":
                if i in self._fixed:
                    value = self._fixed[i] & _MASK64
                    if is_stack_address(value):
                        # the fixed value collides with the virtual-stack
                        # sentinel window: tracked as known, every address
                        # fold and materialization would misclassify it as
                        # a rewrite-time stack pointer and emit rsp-relative
                        # garbage.  Pin the true value into the register at
                        # entry and track it as unknown — sound, just not
                        # specialized on.
                        self._pinned_params.append(
                            (SYSV_INT_ARGS[int_idx], value))
                    else:
                        st.gpr[SYSV_INT_ARGS[int_idx]] = MetaValue.of(value)
                int_idx += 1
            else:
                if i in self._fixed:
                    st.xmm[f_idx] = MetaValue.of(self._fixed[i], 128)
                f_idx += 1
        return st

    def _rewrite(self, name: str | None) -> int:
        self.stats = RewriteStats()
        out: list[Item] = []
        new_name = name or f"{self.func_name}.rewritten"
        out.append(Label(new_name))
        out.append(make("sub", gp(RSP), Imm(_FRAME)))

        self._labels: dict[tuple, str] = {}
        self._label_counter = 0
        self._back_visits: Counter = Counter()
        self._fork_backs: Counter = Counter()
        self._total_forks = 0
        self._forks_at_visit: dict[int, int] = {}
        self._last_state_at: dict[int, MetaState] = {}
        worklist: list[_Point] = []

        state0 = self._initial_state()
        for reg_idx, value in self._pinned_params:
            out.append(make("mov", gp(reg_idx), Imm(_signed64(value), 8)))
            self.stats.emitted += 1
        entry_label = self._point_label(self.entry, (), state0, worklist)
        out.append(make("jmp", LabelRef(entry_label)))

        while worklist:
            point = worklist.pop(0)
            self.stats.points += 1
            if self.stats.points > 4096:
                raise RewriteError("too many trace points (state explosion)",
                                   stage="rewrite", addr=point.addr)
            if self.budget is not None:
                self.budget.charge("trace_points", stage="rewrite",
                                   addr=point.addr)
                # trace-point boundaries are the rewriter's cooperative
                # yield points: state is self-contained in the worklist, so
                # a background compile can be throttled here indefinitely
                self.budget.checkpoint("rewrite", addr=point.addr)
            out.append(Label(point.label))
            if _TR.enabled:
                with _TR.span("rewrite.emulate", {"addr": point.addr}):
                    self._process_point(point, out, worklist)
            else:
                self._process_point(point, out, worklist)
            if len(out) * 4 > self.code_size_limit:
                raise RewriteError("generated code exceeds the buffer limit",
                                   stage="rewrite", addr=point.addr)

        from repro.backend.emit import peephole
        span = _TR.start("rewrite.encode", {"items": len(out)}) \
            if _TR.enabled else None
        try:
            out = peephole(out)
            base = self.image.next_code_addr(jit=True)
            code, _placed, _labels = assemble_full(out, base)
            if len(code) > self.code_size_limit:
                raise RewriteError("generated code exceeds the buffer limit")
            addr = self.image.add_function(new_name, code, jit=True)
        finally:
            if span is not None:
                _TR.finish(span)
        return addr

    # -- trace points --------------------------------------------------------------

    def _point_label(self, addr: int, rstack: tuple[int, ...], state: MetaState,
                     worklist: list[_Point]) -> str:
        key = (addr, rstack, state.digest())
        label = self._labels.get(key)
        if label is None:
            self._label_counter += 1
            label = f"P{self._label_counter}"
            self._labels[key] = label
            worklist.append(_Point(label, addr, rstack, state.copy()))
        return label

    def _decode(self, pc: int) -> Instruction:
        ins = self._decode_cache.get(pc)
        if ins is None:
            span = _TR.start("rewrite.decode", {"addr": pc}) \
                if _TR.enabled else None
            try:
                window = self.image.memory.read(pc, min(16, _readable(self.image.memory, pc)))
                try:
                    ins = decode_one(window, 0, pc)
                except Exception as exc:  # decoding gap -> internal error (Sec. II)
                    raise RewriteError(f"cannot decode at {pc:#x}: {exc}",
                                       stage="rewrite", addr=pc,
                                       data=window) from exc
            finally:
                if span is not None:
                    _TR.finish(span)
            self._decode_cache[pc] = ins
            self.stats.decoded += 1
        return ins

    def _process_point(self, point: _Point, out: list[Item],
                       worklist: list[_Point]) -> None:
        pc = point.addr
        rstack = list(point.rstack)
        state = point.state
        budget = self.budget
        for _ in range(200_000):
            if budget is not None:
                budget.charge("emulated", stage="rewrite", addr=pc)
            ins = self._decode(pc)
            cls = isa.control_class(ins.mnemonic)
            if cls == "jmp":
                (t,) = ins.operands
                if not isinstance(t, Imm):
                    raise RewriteError(f"indirect jump at {pc:#x}",
                                       stage="rewrite", addr=pc,
                                       instruction=ins.mnemonic)
                pc = self._follow(t.value, pc, rstack, state, out, worklist)
                if pc is None:
                    return
                continue
            if cls == "jcc":
                nxt = self._jcc(ins, pc, rstack, state, out, worklist)
                if nxt is None:
                    return
                pc = nxt
                continue
            if cls == "call":
                (t,) = ins.operands
                if not isinstance(t, Imm):
                    raise RewriteError(f"indirect call at {pc:#x}",
                                       stage="rewrite", addr=pc,
                                       instruction=ins.mnemonic)
                if len(rstack) < self.inline_depth:
                    # inline: push a sentinel return address, descend
                    sp = state.gpr[RSP]
                    if not sp.known:
                        raise RewriteError("unknown rsp at call")
                    new_sp = (sp.value - 8) & _MASK64
                    state.gpr[RSP] = MetaValue.of(new_sp)
                    state.stack_write(stack_offset(new_sp), 8, MetaValue.of(0))
                    rstack.append(ins.end)
                    pc = t.value
                    continue
                self._emit_call(ins, state, out)
                pc = ins.end
                continue
            if cls == "ret":
                if rstack:
                    ret_to = rstack.pop()
                    sp = state.gpr[RSP]
                    if not sp.known:
                        raise RewriteError("unknown rsp at inlined ret")
                    state.gpr[RSP] = MetaValue.of((sp.value + 8) & _MASK64)
                    pc = ret_to
                    continue
                # the return-value register must hold its value at runtime
                if self.ret_class == "i":
                    self._materialize(("gp", 0), state, out)
                elif self.ret_class == "f":
                    self._materialize(("xmm", 0), state, out)
                out.append(make("add", gp(RSP), Imm(_FRAME)))
                out.append(make("ret"))
                return
            # ordinary instruction
            self._step(ins, state, out)
            pc = ins.end
        raise RewriteError("rewrite trace did not terminate",
                           stage="rewrite", addr=pc)

    def _follow(self, target: int, pc: int, rstack: list[int], state: MetaState,
                out: list[Item], worklist: list[_Point]) -> int | None:
        """Follow a known branch; widen when unrolling stops paying off.

        A loop whose exit condition is *known* unrolls fully (DBrew's core
        specialization).  A loop that emitted a runtime conditional since
        its last visit cannot be skipped at rewrite time, so per-iteration
        specialization only bloats code: the values that changed since the
        last visit are selectively materialized and forgotten, after which
        the state digests converge and the fork dedup closes the loop.  A
        hard per-address budget (``unroll_limit``) backstops everything.
        """
        if target <= pc:
            self._back_visits[target] += 1
            prev_forks = self._forks_at_visit.get(target)
            self._forks_at_visit[target] = self._total_forks
            runtime_loop = prev_forks is not None and self._total_forks > prev_forks
            prev_state = self._last_state_at.get(target)
            if runtime_loop and prev_state is not None:
                if self._widen_diff(prev_state, state, out):
                    self.stats.widenings += 1
            self._last_state_at[target] = state.copy()
            if self._back_visits[target] > self.unroll_limit:
                self.stats.widenings += 1
                self._widen(state, out)
                label = self._point_label(target, tuple(rstack), state, worklist)
                out.append(make("jmp", LabelRef(label)))
                return None
        return target

    def _widen_diff(self, prev: MetaState, state: MetaState,
                    out: list[Item]) -> bool:
        """Forget values that are *evolving* across loop iterations.

        Only a location that was known with a different value at the last
        visit counts as evolving (e.g. a known induction variable); a
        location that merely became known converges by itself at the next
        fork's digest dedup, and forgetting it would de-specialize values
        like the fixed stencil descriptor pointer.
        """
        changed = False
        for idx in range(16):
            if idx != RSP:
                p, c = prev.gpr[idx], state.gpr[idx]
                if p.known and c.known and p.value != c.value \
                        and not is_stack_address(c.value):
                    self._materialize(("gp", idx), state, out)
                    state.gpr[idx] = MetaValue.unknown()
                    changed = True
            p, c = prev.xmm[idx], state.xmm[idx]
            if p.known and c.known and p.value != c.value:
                self._materialize(("xmm", idx), state, out)
                state.xmm[idx] = MetaValue.unknown()
                changed = True
        for off in sorted(set(prev.stack) & set(state.stack)):
            pv = prev.stack[off].value
            cv = state.stack[off].value
            if pv.known and cv.known and pv.value != cv.value \
                    and not is_stack_address(cv.value):
                self._flush_slot(off, state, out)
                state.stack[off] = StackSlot(MetaValue.unknown(), flushed=True)
                changed = True
        for f in "oszapc":
            p, c = prev.flags[f], state.flags[f]
            if p.known and c.known and p.value != c.value:
                state.flags[f] = MetaValue.unknown()
                changed = True
        return changed

    def _jcc(self, ins: Instruction, pc: int, rstack: list[int], state: MetaState,
             out: list[Item], worklist: list[_Point]) -> int | None:
        cc = isa.cc_of(ins.mnemonic)
        assert cc is not None
        needed = isa.CC_FLAGS_READ[cc]
        if all(state.flags[f].known for f in needed):
            taken = self._eval_cc(cc, state)
            (t,) = ins.operands
            assert isinstance(t, Imm)
            target = t.value if taken else ins.end
            self.stats.emulated += 1
            return self._follow(target, pc, rstack, state, out, worklist)
        # unknown condition: fork.  A backward fork target is a do-while
        # style loop re-entry; apply the same runtime-loop widening rule as
        # _follow so evolving known values cannot explode the point count.
        (t,) = ins.operands
        assert isinstance(t, Imm)
        for target in (t.value,):
            if target <= pc:
                prev_forks = self._forks_at_visit.get(target)
                self._forks_at_visit[target] = self._total_forks + 1
                if prev_forks is not None and self._total_forks + 1 > prev_forks:
                    self.stats.widenings += 1
                    self._widen(state, out)
        ltrue = self._point_label(t.value, tuple(rstack), state, worklist)
        lfalse = self._point_label(ins.end, tuple(rstack), state, worklist)
        out.append(Instruction(ins.mnemonic, (LabelRef(ltrue),)))  # type: ignore[arg-type]
        out.append(make("jmp", LabelRef(lfalse)))
        self.stats.emitted += 2
        self._total_forks += 1
        return None

    def _eval_cc(self, cc: str, state: MetaState) -> bool:
        f = {k: bool(v.value) for k, v in state.flags.items() if v.known}
        table = {
            "o": lambda: f["o"], "no": lambda: not f["o"],
            "b": lambda: f["c"], "ae": lambda: not f["c"],
            "e": lambda: f["z"], "ne": lambda: not f["z"],
            "be": lambda: f["c"] or f["z"], "a": lambda: not (f["c"] or f["z"]),
            "s": lambda: f["s"], "ns": lambda: not f["s"],
            "p": lambda: f["p"], "np": lambda: not f["p"],
            "l": lambda: f["s"] != f["o"], "ge": lambda: f["s"] == f["o"],
            "le": lambda: f["z"] or f["s"] != f["o"],
            "g": lambda: not f["z"] and f["s"] == f["o"],
        }
        return table[cc]()

    # -- single instruction: emulate or emit --------------------------------------

    def _step(self, ins: Instruction, state: MetaState, out: list[Item]) -> None:
        m = ins.mnemonic
        if m == "nop":
            return
        if m == "push":
            self._push(ins, state, out)
            return
        if m == "pop":
            self._pop(ins, state, out)
            return
        if m == "leave":
            self._leave(state, out)
            return
        # zero idioms make the destination known regardless of its old value
        if m in ("xor", "sub", "pxor", "xorpd", "xorps") and len(ins.operands) == 2:
            a, b = ins.operands
            if isinstance(a, Reg) and isinstance(b, Reg) and a.kind == b.kind \
                    and a.index == b.index and a.high8 == b.high8:
                if a.kind == "gp" and not state.gpr[a.index].known:
                    state.gpr[a.index] = MetaValue.of(0)
                elif a.kind == "xmm" and not state.xmm[a.index].known:
                    state.xmm[a.index] = MetaValue.of(0, 128)
        # scalar reg-reg moves: treat the (never-read) upper lane as zeroed,
        # which keeps compiler-generated scalar chains fully known
        if m == "movsd" and all(isinstance(o, Reg) and o.kind == "xmm"
                                for o in ins.operands):
            dst, srcr = ins.operands
            assert isinstance(dst, Reg) and isinstance(srcr, Reg)
            srcv = state.xmm[srcr.index]
            if srcv.known:
                state.xmm[dst.index] = MetaValue.of(srcv.value & _MASK64, 128)
                self.stats.emulated += 1
                return
            # unknown source: emit the move; the stale upper lane of dst is
            # never read by compiler-generated scalar code, so the known dst
            # value needs no materialization
            out.append(Instruction(m, ins.operands))
            self.stats.emitted += 1
            state.xmm[dst.index] = MetaValue.unknown()
            return
        if m.startswith("cmov") and isa.cc_of(m) is not None:
            cc = isa.cc_of(m)
            assert cc is not None
            needed = isa.CC_FLAGS_READ[cc]
            if all(state.flags[f].known for f in needed):
                if self._eval_cc(cc, state):
                    moved = Instruction("mov", ins.operands, addr=ins.addr)
                    self._step(moved, state, out)
                else:
                    self.stats.emulated += 1
                return
            self._emit(ins, state, out)
            return
        if self._try_emulate(ins, state):
            return
        self._emit(ins, state, out)

    # -- emulation -------------------------------------------------------------------

    def _reg_meta(self, key: tuple[str, int], state: MetaState) -> MetaValue:
        kind, idx = key
        return state.gpr[idx] if kind == "gp" else state.xmm[idx]

    def _mem_effective(self, mem: Mem, state: MetaState) -> int | None:
        """Known effective address, or None."""
        if mem.riprel or mem.is_absolute:
            return mem.disp & _MASK64
        addr = mem.disp
        if mem.base is not None:
            mv = state.gpr[mem.base.index]
            if not mv.known:
                return None
            addr += mv.value
        if mem.index is not None:
            mv = state.gpr[mem.index.index]
            if not mv.known:
                return None
            addr += mv.value * mem.scale
        return addr & _MASK64

    def _read_fixed_memory(self, addr: int, size: int, state: MetaState) -> bytes | None:
        """Bytes at a known address if they are rewrite-time constant."""
        if is_stack_address(addr):
            off = stack_offset(addr)
            mv = state.stack_read(off, size)
            if not mv.known:
                return None
            return mv.value.to_bytes(size, "little")
        for start, end in self._mem_regions:
            if start <= addr and addr + size <= end:
                return self.image.memory.read(addr, size)
        return None

    def _try_emulate(self, ins: Instruction, state: MetaState) -> bool:
        info = analyze(ins)
        for key in info.reads:
            if not self._reg_meta(key, state).known:
                return False
        for f in info.reads_flags:
            if not state.flags[f].known:
                return False
        memop = next((o for o in ins.operands if isinstance(o, Mem)), None)
        ea: int | None = None
        mem_bytes: bytes | None = None
        if memop is not None:
            ea = self._mem_effective(memop, state)
            if ea is None:
                return False
            if info.mem_read:
                mem_bytes = self._read_fixed_memory(ea, memop.size, state)
                if mem_bytes is None:
                    return False
            if info.mem_write and not is_stack_address(ea):
                return False  # runtime-visible store must be emitted

        # set up a scratch CPU and run the real semantics
        cpu = CPUState()
        for kind, idx in info.reads:
            mv = self._reg_meta((kind, idx), state)
            if kind == "gp":
                cpu.gpr[idx] = mv.value
            else:
                cpu.xmm[idx] = mv.value
        # address registers must also be loaded for effective-address calc
        if memop is not None:
            for reg in (memop.base, memop.index):
                if reg is not None:
                    mv = state.gpr[reg.index]
                    if not mv.known:
                        return False
                    cpu.gpr[reg.index] = mv.value
        for f, mv in state.flags.items():
            if mv.known:
                cpu.set_flag(f, bool(mv.value))

        tmp_mem = Memory()
        if memop is not None and ea is not None:
            page = ea & ~0xFFF
            tmp_mem.map(page, 0x2000)
            if mem_bytes is not None:
                tmp_mem.write(ea, mem_bytes)
        try:
            execute(ins, cpu, tmp_mem)
        except Exception as exc:
            raise RewriteError(f"emulation failed at {ins.addr:#x}: {exc}",
                               stage="rewrite", addr=ins.addr,
                               instruction=ins.mnemonic) from exc

        for kind, idx in analyze(ins).writes:
            if kind == "gp":
                if idx == RSP:
                    state.gpr[RSP] = MetaValue.of(cpu.gpr[RSP])
                else:
                    state.gpr[idx] = MetaValue.of(cpu.gpr[idx])
            else:
                state.xmm[idx] = MetaValue.of(cpu.xmm[idx], 128)
        for f in isa.flags_written(ins.mnemonic):
            state.flags[f] = MetaValue.of(int(cpu.flag(f)), 1)
        if memop is not None and info.mem_write and ea is not None:
            data = tmp_mem.read(ea, memop.size)
            state.stack_write(stack_offset(ea), memop.size,
                             MetaValue.of(int.from_bytes(data, "little")))
        self.stats.emulated += 1
        return True

    # -- stack ops ----------------------------------------------------------------

    def _sp_known(self, state: MetaState) -> int:
        sp = state.gpr[RSP]
        if not sp.known or not is_stack_address(sp.value):
            raise RewriteError("rsp escaped tracking")
        return sp.value

    def _push(self, ins: Instruction, state: MetaState, out: list[Item]) -> None:
        (src,) = ins.operands
        sp = self._sp_known(state)
        new_sp = (sp - 8) & _MASK64
        state.gpr[RSP] = MetaValue.of(new_sp)
        off = stack_offset(new_sp)
        if isinstance(src, Imm):
            state.stack_write(off, 8, MetaValue.of(src.value))
            self.stats.emulated += 1
            return
        if isinstance(src, Reg) and src.kind == "gp":
            mv = state.gpr[src.index]
            if mv.known:
                state.stack_write(off, 8, MetaValue.of(mv.value))
                self.stats.emulated += 1
                return
            # unknown value: store it at the slot's home, rsp-relative
            out.append(make("mov", self._slot_mem(off, 8, state), gp(src.index)))
            self.stats.emitted += 1
            state.stack[off & ~7] = StackSlot(MetaValue.unknown(), flushed=True)
            return
        raise RewriteError(f"unsupported push operand at {ins.addr:#x}")

    def _pop(self, ins: Instruction, state: MetaState, out: list[Item]) -> None:
        (dst,) = ins.operands
        sp = self._sp_known(state)
        off = stack_offset(sp)
        mv = state.stack_read(off, 8)
        state.gpr[RSP] = MetaValue.of((sp + 8) & _MASK64)
        if mv.known:
            if isinstance(dst, Reg) and dst.kind == "gp":
                state.gpr[dst.index] = mv
                self.stats.emulated += 1
                return
            raise RewriteError("unsupported pop destination")
        if isinstance(dst, Reg) and dst.kind == "gp":
            out.append(make("mov", gp(dst.index), self._slot_mem(off, 8, state)))
            self.stats.emitted += 1
            state.gpr[dst.index] = MetaValue.unknown()
            return
        raise RewriteError("unsupported pop destination")

    def _leave(self, state: MetaState, out: list[Item]) -> None:
        # rsp = rbp; pop rbp
        rbp = state.gpr[5]
        if not rbp.known:
            raise RewriteError("leave with unknown rbp")
        state.gpr[RSP] = rbp
        self._pop(make("pop", gp(5)), state, out)

    def _slot_mem(self, off: int, size: int, state: MetaState) -> Mem:
        """rsp-relative operand for an absolute stack slot offset."""
        return Mem(size, base=gp(RSP), disp=off - state.runtime_sp_off)

    # -- emission -------------------------------------------------------------------

    def _pool_f64_bits(self, bits: int) -> int:
        data = bits.to_bytes(8, "little")
        return self.image.alloc_rodata(data, align=8)

    def _pool_v128(self, bits: int) -> int:
        data = bits.to_bytes(16, "little")
        return self.image.alloc_rodata(data, align=16)

    def _materialize(self, key: tuple[str, int], state: MetaState,
                     out: list[Item]) -> None:
        kind, idx = key
        if kind == "gp" and idx == RSP:
            return  # rsp is tracked symbolically; the runtime value is live
        mv = self._reg_meta(key, state)
        if not mv.known or mv.materialized:
            return
        self.stats.materializations += 1
        if kind == "gp":
            if is_stack_address(mv.value):
                off = stack_offset(mv.value)
                out.append(make("lea", gp(idx),
                                Mem(8, base=gp(RSP), disp=off - state.runtime_sp_off)))
            else:
                out.append(make("mov", gp(idx), Imm(_signed64(mv.value), 8)))
            state.gpr[idx] = mv.mat()
        else:
            if mv.value >> 64 == 0:
                addr = self._pool_f64_bits(mv.value)
                out.append(make("movsd", xmm(idx), Mem(8, disp=addr)))
            else:
                addr = self._pool_v128(mv.value)
                out.append(make("movupd", xmm(idx), Mem(16, disp=addr)))
            state.xmm[idx] = mv.mat()
        self.stats.emitted += 1

    def _flush_slot(self, off: int, state: MetaState, out: list[Item]) -> None:
        base = off & ~7
        slot = state.stack.get(base)
        if slot is None or not slot.value.known or slot.flushed:
            return
        value = slot.value.value
        if is_stack_address(value):
            # a saved stack pointer (e.g. a spilled rbp): the runtime value
            # must be rsp-relative, not the rewrite-time sentinel.  Borrow
            # rax around the lea; the push shifts rsp-relative offsets by 8.
            out.append(make("push", gp(0)))
            out.append(make("lea", gp(0), Mem(
                8, base=gp(RSP),
                disp=stack_offset(value) - state.runtime_sp_off + 8,
            )))
            out.append(make("mov", Mem(
                8, base=gp(RSP), disp=base - state.runtime_sp_off + 8,
            ), gp(0)))
            out.append(make("pop", gp(0)))
            self.stats.emitted += 4
        elif -(2**31) <= _signed64(value) < 2**31:
            # single qword store keeps the slot 8-byte uniform (matters for
            # the IR lifter's stack promotion of our own output)
            out.append(make("mov", self._slot_mem(base, 8, state),
                            Imm(_signed64(value), 4)))
            self.stats.emitted += 1
        else:
            out.append(make("push", gp(0)))
            out.append(make("mov", gp(0), Imm(_signed64(value), 8)))
            out.append(make("mov", Mem(
                8, base=gp(RSP), disp=base - state.runtime_sp_off + 8,
            ), gp(0)))
            out.append(make("pop", gp(0)))
            self.stats.emitted += 4
        state.stack[base] = StackSlot(slot.value, flushed=True)

    def _rewrite_mem(self, mem: Mem, state: MetaState, out: list[Item],
                     *, for_read: bool) -> Mem:
        """Fold known address components into the emitted operand."""
        ea = self._mem_effective(mem, state)
        if ea is not None:
            if is_stack_address(ea):
                off = stack_offset(ea)
                if for_read:
                    # flush every 8-byte slot the access overlaps
                    slot = off & ~7
                    while slot < off + mem.size:
                        self._flush_slot(slot, state, out)
                        slot += 8
                return self._slot_mem(off, mem.size, state)
            if -(2**31) <= _signed64(ea) < 2**31:
                return Mem(mem.size, disp=ea & 0xFFFFFFFF)
            raise RewriteError(f"absolute address {ea:#x} out of range")
        # partially known: fold what we can
        base, index, scale, disp = mem.base, mem.index, mem.scale, mem.disp
        if index is not None:
            mv = state.gpr[index.index]
            if mv.known and not is_stack_address(mv.value):
                disp += _signed64(mv.value) * scale
                index, scale = None, 1
        if base is not None:
            mv = state.gpr[base.index]
            if mv.known:
                if is_stack_address(mv.value):
                    # stack base + unknown index: keep rsp as base
                    off = stack_offset(mv.value)
                    return Mem(mem.size, base=gp(RSP), index=index, scale=scale,
                               disp=disp + off - state.runtime_sp_off)
                disp += _signed64(mv.value)
                base = None
        if base is None and index is None:
            raise RewriteError("address folding lost all registers")
        if not -(2**31) <= disp < 2**31:
            raise RewriteError("folded displacement out of range")
        return Mem(mem.size, base=base, index=index, scale=scale, disp=disp)

    def _emit(self, ins: Instruction, state: MetaState, out: list[Item]) -> None:
        info = analyze(ins)
        new_ops = []
        for i, op in enumerate(ins.operands):
            if isinstance(op, Mem):
                is_read = info.mem_read or i != 0
                new_ops.append(self._rewrite_mem(op, state, out, for_read=is_read))
            else:
                new_ops.append(op)
        # materialize registers the emitted form still reads
        needed: set[tuple[str, int]] = set()
        for i, op in enumerate(new_ops):
            if isinstance(op, Reg):
                if i == 0 and (op.kind, op.index) in info.writes and \
                        (op.kind, op.index) not in info.reads:
                    continue  # pure destination
                needed.add((op.kind, op.index))
            elif isinstance(op, Mem):
                if op.base is not None and op.base.index != RSP:
                    needed.add(("gp", op.base.index))
                if op.index is not None:
                    needed.add(("gp", op.index.index))
        for key in sorted(needed):
            self._materialize(key, state, out)
        # implicit reads (shift counts in cl, idiv in rax/rdx) — registers
        # read by the instruction without appearing in any operand
        explicit: set[tuple[str, int]] = set()
        for op in ins.operands:
            if isinstance(op, Reg):
                explicit.add((op.kind, op.index))
            elif isinstance(op, Mem):
                if op.base is not None:
                    explicit.add(("gp", op.base.index))
                if op.index is not None:
                    explicit.add(("gp", op.index.index))
        for key in sorted(info.reads - explicit):
            kind, idx = key
            if kind == "gp" and idx == RSP:
                continue
            self._materialize(key, state, out)

        out.append(Instruction(ins.mnemonic, tuple(new_ops)))
        self.stats.emitted += 1

        # effects: everything written becomes runtime-only
        for kind, idx in info.writes:
            if kind == "gp":
                if idx == RSP:
                    continue  # rsp tracked symbolically
                state.gpr[idx] = MetaValue.unknown()
            else:
                state.xmm[idx] = MetaValue.unknown()
        for f in isa.flags_written(ins.mnemonic):
            state.flags[f] = MetaValue.unknown()
        if info.mem_write:
            memop = next((o for o in ins.operands if isinstance(o, Mem)), None)
            if memop is not None:
                ea = self._mem_effective(memop, state)
                if ea is not None and is_stack_address(ea):
                    state.stack_write(stack_offset(ea), memop.size, MetaValue.unknown())
                    base = stack_offset(ea) & ~7
                    if base in state.stack:
                        state.stack[base] = StackSlot(MetaValue.unknown(), flushed=True)

    def _emit_call(self, ins: Instruction, state: MetaState, out: list[Item]) -> None:
        """Emit a call beyond the inline depth; ABI registers must be live."""
        for idx in SYSV_INT_ARGS:
            self._materialize(("gp", idx), state, out)
        for idx in range(8):
            self._materialize(("xmm", idx), state, out)
        # flush the whole known stack: the callee may observe it via pointers
        for off in sorted(state.stack):
            self._flush_slot(off, state, out)
        out.append(Instruction("call", ins.operands))
        self.stats.emitted += 1
        from repro.x86.registers import SYSV_CALLER_SAVED
        for idx in SYSV_CALLER_SAVED:
            state.gpr[idx] = MetaValue.unknown()
        for i in range(16):
            state.xmm[i] = MetaValue.unknown()
        for f in "oszapc":
            state.flags[f] = MetaValue.unknown()

    def _widen(self, state: MetaState, out: list[Item]) -> None:
        """Materialize and forget known values (bounds loop unrolling).

        Stack-pointer-valued registers and slots (rbp, saved frame links)
        are rewrite-time constants — they cannot vary across iterations, so
        they stay known; forgetting them would force every stack access in
        the remaining code through runtime pointers.
        """
        for idx in range(16):
            if idx != RSP:
                mv = state.gpr[idx]
                if mv.known and is_stack_address(mv.value):
                    continue
                self._materialize(("gp", idx), state, out)
                state.gpr[idx] = MetaValue.unknown()
            mvx = state.xmm[idx]
            self._materialize(("xmm", idx), state, out)
            state.xmm[idx] = MetaValue.unknown()
        for off in sorted(state.stack):
            slot = state.stack[off]
            if slot.value.known and is_stack_address(slot.value.value):
                continue  # frame link: loop-invariant, keep known
            self._flush_slot(off, state, out)
            state.stack[off] = StackSlot(MetaValue.unknown(), flushed=True)
        for f in "oszapc":
            state.flags[f] = MetaValue.unknown()


def _signed64(v: int) -> int:
    return (v & (2**63 - 1)) - (v & 2**63)


def _readable(memory: Memory, addr: int) -> int:
    for start, size in memory.regions():
        if start <= addr < start + size:
            return start + size - addr
    raise RewriteError(f"code address {addr:#x} unmapped")
