"""DBrew meta-state: the known/unknown lattice over guest state.

Values are tracked per 64-bit GPR, per 128-bit SSE register, per flag, and
per 8-byte-aligned guest stack slot.  Stack pointers are represented as
ordinary integers offset from a sentinel base (``VSP_BASE``), so pointer
arithmetic can be emulated with the regular CPU semantics and re-classified
afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: sentinel base address of the virtual rewrite-time stack
VSP_BASE = 1 << 62
#: half-size of the recognized stack window around VSP_BASE
VSP_WINDOW = 1 << 20


def is_stack_address(value: int) -> bool:
    """True when an integer value denotes a rewrite-time stack pointer."""
    return abs(value - VSP_BASE) < VSP_WINDOW


def stack_offset(value: int) -> int:
    """Offset of a stack-pointer value relative to the entry rsp."""
    return value - VSP_BASE


@dataclass(frozen=True)
class MetaValue:
    """Lattice value: known 64/128-bit integer or unknown (= runtime)."""

    known: bool
    value: int = 0
    #: for known register values: already materialized in the emitted code
    materialized: bool = False

    @staticmethod
    def unknown() -> "MetaValue":
        return _UNKNOWN

    @staticmethod
    def of(value: int, bits: int = 64) -> "MetaValue":
        return MetaValue(True, value & ((1 << bits) - 1))

    def mat(self) -> "MetaValue":
        return replace(self, materialized=True)


_UNKNOWN = MetaValue(False)


@dataclass
class StackSlot:
    """One 8-byte stack slot: known value and whether the emitted code's
    runtime stack already holds it (flushed)."""

    value: MetaValue
    flushed: bool = False


@dataclass
class MetaState:
    """Complete rewrite-time machine state."""

    gpr: list[MetaValue] = field(default_factory=lambda: [_UNKNOWN] * 16)
    xmm: list[MetaValue] = field(default_factory=lambda: [_UNKNOWN] * 16)
    flags: dict[str, MetaValue] = field(
        default_factory=lambda: {f: _UNKNOWN for f in "oszapc"}
    )
    #: stack contents keyed by byte offset from entry rsp (8-byte slots)
    stack: dict[int, StackSlot] = field(default_factory=dict)
    #: where the *runtime* rsp sits relative to entry rsp (emitted pushes)
    runtime_sp_off: int = 0

    def copy(self) -> "MetaState":
        st = MetaState(
            gpr=list(self.gpr),
            xmm=list(self.xmm),
            flags=dict(self.flags),
            stack={k: StackSlot(s.value, s.flushed) for k, s in self.stack.items()},
            runtime_sp_off=self.runtime_sp_off,
        )
        return st

    def digest(self) -> tuple:
        """Hashable summary used to deduplicate join points.

        Materialization/flush bits are *included*: two states that agree on
        values but differ in what the emitted code has realized cannot share
        code.
        """
        return (
            tuple(self.gpr),
            tuple(self.xmm),
            tuple(sorted(self.flags.items())),
            tuple(sorted((k, s.value, s.flushed) for k, s in self.stack.items())),
            self.runtime_sp_off,
        )

    # -- stack helpers ----------------------------------------------------------

    def stack_read(self, offset: int, size: int) -> MetaValue:
        """Read ``size`` bytes at stack ``offset``; unknown unless the
        containing aligned slots are known."""
        if size == 16:
            lo = self.stack_read(offset, 8)
            hi = self.stack_read(offset + 8, 8)
            if lo.known and hi.known:
                return MetaValue(True, lo.value | (hi.value << 64))
            return MetaValue.unknown()
        base = offset & ~7
        if base == offset and size == 8:
            slot = self.stack.get(offset)
            return slot.value if slot is not None else _UNKNOWN
        # sub-slot access: assemble from the aligned slot when known
        slot = self.stack.get(base)
        if slot is None or not slot.value.known:
            return _UNKNOWN
        if offset + size > base + 8:
            hi = self.stack.get(base + 8)
            if hi is None or not hi.value.known:
                return _UNKNOWN
            combined = slot.value.value | (hi.value.value << 64)
        else:
            combined = slot.value.value
        shift = (offset - base) * 8
        mask = (1 << (size * 8)) - 1
        return MetaValue.of((combined >> shift) & mask)

    def stack_write(self, offset: int, size: int, value: MetaValue) -> None:
        if size == 16:
            if value.known:
                self.stack_write(offset, 8, MetaValue.of(value.value))
                self.stack_write(offset + 8, 8, MetaValue.of(value.value >> 64))
            else:
                self.stack_write(offset, 8, value)
                self.stack_write(offset + 8, 8, value)
            return
        base = offset & ~7
        if base == offset and size == 8:
            self.stack[offset] = StackSlot(value)
            return
        if not value.known:
            # partial unknown write poisons the containing slot(s)
            self.stack[base] = StackSlot(_UNKNOWN)
            if offset + size > base + 8:
                self.stack[base + 8] = StackSlot(_UNKNOWN)
            return
        slot = self.stack.get(base)
        if slot is None or not slot.value.known:
            self.stack[base] = StackSlot(_UNKNOWN)
            return  # merging into unknown stays unknown
        shift = (offset - base) * 8
        mask = ((1 << (size * 8)) - 1) << shift
        merged = (slot.value.value & ~mask) | ((value.value << shift) & mask)
        self.stack[base] = StackSlot(MetaValue.of(merged))
