"""Per-instruction dataflow facts used by DBrew's partial evaluator.

``analyze(ins)`` reports which registers an instruction reads and writes
(explicit operands + implicit ones), whether the first operand is
read-modify-write, and the flag sets involved.  This drives the decision
"emulate (all inputs known) vs emit (something unknown)".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.x86 import isa
from repro.x86.instr import Imm, Instruction, Mem, Reg

RegKey = tuple[str, int]  # (kind, index)

#: mnemonics whose first operand is written without being read
_WRITE_ONLY_DST = frozenset({
    "mov", "movzx", "movsx", "movsxd", "lea", "movapd", "movaps", "movupd",
    "movups", "movq", "movd", "pop",
})
#: SSE ops that merge into the low lane (read the old dst for upper bits)
_MERGE_DST = frozenset({
    "movsd", "movss", "addsd", "subsd", "mulsd", "divsd", "minsd", "maxsd",
    "sqrtsd", "cvtsi2sd", "cvtsi2ss", "movlpd", "movhpd",
})


@dataclass
class InstrInfo:
    reads: set[RegKey] = field(default_factory=set)
    writes: set[RegKey] = field(default_factory=set)
    mem_read: bool = False
    mem_write: bool = False
    reads_flags: str = ""
    writes_flags: str = ""


def _key(reg: Reg) -> RegKey:
    return (reg.kind, reg.index)


def analyze(ins: Instruction) -> InstrInfo:
    """Dataflow facts for one decoded instruction."""
    info = InstrInfo()
    m = ins.mnemonic
    info.writes_flags = isa.flags_written(m)
    info.reads_flags = isa.flags_read(m)
    ops = ins.operands

    # implicit registers
    if m in ("cqo", "cdq"):
        info.reads.add(("gp", 0))
        info.writes.add(("gp", 2))
        return info
    if m in ("idiv", "div"):
        info.reads.update({("gp", 0), ("gp", 2)})
        info.writes.update({("gp", 0), ("gp", 2)})
    if m in ("mul",) or (m == "imul" and len(ops) == 1):
        info.reads.add(("gp", 0))
        info.writes.update({("gp", 0), ("gp", 2)})
    if m in ("push", "call"):
        info.reads.add(("gp", 4))
        info.writes.add(("gp", 4))
        info.mem_write = True
    if m in ("pop", "ret", "leave"):
        info.reads.add(("gp", 4))
        info.writes.add(("gp", 4))
        info.mem_read = True
    if m == "leave":
        info.reads.add(("gp", 5))
        info.writes.add(("gp", 5))

    for i, op in enumerate(ops):
        if isinstance(op, Imm):
            continue
        if isinstance(op, Mem):
            # address registers are always read
            if op.base is not None:
                info.reads.add(_key(op.base))
            if op.index is not None:
                info.reads.add(_key(op.index))
            if m == "lea":
                continue  # address computation only, no memory access
            if i == 0 and m not in ("cmp", "test", "ucomisd", "ucomiss",
                                    "comisd", "comiss"):
                # destination memory operand
                if m in _WRITE_ONLY_DST or m in _MERGE_DST or m.startswith("set"):
                    info.mem_write = True
                else:
                    info.mem_read = True
                    info.mem_write = True
            else:
                info.mem_read = True
            continue
        assert isinstance(op, Reg)
        if i == 0:
            if m in ("cmp", "test", "ucomisd", "ucomiss", "comisd", "comiss"):
                info.reads.add(_key(op))
            elif m in _WRITE_ONLY_DST or m.startswith("set"):
                info.writes.add(_key(op))
            elif m in ("movsd", "movss") and isinstance(ops[1], Mem):
                info.writes.add(_key(op))  # load form zeroes the upper lane
            elif m in _MERGE_DST:
                info.reads.add(_key(op))
                info.writes.add(_key(op))
            elif m.startswith("cmov"):
                info.reads.add(_key(op))
                info.writes.add(_key(op))
            elif m == "imul" and len(ops) == 3:
                info.writes.add(_key(op))
            else:  # RMW ALU / SSE packed
                info.reads.add(_key(op))
                info.writes.add(_key(op))
        else:
            info.reads.add(_key(op))

    # shifts by cl read rcx even though the operand is cl (size 1 covers it)
    return info
