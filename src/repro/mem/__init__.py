"""Simulated flat memory and C-layout helpers."""

from repro.mem.memory import Memory
from repro.mem.layout import StructLayout, align_up

__all__ = ["Memory", "StructLayout", "align_up"]
