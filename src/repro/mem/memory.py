"""Byte-addressed simulated memory.

A :class:`Memory` is a set of mapped regions in a 64-bit address space.
All scalar accessors are little-endian, matching x86-64.  Accesses that
touch unmapped space raise :class:`~repro.errors.MemoryAccessError` — this
is the simulator's segfault, and tests rely on it to catch miscompiled
address arithmetic early.

Regions are kept as (start, bytearray) pairs sorted by start; kernels touch
a handful of regions (code, rodata, globals, stack, matrices), so a linear
scan over a tiny list with a one-entry cache is faster in CPython than a
page-table dict.
"""

from __future__ import annotations

import struct

from repro.errors import MemoryAccessError

_F64 = struct.Struct("<d")
_F32 = struct.Struct("<f")


class Memory:
    """Sparse 64-bit byte-addressable memory."""

    def __init__(self) -> None:
        self._regions: list[tuple[int, bytearray]] = []
        self._hit: tuple[int, bytearray] | None = None

    # -- mapping ----------------------------------------------------------

    def map(self, start: int, size: int, data: bytes | None = None) -> None:
        """Map ``size`` zeroed bytes at ``start`` (optionally initialized)."""
        if size <= 0:
            raise ValueError("mapping size must be positive")
        end = start + size
        for rs, buf in self._regions:
            if start < rs + len(buf) and rs < end:
                raise MemoryAccessError(
                    f"mapping [{start:#x},{end:#x}) overlaps [{rs:#x},{rs + len(buf):#x})"
                )
        buf = bytearray(size)
        if data is not None:
            if len(data) > size:
                raise ValueError("initializer larger than mapping")
            buf[: len(data)] = data
        self._regions.append((start, buf))
        self._regions.sort(key=lambda r: r[0])
        self._hit = None

    def is_mapped(self, addr: int, size: int = 1) -> bool:
        """True when [addr, addr+size) lies inside one mapped region."""
        try:
            self._find(addr, size)
        except MemoryAccessError:
            return False
        return True

    def regions(self) -> list[tuple[int, int]]:
        """Mapped (start, size) pairs, sorted."""
        return [(s, len(b)) for s, b in self._regions]

    def snapshot(self) -> list[tuple[int, bytes]]:
        """Copy of every region's contents (for differential replay)."""
        return [(s, bytes(b)) for s, b in self._regions]

    def restore(self, snap: list[tuple[int, bytes]]) -> None:
        """Write back a snapshot taken from this memory (same mapping).

        Regions mapped *after* the snapshot keep their current contents;
        regions present in the snapshot must still exist unchanged.
        """
        by_start = {s: b for s, b in self._regions}
        for start, data in snap:
            buf = by_start.get(start)
            if buf is None or len(buf) != len(data):
                raise MemoryAccessError(
                    f"snapshot region [{start:#x},+{len(data):#x}) no longer "
                    "matches the mapping"
                )
            buf[:] = data

    def _find(self, addr: int, size: int) -> tuple[int, bytearray]:
        hit = self._hit
        if hit is not None:
            rs, buf = hit
            if rs <= addr and addr + size <= rs + len(buf):
                return hit
        for rs, buf in self._regions:
            if rs <= addr and addr + size <= rs + len(buf):
                self._hit = (rs, buf)
                return rs, buf
        raise MemoryAccessError(f"unmapped access at {addr:#x} size {size}")

    # -- raw bytes ----------------------------------------------------------

    def read(self, addr: int, size: int) -> bytes:
        rs, buf = self._find(addr, size)
        off = addr - rs
        return bytes(buf[off : off + size])

    def write(self, addr: int, data: bytes) -> None:
        rs, buf = self._find(addr, len(data))
        off = addr - rs
        buf[off : off + len(data)] = data

    # -- integer accessors (unsigned reads; write masks) ---------------------

    def read_uint(self, addr: int, size: int) -> int:
        return int.from_bytes(self.read(addr, size), "little")

    def read_int(self, addr: int, size: int) -> int:
        return int.from_bytes(self.read(addr, size), "little", signed=True)

    def write_uint(self, addr: int, value: int, size: int) -> None:
        mask = (1 << (size * 8)) - 1
        self.write(addr, int(value & mask).to_bytes(size, "little"))

    def read_u8(self, addr: int) -> int:
        return self.read_uint(addr, 1)

    def read_u16(self, addr: int) -> int:
        return self.read_uint(addr, 2)

    def read_u32(self, addr: int) -> int:
        return self.read_uint(addr, 4)

    def read_u64(self, addr: int) -> int:
        return self.read_uint(addr, 8)

    def read_i32(self, addr: int) -> int:
        return self.read_int(addr, 4)

    def read_i64(self, addr: int) -> int:
        return self.read_int(addr, 8)

    def write_u8(self, addr: int, v: int) -> None:
        self.write_uint(addr, v, 1)

    def write_u16(self, addr: int, v: int) -> None:
        self.write_uint(addr, v, 2)

    def write_u32(self, addr: int, v: int) -> None:
        self.write_uint(addr, v, 4)

    def write_u64(self, addr: int, v: int) -> None:
        self.write_uint(addr, v, 8)

    # -- floating point -----------------------------------------------------

    def read_f64(self, addr: int) -> float:
        return _F64.unpack(self.read(addr, 8))[0]

    def write_f64(self, addr: int, v: float) -> None:
        self.write(addr, _F64.pack(v))

    def read_f32(self, addr: int) -> float:
        return _F32.unpack(self.read(addr, 4))[0]

    def write_f32(self, addr: int, v: float) -> None:
        self.write(addr, _F32.pack(v))

    # -- 128-bit vector as int ------------------------------------------------

    def read_u128(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 16), "little")

    def write_u128(self, addr: int, v: int) -> None:
        self.write(addr, int(v & ((1 << 128) - 1)).to_bytes(16, "little"))
