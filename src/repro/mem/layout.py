"""C struct layout computation (System V AMD64 rules).

MCC and the stencil data builders share these rules so a struct compiled
from C source and the same struct built "by hand" into simulated memory
agree byte-for-byte.  Supported field types are the scalar C types used by
the paper's stencil structures plus nested structs and flexible trailing
arrays (``struct FP p[];``).
"""

from __future__ import annotations

from dataclasses import dataclass

#: size and alignment of scalar C types under the System V AMD64 ABI
SCALAR_SIZES: dict[str, int] = {
    "char": 1, "short": 2, "int": 4, "long": 8, "double": 8, "float": 4,
    "ptr": 8,
}


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment``."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)


@dataclass(frozen=True)
class Field:
    """One struct member: name, byte offset, size, alignment."""

    name: str
    offset: int
    size: int
    align: int


class StructLayout:
    """Computes and stores the layout of one struct type.

    ``fields`` maps names to (kind, count) where kind is a scalar type name
    or another StructLayout; ``count`` is 1 for plain members, n for arrays,
    and 0 for a flexible trailing array.
    """

    def __init__(self, name: str, members: list[tuple[str, "str | StructLayout", int]]) -> None:
        self.name = name
        self.fields: dict[str, Field] = {}
        self.flexible: tuple[str, "str | StructLayout"] | None = None
        offset = 0
        max_align = 1
        for i, (fname, kind, count) in enumerate(members):
            if isinstance(kind, StructLayout):
                fsize, falign = kind.size, kind.align
            else:
                fsize = SCALAR_SIZES[kind]
                falign = fsize
            max_align = max(max_align, falign)
            offset = align_up(offset, falign)
            if count == 0:
                if i != len(members) - 1:
                    raise ValueError("flexible array member must be last")
                self.fields[fname] = Field(fname, offset, 0, falign)
                self.flexible = (fname, kind)
                continue
            self.fields[fname] = Field(fname, offset, fsize * count, falign)
            offset += fsize * count
        self.align = max_align
        self.size = align_up(offset, max_align)

    def offset_of(self, name: str) -> int:
        """Byte offset of a member."""
        return self.fields[name].offset

    def sizeof_with_flexible(self, count: int) -> int:
        """Total size when the flexible trailing array holds ``count`` items."""
        if self.flexible is None:
            if count:
                raise ValueError(f"{self.name} has no flexible member")
            return self.size
        fname, kind = self.flexible
        elem = kind.size if isinstance(kind, StructLayout) else SCALAR_SIZES[kind]
        return align_up(self.fields[fname].offset + elem * count, self.align)
