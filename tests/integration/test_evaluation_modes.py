"""Integration: the paper's full evaluation matrix (Sec. VI) at small scale.

Every (code, kernel-type, mode) cell must compute the same matrices as the
pure-Python Jacobi reference, and the qualitative orderings the paper's
prose asserts must hold.
"""

import pytest

from repro.bench.harness import run_experiment
from repro.bench.modes import CODES, MODES
from repro.stencil.jacobi import JacobiSetup, StencilWorkspace


@pytest.fixture(scope="module")
def ws():
    return StencilWorkspace(JacobiSetup(sz=17, sweeps=2))


@pytest.fixture(scope="module")
def element_rows(ws):
    return {code: run_experiment(ws, code, line=False, uid=".it") for code in CODES}


@pytest.fixture(scope="module")
def line_rows(ws):
    return {code: run_experiment(ws, code, line=True, uid=".it") for code in CODES}


def test_all_element_cells_correct(element_rows):
    for code, row in element_rows.items():
        assert all(row.correct.values()), (code, row.correct)


def test_all_line_cells_correct(line_rows):
    for code, row in line_rows.items():
        assert all(row.correct.values()), (code, row.correct)


# -- Fig. 9a prose assertions ---------------------------------------------------


def test_9a_direct_no_major_differences(element_rows):
    row = element_rows["direct"]
    for mode in MODES:
        assert row.relative_to_native(mode) < 1.25, (mode, row.cycles_per_cell)


def test_9a_flat_fixation_reaches_hardcoded(element_rows):
    direct = element_rows["direct"].cycles_per_cell["native"]
    fix = element_rows["flat"].cycles_per_cell["llvm-fix"]
    assert fix / direct < 1.2  # "same performance as the hard-coded stencil"


def test_9a_flat_dbrew_overhead(element_rows):
    # DBrew ~2x the hard-coded stencil (21.74 vs 10.54 in the paper)
    direct = element_rows["direct"].cycles_per_cell["native"]
    dbrew = element_rows["flat"].cycles_per_cell["dbrew"]
    assert 1.4 < dbrew / direct < 2.6


def test_9a_dbrew_llvm_improves_on_dbrew(element_rows):
    for code in ("flat", "sorted"):
        row = element_rows[code]
        assert row.cycles_per_cell["dbrew+llvm"] <= row.cycles_per_cell["dbrew"]


def test_9a_sorted_dbrew_lower_overhead_than_flat(element_rows):
    # "the DBrew specialization has a lower overhead as for the flat
    # structure because the redundant multiplications are eliminated"
    assert element_rows["sorted"].cycles_per_cell["dbrew"] <= \
        element_rows["flat"].cycles_per_cell["dbrew"]


def test_9a_sorted_dbrew_llvm_near_hardcoded(element_rows):
    direct = element_rows["direct"].cycles_per_cell["native"]
    got = element_rows["sorted"].cycles_per_cell["dbrew+llvm"]
    assert got / direct < 1.35


def test_9a_sorted_fixation_does_not_specialize(element_rows):
    # nested pointers are not followed: fixation stays near native, far from
    # the flat structure's fixation win
    row = element_rows["sorted"]
    assert row.cycles_per_cell["llvm-fix"] > 2 * element_rows["direct"].cycles_per_cell["native"]


def test_9a_generic_structures_slower_than_direct(element_rows):
    direct = element_rows["direct"].cycles_per_cell["native"]
    assert element_rows["flat"].cycles_per_cell["native"] > 2.3 * direct
    assert element_rows["sorted"].cycles_per_cell["native"] > 2.3 * direct


# -- Fig. 9b prose assertions -----------------------------------------------------


def test_9b_direct_llvm_similar(line_rows):
    row = line_rows["direct"]
    assert row.relative_to_native("llvm") < 1.2  # vectorization preserved


def test_9b_direct_dbrew_loses_vectorization(line_rows):
    row = line_rows["direct"]
    assert row.relative_to_native("dbrew") > 1.7  # scalar + extra moves


def test_9b_direct_dbrew_llvm_between(line_rows):
    row = line_rows["direct"]
    assert row.cycles_per_cell["llvm"] < row.cycles_per_cell["dbrew+llvm"] \
        < row.cycles_per_cell["dbrew"]


def test_9b_flat_fixation_beats_native_but_not_direct(line_rows):
    flat = line_rows["flat"]
    direct_native = line_rows["direct"].cycles_per_cell["native"]
    assert flat.cycles_per_cell["llvm-fix"] < flat.cycles_per_cell["native"]
    assert flat.cycles_per_cell["llvm-fix"] > direct_native  # not vectorized


def test_9b_flat_dbrew_llvm_between_dbrew_and_fix(line_rows):
    flat = line_rows["flat"]
    assert flat.cycles_per_cell["llvm-fix"] < flat.cycles_per_cell["dbrew+llvm"] \
        <= flat.cycles_per_cell["dbrew"]


def test_9b_sorted_dbrew_llvm_fast(line_rows):
    row = line_rows["sorted"]
    assert row.cycles_per_cell["dbrew+llvm"] <= row.cycles_per_cell["dbrew"]


# -- Fig. 10 prose assertions -------------------------------------------------------


def test_fig10_dbrew_much_cheaper_than_llvm(ws, line_rows):
    # "DBrew uses less than 0.05ms in any case while the time required by
    # LLVM increases with the code complexity" — only the robust qualitative
    # claim is asserted here (the benchmarks measure the factor properly
    # over multiple rounds).  Since the hot-path speed campaign, the llvm
    # pipeline on the smallest kernel costs about one dbrew rewrite, so the
    # per-code ordering is a coin flip there; the robust claim is the row
    # aggregate: transforming all three codes with dbrew is much cheaper
    # than with llvm.  The fixture times each transform once, which flakes
    # when a load spike hits a dbrew shot — on inversion, re-measure with
    # interleaved laps and compare medians of the row sums.
    from statistics import median

    from repro.bench.modes import prepare_kernel

    def row_sum(times):
        return sum(times[code] for code in CODES)

    fixture = {mode: {code: line_rows[code].transform_seconds[mode]
                      for code in CODES}
               for mode in ("dbrew", "llvm")}
    if row_sum(fixture["dbrew"]) < row_sum(fixture["llvm"]):
        return
    sums = {"dbrew": [], "llvm": []}
    for lap in range(3):
        for mode in sums:
            laps = {}
            for code in CODES:
                res = prepare_kernel(ws, code, mode, line=True,
                                     uid=f".f10{lap}")
                laps[code] = res.transform_seconds
            sums[mode].append(row_sum(laps))
    assert median(sums["dbrew"]) < median(sums["llvm"]), sums


def test_fig10_native_costs_nothing(line_rows):
    for code in CODES:
        assert line_rows[code].transform_seconds["native"] == 0.0
