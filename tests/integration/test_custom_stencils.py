"""Generality check: the whole pipeline on stencils other than the paper's.

The paper's point is that the *generic* code covers arbitrary 2d stencils
(Fig. 7: "generic 2d stencil computation code with the stencil given as a
data structure").  These tests run a 5-point stencil with two distinct
coefficients — which exercises multi-group sorted descriptors, DBrew's
nested-pointer specialization across groups, and IR fixation on a larger
constant region — through every mode.
"""

import pytest

from repro.dbrew import Rewriter
from repro.jit import BinaryTransformer
from repro.lift import FunctionSignature
from repro.lift.fixation import FixedMemory
from repro.stencil.data import build_flat, build_sorted
from repro.stencil.jacobi import JacobiSetup, StencilWorkspace, matrices_equal
from repro.stencil.sources import ELEMENT_SIGNATURE

#: 5-point stencil: heavy center, light neighbours (two coefficient groups)
FIVE_POINT = (
    (0, 0, 0.5),
    (-1, 0, 0.125), (1, 0, 0.125), (0, -1, 0.125), (0, 1, 0.125),
)


@pytest.fixture(scope="module")
def ws():
    w = StencilWorkspace(JacobiSetup(sz=13, sweeps=2))
    w.flat5 = build_flat(w.image, FIVE_POINT)
    w.sorted5 = build_sorted(w.image, FIVE_POINT)
    return w


@pytest.fixture(scope="module")
def reference(ws):
    ws.reset_matrices()
    return ws.reference_sweeps(2, FIVE_POINT)


def check(ws, kernel_addr, sarg, reference):
    ws.sim.invalidate_code()
    ws.reset_matrices()
    ws.run_sweeps(kernel_addr, line=False, stencil_arg=sarg)
    assert matrices_equal(ws.read_matrix(1), reference)


def test_native_flat_five_point(ws, reference):
    check(ws, ws.image.symbol("apply_flat"), ws.flat5.addr, reference)


def test_native_sorted_five_point(ws, reference):
    assert ws.image.memory.read_u32(ws.sorted5.addr) == 2  # two groups
    check(ws, ws.image.symbol("apply_sorted"), ws.sorted5.addr, reference)


def test_dbrew_flat_five_point(ws, reference):
    r = Rewriter(ws.image, "apply_flat") \
        .set_signature(tuple(ELEMENT_SIGNATURE), None) \
        .set_par(0, ws.flat5.addr) \
        .set_mem(ws.flat5.addr, ws.flat5.addr + ws.flat5.size)
    addr = r.rewrite(name="k5.flat.dbrew")
    assert addr != ws.image.symbol("apply_flat")
    check(ws, addr, ws.flat5.addr, reference)
    # 5 points fully unrolled: no branches left
    ws.sim.invalidate_code()
    stats = ws.sim.call(addr, (0, ws.m1, ws.m2, 14))
    assert stats.stats.taken_branches == 0


def test_dbrew_sorted_five_point_two_groups(ws, reference):
    r = Rewriter(ws.image, "apply_sorted") \
        .set_signature(tuple(ELEMENT_SIGNATURE), None) \
        .set_par(0, ws.sorted5.addr)
    for start, size in ws.sorted5.regions:
        r.set_mem(start, start + size)
    addr = r.rewrite(name="k5.sorted.dbrew")
    check(ws, addr, ws.sorted5.addr, reference)
    # both group loops and both point loops unroll away
    ws.sim.invalidate_code()
    stats = ws.sim.call(addr, (0, ws.m1, ws.m2, 14))
    assert stats.stats.taken_branches == 0
    # exactly two multiplies: one per coefficient group
    assert stats.stats.per_mnemonic.get("mulsd", 0) == 2


def test_llvm_fix_flat_five_point(ws, reference):
    tx = BinaryTransformer(ws.image)
    res = tx.llvm_fixed(
        "apply_flat", FunctionSignature(tuple(ELEMENT_SIGNATURE), None),
        {0: FixedMemory(ws.flat5.addr, ws.flat5.size)}, name="k5.flat.fix",
    )
    check(ws, res.addr, ws.flat5.addr, reference)
    # fully specialized: no loads from the descriptor, loop unrolled
    assert not any(
        ins.opcode == "br" and len(ins.successors()) == 2
        for ins in res.function.instructions()
    )


def test_dbrew_plus_llvm_five_point(ws, reference):
    r = Rewriter(ws.image, "apply_flat") \
        .set_signature(tuple(ELEMENT_SIGNATURE), None) \
        .set_par(0, ws.flat5.addr) \
        .set_mem(ws.flat5.addr, ws.flat5.addr + ws.flat5.size)
    dbrew_addr = r.rewrite(name="k5.flat.db2")
    tx = BinaryTransformer(ws.image)
    res = tx.llvm_identity(
        dbrew_addr, FunctionSignature(tuple(ELEMENT_SIGNATURE), None),
        name="k5.flat.both",
    )
    check(ws, res.addr, ws.flat5.addr, reference)


def test_asymmetric_stencil_correctness(ws):
    """A deliberately asymmetric stencil (advection-like) end to end."""
    points = ((-1, 0, 0.75), (0, -1, 0.25))
    flat = build_flat(ws.image, points)
    ws.reset_matrices()
    ref = ws.reference_sweeps(2, points)
    r = Rewriter(ws.image, "apply_flat") \
        .set_signature(tuple(ELEMENT_SIGNATURE), None) \
        .set_par(0, flat.addr).set_mem(flat.addr, flat.addr + flat.size)
    addr = r.rewrite(name="k5.asym.dbrew")
    check(ws, addr, flat.addr, ref)
