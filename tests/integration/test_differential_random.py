"""Randomized whole-pipeline differential testing.

hypothesis generates small structured C programs (expressions, ifs, while
loops, integer and double arithmetic); each is compiled with MCC and then
checked four ways on identical inputs:

    simulator(native)  ==  interp(lifted IR)  ==  simulator(JIT(lifted IR))
                       ==  simulator(DBrew identity rewrite)

Any divergence pinpoints a bug in one specific layer.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc import compile_c
from repro.cpu import Simulator
from repro.dbrew import Rewriter
from repro.ir import Interpreter, verify
from repro.jit import BinaryTransformer
from repro.lift import FunctionSignature

_U63 = (1 << 63) - 1


@st.composite
def int_expr(draw, depth=0):
    if depth >= 3 or draw(st.integers(0, 2)) == 0:
        return draw(st.sampled_from(
            ["a", "b", "x", str(draw(st.integers(-50, 50)))]
        ))
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", ">>"]))
    lhs = draw(int_expr(depth + 1))
    rhs = draw(int_expr(depth + 1))
    if op in ("<<", ">>"):
        rhs = str(draw(st.integers(0, 7)))
    return f"({lhs} {op} {rhs})"


@st.composite
def cond_expr(draw):
    op = draw(st.sampled_from(["<", ">", "<=", ">=", "==", "!="]))
    return f"({draw(int_expr(2))} {op} {draw(int_expr(2))})"


@st.composite
def stmt(draw, depth=0):
    kind = draw(st.sampled_from(
        ["assign", "assign", "if", "ifelse", "while"] if depth < 2 else ["assign"]
    ))
    if kind == "assign":
        return f"x = {draw(int_expr())};"
    if kind == "if":
        return f"if {draw(cond_expr())} {{ {draw(stmt(depth + 1))} }}"
    if kind == "ifelse":
        return (f"if {draw(cond_expr())} {{ {draw(stmt(depth + 1))} }} "
                f"else {{ {draw(stmt(depth + 1))} }}")
    # bounded while loop: a fresh counter guarantees termination
    body = draw(stmt(depth + 1))
    return (f"{{ long i = 0; while (i < {draw(st.integers(1, 6))}) "
            f"{{ {body} i = i + 1; }} }}")


@st.composite
def program(draw):
    stmts = draw(st.lists(stmt(), min_size=1, max_size=4))
    body = "\n    ".join(stmts)
    return f"""
long f(long a, long b) {{
    long x = a;
    {body}
    return x;
}}
"""


@settings(max_examples=40, deadline=None)
@given(src=program(), a=st.integers(0, _U63), b=st.integers(0, _U63))
def test_pipeline_differential_int(src, a, b):
    prog = compile_c(src)
    img = prog.image
    sim = Simulator(img)
    want = sim.call_int("f", (a, b))

    # lifted IR, interpreted
    tx = BinaryTransformer(img)
    res = tx.llvm_identity("f", FunctionSignature(("i", "i"), "i"), name="f_tx")
    verify(res.function)
    got_ir = Interpreter(res.module, img.memory).run(res.function, [a, b])
    got_ir = got_ir - 2**64 if got_ir >= 2**63 else got_ir
    assert got_ir == want, "lift/optimize diverged"

    # JIT-compiled lifted IR, simulated
    sim.invalidate_code()
    assert sim.call_int("f_tx", (a, b)) == want, "JIT diverged"

    # DBrew identity rewrite
    Rewriter(img, "f").set_signature(("i", "i")).rewrite(name="f_db")
    sim.invalidate_code()
    assert sim.call_int("f_db", (a, b)) == want, "DBrew diverged"


@st.composite
def double_expr(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return "p"
        if choice == 1:
            return "q"
        return repr(draw(st.sampled_from([0.5, 1.0, 2.0, -1.5, 0.25, 3.75])))
    op = draw(st.sampled_from(["+", "-", "*"]))
    return f"({draw(double_expr(depth + 1))} {op} {draw(double_expr(depth + 1))})"


@settings(max_examples=25, deadline=None)
@given(e=double_expr(),
       p=st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e6, max_value=1e6),
       q=st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e6, max_value=1e6))
def test_pipeline_differential_double(e, p, q):
    src = f"double f(double p, double q) {{ return {e}; }}"
    prog = compile_c(src)
    img = prog.image
    sim = Simulator(img)
    want = sim.call_f64("f", (), (p, q))

    tx = BinaryTransformer(img)
    res = tx.llvm_identity("f", FunctionSignature(("f", "f"), "f"), name="f_tx")
    got_ir = Interpreter(res.module, img.memory).run(res.function, [p, q])
    assert got_ir == want or (got_ir != got_ir and want != want)

    sim.invalidate_code()
    got_jit = sim.call_f64("f_tx", (), (p, q))
    assert got_jit == want or (got_jit != got_jit and want != want)


@settings(max_examples=15, deadline=None)
@given(src=program(), a=st.integers(0, 100))
def test_dbrew_specialization_differential(src, a):
    """Fixing parameter a must preserve semantics for every b."""
    prog = compile_c(src)
    img = prog.image
    sim = Simulator(img)
    r = Rewriter(img, "f").set_signature(("i", "i")).set_par(0, a)
    r.rewrite(name="f_spec")
    sim.invalidate_code()
    for b in (0, 1, 17, _U63):
        assert sim.call_int("f_spec", (999, b)) == sim.call_int("f", (a, b))
