"""Harness-level units: figure formatting, mode table, workspace wiring."""

import pytest

from repro.bench.harness import ExperimentRow, format_compile_times, format_figure
from repro.bench.modes import CODES, MODES, prepare_kernel
from repro.stencil.jacobi import JacobiSetup, StencilWorkspace


def make_row(code="flat", line=False):
    row = ExperimentRow(code, line)
    for i, m in enumerate(MODES):
        row.cycles_per_cell[m] = 100.0 + i
        row.seconds[m] = 10.0 + i
        row.transform_seconds[m] = 0.001 * i
        row.correct[m] = True
    return row


def test_relative_to_native():
    row = make_row()
    assert row.relative_to_native("native") == 1.0
    assert row.relative_to_native("dbrew+llvm") == pytest.approx(104 / 100)


def test_format_figure_contains_all_modes():
    text = format_figure([make_row("direct"), make_row("flat")], title="T")
    assert "T" in text
    assert "direct" in text and "flat" in text
    for m in MODES:
        assert m in text
    assert "ok" in text


def test_format_figure_flags_wrong_results():
    row = make_row()
    row.correct["dbrew"] = False
    text = format_figure([row], title="T")
    assert "WRONG" in text


def test_format_compile_times_excludes_native():
    text = format_compile_times([make_row()], title="CT")
    assert "native" not in text.splitlines()[2]
    assert "(ms)" in text


def test_prepare_kernel_rejects_unknown_cell():
    ws = StencilWorkspace(JacobiSetup(sz=9, sweeps=1))
    with pytest.raises(ValueError):
        prepare_kernel(ws, "bogus", "native", line=False)
    with pytest.raises(ValueError):
        prepare_kernel(ws, "flat", "bogus", line=False)


def test_native_mode_has_no_transform_cost():
    ws = StencilWorkspace(JacobiSetup(sz=9, sweeps=1))
    res = prepare_kernel(ws, "direct", "native", line=False)
    assert res.transform_seconds == 0.0
    assert res.kernel_addr == ws.image.symbol("apply_direct")


def test_workspace_driver_caching():
    ws = StencilWorkspace(JacobiSetup(sz=9, sweeps=1))
    a1 = ws.driver_for(ws.image.symbol("apply_direct"), line=False)
    a2 = ws.driver_for(ws.image.symbol("apply_direct"), line=False)
    assert a1 == a2  # compiled once
    a3 = ws.driver_for(ws.image.symbol("apply_flat"), line=False)
    assert a3 != a1  # distinct kernel -> distinct driver
