"""Seeded cross-layer differential corpus.

Each seed deterministically generates one multi-instruction x86-64
sequence (``random.Random(seed)`` — no hypothesis shrinking, so a seed
printed by CI reproduces locally bit-for-bit) and runs it through every
execution layer on the same probe inputs:

    simulator(native)  ==  interp(lifted IR)  ==  interp(O3 IR)
                       ==  simulator(JIT(O3 IR))

Agreement is checked on the return value (the epilogue folds every
scratch register into rax, so a corrupted temporary cannot hide), on
flag-dependent results (cmp+cmov / cmp+setcc constructs inside the
sequence) and on a 64-byte scratch memory region the sequences store to
and load from.

A disagreeing seed is appended to ``corpus_failures.txt`` next to this
file; recorded seeds are replayed by ``test_replay_recorded_failures``
on every run, so a corpus bug stays covered after the corpus moves on.

``REPRO_CORPUS_SEEDS`` scales the corpus (CI runs 100 seeds per
generator = 200 sequences; the default keeps local runs quick).
"""

from __future__ import annotations

import os
import random
import struct
from pathlib import Path

import pytest

from repro.cpu import Image, Simulator
from repro.ir import Interpreter, Module, verify
from repro.ir.passes import run_o3
from repro.jit import BinaryTransformer
from repro.lift import FunctionSignature, LiftOptions, lift_function
from repro.x86 import parse_asm
from repro.x86.asm import assemble

SEEDS = int(os.environ.get("REPRO_CORPUS_SEEDS", "25"))
SCRATCH = 64
_FAILURES = Path(__file__).with_name("corpus_failures.txt")

_REGS = ("r8", "r9", "r10", "r11")
_REGS32 = ("r8d", "r9d", "r10d", "r11d")
_CCS = ("e", "ne", "l", "ge", "le", "g", "b", "ae", "a", "be", "s", "ns")
_OFFS = tuple(range(0, SCRATCH, 8))


# -- generators -------------------------------------------------------------


def gen_int_sequence(rng: random.Random) -> str:
    """Integer ALU / flag / memory sequence over r8-r11 and [rdx+off]."""
    lines = [
        "mov r8, rdi",
        "mov r9, rsi",
        "mov r10, rdi",
        "xor r10, rsi",
        "mov r11, rdi",
        "add r11, rsi",
    ]
    for _ in range(rng.randint(4, 12)):
        kind = rng.randrange(9)
        r1, r2, r3 = (rng.choice(_REGS) for _ in range(3))
        if kind == 0:
            op = rng.choice(("add", "sub", "and", "or", "xor", "imul"))
            lines.append(f"{op} {r1}, {r2}")
        elif kind == 1:
            op = rng.choice(("add", "sub", "and", "or", "xor"))
            lines.append(f"{op} {r1}, {rng.randint(-128, 127)}")
        elif kind == 2:
            op = rng.choice(("shl", "shr", "sar"))
            lines.append(f"{op} {r1}, {rng.randint(0, 31)}")
        elif kind == 3:
            op = rng.choice(("inc", "dec", "neg", "not"))
            lines.append(f"{op} {r1}")
        elif kind == 4:
            # flag consumers must directly follow the cmp: flags after
            # imul/shifts are architecturally undefined
            lines.append(f"cmp {r1}, {r2}")
            lines.append(f"cmov{rng.choice(_CCS)} {r3}, {r1}")
        elif kind == 5:
            lines.append(f"cmp {r1}, {rng.randint(-128, 127)}")
            lines.append(f"set{rng.choice(_CCS)} al")
            lines.append("movzx eax, al")
            lines.append(f"add {r2}, rax")
        elif kind == 6:
            op = rng.choice(("add", "sub", "xor", "and", "or", "mov"))
            i1, i2 = rng.choice(_REGS32), rng.choice(_REGS32)
            lines.append(f"{op} {i1}, {i2}")
        elif kind == 7:
            lines.append(f"mov [rdx + {rng.choice(_OFFS)}], {r1}")
        else:
            lines.append(f"mov {r1}, [rdx + {rng.choice(_OFFS)}]")
    lines += [
        # fold every temporary into the return value
        "mov rax, r8",
        "add rax, r9",
        "xor rax, r10",
        "add rax, r11",
        "ret",
    ]
    return "\n".join(lines)


def gen_sse_sequence(rng: random.Random) -> str:
    """Scalar-double sequence over xmm0-xmm3 and [rdi+off] scratch."""
    lines = [
        "movsd xmm2, xmm0",
        "movsd xmm3, xmm1",
    ]
    for _ in range(rng.randint(3, 10)):
        kind = rng.randrange(4)
        x1 = f"xmm{rng.randrange(4)}"
        x2 = f"xmm{rng.randrange(4)}"
        if kind == 0:
            op = rng.choice(("addsd", "subsd", "mulsd"))
            lines.append(f"{op} {x1}, {x2}")
        elif kind == 1:
            lines.append(f"movsd {x1}, {x2}")
        elif kind == 2:
            lines.append(f"movsd [rdi + {rng.choice(_OFFS)}], {x1}")
        else:
            lines.append(f"movsd {x1}, [rdi + {rng.choice(_OFFS)}]")
    lines += [
        "addsd xmm0, xmm1",
        "addsd xmm0, xmm2",
        "addsd xmm0, xmm3",
        "ret",
    ]
    return "\n".join(lines)


# -- harness ----------------------------------------------------------------


def _probe_args(rng: random.Random, kind: str) -> list[tuple]:
    u64 = lambda: rng.getrandbits(64)
    if kind == "int":
        probes = [(u64(), u64()), (0, 1), ((1 << 64) - 1, 2)]
    else:
        f = lambda: rng.uniform(-1e6, 1e6)
        probes = [(f(), f()), (0.0, -1.5), (f(), 0.0)]
    return probes


def _scratch_pattern(rng: random.Random) -> bytes:
    return struct.pack(f"<{SCRATCH // 8}Q",
                       *(rng.getrandbits(64) for _ in range(SCRATCH // 8)))


def _f64_bits(v: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", v))[0]


def _run_corpus_case(kind: str, seed: int) -> None:
    rng = random.Random(seed)
    asm = gen_int_sequence(rng) if kind == "int" else gen_sse_sequence(rng)
    pattern = _scratch_pattern(rng)
    probes = _probe_args(rng, kind)

    img = Image()
    base = img.next_code_addr()
    code, _ = assemble(parse_asm(asm), base=base)
    img.add_function("f", code)
    scratch = img.alloc_data(SCRATCH, align=16)
    mem = img.memory
    sim = Simulator(img)

    if kind == "int":
        sig = FunctionSignature(("i", "i", "i"), "i")
    else:
        sig = FunctionSignature(("i", "f", "f"), "f")

    m = Module("corpus")
    f = lift_function(mem, base, sig, LiftOptions(name="f"), m)
    verify(f)
    f_opt = lift_function(mem, base, sig, LiftOptions(name="f_opt"), m)
    run_o3(f_opt)
    verify(f_opt)
    # machine_verify=True makes this corpus the zero-false-positive sweep
    # for the static verifier: a refuted proof raises VerificationError
    # here (hard failure), while the four-engine comparison below is the
    # dynamic oracle — any static/dynamic disagreement fails the seed
    jit_res = BinaryTransformer(img, machine_verify=True).llvm_identity(
        base, sig, name="f_jit")
    assert jit_res.machine_verdict in ("proved", "inconclusive"), (
        f"seed={seed} kind={kind}: machine verdict {jit_res.machine_verdict}")
    sim.invalidate_code()
    interp = Interpreter(m, mem)

    def native(args):
        st = sim.call(base, *args)
        return _f64_bits(st.f64_value) if kind == "sse" else st.rax

    def jit(args):
        st = sim.call(jit_res.addr, *args)
        return _f64_bits(st.f64_value) if kind == "sse" else st.rax

    def interp_pre(args):
        v = interp.run(f, list(args[0]) + list(args[1]))
        return _f64_bits(v) if kind == "sse" else v

    def interp_o3(args):
        v = interp.run(f_opt, list(args[0]) + list(args[1]))
        return _f64_bits(v) if kind == "sse" else v

    engines = [("native", native), ("interp", interp_pre),
               ("interp+o3", interp_o3), ("jit", jit)]

    for probe in probes:
        if kind == "int":
            args = ((probe[0], probe[1], scratch), ())
        else:
            args = ((scratch,), (probe[0], probe[1]))
        results = {}
        for ename, run in engines:
            mem.write(scratch, pattern)
            val = run(args)
            results[ename] = (val, mem.read(scratch, SCRATCH))
        want_val, want_mem = results["native"]
        for ename, (val, memout) in results.items():
            # both-NaN disagreement in the payload bits is tolerated:
            # x86 and IEEE produce *a* qNaN, not a specific one
            if kind == "sse" and _is_nan(val) and _is_nan(want_val):
                val = want_val
            assert val == want_val, (
                f"seed={seed} kind={kind} probe={probe}: {ename} returned "
                f"{val:#x}, native {want_val:#x}\n{asm}")
            assert memout == want_mem, (
                f"seed={seed} kind={kind} probe={probe}: {ename} scratch "
                f"memory diverged from native\n{asm}")


def _is_nan(bits: int) -> bool:
    return (bits & 0x7FF0000000000000) == 0x7FF0000000000000 \
        and (bits & 0x000FFFFFFFFFFFFF) != 0


def _check(kind: str, seed: int) -> None:
    try:
        _run_corpus_case(kind, seed)
    except AssertionError:
        _record_failure(kind, seed)
        raise


# -- failing-seed persistence ----------------------------------------------


def _record_failure(kind: str, seed: int) -> None:
    entry = f"{kind}:{seed}"
    existing = _FAILURES.read_text().split() if _FAILURES.exists() else []
    if entry not in existing:
        with _FAILURES.open("a") as fh:
            fh.write(entry + "\n")


def _recorded_failures() -> list[tuple[str, int]]:
    if not _FAILURES.exists():
        return []
    out = []
    for token in _FAILURES.read_text().split():
        kind, _, seed = token.partition(":")
        if kind in ("int", "sse") and seed.isdigit():
            out.append((kind, int(seed)))
    return out


# -- tests ------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(SEEDS))
def test_int_corpus(seed):
    _check("int", seed)


@pytest.mark.parametrize("seed", range(SEEDS))
def test_sse_corpus(seed):
    _check("sse", seed)


def test_replay_recorded_failures():
    """Seeds that ever failed stay in the corpus forever."""
    for kind, seed in _recorded_failures():
        _run_corpus_case(kind, seed)


def test_bench_kernels_machine_sweep():
    """Every benchmark kernel must survive the verified production path:
    a refuted proof on this known-clean set is a static/dynamic-oracle
    disagreement and a hard failure."""
    from repro.analysis.lint import CORPORA
    from repro.cc import compile_c

    verdicts = {}
    for corpus, programs in CORPORA.items():
        for source, signatures in programs:
            prog = compile_c(source)
            for name, sig in signatures.items():
                res = BinaryTransformer(
                    prog.image, machine_verify=True).llvm_identity(
                        name, sig, name=f"{name}.mc")
                verdicts[name] = res.machine_verdict
    assert all(v in ("proved", "inconclusive") for v in verdicts.values()), \
        verdicts
    # the scalar kernels are known to prove outright; pin that so a
    # precision regression (proved -> inconclusive) is visible
    for name in ("poly", "dot", "clamp_sum"):
        assert verdicts[name] == "proved", verdicts
