"""Seeded cross-layer differential corpus (pytest front-end).

The generators, four-engine harness, multiprocess runner and ddmin
minimizer live in :mod:`repro.testing.diffcorpus`; this module is the CI
surface.  Each seed deterministically generates one x86-64 sequence and
checks

    simulator(native)  ==  interp(lifted IR)  ==  interp(O3 IR)
                       ==  simulator(JIT(O3 IR))

on shared probe inputs, plus the stale-trace audit for the threaded
interpreter's trace cache.

A disagreeing seed is appended to ``corpus_failures.txt`` next to this
file; recorded seeds are replayed by ``test_replay_recorded_failures`` on
every run, and minimized ``corpus_repros/*.asm`` reproducers (persisted
by the corpus runner's delta debugger) are replayed by
``test_replay_minimized_repros``, so a corpus bug stays covered after the
corpus moves on.

``REPRO_CORPUS_SEEDS`` scales the in-test corpus (the default keeps local
runs quick); corpus-scale sweeps (2k in CI, 10k+ locally) go through
``python -m repro.testing.diffcorpus`` which parallelizes across a
process pool.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.jit import BinaryTransformer
from repro.testing.diffcorpus import parse_repro, run_case

SEEDS = int(os.environ.get("REPRO_CORPUS_SEEDS", "25"))
_FAILURES = Path(__file__).with_name("corpus_failures.txt")
_REPRO_DIR = Path(__file__).with_name("corpus_repros")


def _check(kind: str, seed: int) -> None:
    try:
        run_case(kind, seed)
    except AssertionError:
        _record_failure(kind, seed)
        raise


# -- failing-seed persistence ----------------------------------------------


def _record_failure(kind: str, seed: int) -> None:
    entry = f"{kind}:{seed}"
    existing = _FAILURES.read_text().split() if _FAILURES.exists() else []
    if entry not in existing:
        with _FAILURES.open("a") as fh:
            fh.write(entry + "\n")


def _recorded_failures() -> list[tuple[str, int]]:
    if not _FAILURES.exists():
        return []
    out = []
    for token in _FAILURES.read_text().split():
        kind, _, seed = token.partition(":")
        if kind in ("int", "sse") and seed.isdigit():
            out.append((kind, int(seed)))
    return out


# -- tests ------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(SEEDS))
def test_int_corpus(seed):
    _check("int", seed)


@pytest.mark.parametrize("seed", range(SEEDS))
def test_sse_corpus(seed):
    _check("sse", seed)


def test_replay_recorded_failures():
    """Seeds that ever failed stay in the corpus forever."""
    for kind, seed in _recorded_failures():
        run_case(kind, seed)


def test_replay_minimized_repros():
    """Minimized reproducers persisted by the corpus runner stay green.

    Each ``corpus_repros/*.asm`` file carries its seed in the header, so
    the probe inputs replay exactly; the assembly replayed is the reduced
    sequence, not the original generation.
    """
    if not _REPRO_DIR.is_dir():
        pytest.skip("no minimized reproducers recorded")
    paths = sorted(_REPRO_DIR.glob("*.asm"))
    if not paths:
        pytest.skip("no minimized reproducers recorded")
    for path in paths:
        kind, seed, asm = parse_repro(path)
        run_case(kind, seed, asm=asm)


def test_bench_kernels_machine_sweep():
    """Every benchmark kernel must survive the verified production path:
    a refuted proof on this known-clean set is a static/dynamic-oracle
    disagreement and a hard failure."""
    from repro.analysis.lint import CORPORA
    from repro.cc import compile_c

    verdicts = {}
    for corpus, programs in CORPORA.items():
        for source, signatures in programs:
            prog = compile_c(source)
            for name, sig in signatures.items():
                res = BinaryTransformer(
                    prog.image, machine_verify=True).llvm_identity(
                        name, sig, name=f"{name}.mc")
                verdicts[name] = res.machine_verdict
    assert all(v in ("proved", "inconclusive") for v in verdicts.values()), \
        verdicts
    # the scalar kernels are known to prove outright; pin that so a
    # precision regression (proved -> inconclusive) is visible
    for name in ("poly", "dot", "clamp_sum"):
        assert verdicts[name] == "proved", verdicts
