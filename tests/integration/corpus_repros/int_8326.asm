# minimized corpus reproducer kind=int seed=8326
# pinned unminimized: 10k-seed sweep false refutation --
# machine-verifier mask() did not reduce bitwise constants
# modulo an enclosing width mask (sign-extended imm64 vs i32)
mov r8, rdi
mov r9, rsi
mov r10, rdi
xor r10, rsi
mov r11, rdi
add r11, rsi
cmp r10, 79
setg al
movzx eax, al
add r11, rax
xor r9d, r11d
mov [rdx + 40], r11
xor r9d, r9d
mov r11, [rdx + 32]
mov [rdx + 24], r9
not r9
mov r11, [rdx + 32]
mov r8, [rdx + 24]
mov r11, [rdx + 56]
xor r10d, r9d
mov rax, r8
add rax, r9
xor rax, r10
add rax, r11
ret
