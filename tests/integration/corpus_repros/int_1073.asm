# minimized corpus reproducer kind=int seed=1073
# pinned unminimized: 10k-seed sweep false refutation --
# machine-verifier mask() did not reduce bitwise constants
# modulo an enclosing width mask (sign-extended imm64 vs i32)
mov r8, rdi
mov r9, rsi
mov r10, rdi
xor r10, rsi
mov r11, rdi
add r11, rsi
or r10, r8
add r10d, r8d
cmp r9, -123
setle al
movzx eax, al
add r9, rax
shr r10, 23
shr r8, 18
xor r9, r9
not r9
or r10d, r9d
and r11d, r11d
mov rax, r8
add rax, r9
xor rax, r10
add rax, r11
ret
