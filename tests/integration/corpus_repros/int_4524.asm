# minimized corpus reproducer kind=int seed=4524
# pinned unminimized: 10k-seed sweep false refutation --
# machine-verifier mask() did not reduce bitwise constants
# modulo an enclosing width mask (sign-extended imm64 vs i32)
mov r8, rdi
mov r9, rsi
mov r10, rdi
xor r10, rsi
mov r11, rdi
add r11, rsi
and r8d, r9d
not r9
mov [rdx + 0], r11
shr r8, 8
inc r9
xor r11, r11
xor r11, -32
and r8d, r11d
mov rax, r8
add rax, r9
xor rax, r10
add rax, r11
ret
