# minimized corpus reproducer kind=int seed=7846
# pinned unminimized: 10k-seed sweep false refutation --
# machine-verifier mask() did not reduce bitwise constants
# modulo an enclosing width mask (sign-extended imm64 vs i32)
mov r8, rdi
mov r9, rsi
mov r10, rdi
xor r10, rsi
mov r11, rdi
add r11, rsi
sub r8, r8
shr r8, 15
cmp r8, -118
setns al
movzx eax, al
add r10, rax
shr r11, 5
xor r11, -109
not r8
xor r10d, r8d
xor r9, r11
sar r9, 10
xor r10d, r9d
mov rax, r8
add rax, r9
xor rax, r10
add rax, r11
ret
