"""Instruction-sequence fuzzing: random reg-only ALU/SSE sequences are
lifted and the IR interpretation must match the simulator exactly —
including all flag-dependent instructions (cmov/setcc) in the sequence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import Image, Simulator
from repro.ir import Interpreter, Module, verify
from repro.ir.passes import run_o3
from repro.lift import FunctionSignature, LiftOptions, lift_function
from repro.x86 import parse_asm
from repro.x86.asm import assemble

# registers the fuzzer plays with (args rdi/rsi + two temporaries)
_REGS = ["rdi", "rsi", "r8", "r9"]
_REGS32 = ["edi", "esi", "r8d", "r9d"]
_CCS = ["e", "ne", "l", "ge", "le", "g", "b", "ae", "a", "be", "s", "ns"]


@st.composite
def alu_line(draw):
    kind = draw(st.integers(0, 6))
    r1 = draw(st.sampled_from(_REGS))
    r2 = draw(st.sampled_from(_REGS))
    if kind == 0:
        op = draw(st.sampled_from(["add", "sub", "and", "or", "xor"]))
        return f"{op} {r1}, {r2}"
    if kind == 1:
        op = draw(st.sampled_from(["add", "sub", "and", "or", "xor", "cmp"]))
        imm = draw(st.integers(-128, 127))
        return f"{op} {r1}, {imm}"
    if kind == 2:
        op = draw(st.sampled_from(["shl", "shr", "sar"]))
        return f"{op} {r1}, {draw(st.integers(0, 31))}"
    if kind == 3:
        # flag consumers follow a cmp directly: flags after imul/shifts are
        # architecturally undefined (lifter: undef; simulator: one concrete
        # choice), and compiler-generated code never consumes them
        cc = draw(st.sampled_from(_CCS))
        r3 = draw(st.sampled_from(_REGS))
        return f"cmp {r1}, {r2}\ncmov{cc} {r3}, {r1}"
    if kind == 4:
        op = draw(st.sampled_from(["add", "sub", "xor", "mov"]))
        i1 = draw(st.sampled_from(_REGS32))
        i2 = draw(st.sampled_from(_REGS32))
        return f"{op} {i1}, {i2}"
    if kind == 5:
        op = draw(st.sampled_from(["inc", "dec", "neg", "not"]))
        return f"{op} {r1}"
    return f"imul {r1}, {r2}"


@st.composite
def sequence(draw):
    n = draw(st.integers(2, 8))
    lines = [draw(alu_line()) for _ in range(n)]
    return "\n".join(lines) + "\nmov rax, rdi\nadd rax, rsi\nret"


@settings(max_examples=60, deadline=None)
@given(asm=sequence(),
       a=st.integers(0, 2**64 - 1),
       b=st.integers(0, 2**64 - 1))
def test_lifted_sequence_matches_simulator(asm, a, b):
    img = Image()
    base = img.next_code_addr()
    code, _ = assemble(parse_asm(asm), base=base)
    img.add_function("f", code)
    sim = Simulator(img)
    want = sim.call("f", (a, b)).rax

    m = Module("t")
    f = lift_function(img.memory, base, FunctionSignature(("i", "i"), "i"),
                      LiftOptions(name="f"), m)
    verify(f)
    got = Interpreter(m, img.memory).run(f, [a, b])
    assert got == want, asm

    run_o3(f)
    verify(f)
    got_opt = Interpreter(m, img.memory).run(f, [a, b])
    assert got_opt == want, asm


@settings(max_examples=30, deadline=None)
@given(asm=sequence(),
       a=st.integers(0, 2**64 - 1),
       b=st.integers(0, 2**64 - 1))
def test_dbrew_identity_matches_simulator(asm, a, b):
    from repro.dbrew import Rewriter

    img = Image()
    base = img.next_code_addr()
    code, _ = assemble(parse_asm(asm), base=base)
    img.add_function("f", code)
    sim = Simulator(img)
    want = sim.call("f", (a, b)).rax

    r = Rewriter(img, "f").set_signature(("i", "i"))
    addr = r.rewrite(name="f_db")
    assert addr != base, "identity rewrite must not fall back"
    sim.invalidate_code()
    assert sim.call("f_db", (a, b)).rax == want, asm


@settings(max_examples=30, deadline=None)
@given(asm=sequence(), a=st.integers(0, 2**63 - 1))
def test_dbrew_specialized_matches_simulator(asm, a):
    """Fixing rdi must preserve results for arbitrary rsi (partial values
    flow through cmov/setcc/flags)."""
    from repro.dbrew import Rewriter

    img = Image()
    base = img.next_code_addr()
    code, _ = assemble(parse_asm(asm), base=base)
    img.add_function("f", code)
    sim = Simulator(img)

    r = Rewriter(img, "f").set_signature(("i", "i")).set_par(0, a)
    addr = r.rewrite(name="f_spec")
    assert addr != base
    sim.invalidate_code()
    for b in (0, 1, 2**63, 2**64 - 1):
        assert sim.call("f_spec", (12345, b)).rax == sim.call("f", (a, b)).rax, asm
