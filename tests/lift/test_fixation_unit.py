"""Unit tests for the Sec. IV fixation wrapper builder."""

import struct

import pytest

from repro.cc import compile_c
from repro.errors import LiftError
from repro.ir import Interpreter, Module, verify
from repro.ir.passes import run_o3
from repro.lift import FunctionSignature, LiftOptions, lift_function
from repro.lift.fixation import FixedMemory, build_fixation_wrapper


@pytest.fixture
def lifted():
    prog = compile_c("""
    double f(double* cfg, long n, double x) {
        double acc = 0.0;
        for (long i = 0; i < n; i++) acc = acc * x + cfg[i];
        return acc;
    }
    """)
    img = prog.image
    m = Module("t")
    func = lift_function(img.memory, img.symbol("f"),
                         FunctionSignature(("i", "i", "f"), "f"),
                         LiftOptions(name="f"), m)
    return img, m, func


def test_wrapper_keeps_full_signature(lifted):
    img, m, func = lifted
    data = img.alloc_data(16, data=struct.pack("<2d", 2.0, 5.0))
    w = build_fixation_wrapper(m, func, {0: FixedMemory(data, 16), 1: 2},
                               img.memory, name="w")
    verify(w)
    assert len(w.args) == len(func.args)  # drop-in replacement (Sec. II)
    assert func.always_inline


def test_wrapper_specializes_through_o3(lifted):
    img, m, func = lifted
    data = img.alloc_data(16, data=struct.pack("<2d", 2.0, 5.0))
    w = build_fixation_wrapper(m, func, {0: FixedMemory(data, 16), 1: 2},
                               img.memory, name="w")
    run_o3(w)
    verify(w)
    # 2*x + 5 at x=3 -> 11; fixed args ignored
    got = Interpreter(m, img.memory).run(w, [0, 999, 3.0])
    assert got == 11.0
    # fully specialized: no call, no loop, no loads
    opcodes = {i.opcode for i in w.instructions()}
    assert "call" not in opcodes and "load" not in opcodes


def test_wrapper_fixes_double_parameter(lifted):
    img, m, func = lifted
    data = img.alloc_data(16, data=struct.pack("<2d", 1.0, 0.0))
    w = build_fixation_wrapper(
        m, func, {0: FixedMemory(data, 16), 1: 2, 2: 10.0},
        img.memory, name="w2",
    )
    run_o3(w)
    got = Interpreter(m, img.memory).run(w, [0, 0, 0.0])
    assert got == 10.0  # 1*10 + 0


def test_wrapper_rejects_bad_index(lifted):
    img, m, func = lifted
    with pytest.raises(LiftError, match="out of range"):
        build_fixation_wrapper(m, func, {9: 1}, img.memory, name="bad1")


def test_wrapper_rejects_type_mismatch(lifted):
    img, m, func = lifted
    with pytest.raises(LiftError, match="does not match"):
        build_fixation_wrapper(m, func, {2: 7}, img.memory, name="bad2")
    with pytest.raises(LiftError, match="does not match"):
        build_fixation_wrapper(m, func, {0: 2.5}, img.memory, name="bad3")


def test_wrapper_copies_memory_snapshot(lifted):
    """The global holds a *copy*: later writes to the region don't leak in."""
    img, m, func = lifted
    data = img.alloc_data(16, data=struct.pack("<2d", 3.0, 4.0))
    w = build_fixation_wrapper(m, func, {0: FixedMemory(data, 16), 1: 2},
                               img.memory, name="w3")
    img.memory.write_f64(data, 99.0)  # runtime change after fixation
    run_o3(w)
    got = Interpreter(m, img.memory).run(w, [0, 0, 1.0])
    assert got == 7.0  # snapshot 3+4, not 99+4
