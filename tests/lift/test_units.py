"""Lifter building blocks in isolation: regfile facets, flag conditions,
memory operands, segment overrides."""

import pytest

from repro.cpu import Image, Simulator
from repro.ir import (
    DOUBLE, I1, I8, I64, I128, Function, FunctionType, IRBuilder,
    Interpreter, Module, Undef, V2F64, verify, print_function,
)
from repro.ir.values import Constant
from repro.lift import FunctionSignature, LiftOptions, lift_function
from repro.lift.flags import FlagModel
from repro.lift.regfile import RegFile, RegState
from repro.x86 import parse_asm
from repro.x86.asm import assemble


@pytest.fixture
def env():
    m = Module("t")
    f = Function("t", FunctionType(I64, (I64, I64)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    state = RegState.fresh()
    regs = RegFile(state, b, facet_cache=True)
    return m, f, b, state, regs


# -- regfile -------------------------------------------------------------------


def test_gpr_write32_zexts(env):
    m, f, b, state, regs = env
    regs.write_gpr(0, Constant(I8, 7), 1)  # write al
    v = regs.read_gpr(0, 8)
    b.ret(v)
    verify_entry(f)


def verify_entry(f):
    IRBuilder(f.entry)  # ensure terminator exists for verify
    if f.entry.terminator is None:
        IRBuilder(f.entry).ret(Constant(I64, 0))
    verify(f)


def test_facet_cache_hit_returns_same_value(env):
    _m, f, b, state, regs = env
    v1 = regs.read_gpr(3, 4)
    v2 = regs.read_gpr(3, 4)
    assert v1 is v2  # cached trunc


def test_facet_cache_invalidated_on_write(env):
    _m, f, b, state, regs = env
    v1 = regs.read_gpr(3, 4)
    regs.write_gpr(3, Constant(I64, 5), 8)
    v2 = regs.read_gpr(3, 4)
    assert v1 is not v2


def test_no_cache_materializes_each_time():
    m = Module("t")
    f = Function("t", FunctionType(I64, ()))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    regs = RegFile(RegState.fresh(), b, facet_cache=False)
    v1 = regs.read_gpr(3, 4)
    v2 = regs.read_gpr(3, 4)
    assert v1 is not v2


def test_xmm_f64_facet_via_extract(env):
    _m, f, b, state, regs = env
    v = regs.read_xmm_f64(2)
    assert v.opcode == "extractelement"


def test_xmm_scalar_write_preserves_upper(env):
    _m, f, b, state, regs = env
    from repro.ir.values import ConstantFP
    regs.write_xmm_f64_low_preserve(1, ConstantFP(DOUBLE, 2.0))
    # canonical is a bitcast of an insertelement into the OLD vector
    canon = state.xmm[1]
    assert canon.opcode == "bitcast"
    assert canon.operands[0].opcode == "insertelement"


def test_xmm_zero_rest_uses_zeroinitializer(env):
    _m, f, b, state, regs = env
    from repro.ir.values import ConstantFP, ConstantVector
    regs.write_xmm_f64_zero_rest(1, ConstantFP(DOUBLE, 2.0))
    insert = state.xmm[1].operands[0]
    assert isinstance(insert.operands[0], ConstantVector)


def test_pointer_facet_inttoptr(env):
    _m, f, b, state, regs = env
    p1 = regs.read_gpr_ptr(7)
    p2 = regs.read_gpr_ptr(7)
    assert p1 is p2 and p1.opcode == "inttoptr"


# -- flag model --------------------------------------------------------------


def flag_env():
    m = Module("t")
    f = Function("t", FunctionType(I1, (I64, I64)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    regs = RegFile(RegState.fresh(), b, facet_cache=True)
    return m, f, b, regs


@pytest.mark.parametrize("cc,pred", [
    ("l", "slt"), ("ge", "sge"), ("le", "sle"), ("g", "sgt"),
    ("b", "ult"), ("ae", "uge"), ("e", "eq"), ("ne", "ne"),
])
def test_flag_cache_predicates(cc, pred):
    m, f, b, regs = flag_env()
    flags = FlagModel(regs, b, flag_cache=True)
    a, c = f.args
    r = b.sub(a, c)
    flags.set_after_sub(a, c, r, is_cmp=True)
    cond = flags.condition(cc)
    assert cond.opcode == "icmp" and cond.pred == pred
    assert cond.operands[0] is a and cond.operands[1] is c


def test_flag_cache_invalidated_by_add():
    m, f, b, regs = flag_env()
    flags = FlagModel(regs, b, flag_cache=True)
    a, c = f.args
    flags.set_after_sub(a, c, b.sub(a, c), is_cmp=True)
    flags.set_after_add(a, c, b.add(a, c))
    cond = flags.condition("l")
    assert cond.opcode != "icmp" or cond.operands[0] is not a  # from bits


def test_test_idiom_cache():
    m, f, b, regs = flag_env()
    flags = FlagModel(regs, b, flag_cache=True)
    a, _ = f.args
    r = b.and_(a, a)
    flags.set_after_logic(r, cache_test=(a, a))
    cond = flags.condition("le")
    assert cond.opcode == "icmp" and cond.pred == "sle"
    assert isinstance(cond.operands[1], Constant) and cond.operands[1].value == 0


_CC_PY = {
    "e": lambda sa, sb: sa == sb,
    "ne": lambda sa, sb: sa != sb,
    "l": lambda sa, sb: sa < sb,
    "ge": lambda sa, sb: sa >= sb,
    "le": lambda sa, sb: sa <= sb,
    "g": lambda sa, sb: sa > sb,
}
_CC_PY_UNSIGNED = {
    "b": lambda a, b: a < b,
    "ae": lambda a, b: a >= b,
    "be": lambda a, b: a <= b,
    "a": lambda a, b: a > b,
}


@pytest.mark.parametrize("cc", sorted(_CC_PY) + sorted(_CC_PY_UNSIGNED))
def test_conditions_from_bits_semantics(cc):
    """Every cc must evaluate correctly when built from raw flag bits
    (the Fig. 6b fallback path, flag cache disabled)."""
    for a_val, b_val in [(3, 9), (9, 3), (5, 5), (2**63, 1), (1, 2**63),
                         (0, 0), (2**64 - 1, 1)]:
        m, f, b, regs = flag_env()
        flags = FlagModel(regs, b, flag_cache=False)
        a = Constant(I64, a_val)
        c = Constant(I64, b_val)
        r = b.sub(a, c)
        flags.set_after_sub(a, c, r)
        b.ret(flags.condition(cc))
        verify(f)
        got = Interpreter(m).run(f, [0, 0])
        if cc in _CC_PY:
            sa = a_val - 2**64 if a_val >= 2**63 else a_val
            sb = b_val - 2**64 if b_val >= 2**63 else b_val
            want = int(_CC_PY[cc](sa, sb))
        else:
            want = int(_CC_PY_UNSIGNED[cc](a_val, b_val))
        assert got == want, (cc, a_val, b_val)


# -- segment overrides ---------------------------------------------------------


def test_fs_gs_lift_to_address_spaces():
    img = Image()
    base = img.next_code_addr()
    code, _ = assemble(parse_asm("""
        mov rax, qword ptr fs:[0x10]
        mov rdx, qword ptr gs:[0x20]
        add rax, rdx
        ret
    """), base=base)
    img.add_function("f", code)
    m = Module("t")
    f = lift_function(img.memory, base, FunctionSignature((), "i"),
                      LiftOptions(name="f"), m)
    verify(f)
    text = print_function(f)
    # Sec. III-E: fs -> addrspace 257, gs -> addrspace 256
    assert "addrspace(257)" in text
    assert "addrspace(256)" in text
