"""Lifter tests: semantics preservation (simulator vs interpreted lifted IR),
block discovery, facets, flags, and the Fig. 5/6 examples."""

import struct

import pytest

from repro.cc import compile_c
from repro.cpu import Image, Simulator
from repro.errors import LiftError
from repro.ir import Interpreter, Module, print_function, verify
from repro.ir.passes import run_o3
from repro.lift import FunctionSignature, LiftOptions, lift_function
from repro.lift.blocks import discover
from repro.x86 import parse_asm
from repro.x86.asm import assemble


def lift_c(src, fn, signature, *, options=None, optimize=False):
    """Compile C, lift fn, return (image, simulator, module, function)."""
    prog = compile_c(src)
    img = prog.image
    m = Module("t")
    opts = options or LiftOptions()
    opts.name = fn + ".lifted"
    f = lift_function(img.memory, img.symbol(fn), signature, opts, m)
    verify(f)
    if optimize:
        run_o3(f)
        verify(f)
    return img, Simulator(img), m, f


def check_int(src, fn, params, cases, *, optimize=True):
    img, sim, m, f = lift_c(src, fn, FunctionSignature(params, "i"),
                            optimize=optimize)
    interp = Interpreter(m, img.memory)
    for args in cases:
        uargs = tuple(a & (2**64 - 1) for a in args)
        want = sim.call_int(fn, uargs)
        got = interp.run(f, list(uargs))
        got_signed = got - 2**64 if got >= 2**63 else got
        assert got_signed == want, (args, got_signed, want)


# -- arithmetic / control flow ----------------------------------------------------


def test_lift_arith():
    check_int("long f(long a, long b) { return (a + b) * (a - b); }",
              "f", ("i", "i"), [(3, 2), (10, -4), (0, 0)])


def test_lift_division():
    check_int("long f(long a, long b) { return a / b + a % b; }",
              "f", ("i", "i"), [(100, 7), (-100, 7)])


def test_lift_bitops_shifts():
    check_int("long f(long a, long b) { return ((a & b) | (a ^ 12)) << 2 >> 1; }",
              "f", ("i", "i"), [(0b1100, 0b1010), (255, 1)])


def test_lift_comparisons_and_branches():
    src = """
    long f(long a, long b) {
        if (a < b) return 1;
        if (a == b) return 2;
        if (a > 100) return 3;
        return 4;
    }
    """
    check_int(src, "f", ("i", "i"), [(1, 2), (2, 2), (200, 2), (50, 2)])


def test_lift_jcc_to_fallthrough_single_edge():
    # `a < a` branches compile to a Jcc whose target IS the fall-through
    # block; the lifter must emit one CFG edge (an unconditional br), or the
    # successor's phis list the predecessor twice (hypothesis-found)
    src = """
    long f(long a, long b) {
        long x = a;
        if (a < a) { x = b; } else { if (a < a) { x = x; } }
        return x;
    }
    """
    img, sim, m, f = lift_c(src, "f", FunctionSignature(("i", "i"), "i"))
    for blk in f.blocks:
        preds = list(f.predecessors(blk))
        assert len(preds) == len(set(preds)), blk.name
    check_int(src, "f", ("i", "i"), [(0, 0), (5, 9), (-3, 7)])


def test_lift_unsigned_compare():
    check_int("long f(unsigned long a, unsigned long b) { return a < b; }",
              "f", ("i", "i"), [(1, 2), (-1, 2), (2, -1)])


def test_lift_loop():
    src = "long f(long n) { long s = 0; for (long i = 0; i < n; i++) s += i; return s; }"
    check_int(src, "f", ("i",), [(0,), (1,), (10,), (100,)])


def test_lift_nested_loops():
    src = """
    long f(long n) {
        long s = 0;
        for (long i = 0; i < n; i++)
            for (long j = 0; j <= i; j++)
                s += j;
        return s;
    }
    """
    check_int(src, "f", ("i",), [(0,), (3,), (7,)])


def test_lift_narrow_int_semantics():
    src = "int f(int a, int b) { return a * b; }"
    check_int(src, "f", ("i", "i"), [(70000, 70000), (-5, 7)])


def test_lift_char_access():
    src = "long f(char* p, long i) { return p[i]; }"
    prog = compile_c(src)
    img = prog.image
    a = img.alloc_data(8)
    img.memory.write(a, bytes([0x7F, 0x80, 0x01, 0xFF, 0, 0, 0, 0]))
    m = Module("t")
    f = lift_function(img.memory, img.symbol("f"),
                      FunctionSignature(("i", "i"), "i"),
                      LiftOptions(name="f.lifted"), m)
    run_o3(f)
    verify(f)
    sim = Simulator(img)
    interp = Interpreter(m, img.memory)
    for i in range(4):
        want = sim.call_int("f", (a, i))
        got = interp.run(f, [a, i])
        assert (got - 2**64 if got >= 2**63 else got) == want


def test_lift_double_math():
    src = "double f(double a, double b) { return a * b + a / b - 1.5; }"
    img, sim, m, f = lift_c(src, "f", FunctionSignature(("f", "f"), "f"),
                            optimize=True)
    interp = Interpreter(m, img.memory)
    for a, b in [(2.0, 4.0), (-1.5, 0.5), (1e10, 3.0)]:
        assert interp.run(f, [a, b]) == sim.call_f64("f", (), (a, b))


def test_lift_double_compare_branch():
    src = "long f(double a, double b) { if (a < b) return 1; return 0; }"
    img, sim, m, f = lift_c(src, "f", FunctionSignature(("f", "f"), "i"),
                            optimize=True)
    interp = Interpreter(m, img.memory)
    for a, b in [(1.0, 2.0), (2.0, 1.0), (1.0, 1.0)]:
        assert interp.run(f, [a, b]) == sim.call_int("f", (), (a, b))


def test_lift_mixed_int_double():
    src = "double f(double* v, long n) { double s = 0.0; for (long i = 0; i < n; i++) s += v[i] * i; return s; }"
    prog = compile_c(src)
    img = prog.image
    a = img.alloc_data(8 * 6)
    img.memory.write(a, struct.pack("<6d", *[0.5, 1.5, 2.5, 3.5, 4.5, 5.5]))
    m = Module("t")
    f = lift_function(img.memory, img.symbol("f"),
                      FunctionSignature(("i", "i"), "f"),
                      LiftOptions(name="g"), m)
    run_o3(f)
    verify(f)
    want = Simulator(img).call_f64("f", (a, 6))
    assert Interpreter(m, img.memory).run(f, [a, 6]) == want


def test_lift_call_with_declared_signature():
    src = """
    long helper(long x) { return x * 3; }
    long f(long a) { return helper(a) + 1; }
    """
    prog = compile_c(src)
    img = prog.image
    m = Module("t")
    opts = LiftOptions(name="f.lifted", known_functions={
        img.symbol("helper"): ("helper", FunctionSignature(("i",), "i")),
    })
    f = lift_function(img.memory, img.symbol("f"),
                      FunctionSignature(("i",), "i"), opts, m)
    verify(f)
    # declared callee is interpreted through an extern hook
    interp = Interpreter(m, img.memory,
                         extern_functions={"helper": lambda x: (x * 3) & (2**64 - 1)})
    assert interp.run(f, [5]) == 16


def test_lift_unknown_call_rejected():
    src = """
    long helper(long x) { return x; }
    long f(long a) { return helper(a); }
    """
    prog = compile_c(src)
    with pytest.raises(LiftError, match="unknown function"):
        lift_function(prog.image.memory, prog.image.symbol("f"),
                      FunctionSignature(("i",), "i"), LiftOptions(name="x"),
                      Module("t"))


def test_lift_stack_promotion():
    # address-taken local forces stack traffic; mem2reg must clean it
    src = """
    void set7(long* p) { *p = *p + 7; }
    long f(long a) { long x = a; set7(&x); return x; }
    """
    prog = compile_c(src)
    img = prog.image
    m = Module("t")
    opts = LiftOptions(name="f.lifted", known_functions={
        img.symbol("set7"): ("set7", FunctionSignature(("i",), None)),
    })
    f = lift_function(img.memory, img.symbol("f"),
                      FunctionSignature(("i",), "i"), opts, m)
    verify(f)


# -- block discovery ---------------------------------------------------------------


def test_discover_splits_jump_targets():
    img = Image()
    base = img.next_code_addr()
    code, _ = assemble(parse_asm("""
        xor eax, eax
    head:
        add rax, 1
        cmp rax, rdi
        jl head
        ret
    """), base=base)
    img.add_function("f", code)
    cfg = discover(img.memory, base)
    assert len(cfg.blocks) == 3  # entry, head (split), after-loop
    starts = sorted(cfg.blocks)
    assert starts[0] == base


def test_discover_rejects_indirect_jump():
    from repro.x86.instr import make, gp
    img = Image()
    # craft: jmp rax is not encodable by our encoder; decode a push as stand-in
    # instead test the call-target variant via raw bytes ff e0 (jmp rax)
    addr = img.next_code_addr()
    img.add_function("f", b"\xff\xe0")
    with pytest.raises(LiftError):
        discover(img.memory, addr)


def test_lifted_block_count_matches_cfg():
    src = "long f(long a) { if (a > 0) return a; return -a; }"
    prog = compile_c(src)
    cfg = discover(prog.image.memory, prog.image.symbol("f"))
    m = Module("t")
    f = lift_function(prog.image.memory, prog.image.symbol("f"),
                      FunctionSignature(("i",), "i"), LiftOptions(name="g"), m)
    # entry block + one IR block per guest block
    assert len(f.blocks) == len(cfg.blocks) + 1


# -- Fig. 5 / Fig. 6 shapes --------------------------------------------------------


def lift_asm(asmtext, signature, name="f"):
    img = Image()
    base = img.next_code_addr()
    code, _ = assemble(parse_asm(asmtext), base=base)
    img.add_function(name, code)
    m = Module("t")
    f = lift_function(img.memory, base, signature, LiftOptions(name=name), m)
    verify(f)
    return img, m, f


def test_fig5_sub_lifts_directly():
    _img, _m, f = lift_asm("sub rax, 1\nret", FunctionSignature((), "i"))
    text = print_function(f)
    assert "sub i64" in text


def test_fig5_addsd_facet_chain():
    _img, _m, f = lift_asm("addsd xmm0, xmm1\nret", FunctionSignature(("f", "f"), "f"))
    text = print_function(f)
    assert "extractelement <2 x double>" in text
    assert "fadd double" in text
    assert "insertelement <2 x double>" in text


def test_fig6_flag_cache_produces_select_icmp():
    asm = """
        mov rax, rdi
        cmp rdi, rsi
        cmovl rax, rsi
        ret
    """
    _img, _m, f = lift_asm(asm, FunctionSignature(("i", "i"), "i"))
    run_o3(f)
    verify(f)
    text = print_function(f)
    # Fig. 6c: single icmp slt + select
    assert "icmp slt i64" in text
    assert "select i1" in text
    assert "xor" not in text


def test_fig6_without_flag_cache_keeps_bit_arithmetic():
    asm = """
        mov rax, rdi
        cmp rdi, rsi
        cmovl rax, rsi
        ret
    """
    img = Image()
    base = img.next_code_addr()
    code, _ = assemble(parse_asm(asm), base=base)
    img.add_function("f", code)
    m = Module("t")
    f = lift_function(img.memory, base, FunctionSignature(("i", "i"), "i"),
                      LiftOptions(name="f", flag_cache=False), m)
    run_o3(f)
    verify(f)
    text = print_function(f)
    # Fig. 6b: xor-of-sign-bits survives the optimizer
    assert "xor" in text
    # and the code is still correct
    interp = Interpreter(m, img.memory)
    sim = Simulator(img)
    for a, b in [(3, 9), (9, 3), (2**63, 5)]:
        assert interp.run(f, [a, b]) == sim.call_int("f", (a, b)) % 2**64


def test_facet_cache_reduces_instruction_count():
    asm = """
        addsd xmm0, xmm1
        addsd xmm0, xmm1
        addsd xmm0, xmm1
        ret
    """
    img = Image()
    base = img.next_code_addr()
    code, _ = assemble(parse_asm(asm), base=base)
    img.add_function("f", code)

    counts = {}
    for cache in (True, False):
        m = Module("t")
        f = lift_function(img.memory, base, FunctionSignature(("f", "f"), "f"),
                          LiftOptions(name="f", facet_cache=cache), m)
        counts[cache] = sum(len(b.instructions) for b in f.blocks)
    assert counts[True] < counts[False]


def test_lift_vectorized_code():
    # movapd / addpd / movupd lift as <2 x double> ops
    asm = """
        movupd xmm0, [rdi]
        movapd xmm1, [rsi]
        addpd xmm0, xmm1
        movupd [rdi], xmm0
        ret
    """
    img = Image()
    base = img.next_code_addr()
    code, _ = assemble(parse_asm(asm), base=base)
    img.add_function("f", code)
    m = Module("t")
    f = lift_function(img.memory, base, FunctionSignature(("i", "i"), None),
                      LiftOptions(name="f"), m)
    verify(f)
    text = print_function(f)
    assert "load <2 x double>" in text
    assert "align 16" in text  # the movapd alignment guarantee is metadata
    a = img.alloc_data(16, align=16)
    bptr = img.alloc_data(16, align=16)
    img.memory.write_f64(a, 1.0)
    img.memory.write_f64(a + 8, 2.0)
    img.memory.write_f64(bptr, 10.0)
    img.memory.write_f64(bptr + 8, 20.0)
    Interpreter(m, img.memory).run(f, [a, bptr])
    assert img.memory.read_f64(a) == 11.0
    assert img.memory.read_f64(a + 8) == 22.0


def test_lift_ret_f64_signature():
    _img, m, f = lift_asm("movsd xmm0, xmm1\nret", FunctionSignature(("f", "f"), "f"))
    assert Interpreter(m).run(f, [1.0, 2.5]) == 2.5
