"""Differential tests for the SSE shuffle/horizontal lifting rules."""

import struct

import pytest

from repro.cpu import Image, Simulator
from repro.ir import Interpreter, Module, verify
from repro.ir.passes import run_o3
from repro.lift import FunctionSignature, LiftOptions, lift_function
from repro.x86 import parse_asm
from repro.x86.asm import assemble


def run_both(asm, int_args=(), f64_args=(), data=None, *, optimize=True):
    """Execute asm natively and as lifted IR; return both xmm0 doubles."""
    img = Image()
    base = img.next_code_addr()
    code, _ = assemble(parse_asm(asm), base=base)
    img.add_function("f", code)
    if data:
        addr = img.alloc_data(len(data) * 8, align=16,
                              data=struct.pack(f"<{len(data)}d", *data))
        int_args = (addr,) + tuple(int_args)
    sig = FunctionSignature(
        tuple("i" for _ in int_args) + tuple("f" for _ in f64_args), "f"
    )
    sim = Simulator(img)
    want = sim.call("f", tuple(int_args), tuple(f64_args)).f64_value

    m = Module("t")
    f = lift_function(img.memory, base, sig, LiftOptions(name="f"), m)
    verify(f)
    if optimize:
        run_o3(f)
        verify(f)
    got = Interpreter(m, img.memory).run(f, list(int_args) + list(f64_args))
    return want, got


@pytest.mark.parametrize("optimize", [False, True])
def test_unpcklpd(optimize):
    # xmm0 = [a, b]; unpcklpd xmm0, xmm1 -> [a, c]; high lane via unpckhpd
    want, got = run_both("""
        unpcklpd xmm0, xmm1
        unpckhpd xmm0, xmm0
        ret
    """, f64_args=(1.5, 2.5), optimize=optimize)
    # unpcklpd -> [a, b]; unpckhpd x,x broadcasts the high lane -> b
    assert got == want == 2.5


@pytest.mark.parametrize("sel", [0, 1, 2, 3])
def test_shufpd_all_selectors(sel):
    asm = f"""
        movupd xmm0, [rdi]
        movupd xmm1, [rdi + 0x10]
        shufpd xmm0, xmm1, {sel}
        ret
    """
    data = [10.0, 11.0, 20.0, 21.0]
    want, got = run_both(asm, data=data)
    assert got == want == data[sel & 1]


@pytest.mark.parametrize("sel", [0, 1, 2, 3])
def test_shufpd_high_lane(sel):
    asm = f"""
        movupd xmm0, [rdi]
        movupd xmm1, [rdi + 0x10]
        shufpd xmm0, xmm1, {sel}
        unpckhpd xmm0, xmm0
        ret
    """
    data = [10.0, 11.0, 20.0, 21.0]
    want, got = run_both(asm, data=data)
    assert got == want == data[2 + ((sel >> 1) & 1)]


def test_haddpd():
    asm = """
        movupd xmm0, [rdi]
        movupd xmm1, [rdi + 0x10]
        haddpd xmm0, xmm1
        ret
    """
    data = [1.0, 2.0, 10.0, 20.0]
    want, got = run_both(asm, data=data)
    assert got == want == 3.0
    # high lane = sum of xmm1's lanes
    asm2 = asm.replace("ret", "unpckhpd xmm0, xmm0\nret")
    want2, got2 = run_both(asm2, data=data)
    assert got2 == want2 == 30.0


def test_horizontal_reduce_idiom():
    """The classic vector-sum epilogue: haddpd then scalar use."""
    asm = """
        movupd xmm0, [rdi]
        movupd xmm1, [rdi + 0x10]
        addpd xmm0, xmm1
        haddpd xmm0, xmm0
        ret
    """
    data = [1.0, 2.0, 3.0, 4.0]
    want, got = run_both(asm, data=data)
    assert got == want == 10.0


def test_movlpd_movhpd_pair():
    # the split-load idiom the JIT itself emits for unaligned vector loads
    want, got = run_both("""
        movlpd xmm0, [rdi]
        movhpd xmm0, [rdi + 8]
        haddpd xmm0, xmm0
        ret
    """, data=[4.0, 5.0])
    assert got == want == 9.0


def test_movhpd_store_form():
    asm = """
        movupd xmm0, [rdi]
        movhpd [rdi + 0x10], xmm0
        movsd xmm0, [rdi + 0x10]
        ret
    """
    want, got = run_both(asm, data=[1.25, 7.75, 0.0])
    assert got == want == 7.75


def test_xorps_andpd_orpd_bitwise():
    want, got = run_both("""
        xorpd xmm0, xmm1
        xorpd xmm0, xmm1
        ret
    """, f64_args=(3.25, 7.5))
    assert got == want == 3.25  # double-xor is identity


def test_pand_por_combination():
    # (a AND mask) OR (b AND NOT mask) with mask = all ones -> a
    want, got = run_both("""
        pand xmm0, xmm2
        por xmm0, xmm1
        ret
    """, f64_args=(2.0, 0.0, 0.0))
    # xmm2 = 0.0 -> pand zeroes xmm0; por with xmm1=0 -> +0.0
    assert got == want == 0.0
