"""Instruction-level semantics tests (flags, facets, SSE lanes)."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.semantics import bits_to_f64, execute, f64_to_bits
from repro.cpu.state import CPUState, to_signed
from repro.mem.memory import Memory
from repro.x86.instr import Imm, Mem, gp, make, xmm
from repro.x86.registers import RAX, RBX, RCX, RDX, RSI, RSP


@pytest.fixture
def env():
    st_ = CPUState()
    mem = Memory()
    mem.map(0x1000, 0x1000)
    st_.gpr[RSP] = 0x1800
    return st_, mem


def run(env, *instrs):
    st_, mem = env
    for ins in instrs:
        execute(ins, st_, mem)
    return st_


# -- facets ----------------------------------------------------------------


def test_write32_zeroes_upper(env):
    st_, mem = env
    st_.gpr[RAX] = 0xFFFFFFFF_FFFFFFFF
    execute(make("mov", gp(RAX, 4), Imm(1)), st_, mem)
    assert st_.gpr[RAX] == 1


def test_write16_preserves_upper(env):
    st_, mem = env
    st_.gpr[RAX] = 0x11223344_55667788
    execute(make("mov", gp(RAX, 2), Imm(0xAAAA)), st_, mem)
    assert st_.gpr[RAX] == 0x11223344_5566AAAA


def test_write8_high_preserves_rest(env):
    st_, mem = env
    st_.gpr[RAX] = 0x11223344_55667788
    execute(make("mov", gp(RAX, 1, high8=True), Imm(0xCC)), st_, mem)
    assert st_.gpr[RAX] == 0x11223344_5566CC88


def test_read_high8(env):
    st_, mem = env
    st_.gpr[RAX] = 0xABCD
    execute(make("mov", gp(RBX, 1), gp(RAX, 1, high8=True)), st_, mem)
    assert st_.gpr[RBX] & 0xFF == 0xAB


# -- integer flags ------------------------------------------------------------


def test_add_carry(env):
    st_ = run(env,
              make("mov", gp(RAX), Imm(-1)),
              make("add", gp(RAX), Imm(1)))
    assert st_.gpr[RAX] == 0
    assert st_.cf and st_.zf and not st_.of


def test_add_overflow(env):
    st_, mem = env
    st_.gpr[RAX] = 0x7FFFFFFF_FFFFFFFF
    execute(make("add", gp(RAX), Imm(1)), st_, mem)
    assert st_.of and st_.sf and not st_.cf


def test_sub_borrow(env):
    st_ = run(env, make("mov", gp(RAX), Imm(3)), make("sub", gp(RAX), Imm(5)))
    assert to_signed(st_.gpr[RAX], 64) == -2
    assert st_.cf and st_.sf


def test_cmp_signed_less(env):
    st_, mem = env
    st_.gpr[RAX] = to_signed(-10, 64) & (2**64 - 1)
    st_.gpr[RBX] = 5
    execute(make("cmp", gp(RAX), gp(RBX)), st_, mem)
    assert st_.sf != st_.of  # "l" condition holds


def test_inc_preserves_carry(env):
    st_, mem = env
    st_.cf = True
    execute(make("inc", gp(RAX)), st_, mem)
    assert st_.cf


def test_logic_clears_cf_of(env):
    st_, mem = env
    st_.cf = st_.of = True
    st_.gpr[RAX] = 0
    execute(make("test", gp(RAX), gp(RAX)), st_, mem)
    assert not st_.cf and not st_.of and st_.zf


def test_neg_flags(env):
    st_, mem = env
    st_.gpr[RAX] = 5
    execute(make("neg", gp(RAX)), st_, mem)
    assert to_signed(st_.gpr[RAX], 64) == -5
    assert st_.cf


def test_imul3(env):
    st_, mem = env
    st_.gpr[RBX] = 7
    execute(make("imul", gp(RAX), gp(RBX), Imm(649)), st_, mem)
    assert st_.gpr[RAX] == 7 * 649


def test_imul_one_operand_widening(env):
    st_, mem = env
    st_.gpr[RAX] = 2**62
    st_.gpr[RBX] = 4
    execute(make("imul", gp(RBX)), st_, mem)
    assert st_.gpr[RDX] == 1  # 2^64 in rdx:rax
    assert st_.gpr[RAX] == 0


def test_idiv(env):
    st_, mem = env
    st_.gpr[RAX] = to_signed(-100, 64) & (2**64 - 1)
    execute(make("cqo"), st_, mem)
    st_.gpr[RBX] = 7
    execute(make("idiv", gp(RBX)), st_, mem)
    assert to_signed(st_.gpr[RAX], 64) == -14
    assert to_signed(st_.gpr[RDX], 64) == -2


def test_shl_shifts_and_cf(env):
    st_, mem = env
    st_.gpr[RAX] = 0x8000000000000001
    execute(make("shl", gp(RAX), Imm(1)), st_, mem)
    assert st_.gpr[RAX] == 2
    assert st_.cf


def test_sar_arithmetic(env):
    st_, mem = env
    st_.gpr[RAX] = to_signed(-16, 64) & (2**64 - 1)
    execute(make("sar", gp(RAX), Imm(2)), st_, mem)
    assert to_signed(st_.gpr[RAX], 64) == -4


def test_cmovl_taken_and_not(env):
    st_, mem = env
    st_.gpr[RAX] = 1
    st_.gpr[RBX] = 2
    st_.sf, st_.of = True, False  # l
    execute(make("cmovl", gp(RAX), gp(RBX)), st_, mem)
    assert st_.gpr[RAX] == 2
    st_.sf = False  # ge
    st_.gpr[RBX] = 9
    execute(make("cmovl", gp(RAX), gp(RBX)), st_, mem)
    assert st_.gpr[RAX] == 2


def test_setcc(env):
    st_, mem = env
    st_.zf = True
    execute(make("sete", gp(RAX, 1)), st_, mem)
    assert st_.gpr[RAX] & 0xFF == 1


# -- memory ops -------------------------------------------------------------


def test_mov_store_load(env):
    st_, mem = env
    st_.gpr[RAX] = 0xDEADBEEF
    execute(make("mov", Mem(8, base=gp(RSP), disp=-8), gp(RAX)), st_, mem)
    execute(make("mov", gp(RBX), Mem(8, base=gp(RSP), disp=-8)), st_, mem)
    assert st_.gpr[RBX] == 0xDEADBEEF


def test_push_pop(env):
    st_, mem = env
    st_.gpr[RAX] = 42
    rsp0 = st_.gpr[RSP]
    execute(make("push", gp(RAX)), st_, mem)
    assert st_.gpr[RSP] == rsp0 - 8
    st_.gpr[RAX] = 0
    execute(make("pop", gp(RAX)), st_, mem)
    assert st_.gpr[RAX] == 42 and st_.gpr[RSP] == rsp0


def test_lea_computes_address_only(env):
    st_, mem = env
    st_.gpr[RSI] = 0x100
    st_.gpr[RCX] = 3
    execute(make("lea", gp(RAX), Mem(8, base=gp(RSI), index=gp(RCX), scale=8, disp=5)), st_, mem)
    assert st_.gpr[RAX] == 0x100 + 24 + 5


def test_movzx_movsx(env):
    st_, mem = env
    mem.write_u8(0x1100, 0xF0)
    execute(make("movzx", gp(RAX, 4), Mem(1, disp=0x1100)), st_, mem)
    assert st_.gpr[RAX] == 0xF0
    execute(make("movsx", gp(RBX, 4), Mem(1, disp=0x1100)), st_, mem)
    assert st_.gpr[RBX] == 0xFFFFFFF0


# -- SSE ----------------------------------------------------------------------


def test_addsd_preserves_upper_lane(env):
    st_, mem = env
    st_.xmm[0] = f64_to_bits(1.5) | (f64_to_bits(99.0) << 64)
    st_.xmm[1] = f64_to_bits(2.25)
    execute(make("addsd", xmm(0), xmm(1)), st_, mem)
    assert bits_to_f64(st_.xmm[0]) == 3.75
    assert bits_to_f64(st_.xmm[0] >> 64) == 99.0


def test_movsd_load_zeroes_upper(env):
    st_, mem = env
    mem.write_f64(0x1200, 7.0)
    st_.xmm[0] = (1 << 127) | f64_to_bits(1.0)
    execute(make("movsd", xmm(0), Mem(8, disp=0x1200)), st_, mem)
    assert st_.xmm[0] == f64_to_bits(7.0)


def test_movsd_reg_reg_preserves_upper(env):
    st_, mem = env
    st_.xmm[0] = f64_to_bits(1.0) | (f64_to_bits(5.0) << 64)
    st_.xmm[1] = f64_to_bits(2.0)
    execute(make("movsd", xmm(0), xmm(1)), st_, mem)
    assert bits_to_f64(st_.xmm[0]) == 2.0
    assert bits_to_f64(st_.xmm[0] >> 64) == 5.0


def test_movq_zeroes_upper(env):
    st_, mem = env
    st_.gpr[RCX] = f64_to_bits(3.0)
    st_.xmm[3] = (1 << 127)
    execute(make("movq", xmm(3), gp(RCX)), st_, mem)
    assert st_.xmm[3] == f64_to_bits(3.0)


def test_addpd_both_lanes(env):
    st_, mem = env
    st_.xmm[2] = f64_to_bits(1.0) | (f64_to_bits(10.0) << 64)
    st_.xmm[3] = f64_to_bits(2.0) | (f64_to_bits(20.0) << 64)
    execute(make("addpd", xmm(2), xmm(3)), st_, mem)
    assert bits_to_f64(st_.xmm[2]) == 3.0
    assert bits_to_f64(st_.xmm[2] >> 64) == 30.0


def test_movapd_misaligned_faults(env):
    st_, mem = env
    from repro.errors import SimulatorError
    with pytest.raises(SimulatorError):
        execute(make("movapd", xmm(0), Mem(16, disp=0x1008)), st_, mem)


def test_movupd_misaligned_ok(env):
    st_, mem = env
    mem.write_f64(0x1008, 4.0)
    mem.write_f64(0x1010, 8.0)
    execute(make("movupd", xmm(0), Mem(16, disp=0x1008)), st_, mem)
    assert bits_to_f64(st_.xmm[0]) == 4.0
    assert bits_to_f64(st_.xmm[0] >> 64) == 8.0


def test_unpckhpd_broadcasts_high(env):
    st_, mem = env
    st_.xmm[2] = f64_to_bits(1.0) | (f64_to_bits(2.0) << 64)
    execute(make("unpckhpd", xmm(2), xmm(2)), st_, mem)
    assert bits_to_f64(st_.xmm[2]) == 2.0
    assert bits_to_f64(st_.xmm[2] >> 64) == 2.0


def test_haddpd(env):
    st_, mem = env
    st_.xmm[1] = f64_to_bits(1.0) | (f64_to_bits(2.0) << 64)
    execute(make("haddpd", xmm(1), xmm(1)), st_, mem)
    assert bits_to_f64(st_.xmm[1]) == 3.0


def test_ucomisd_flags(env):
    st_, mem = env
    st_.xmm[0] = f64_to_bits(1.0)
    st_.xmm[1] = f64_to_bits(2.0)
    execute(make("ucomisd", xmm(0), xmm(1)), st_, mem)
    assert st_.cf and not st_.zf  # below
    execute(make("ucomisd", xmm(1), xmm(0)), st_, mem)
    assert not st_.cf and not st_.zf  # above
    execute(make("ucomisd", xmm(0), xmm(0)), st_, mem)
    assert st_.zf and not st_.cf  # equal


def test_ucomisd_nan_unordered(env):
    st_, mem = env
    st_.xmm[0] = f64_to_bits(float("nan"))
    execute(make("ucomisd", xmm(0), xmm(0)), st_, mem)
    assert st_.zf and st_.pf and st_.cf


def test_cvtsi2sd_cvttsd2si(env):
    st_, mem = env
    st_.gpr[RAX] = to_signed(-7, 64) & (2**64 - 1)
    execute(make("cvtsi2sd", xmm(0), gp(RAX)), st_, mem)
    assert bits_to_f64(st_.xmm[0]) == -7.0
    st_.xmm[1] = f64_to_bits(-2.9)
    execute(make("cvttsd2si", gp(RBX), xmm(1)), st_, mem)
    assert to_signed(st_.gpr[RBX], 64) == -2  # truncation toward zero


def test_pxor_self_zeroes(env):
    st_, mem = env
    st_.xmm[5] = (1 << 128) - 1
    execute(make("pxor", xmm(5), xmm(5)), st_, mem)
    assert st_.xmm[5] == 0


def test_divsd_by_zero_gives_inf(env):
    st_, mem = env
    st_.xmm[0] = f64_to_bits(1.0)
    st_.xmm[1] = f64_to_bits(0.0)
    execute(make("divsd", xmm(0), xmm(1)), st_, mem)
    assert bits_to_f64(st_.xmm[0]) == float("inf")


# -- property: 64-bit add matches Python modular arithmetic --------------------


@given(a=st.integers(min_value=0, max_value=2**64 - 1),
       b=st.integers(min_value=0, max_value=2**64 - 1))
def test_add_modular_property(a, b):
    st_ = CPUState()
    mem = Memory()
    st_.gpr[RAX] = a
    st_.gpr[RBX] = b
    execute(make("add", gp(RAX), gp(RBX)), st_, mem)
    assert st_.gpr[RAX] == (a + b) % 2**64
    assert st_.cf == (a + b >= 2**64)
    assert st_.zf == ((a + b) % 2**64 == 0)


@given(a=st.floats(allow_nan=False, allow_infinity=False, width=64),
       b=st.floats(allow_nan=False, allow_infinity=False, width=64))
def test_mulsd_matches_ieee(a, b):
    st_ = CPUState()
    mem = Memory()
    st_.xmm[0] = f64_to_bits(a)
    st_.xmm[1] = f64_to_bits(b)
    execute(make("mulsd", xmm(0), xmm(1)), st_, mem)
    expect = struct.unpack("<d", struct.pack("<d", a * b))[0]
    got = bits_to_f64(st_.xmm[0])
    assert got == expect or (got != got and expect != expect)
