"""Image allocator and symbol-table tests."""

import pytest

from repro.cpu.image import CODE_BASE, DATA_BASE, JIT_BASE, RODATA_BASE, Image
from repro.errors import SimulatorError


def test_regions_mapped():
    img = Image()
    for base in (CODE_BASE, RODATA_BASE, DATA_BASE, JIT_BASE):
        assert img.memory.is_mapped(base, 16)


def test_add_function_and_lookup():
    img = Image()
    addr = img.add_function("f", b"\xc3")
    assert img.symbol("f") == addr
    assert img.function_bytes("f") == b"\xc3"
    assert img.symbol_at(addr) == "f"
    assert img.symbol_at(addr + 1) is None


def test_jit_functions_live_in_jit_region():
    img = Image()
    static = img.add_function("a", b"\x90\xc3")
    jitted = img.add_function("b", b"\x90\xc3", jit=True)
    assert CODE_BASE <= static < RODATA_BASE
    assert jitted >= JIT_BASE


def test_alloc_alignment():
    img = Image()
    img.alloc_data(3, align=8)
    a = img.alloc_data(8, align=16)
    assert a % 16 == 0
    r = img.alloc_rodata(b"xy", align=32)
    assert r % 32 == 0


def test_alloc_data_with_initializer():
    img = Image()
    a = img.alloc_data(16, data=b"hello")
    assert img.memory.read(a, 5) == b"hello"
    assert img.memory.read(a + 5, 3) == b"\x00\x00\x00"


def test_region_exhaustion():
    img = Image(rodata_size=64)
    img.alloc_rodata(b"\x00" * 48)
    with pytest.raises(SimulatorError, match="exhausted"):
        img.alloc_rodata(b"\x00" * 48)


def test_undefined_symbol_raises():
    img = Image()
    with pytest.raises(SimulatorError, match="undefined symbol"):
        img.symbol("missing")


def test_next_code_addr_matches_allocation():
    img = Image()
    predicted = img.next_code_addr()
    got = img.add_function("f", b"\xc3" * 5)
    assert got == predicted
    predicted_jit = img.next_code_addr(jit=True)
    got_jit = img.add_function("g", b"\xc3", jit=True)
    assert got_jit == predicted_jit


def test_patch_code_bumps_generation_and_fires_hooks():
    img = Image()
    addr = img.add_function("f", b"\x90\xc3")
    fired = []
    img.add_invalidation_hook(lambda a, s: fired.append((a, s)))
    img.patch_code(addr, b"\xc3\xc3")
    assert img.memory.read(addr, 2) == b"\xc3\xc3"
    assert img.generation == 1
    assert fired == [(addr, 2)]


def test_patch_code_is_atomic_when_a_hook_raises():
    img = Image()
    addr = img.add_function("f", b"\x90\xc3")

    def bad_hook(a, s):
        raise RuntimeError("cache exploded")

    img.add_invalidation_hook(bad_hook)
    with pytest.raises(RuntimeError, match="cache exploded"):
        img.patch_code(addr, b"\xc3\xc3")
    # previous bytes and generation restored: no half-patched image
    assert img.memory.read(addr, 2) == b"\x90\xc3"
    assert img.generation == 0


def test_patch_code_reinvalidates_over_restored_bytes():
    img = Image()
    addr = img.add_function("f", b"\x90\xc3")
    calls = []

    def flaky_hook(a, s):
        calls.append((a, s))
        if len(calls) == 1:
            raise RuntimeError("first time only")

    img.add_invalidation_hook(flaky_hook)
    with pytest.raises(RuntimeError):
        img.patch_code(addr, b"\xc3\xc3")
    # the hook ran again over the restored content, so a memoizer that
    # partially observed the new bytes drops them too
    assert calls == [(addr, 2), (addr, 2)]


def test_patch_code_unmapped_range_changes_nothing():
    img = Image()
    img.add_function("f", b"\x90\xc3")
    from repro.errors import MemoryAccessError
    with pytest.raises(MemoryAccessError):
        img.patch_code(0x1, b"\x00" * 8)
    assert img.generation == 0


def test_add_function_commits_nothing_on_exhaustion():
    img = Image(code_size=32)
    img.add_function("a", b"\xc3" * 24)
    cursor = img.next_code_addr()
    with pytest.raises(SimulatorError, match="exhausted"):
        img.add_function("b", b"\xc3" * 24)
    assert "b" not in img.symbols
    assert "b" not in img.func_sizes
    assert img.next_code_addr() == cursor
