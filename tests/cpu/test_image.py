"""Image allocator and symbol-table tests."""

import pytest

from repro.cpu.image import CODE_BASE, DATA_BASE, JIT_BASE, RODATA_BASE, Image
from repro.errors import SimulatorError


def test_regions_mapped():
    img = Image()
    for base in (CODE_BASE, RODATA_BASE, DATA_BASE, JIT_BASE):
        assert img.memory.is_mapped(base, 16)


def test_add_function_and_lookup():
    img = Image()
    addr = img.add_function("f", b"\xc3")
    assert img.symbol("f") == addr
    assert img.function_bytes("f") == b"\xc3"
    assert img.symbol_at(addr) == "f"
    assert img.symbol_at(addr + 1) is None


def test_jit_functions_live_in_jit_region():
    img = Image()
    static = img.add_function("a", b"\x90\xc3")
    jitted = img.add_function("b", b"\x90\xc3", jit=True)
    assert CODE_BASE <= static < RODATA_BASE
    assert jitted >= JIT_BASE


def test_alloc_alignment():
    img = Image()
    img.alloc_data(3, align=8)
    a = img.alloc_data(8, align=16)
    assert a % 16 == 0
    r = img.alloc_rodata(b"xy", align=32)
    assert r % 32 == 0


def test_alloc_data_with_initializer():
    img = Image()
    a = img.alloc_data(16, data=b"hello")
    assert img.memory.read(a, 5) == b"hello"
    assert img.memory.read(a + 5, 3) == b"\x00\x00\x00"


def test_region_exhaustion():
    img = Image(rodata_size=64)
    img.alloc_rodata(b"\x00" * 48)
    with pytest.raises(SimulatorError, match="exhausted"):
        img.alloc_rodata(b"\x00" * 48)


def test_undefined_symbol_raises():
    img = Image()
    with pytest.raises(SimulatorError, match="undefined symbol"):
        img.symbol("missing")


def test_next_code_addr_matches_allocation():
    img = Image()
    predicted = img.next_code_addr()
    got = img.add_function("f", b"\xc3" * 5)
    assert got == predicted
    predicted_jit = img.next_code_addr(jit=True)
    got_jit = img.add_function("g", b"\xc3", jit=True)
    assert got_jit == predicted_jit
