"""Cost model unit tests."""

import pytest

from repro.cpu.costs import HASWELL, CostModel
from repro.x86.instr import Imm, Mem, gp, make, xmm


def cost(model, mnemonic, *ops, taken=False, mem_addr=None):
    return model.instruction_cost(make(mnemonic, *ops), taken=taken,
                                  mem_addr=mem_addr)


def test_simple_alu_is_one_cycle():
    assert cost(HASWELL, "add", gp(0), gp(1)) == 1.0
    assert cost(HASWELL, "lea", gp(0), Mem(8, base=gp(1))) == 1.0  # no load


def test_load_penalty_applies():
    plain = cost(HASWELL, "mov", gp(0), gp(1))
    load = cost(HASWELL, "mov", gp(0), Mem(8, base=gp(1)))
    assert load == plain + HASWELL.load_penalty


def test_store_cheaper_than_load():
    load = cost(HASWELL, "mov", gp(0), Mem(8, base=gp(1)))
    store = cost(HASWELL, "mov", Mem(8, base=gp(1)), gp(0))
    assert store < load


def test_taken_branch_costs_more():
    nt = cost(HASWELL, "jl", Imm(0x1000))
    t = cost(HASWELL, "jl", Imm(0x1000), taken=True)
    assert t == nt + HASWELL.taken_branch_penalty


def test_unconditional_jump_has_no_taken_penalty():
    assert cost(HASWELL, "jmp", Imm(0), taken=True) == cost(HASWELL, "jmp", Imm(0))


def test_unaligned_16b_penalty():
    aligned = cost(HASWELL, "movupd", xmm(0), Mem(16, base=gp(1)), mem_addr=0x1000)
    unaligned = cost(HASWELL, "movupd", xmm(0), Mem(16, base=gp(1)), mem_addr=0x1008)
    assert unaligned == aligned + HASWELL.unaligned16_penalty


def test_scalar_8b_has_no_alignment_penalty():
    a = cost(HASWELL, "movsd", xmm(0), Mem(8, base=gp(1)), mem_addr=0x1004)
    b = cost(HASWELL, "movsd", xmm(0), Mem(8, base=gp(1)), mem_addr=0x1000)
    assert a == b


def test_divide_much_slower_than_multiply():
    assert cost(HASWELL, "divsd", xmm(0), xmm(1)) > 3 * cost(HASWELL, "mulsd", xmm(0), xmm(1))


def test_packed_same_cost_as_scalar():
    # throughput model: packed does 2x work for the same cost
    assert cost(HASWELL, "addpd", xmm(0), xmm(1)) == cost(HASWELL, "addsd", xmm(0), xmm(1))


def test_with_overrides_immutable():
    slow = HASWELL.with_overrides(load_penalty=10.0)
    assert slow.load_penalty == 10.0
    assert HASWELL.load_penalty == 3.0
    assert slow.base is not None


def test_with_base_merges():
    m = HASWELL.with_base({"addsd": 99})
    assert m.base["addsd"] == 99
    assert m.base["mulsd"] == HASWELL.base["mulsd"]
    assert HASWELL.base["addsd"] != 99


def test_unknown_mnemonic_defaults_to_one():
    assert cost(HASWELL, "frobnicate") == 1.0


def test_cycles_to_seconds_calibration():
    secs = HASWELL.cycles_to_seconds(3.5e9 * HASWELL.effective_parallelism)
    assert secs == pytest.approx(1.0)
