"""End-to-end simulator tests: assemble small kernels and run them."""

import struct

import pytest

from repro.cpu import Image, Simulator
from repro.cpu.costs import CostModel
from repro.errors import SimulatorError
from repro.x86 import parse_asm
from repro.x86.asm import assemble


@pytest.fixture
def img():
    return Image()


def load(img, name, src):
    base = img.next_code_addr()
    code, _ = assemble(parse_asm(src), base=base)
    img.add_function(name, code)
    return Simulator(img)


def test_max_function(img):
    sim = load(img, "max", """
        mov rax, rdi
        cmp rdi, rsi
        cmovl rax, rsi
        ret
    """)
    assert sim.call_int("max", (3, 7)) == 7
    assert sim.call_int("max", (7, 3)) == 7
    assert sim.call_int("max", (-3 & (2**64 - 1), 2)) == 2
    assert sim.call_int("max", (-3 & (2**64 - 1), -9 & (2**64 - 1))) == -3


def test_loop_sum_doubles(img):
    arr = img.alloc_data(8 * 16)
    img.memory.write(arr, struct.pack("<16d", *[float(i) for i in range(16)]))
    sim = load(img, "sum", """
        pxor xmm0, xmm0
        xor eax, eax
    loop:
        cmp rax, rsi
        jge done
        addsd xmm0, [rdi + 8*rax]
        add rax, 1
        jmp loop
    done:
        ret
    """)
    assert sim.call_f64("sum", (arr, 16)) == sum(range(16))


def test_nested_call(img):
    sim = load(img, "double_it", """
        lea rax, [rdi + rdi]
        ret
    """)
    base = img.next_code_addr()
    code, _ = assemble(parse_asm(f"""
        call {img.symbol('double_it')}
        add rax, 1
        ret
    """), base=base)
    img.add_function("wrap", code)
    assert sim.call_int("wrap", (21,)) == 43


def test_recursion_factorial(img):
    base = img.next_code_addr()
    # place at a known address so the recursive call target is resolvable
    src = f"""
        cmp rdi, 1
        jg rec
        mov rax, 1
        ret
    rec:
        push rdi
        sub rdi, 1
        call {base}
        pop rdi
        imul rax, rdi
        ret
    """
    code, _ = assemble(parse_asm(src), base=base)
    img.add_function("fact", code)
    sim = Simulator(img)
    assert sim.call_int("fact", (6,)) == 720


def test_stats_accounting(img):
    sim = load(img, "three", """
        mov rax, 1
        add rax, 2
        ret
    """)
    res = sim.call("three")
    assert res.stats.instructions == 3
    assert res.stats.per_mnemonic == {"mov": 1, "add": 1, "ret": 1}
    assert res.stats.cycles > 0


def test_cost_model_scales_cycles(img):
    arr = img.alloc_data(8)
    expensive = CostModel().with_base({"addsd": 100})
    src = """
        addsd xmm0, xmm1
        ret
    """
    base = img.next_code_addr()
    code, _ = assemble(parse_asm(src), base=base)
    img.add_function("f", code)
    cheap_cycles = Simulator(img).call("f").stats.cycles
    costly_cycles = Simulator(img, expensive).call("f").stats.cycles
    assert costly_cycles - cheap_cycles == pytest.approx(97.0)


def test_unaligned_vector_access_costs_more(img):
    a16 = img.alloc_data(64, align=16)
    src = f"""
        movupd xmm0, [rdi]
        ret
    """
    base = img.next_code_addr()
    code, _ = assemble(parse_asm(src), base=base)
    img.add_function("ld", code)
    sim = Simulator(img)
    aligned = sim.call("ld", (a16,)).stats.cycles
    unaligned = sim.call("ld", (a16 + 8,)).stats.cycles
    assert unaligned > aligned


def test_infinite_loop_guard(img):
    sim = load(img, "spin", """
    here:
        jmp here
    """)
    with pytest.raises(SimulatorError):
        sim.call("spin", max_steps=1000)


def test_stack_argument_limit(img):
    sim = load(img, "f", "ret")
    with pytest.raises(SimulatorError):
        sim.call("f", tuple(range(7)))


def test_undefined_symbol(img):
    sim = Simulator(img)
    with pytest.raises(SimulatorError):
        sim.call("nope")


def test_f64_args_in_xmm(img):
    sim = load(img, "fma", """
        mulsd xmm0, xmm1
        addsd xmm0, xmm2
        ret
    """)
    assert sim.call_f64("fma", (), (3.0, 4.0, 5.0)) == 17.0


def test_jit_function_added_later(img):
    sim = load(img, "id", "mov rax, rdi\nret")
    base = img.next_code_addr(jit=True)
    code, _ = assemble(parse_asm("lea rax, [rdi + 5]\nret"), base=base)
    img.add_function("jitted", code, jit=True)
    sim.invalidate_code()
    assert sim.call_int("jitted", (10,)) == 15
