"""Differential verification gate: probe execution and divergence detection."""

import pytest

from repro.cc import compile_c
from repro.errors import VerificationError
from repro.guard import DifferentialGate, GateOptions
from repro.lift import FunctionSignature
from repro.lift.fixation import FixedMemory

SIG2 = FunctionSignature(("i", "i"), "i")


def _image(*sources):
    return compile_c(" ".join(sources)).image


def test_equivalent_functions_pass():
    img = _image("long f(long a, long b) { return a * b + 7; }",
                 "long g(long b, long a) { return 7 + b * a; }")
    report = DifferentialGate(img).check("f", "g", SIG2)
    assert report.passed
    assert report.conclusive > 0
    assert all(p.agreed for p in report.probes)


def test_return_divergence_rejected():
    img = _image("long f(long a, long b) { return a * b + 7; }",
                 "long g(long a, long b) { return a * b + 8; }")
    gate = DifferentialGate(img)
    report = gate.check("f", "g", SIG2)
    assert not report.passed
    assert "return divergence" in report.reason
    with pytest.raises(VerificationError) as ei:
        gate.gate("f", "g", SIG2)
    assert ei.value.context["stage"] == "verify"


def test_user_probes_catch_what_samples_miss():
    # agree everywhere except one magic input the samples never hit
    img = _image("long f(long a, long b) { return a + b; }",
                 "long g(long a, long b)"
                 " { if (a == 77777) return 0; return a + b; }")
    gate = DifferentialGate(img, GateOptions(samples=4))
    assert gate.check("f", "g", SIG2).passed  # samples miss the trap
    report = gate.check("f", "g", SIG2, probes=[(77777, 1)])
    assert not report.passed


def test_memory_divergence_rejected():
    img = _image("void f(long *p, long v) { p[0] = v; }",
                 "void g(long *p, long v) { p[0] = v + 1; }")
    target = img.alloc_data(16)
    sig = FunctionSignature(("i", "i"), None)
    gate = DifferentialGate(img, GateOptions(samples=0))
    report = gate.check("f", "g", sig, probes=[(target, 5)])
    assert not report.passed
    assert "memory divergence" in report.reason
    assert report.probes[0].diverged_addr == target


def test_gate_restores_memory_after_probes():
    img = _image("void f(long *p, long v) { p[0] = v; }")
    target = img.alloc_data(16)
    img.memory.write_u64(target, 123)
    sig = FunctionSignature(("i", "i"), None)
    DifferentialGate(img, GateOptions(samples=0)).check(
        "f", "f", sig, probes=[(target, 5)])
    assert img.memory.read_u64(target) == 123  # side effects rolled back


def test_all_probes_inconclusive_rejects_by_default():
    # sampled small ints are not mapped: the original segfaults on every
    # probe — nothing was compared, so the gate must not report a pass
    img = _image("long f(long *p) { return p[0]; }")
    sig = FunctionSignature(("i",), "i")
    report = DifferentialGate(img, GateOptions(samples=2)).check("f", "f", sig)
    assert not report.passed
    assert "conclusive" in report.reason
    assert report.conclusive == 0
    assert all(p.inconclusive for p in report.probes)


def test_min_conclusive_zero_passes_vacuously_and_says_so():
    img = _image("long f(long *p) { return p[0]; }")
    sig = FunctionSignature(("i",), "i")
    gate = DifferentialGate(img, GateOptions(samples=2, min_conclusive=0))
    report = gate.check("f", "f", sig)
    assert report.passed and report.vacuous  # opt-in, and marked as such
    # a conclusive pass is never marked vacuous
    img2 = _image("long f(long a) { return a + 1; }")
    sig2 = FunctionSignature(("i",), "i")
    report2 = DifferentialGate(img2).check("f", "f", sig2)
    assert report2.passed and not report2.vacuous


def test_specialized_fault_is_divergence():
    img = _image("long f(long a) { return a; }",
                 "long g(long a) { long *p = (long *) a; return p[0]; }")
    sig = FunctionSignature(("i",), "i")
    report = DifferentialGate(img, GateOptions(samples=2)).check("f", "g", sig)
    assert not report.passed
    assert "specialized code failed" in report.reason


def test_fixed_parameters_are_substituted():
    img = _image("long f(long a, long b) { return a * 10 + b; }",
                 "long g_spec(long a, long b) { return a * 10 + 3; }")
    # b fixed to 3: probes supply only the free parameter a
    report = DifferentialGate(img, GateOptions(samples=0)).check(
        "f", "g_spec", SIG2, fixes={1: 3}, probes=[(2,), (9,)])
    assert report.passed
    assert report.conclusive == 2


def test_fixed_memory_substitutes_region_address():
    img = _image("long f(long *p, long i) { return p[i]; }")
    region = img.alloc_data(32)
    for i in range(4):
        img.memory.write_u64(region + 8 * i, 100 + i)
    sig = FunctionSignature(("i", "i"), "i")
    report = DifferentialGate(img, GateOptions(samples=0)).check(
        "f", "f", sig, fixes={0: FixedMemory(region, 32)},
        probes=[(0,), (3,)])
    assert report.passed
    assert report.conclusive == 2


def test_f64_return_compared():
    img = _image("double f(double x) { return x * 2.0; }",
                 "double g(double x) { return x * 2.0 + 1.0; }")
    sig = FunctionSignature(("f",), "f")
    gate = DifferentialGate(img)
    assert gate.check("f", "f", sig).passed
    assert not gate.check("f", "g", sig).passed


def test_probe_shorter_than_free_params_rejected():
    img = _image("long f(long a, long b) { return a + b; }")
    with pytest.raises(VerificationError, match="shorter"):
        DifferentialGate(img, GateOptions(samples=0)).check(
            "f", "f", SIG2, probes=[(1,)])
