"""GuardedTransformer static pre-gate: reject before spending probe budget."""

from repro.cc import compile_c
from repro.ir import I64
from repro.ir import instructions as I
from repro.ir.values import Undef
from repro.guard import GuardedTransformer
from repro.lift import FunctionSignature
from repro.testing.faults import inject_faults

SRC = "long f(long a, long b) { return a * 3 + b; }"
SIG = FunctionSignature(("i", "i"), "i")


def _poison_ret(result, func):
    """Make the optimized function return an undef-derived value."""
    for blk in func.blocks:
        for ins in blk.instructions:
            if isinstance(ins, I.Ret) and ins.value is not None:
                ins.operands[0] = Undef(I64)
                return None
    return None


def test_clean_transform_passes_pregate():
    program = compile_c(SRC)
    guard = GuardedTransformer(program.image)
    out = guard.transform("f", SIG, probes=[(3, 4)])
    assert out.mode == "llvm"
    assert guard.stats.static_rejections == 0
    assert guard.stats.static_skip_reasons == {}


def test_static_pregate_rejects_undef_return():
    program = compile_c(SRC)
    guard = GuardedTransformer(program.image)
    with inject_faults("pass:dce", every=True, corrupt=_poison_ret):
        out = guard.transform("f", SIG, probes=[(3, 4)])
    # every compiling rung produced poisoned IR: degrade to the original
    assert out.degraded
    assert guard.stats.static_rejections >= 1
    assert guard.stats.static_skip_reasons.get("undef-use", 0) >= 1
    failed = [a for a in out.attempts if not a.ok]
    assert any(a.context.get("stage") == "static-verify" for a in failed)
    # the static reject happened before the dynamic gate ran any probe
    assert out.gate is None
    # ...and is counted separately from dynamic verification rejections
    assert guard.stats.verification_rejections == 0


def test_pregate_can_be_disabled():
    program = compile_c(SRC)
    guard = GuardedTransformer(program.image, static_precheck=False,
                               verify=False)
    with inject_faults("pass:dce", every=True, corrupt=_poison_ret):
        out = guard.transform("f", SIG)
    # with both gates off the poisoned candidate is served — the pre-gate
    # (not luck) is what rejected it above
    assert out.mode == "llvm"
    assert guard.stats.static_rejections == 0


def test_static_rejection_recorded_in_quarantine():
    program = compile_c(SRC)
    guard = GuardedTransformer(program.image)
    with inject_faults("pass:dce", every=True, corrupt=_poison_ret):
        guard.transform("f", SIG, probes=[(3, 4)])
        out2 = guard.transform("f", SIG, probes=[(3, 4)])
    # the second request is served from quarantine without re-compiling
    assert out2.degraded
    assert guard.stats.negative_served >= 1


def test_stats_snapshot_includes_static_fields():
    program = compile_c(SRC)
    guard = GuardedTransformer(program.image)
    snap = guard.stats.snapshot()
    assert "static_rejections" in snap
    assert "static_skip_reasons" in snap
