"""The fault-injection harness itself: patching, determinism, restoration."""

import pytest

import repro.dbrew.rewriter as rewriter_mod
import repro.jit.engine as engine_mod
import repro.lift.blocks as blocks_mod
from repro.cc import compile_c
from repro.errors import (
    CodegenError,
    DecodeError,
    IRError,
    LiftError,
    RewriteError,
)
from repro.jit import BinaryTransformer
from repro.lift import FunctionSignature
from repro.testing import FaultInjector, FaultSpec, inject_faults

SIG = FunctionSignature(("i",), "i")


def _tx():
    prog = compile_c("long f(long a) { return a + 41; }")
    return prog, BinaryTransformer(prog.image)


def test_patch_points_restored_on_exit():
    saved = (blocks_mod.decode_one, rewriter_mod.decode_one,
             engine_mod.lift_function, engine_mod.run_o3)
    with inject_faults("decode"):
        assert blocks_mod.decode_one is not saved[0]
        assert rewriter_mod.decode_one is not saved[1]
    assert (blocks_mod.decode_one, rewriter_mod.decode_one,
            engine_mod.lift_function, engine_mod.run_o3) == saved


def test_restored_even_when_body_raises():
    saved = engine_mod.lift_function
    with pytest.raises(RuntimeError):
        with inject_faults("lift"):
            raise RuntimeError("boom")
    assert engine_mod.lift_function is saved


@pytest.mark.parametrize("stage,exc", [
    ("decode", DecodeError), ("lift", LiftError), ("opt", IRError),
    ("codegen", CodegenError), ("rewrite", RewriteError),
])
def test_default_error_types_per_stage(stage, exc):
    spec = FaultSpec(stage)
    err = spec.make_error()
    assert isinstance(err, exc)
    assert err.context["stage"] == stage
    assert err.context["injected"] is True


def test_unknown_stage_rejected():
    with pytest.raises(ValueError, match="unknown stage"):
        FaultSpec("linker")
    with pytest.raises(ValueError, match="1-based"):
        FaultSpec("lift", at=0)


def test_lift_fault_fires_and_counts():
    prog, tx = _tx()
    with inject_faults("lift") as inj:
        with pytest.raises(LiftError, match="injected"):
            tx.llvm_identity("f", SIG, name="f2")
    assert inj.calls["lift"] == 1
    assert inj.fired["lift"] == 1
    # harness gone: the same transform now succeeds
    res = tx.llvm_identity("f", SIG, name="f2")
    assert res.addr


def test_at_k_skips_earlier_calls():
    prog, tx = _tx()
    with inject_faults("lift", at=2) as inj:
        res = tx.llvm_identity("f", SIG, name="f2")  # call 1: clean
        assert res.addr
        with pytest.raises(LiftError):
            tx.llvm_identity("f", SIG, name="f3")  # call 2: faulted
        tx.llvm_identity("f", SIG, name="f4")  # call 3: clean again
    assert inj.calls["lift"] == 3
    assert inj.fired["lift"] == 1


def test_every_faults_all_later_calls():
    prog, tx = _tx()
    with inject_faults("opt", every=True) as inj:
        for name in ("f2", "f3"):
            with pytest.raises(IRError):
                tx.llvm_identity("f", SIG, name=name)
    assert inj.fired["opt"] == 2


def test_custom_error_instance():
    prog, tx = _tx()
    boom = CodegenError("custom boom", stage="codegen", marker=7)
    with inject_faults("codegen", error=boom):
        with pytest.raises(CodegenError, match="custom boom") as ei:
            tx.llvm_identity("f", SIG, name="f2")
    assert ei.value.context["marker"] == 7


def test_corrupt_replaces_result():
    prog, tx = _tx()
    seen = []

    def truncate(result, *args):
        seen.append(result)
        return result  # keep, but prove we observed it

    with inject_faults("codegen", corrupt=truncate) as inj:
        res = tx.llvm_identity("f", SIG, name="f2")
    assert inj.fired["codegen"] == 1
    assert seen == [res.addr]


def test_duplicate_stage_specs_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        FaultInjector(FaultSpec("lift"), FaultSpec("lift"))


def test_multi_stage_injection():
    prog, tx = _tx()
    with inject_faults(FaultSpec("lift"), FaultSpec("opt")) as inj:
        with pytest.raises(LiftError):
            tx.llvm_identity("f", SIG, name="f2")
    assert inj.fired == {"lift": 1, "opt": 0}
