"""Unsupported constructs raise their specific error with populated context,
and the guard ladder degrades over each of them."""

import pytest

from repro.cpu.image import Image
from repro.errors import CodegenError, DecodeError, LiftError
from repro.guard import Budget, GateOptions, GuardedTransformer
from repro.ir import FLOAT, I64, Function, FunctionType, IRBuilder, Module
from repro.ir.codegen import JITEngine
from repro.ir.values import ConstantFP
from repro.lift import FunctionSignature, lift_function
from repro.x86.decoder import decode_one

SIG = FunctionSignature(("i",), "i")


def test_unknown_opcode_decode_error_context():
    # 0x06 (push es) does not exist in 64-bit mode
    with pytest.raises(DecodeError, match="unknown opcode") as ei:
        decode_one(b"\x06", 0, 0x400000)
    ctx = ei.value.context
    assert ctx["stage"] == "decode"
    assert ctx["addr"] == 0x400000
    assert ctx["data"] == b"\x06"


def test_truncated_instruction_decode_error_context():
    # REX.W + 81 /0 wants a ModRM byte and a 4-byte immediate
    with pytest.raises(DecodeError, match="truncated") as ei:
        decode_one(b"\x48\x81", 0, 0x400000)
    assert ei.value.context["stage"] == "decode"
    assert ei.value.context["addr"] == 0x400000


def test_decode_error_through_lift_keeps_decode_stage():
    img = Image()
    addr = img.add_function("u", b"\x06\xc3")
    with pytest.raises(DecodeError) as ei:
        lift_function(img.memory, addr, SIG)
    # innermost context wins: the decoder stamped stage/addr first
    assert ei.value.context["stage"] == "decode"
    assert ei.value.context["addr"] == addr


def test_unsupported_instruction_lift_error_context():
    # int3 decodes but has no lifting rule
    img = Image()
    addr = img.add_function("t", b"\xcc\xc3")
    with pytest.raises(LiftError, match="no lifting rule") as ei:
        lift_function(img.memory, addr, SIG)
    ctx = ei.value.context
    assert ctx["stage"] == "lift"
    assert ctx["addr"] == addr
    assert ctx["instruction"] == "int3"
    assert ctx["data"] == b"\xcc"


def test_declaration_codegen_error_context():
    m = Module("t")
    decl = Function("ext", FunctionType(I64, (I64,)))
    decl.is_declaration = True
    m.add_function(decl)
    with pytest.raises(CodegenError, match="declaration") as ei:
        JITEngine(Image()).compile_function(decl)
    assert ei.value.context["stage"] == "codegen"
    assert ei.value.context["function"] == "ext"


def test_unlowerable_type_codegen_error_context():
    # binary32 floats are outside the codegen subset
    m = Module("t")
    f = Function("f", FunctionType(FLOAT, ()))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    b.ret(ConstantFP(FLOAT, 0.0))
    with pytest.raises(CodegenError, match="binary32") as ei:
        JITEngine(Image()).compile_function(f)
    assert ei.value.context["stage"] == "codegen"
    assert ei.value.context["function"] == "f"


@pytest.mark.parametrize("name,code,stages", [
    ("unknown-opcode", b"\x06\xc3", {"decode", "rewrite"}),
    # a truncated function runs off its end into zero padding (which
    # decodes as `add [rax], al` forever): the budget is what stops it
    ("truncated", b"\x48\x81", {"decode", "lift", "rewrite"}),
    ("no-lift-rule", b"\xcc\xc3", {"lift", "rewrite"}),
])
def test_guard_degrades_over_unsupported_constructs(name, code, stages):
    img = Image()
    addr = img.add_function(name, code)
    g = GuardedTransformer(
        img, gate_options=GateOptions(samples=1, max_steps=1000),
        budget=Budget(max_lift_instructions=200, max_emulated=200,
                      max_trace_points=50))
    r = g.transform(name, SIG, {0: 1}, probes=[(2,)])
    assert r.addr == addr and r.mode == "original"
    failed = [a for a in r.attempts if not a.ok]
    assert failed
    for attempt in failed:
        assert attempt.context.get("stage") in stages
    assert g.stats.fallbacks == 1
