"""Resource budgets: fuel counters, deadlines, and pipeline threading."""

import pytest

from repro.cc import compile_c
from repro.dbrew import Rewriter, raising_error_handler
from repro.errors import BudgetExceededError
from repro.guard import Budget
from repro.ir.passes import run_o3
from repro.jit import BinaryTransformer
from repro.lift import FunctionSignature, LiftOptions, lift_function


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_counter_exhaustion_raises_with_context():
    b = Budget(max_lift_instructions=2).start()
    b.charge("lift_instructions", stage="lift", addr=0x10)
    b.charge("lift_instructions", stage="lift", addr=0x11)
    with pytest.raises(BudgetExceededError) as ei:
        b.charge("lift_instructions", stage="lift", addr=0x12)
    assert ei.value.context["stage"] == "lift"
    assert ei.value.context["counter"] == "lift_instructions"
    assert ei.value.context["limit"] == 2
    assert ei.value.context["addr"] == 0x12


def test_unlimited_counters_never_raise():
    b = Budget().start()
    for _ in range(10_000):
        b.charge("emulated", stage="rewrite")
    assert b.spent["emulated"] == 10_000


def test_deadline_with_fake_clock():
    clk = FakeClock()
    b = Budget(deadline_seconds=5.0, clock=clk).start()
    clk.now = 4.9
    b.check_deadline("opt")
    clk.now = 5.1
    with pytest.raises(BudgetExceededError) as ei:
        b.check_deadline("opt")
    assert ei.value.context["stage"] == "opt"


def test_start_rearms_deadline_and_zeroes_counters():
    clk = FakeClock()
    b = Budget(deadline_seconds=5.0, max_emulated=3, clock=clk).start()
    b.charge("emulated", stage="rewrite", n=3)
    clk.now = 10.0
    b.start()
    assert b.spent["emulated"] == 0
    b.check_deadline("rewrite")  # re-armed: 0 elapsed again
    b.charge("emulated", stage="rewrite", n=3)  # fuel refilled


def test_lazy_deadline_arming_keeps_charged_fuel():
    # a budget used without an explicit start() (standalone transformer)
    # arms its deadline on the first stride check — that must not discard
    # the fuel already charged
    clk = FakeClock()
    b = Budget(deadline_seconds=5.0, max_emulated=100, clock=clk)
    from repro.guard.budget import _DEADLINE_STRIDE
    for _ in range(_DEADLINE_STRIDE):  # the Nth charge polls the deadline
        b.charge("emulated", stage="rewrite")
    assert b.spent["emulated"] == _DEADLINE_STRIDE
    clk.now = 5.1  # the lazily-armed deadline still fires
    with pytest.raises(BudgetExceededError):
        b.check_deadline("rewrite")


def test_snapshot_reports_spend():
    b = Budget(max_trace_points=10).start()
    b.charge("trace_points", stage="rewrite", n=4)
    snap = b.snapshot()
    assert snap["spent"]["trace_points"] == 4
    assert snap["limits"]["trace_points"] == 10


def test_lift_respects_instruction_budget():
    prog = compile_c(
        "long f(long n) { long s = 0;"
        " for (long i = 0; i < n; i++) s += i; return s; }")
    budget = Budget(max_lift_instructions=3).start()
    with pytest.raises(BudgetExceededError) as ei:
        lift_function(prog.image.memory, prog.image.symbol("f"),
                      FunctionSignature(("i",), "i"),
                      LiftOptions(budget=budget))
    assert ei.value.context["counter"] == "lift_instructions"


def test_rewriter_respects_emulation_budget():
    prog = compile_c(
        "long f(long n) { long s = 0;"
        " for (long i = 0; i < 64; i++) s += i; return s; }")
    r = Rewriter(prog.image, "f", budget=Budget(max_emulated=10).start())
    r.error_handler = raising_error_handler
    r.set_signature(("i",), "i")
    with pytest.raises(BudgetExceededError) as ei:
        r.rewrite(name="f.spec")
    assert ei.value.context["counter"] == "emulated"
    assert ei.value.context["stage"] == "rewrite"


def test_run_o3_respects_iteration_budget():
    prog = compile_c("long f(long a) { return (a + 1) * 2 - a; }")
    func = lift_function(prog.image.memory, prog.image.symbol("f"),
                         FunctionSignature(("i",), "i"))
    with pytest.raises(BudgetExceededError) as ei:
        run_o3(func, budget=Budget(max_opt_iterations=0).start())
    assert ei.value.context["counter"] == "opt_iterations"


def test_transformer_threads_budget_through_stages():
    prog = compile_c("long f(long a, long b) { return a * b; }")
    tx = BinaryTransformer(prog.image,
                           budget=Budget(max_lift_instructions=1).start())
    with pytest.raises(BudgetExceededError):
        tx.llvm_identity("f", FunctionSignature(("i", "i"), "i"), name="f2")
