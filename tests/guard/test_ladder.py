"""The degradation ladder: rung order, fallback, quarantine, recovery.

Includes the acceptance scenario: a lift forced to fail must return the
original entry, record the failed rungs in GuardStats, serve the retry from
the negative cache, and pass the differential gate on rungs that did not
fail.
"""

import pytest

from repro.cache import SpecializationCache
from repro.cc import compile_c
from repro.cpu import Simulator
from repro.dbrew import Rewriter, default_error_handler, raising_error_handler
from repro.errors import RewriteError
from repro.guard import Budget, GateOptions, GuardedTransformer
from repro.ir.values import Constant
from repro.lift import FunctionSignature
from repro.testing import inject_faults

SIG = FunctionSignature(("i", "i"), "i")
SRC = "long f(long a, long b) { return a * b + 7; }"


def make(src=SRC, **kw):
    prog = compile_c(src)
    kw.setdefault("cache", SpecializationCache())
    kw.setdefault("gate_options", GateOptions(samples=2))
    return prog.image, GuardedTransformer(prog.image, **kw)


def skew_constants(report, func, *rest):
    """Fault-injection corruptor: silently miscompile by nudging constants."""
    for blk in func.blocks:
        for ins in blk.instructions:
            for i, op in enumerate(list(ins.operands)):
                if isinstance(op, Constant) and op.value not in (0, 1):
                    ins.operands[i] = Constant(op.type, op.value + 1)
    return report


def test_top_rung_serves_when_healthy():
    img, g = make()
    r = g.transform("f", SIG, {1: 6}, probes=[(3,)])
    assert r.mode == "dbrew+llvm"
    assert r.verified and r.gate.passed
    assert [a.rung for a in r.attempts] == ["dbrew+llvm"]
    assert Simulator(img).call_int(r.addr, (5, 0)) == 5 * 6 + 7
    assert g.stats.served_by["dbrew+llvm"] == 1


def test_no_fixes_skips_specializing_rungs():
    img, g = make()
    r = g.transform("f", SIG)
    assert r.mode == "llvm"
    assert [a.rung for a in r.attempts] == ["llvm"]


def test_explicit_ladder_is_respected():
    img, g = make()
    r = g.transform("f", SIG, {1: 6}, ladder=("llvm-fix",))
    assert r.mode == "llvm-fix"
    # the terminal rung is appended even if the caller forgot it (fresh
    # image: a warm lifted-stage cache would mask the injected fault)
    img2, g2 = make()
    with inject_faults("lift", every=True):
        r2 = g2.transform("f", SIG, {0: 2}, ladder=("llvm-fix",))
    assert r2.mode == "original"


def test_acceptance_lift_failure_degrades_and_quarantines():
    img, g = make()
    entry = img.symbol("f")

    # 1. lift forced to fail on every rung -> the original entry is served
    with inject_faults("lift", every=True):
        r = g.transform("f", SIG, {1: 6}, probes=[(3,)])
    assert r.addr == entry and r.mode == "original"
    assert r.degraded and not r.verified

    # 2. the failed rungs are recorded in GuardStats
    for rung in ("dbrew+llvm", "llvm-fix", "llvm"):
        assert g.stats.failures[rung] == 1
    assert g.stats.fallbacks == 1
    failed = [a for a in r.attempts if not a.ok]
    assert all(a.error_type == "LiftError" for a in failed)
    assert all(a.context.get("stage") == "lift" for a in failed)

    # 3. the retry (fault gone, quarantine fresh) is served negatively:
    #    no rung is re-attempted, the fallback comes straight back
    r2 = g.transform("f", SIG, {1: 6}, probes=[(3,)])
    assert r2.addr == entry and r2.mode == "original"
    assert all(a.quarantined for a in r2.attempts if a.rung != "original")
    assert g.stats.negative_served == 3
    assert "quarantined" in " ".join(r2.failure_summary())

    # 4. after the quarantine lifts, the un-failed rung compiles and the
    #    installed code passes the differential gate
    g.negative.clear()
    r3 = g.transform("f", SIG, {1: 6}, probes=[(3,)])
    assert r3.mode == "dbrew+llvm"
    assert r3.verified and r3.gate.passed
    assert Simulator(img).call_int(r3.addr, (5, 0)) == 37


def test_rewrite_failure_falls_to_llvm_fix():
    img, g = make()
    with inject_faults("rewrite", every=True):
        r = g.transform("f", SIG, {1: 6}, probes=[(3,)])
    assert r.mode == "llvm-fix"
    assert r.verified
    assert [a.rung for a in r.attempts] == ["dbrew+llvm", "llvm-fix"]
    assert r.attempts[0].error_type == "RewriteError"
    assert g.stats.failures["dbrew+llvm"] == 1


def test_silent_miscompile_is_caught_by_the_gate():
    img, g = make()
    with inject_faults("opt", every=True, corrupt=skew_constants):
        r = g.transform("f", SIG, {1: 6}, probes=[(3,)])
    assert r.mode == "original"
    assert g.stats.verification_rejections == 3
    assert all(a.error_type == "VerificationError"
               for a in r.attempts if not a.ok)
    # a wrong specialization must cost a fallback, never a miscompile
    # (the original fallback still takes b as a live argument):
    assert Simulator(img).call_int(r.addr, (5, 6)) == 37


def test_gate_rejected_code_is_evicted_not_resurrected():
    # The miscompile lands in the positive machine cache *before* the gate
    # runs.  When the quarantine TTL lapses and the rung is retried, the
    # divergent code must not come back as an ungated machine hit: the
    # rejection must have evicted it, so the gate runs (and rejects) again.
    from repro.cache import NegativeCache

    class Clock:
        now = 0.0

    clk = Clock()
    cache = SpecializationCache(
        negative=NegativeCache(ttl=10.0, clock=lambda: clk.now))
    img, g = make(cache=cache)
    with inject_faults("opt", every=True, corrupt=skew_constants):
        r = g.transform("f", SIG, {1: 6}, probes=[(3,)])
    assert r.mode == "original"
    assert g.stats.verification_rejections == 3

    clk.now = 11.0  # quarantine lapsed; corrupt modules still cached
    r2 = g.transform("f", SIG, {1: 6}, probes=[(3,)])
    assert r2.mode == "original"  # re-gated and rejected, never served
    assert g.stats.verification_rejections == 6
    assert not any(a.ok and a.rung != "original" for a in r2.attempts)
    # the fallback still computes the true result with b live
    assert Simulator(img).call_int(r2.addr, (5, 6)) == 37


def test_unguarded_cache_entries_are_gated_on_first_guarded_use():
    from repro.jit import BinaryTransformer

    prog = compile_c(SRC)
    cache = SpecializationCache()
    BinaryTransformer(prog.image, cache=cache).llvm_fixed(
        "f", SIG, {1: 6}, name="f.fix")
    g = GuardedTransformer(prog.image, cache=cache,
                           gate_options=GateOptions(samples=2))
    # the shared cache serves the unguarded install at machine stage, but
    # the entry is not gated: the guard must verify it on this request
    r = g.transform("f", SIG, {1: 6}, ladder=("llvm-fix",), probes=[(3,)])
    assert r.result.cache_stage == "machine"
    assert r.gate is not None and r.verified
    # now the entry carries the gated bit: the warm path skips the gate
    r2 = g.transform("f", SIG, {1: 6}, ladder=("llvm-fix",), probes=[(3,)])
    assert r2.result.cache_stage == "machine"
    assert r2.gate is None and not r2.verified


def test_unknown_ladder_rung_is_a_caller_error():
    img, g = make()
    with pytest.raises(ValueError, match="unknown ladder rung"):
        g.transform("f", SIG, {1: 6}, ladder=("llvm-fxi",))
    assert g.stats.transforms == 0  # failed fast, before any attempt


def test_vacuous_gate_serves_but_is_not_verified():
    # pointer-taking function, no probes: every sampled probe faults the
    # original.  With min_conclusive=0 the gate passes vacuously — the
    # candidate is served, but must not be reported as verified
    img, g = make(src="long f(long *p, long b) { return p[0] + b; }",
                  gate_options=GateOptions(samples=2, min_conclusive=0))
    r = g.transform("f", SIG, {1: 6})
    assert r.mode != "original"
    assert r.gate is not None and r.gate.passed and r.gate.vacuous
    assert not r.verified  # nothing was actually compared on this request


def test_budget_exhaustion_degrades():
    img, g = make(budget=Budget(max_lift_instructions=1))
    r = g.transform("f", SIG, {1: 6}, probes=[(3,)])
    assert r.mode == "original"
    assert g.stats.budget_exceeded >= 1
    assert any(a.error_type == "BudgetExceededError" for a in r.attempts)


def test_quarantine_is_per_rung():
    img, g = make()
    # only the DBrew rung fails: llvm-fix serves, and only the DBrew rung
    # is quarantined for the retry
    with inject_faults("rewrite", every=True):
        g.transform("f", SIG, {1: 6}, probes=[(3,)])
    r = g.transform("f", SIG, {1: 6}, probes=[(3,)])
    assert r.attempts[0].rung == "dbrew+llvm" and r.attempts[0].quarantined
    assert r.mode == "llvm-fix" and not r.attempts[1].quarantined


def test_success_clears_quarantine_after_expiry():
    class Clock:
        now = 0.0

    from repro.cache import NegativeCache
    clk = Clock()
    nc = NegativeCache(ttl=10.0, clock=lambda: clk.now)
    img, g = make(negative=nc)
    with inject_faults("lift", every=True):
        g.transform("f", SIG, {1: 6}, probes=[(3,)])
    assert len(nc) == 3
    clk.now = 11.0  # TTL lapsed: rungs are retried and now succeed
    r = g.transform("f", SIG, {1: 6}, probes=[(3,)])
    assert r.mode == "dbrew+llvm"
    assert nc.check(f"{g._guard_key(img.symbol('f'), SIG, {1: 6}, ())}"
                    f":dbrew+llvm") is None  # forgotten on success


def test_verify_off_skips_the_gate():
    img, g = make(verify=False)
    r = g.transform("f", SIG, {1: 6})
    assert r.mode == "dbrew+llvm"
    assert not r.verified and r.gate is None


def test_stats_snapshot_shape():
    img, g = make()
    g.transform("f", SIG, {1: 6}, probes=[(3,)])
    snap = g.stats.snapshot()
    assert snap["transforms"] == 1
    assert snap["served_by"]["dbrew+llvm"] == 1


# -- Rewriter error-handler contract (Sec. II) ------------------------------


def test_default_error_handler_returns_original_entry():
    prog = compile_c(SRC)
    r = Rewriter(prog.image, "f")
    r.set_signature(("i", "i"), "i")
    assert r.error_handler is default_error_handler
    with inject_faults("rewrite", every=True):
        addr = r.rewrite(name="f.spec")
    assert addr == prog.image.symbol("f")
    assert isinstance(r.last_error, RewriteError)


def test_custom_error_handler_is_invoked():
    prog = compile_c(SRC)
    r = Rewriter(prog.image, "f")
    r.set_signature(("i", "i"), "i")
    seen = []

    def handler(rewriter, exc):
        seen.append((rewriter, exc))
        return 0xDEAD

    r.error_handler = handler
    with inject_faults("rewrite", every=True):
        assert r.rewrite(name="f.spec") == 0xDEAD
    assert seen and seen[0][0] is r
    assert seen[0][1].context.get("injected") is True


def test_raising_error_handler_propagates():
    prog = compile_c(SRC)
    r = Rewriter(prog.image, "f")
    r.set_signature(("i", "i"), "i")
    r.error_handler = raising_error_handler
    with inject_faults("rewrite", every=True):
        with pytest.raises(RewriteError):
            r.rewrite(name="f.spec")
