"""Failure quarantine: TTL windows, back-off, retry budget, stats."""

from repro.cache import NegativeCache, SpecializationCache


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make(**kw):
    clk = FakeClock()
    kw.setdefault("ttl", 10.0)
    return NegativeCache(clock=clk, **kw), clk


def test_fresh_entry_is_served_until_ttl():
    nc, clk = make()
    nc.record("k", "llvm", "LiftError: nope")
    entry = nc.check("k")
    assert entry is not None and entry.reason == "LiftError: nope"
    assert entry.served == 1
    clk.now = 9.9
    assert nc.check("k") is not None
    clk.now = 10.1
    assert nc.check("k") is None  # expired: the rung may be retried
    assert nc.expirations == 1


def test_expired_entry_survives_for_backoff():
    nc, clk = make()
    nc.record("k", "llvm", "first")
    clk.now = 11.0
    assert nc.check("k") is None
    entry = nc.record("k", "llvm", "second")  # the retry failed again
    assert entry.failures == 2
    assert entry.ttl == 20.0  # doubled
    assert entry.expiry == 31.0  # now + doubled ttl


def test_ttl_backoff_is_capped():
    nc, _ = make(max_ttl=25.0)
    for _ in range(5):
        entry = nc.record("k", "llvm", "again")
    assert entry.ttl == 25.0


def test_entry_becomes_permanent_after_retry_budget():
    nc, clk = make(max_retries=3)
    for _ in range(4):
        entry = nc.record("k", "llvm", "always")
    assert entry.permanent
    clk.now = 1e9  # far past any TTL
    assert nc.check("k") is not None  # permanent entries never expire


def test_forget_drops_entry():
    nc, _ = make()
    nc.record("k", "llvm", "x")
    nc.forget("k")
    assert nc.check("k") is None
    assert len(nc) == 0


def test_context_is_copied_into_entry():
    nc, _ = make()
    ctx = {"stage": "lift", "addr": 0x1000}
    entry = nc.record("k", "llvm", "x", ctx)
    ctx["addr"] = 0  # caller mutation must not leak in
    assert entry.context["addr"] == 0x1000


def test_capacity_evicts_lru():
    nc, _ = make(capacity=2)
    nc.record("a", "llvm", "x")
    nc.record("b", "llvm", "x")
    nc.record("c", "llvm", "x")
    assert nc.check("a") is None
    assert nc.check("b") is not None
    assert nc.check("c") is not None


def test_specialization_cache_counts_negative_traffic():
    cache = SpecializationCache()
    assert cache.check_negative("k") is None
    cache.put_negative("k", "llvm", "LiftError: nope", {"stage": "lift"})
    assert cache.check_negative("k") is not None
    s = cache.stats
    assert s.negative_misses == 1
    assert s.negative_hits == 1
    assert s.negative_stores == 1
    assert "negative_hits" in s.snapshot()
