"""Hostile-byte corpus: the guarded front door must never leak an exception.

Every entry is installed as a "function" and pushed through the full ladder.
Whatever the bytes do — fail to decode, lift to garbage, loop forever — the
contract is: no uncaught exception, a callable entry address back (worst
case the hostile original itself), and bounded time via the budget.
"""

import pytest

from repro.cpu.image import Image
from repro.errors import ReproError
from repro.guard import Budget, GateOptions, GuardedTransformer
from repro.jit import BinaryTransformer
from repro.lift import FunctionSignature

SIG = FunctionSignature(("i",), "i")

# deterministic corpus: name -> bytes (no RNG; failures must reproduce)
CORPUS = {
    # truncated mid-instruction (REX.W 81 /0 wants ModRM + imm32)
    "truncated-imm": b"\x48\x81",
    # truncated after a REX prefix alone
    "truncated-rex": b"\x48",
    # invalid 64-bit opcode
    "invalid-opcode": b"\x06\xc3",
    # unsupported-but-decodable instruction (int3)
    "no-lift-rule": b"\xcc\xc3",
    # self-jumping: jmp -2 (an infinite loop at its own entry)
    "self-jump": b"\xeb\xfe",
    # jump into the middle of its own immediate
    "overlap-jump": b"\xeb\xff\xc0\xc3",
    # "random" bytes (fixed, chosen to be garbage)
    "garbage-1": bytes.fromhex("f30f1efa4c8d0d00deadbeef"),
    "garbage-2": bytes.fromhex("9a7f0000e2ffc6c6c6"),
    "garbage-3": bytes.fromhex("0f0b0f0b0f0b"),
    # falls off the end into zero padding without a ret
    "no-ret": b"\x90\x90",
}


def _guard(img):
    return GuardedTransformer(
        img,
        gate_options=GateOptions(samples=1, max_steps=2_000),
        budget=Budget(deadline_seconds=20.0, max_lift_instructions=500,
                      max_lift_blocks=64, max_emulated=500,
                      max_trace_points=32, max_opt_iterations=64),
    )


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_guard_survives_hostile_bytes(name):
    img = Image()
    addr = img.add_function(name, CORPUS[name])
    g = _guard(img)
    r = g.transform(name, SIG, {0: 1}, probes=[(2,)])  # must not raise
    assert isinstance(r.addr, int)
    assert r.mode in ("dbrew+llvm", "llvm-fix", "llvm", "original")
    if r.mode == "original":
        assert r.addr == addr
    # every non-served rung recorded why it failed
    for attempt in r.attempts:
        if not attempt.ok and not attempt.quarantined:
            assert attempt.error_type is not None
            assert attempt.error


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_bare_pipeline_raises_only_repro_errors(name):
    """The unguarded pipeline may fail on the corpus, but only with the
    typed error contract — never a stray TypeError/IndexError/etc."""
    img = Image()
    img.add_function(name, CORPUS[name])
    tx = BinaryTransformer(img, budget=Budget(
        max_lift_instructions=500, max_lift_blocks=64,
        max_opt_iterations=64).start())
    try:
        tx.llvm_identity(name, SIG, name=name + ".tx")
    except ReproError:
        pass  # the allowed failure mode


def test_whole_corpus_accounting():
    img = Image()
    g = _guard(img)
    for name, code in CORPUS.items():
        img.add_function("h." + name, code)
        g.transform("h." + name, SIG, {0: 1}, probes=[(2,)])
    assert g.stats.transforms == len(CORPUS)
    served = sum(g.stats.served_by.values())
    assert served == len(CORPUS)  # every request was answered by some rung
