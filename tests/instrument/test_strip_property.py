"""Property: ``strip_instrumentation(instrument(f)) == f``, corpus-wide.

Hypothesis draws corpus seeds and probe configurations; each example
assembles the generated x86 sequence into an image, lifts it, optimizes
it (the instrumenter's real pipeline position: probes go in *after* O3),
injects probes, and demands the strip pass restore the exact printed IR
text.  Double instrumentation must always be rejected with the typed
:class:`~repro.errors.InstrumentError`.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import Image
from repro.errors import InstrumentError, ReproError
from repro.instrument import (
    InstrumentOptions,
    ProbeBuffer,
    inject_probes,
    is_instrumented,
    plan_probes,
    strip_instrumentation,
)
from repro.ir import Module, print_function, verify
from repro.ir.passes import run_o3
from repro.lift import FunctionSignature, LiftOptions, lift_function
from repro.testing.diffcorpus import GENERATORS, KINDS
from repro.x86 import parse_asm
from repro.x86.asm import assemble

options_strategy = st.builds(
    InstrumentOptions,
    edge_counters=st.booleans(),
    call_counter=st.booleans(),
    trace_memory=st.booleans(),
    watch_returns=st.booleans(),
    ring_capacity=st.sampled_from((16, 64, 256)),
)


def lift_corpus_function(kind: str, seed: int):
    asm = GENERATORS[kind](random.Random(seed))
    img = Image()
    base = img.next_code_addr()
    code, _ = assemble(parse_asm(asm), base=base)
    img.add_function("f", code)
    sig = FunctionSignature(("i", "i", "i"), "i") if kind == "int" \
        else FunctionSignature(("i", "f", "f"), "f")
    m = Module("corpus")
    f = lift_function(img.memory, base, sig, LiftOptions(name="f"), m)
    run_o3(f)
    verify(f)
    return img, f


@settings(max_examples=25, deadline=None)
@given(kind=st.sampled_from(KINDS), seed=st.integers(0, 10_000),
       options=options_strategy)
def test_strip_is_exact_inverse(kind, seed, options):
    img, f = lift_corpus_function(kind, seed)
    before = print_function(f)
    version_before = f.version
    plan = plan_probes(f, options)
    buf = ProbeBuffer.allocate(img, plan)
    inject_probes(f, plan, buf)
    verify(f)
    assert f.version > version_before
    strip_instrumentation(f)
    verify(f)
    assert print_function(f) == before
    assert not is_instrumented(f)


@settings(max_examples=10, deadline=None)
@given(kind=st.sampled_from(KINDS), seed=st.integers(0, 10_000))
def test_double_instrument_raises_typed_error(kind, seed):
    img, f = lift_corpus_function(kind, seed)
    plan = plan_probes(f, InstrumentOptions())
    buf = ProbeBuffer.allocate(img, plan)
    inject_probes(f, plan, buf)
    with pytest.raises(InstrumentError) as exc:
        plan_probes(f, InstrumentOptions())
    assert isinstance(exc.value, ReproError)
    with pytest.raises(InstrumentError):
        inject_probes(f, plan, buf)
