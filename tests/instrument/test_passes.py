"""Probe planning, injection, stripping: the effect-only IR contract.

These are the unit-level proofs behind DESIGN §15: probes are ordinary
tagged IR that every engine executes natively, ``strip_instrumentation``
is the exact inverse of ``inject_probes``, and both the re-entry guard
and the probe-ops pregate reject anything that would break the
effect-only whitelist.
"""

from __future__ import annotations

import pytest

from repro.analysis.clone import clone_function, restore_function
from repro.analysis.probes import check_probe_ops
from repro.cpu import Image
from repro.errors import InstrumentError
from repro.instrument import (
    InstrumentOptions,
    ProbeBuffer,
    inject_probes,
    is_instrumented,
    plan_probes,
    strip_instrumentation,
)
from repro.ir import (
    I64,
    Function,
    FunctionType,
    IRBuilder,
    Interpreter,
    Module,
    print_function,
    ptr,
    verify,
)
from repro.ir import instructions as I
from repro.ir.values import Constant

FULL = InstrumentOptions(trace_memory=True, watch_returns=True,
                         ring_capacity=16)


def build_memfn(m: Module, name: str = "f") -> Function:
    """f(x, p): *(u64*)p = x; return *(u64*)p + 1 — two blocks, one store,
    one load, one watchable ret."""
    f = Function(name, FunctionType(I64, (I64, I64)))
    m.add_function(f)
    entry = f.add_block("entry")
    exit_b = f.add_block("exit")
    b = IRBuilder(entry)
    p = b.inttoptr(f.args[1], ptr(I64), "p")
    b.store(f.args[0], p, align=8)
    v = b.load(p, "v", align=8)
    b.br(exit_b)
    b.position_at_end(exit_b)
    b.ret(b.add(v, b.const(I64, 1), "r"))
    verify(f)
    return f


def instrumented(options: InstrumentOptions = FULL):
    img = Image()
    slot = img.alloc_data(8, align=8)
    m = Module("t")
    f = build_memfn(m)
    plan = plan_probes(f, options)
    buf = ProbeBuffer.allocate(img, plan)
    inject_probes(f, plan, buf)
    verify(f)
    return img, slot, m, f, plan, buf


# -- planning ----------------------------------------------------------------


def test_plan_enumerates_sites():
    m = Module("t")
    f = build_memfn(m)
    plan = plan_probes(f, FULL)
    assert plan.block_names == ("entry", "exit")
    assert plan.ret_blocks == ("exit",)
    assert [op for _, _, op in plan.mem_sites] == ["store", "load"]
    assert [blk for _, blk, _ in plan.mem_sites] == ["entry", "entry"]
    assert plan.watch_sites == ((0, "exit"),)
    assert plan.n_watch == 1


def test_plan_respects_disabled_families():
    m = Module("t")
    f = build_memfn(m)
    plan = plan_probes(f, InstrumentOptions(trace_memory=False,
                                            watch_returns=False))
    assert plan.mem_sites == () and plan.watch_sites == ()
    assert plan.block_names == ("entry", "exit")


def test_ring_capacity_must_be_power_of_two():
    with pytest.raises(InstrumentError):
        ProbeBuffer(Image(), 0x0200_0000, n_blocks=1, n_watch=0,
                    ring_capacity=24)


def test_double_instrument_rejected():
    _img, _slot, _m, f, plan, buf = instrumented()
    with pytest.raises(InstrumentError):
        plan_probes(f, FULL)
    with pytest.raises(InstrumentError):
        inject_probes(f, plan, buf)


def test_plan_function_mismatch_rejected():
    img = Image()
    m = Module("t")
    f = build_memfn(m, "f")
    g = Function("g", FunctionType(I64, (I64,)))
    m.add_function(g)
    b = IRBuilder(g.add_block("start"))
    b.ret(g.args[0])
    verify(g)
    plan = plan_probes(f, FULL)
    buf = ProbeBuffer.allocate(img, plan)
    with pytest.raises(InstrumentError):
        inject_probes(g, plan, buf)


# -- injected semantics (interpreter = reference engine) ---------------------


def test_probes_count_without_changing_results():
    img, slot, m, f, _plan, buf = instrumented()
    it = Interpreter(m, img.memory)
    assert it.run(f, [7, slot]) == 8
    assert it.run(f, [41, slot]) == 42
    assert buf.call_count() == 2
    assert buf.block_counts() == {"entry": 2, "exit": 2}
    assert buf.watch_values() == [42]          # last observed return
    assert buf.watch_hits() == [2]
    events = buf.events()
    assert [(e.kind, e.payload) for e in events] == \
        [("store", slot), ("load", slot)] * 2
    assert [e.seq for e in events] == [0, 1, 2, 3]
    assert buf.dropped() == 0


def test_event_ring_wraps_with_exact_drop_count():
    img, slot, m, f, _plan, buf = instrumented(
        InstrumentOptions(trace_memory=True, ring_capacity=4))
    it = Interpreter(m, img.memory)
    for i in range(5):
        it.run(f, [i, slot])               # 2 events per call
    assert buf.cursor() == 10
    assert buf.dropped() == 6
    assert len(buf.events()) == 4          # retained tail only
    assert buf.drain()[-1].seq == 9
    assert buf.cursor() == 0               # drain resets the cursor
    assert buf.call_count() == 5           # ...but not the counters


# -- strip: the exact inverse ------------------------------------------------


def test_strip_restores_exact_text_and_bumps_versions():
    img = Image()
    m = Module("t")
    f = build_memfn(m)
    before = print_function(f)
    v0 = f.version
    plan = plan_probes(f, FULL)
    buf = ProbeBuffer.allocate(img, plan)
    inject_probes(f, plan, buf)
    assert f.version > v0, "injection must bump the version"
    assert is_instrumented(f)
    assert print_function(f) != before
    v1 = f.version
    removed = strip_instrumentation(f)
    assert removed > 0
    assert f.version > v1, "strip must bump the version"
    assert not is_instrumented(f)
    assert print_function(f) == before
    verify(f)
    # idempotent: nothing left to remove, no gratuitous version bump
    v2 = f.version
    assert strip_instrumentation(f) == 0
    assert f.version == v2


def test_strip_detects_program_dependence_on_probe_value():
    _img, _slot, _m, f, _plan, _buf = instrumented()
    probe_val = next(ins for ins in f.instructions()
                     if ins.probe is not None and ins.opcode == "load")
    term = f.blocks[-1].terminator
    term.operands[0] = probe_val          # program now reads a probe value
    with pytest.raises(InstrumentError):
        strip_instrumentation(f)


def test_clone_and_rollback_preserve_probe_tags():
    img = Image()
    m = Module("t")
    f = build_memfn(m)
    plain = print_function(f)
    plan = plan_probes(f, FULL)
    buf = ProbeBuffer.allocate(img, plan)
    inject_probes(f, plan, buf)
    snapshot = clone_function(f)
    assert sum(1 for i in snapshot.instructions() if i.probe is not None) \
        == sum(1 for i in f.instructions() if i.probe is not None)
    strip_instrumentation(f)
    assert print_function(f) == plain
    restore_function(f, snapshot)
    assert is_instrumented(f), "rollback must bring the probe tags back"
    strip_instrumentation(f)              # ...and stay strippable
    assert print_function(f) == plain


# -- probe-ops pregate -------------------------------------------------------


def test_pregate_accepts_wellformed_probes():
    _img, _slot, _m, f, _plan, buf = instrumented()
    assert check_probe_ops(f, buf.extent()) == []


def test_pregate_rejects_probe_store_outside_buffer():
    _img, slot, _m, f, _plan, buf = instrumented()
    # hostile probe: tagged store aimed at *program* memory
    p = I.Cast("inttoptr", Constant(I64, slot), ptr(I64))
    p.name = f.next_name("p")
    p.probe = ("mem", 99)
    s = I.Store(Constant(I64, 1), p, align=8)
    s.probe = ("mem", 99)
    f.entry.insert(0, p)
    f.entry.insert(1, s)
    findings = check_probe_ops(f, buf.extent())
    assert findings
    assert all(fd.checker == "probe-ops" for fd in findings)
    assert any("escapes the probe buffer" in fd.message for fd in findings)


def test_pregate_rejects_program_consuming_probe_value():
    _img, _slot, _m, f, _plan, buf = instrumented()
    probe_val = next(ins for ins in f.instructions()
                     if ins.probe is not None and ins.opcode == "load")
    term = f.blocks[-1].terminator
    term.operands[0] = probe_val
    findings = check_probe_ops(f, buf.extent())
    assert any("consumes probe value" in fd.message for fd in findings)


def test_pregate_is_interval_precise_not_just_syntactic():
    # the ring-append chain bounds the cursor with `and mask`; shrinking
    # the claimed extent by one byte must flip the verdict
    _img, _slot, _m, f, _plan, buf = instrumented()
    lo, hi = buf.extent()
    assert check_probe_ops(f, (lo, hi)) == []
    assert check_probe_ops(f, (lo, hi - 1))


# -- pass-schedule fingerprints ----------------------------------------------


def test_shape_class_separates_instrumented_bodies():
    from repro.ir.passes.schedule import ShapeFingerprint

    m = Module("t")
    f = build_memfn(m)
    plain_class = ShapeFingerprint(f).shape_class
    img = Image()
    plan = plan_probes(f, FULL)
    buf = ProbeBuffer.allocate(img, plan)
    inject_probes(f, plan, buf)
    probed = ShapeFingerprint(f)
    assert probed.nprobes > 0
    assert probed.shape_class.endswith("P")
    assert probed.shape_class != plain_class
    strip_instrumentation(f)
    assert ShapeFingerprint(f).shape_class == plain_class
