"""Instrumenter end-to-end: machine-verified, gate-admitted installs.

Instrumentation is a workload: an instrumented install crosses every
trust boundary a specialization does — probe-ops pregate, machine-level
translation validation of the emitted bytes (probe stores included), and
the differential gate under the probe-buffer effects-whitelist.  These
tests drive the whole pipeline on real machine code and check both the
happy path and each rejection boundary.
"""

from __future__ import annotations

import pytest

from repro import FunctionSignature, Simulator, compile_c
from repro.guard.verify import DifferentialGate, GateOptions
from repro.instrument import (
    InstrumentOptions,
    Instrumenter,
    audit_probe_state,
    is_instrumented,
    strip_instrumentation,
)
from repro.obs import metrics as _metrics

LOOP_SRC = ("long f(long a, long b) "
            "{ long s = 0; for (long i = 0; i < a; i++) s += i * b; "
            "return s; }")
SIG = FunctionSignature(("i", "i"), "i")
PROBES = ((6, 3), (1, 9), (0, 5))


def expected(a, b):
    return sum(i * b for i in range(a))


@pytest.fixture()
def prog():
    return compile_c(LOOP_SRC)


def install(prog, **kw):
    kw.setdefault("gate_options", GateOptions(samples=1))
    inst = Instrumenter(prog.image, **kw)
    return inst.instrument("f", SIG, probes=PROBES,
                           options=InstrumentOptions(watch_returns=True))


def test_instrumented_install_end_to_end(prog):
    res = install(prog)
    assert res.machine_verdict in ("proved", "inconclusive")
    assert res.gate_report is not None and res.gate_report.passed
    assert not res.gate_report.vacuous
    assert res.buffer.size > 0
    assert set(res.seconds) >= {"lift", "opt", "inject", "pregate", "codegen",
                                "gate"}

    res.buffer.reset()      # the gate ran probes through shadow images only
    sim = Simulator(prog.image)
    for a, b in ((6, 3), (10, 7)):
        sim.invalidate_code()
        assert sim.call(res.addr, (a, b)).rax == expected(a, b)
    assert res.buffer.call_count() == 2
    # loop body heat: 6 + 10 iterations dominate the 2 calls
    assert res.buffer.hotness() >= 16
    assert res.buffer.watch_values() == [expected(10, 7)]
    assert audit_probe_state(res, expected_calls=2) == []
    assert res.profile().hotness() == res.buffer.hotness()


def test_whitelist_is_load_bearing(prog):
    """Without the probe-buffer ignore region the very same install must
    fail a differential gate: probe writes are real memory effects."""
    res = install(prog)
    entry = prog.image.symbol("f")
    bare = DifferentialGate(prog.image, GateOptions(samples=0))
    report = bare.check(entry, res.addr, SIG, None, PROBES)
    assert not report.passed
    assert "memory" in (report.reason or "")
    # and with the whitelist, the same comparison passes
    allow = DifferentialGate(prog.image, GateOptions(
        samples=0, ignore_regions=(res.buffer.extent(),)))
    assert allow.gate(entry, res.addr, SIG, None, PROBES).passed


def test_audit_detects_counter_tampering(prog):
    res = install(prog)
    res.buffer.reset()
    sim = Simulator(prog.image)
    sim.invalidate_code()
    sim.call(res.addr, (4, 2))
    assert audit_probe_state(res, expected_calls=1) == []
    # cosmic-ray the entry-block counter: the tie-out must notice
    prog.image.memory.write(res.buffer.block_counter_addr(0), b"\x2a" + b"\x00" * 7)
    violations = audit_probe_state(res, expected_calls=1)
    assert violations and any("entry block" in v for v in violations)


def test_metrics_and_strip_surface(prog):
    installs = _metrics.counter("instrument.installs")
    before = installs.value
    res = install(prog)
    assert installs.value == before + 1
    fam = _metrics.REGISTRY.family("instrument.probes")
    assert fam.get("edge", 0) > 0 and fam.get("call", 0) > 0
    # the handle's IR strips back to an uninstrumented body
    assert is_instrumented(res.function)
    assert strip_instrumentation(res.function) > 0
    assert not is_instrumented(res.function)


def test_options_digest_distinct_per_configuration():
    digests = {
        InstrumentOptions().digest(),
        InstrumentOptions(edge_counters=False).digest(),
        InstrumentOptions(call_counter=False).digest(),
        InstrumentOptions(trace_memory=True).digest(),
        InstrumentOptions(watch_returns=True).digest(),
        InstrumentOptions(ring_capacity=512).digest(),
    }
    assert len(digests) == 6


def test_distinct_installs_get_disjoint_buffers(prog):
    r1 = install(prog)
    r2 = Instrumenter(prog.image, gate_options=GateOptions(samples=1)) \
        .instrument("f", SIG, probes=PROBES, name="f.instr2")
    lo1, hi1 = r1.buffer.extent()
    lo2, hi2 = r2.buffer.extent()
    assert hi1 <= lo2 or hi2 <= lo1, "probe buffers must never overlap"
    assert r1.addr != r2.addr
