"""Machine-level translation validation: verifier unit + wiring tests.

Covers the three layers of the subsystem:

* the prover itself (``repro.analysis.machine``) — positive proofs over
  representative IR shapes, refutation of real miscompiles, CFG audits;
* the backend regression the verifier caught (``_emit_synth_mult`` with
  an empty step chain left the destination register unwritten);
* the install-boundary wiring — BinaryTransformer verdicts and
  quarantine, GuardedTransformer rejection accounting and the mandatory
  gate downgrade on inconclusive proofs, farm protocol fields.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.machine import (
    INCONCLUSIVE,
    PROVED,
    REFUTED,
    VerifyResult,
    build_mcfg,
    verify_witness,
)
from repro.cache import SpecializationCache
from repro.cpu import Image, Simulator
from repro.errors import VerificationError
from repro.guard import GuardedTransformer
from repro.ir import FunctionType, Module
from repro.ir.builder import IRBuilder
from repro.ir.codegen import JITEngine, JITOptions
from repro.ir.irtypes import DOUBLE, I8, I64
from repro.ir.module import Function
from repro.jit import BinaryTransformer
from repro.lift import FunctionSignature


def build(ret, params):
    m = Module("t")
    f = Function("f", FunctionType(ret, tuple(params)))
    m.add_function(f)
    return m, f, IRBuilder(f.add_block("entry"))


def compile_witness(f, options=None):
    img = Image()
    jit = JITEngine(img, options or JITOptions())
    addr = jit.compile_function(f, name=f.name)
    assert jit.last_witness is not None
    return img, addr, jit.last_witness


# -- positive proofs ---------------------------------------------------------


def _diamond():
    m, f, b = build(I64, (I64, I64))
    then = f.add_block("then")
    other = f.add_block("else")
    join = f.add_block("join")
    c = b.icmp("slt", f.args[0], f.args[1])
    b.cond_br(c, then, other)
    b.position_at_end(then)
    t = b.add(f.args[0], b.const(I64, 1))
    b.br(join)
    b.position_at_end(other)
    e = b.mul(f.args[1], b.const(I64, 3))
    b.br(join)
    b.position_at_end(join)
    p = b.phi(I64)
    p.add_incoming(t, then)
    p.add_incoming(e, other)
    b.ret(p)
    return f


def _loop():
    m, f, b = build(I64, (I64,))
    body = f.add_block("body")
    done = f.add_block("done")
    entry = f.blocks[0]
    b.br(body)
    b.position_at_end(body)
    i = b.phi(I64)
    acc = b.phi(I64)
    i2 = b.add(i, b.const(I64, 1))
    acc2 = b.add(acc, i)
    c = b.icmp("slt", i2, f.args[0])
    b.cond_br(c, body, done)
    i.add_incoming(b.const(I64, 0), entry)
    i.add_incoming(i2, body)
    acc.add_incoming(b.const(I64, 0), entry)
    acc.add_incoming(acc2, body)
    b.position_at_end(done)
    b.ret(acc2)
    return f


def _fp():
    m, f, b = build(DOUBLE, (DOUBLE, DOUBLE))
    s = b.fadd(f.args[0], f.args[1])
    p = b.fmul(s, f.args[0])
    b.ret(p)
    return f


@pytest.mark.parametrize("make", [_diamond, _loop, _fp])
def test_proves_clean_emissions(make):
    _, _, wit = compile_witness(make())
    report = verify_witness(wit)
    assert report.verdict == PROVED, (report.reasons,
                                      [x.message for x in report.findings])
    assert report.ok and report.blocks_checked >= 1


def test_mcfg_reconstructs_blocks():
    _, _, wit = compile_witness(_diamond())
    cfg = build_mcfg(wit)
    assert cfg.ok
    # entry plus the three IR blocks are all reachable leaders
    assert len(cfg.blocks) >= 3
    total = sum(len(blk.instructions) for blk in cfg.blocks.values())
    covered = sum(ins.length for blk in cfg.blocks.values()
                  for ins in blk.instructions)
    assert total > 0 and covered == len(wit.code)


def test_mcfg_flags_dead_bytes():
    _, _, wit = compile_witness(_fp())
    padded = dataclasses.replace(wit, code=wit.code + b"\x90\x90")
    cfg = build_mcfg(padded)
    assert any(f.checker == "machine.cfg.unreachable-bytes"
               for f in cfg.findings)


# -- refutation --------------------------------------------------------------


def test_refutes_single_bit_corruption():
    """At least one single-bit flip of the diamond must be refuted, and no
    flip may crash the verifier (garbage decodes are inconclusive)."""
    _, _, wit = compile_witness(_diamond())
    refuted = 0
    for byte in range(len(wit.code)):
        for bit in (0, 3, 7):
            mutated = bytearray(wit.code)
            mutated[byte] ^= 1 << bit
            report = verify_witness(
                dataclasses.replace(wit, code=bytes(mutated)))
            assert report.verdict in (PROVED, REFUTED, INCONCLUSIVE)
            if report.verdict == REFUTED:
                refuted += 1
    assert refuted > 0


def test_synth_mult_by_one_regression():
    """mul_style='lea' with an i8 multiply by constant 1: _synth_mult
    returns an empty chain and the emitter used to leave the destination
    register unwritten (stale value).  Caught by the machine verifier,
    fixed in _emit_synth_mult; both oracles must agree it is fixed."""
    for style in ("imul", "lea"):
        m, f, b = build(I64, (I64,))
        t = b.trunc(f.args[0], I8)
        p = b.mul(t, b.const(I8, 1))
        b.ret(b.zext(p, I64))
        img, addr, wit = compile_witness(
            f, JITOptions(mul_style=style, optimize_tac=False))
        assert Simulator(img).call_int(addr, (5,)) == 5
        assert verify_witness(wit).verdict == PROVED


# -- BinaryTransformer wiring ------------------------------------------------

_SRC = "long madd(long a, long b, long c) { return a * b + c; }"
_SIG = FunctionSignature(("i", "i", "i"), "i")


def _program():
    from repro.cc import compile_c
    return compile_c(_SRC)


def test_transformer_records_verdict_and_serves_it_warm():
    prog = _program()
    cache = SpecializationCache()
    tx = BinaryTransformer(prog.image, cache=cache, machine_verify=True)
    cold = tx.llvm_identity("madd", _SIG)
    assert cold.machine_verdict == PROVED
    assert cold.machine_verify_seconds > 0.0
    warm = tx.llvm_identity("madd", _SIG)
    assert warm.cache_stage == "machine"
    assert warm.machine_verdict == PROVED
    assert warm.machine_verify_seconds == 0.0


def test_transformer_off_by_default():
    prog = _program()
    res = BinaryTransformer(prog.image).llvm_identity("madd", _SIG)
    assert res.machine_verdict is None
    assert res.machine_verify_seconds == 0.0


def test_refuted_proof_quarantines_before_install(monkeypatch):
    import repro.jit.engine as jit_engine

    prog = _program()
    cache = SpecializationCache()
    tx = BinaryTransformer(prog.image, cache=cache, machine_verify=True)
    monkeypatch.setattr(
        jit_engine, "verify_emitted",
        lambda jit, name: VerifyResult(verdict=REFUTED))
    with pytest.raises(VerificationError) as exc:
        tx.llvm_identity("madd", _SIG)
    assert exc.value.context.get("stage") == "machine-verify"
    # nothing was installed in the positive store ...
    assert cache.stats.stores == 0 or all(
        cache.get_machine(prog.image, k) is None for k in ())
    # ... and the request key is quarantined: the retry fails fast without
    # re-running the pipeline, even after the verifier is restored
    monkeypatch.undo()
    with pytest.raises(VerificationError) as exc2:
        tx.llvm_identity("madd", _SIG)
    assert exc2.value.context.get("quarantined") is True


# -- GuardedTransformer wiring -----------------------------------------------


def test_guard_counts_machine_rejections(monkeypatch):
    import repro.jit.engine as jit_engine

    prog = _program()
    guard = GuardedTransformer(prog.image, cache=SpecializationCache(),
                               machine_verify=True)
    monkeypatch.setattr(
        jit_engine, "verify_emitted",
        lambda jit, name: VerifyResult(verdict=REFUTED))
    res = guard.transform("madd", _SIG)
    assert res.degraded
    assert guard.stats.machine_rejections >= 1
    assert guard.stats.verification_rejections == 0


def test_inconclusive_proof_forces_dynamic_gate(monkeypatch):
    """verify=False normally installs ungated; an inconclusive machine
    proof downgrades that to a mandatory differential gate."""
    import repro.jit.engine as jit_engine

    monkeypatch.setattr(
        jit_engine, "verify_emitted",
        lambda jit, name: VerifyResult(verdict=INCONCLUSIVE,
                                       reasons=["forced for test"]))
    prog = _program()
    guard = GuardedTransformer(prog.image, verify=False, machine_verify=True)
    res = guard.transform("madd", _SIG)
    assert not res.degraded
    assert res.gate is not None  # the gate ran despite verify=False

    prog2 = _program()
    monkeypatch.undo()
    guard2 = GuardedTransformer(prog2.image, verify=False, machine_verify=True)
    res2 = guard2.transform("madd", _SIG)
    assert res2.result.machine_verdict == PROVED
    assert res2.gate is None  # proved: verify=False keeps its meaning


# -- farm protocol -----------------------------------------------------------


def test_farm_protocol_carries_verdict():
    from repro.farm import protocol as fp

    job = fp.CompileJob(
        key="k", name="n", tier=1, func="f", signature=_SIG, fixes=None,
        mem_regions=(), probes=(), dbrew_func=None, ladder=(),
        image_key="img", lift=None, o3=None, jit=None)
    assert job.machine_verify is False
    res = fp.CompileResult(key="k", name="n", tier=1)
    assert res.machine_verdict is None
    res2 = fp.CompileResult(key="k", name="n", tier=1,
                            machine_verdict=PROVED)
    assert res2.machine_verdict == PROVED
