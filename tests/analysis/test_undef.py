"""Undef-use checker: seeded bugs are caught, clean and benign IR is not."""

from repro.ir import (
    DOUBLE, I64, V2F64, Function, FunctionType, IRBuilder, Module, ptr,
)
from repro.ir.values import Undef

from repro.analysis.undef import check_undef_uses


def _func(name="f", ret=I64, params=(I64,)):
    m = Module("t")
    f = Function(name, FunctionType(ret, tuple(params)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    return f, b


def _messages(findings):
    return [f.message for f in findings]


def test_undef_return_value_caught():
    f, b = _func()
    b.ret(b.add(Undef(I64), f.args[0]))
    findings = check_undef_uses(f)
    assert len(findings) == 1
    assert "return value" in findings[0].message
    assert findings[0].checker == "undef-use"
    assert findings[0].is_error


def test_undef_branch_condition_caught():
    f, b = _func()
    then = f.add_block("then")
    els = f.add_block("els")
    cond = b.icmp("eq", Undef(I64), b.const(I64, 0))
    b.cond_br(cond, then, els)
    b.position_at_end(then)
    b.ret(b.const(I64, 1))
    b.position_at_end(els)
    b.ret(b.const(I64, 2))
    findings = check_undef_uses(f)
    assert any("branch condition" in m for m in _messages(findings))


def test_undef_store_and_load_address_caught():
    f, b = _func()
    p = b.inttoptr(Undef(I64), ptr(I64))
    b.store(b.const(I64, 1), p)
    v = b.load(p)
    b.ret(v)
    findings = check_undef_uses(f)
    assert any("store address" in m for m in _messages(findings))
    assert any("load address" in m for m in _messages(findings))
    # the load *result* is clean even though its address was tainted
    assert not any("return value" in m for m in _messages(findings))


def test_undef_spill_to_alloca_is_benign():
    # the lifter's prologue: spill callee-saved (undef at entry) registers
    # to the virtual stack; only observable via a later load, which the
    # machine model defines
    f, b = _func()
    stack = b.alloca(I64, size=64)
    slot = b.gep_i(stack, 2)
    b.store(Undef(I64), slot)
    b.ret(f.args[0])
    assert check_undef_uses(f) == []


def test_undef_store_to_foreign_memory_caught():
    f, b = _func()
    p = b.inttoptr(f.args[0], ptr(I64))
    b.store(Undef(I64), p)
    b.ret(b.const(I64, 0))
    findings = check_undef_uses(f)
    assert any("stored value" in m for m in _messages(findings))


def test_byte_granular_lane_insert_and_splat_clean():
    # movsd + unpcklpd idiom: insert a loaded double into lane 0 of an
    # undef-upper xmm, then splat lane 0 — the result is fully defined
    f, b = _func(ret=DOUBLE, params=(I64,))
    p = b.inttoptr(f.args[0], ptr(DOUBLE))
    d = b.load(p)
    vec = b.insertelement(Undef(V2F64), d, 0)
    splat = b.shufflevector(vec, vec, (0, 0))
    out = b.inttoptr(b.const(I64, 0x5000), ptr(V2F64))
    b.store(splat, out)
    b.ret(b.extractelement(splat, 1))
    assert check_undef_uses(f) == []


def test_byte_granular_undef_lane_still_caught():
    # same idiom without the splat: lane 1 stays undef, and storing the
    # full vector to non-local memory leaks it
    f, b = _func(ret=DOUBLE, params=(I64,))
    p = b.inttoptr(f.args[0], ptr(DOUBLE))
    d = b.load(p)
    vec = b.insertelement(Undef(V2F64), d, 0)
    out = b.inttoptr(b.const(I64, 0x5000), ptr(V2F64))
    b.store(vec, out)
    b.ret(b.extractelement(vec, 0))
    findings = check_undef_uses(f)
    assert any("stored value" in m for m in _messages(findings))
    # ...but extracting the *defined* lane 0 is clean
    assert not any("return value" in m for m in _messages(findings))


def test_unreachable_sink_not_reported():
    f, b = _func()
    b.ret(f.args[0])
    dead = f.add_block("dead")
    b.position_at_end(dead)
    b.ret(Undef(I64))
    assert check_undef_uses(f) == []


def test_clean_arithmetic_function():
    f, b = _func(params=(I64, I64))
    x = b.mul(f.args[0], b.const(I64, 3))
    b.ret(b.add(x, f.args[1]))
    assert check_undef_uses(f) == []
