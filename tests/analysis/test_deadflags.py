"""Dead-flag analysis: consumed vs dead vs eliminated status flags."""

from repro.ir import I1, I64, Function, FunctionType, IRBuilder, Module

from repro.analysis.deadflags import analyze_flags, flag_letter_of


def _flagged_function():
    """A two-block loop threading z (consumed by the branch) and c (fed
    only back into the flag network) through ``fl*`` phis."""
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)))
    m.add_function(f)
    entry = f.add_block("entry")
    header = f.add_block("header")
    exit_ = f.add_block("exit")
    b = IRBuilder(entry)
    z0 = b.icmp("eq", f.args[0], b.const(I64, 0))
    c0 = b.icmp("ult", f.args[0], b.const(I64, 4))
    b.br(header)
    b.position_at_end(header)
    flz = b.phi(I1, "flz1")
    flc = b.phi(I1, "flc1")
    flc2 = b.phi(I1, "flc2")
    flz.add_incoming(z0, entry)
    flz.add_incoming(flz, header)
    flc.add_incoming(c0, entry)
    flc.add_incoming(flc2, header)   # c feeds only other flag phis
    flc2.add_incoming(flc, entry)
    flc2.add_incoming(flc, header)
    b.cond_br(flz, header, exit_)    # z is consumed by a real instruction
    b.position_at_end(exit_)
    b.ret(f.args[0])
    return f


def test_flag_letter_extraction():
    f = _flagged_function()
    header = f.blocks[1]
    letters = [flag_letter_of(i) for i in header.instructions[:3]]
    assert letters == ["z", "c", "c"]
    assert flag_letter_of(header.instructions[3]) is None  # the cond_br


def test_consumed_vs_dead_vs_eliminated():
    report = analyze_flags(_flagged_function())
    assert report.present == {"z", "c"}
    assert report.consumed == {"z"}
    assert report.dead_flags() == ["c"]
    assert sorted(report.eliminated_flags()) == ["a", "o", "p", "s"]
    assert report.phi_counts == {"z": 1, "c": 2}


def test_summary_format():
    s = analyze_flags(_flagged_function()).summary()
    assert "consumed=z" in s
    assert "dead=c" in s
    assert "eliminated=osap" in s  # FLAG_LETTERS ("oszapc") order


def test_no_flags_at_all():
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    b.ret(f.args[0])
    report = analyze_flags(f)
    assert report.present == set()
    assert report.dead_flags() == []
    assert len(report.eliminated_flags()) == 6
