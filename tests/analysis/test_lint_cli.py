"""Lint CLI: clean corpus is clean, findings fail the run, JSON round-trips."""

import json

import pytest

from repro.analysis.lint import CORPORA, main, run_lint


def test_examples_corpus_clean():
    result = run_lint(["examples"])
    assert result.functions == 3
    assert result.findings == []


def test_stencil_corpus_clean():
    result = run_lint(["stencil"])
    assert result.functions == 6
    assert result.findings == []


def test_post_o3_still_clean():
    result = run_lint(["examples"], post_o3=True)
    assert result.findings == []


def test_stats_collects_flag_reports():
    result = run_lint(["examples"], stats=True)
    assert len(result.flag_reports) == result.functions == 3
    # post-O3 the lifted flag network must be fully gone (Fig. 6's point)
    for report in result.flag_reports:
        assert len(report.eliminated_flags()) == 6


def test_cli_exit_zero_and_summary(capsys):
    assert main(["--corpus", "examples"]) == 0
    out = capsys.readouterr().out
    assert "linted 3 functions" in out
    assert "0 errors" in out


def test_cli_json_output(capsys):
    assert main(["--corpus", "examples", "--json", "--stats"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["functions"] == 3
    assert payload["errors"] == 0
    assert payload["findings"] == []
    assert len(payload["flags"]) == 3


def test_cli_checker_subset(capsys):
    assert main(["--corpus", "examples", "--checkers", "undef-use"]) == 0


def test_cli_unknown_checker_is_usage_error():
    with pytest.raises(SystemExit) as exc:
        main(["--corpus", "examples", "--checkers", "bogus"])
    assert exc.value.code == 2


def test_cli_rejects_unknown_corpus():
    with pytest.raises(SystemExit):
        main(["--corpus", "nope"])


def test_findings_fail_the_run(monkeypatch, capsys):
    from repro.analysis import lint as lint_mod
    from repro.analysis.findings import ERROR, Finding

    def fake_checkers(func, checkers=None):
        return [Finding(checker="undef-use", function=func.name,
                        severity=ERROR, message="seeded finding")]

    monkeypatch.setattr(lint_mod, "run_checkers", fake_checkers)
    assert main(["--corpus", "examples"]) == 1
    out = capsys.readouterr().out
    assert "seeded finding" in out
    assert "3 errors" in out


def test_machine_layer_on_clean_corpus():
    result = run_lint(["examples"], machine=True)
    assert [m["verdict"] for m in result.machine] == ["proved"] * 3
    assert result.errors == []


def test_cli_machine_text_output(capsys):
    assert main(["--corpus", "examples", "--machine"]) == 0
    out = capsys.readouterr().out
    assert "machine poly.lifted: proved" in out


def test_cli_format_sarif(capsys):
    assert main(["--corpus", "examples", "--format", "sarif",
                 "--machine"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.analysis.lint"
    assert run["results"] == []
    assert len(run["properties"]["machine"]) == 3


def test_cli_format_json_matches_legacy_flag(capsys):
    assert main(["--corpus", "examples", "--format", "json"]) == 0
    a = json.loads(capsys.readouterr().out)
    assert main(["--corpus", "examples", "--json"]) == 0
    b = json.loads(capsys.readouterr().out)
    assert a == b and "machine" in a


def test_cli_crash_exits_three(monkeypatch, capsys):
    from repro.analysis import lint as lint_mod

    def boom(*args, **kwargs):
        raise RuntimeError("toolchain fell over")

    monkeypatch.setattr(lint_mod, "run_lint", boom)
    assert main(["--corpus", "examples"]) == 3
    assert "lint run crashed" in capsys.readouterr().err


def test_corpora_registry_shape():
    for corpus, programs in CORPORA.items():
        for source, signatures in programs:
            assert isinstance(source, str) and signatures
