"""Seeded mutation harness for the machine-level verifier.

Each corpus function (the lint examples plus Sec. VI stencil kernels) is
compiled to machine code, then attacked with deterministic bit-flip and
byte-splice mutations of its emitted bytes.  The static verifier judges
every mutant; a mutant counts as *detected* when the verdict is anything
other than ``proved`` (a refutation or an inconclusive downgrade both
keep the mutant out of unguarded installation).

Mutants the verifier *proves* are executed against the unmutated code on
concrete probes (return value + every output buffer).  A proved mutant
that diverges dynamically is a true **escape** — a soundness hole in the
prover.  Escapes are minimized to a single-byte patch when possible and
persisted to ``machine_escapes.txt`` next to this file; recorded escapes
are replayed forever by ``test_replay_recorded_escapes``.

The acceptance bar: ≥95% of semantics-changing mutants detected.  Since
only proved mutants are executed (executing refuted garbage could stomp
arbitrary image state), the denominator uses the refuted count as the
known-semantics-changing population — refutations on a clean corpus are
content-determined counterexamples, not heuristics.

``REPRO_MUTANTS`` scales the per-function mutant count (default keeps
local runs quick; CI raises it).
"""

from __future__ import annotations

import dataclasses
import os
import random
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import pytest

from repro.analysis.lint import CORPORA
from repro.analysis.machine import PROVED, REFUTED, verify_witness
from repro.cc import compile_c
from repro.cpu import Image, Simulator
from repro.ir.codegen import JITEngine
from repro.ir.module import Module
from repro.ir.passes import run_o3
from repro.lift import LiftOptions, lift_function
from repro.stencil.jacobi import JacobiSetup, StencilWorkspace

MUTANTS = int(os.environ.get("REPRO_MUTANTS", "24"))
_ESCAPES = Path(__file__).with_name("machine_escapes.txt")


@dataclass
class Case:
    """One compiled corpus function plus its dynamic oracle."""

    name: str
    image: Image
    witness: object
    addr: int
    #: (int_args, f64_args) per probe
    probes: list[tuple[tuple, tuple]]
    #: (addr, size) regions compared after every probe call
    out_regions: list[tuple[int, int]]
    #: "i" (rax), "f" (xmm0 bits) or None (void)
    result: str | None
    #: re-initialize input/output buffers before each probe run
    reset: Callable[[], None] = lambda: None
    baseline: list[tuple[object, list[bytes]]] = field(default_factory=list)

    def run_probe(self, sim: Simulator, probe) -> tuple[object, list[bytes]]:
        self.reset()
        ints, floats = probe
        st = sim.call(self.addr, tuple(ints), tuple(floats),
                      max_steps=2_000_000)
        val = {"i": st.rax, "f": st.xmm0, None: None}[self.result]
        mem = self.image.memory
        return val, [mem.read(a, s) for a, s in self.out_regions]


def _jit_corpus_function(image: Image, name: str, sig) -> tuple[object, int]:
    """Lift ``name`` from ``image``, run -O3, JIT it back in; witness+addr."""
    module = Module(f"mut.{name}")
    func = lift_function(image.memory, image.symbol(name), sig,
                         LiftOptions(name=f"{name}.jit"), module)
    run_o3(func)
    jit = JITEngine(image)
    addr = jit.compile_function(func, name=f"{name}.jit")
    assert jit.last_witness is not None
    return jit.last_witness, addr


def _example_cases() -> list[Case]:
    cases = []
    for source, signatures in CORPORA["examples"]:
        prog = compile_c(source)
        img = prog.image
        mem = img.memory
        for name, sig in signatures.items():
            wit, addr = _jit_corpus_function(img, name, sig)
            if name == "poly":
                coeff = img.alloc_data(8 * 4, align=16)

                def reset(mem=mem, coeff=coeff):
                    for i, v in enumerate((1.0, -2.0, 0.5, 3.0)):
                        mem.write_f64(coeff + 8 * i, v)

                probes = [((coeff, 4), (2.5,)), ((coeff, 4), (-0.75,)),
                          ((coeff, 0), (9.0,))]
                out, res = [(coeff, 32)], "f"
            elif name == "dot":
                a = img.alloc_data(8 * 4, align=16)
                bb = img.alloc_data(8 * 4, align=16)

                def reset(mem=mem, a=a, bb=bb):
                    for i in range(4):
                        mem.write_f64(a + 8 * i, 1.5 * i - 2.0)
                        mem.write_f64(bb + 8 * i, 0.5 * i + 1.0)

                probes = [((a, bb, 4), ()), ((a, bb, 2), ()),
                          ((a, bb, 0), ())]
                out, res = [(a, 32), (bb, 32)], "f"
            else:  # clamp_sum
                v = img.alloc_data(8 * 4, align=16)

                def reset(mem=mem, v=v):
                    for i, x in enumerate((5, -3, 12, 7)):
                        mem.write_u64(v + 8 * i, x & ((1 << 64) - 1))

                probes = [((v, 4, 0, 10), ()), ((v, 4, -100, 100), ()),
                          ((v, 1, 6, 6), ())]
                out, res = [(v, 32)], "i"
            cases.append(Case(name, img, wit, addr, probes, out, res, reset))
    return cases


def _stencil_cases() -> list[Case]:
    ws = StencilWorkspace(JacobiSetup(sz=16), vectorize=False)
    img, sz = ws.image, 16
    m_size = 8 * sz * sz
    sig_by_name = dict(CORPORA["stencil"][0][1])
    picks = [("apply_direct", 0), ("apply_flat", ws.flat.addr),
             ("apply_sorted", ws.sorted.addr), ("line_direct", 0)]
    cases = []
    for name, s_arg in picks:
        wit, addr = _jit_corpus_function(img, name, sig_by_name[name])
        if name.startswith("apply"):
            probes = [((s_arg, ws.m1, ws.m2, y * sz + x), ())
                      for y, x in ((2, 3), (8, 8), (14, 1))]
        else:
            probes = [((s_arg, ws.m1, ws.m2, 2, 1, sz - 1), ()),
                      ((s_arg, ws.m1, ws.m2, 9, 4, 7), ())]
        cases.append(Case(name, img, wit, addr, probes,
                          [(ws.m1, m_size), (ws.m2, m_size)], None,
                          ws.reset_matrices))
    return cases


def _mutate(code: bytes, rng: random.Random) -> bytes:
    buf = bytearray(code)
    if rng.random() < 0.6:  # bit flip
        buf[rng.randrange(len(buf))] ^= 1 << rng.randrange(8)
    else:  # byte splice
        off = rng.randrange(len(buf))
        n = min(rng.randint(1, 4), len(buf) - off)
        buf[off:off + n] = bytes(rng.randrange(256) for _ in range(n))
    return bytes(buf)


def _case_seed(name: str, index: int) -> int:
    return (zlib.crc32(name.encode()) << 12) ^ index


def _mutant_code(case: Case, index: int) -> bytes:
    return _mutate(case.witness.code, random.Random(_case_seed(case.name,
                                                              index)))


def _oracle_equivalent(case: Case, sim: Simulator, mutated: bytes) -> bool:
    """Execute the mutant; True when every probe matches the baseline."""
    mem = case.image.memory
    original = case.witness.code
    try:
        mem.write(case.witness.base, mutated)
        sim.invalidate_code()
        for probe, want in zip(case.probes, case.baseline):
            try:
                got = case.run_probe(sim, probe)
            except Exception:
                return False
            if got != want:
                return False
        return True
    finally:
        mem.write(case.witness.base, original)
        sim.invalidate_code()
        case.reset()


def _minimize(case: Case, sim: Simulator, mutated: bytes) -> bytes:
    """Shrink an escaping mutant to a single differing byte if one still
    escapes (proved by the verifier AND dynamically divergent)."""
    orig = case.witness.code
    diff = [i for i in range(len(orig)) if mutated[i] != orig[i]]
    if len(diff) <= 1:
        return mutated
    for i in diff:
        single = bytearray(orig)
        single[i] = mutated[i]
        single = bytes(single)
        wit = dataclasses.replace(case.witness, code=single)
        if verify_witness(wit).verdict == PROVED \
                and not _oracle_equivalent(case, sim, single):
            return single
    return mutated


def _record_escape(case: Case, mutated: bytes) -> None:
    orig = case.witness.code
    patch = ",".join(f"{i}:{mutated[i]:02x}"
                     for i in range(len(orig)) if mutated[i] != orig[i])
    entry = f"{case.name}|{patch}"
    existing = _ESCAPES.read_text().splitlines() if _ESCAPES.exists() else []
    if entry not in existing:
        with _ESCAPES.open("a") as fh:
            fh.write(entry + "\n")


def _all_cases() -> list[Case]:
    cases = _example_cases() + _stencil_cases()
    for case in cases:
        sim = Simulator(case.image)
        case.baseline = [case.run_probe(sim, p) for p in case.probes]
    return cases


@pytest.fixture(scope="module")
def corpus():
    return _all_cases()


def test_mutation_detection(corpus):
    refuted = inconclusive = proved_equiv = 0
    escapes: list[tuple[Case, bytes]] = []
    for case in corpus:
        sim = Simulator(case.image)
        # sanity: the unmutated emission itself must prove
        assert verify_witness(case.witness).verdict == PROVED, case.name
        for index in range(MUTANTS):
            mutated = _mutant_code(case, index)
            if mutated == case.witness.code:
                continue
            verdict = verify_witness(
                dataclasses.replace(case.witness, code=mutated)).verdict
            if verdict == REFUTED:
                refuted += 1
            elif verdict != PROVED:
                inconclusive += 1
            elif _oracle_equivalent(case, sim, mutated):
                proved_equiv += 1
            else:
                mutated = _minimize(case, sim, mutated)
                _record_escape(case, mutated)
                escapes.append((case, mutated))
    # mutants hit real code bytes: most must be outright refuted
    assert refuted > 0
    changed = refuted + len(escapes)
    detection = 1.0 - len(escapes) / max(1, changed)
    assert detection >= 0.95, (
        f"detection {detection:.1%} over {changed} semantics-changing "
        f"mutants ({refuted} refuted, {inconclusive} inconclusive, "
        f"{proved_equiv} proved-equivalent, {len(escapes)} escapes: "
        f"{[c.name for c, _ in escapes]})")


def test_replay_recorded_escapes(corpus):
    """Escapes that ever slipped through stay covered forever: each must
    now be detected statically or be dynamically equivalent."""
    if not _ESCAPES.exists():
        return
    by_name = {c.name: c for c in corpus}
    for line in _ESCAPES.read_text().splitlines():
        name, _, patch = line.partition("|")
        case = by_name.get(name)
        if case is None or not patch:
            continue
        mutated = bytearray(case.witness.code)
        stale = False
        for tok in patch.split(","):
            off, _, val = tok.partition(":")
            if int(off) >= len(mutated):
                stale = True  # emission changed shape; patch meaningless
                break
            mutated[int(off)] = int(val, 16)
        if stale:
            continue
        mutated = bytes(mutated)
        verdict = verify_witness(
            dataclasses.replace(case.witness, code=mutated)).verdict
        if verdict == PROVED:
            sim = Simulator(case.image)
            assert _oracle_equivalent(case, sim, mutated), (
                f"recorded escape for {name} still escapes: {patch}")
