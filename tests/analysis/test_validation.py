"""Per-pass translation validation: attribution, rollback, quarantine."""

import pytest

from repro.cc import compile_c
from repro.ir import I64, Function, FunctionType, IRBuilder, Interpreter, Module
from repro.ir import instructions as I
from repro.ir.passes import run_o3
from repro.ir.values import Constant, Undef
from repro.jit import BinaryTransformer
from repro.lift import FunctionSignature
from repro.testing.faults import inject_faults

from repro.analysis import (
    PassValidator,
    ValidationOptions,
    clone_function,
    functions_structurally_equal,
)


def _poly_func(name="f"):
    """f(a, b) = (a + a) * 3 + b — enough redundancy for gvn/instcombine."""
    m = Module("t")
    f = Function(name, FunctionType(I64, (I64, I64)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    s1 = b.add(f.args[0], f.args[0])
    s2 = b.add(f.args[0], f.args[0])  # gvn fodder
    prod = b.mul(s1, b.const(I64, 3))
    dead = b.mul(s2, b.const(I64, 100))  # dce fodder
    b.ret(b.add(prod, f.args[1]))
    return m, f


def _corrupt_ret(result, func):
    """Silent miscompile: rewrite the return value to a constant."""
    for blk in func.blocks:
        for ins in blk.instructions:
            if isinstance(ins, I.Ret) and ins.value is not None:
                ins.operands[0] = Constant(I64, 12345)
                return None
    return None


def test_clean_run_validates_and_accepts():
    _m, f = _poly_func()
    report = run_o3(f, validate=True)
    assert report.validated
    assert report.pass_log  # every step produced a verdict
    assert report.rejected_passes == []
    assert report.miscompiled_pass is None
    assert all(v.ok for v in report.pass_log)


def test_injected_miscompile_attributed_to_exact_pass():
    m, f = _poly_func()
    validator = PassValidator()
    with inject_faults("pass:gvn", corrupt=_corrupt_ret):
        report = run_o3(f, validator=validator)
    assert report.validated
    assert report.miscompiled_pass == "gvn"
    assert report.rejected_passes == ["gvn"]
    bad = [v for v in report.pass_log if not v.ok and not v.quarantined]
    assert bad and bad[0].pass_name == "gvn"
    assert bad[0].rolled_back
    assert "divergence" in (bad[0].reason or "")
    assert validator.stats.rejected == 1
    assert validator.stats.rollbacks == 1
    # the rolled-back function still computes the right answer
    assert Interpreter(m).run(f, [5, 7]) == (5 + 5) * 3 + 7


def test_rejected_pass_is_quarantined_for_later_runs():
    validator = PassValidator()
    _m, f = _poly_func()
    with inject_faults("pass:gvn", corrupt=_corrupt_ret):
        run_o3(f, validator=validator)
    _m2, f2 = _poly_func("g")
    report = run_o3(f2, validator=validator)
    # gvn is skipped while quarantined: a quarantine verdict, no rejection
    assert validator.stats.quarantine_skips > 0
    quarantined = [v for v in report.pass_log if v.quarantined]
    assert quarantined and all(v.pass_name == "gvn" for v in quarantined)
    assert report.rejected_passes == []


def test_structural_corruption_rejected_by_verifier():
    def drop_terminator(result, func):
        func.blocks[-1].instructions.pop()
        return None

    _m, f = _poly_func()
    validator = PassValidator()
    with inject_faults("pass:dce", corrupt=drop_terminator):
        report = run_o3(f, validator=validator)
    assert report.miscompiled_pass == "dce"
    assert validator.stats.structural_rejections >= 1
    bad = [v for v in report.pass_log if not v.ok and not v.quarantined][0]
    assert bad.reason.startswith(("verifier:", "strict-ssa:"))
    # rollback restored a well-formed body: the function still runs
    assert Interpreter(_m).run(f, [2, 1]) == (2 + 2) * 3 + 1


def test_run_pass_noop_shortcut():
    _m, f = _poly_func()
    validator = PassValidator()
    result, verdict = validator.run_pass("nothing", lambda: False, f)
    assert verdict.ok and not verdict.changed
    assert validator.stats.validated == 0  # provable no-op: not validated


def test_run_pass_detects_lying_pass():
    # a pass that mutates the function but reports "no change" must still
    # be validated (structural diff overrides the claim)
    _m, f = _poly_func()
    validator = PassValidator()

    def lying_pass():
        _corrupt_ret(None, f)
        return False

    _result, verdict = validator.run_pass("liar", lying_pass, f)
    assert not verdict.ok
    assert verdict.rolled_back


def test_rollback_restores_exact_body():
    _m, f = _poly_func()
    snapshot = clone_function(f)
    validator = PassValidator()

    def corrupting_pass():
        _corrupt_ret(None, f)
        return True

    _result, verdict = validator.run_pass("bad", corrupting_pass, f)
    assert verdict.rolled_back
    assert functions_structurally_equal(f, snapshot)


def test_rollback_disabled_keeps_output():
    _m, f = _poly_func()
    validator = PassValidator(ValidationOptions(rollback=False))

    def corrupting_pass():
        _corrupt_ret(None, f)
        return True

    _result, verdict = validator.run_pass("bad", corrupting_pass, f)
    assert not verdict.ok and not verdict.rolled_back
    assert Interpreter(_m).run(f, [1, 1]) == 12345  # corruption kept


def test_float_tolerance_accepts_reassociation():
    from repro.ir import DOUBLE

    m = Module("t")
    f = Function("f", FunctionType(DOUBLE, (DOUBLE, DOUBLE)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    b.ret(b.fadd(b.fadd(f.args[0], b.fconst(DOUBLE, 0.1)), f.args[1]))
    validator = PassValidator()

    def reassociate():
        # (a + 0.1) + b  ->  a + (0.1 + b): bit-different, tolerably equal
        blk = f.blocks[0]
        inner, outer, _ret = blk.instructions
        inner.operands[0] = f.args[1]
        outer.operands[1] = f.args[0]
        return True

    _result, verdict = validator.run_pass("reassoc", reassociate, f)
    assert verdict.ok, verdict.reason


def test_validated_pipeline_through_transformer():
    program = compile_c("long f(long a, long b) { return a * b + 3; }")
    validator = PassValidator()
    tx = BinaryTransformer(program.image, validator=validator)
    res = tx.llvm_identity("f", FunctionSignature(("i", "i"), "i"))
    assert res.o3_report is not None
    assert res.o3_report.validated
    assert res.o3_report.rejected_passes == []
    assert validator.stats.validated > 0
    from repro.cpu import Simulator

    assert Simulator(program.image).call_int(res.name, (6, 7)) == 45
