"""Memory-region checker: provable escapes flagged, unprovable ones silent."""

from repro.ir import DOUBLE, I8, I64, Function, FunctionType, IRBuilder, Module, ptr
from repro.ir.module import GlobalVariable

from repro.analysis.memregion import check_memory_regions


def _func_with_region(size=32, ret=I64, params=(I64,)):
    m = Module("t")
    g = m.add_global(GlobalVariable("region", I8, bytes(size)))
    f = Function("f", FunctionType(ret, tuple(params)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    return f, b, g


def test_constant_oob_load_caught():
    f, b, g = _func_with_region(size=32)
    p = b.gep_i(g, 40)  # i8 elem: region + 40, region is 32 bytes
    q = b.bitcast(p, ptr(I64))
    b.ret(b.load(q))
    findings = check_memory_regions(f)
    assert len(findings) == 1
    assert "escape region of 32 bytes" in findings[0].message
    assert findings[0].checker == "mem-region"


def test_in_bounds_access_clean():
    f, b, g = _func_with_region(size=32)
    p = b.gep_i(g, 24)
    q = b.bitcast(p, ptr(I64))  # bytes 24..32: the last legal i64
    b.ret(b.load(q))
    assert check_memory_regions(f) == []


def test_access_size_counts():
    # offset 28 is in range for the *address*, but an 8-byte access
    # crosses the region end
    f, b, g = _func_with_region(size=32)
    p = b.gep_i(g, 28)
    q = b.bitcast(p, ptr(I64))
    b.ret(b.load(q))
    findings = check_memory_regions(f)
    assert len(findings) == 1
    assert "28..28" in findings[0].message


def test_negative_offset_caught():
    f, b, g = _func_with_region(size=32)
    p = b.gep_i(g, -1)
    b.store(b.const(I8, 7), p)
    b.ret(b.const(I64, 0))
    findings = check_memory_regions(f)
    assert len(findings) == 1
    assert "store" in findings[0].message


def test_gep_scaling_by_element_size():
    f, b, g = _func_with_region(size=32)
    d = b.bitcast(g, ptr(DOUBLE))
    p = b.gep_i(d, 4)  # 4 * 8 = byte 32: one past the end
    b.ret(b.load(b.bitcast(p, ptr(I64))))
    findings = check_memory_regions(f)
    assert len(findings) == 1


def test_unknown_index_is_silent():
    # index from an argument: unbounded — no proof, no finding
    f, b, g = _func_with_region(size=32)
    p = b.gep(g, f.args[0])
    b.ret(b.load(b.bitcast(p, ptr(I64))))
    assert check_memory_regions(f) == []


def test_loop_index_widens_to_silence():
    # a loop-carried index grows without bound; widening must go to
    # unbounded (no finding) rather than looping or flagging
    f, b, g = _func_with_region(size=32)
    entry = f.entry
    header = f.add_block("header")
    body = f.add_block("body")
    exit_ = f.add_block("exit")
    b.br(header)
    b.position_at_end(header)
    phi = b.phi(I64)
    cond = b.icmp("slt", phi, f.args[0])
    b.cond_br(cond, body, exit_)
    b.position_at_end(body)
    p = b.gep(g, phi)
    b.store(b.const(I8, 1), p)
    nxt = b.add(phi, b.const(I64, 1))
    b.br(header)
    phi.add_incoming(b.const(I64, 0), entry)
    phi.add_incoming(nxt, body)
    b.position_at_end(exit_)
    b.ret(b.const(I64, 0))
    assert check_memory_regions(f) == []


def test_pointer_arithmetic_via_int_ops():
    # specialized code does ptrtoint + add + inttoptr round-trips
    f, b, g = _func_with_region(size=16)
    base = b.ptrtoint(g, I64)
    addr = b.add(base, b.const(I64, 16))
    p = b.inttoptr(addr, ptr(I8))
    b.ret(b.load(b.bitcast(p, ptr(I64))))
    findings = check_memory_regions(f)
    assert len(findings) == 1
    assert "16..16" in findings[0].message


def test_foreign_pointer_silent():
    f, b, _g = _func_with_region(size=8)
    p = b.inttoptr(f.args[0], ptr(I64))
    b.ret(b.load(p))
    assert check_memory_regions(f) == []


def test_unreachable_access_silent():
    f, b, g = _func_with_region(size=8)
    b.ret(b.const(I64, 0))
    dead = f.add_block("dead")
    b.position_at_end(dead)
    p = b.gep_i(g, 100)
    b.ret(b.load(b.bitcast(p, ptr(I64))))
    assert check_memory_regions(f) == []
