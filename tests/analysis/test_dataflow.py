"""Dataflow engine on hand-built CFGs: diamond, loop, unreachable, self-loop."""

import pytest

from repro.ir import Function, FunctionType, I1, I64, IRBuilder, Module, VOID
from repro.ir.values import Constant, Undef

from repro.analysis.dataflow import (
    BACKWARD,
    FORWARD,
    BlockProblem,
    BoolLattice,
    Lattice,
    SetLattice,
    ValueProblem,
    predecessor_map,
    reachable_blocks,
    reverse_postorder,
    solve_block_problem,
    solve_value_problem,
)


def _func(name="f", ret=I64, params=(I64,)):
    m = Module("t")
    f = Function(name, FunctionType(ret, tuple(params)))
    m.add_function(f)
    return f


class TraceProblem(BlockProblem):
    """Forward: which block names can appear on a path reaching this block."""

    direction = FORWARD

    def lattice(self):
        return SetLattice()

    def transfer(self, block, state):
        return frozenset(state) | {block.name}


class LiveNamesProblem(BlockProblem):
    """Backward: block names reachable *from* this block (trace, reversed)."""

    direction = BACKWARD

    def lattice(self):
        return SetLattice()

    def transfer(self, block, state):
        return frozenset(state) | {block.name}


def _diamond():
    f = _func()
    entry = f.add_block("entry")
    then = f.add_block("then")
    els = f.add_block("els")
    merge = f.add_block("merge")
    b = IRBuilder(entry)
    cond = b.icmp("eq", f.args[0], b.const(I64, 0))
    b.cond_br(cond, then, els)
    b.position_at_end(then)
    t = b.add(f.args[0], b.const(I64, 1))
    b.br(merge)
    b.position_at_end(els)
    e = b.add(f.args[0], b.const(I64, 2))
    b.br(merge)
    b.position_at_end(merge)
    phi = b.phi(I64)
    phi.add_incoming(t, then)
    phi.add_incoming(e, els)
    b.ret(phi)
    return f, (entry, then, els, merge), phi


def test_diamond_forward_trace():
    f, (entry, then, els, merge), _ = _diamond()
    states = solve_block_problem(f, TraceProblem())
    assert states.inp[merge] == {"entry", "then", "els"}
    assert states.out[merge] == {"entry", "then", "els", "merge"}
    assert states.inp[then] == {"entry"}
    assert states.inp[entry] == frozenset()


def test_diamond_backward():
    f, (entry, then, els, merge), _ = _diamond()
    states = solve_block_problem(f, LiveNamesProblem())
    # inp = state at block entry (what lies at/below it), out = at block exit
    assert states.inp[entry] == {"entry", "then", "els", "merge"}
    assert states.inp[merge] == {"merge"}
    assert states.out[entry] == {"then", "els", "merge"}


def test_diamond_rpo_and_preds():
    f, (entry, then, els, merge), _ = _diamond()
    rpo = reverse_postorder(f)
    order = {b: i for i, b in enumerate(rpo)}
    assert order[entry] == 0
    assert order[merge] == 3
    assert order[then] < order[merge] and order[els] < order[merge]
    preds = predecessor_map(f)
    assert set(preds[merge]) == {then, els}
    assert preds[entry] == []


def test_loop_fixpoint():
    f = _func()
    entry = f.add_block("entry")
    header = f.add_block("header")
    body = f.add_block("body")
    exit_ = f.add_block("exit")
    b = IRBuilder(entry)
    b.br(header)
    b.position_at_end(header)
    phi = b.phi(I64)
    cond = b.icmp("slt", phi, f.args[0])
    b.cond_br(cond, body, exit_)
    b.position_at_end(body)
    nxt = b.add(phi, b.const(I64, 1))
    b.br(header)
    phi.add_incoming(b.const(I64, 0), entry)
    phi.add_incoming(nxt, body)
    b.position_at_end(exit_)
    b.ret(phi)

    states = solve_block_problem(f, TraceProblem())
    # the back edge folds the body into the header's reaching set
    assert states.inp[header] == {"entry", "header", "body"}
    assert states.inp[exit_] == {"entry", "header", "body"}
    assert states.inp[body] == {"entry", "header", "body"}


def test_unreachable_block_excluded_but_visited():
    f = _func()
    entry = f.add_block("entry")
    dead = f.add_block("dead")
    b = IRBuilder(entry)
    b.ret(f.args[0])
    b.position_at_end(dead)
    b.ret(b.const(I64, 9))

    assert reachable_blocks(f) == {entry}
    rpo = reverse_postorder(f)
    assert rpo[-1] is dead  # appended after the reachable RPO
    states = solve_block_problem(f, TraceProblem())
    # dense solver still assigns the dead block a state (its own transfer
    # over bottom), it just never receives flow from the entry
    assert states.inp[dead] == frozenset()
    assert states.out[dead] == {"dead"}


def test_self_loop_entry_keeps_boundary():
    f = _func()
    entry = f.add_block("entry")
    exit_ = f.add_block("exit")
    b = IRBuilder(entry)
    cond = b.icmp("eq", f.args[0], b.const(I64, 0))
    b.cond_br(cond, entry, exit_)
    b.position_at_end(exit_)
    b.ret(f.args[0])

    class Boundary(TraceProblem):
        def boundary(self, func):
            return frozenset({"<args>"})

    states = solve_block_problem(f, Boundary())
    # the self edge must not wash out the entry boundary state
    assert "<args>" in states.inp[entry]
    assert states.inp[exit_] == {"<args>", "entry"}


def test_non_convergence_guard():
    f = _func()
    entry = f.add_block("entry")
    b = IRBuilder(entry)
    cond = b.icmp("eq", f.args[0], b.const(I64, 0))
    b.cond_br(cond, entry, entry)

    class Growing(BlockProblem):
        """Deliberately non-monotone-bounded: grows a counter forever."""

        def lattice(self):
            class L(Lattice):
                def bottom(self):
                    return 0

                def join(self, a, b):
                    return max(a, b)

            return L()

        def transfer(self, block, state):
            return state + 1

    with pytest.raises(RuntimeError, match="did not converge"):
        solve_block_problem(f, Growing(), max_iterations=50)


# -- sparse SSA solver ---------------------------------------------------------


class TaintToy(ValueProblem):
    def lattice(self):
        return BoolLattice()

    def initial(self, value):
        return isinstance(value, Undef)

    def transfer(self, ins, get):
        if ins.opcode == "load":
            return False
        return any(get(op) for op in ins.operands)


def test_sparse_taint_through_phi():
    f, (entry, then, els, merge), phi = _diamond()
    # poison the else-branch add with an undef operand
    els_add = els.instructions[0]
    els_add.operands[1] = Undef(I64)
    states = solve_value_problem(f, TaintToy())
    assert states.get(then.instructions[0]) is False
    assert states.get(els_add) is True
    assert states.get(phi) is True  # meet over phis: any tainted incoming


def test_sparse_clean_diamond():
    f, blocks, phi = _diamond()
    states = solve_value_problem(f, TaintToy())
    assert states.get(phi) is False


def test_sparse_widening_cuts_infinite_chain():
    f = _func()
    entry = f.add_block("entry")
    header = f.add_block("header")
    exit_ = f.add_block("exit")
    b = IRBuilder(entry)
    b.br(header)
    b.position_at_end(header)
    phi = b.phi(I64)
    nxt = b.add(phi, b.const(I64, 1))
    cond = b.icmp("slt", nxt, f.args[0])
    b.cond_br(cond, header, exit_)
    phi.add_incoming(b.const(I64, 0), entry)
    phi.add_incoming(nxt, header)
    b.position_at_end(exit_)
    b.ret(phi)

    TOP = "top"

    class Count(ValueProblem):
        """Max-of-constants domain with an infinite ascending chain."""

        def lattice(self):
            class L(Lattice):
                def bottom(self):
                    return 0

                def join(self, a, b):
                    if a == TOP or b == TOP:
                        return TOP
                    return max(a, b)

            return L()

        def initial(self, value):
            return getattr(value, "value", 0) if not isinstance(
                value, Undef) else 0

        def transfer(self, ins, get):
            if ins.opcode != "add":
                return 0
            vals = [get(op) for op in ins.operands]
            if TOP in vals:
                return TOP
            return sum(vals)

        def widen(self, old, new):
            return TOP

    states = solve_value_problem(f, Count(), widen_after=4)
    assert states.get(phi) == TOP  # terminated via widening, not divergence
