"""Strict-SSA checker: rules beyond the raising verifier, as findings."""

from repro.ir import I64, Function, FunctionType, IRBuilder, Module
from repro.ir import instructions as I
from repro.ir.values import Constant

from repro.analysis.findings import WARNING, errors_only
from repro.analysis.strictness import check_strict_ssa


def _diamond():
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)))
    m.add_function(f)
    entry = f.add_block("entry")
    then = f.add_block("then")
    els = f.add_block("els")
    merge = f.add_block("merge")
    b = IRBuilder(entry)
    cond = b.icmp("eq", f.args[0], b.const(I64, 0))
    b.cond_br(cond, then, els)
    b.position_at_end(then)
    t = b.add(f.args[0], b.const(I64, 1))
    b.br(merge)
    b.position_at_end(els)
    e = b.add(f.args[0], b.const(I64, 2))
    b.br(merge)
    b.position_at_end(merge)
    phi = b.phi(I64)
    phi.add_incoming(t, then)
    phi.add_incoming(e, els)
    b.ret(phi)
    return f, (entry, then, els, merge), phi, (t, e)


def _messages(findings):
    return [f.message for f in findings]


def test_clean_diamond_no_findings():
    f, *_ = _diamond()
    assert check_strict_ssa(f) == []


def test_duplicate_incoming_block():
    f, (entry, then, els, merge), phi, (t, e) = _diamond()
    phi.operands.append(t)
    phi.incoming_blocks.append(then)  # second entry for the same pred
    msgs = _messages(check_strict_ssa(f))
    assert any("more than once" in m for m in msgs)


def test_missing_incoming_for_predecessor():
    f, (entry, then, els, merge), phi, _ = _diamond()
    phi.remove_incoming(els)
    msgs = _messages(check_strict_ssa(f))
    assert any("misses incoming for predecessor els" in m for m in msgs)


def test_stale_incoming_for_non_predecessor():
    f, (entry, then, els, merge), phi, _ = _diamond()
    phi.add_incoming(Constant(I64, 9), entry)  # entry is not a merge pred
    msgs = _messages(check_strict_ssa(f))
    assert any("stale incoming for non-predecessor entry" in m for m in msgs)


def test_zero_incoming_phi():
    f, (entry, then, els, merge), phi, _ = _diamond()
    phi.remove_incoming(then)
    phi.remove_incoming(els)
    msgs = _messages(check_strict_ssa(f))
    assert any("no incoming edges" in m for m in msgs)


def test_operand_incoming_length_skew():
    f, (entry, then, els, merge), phi, _ = _diamond()
    phi.incoming_blocks.pop()  # operand without a block
    msgs = _messages(check_strict_ssa(f))
    assert any("incoming block" in m and "value" in m for m in msgs)


def test_phi_after_non_phi():
    f, (entry, then, els, merge), phi, (t, e) = _diamond()
    late = I.Phi(I64, "late")
    late.add_incoming(t, then)
    late.add_incoming(e, els)
    merge.instructions.insert(1, late)  # after the first phi is fine...
    msgs = _messages(check_strict_ssa(f))
    assert msgs == []  # consecutive phis are legal
    merge.instructions.remove(late)
    merge.instructions.insert(2, late)  # ...but after the ret is not
    msgs = _messages(check_strict_ssa(f))
    assert any("phi after a non-phi" in m for m in msgs)


def test_missing_terminator():
    f, (entry, then, els, merge), phi, _ = _diamond()
    merge.instructions.pop()  # drop the ret
    msgs = _messages(check_strict_ssa(f))
    assert any("lacks a terminator" in m for m in msgs)


def test_unreachable_block_is_warning_only():
    f, *_ = _diamond()
    dead = f.add_block("dead")
    b = IRBuilder(dead)
    b.ret(b.const(I64, 0))
    findings = check_strict_ssa(f)
    assert len(findings) == 1
    assert findings[0].severity == WARNING
    assert errors_only(findings) == []


def test_reachable_use_of_unreachable_def():
    f, (entry, then, els, merge), phi, _ = _diamond()
    dead = f.add_block("dead")
    b = IRBuilder(dead)
    v = b.add(f.args[0], b.const(I64, 5))
    b.br(merge)  # dead -> merge edge exists, but dead is unreachable
    # make merge's terminator consume the dead definition
    merge.instructions[-1] = I.Ret(v)
    findings = check_strict_ssa(f)
    msgs = _messages(findings)
    assert any("defined in unreachable block" in m for m in msgs)


def test_use_before_definition_same_block():
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)))
    m.add_function(f)
    blk = f.add_block("entry")
    b = IRBuilder(blk)
    x = b.add(f.args[0], b.const(I64, 1))
    y = b.add(x, b.const(I64, 2))
    b.ret(y)
    # swap the two adds: y now reads x before x is defined
    blk.instructions[0], blk.instructions[1] = (
        blk.instructions[1], blk.instructions[0])
    msgs = _messages(check_strict_ssa(f))
    assert any("used before its definition" in m for m in msgs)


def test_non_dominating_definition():
    f, (entry, then, els, merge), phi, (t, e) = _diamond()
    # replace the phi-consuming ret with a direct use of `t` (defined only
    # on the then path: els does not dominate merge either way)
    merge.instructions[-1] = I.Ret(t)
    msgs = _messages(check_strict_ssa(f))
    assert any("does not dominate this use" in m for m in msgs)


def test_foreign_branch_target():
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)))
    m.add_function(f)
    g = Function("g", FunctionType(I64, (I64,)))
    foreign = g.add_block("foreign")
    blk = f.add_block("entry")
    b = IRBuilder(blk)
    b.br(foreign)
    msgs = _messages(check_strict_ssa(f))
    assert any("foreign block" in m for m in msgs)
