"""Property tests for cache-key stability and single-flight invariants.

Two classes of guarantee back the persistent specialization cache:

* **digest stability** — the same compile inputs must produce the same
  key in a *different process* (different ``PYTHONHASHSEED``, fresh
  memos), or on-disk entries would never hit after a restart; and *every*
  option field must perturb the key, or two different configurations
  would alias one cache slot;
* **single-flight** — however hostile the thread interleaving, at most
  one caller per key ever runs the compile thunk.
"""

from __future__ import annotations

import dataclasses
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.cache import keys
from repro.cache.flight import FlightTable
from repro.cpu import Image
from repro.ir.codegen import JITOptions
from repro.ir.passes import O3Options
from repro.lift import FunctionSignature, LiftOptions
from repro.x86 import parse_asm
from repro.x86.asm import assemble

_SRC = Path(__file__).resolve().parents[2] / "src"

#: a fixed function every process can rebuild bit-for-bit
_ASM = "mov rax, rdi\nimul rax, rsi\nadd rax, 7\nret"


def _fixed_image() -> Image:
    img = Image()
    code, _ = assemble(parse_asm(_ASM), base=img.next_code_addr())
    img.add_function("f", code)
    return img


def _digest_set() -> dict[str, str]:
    img = _fixed_image()
    sig = FunctionSignature(("i", "i"), "i")
    lkey = keys.lifted_key(img, "f", sig, LiftOptions())
    assert lkey is not None
    return {
        "o3": keys.options_digest(O3Options()),
        "jit": keys.options_digest(JITOptions()),
        "sig": keys.signature_digest(sig),
        "fixes": keys.fixes_digest({1: 7}, img.memory),
        "lifted": lkey,
        "machine": keys.machine_key(
            keys.module_key(lkey, "llvm", keys.fixes_digest(None, img.memory),
                            keys.options_digest(O3Options())),
            keys.options_digest(JITOptions())),
    }


# -- cross-process stability ------------------------------------------------


def test_digests_stable_across_processes():
    """Same inputs, different process + hash seed => identical keys."""
    script = (
        "import json\n"
        f"import tests.cache.test_keys_properties as m\n"
        "print(json.dumps(m._digest_set()))\n"
    )
    local = _digest_set()
    for hashseed in ("0", "12345"):
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            cwd=str(_SRC.parent),
            env={"PYTHONPATH": str(_SRC), "PYTHONHASHSEED": hashseed,
                 "PATH": "/usr/bin:/bin"},
        )
        import json
        remote = json.loads(proc.stdout)
        assert remote == local, f"PYTHONHASHSEED={hashseed}"


# -- every option field perturbs the key ------------------------------------


def _perturbed(value):
    """A different-but-type-compatible value for an options field."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 0.5
    if isinstance(value, str):
        return value + "_x"
    if value is None:
        return 2
    return None  # unsupported: caller must handle explicitly


def test_every_o3_and_jit_field_changes_digest():
    for base in (O3Options(), JITOptions()):
        base_digest = keys.options_digest(base)
        for f in dataclasses.fields(base):
            nv = _perturbed(getattr(base, f.name))
            assert nv is not None, f"add a perturbation rule for {f.name}"
            variant = dataclasses.replace(base, **{f.name: nv})
            assert keys.options_digest(variant) != base_digest, \
                f"{type(base).__name__}.{f.name} does not reach the key"


def test_lift_option_fields_change_digest():
    img = _fixed_image()
    base = keys.lift_options_digest(LiftOptions(), img)
    # the digested lifter knobs (name/budget are deliberately excluded:
    # they change labels and limits, never the produced IR)
    for delta in (dict(flag_cache=False), dict(facet_cache=False),
                  dict(stack_size=8192)):
        v = keys.lift_options_digest(LiftOptions(**delta), img)
        assert v != base, delta
    known = LiftOptions()
    known.known_functions[0x1234] = ("g", FunctionSignature(("i",), "i"))
    assert keys.lift_options_digest(known, img) != base


def test_signature_and_fixes_deltas_reach_machine_key():
    """A change in any layer input must produce a distinct machine key."""
    img = _fixed_image()
    sig = FunctionSignature(("i", "i"), "i")

    def mkey(*, sig=sig, mode="llvm", fixes=None, o3=O3Options(),
             jit=JITOptions(), lift=None):
        lkey = keys.lifted_key(img, "f", sig, lift or LiftOptions())
        return keys.machine_key(
            keys.module_key(lkey, mode, keys.fixes_digest(fixes, img.memory),
                            keys.options_digest(o3)),
            keys.options_digest(jit))

    base = mkey()
    assert mkey() == base
    variants = [
        mkey(sig=FunctionSignature(("i",), "i")),
        mkey(sig=FunctionSignature(("i", "i"), "f")),
        mkey(mode="dbrew+llvm"),
        mkey(fixes={0: 5}),
        mkey(fixes={0: 6}),
        mkey(fixes={1: 5}),
        mkey(o3=O3Options().replace(enable_gvn=False)),
        mkey(jit=dataclasses.replace(JITOptions(), optimize_tac=False)),
        mkey(lift=LiftOptions(flag_cache=False)),
    ]
    assert base not in variants
    assert len(set(variants)) == len(variants), "two deltas collide"


# -- single-flight invariant under forced preemption ------------------------


def test_flight_table_single_leader_under_preemption():
    """8 threads racing one key: exactly 1 leads, 7 coalesce."""
    table = FlightTable()
    n = 8
    barrier = threading.Barrier(n)
    ran = []
    ran_lock = threading.Lock()
    results = []

    def thunk():
        with ran_lock:
            ran.append(threading.get_ident())
        time.sleep(0.02)  # hold the flight open so followers pile up
        return "compiled"

    def worker():
        barrier.wait()
        results.append(table.run("key", thunk))

    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)  # force frequent preemption
    try:
        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        sys.setswitchinterval(old)

    assert len(ran) == 1, "the compile thunk ran more than once"
    assert table.led == 1
    assert table.coalesced == n - 1
    assert table.in_flight == 0
    assert [r[0] for r in results] == ["compiled"] * n
    assert sum(1 for r in results if r[1]) == 1, "exactly one leader flag"
