"""Key derivation: every compile input must be visible in the key, and
nothing position-dependent may leak in."""

from repro.cache import SpecializationCache
from repro.cache import keys
from repro.cc import compile_c
from repro.ir.codegen import JITOptions
from repro.ir.passes import O3Options
from repro.lift import FunctionSignature, LiftOptions
from repro.lift.fixation import FixedMemory

SIG_II_I = FunctionSignature(("i", "i"), "i")


def _program():
    return compile_c("long f(long a, long b) { return a * b + 7; }")


def test_options_digest_sensitive_to_each_field():
    base = O3Options()
    seen = {keys.options_digest(base)}
    for variant in (base.replace(enable_gvn=False),
                    base.replace(enable_mem2reg=False),
                    base.replace(fast_math=False),
                    base.replace(force_vector_width=2),
                    base.replace(max_iterations=1)):
        d = keys.options_digest(variant)
        assert d not in seen, variant
        seen.add(d)


def test_options_digest_stable_across_equal_instances():
    assert keys.options_digest(O3Options()) == keys.options_digest(O3Options())
    assert keys.options_digest(JITOptions()) == keys.options_digest(JITOptions())
    # distinct dataclass types never collide even with identical fields
    assert keys.options_digest(O3Options()) != keys.options_digest(JITOptions())


def test_signature_digest_sensitivity():
    d = keys.signature_digest
    assert d(SIG_II_I) == d(FunctionSignature(("i", "i"), "i"))
    assert d(SIG_II_I) != d(FunctionSignature(("i", "f"), "i"))
    assert d(SIG_II_I) != d(FunctionSignature(("i", "i"), None))
    assert d(SIG_II_I) != d(FunctionSignature(("i",), "i"))


def test_fixes_digest_scalar_sensitivity():
    mem = _program().image.memory
    base = keys.fixes_digest({0: 5}, mem)
    assert base == keys.fixes_digest({0: 5}, mem)
    assert base != keys.fixes_digest({0: 6}, mem)      # value
    assert base != keys.fixes_digest({1: 5}, mem)      # param index
    assert base != keys.fixes_digest({0: 5.0}, mem)    # int vs float
    assert base != keys.fixes_digest(None, mem)
    assert keys.fixes_digest(None, mem) == keys.fixes_digest({}, mem)


def test_fixes_digest_hashes_region_contents():
    img = _program().image
    data = img.alloc_data(16)
    img.memory.write_u64(data, 111)
    img.memory.write_u64(data + 8, 222)
    fixes = {0: FixedMemory(data, 16)}
    before = keys.fixes_digest(fixes, img.memory)
    # same address, different bytes -> different key: fixation bakes the
    # region contents into the module as constants
    img.memory.write_u64(data + 8, 999)
    assert keys.fixes_digest(fixes, img.memory) != before


def test_fixes_digest_region_address_matters():
    img = _program().image
    a = img.alloc_data(8)
    b = img.alloc_data(8)
    img.memory.write_u64(a, 7)
    img.memory.write_u64(b, 7)
    # identical contents at different addresses still differ: the address
    # is folded into specialized pointer arithmetic
    assert keys.fixes_digest({0: FixedMemory(a, 8)}, img.memory) != \
        keys.fixes_digest({0: FixedMemory(b, 8)}, img.memory)


def test_function_extent_by_name_and_address():
    img = _program().image
    by_name = keys.function_extent(img, "f")
    assert by_name is not None
    addr, size = by_name
    assert size > 0
    assert keys.function_extent(img, addr) == by_name
    assert keys.function_extent(img, "no_such_symbol") is None
    assert keys.function_extent(img, 0xDEAD0000) is None


def test_lifted_key_tracks_code_bytes():
    img = _program().image
    opts = LiftOptions()
    before = keys.lifted_key(img, "f", SIG_II_I, opts)
    assert before is not None
    assert keys.lifted_key(img, "f", SIG_II_I, opts) == before
    # flip one code byte through the patch API: the key must change
    addr, _size = keys.function_extent(img, "f")
    old = img.memory.read(addr, 1)
    img.patch_code(addr, bytes([old[0] ^ 0xFF]))
    assert keys.lifted_key(img, "f", SIG_II_I, opts) != before
    # restoring the original bytes restores the key (content-addressed)
    img.patch_code(addr, old)
    assert keys.lifted_key(img, "f", SIG_II_I, opts) == before


def test_lifted_key_tracks_signature_and_lift_options():
    img = _program().image
    base = keys.lifted_key(img, "f", SIG_II_I, LiftOptions())
    assert keys.lifted_key(img, "f", FunctionSignature(("i", "i"), None),
                           LiftOptions()) != base
    assert keys.lifted_key(img, "f", SIG_II_I,
                           LiftOptions(facet_cache=False)) != base


def test_stage_keys_layer():
    lkey = "00" * 16
    fdig = keys.digest_str("fixes", "none")
    o3 = keys.options_digest(O3Options())
    mkey = keys.module_key(lkey, "identity", fdig, o3)
    assert mkey != keys.module_key(lkey, "fixed", fdig, o3)
    assert mkey != keys.module_key(lkey, "identity", fdig,
                                   keys.options_digest(O3Options(fast_math=False)))
    xkey = keys.machine_key(mkey, keys.options_digest(JITOptions()))
    assert xkey != mkey
    assert len(xkey) == 32  # blake2b-16 hex


def test_cache_code_digest_memo_follows_patches():
    img = _program().image
    cache = SpecializationCache()
    d1 = cache.code_digest(img, "f")
    assert d1 is not None
    assert cache.code_digest(img, "f") == d1  # memoized
    addr, _size = keys.function_extent(img, "f")
    old = img.memory.read(addr, 1)
    img.patch_code(addr, bytes([old[0] ^ 1]))
    assert cache.stats.invalidations == 1
    assert cache.code_digest(img, "f") != d1  # memo dropped, recomputed
