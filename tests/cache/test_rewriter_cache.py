"""DBrew whole-rewrite memoization and its key sensitivity."""

from repro.cache import SpecializationCache
from repro.cc import compile_c
from repro.cpu import Simulator
from repro.dbrew import Rewriter

SRC = """
long f(long* v, long n) {
    long s = 0;
    for (long i = 0; i < n; i++) s += v[i] * v[i];
    return s;
}
"""


def _vector_image():
    img = compile_c(SRC).image
    v = img.alloc_data(8 * 4)
    for i in range(4):
        img.memory.write_u64(v + 8 * i, i + 1)
    return img, v


def _rewriter(img, v, cache, n=4):
    return (Rewriter(img, "f", cache=cache).set_signature(("i", "i"))
            .set_par(0, v).set_par(1, n).set_mem(v, v + 32))


def test_identical_rewrite_is_memoized():
    img, v = _vector_image()
    cache = SpecializationCache()
    a1 = _rewriter(img, v, cache).rewrite(name="f.d1")
    assert cache.stats.stage_misses["rewrite"] == 1
    a2 = _rewriter(img, v, cache).rewrite(name="f.d2")
    assert cache.stats.stage_hits["rewrite"] == 1
    assert a2 == a1  # no new code emitted, existing entry aliased
    sim = Simulator(img)
    sim.invalidate_code()
    want = sum((i + 1) ** 2 for i in range(4))
    assert sim.call_int("f.d1", (0, 0)) == want
    assert sim.call_int("f.d2", (0, 0)) == want


def test_rewrite_digest_feeds_composition_key():
    img, v = _vector_image()
    cache = SpecializationCache()
    r = _rewriter(img, v, cache)
    r.rewrite(name="f.dx")
    assert r.last_digest is not None
    r2 = _rewriter(img, v, cache)
    r2.rewrite(name="f.dy")
    assert r2.last_digest == r.last_digest  # served from cache, same code


def test_different_config_misses():
    img, v = _vector_image()
    cache = SpecializationCache()
    a4 = _rewriter(img, v, cache, n=4).rewrite(name="f.n4")
    a3 = _rewriter(img, v, cache, n=3).rewrite(name="f.n3")
    assert cache.stats.stage_hits["rewrite"] == 0
    assert cache.stats.stage_misses["rewrite"] == 2
    assert a3 != a4
    sim = Simulator(img)
    sim.invalidate_code()
    assert sim.call_int("f.n4", (0, 0)) == 30
    assert sim.call_int("f.n3", (0, 0)) == 14


def test_fixed_region_contents_feed_rewrite_key():
    img, v = _vector_image()
    cache = SpecializationCache()
    _rewriter(img, v, cache).rewrite(name="f.m1")
    # DBrew folded v's *values* into the emitted code; changing them must
    # miss even though the configuration (addresses) is unchanged
    img.memory.write_u64(v, 10)
    _rewriter(img, v, cache).rewrite(name="f.m2")
    assert cache.stats.stage_hits["rewrite"] == 0
    assert cache.stats.stage_misses["rewrite"] == 2
    sim = Simulator(img)
    sim.invalidate_code()
    assert sim.call_int("f.m2", (0, 0)) == 100 + 4 + 9 + 16


def test_rewrite_without_cache_unchanged():
    img, v = _vector_image()
    a1 = _rewriter(img, v, None).rewrite(name="f.p1")
    a2 = _rewriter(img, v, None).rewrite(name="f.p2")
    assert a1 != a2  # two independent rewrites, both correct
    sim = Simulator(img)
    sim.invalidate_code()
    assert sim.call_int("f.p1", (0, 0)) == sim.call_int("f.p2", (0, 0)) == 30
