"""Store integrity (satellite c): DiskStore.get must never return bytes
that differ from a published payload, under torn writes, partial writes
and bit flips — property-tested with hypothesis, plus a deterministic
crash-point sweep over the mkstemp -> os.replace publication sequence."""

from __future__ import annotations

import os
import pickle
import zlib

from hypothesis import given, settings, strategies as st

from repro.cache.store import (DiskStore, QUARANTINE_DIR, _HEADER, _MAGIC)

KEY = "rec"


def _record_bytes(value) -> bytes:
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(_MAGIC, zlib.crc32(payload), len(payload)) + payload


def _raw_path(store: DiskStore, key: str = KEY) -> str:
    return store._path(key)


# -- the property -------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(payload=st.binary(min_size=0, max_size=256),
       cut=st.integers(min_value=0, max_value=10_000),
       flip_at=st.integers(min_value=0, max_value=10_000),
       flip_mask=st.integers(min_value=1, max_value=255),
       mode=st.sampled_from(["torn", "bitflip", "both"]))
def test_get_returns_published_payload_or_nothing(tmp_path_factory, payload,
                                                 cut, flip_at, flip_mask,
                                                 mode):
    """Whatever damage lands on the record file, get() returns either the
    exact published value or None — never different bytes."""
    root = str(tmp_path_factory.mktemp("store"))
    store = DiskStore(root)
    assert store.put(KEY, payload)
    path = _raw_path(store)
    with open(path, "rb") as fh:
        data = bytearray(fh.read())
    if mode in ("torn", "both"):
        data = data[:cut % (len(data) + 1)]
    if mode in ("bitflip", "both") and data:
        data[flip_at % len(data)] ^= flip_mask
    with open(path, "wb") as fh:
        fh.write(data)
    got = store.get(KEY)
    assert got is None or got == payload
    if got is None:
        # damaged records are quarantined or vanish — never served later
        assert store.get(KEY) is None
        again = DiskStore(root)  # fresh instance: same verdict
        assert again.get(KEY) is None


@settings(max_examples=30, deadline=None)
@given(value=st.one_of(st.integers(), st.text(max_size=64),
                       st.dictionaries(st.text(max_size=8),
                                       st.integers(), max_size=4)))
def test_roundtrip_of_arbitrary_picklable_values(tmp_path_factory, value):
    store = DiskStore(str(tmp_path_factory.mktemp("store")))
    assert store.put(KEY, value)
    assert store.get(KEY) == value
    assert store.snapshot()["integrity_failures"] == 0


# -- deterministic crash-point sweep -----------------------------------------


def test_crash_point_sweep_over_publication(tmp_path):
    """Simulate a writer crashing after writing k bytes of the record for
    every k: the store must serve the *previous* value or a miss, never a
    blend.  This models mkstemp+partial write with the rename either not
    happening (tmp leak) or happening over a truncated file (torn final
    record — e.g. a filesystem that lost tail pages after a power cut)."""
    root = str(tmp_path / "store")
    store = DiskStore(root)
    old, new = {"v": "old", "n": 1}, {"v": "new", "n": 2}
    record = _record_bytes(new)
    for k in range(len(record)):
        store = DiskStore(root)
        assert store.put(KEY, old)

        # crash before rename: a half-written tmp file leaks, the
        # published record is untouched
        tmp = os.path.join(root, f"crash-{k}.tmp")
        with open(tmp, "wb") as fh:
            fh.write(record[:k])
        assert store.get(KEY) == old
        os.unlink(tmp)

        # crash where the final file ends up truncated at k bytes
        with open(_raw_path(store), "wb") as fh:
            fh.write(record[:k])
        got = store.get(KEY)
        assert got is None or got == new, f"blend served at cut {k}"
    # the full record, for completeness
    store = DiskStore(root)
    store.put(KEY, old)
    with open(_raw_path(store), "wb") as fh:
        fh.write(record)
    assert store.get(KEY) == new


def test_stale_tmp_files_are_swept_on_startup(tmp_path):
    root = str(tmp_path / "store")
    store = DiskStore(root)
    store.put(KEY, 42)
    stale = os.path.join(root, "leak.tmp")
    with open(stale, "wb") as fh:
        fh.write(b"half a record")
    os.utime(stale, (1.0, 1.0))  # ancient
    fresh = os.path.join(root, "inflight.tmp")
    with open(fresh, "wb") as fh:
        fh.write(b"another writer, mid-publish")
    DiskStore(root)  # construction runs the recovery sweep
    assert not os.path.exists(stale), "stale tmp survived the sweep"
    assert os.path.exists(fresh), "in-flight tmp was reaped too eagerly"
    assert store.get(KEY) == 42


# -- quarantine accounting ----------------------------------------------------


def test_bitflipped_record_is_quarantined_counted_and_recompilable(tmp_path):
    """The acceptance bar: a bit-flipped record is quarantined (moved
    aside, counted, evidence kept), never served, and the key accepts a
    fresh publication (the recompile)."""
    root = str(tmp_path / "store")
    store = DiskStore(root)
    store.put(KEY, {"module": "payload"})
    path = _raw_path(store)
    with open(path, "r+b") as fh:
        fh.seek(_HEADER.size + 2)
        byte = fh.read(1)
        fh.seek(_HEADER.size + 2)
        fh.write(bytes([byte[0] ^ 0xA5]))
    assert store.get(KEY) is None
    assert store.integrity_failures == 1
    assert store.quarantined == 1
    assert not os.path.exists(path), "corrupt record left in place"
    qdir = os.path.join(root, QUARANTINE_DIR)
    evidence = os.listdir(qdir)
    assert len(evidence) == 1 and evidence[0].endswith(".corrupt")
    # recompile path: the key is publishable and servable again
    assert store.put(KEY, {"module": "recompiled"})
    assert store.get(KEY) == {"module": "recompiled"}
    assert store.quarantined == 1  # no new quarantine


def test_header_with_wrong_length_is_quarantined(tmp_path):
    store = DiskStore(str(tmp_path / "store"))
    payload = pickle.dumps("x")
    bad = _HEADER.pack(_MAGIC, zlib.crc32(payload), len(payload) + 7) \
        + payload
    with open(_raw_path(store), "wb") as fh:
        fh.write(bad)
    assert store.get(KEY) is None
    assert store.quarantined == 1


def test_legacy_plain_pickle_still_loads(tmp_path):
    """Pre-header records (plain pickles from older stores) load via the
    fallback; unreadable legacy garbage quarantines."""
    store = DiskStore(str(tmp_path / "store"))
    with open(_raw_path(store), "wb") as fh:
        fh.write(pickle.dumps({"legacy": True}))
    assert store.get(KEY) == {"legacy": True}
    with open(_raw_path(store, "junk"), "wb") as fh:
        fh.write(b"\x13\x37 not a pickle at all")
    assert store.get("junk") is None
    assert store.quarantined == 1


def test_checksum_valid_but_unloadable_is_a_miss_not_corruption(tmp_path):
    """Bytes that verify but do not unpickle here (schema drift) are a
    miss: the writer published exactly these bytes, nothing is damaged."""
    store = DiskStore(str(tmp_path / "store"))
    payload = b"(not-a-pickle"
    rec = _HEADER.pack(_MAGIC, zlib.crc32(payload), len(payload)) + payload
    with open(_raw_path(store), "wb") as fh:
        fh.write(rec)
    assert store.get(KEY) is None
    assert store.quarantined == 0
    assert store.integrity_failures == 0


def test_old_quarantine_evidence_expires(tmp_path):
    root = str(tmp_path / "store")
    store = DiskStore(root)
    store.put(KEY, 1)
    with open(_raw_path(store), "r+b") as fh:
        fh.seek(4)
        fh.write(b"\xff\xff")
    assert store.get(KEY) is None
    qdir = os.path.join(root, QUARANTINE_DIR)
    (name,) = os.listdir(qdir)
    os.utime(os.path.join(qdir, name), (1.0, 1.0))  # ancient evidence
    DiskStore(root)  # recovery sweep expires it
    assert os.listdir(qdir) == []
