"""Unit tests for the two cache storage levels."""

import pickle

from repro.cache import DiskStore, LRUStore


def test_lru_basic_roundtrip():
    s = LRUStore(4)
    s.put("a", 1)
    s.put("b", 2)
    assert s.get("a") == 1
    assert s.get("b") == 2
    assert s.get("missing") is None
    assert len(s) == 2
    assert "a" in s and "c" not in s


def test_lru_eviction_bounds_capacity():
    s = LRUStore(3)
    for i in range(10):
        s.put(f"k{i}", i)
        assert len(s) <= 3
    assert s.evictions == 7
    # only the newest three survive
    assert s.get("k9") == 9 and s.get("k8") == 8 and s.get("k7") == 7
    assert s.get("k0") is None


def test_lru_get_refreshes_recency():
    s = LRUStore(2)
    s.put("old", 1)
    s.put("new", 2)
    assert s.get("old") == 1  # touch: "old" becomes most recent
    s.put("newer", 3)         # evicts "new", not "old"
    assert s.get("old") == 1
    assert s.get("new") is None


def test_lru_overwrite_does_not_grow():
    s = LRUStore(2)
    s.put("a", 1)
    s.put("a", 2)
    assert len(s) == 1
    assert s.get("a") == 2
    assert s.evictions == 0


def test_lru_discard_and_clear():
    s = LRUStore(4)
    s.put("a", 1)
    s.put("b", 2)
    s.discard("a")
    s.discard("not-there")  # no-op
    assert s.get("a") is None and s.get("b") == 2
    s.clear()
    assert len(s) == 0


def test_disk_store_roundtrip(tmp_path):
    d = DiskStore(str(tmp_path))
    assert d.get("k") is None
    assert d.put("k", ("value", 42))
    assert d.get("k") == ("value", 42)


def test_disk_store_survives_reopen(tmp_path):
    DiskStore(str(tmp_path)).put("k", [1, 2, 3])
    assert DiskStore(str(tmp_path)).get("k") == [1, 2, 3]


def test_disk_store_corrupt_entry_is_a_miss(tmp_path):
    d = DiskStore(str(tmp_path))
    d.put("k", "good")
    path = next(tmp_path.iterdir())
    path.write_bytes(b"not a pickle")
    assert d.get("k") is None


def test_disk_store_truncated_pickle_is_a_miss(tmp_path):
    d = DiskStore(str(tmp_path))
    d.put("k", list(range(100)))
    path = next(tmp_path.iterdir())
    path.write_bytes(pickle.dumps(list(range(100)))[:10])
    assert d.get("k") is None
