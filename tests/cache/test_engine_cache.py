"""BinaryTransformer + SpecializationCache integration: stage hits,
invalidation, eviction bounds, disk persistence and the hit-rate counters."""

import pytest

from repro.cache import SpecializationCache
from repro.cc import compile_c
from repro.cpu import Simulator
from repro.ir.codegen import JITOptions
from repro.lift import FunctionSignature
from repro.lift.fixation import FixedMemory

from repro.jit import BinaryTransformer

SIG = FunctionSignature(("i", "i"), "i")
SRC = "long f(long a, long b) { return a * b + 7; }"


def test_repeated_transform_hits_machine_stage():
    img = compile_c(SRC).image
    cache = SpecializationCache()
    tx = BinaryTransformer(img, cache=cache)
    cold = tx.llvm_identity("f", SIG, name="f.v0")
    assert cold.cache_stage is None

    warm = [tx.llvm_identity("f", SIG, name=f"f.v{i}") for i in range(1, 6)]
    for res in warm:
        assert res.cache_stage == "machine"
        assert res.addr == cold.addr          # same installed code
        assert res.total_seconds == 0.0       # nothing compiled
    # every requested name aliases the one installed copy
    sim = Simulator(img)
    sim.invalidate_code()
    for i in range(6):
        assert sim.call_int(f"f.v{i}", (6, 9)) == 61


def test_hit_rate_counter_reports_all_warm_transforms():
    img = compile_c(SRC).image
    cache = SpecializationCache()
    tx = BinaryTransformer(img, cache=cache)
    tx.llvm_identity("f", SIG, name="f.cold")
    before = cache.stats.snapshot()
    assert before["hit_rate"] == 0.0
    for i in range(10):
        tx.llvm_identity("f", SIG, name=f"f.warm{i}")
    after = cache.stats.snapshot()
    warm_transforms = after["transforms"] - before["transforms"]
    warm_hits = after["transform_hits"] - before["transform_hits"]
    assert warm_transforms == 10
    assert warm_hits == 10  # 100% hit rate once warm
    assert cache.stats.hit_rate == pytest.approx(10 / 11)


def test_respecialization_hits_lifted_stage():
    img = compile_c(SRC).image
    cache = SpecializationCache()
    tx = BinaryTransformer(img, cache=cache)
    r1 = tx.llvm_fixed("f", SIG, {0: 3}, name="f.x3")
    assert r1.cache_stage is None
    # same function, new fixation value: decode+lift skipped, O3+codegen run
    r2 = tx.llvm_fixed("f", SIG, {0: 4}, name="f.x4")
    assert r2.cache_stage == "lifted"
    assert r2.lift_seconds == 0.0
    assert r2.optimize_seconds > 0.0
    sim = Simulator(img)
    sim.invalidate_code()
    assert sim.call_int("f.x3", (0, 10)) == 37
    assert sim.call_int("f.x4", (0, 10)) == 47


def test_fixed_memory_contents_feed_the_key():
    img = compile_c(
        "long f(long* cfg, long x) { return cfg[0] * x + cfg[1]; }").image
    data = img.alloc_data(16)
    img.memory.write_u64(data, 3)
    img.memory.write_u64(data + 8, 100)
    cache = SpecializationCache()
    tx = BinaryTransformer(img, cache=cache)
    sig = FunctionSignature(("i", "i"), "i")
    fixes = {0: FixedMemory(data, 16)}
    tx.llvm_fixed("f", sig, fixes, name="f.c1")
    # same region, same bytes: full machine hit
    assert tx.llvm_fixed("f", sig, fixes, name="f.c2").cache_stage == "machine"
    # same region, different bytes: must NOT reuse the specialized module
    img.memory.write_u64(data, 5)
    r3 = tx.llvm_fixed("f", sig, fixes, name="f.c3")
    assert r3.cache_stage == "lifted"
    sim = Simulator(img)
    sim.invalidate_code()
    assert sim.call_int("f.c1", (0, 7)) == 121   # baked-in 3*x+100
    assert sim.call_int("f.c3", (0, 7)) == 135   # baked-in 5*x+100


def test_jit_options_change_hits_module_stage():
    img = compile_c(SRC).image
    cache = SpecializationCache()
    BinaryTransformer(img, cache=cache).llvm_identity("f", SIG, name="f.j0")
    tx2 = BinaryTransformer(img, cache=cache,
                            jit_options=JITOptions(optimize_tac=False))
    res = tx2.llvm_identity("f", SIG, name="f.j1")
    # post-O3 module is reused; only codegen reruns under the new options
    assert res.cache_stage == "module"
    sim = Simulator(img)
    sim.invalidate_code()
    assert sim.call_int("f.j1", (2, 3)) == 13


def test_patch_invalidates_machine_entries():
    img = compile_c(SRC).image
    cache = SpecializationCache()
    tx = BinaryTransformer(img, cache=cache)
    tx.llvm_identity("f", SIG, name="f.a")
    assert tx.llvm_identity("f", SIG, name="f.b").cache_stage == "machine"

    addr = img.symbol("f")
    img.patch_code(addr, img.memory.read(addr, 1))  # same byte, still a patch
    assert cache.stats.invalidations == 1
    # machine entries died with the generation, but the patched bytes are
    # identical, so the content-addressed IR stages still hit
    res = tx.llvm_identity("f", SIG, name="f.c")
    assert res.cache_stage == "module"
    sim = Simulator(img)
    sim.invalidate_code()
    assert sim.call_int("f.c", (6, 9)) == 61


def test_capacity_bounds_and_evictions():
    img = compile_c("""
    long f0(long a, long b) { return a + b; }
    long f1(long a, long b) { return a - b; }
    long f2(long a, long b) { return a ^ b; }
    """).image
    cache = SpecializationCache(capacity=1, machine_capacity=1)
    tx = BinaryTransformer(img, cache=cache)
    for i in range(3):
        tx.llvm_identity(f"f{i}", SIG, name=f"f{i}.tx")
    # 1 lifted + 1 module + 1 machine entry at most survive
    assert len(cache) <= 3
    assert cache.evictions >= 4
    # the most recent function is still warm, the oldest fell out
    assert tx.llvm_identity("f2", SIG, name="f2.tx2").cache_stage == "machine"
    assert tx.llvm_identity("f0", SIG, name="f0.tx2").cache_stage is None


def test_disk_store_persists_ir_stages(tmp_path):
    img1 = compile_c(SRC).image
    c1 = SpecializationCache(disk_dir=str(tmp_path))
    BinaryTransformer(img1, cache=c1).llvm_identity("f", SIG, name="f.first")

    # a fresh process (new cache, even a freshly loaded image): machine
    # entries are gone, but the position-independent module pickle is found
    # on disk and only codegen runs
    img2 = compile_c(SRC).image
    c2 = SpecializationCache(disk_dir=str(tmp_path))
    res = BinaryTransformer(img2, cache=c2).llvm_identity(
        "f", SIG, name="f.second")
    assert res.cache_stage == "module"
    assert c2.stats.disk_hits >= 1
    sim = Simulator(img2)
    sim.invalidate_code()
    assert sim.call_int("f.second", (6, 9)) == 61


def test_cache_disabled_is_fully_transparent():
    img = compile_c(SRC).image
    tx = BinaryTransformer(img)  # no cache
    r1 = tx.llvm_identity("f", SIG, name="f.n1")
    r2 = tx.llvm_identity("f", SIG, name="f.n2")
    assert r1.cache_stage is None and r2.cache_stage is None
    assert r2.total_seconds > 0.0
    sim = Simulator(img)
    sim.invalidate_code()
    assert sim.call_int("f.n1", (6, 9)) == sim.call_int("f.n2", (6, 9)) == 61
