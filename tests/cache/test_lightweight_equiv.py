"""Sec. VII's lightweight pass subset must be *semantically* equivalent to
the full -O3 pipeline — checked by interpreting both optimized modules of
the lifted Jacobi element kernel against the pure-Python reference."""

import pytest

from repro.ir import Interpreter
from repro.ir.passes import O3Options
from repro.jit import BinaryTransformer
from repro.lift import FunctionSignature
from repro.stencil.jacobi import JacobiSetup, StencilWorkspace, matrices_equal
from repro.stencil.sources import ELEMENT_SIGNATURE


@pytest.fixture(scope="module")
def ws():
    return StencilWorkspace(JacobiSetup(sz=9, sweeps=1))


def _interpret_sweep(ws, res):
    """One Jacobi sweep (m1 -> m2) by interpreting the optimized IR."""
    sz = ws.setup.sz
    interp = Interpreter(res.module, ws.image.memory)
    for y in range(1, sz - 1):
        for x in range(1, sz - 1):
            interp.run(res.function, [ws.flat.addr, ws.m1, ws.m2, y * sz + x])
    return ws.read_matrix(2)


def _optimized(ws, opts, tag):
    tx = BinaryTransformer(ws.image, o3_options=opts)
    return tx.llvm_identity("apply_flat",
                            FunctionSignature(tuple(ELEMENT_SIGNATURE), None),
                            name=f"k.lw.{tag}")


def test_lightweight_subset_matches_full_o3(ws):
    full = _optimized(ws, O3Options(), "full")
    light = _optimized(ws, O3Options.lightweight(), "light")

    ws.reset_matrices()
    want = ws.reference_sweeps(1)
    got_full = _interpret_sweep(ws, full)
    ws.reset_matrices()
    got_light = _interpret_sweep(ws, light)

    assert matrices_equal(got_full, want)
    assert matrices_equal(got_light, want)
    assert matrices_equal(got_light, got_full)


def test_lightweight_is_cheaper_but_larger(ws):
    full = _optimized(ws, O3Options(), "full2")
    light = _optimized(ws, O3Options.lightweight(), "light2")
    n_full = sum(len(b.instructions) for b in full.function.blocks)
    n_light = sum(len(b.instructions) for b in light.function.blocks)
    # the subset keeps the essential cleanups: within 2x of full -O3 IR
    # size, and it must still have eliminated the virtual-stack traffic
    assert n_light <= 2 * n_full
    assert not any(i.opcode == "alloca"
                   for i in light.function.instructions())
