"""Known-good byte encodings (ground truth from the Intel SDM)."""

import pytest

from repro.errors import EncodeError
from repro.x86.encoder import encode
from repro.x86.instr import Imm, Instruction, Mem, Reg, gp, make, xmm
from repro.x86.registers import RAX, RBP, RBX, RCX, RDI, RDX, RSI, RSP, R8, R9, R12, R13


def enc(mnemonic, *ops, addr=0):
    return encode(make(mnemonic, *ops), addr).hex()


def test_ret():
    assert enc("ret") == "c3"


def test_nop():
    assert enc("nop") == "90"


def test_mov_reg_reg_64():
    assert enc("mov", gp(RAX), gp(RDI)) == "4889f8"


def test_mov_reg_reg_32():
    assert enc("mov", gp(RAX, 4), gp(RDI, 4)) == "89f8"


def test_mov_rbp_rsp():
    assert enc("mov", gp(RBP), gp(RSP)) == "4889e5"


def test_push_pop_rbp():
    assert enc("push", gp(RBP)) == "55"
    assert enc("pop", gp(RBP)) == "5d"


def test_push_r12():
    assert enc("push", gp(R12)) == "4154"


def test_add_rax_imm8():
    assert enc("add", gp(RAX), Imm(1)) == "4883c001"


def test_add_rax_imm32():
    assert enc("add", gp(RAX), Imm(0x1000)) == "4881c000100000"


def test_sub_rsp_imm():
    assert enc("sub", gp(RSP), Imm(0x20)) == "4883ec20"


def test_xor_eax_eax():
    assert enc("xor", gp(RAX, 4), gp(RAX, 4)) == "31c0"


def test_cmp_rdi_rsi():
    assert enc("cmp", gp(RDI), gp(RSI)) == "4839f7"


def test_lea_disp8():
    assert enc("lea", gp(RAX), Mem(8, base=gp(RBP), disp=-0xC)) == "488d45f4"


def test_mov_load_base_index_scale():
    # mov rax, [rsi + 8*rcx]
    assert enc("mov", gp(RAX), Mem(8, base=gp(RSI), index=gp(RCX), scale=8)) == "488b04ce"


def test_mov_store_disp32():
    assert enc("mov", Mem(4, base=gp(RBP), disp=-0x100), gp(RAX, 4)) == "898500ffffff"


def test_mov_imm64():
    assert enc("mov", gp(RAX), Imm(0x123456789ABCDEF0)) == "48b8f0debc9a78563412"


def test_mov_imm32_sign_extended():
    assert enc("mov", gp(RAX), Imm(-1)) == "48c7c0ffffffff"


def test_rsp_base_needs_sib():
    assert enc("mov", gp(RAX), Mem(8, base=gp(RSP))) == "488b0424"


def test_rbp_base_needs_disp8():
    assert enc("mov", gp(RAX), Mem(8, base=gp(RBP))) == "488b4500"


def test_r13_base_needs_disp8():
    assert enc("mov", gp(RAX), Mem(8, base=gp(R13))) == "498b4500"


def test_absolute_addressing():
    # mov rax, [0x14c47d8] -> SIB base=101 index=100 mod=00 + disp32
    assert enc("mov", gp(RAX), Mem(8, disp=0x14C47D8)) == "488b0425d8474c01"


def test_riprel():
    # at addr=0x1000, len=7; target 0x2000 -> disp = 0x2000-0x1007 = 0xff9
    assert enc("mov", gp(RAX), Mem(8, disp=0x2000, riprel=True), addr=0x1000) == "488b05f90f0000"


def test_imul_three_operand():
    assert enc("imul", gp(RAX, 4), gp(RAX, 4), Imm(649)) == "69c089020000"


def test_imul_two_operand():
    assert enc("imul", gp(RAX), gp(RDX)) == "480fafc2"


def test_shl_imm():
    assert enc("shl", gp(RAX), Imm(3)) == "48c1e003"


def test_sar_by_one():
    assert enc("sar", gp(RAX), Imm(1)) == "48d1f8"


def test_movzx_byte():
    assert enc("movzx", gp(RAX, 4), Mem(1, base=gp(RAX))) == "0fb600"


def test_movsxd():
    assert enc("movsxd", gp(RAX), gp(RAX, 4)) == "4863c0"


def test_call_rel32():
    # call to 0x2000 from 0x1000: e8 + (0x2000 - 0x1005)
    assert enc("call", Imm(0x2000), addr=0x1000) == "e8fb0f0000"


def test_jmp_rel8():
    assert enc("jmp", Imm(0x1010), addr=0x1000) == "eb0e"


def test_jl_rel8_backward():
    assert enc("jl", Imm(0xFF0), addr=0x1000) == "7cee"


def test_jl_rel32():
    assert enc("jl", Imm(0x2000), addr=0x1000) == "0f8cfa0f0000"


def test_cmovl():
    assert enc("cmovl", gp(RAX), gp(RSI)) == "480f4cc6"


def test_sete():
    assert enc("sete", gp(RAX, 1)) == "0f94c0"


def test_movsd_load():
    assert enc("movsd", xmm(0), Mem(8, base=gp(RSI), index=gp(RAX), scale=8)) == "f20f1004c6"


def test_movsd_store():
    assert enc("movsd", Mem(8, base=gp(RDX), index=gp(RCX), scale=8), xmm(1)) == "f20f110cca"


def test_addsd_reg():
    assert enc("addsd", xmm(0), xmm(1)) == "f20f58c1"


def test_mulsd_absolute():
    assert enc("mulsd", xmm(0), Mem(8, disp=0x14C47D8)) == "f20f590425d8474c01"


def test_pxor():
    assert enc("pxor", xmm(1), xmm(1)) == "660fefc9"


def test_movq_xmm_to_gp():
    assert enc("movq", gp(RAX), xmm(0)) == "66480f7ec0"


def test_movq_gp_to_xmm():
    assert enc("movq", xmm(3), gp(RCX)) == "66480f6ed9"


def test_movapd_load():
    assert enc("movapd", xmm(2), Mem(16, base=gp(RSP))) == "660f281424"


def test_movupd_store():
    assert enc("movupd", Mem(16, base=gp(RSP)), xmm(2)) == "660f111424"


def test_addpd():
    assert enc("addpd", xmm(2), xmm(3)) == "660f58d3"


def test_cvtsi2sd_from_r64():
    assert enc("cvtsi2sd", xmm(0), gp(RAX)) == "f2480f2ac0"


def test_cvttsd2si_to_r64():
    assert enc("cvttsd2si", gp(RCX), xmm(0)) == "f2480f2cc8"


def test_ucomisd():
    assert enc("ucomisd", xmm(0), xmm(1)) == "660f2ec1"


def test_extended_regs_rex():
    assert enc("mov", gp(R8), gp(R9)) == "4d89c8"
    assert enc("add", gp(RAX), gp(R8)) == "4c01c0"


def test_byte_reg_spl_needs_rex():
    assert enc("mov", gp(RSP, 1), Imm(0)) == "40c6c400"


def test_high8_register():
    assert enc("mov", gp(RAX, 1, high8=True), Imm(1)) == "c6c401"


def test_indirect_jump_rejected():
    with pytest.raises(EncodeError):
        encode(make("jmp", gp(RAX)))


def test_branch_out_of_range():
    with pytest.raises(EncodeError):
        encode(make("jl", Imm(0x1_0000_0000)), 0)
