"""Assembler text tools: parser, printer, label resolution, relaxation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AsmSyntaxError, EncodeError
from repro.x86 import parse_asm
from repro.x86.asm import Label, LabelRef, assemble, assemble_full, branch_targets
from repro.x86.asmparser import parse_line
from repro.x86.decoder import decode_block
from repro.x86.instr import Imm, Instruction, Mem, Reg, gp, make
from repro.x86.printer import format_instruction, format_operand


# -- parser ------------------------------------------------------------------


def test_parse_simple_instruction():
    ins = parse_line("mov rax, rdi")
    assert ins.mnemonic == "mov"
    assert ins.operands[0].name == "rax"


def test_parse_label():
    lbl = parse_line("loop:")
    assert isinstance(lbl, Label) and lbl.name == "loop"


def test_parse_comment_and_blank():
    assert parse_line("; a comment") is None
    assert parse_line("   ") is None
    ins = parse_line("ret ; done")
    assert ins.mnemonic == "ret"


def test_parse_memory_full_form():
    ins = parse_line("mov rax, qword ptr [rsi + 8*rcx - 0x10]")
    mem = ins.operands[1]
    assert isinstance(mem, Mem)
    assert mem.base.name == "rsi"
    assert mem.index.name == "rcx"
    assert mem.scale == 8
    assert mem.disp == -0x10


def test_parse_memory_scale_first():
    ins = parse_line("mov rax, [8*rcx + rsi]")
    mem = ins.operands[1]
    assert mem.index.name == "rcx" and mem.scale == 8 and mem.base.name == "rsi"


def test_parse_riprel():
    ins = parse_line("movsd xmm0, qword ptr [rip + 0x600000]")
    mem = ins.operands[1]
    assert mem.riprel and mem.disp == 0x600000


def test_parse_segment_override():
    ins = parse_line("mov rax, qword ptr fs:[0x10]")
    assert ins.operands[1].seg == "fs"


def test_parse_cc_alias_normalization():
    assert parse_line("jz out").mnemonic == "je"
    assert parse_line("jnae out").mnemonic == "jb"
    assert parse_line("cmovnle rax, rbx").mnemonic == "cmovg"


def test_parse_label_reference():
    ins = parse_line("jmp done")
    assert isinstance(ins.operands[0], LabelRef)


def test_parse_rejects_garbage():
    with pytest.raises(AsmSyntaxError):
        parse_line("mov rax, [rsi + rdi + rbx + rcx]")
    with pytest.raises(AsmSyntaxError):
        parse_asm("mov rax, @@@")


def test_default_memory_size_follows_register():
    ins = parse_line("mov eax, [rdi]")
    assert ins.operands[1].size == 4
    ins = parse_line("mov al, [rdi]")
    assert ins.operands[1].size == 1


# -- printer ---------------------------------------------------------------------


def test_printer_register_and_imm():
    assert format_operand(gp(0, 4)) == "eax"
    assert format_operand(Imm(5)) == "5"
    assert format_operand(Imm(-1000)) == "-0x3e8"


def test_printer_memory_forms():
    assert format_operand(Mem(8, base=gp(6), index=gp(1), scale=8, disp=-8)) == \
        "qword ptr [rsi + 8 * rcx - 0x8]"
    assert format_operand(Mem(4, disp=0x600000)) == "dword ptr [0x600000]"
    assert format_operand(Mem(8, disp=0x1234, riprel=True)) == \
        "qword ptr [rip + 0x1234]"


def test_print_parse_roundtrip():
    lines = [
        "mov rax, rdi",
        "lea r8, qword ptr [rsi + 4 * rcx + 0x20]",
        "addsd xmm0, qword ptr [rdi - 0x8]",
        "movzx eax, byte ptr [rax]",
        "imul rdx, rbx, 0x65",
        "cmovl rax, rsi",
    ]
    for line in lines:
        ins = parse_line(line)
        again = parse_line(format_instruction(ins))
        assert (again.mnemonic, again.operands) == (ins.mnemonic, ins.operands)


# -- assembler ---------------------------------------------------------------------


def test_assemble_forward_and_backward_labels():
    code, placed, labels = assemble_full(parse_asm("""
    start:
        jmp forward
        nop
    forward:
        jmp start
    """), base=0x1000)
    assert labels["start"] == 0x1000
    re = decode_block(code, 0x1000, len(code), base_addr=0x1000)
    targets = branch_targets(re)
    assert labels["forward"] in targets and labels["start"] in targets


def test_assemble_duplicate_label_rejected():
    with pytest.raises(EncodeError, match="duplicate"):
        assemble(parse_asm("x:\nnop\nx:\nret"), base=0)


def test_assemble_undefined_label_rejected():
    with pytest.raises(EncodeError, match="undefined"):
        assemble(parse_asm("jmp nowhere"), base=0)


def test_branch_relaxation_rel8_vs_rel32():
    # short loop -> rel8 (2 bytes); long jump over padding -> rel32
    short_src = "top:\nnop\njmp top"
    code, placed = assemble(parse_asm(short_src), base=0)
    jmp = placed[-1]
    assert jmp.length == 2
    long_src = "jmp end\n" + "nop\n" * 200 + "end:\nret"
    code2, placed2 = assemble(parse_asm(long_src), base=0)
    assert placed2[0].length == 5  # rel32 form


@settings(max_examples=20, deadline=None)
@given(n_pad=st.integers(min_value=0, max_value=300))
def test_relaxation_fixed_point_property(n_pad):
    src = "jmp end\n" + "nop\n" * n_pad + "end:\nret"
    code, placed = assemble(parse_asm(src), base=0x4000)
    re = decode_block(code, 0x4000, len(code), base_addr=0x4000)
    # the decoded jump must land exactly on the ret
    target = re[0].operands[0].value
    ret_addr = re[-1].addr
    assert target == ret_addr
