"""Decoder edge cases: forms our encoder never emits, and rejection paths."""

import pytest

from repro.errors import DecodeError
from repro.x86.decoder import decode_one
from repro.x86.instr import Imm, Mem, Reg
from repro.x86.isa import (
    CC_FLAGS_READ, CC_NAMES, canonical_cc, cc_of, control_class,
    flags_read, flags_written, is_terminator,
)


def d(hexstr, addr=0x1000):
    return decode_one(bytes.fromhex(hexstr), 0, addr)


def test_decode_mov_imm8_short_form():
    # B0+r: mov al, 0x7f  (encoder uses C6; decoder must still accept B0)
    ins = d("b07f")
    assert ins.mnemonic == "mov"
    assert ins.operands[0].name == "al"
    assert ins.operands[1].value == 0x7F


def test_decode_high_byte_without_rex():
    # 88 e1: mov cl, ah
    ins = d("88e1")
    assert ins.operands[1].high8 and ins.operands[1].name == "ah"


def test_decode_spl_with_rex():
    # 40 88 e1: mov cl, spl (REX flips ah -> spl)
    ins = d("4088e1")
    assert ins.operands[1].name == "spl"


def test_decode_alu_accumulator_forms():
    # 04 05: add al, 5 ; 48 3d ff 0f 00 00: cmp rax, 0xfff
    ins = d("0405")
    assert ins.mnemonic == "add" and ins.operands[0].name == "al"
    ins = d("483dff0f0000")
    assert ins.mnemonic == "cmp" and ins.operands[1].value == 0xFFF


def test_decode_shift_by_one_and_cl():
    assert d("48d1e0").operands[1].value == 1  # shl rax, 1
    ins = d("48d3e0")  # shl rax, cl
    assert isinstance(ins.operands[1], Reg) and ins.operands[1].name == "cl"


def test_decode_test_f7():
    ins = d("48f7c044000000")  # test rax, 0x44
    assert ins.mnemonic == "test" and ins.operands[1].value == 0x44


def test_decode_multibyte_nop():
    ins = d("0f1f4000")  # nop dword [rax+0]
    assert ins.mnemonic == "nop"
    assert ins.length == 4


def test_decode_sib_index_none_with_rexx_present():
    # REX.X promotes index bits; index=100b without REX.X means none
    ins = d("488b0425d8474c01")  # mov rax, [0x14c47d8]
    mem = ins.operands[1]
    assert mem.is_absolute and mem.disp == 0x14C47D8


def test_decode_r12_base_sib():
    ins = d("498b0424")  # mov rax, [r12]
    assert ins.operands[1].base.name == "r12"


def test_decode_rbp_r13_disp0():
    assert d("488b4500").operands[1].base.name == "rbp"
    assert d("498b4500").operands[1].base.name == "r13"


def test_decode_truncated_raises():
    with pytest.raises(DecodeError):
        d("48")
    with pytest.raises(DecodeError):
        d("488b")


def test_decode_unknown_opcode_raises():
    with pytest.raises(DecodeError):
        d("0fff")


def test_decode_movq_all_three_encodings():
    assert d("66480f7ec0").mnemonic == "movq"   # movq rax, xmm0
    assert d("66480f6ec0").mnemonic == "movq"   # movq xmm0, rax
    assert d("f30f7ec1").mnemonic == "movq"     # movq xmm0, xmm1
    assert d("660fd6c8").mnemonic == "movq"     # movq xmm0, xmm1 (store form)


def test_decode_indirect_forms_exposed():
    assert d("ffe0").mnemonic == "jmp"  # jmp rax
    assert isinstance(d("ffe0").operands[0], Reg)
    assert d("ffd0").mnemonic == "call"  # call rax


def test_riprel_target_is_absolute():
    # mov rax, [rip+0x10] at 0x1000, len 7 -> target 0x1017
    ins = d("488b0510000000")
    assert ins.operands[1].riprel
    assert ins.operands[1].disp == 0x1000 + 7 + 0x10


# -- isa metadata --------------------------------------------------------------


def test_cc_canonicalization():
    assert canonical_cc("z") == "e"
    assert canonical_cc("nae") == "b"
    assert canonical_cc("l") == "l"
    assert canonical_cc("bogus") is None


def test_cc_of_mnemonics():
    assert cc_of("jle") == "le"
    assert cc_of("cmovnz") == "ne"
    assert cc_of("setb") == "b"
    assert cc_of("jmp") is None
    assert cc_of("mov") is None


def test_flags_metadata():
    assert set(flags_written("add")) == set("oszapc")
    assert "c" not in flags_written("inc")
    assert flags_read("jl") == "so"
    assert flags_read("adc") == "c"
    assert flags_read("mov") == ""


def test_control_classification():
    assert control_class("jmp") == "jmp"
    assert control_class("jne") == "jcc"
    assert control_class("call") == "call"
    assert control_class("ret") == "ret"
    assert control_class("add") == "none"
    assert is_terminator("je") and not is_terminator("cmovle")


def test_every_cc_has_flag_reads():
    for cc in CC_NAMES:
        assert CC_FLAGS_READ[cc]
