"""Property-based encode/decode round-trip over the supported subset."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.x86 import isa
from repro.x86.decoder import decode_one
from repro.x86.encoder import encode
from repro.x86.instr import Imm, Instruction, Mem, Reg, gp, make, xmm


def gp_regs(sizes=(1, 2, 4, 8)):
    return st.builds(
        gp,
        st.integers(min_value=0, max_value=15),
        st.sampled_from(sizes),
    )


def xmm_regs():
    return st.builds(xmm, st.integers(min_value=0, max_value=15))


@st.composite
def mem_operands(draw, size=None):
    base = draw(st.one_of(st.none(), gp_regs(sizes=(8,))))
    index = draw(st.one_of(st.none(), gp_regs(sizes=(8,))))
    if index is not None and index.index == 4:  # rsp cannot index
        index = None
    scale = draw(st.sampled_from([1, 2, 4, 8]))
    disp = draw(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    msize = size if size is not None else draw(st.sampled_from([1, 2, 4, 8]))
    if base is None and index is None:
        disp = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return Mem(size=msize, base=base, index=index, scale=scale, disp=disp)


def roundtrip(ins: Instruction, addr: int = 0x400000) -> Instruction:
    raw = encode(ins, addr)
    back = decode_one(raw, 0, addr)
    assert back.length == len(raw)
    return back


@given(
    mnem=st.sampled_from(sorted(isa.ALU_GROUP)),
    dst=gp_regs(sizes=(4, 8)),
    src=gp_regs(sizes=(4, 8)),
)
def test_alu_reg_reg(mnem, dst, src):
    src = src.with_size(dst.size)
    back = roundtrip(make(mnem, dst, src))
    assert (back.mnemonic, back.operands) == (mnem, (dst, src))


@given(
    mnem=st.sampled_from(sorted(isa.ALU_GROUP)),
    dst=gp_regs(sizes=(4, 8)),
    imm=st.integers(min_value=-(2**31), max_value=2**31 - 1),
)
def test_alu_reg_imm(mnem, dst, imm):
    back = roundtrip(make(mnem, dst, Imm(imm)))
    assert back.mnemonic == mnem
    got = back.operands[1]
    assert isinstance(got, Imm)
    assert got.value == imm


@given(mnem=st.sampled_from(sorted(isa.ALU_GROUP)), dst=gp_regs(sizes=(8,)), m=mem_operands(size=8))
def test_alu_reg_mem(mnem, dst, m):
    back = roundtrip(make(mnem, dst, m))
    assert back.operands == (dst, m)


@given(dst=gp_regs(sizes=(1, 2, 4, 8)), m=mem_operands())
def test_mov_store_load(dst, m):
    m = Mem(size=dst.size, base=m.base, index=m.index, scale=m.scale, disp=m.disp)
    assert roundtrip(make("mov", dst, m)).operands == (dst, m)
    assert roundtrip(make("mov", m, dst)).operands == (m, dst)


@given(dst=gp_regs(sizes=(8,)), imm=st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_mov_imm64(dst, imm):
    back = roundtrip(make("mov", dst, Imm(imm)))
    got = back.operands[1]
    assert isinstance(got, Imm)
    assert got.value == imm


@given(dst=gp_regs(sizes=(8,)), m=mem_operands(size=8))
def test_lea(dst, m):
    assert roundtrip(make("lea", dst, m)).operands == (dst, m)


@given(
    mnem=st.sampled_from(sorted(isa.SSE_SD) + sorted(isa.SSE_PD) + sorted(isa.SSE_PI)),
    dst=xmm_regs(),
    src=xmm_regs(),
)
def test_sse_reg_reg(mnem, dst, src):
    back = roundtrip(make(mnem, dst, src))
    assert (back.mnemonic, back.operands) == (mnem, (dst, src))


@given(dst=xmm_regs(), m=mem_operands(size=8))
def test_movsd_roundtrip(dst, m):
    assert roundtrip(make("movsd", dst, m)).operands == (dst, m)
    assert roundtrip(make("movsd", m, dst)).operands == (m, dst)


@given(
    target_off=st.integers(min_value=-(2**25), max_value=2**25),
    cc=st.sampled_from(isa.CC_NAMES),
)
def test_jcc_targets(target_off, cc):
    addr = 0x40000000
    back = roundtrip(make("j" + cc, Imm(addr + target_off)), addr)
    got = back.operands[0]
    assert isinstance(got, Imm)
    assert got.value == addr + target_off


@given(target_off=st.integers(min_value=-(2**25), max_value=2**25))
def test_call_jmp_targets(target_off):
    addr = 0x40000000
    for mnem in ("jmp", "call"):
        back = roundtrip(make(mnem, Imm(addr + target_off)), addr)
        assert back.operands[0] == Imm(addr + target_off)


@given(dst=gp_regs(sizes=(4, 8)), src=gp_regs(sizes=(4, 8)), cc=st.sampled_from(isa.CC_NAMES))
def test_cmov_roundtrip(dst, src, cc):
    src = src.with_size(dst.size)
    back = roundtrip(make("cmov" + cc, dst, src))
    assert (back.mnemonic, back.operands) == ("cmov" + cc, (dst, src))


@given(
    mnem=st.sampled_from(sorted(isa.SHIFT_GROUP)),
    dst=gp_regs(sizes=(4, 8)),
    count=st.integers(min_value=1, max_value=63),
)
def test_shift_roundtrip(mnem, dst, count):
    back = roundtrip(make(mnem, dst, Imm(count)))
    assert back.mnemonic == mnem
    assert back.operands[0] == dst
    assert back.operands[1].value == count


@given(reg=gp_regs(sizes=(8,)))
def test_push_pop_roundtrip(reg):
    assert roundtrip(make("push", reg)).operands == (reg,)
    assert roundtrip(make("pop", reg)).operands == (reg,)


@given(
    dst=gp_regs(sizes=(4, 8)),
    src=gp_regs(sizes=(4, 8)),
    imm=st.integers(min_value=-(2**31), max_value=2**31 - 1),
)
def test_imul3_roundtrip(dst, src, imm):
    src = src.with_size(dst.size)
    back = roundtrip(make("imul", dst, src, Imm(imm)))
    assert back.mnemonic == "imul"
    assert back.operands[0] == dst
    assert back.operands[1] == src
    assert back.operands[2].value == imm


@given(m=mem_operands(size=8))
def test_riprel_mem(m):
    target = 0x60000000
    mem = Mem(size=8, disp=target, riprel=True)
    back = roundtrip(make("mov", gp(0), mem), addr=0x40001234)
    got = back.operands[1]
    assert isinstance(got, Mem) and got.riprel and got.disp == target


@pytest.mark.parametrize("seg", ["fs", "gs"])
def test_segment_override(seg):
    mem = Mem(size=8, base=gp(0), disp=0x10, seg=seg)
    back = roundtrip(make("mov", gp(3), mem))
    assert back.operands[1] == mem
