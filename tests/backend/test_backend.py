"""TAC, register allocation, and emission unit tests."""

import pytest

from repro.backend.emit import EmitOptions, _synth_mult, emit_function
from repro.backend.opt import fuse_movs, local_propagate, dead_code_elim, optimize
from repro.backend.regalloc import allocate, build_intervals
from repro.backend.tac import TAddr, TFunc, TInstr, VReg
from repro.cpu import Image, Simulator
from repro.cc.compiler import RodataPool
from repro.x86.asm import assemble_full


def simple_func(name="f"):
    tf = TFunc(name=name)
    return tf


def run_tfunc(tf, int_args=(), f64_args=(), mul_style="imul"):
    img = Image()
    pool = RodataPool(img)
    items = emit_function(tf, pool, EmitOptions(mul_style=mul_style))
    base = img.next_code_addr()
    code, _p, labels = assemble_full(items, base)
    img.add_function(tf.name, code)
    img.symbols[tf.name] = labels[tf.name]
    sim = Simulator(img)
    return sim.call(tf.name, int_args, f64_args)


# -- synth_mult -------------------------------------------------------------


@pytest.mark.parametrize("imm", [2, 3, 5, 8, 9, 10, 25, 45, 81, 100, 649, 648])
def test_synth_mult_finds_chains(imm):
    steps = _synth_mult(imm)
    assert steps is not None
    # simulate the chain
    m = 1
    for kind, s in steps:
        if kind == "scale":
            m *= s
        elif kind == "lea":
            m *= s + 1
        elif kind == "leax":
            m = m * s + 1
        else:
            m <<= s
    assert m == imm


def test_synth_mult_gives_up_on_hard_constants():
    assert _synth_mult(641) is None or len(_synth_mult(641)) <= 3


def test_synth_mult_rejects_nonpositive():
    assert _synth_mult(0) is None
    assert _synth_mult(-5) is None


# -- end-to-end TAC programs ----------------------------------------------------


def test_tac_add_function():
    tf = simple_func()
    a = tf.new_vreg("i")
    b = tf.new_vreg("i")
    r = tf.new_vreg("i")
    tf.iparams = (a, b)
    tf.ret_cls = "i"
    blk = tf.block("entry")
    blk.instrs.append(TInstr(op="add", dst=r, a=a, b=b))
    blk.instrs.append(TInstr(op="ret", a=r))
    assert run_tfunc(tf, (30, 12)).int_value == 42


def test_tac_mul_imm_both_styles():
    for style in ("imul", "lea"):
        tf = simple_func()
        a = tf.new_vreg("i")
        r = tf.new_vreg("i")
        tf.iparams = (a,)
        tf.ret_cls = "i"
        blk = tf.block("entry")
        blk.instrs.append(TInstr(op="mul", dst=r, a=a, b=649))
        blk.instrs.append(TInstr(op="ret", a=r))
        assert run_tfunc(tf, (7,), mul_style=style).int_value == 7 * 649


def test_tac_division_uses_reserved_regs():
    tf = simple_func()
    a = tf.new_vreg("i")
    b = tf.new_vreg("i")
    q = tf.new_vreg("i")
    tf.iparams = (a, b)
    tf.ret_cls = "i"
    blk = tf.block("entry")
    blk.instrs.append(TInstr(op="div", dst=q, a=a, b=b))
    blk.instrs.append(TInstr(op="ret", a=q))
    assert run_tfunc(tf, (100, 7)).int_value == 14


def test_tac_width4_ops_zero_extend():
    tf = simple_func()
    a = tf.new_vreg("i")
    r = tf.new_vreg("i")
    tf.iparams = (a,)
    tf.ret_cls = "i"
    blk = tf.block("entry")
    blk.instrs.append(TInstr(op="add", dst=r, a=a, b=1, width=4))
    blk.instrs.append(TInstr(op="ret", a=r))
    # 0xFFFFFFFF + 1 in 32-bit = 0, zero-extended
    assert run_tfunc(tf, (0xFFFFFFFF,)).int_value == 0


def test_tac_float_roundtrip():
    tf = simple_func()
    x = tf.new_vreg("f")
    y = tf.new_vreg("f")
    r = tf.new_vreg("f")
    tf.fparams = (x, y)
    tf.ret_cls = "f"
    blk = tf.block("entry")
    blk.instrs.append(TInstr(op="fmul", dst=r, a=x, b=y))
    blk.instrs.append(TInstr(op="ret", a=r))
    assert run_tfunc(tf, (), (2.5, 4.0)).f64_value == 10.0


def test_tac_select_via_cmov():
    tf = simple_func()
    a = tf.new_vreg("i")
    b = tf.new_vreg("i")
    r = tf.new_vreg("i")
    tf.iparams = (a, b)
    tf.ret_cls = "i"
    blk = tf.block("entry")
    blk.instrs.append(TInstr(op="mov", dst=r, a=a))
    blk.instrs.append(TInstr(op="cmp", a=a, b=b))
    blk.instrs.append(TInstr(op="cmov", dst=r, cc="l", a=b))
    blk.instrs.append(TInstr(op="ret", a=r))
    assert run_tfunc(tf, (3, 9)).int_value == 9
    assert run_tfunc(tf, (9, 3)).int_value == 9


def test_tac_vector_ops():
    tf = simple_func()
    x = tf.new_vreg("f")
    v = tf.new_vreg("v")
    v2 = tf.new_vreg("v")
    hi = tf.new_vreg("f")
    tf.fparams = (x,)
    tf.ret_cls = "f"
    blk = tf.block("entry")
    blk.instrs.append(TInstr(op="vbroadcast", dst=v, a=x))
    blk.instrs.append(TInstr(op="vadd", dst=v2, a=v, b=v))
    blk.instrs.append(TInstr(op="vhadd", dst=hi, a=v2))
    blk.instrs.append(TInstr(op="ret", a=hi))
    # broadcast x -> [x,x]; double -> [2x,2x]; hadd -> 4x
    assert run_tfunc(tf, (), (1.5,)).f64_value == 6.0


def test_tac_bits_roundtrip():
    tf = simple_func()
    a = tf.new_vreg("i")
    f = tf.new_vreg("f")
    r = tf.new_vreg("i")
    tf.iparams = (a,)
    tf.ret_cls = "i"
    blk = tf.block("entry")
    blk.instrs.append(TInstr(op="bits2f", dst=f, a=a))
    blk.instrs.append(TInstr(op="f2bits", dst=r, a=f))
    blk.instrs.append(TInstr(op="ret", a=r))
    bits = 0x3FF0000000000000  # 1.0
    assert run_tfunc(tf, (bits,)).rax == bits


# -- optimizer passes -----------------------------------------------------------


def test_local_propagate_folds_constants():
    tf = simple_func()
    a = tf.new_vreg("i")
    b = tf.new_vreg("i")
    c = tf.new_vreg("i")
    blk = tf.block("entry")
    blk.instrs.append(TInstr(op="li", dst=a, imm=6))
    blk.instrs.append(TInstr(op="li", dst=b, imm=7))
    blk.instrs.append(TInstr(op="mul", dst=c, a=a, b=b))
    blk.instrs.append(TInstr(op="ret", a=c))
    local_propagate(tf)
    ops = [i.op for i in blk.instrs]
    assert ops.count("mul") == 0
    assert any(i.op == "li" and i.imm == 42 for i in blk.instrs)


def test_dead_code_elim_removes_unused():
    tf = simple_func()
    a = tf.new_vreg("i")
    dead = tf.new_vreg("i")
    blk = tf.block("entry")
    blk.instrs.append(TInstr(op="li", dst=a, imm=1))
    blk.instrs.append(TInstr(op="li", dst=dead, imm=99))
    blk.instrs.append(TInstr(op="ret", a=a))
    dead_code_elim(tf)
    assert len(blk.instrs) == 2


def test_fuse_movs_removes_copy():
    tf = simple_func()
    a = tf.new_vreg("i")
    t = tf.new_vreg("i")
    home = tf.new_vreg("i")
    tf.iparams = (a,)
    blk = tf.block("entry")
    blk.instrs.append(TInstr(op="add", dst=t, a=a, b=1))
    blk.instrs.append(TInstr(op="mov", dst=home, a=t))
    blk.instrs.append(TInstr(op="ret", a=home))
    fuse_movs(tf)
    assert [i.op for i in blk.instrs] == ["add", "ret"]
    assert blk.instrs[0].dst == home


def test_fuse_movs_respects_rmw_hazard():
    # add t, a, home ; mov home, t  --> fusing would read home after writing
    tf = simple_func()
    a = tf.new_vreg("i")
    home = tf.new_vreg("i")
    t = tf.new_vreg("i")
    tf.iparams = (a, home)
    blk = tf.block("entry")
    blk.instrs.append(TInstr(op="sub", dst=t, a=a, b=home))
    blk.instrs.append(TInstr(op="mov", dst=home, a=t))
    blk.instrs.append(TInstr(op="ret", a=home))
    fuse_movs(tf)
    # the unsafe fusion must not happen (b == new_dst)
    assert [i.op for i in blk.instrs] == ["sub", "mov", "ret"]


# -- register allocation ---------------------------------------------------------


def test_allocator_spills_under_pressure():
    tf = simple_func()
    blk = tf.block("entry")
    vregs = [tf.new_vreg("i") for _ in range(20)]
    for v in vregs:
        blk.instrs.append(TInstr(op="li", dst=v, imm=1))
    total = tf.new_vreg("i")
    blk.instrs.append(TInstr(op="li", dst=total, imm=0))
    prev = total
    for v in vregs:  # all 20 live simultaneously at the first add
        nxt = tf.new_vreg("i")
        blk.instrs.append(TInstr(op="add", dst=nxt, a=prev, b=v))
        prev = nxt
    blk.instrs.append(TInstr(op="ret", a=prev))
    result = allocate(tf)
    spilled = [a for a in result.assignments.values() if not a.is_reg]
    assert spilled  # pressure forces spills
    tf.ret_cls = "i"
    assert run_tfunc(tf).int_value == 20  # and the code still works


def test_intervals_cover_loop_backedge():
    tf = simple_func()
    i = tf.new_vreg("i")
    one = tf.new_vreg("i")
    head = tf.block("head")
    body = tf.block("body")
    exit_ = tf.block("exit")
    head.instrs.append(TInstr(op="br", cc="l", a=i, b=10, labels=("body", "exit")))
    body.instrs.append(TInstr(op="add", dst=i, a=i, b=one))
    body.instrs.append(TInstr(op="jmp", labels=("head",)))
    exit_.instrs.append(TInstr(op="ret", a=i))
    intervals, _ = build_intervals(tf)
    iv = next(x for x in intervals if x.vreg == one)
    # `one` is live-in to body across the back edge: interval must span it
    assert iv.end > iv.start


def test_callee_saved_for_call_crossing():
    tf = simple_func()
    a = tf.new_vreg("i")
    r = tf.new_vreg("i")
    tf.iparams = (a,)
    tf.ret_cls = "i"
    blk = tf.block("entry")
    blk.instrs.append(TInstr(op="call", dst=r, func="ext", iargs=(a,)))
    blk.instrs.append(TInstr(op="add", dst=r, a=r, b=a))  # `a` crosses the call
    blk.instrs.append(TInstr(op="ret", a=r))
    result = allocate(tf)
    from repro.backend.regalloc import INT_CALLEE_POOL
    assign = result.assignments[a]
    assert (not assign.is_reg) or assign.value in INT_CALLEE_POOL
