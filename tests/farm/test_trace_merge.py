"""Span-context propagation across the process boundary (satellite 2).

Unit level: ``export_records``/``merge_records`` remap ids, re-root
orphans, stamp the origin pid and translate clock domains through the
shared wall clock.  End to end: a traced engine run over the farm yields
ONE client-side trace in which the worker's ``farm.job`` span nests under
the dispatch-site ``tier.compile`` span.
"""

from __future__ import annotations

import os
import time

from repro import FarmClient, FarmPool, FunctionSignature, TieredEngine, \
    compile_c
from repro.obs import trace_to_chrome
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACER, Tracer
from repro.tier import T1, TierPolicy
from tests.farm.conftest import SRC


def test_merge_remaps_ids_and_reroots():
    remote = Tracer()
    remote.enable()
    parent = remote.start("remote.outer")
    child = remote.start("remote.inner")
    remote.finish(child)
    remote.finish(parent)
    batch = remote.export_records()

    local = Tracer()
    local.enable()
    root = local.start("local.dispatch")
    local.finish(root)
    idmap = local.merge_records(batch, root_parent=root.span_id)

    by_name = {s.name: s for s in local.spans}
    outer, inner = by_name["remote.outer"], by_name["remote.inner"]
    # fresh local ids (both tracers count from 1: raw ids would collide)
    assert outer.span_id != parent.span_id or root.span_id != parent.span_id
    assert {outer.span_id, inner.span_id}.isdisjoint({root.span_id})
    # batch-internal edges survive the remap; orphans hang off root_parent
    assert inner.parent_id == outer.span_id
    assert outer.parent_id == root.span_id
    assert idmap[parent.span_id] == outer.span_id
    # the batch's origin pid is stamped on every imported span
    assert outer.attrs["pid"] == os.getpid()
    assert inner.attrs["pid"] == os.getpid()


def test_merge_translates_clock_domains():
    # two deliberately unrelated clock epochs sharing one wall clock —
    # exactly the perf_counter situation across processes
    remote = Tracer(clock=lambda: time.time() - 1000.0)
    remote.enable()
    span = remote.start("work")
    remote.finish(span)
    batch = remote.export_records()

    local = Tracer(clock=lambda: time.time() - 5.0)
    local.enable()
    local.merge_records(batch)
    merged = local.spans[0]
    # the span maps to the same wall instant, expressed in local clock
    # units: local_t = remote_t + (1000 - 5), up to wall-sampling skew
    assert abs((merged.t0 - span.t0) - 995.0) < 0.5
    assert abs(merged.duration - span.duration) < 0.5


def test_export_window_and_open_span_skip():
    tr = Tracer()
    tr.enable()
    old = tr.start("before-mark")
    tr.finish(old)
    mark = tr.mark()
    still_open = tr.start("open")
    done = tr.start("after-mark")
    tr.finish(done)
    tr.instant("tick", {"n": 1})
    batch = tr.export_records(mark)
    names = [rec[0] for rec in batch["spans"]]
    assert names == ["after-mark"]  # windowed, and the open span skipped
    assert [e[0] for e in batch["events"]] == ["tick"]
    tr.finish(still_open)


def test_farm_trace_nests_worker_spans_under_dispatch(tmp_path):
    prog = compile_c(SRC)
    pool = FarmPool(workers=1, disk_dir=str(tmp_path / "farm"),
                    registry=MetricsRegistry())
    client = FarmClient(pool, registry=MetricsRegistry())
    TRACER.clear()
    TRACER.enable()
    try:
        with TieredEngine(prog.image, farm=client,
                          policy=TierPolicy(promote_calls=(4, 12)),
                          farm_timeout=120.0) as eng:
            h = eng.register("f", FunctionSignature(("i", "i"), "i"),
                             fixes={1: 3})
            deadline = time.monotonic() + 120
            while h.tier < T1 and time.monotonic() < deadline:
                h.address()
                time.sleep(0.005)
            eng.drain(timeout=120)
            assert eng.stats.farm_jobs >= 1
            assert eng.stats.installs[T1] == 1
    finally:
        TRACER.disable()
        pool.close()

    spans = {s.span_id: s for s in TRACER.spans}
    farm_jobs = [s for s in TRACER.spans if s.name == "farm.job"]
    assert farm_jobs, [s.name for s in TRACER.spans]
    job_span = farm_jobs[0]
    # the worker runs in another process (fork or spawn alike)
    assert job_span.attrs["pid"] != os.getpid()
    # ... yet its span nests under the client-side dispatch-site span
    assert job_span.parent_id in spans
    assert spans[job_span.parent_id].name == "tier.compile"
    # and its (translated) timestamps land inside the parent's window,
    # up to wall/perf sampling skew on either anchor
    parent = spans[job_span.parent_id]
    assert parent.t0 - 0.1 <= job_span.t0 <= parent.t1 + 0.1

    # the merged tree exports as one Chrome trace
    chrome = trace_to_chrome(TRACER)
    names = {ev.get("name") for ev in chrome["traceEvents"]}
    assert "farm.job" in names and "tier.compile" in names
    TRACER.clear()
