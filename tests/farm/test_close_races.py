"""Shutdown races: close() must be idempotent under concurrent callers and
race-free against the collector's respawn path (a worker crashing *during*
close must not be resurrected or double-fail a future)."""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro import FarmClient, FarmPool
from repro.obs.metrics import MetricsRegistry
from tests.farm.test_pool import _job_for


def _pool(tmp_path, **kw):
    kw.setdefault("workers", 2)
    kw.setdefault("poll_interval", 0.02)
    kw.setdefault("heartbeat_interval", 0.1)
    kw.setdefault("registry", MetricsRegistry())
    return FarmPool(disk_dir=str(tmp_path / "farm"), **kw)


def test_double_close_is_idempotent(tmp_path):
    pool = _pool(tmp_path)
    pool.close()
    pool.close()  # second call is a silent no-op
    assert pool.alive_workers() == 0


def test_concurrent_closes_all_return(tmp_path):
    pool = _pool(tmp_path)
    errors = []

    def closer():
        try:
            pool.close()
        except Exception as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    threads = [threading.Thread(target=closer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    assert not any(t.is_alive() for t in threads), "close() deadlocked"
    assert errors == []
    assert pool.alive_workers() == 0


def test_crash_during_close_cannot_resurrect_a_worker(tmp_path):
    """Kill a worker and close concurrently, repeatedly: whatever
    interleaving the scheduler picks, close() wins — no respawn lands
    after the teardown snapshot and no process survives."""
    for _ in range(5):
        pool = _pool(tmp_path)
        victim = pool._slots[0].proc
        killer = threading.Thread(target=victim.kill)
        closer = threading.Thread(target=pool.close)
        killer.start()
        closer.start()
        killer.join(timeout=30.0)
        closer.join(timeout=60.0)
        assert not closer.is_alive(), "close() wedged against the watchdog"
        # no worker (original or respawned) may outlive close()
        deadline = time.monotonic() + 10.0
        while any(s.proc.is_alive() for s in pool._slots):
            assert time.monotonic() < deadline, "worker survived close()"
            time.sleep(0.02)
        # and the closed flag holds: no late respawn can slip in
        assert pool._closed
        with pytest.raises(RuntimeError):
            pool.submit(object())


def test_close_with_stopped_worker_escalates_to_sigkill(prog, tmp_path):
    """SIGTERM is never delivered to a SIGSTOPped process; close() must
    escalate to SIGKILL and still fail the stranded futures."""
    pool = _pool(tmp_path, workers=1, hang_timeout=3600.0,
                 boot_timeout=3600.0)
    client = FarmClient(pool)
    deadline = time.monotonic() + 60.0
    while pool._slots[0].hb.value == 0.0:
        assert time.monotonic() < deadline
        time.sleep(0.02)
    job = _job_for(prog, client, fixes={1: 6})
    os.kill(pool._slots[0].proc.pid, signal.SIGSTOP)
    fut = pool.submit(job)
    t0 = time.monotonic()
    pool.close(timeout=0.5)
    assert time.monotonic() - t0 < 30.0, "close() hung on a stopped worker"
    assert pool.alive_workers() == 0
    with pytest.raises(BrokenPipeError):
        fut.result(timeout=1.0)
    assert pool.snapshot()["lost_futures"] == 1


def test_close_during_active_compile_fails_inflight_futures(prog, tmp_path):
    """Closing while jobs are in flight resolves every future — with the
    result if the worker finished in the grace window, else with
    BrokenPipeError — but never leaves a waiter hanging."""
    pool = _pool(tmp_path, workers=1)
    client = FarmClient(pool)
    futs = [pool.submit(_job_for(prog, client, fixes={1: k},
                                 name=f"close.f{k}"))
            for k in range(4)]
    pool.close(timeout=0.2)
    for fut in futs:
        try:
            res = fut.result(timeout=1.0)
        except BrokenPipeError:
            continue  # failed over, not stranded
        assert res is not None  # resolved before teardown: also fine
