"""Cross-process single-flight: one compile per key, whatever dies.

The contract under test (ISSUE acceptance criteria):

* 8 processes racing one key -> exactly one runs the thunk, the rest are
  served through the probe;
* SIGKILLing the leader mid-compile releases its ``flock`` and a waiting
  follower takes over (or, failing that, the caller falls back) — never a
  deadlock;
* a wedged-but-alive leader is bounded by ``timeout``: the follower gives
  up waiting and duplicates the work rather than hanging.
"""

from __future__ import annotations

import os
import time

from repro.cache import DiskStore, FileFlightTable

WORKERS = 8


def _race_main(root: str, store_dir: str, worker: int) -> None:
    store = DiskStore(store_dir)
    flights = FileFlightTable(root, poll_interval=0.002)

    def thunk():
        # detectably non-atomic compile: anyone else entering the thunk
        # concurrently would also append a line
        with open(os.path.join(store_dir, "compiles.log"), "a") as fh:
            fh.write(f"{worker}:{os.getpid()}\n")
        time.sleep(0.1)
        store.put("result", {"by": worker})
        return {"by": worker}

    result, _led = flights.run("key", thunk,
                               lambda: store.get("result"), timeout=60.0)
    assert result is not None and "by" in result
    os._exit(0)


def test_eight_processes_one_compile(mp_ctx, tmp_path):
    root = str(tmp_path / "flights")
    store_dir = str(tmp_path / "store")
    os.makedirs(store_dir, exist_ok=True)
    procs = [mp_ctx.Process(target=_race_main, args=(root, store_dir, w))
             for w in range(WORKERS)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0
    with open(os.path.join(store_dir, "compiles.log")) as fh:
        lines = fh.read().splitlines()
    assert len(lines) == 1, f"racing processes each compiled: {lines}"


def _leader_main(root: str, store_dir: str, started: str) -> None:
    flights = FileFlightTable(root)

    def thunk():
        with open(started, "w") as fh:
            fh.write(str(os.getpid()))
        time.sleep(600)  # the test SIGKILLs us long before this returns
        return {"by": "leader"}

    flights.run("key", thunk, lambda: None, timeout=None)
    os._exit(0)


def _follower_main(root: str, store_dir: str) -> None:
    store = DiskStore(store_dir)
    flights = FileFlightTable(root, poll_interval=0.01)

    def thunk():
        store.put("result", {"by": "follower"})
        return {"by": "follower"}

    result, led = flights.run("key", thunk,
                              lambda: store.get("result"), timeout=60.0)
    assert result == {"by": "follower"} and led
    assert flights.takeovers == 1
    os._exit(0)


def test_killed_leader_follower_takes_over(mp_ctx, tmp_path):
    root = str(tmp_path / "flights")
    store_dir = str(tmp_path / "store")
    os.makedirs(store_dir, exist_ok=True)
    started = os.path.join(store_dir, "leader-started")

    leader = mp_ctx.Process(target=_leader_main,
                            args=(root, store_dir, started))
    leader.start()
    deadline = time.monotonic() + 30
    while not os.path.exists(started):  # leader holds the lock now
        assert time.monotonic() < deadline, "leader never started"
        time.sleep(0.01)

    follower = mp_ctx.Process(target=_follower_main, args=(root, store_dir))
    follower.start()
    time.sleep(0.3)  # let the follower reach its polling wait
    leader.kill()    # SIGKILL mid-compile: flock evaporates with the pid
    leader.join(timeout=10)

    follower.join(timeout=60)
    assert follower.exitcode == 0, "follower deadlocked or failed"
    assert DiskStore(store_dir).get("result") == {"by": "follower"}


def test_wedged_leader_timeout_falls_back():
    """In-process: a thread holds the lock forever; the timed caller
    duplicates the work instead of hanging."""
    import tempfile
    import threading

    with tempfile.TemporaryDirectory() as d:
        flights = FileFlightTable(d, poll_interval=0.005)
        holding = threading.Event()
        release = threading.Event()

        def wedged():
            def thunk():
                holding.set()
                release.wait(30)
                return "leader"
            # flock is per-fd: a second FileFlightTable in this process
            # still contends on the same lock file
            FileFlightTable(d).run("key", thunk, lambda: None, timeout=None)

        t = threading.Thread(target=wedged, daemon=True)
        t.start()
        assert holding.wait(10)
        result, led = flights.run("key", lambda: "fallback",
                                  lambda: None, timeout=0.2)
        assert result == "fallback" and led
        assert flights.timeouts == 1
        release.set()
        t.join(timeout=10)


def test_probe_hit_skips_locking(tmp_path):
    flights = FileFlightTable(str(tmp_path))
    result, led = flights.run("key", lambda: "compiled", lambda: "cached")
    assert result == "cached" and not led
    assert flights.coalesced == 1 and flights.led == 0


def test_sweep_removes_lock_files(tmp_path):
    flights = FileFlightTable(str(tmp_path))
    flights.run("key", lambda: "x", lambda: None)
    assert os.listdir(str(tmp_path))
    flights.sweep()
    assert os.listdir(str(tmp_path)) == []
