"""TieredEngine + farm: the drop-in backend contract.

Same observable behavior as the in-process tiers — zero-stall dispatch,
epoch-checked installs, gate admission — with the compile work done in
worker processes and the machine code still assembled client-side.
"""

from __future__ import annotations

import time

import pytest

from repro import (
    FarmClient,
    FarmPool,
    FunctionSignature,
    Simulator,
    TieredEngine,
    compile_c,
)
from repro.obs.metrics import MetricsRegistry
from repro.tier import T0, T1, T2, TierPolicy
from tests.farm.conftest import SRC, expected


@pytest.fixture()
def farm(tmp_path):
    pool = FarmPool(workers=2, disk_dir=str(tmp_path / "farm"),
                    registry=MetricsRegistry())
    yield FarmClient(pool, registry=MetricsRegistry())
    pool.close()


def make_engine(prog, farm, **kw):
    kw.setdefault("policy", TierPolicy(promote_calls=(4, 12)))
    kw.setdefault("farm_timeout", 120.0)
    return TieredEngine(prog.image, farm=farm, **kw)


def spin_to_tier(handle, sim, tier, *, args=(10, 3), calls=400,
                 timeout=120.0):
    deadline = time.monotonic() + timeout
    for _ in range(calls):
        addr = handle.address()
        sim.invalidate_code()
        assert sim.call(addr, args).rax == expected(*args)
        if handle.tier >= tier:
            return
        time.sleep(0.005)
    assert handle.wait_for_tier(tier, max(0.0, deadline - time.monotonic())), \
        handle.snapshot()


def test_farm_promotion_reaches_t2_verified(prog, farm):
    sim = Simulator(prog.image)
    with make_engine(prog, farm) as eng:
        h = eng.register("f", FunctionSignature(("i", "i"), "i"),
                         fixes={1: 3}, probes=((10,), (5,)))
        spin_to_tier(h, sim, T2, args=(10, 3))
        assert h.code.mode == "dbrew+llvm"
        assert h.code.verified  # worker-side gate verdict propagated
        assert sorted(h.codes) == [T0, T1, T2]
        s = eng.stats.snapshot()
        assert s["installs"] == {T1: 1, T2: 1}
        assert s["farm_jobs"] == 2          # both tiers went through the farm
        assert s["farm_fallbacks"] == 0
        sim.invalidate_code()
        assert sim.call(h.address(), (10, 3)).rax == expected(10, 3)


def test_farm_dispatch_never_blocks(prog, farm):
    with make_engine(prog, farm) as eng:
        h = eng.register("f", FunctionSignature(("i", "i"), "i"),
                         fixes={1: 3})
        samples = []
        for _ in range(30):
            t0 = time.perf_counter()
            h.address()
            samples.append(time.perf_counter() - t0)
        # a farm compile takes seconds; dispatch must never wait on one.
        # The single-CPU CI box suffers multi-ms scheduler stalls while a
        # worker process is chewing, so bound the median tightly and every
        # sample only loosely (still orders below one compile).
        samples.sort()
        assert samples[len(samples) // 2] < 0.01
        assert samples[-1] < 0.25
        eng.drain(timeout=120)


def test_refix_discards_stale_farm_result(prog, farm):
    sim = Simulator(prog.image)
    with make_engine(prog, farm) as eng:
        h = eng.register("f", FunctionSignature(("i", "i"), "i"),
                         fixes={1: 3})
        eng.pause()  # park the job before it reaches the farm
        try:
            for _ in range(20):
                h.address()
            time.sleep(0.1)
            eng.refix(h, {1: 9})  # supersedes the in-flight epoch
        finally:
            eng.resume()
        eng.drain(timeout=120)
        assert eng.stats.stale_discards >= 1
        assert h.tier == T0  # the stale result never installed
        # the new epoch compiles against the new fixation
        spin_to_tier(h, sim, T1, args=(10, 9))
        sim.invalidate_code()
        assert sim.call(h.address(), (10, 123)).rax == expected(10, 9)


def test_closed_farm_falls_back_to_local_compile(prog, tmp_path):
    pool = FarmPool(workers=1, disk_dir=str(tmp_path / "farm"),
                    registry=MetricsRegistry())
    client = FarmClient(pool, registry=MetricsRegistry())
    pool.close()  # farm is down before the engine ever uses it
    sim = Simulator(prog.image)
    with make_engine(prog, client) as eng:
        h = eng.register("f", FunctionSignature(("i", "i"), "i"),
                         fixes={1: 3})
        spin_to_tier(h, sim, T1, args=(10, 3))
        s = eng.stats.snapshot()
        assert s["farm_fallbacks"] >= 1  # every request degraded softly
        assert s["installs"][T1] == 1    # and the local pipeline delivered
        sim.invalidate_code()
        assert sim.call(h.address(), (10, 99)).rax == expected(10, 3)


def test_warm_cross_pool_shared_cache(prog, tmp_path):
    """A second pool over the same disk dir serves every compile from the
    shared store: the 100% warm hit-rate acceptance criterion."""
    sig = FunctionSignature(("i", "i"), "i")

    def run_round():
        p = compile_c(SRC)
        pool = FarmPool(workers=2, disk_dir=str(tmp_path / "farm"),
                        registry=MetricsRegistry())
        client = FarmClient(pool, registry=MetricsRegistry())
        try:
            with make_engine(p, client) as eng:
                h = eng.register("f", sig, fixes={1: 3},
                                 probes=((10,), (5,)))
                sim = Simulator(p.image)
                spin_to_tier(h, sim, T2, args=(10, 3))
                return eng.stats.snapshot()
        finally:
            pool.close()

    cold = run_round()
    warm = run_round()
    assert cold["farm_cache_hits"] == 0
    assert warm["farm_jobs"] == 2
    assert warm["farm_cache_hits"] == 2  # T1 and T2 both warm
    assert warm["farm_fallbacks"] == 0


def test_gate_rejection_from_farm_pins_handle(farm):
    """A worker-side negative verdict surfaces as a rejection, exactly as
    a local gate failure would — never a silent install."""
    # dbrew_func names a function that computes something *different* from
    # the gate's reference: the worker's differential gate must reject the
    # dbrew+llvm rung and publish the negative verdict
    prog = compile_c(SRC + "long g(long a, long b) { return a + b + 1; }")
    sim = Simulator(prog.image)
    with make_engine(prog, farm) as eng:
        h = eng.register("f", FunctionSignature(("i", "i"), "i"),
                         fixes={1: 3}, probes=((10,), (5,)),
                         dbrew_func="g")
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            h.address()
            sim.invalidate_code()
            if eng.stats.rejections[T2] >= 1:
                break
            time.sleep(0.01)
        eng.drain(timeout=120)
        s = eng.stats.snapshot()
        assert s["rejections"][T2] == 1   # verdict delivered by the farm
        assert s["farm_fallbacks"] == 0   # content verdict, not a retry
        assert h.tier == T1               # pinned at the last good tier
        assert h.governor.pinned_max == T1
        sim.invalidate_code()
        assert sim.call(h.address(), (10, 3)).rax == expected(10, 3)
