"""DiskStore under concurrent multi-process writers (the farm's substrate).

The store's publication discipline is temp-file + atomic rename, so a
reader can never observe a half-written entry; ``advisory_lock`` adds
mutual exclusion for critical sections that need more than atomicity.
"""

from __future__ import annotations

import os
import pickle

from repro.cache.store import DiskStore, advisory_lock

WRITERS = 8
ROUNDS = 40


def _hammer_main(root: str, worker: int, rounds: int) -> None:
    """Each process writes its own stamped payloads over shared keys and
    reads back arbitrary ones; every read must be a complete payload."""
    store = DiskStore(root)
    for i in range(rounds):
        key = f"shared-{i % 5}"
        payload = {"worker": worker, "round": i, "blob": bytes(256) * (i % 7)}
        store.put(key, payload)
        got = store.get(key)
        # torn writes would surface as pickle errors inside get();
        # a successful read must be some writer's complete payload
        assert got is None or set(got) == {"worker", "round", "blob"}
    os._exit(0)  # skip interpreter teardown races in the child


def test_eight_process_hammer(mp_ctx, tmp_path):
    root = str(tmp_path / "store")
    procs = [mp_ctx.Process(target=_hammer_main, args=(root, w, ROUNDS))
             for w in range(WRITERS)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0
    store = DiskStore(root)
    # every surviving entry is complete and readable
    entries = store.keys()
    assert entries, "hammer left no entries"
    for key in entries:
        got = store.get(key)
        assert set(got) == {"worker", "round", "blob"}
    # atomic publication leaves no temp litter behind
    leftovers = [n for n in os.listdir(root) if n.endswith(".tmp")]
    assert leftovers == []


def test_torn_entry_reads_as_miss(tmp_path):
    store = DiskStore(str(tmp_path))
    store.put("good", {"x": 1})
    path = os.path.join(str(tmp_path), "good.pkl")
    blob = pickle.dumps({"x": 1})
    with open(path, "wb") as fh:
        fh.write(blob[: len(blob) // 2])  # simulate a torn write
    assert store.get("good") is None


def test_stale_tmp_swept_on_open(tmp_path):
    root = str(tmp_path)
    os.makedirs(root, exist_ok=True)
    stale = os.path.join(root, "dead-writer.tmp")
    with open(stale, "wb") as fh:
        fh.write(b"junk")
    os.utime(stale, (0, 0))  # ancient mtime
    fresh = os.path.join(root, "live-writer.tmp")
    with open(fresh, "wb") as fh:
        fh.write(b"junk")
    DiskStore(root)
    assert not os.path.exists(stale)
    assert os.path.exists(fresh)  # a live writer's temp file survives


def _lock_main(path: str, counter_file: str, rounds: int) -> None:
    for _ in range(rounds):
        with advisory_lock(path) as held:
            assert held
            with open(counter_file) as fh:
                value = int(fh.read())
            with open(counter_file, "w") as fh:
                fh.write(str(value + 1))
    os._exit(0)


def test_advisory_lock_excludes_across_processes(mp_ctx, tmp_path):
    """A read-modify-write under the lock never loses an increment."""
    lock = str(tmp_path / "l.lock")
    counter = str(tmp_path / "counter")
    with open(counter, "w") as fh:
        fh.write("0")
    procs = [mp_ctx.Process(target=_lock_main, args=(lock, counter, 25))
             for _ in range(4)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0
    with open(counter) as fh:
        assert int(fh.read()) == 4 * 25


def test_advisory_lock_nonblocking_reports_contention(tmp_path):
    path = str(tmp_path / "l.lock")
    with advisory_lock(path) as held:
        assert held
        with advisory_lock(path, blocking=False) as held2:
            # same-process flock re-acquisition is a no-op on some
            # platforms; the cross-process case is covered above
            assert held2 in (True, False)
