"""Chaos orchestrator: seeded scenarios over a real engine + farm hold
every invariant, and a scenario's fault script replays from its seed."""

from __future__ import annotations

import pytest

from repro.testing.chaos import (ChaosOptions, FAULT_KINDS, run_scenario,
                                 run_suite)

# small scenarios sized for a 1-CPU box; the full sweep lives in
# benchmarks/bench_chaos.py
_OPTS = ChaosOptions(workers=2, functions=2, steps=12, calls_per_step=2,
                     fault_rate=0.5, heartbeat_interval=0.2,
                     hang_timeout=0.4)


@pytest.mark.parametrize("seed", [7, 42, 1337])
def test_scenario_holds_all_invariants(seed):
    rep = run_scenario(seed, _OPTS)
    assert rep.ok, rep.violations
    assert rep.calls > 0
    assert rep.dispatch["p99"] >= 0.0


def test_fault_script_replays_from_seed_alone(tmp_path):
    """Determinism: the decision stream — which steps fire, which kinds —
    is a pure function of the seed, whatever the runtime state did."""
    a = run_scenario(99, _OPTS, workdir=str(tmp_path / "a"))
    b = run_scenario(99, _OPTS, workdir=str(tmp_path / "b"))
    assert a.ok and b.ok, (a.violations, b.violations)
    assert [(e.step, e.kind) for e in a.events] \
        == [(e.step, e.kind) for e in b.events]
    assert len(a.events) > 0  # fault_rate 0.5 over 12 steps: some fired


def test_different_seeds_give_different_scripts():
    scripts = set()
    for seed in (1, 2, 3, 4):
        rep = run_scenario(
            seed, ChaosOptions(workers=1, functions=1, steps=10,
                               calls_per_step=1, fault_rate=0.5,
                               faults=("clock_skew",)))
        assert rep.ok, rep.violations
        scripts.add(tuple((e.step, e.kind) for e in rep.events))
    assert len(scripts) > 1


def test_suite_aggregates_across_seeds():
    opts = ChaosOptions(workers=1, functions=1, steps=6, calls_per_step=1,
                        fault_rate=0.5, faults=("clock_skew", "budget"))
    agg = run_suite([5, 6], opts)
    assert agg["scenarios"] == 2
    assert agg["violations"] == 0 and agg["failed_seeds"] == []
    assert agg["calls"] > 0
    assert set(agg["faults_injected"]) <= set(FAULT_KINDS)
    assert len(agg["reports"]) == 2


def test_warm_laps_populate_dispatch_warm():
    opts = ChaosOptions(workers=1, functions=1, steps=4, calls_per_step=1,
                        fault_rate=0.0, faults=(), warm_laps=50)
    rep = run_scenario(11, opts)
    assert rep.ok, rep.violations
    assert rep.dispatch_warm["p99"] > 0.0
    assert rep.as_dict()["dispatch_warm"]["p99"] > 0.0
