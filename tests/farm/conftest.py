"""Shared fixtures for the farm suite.

The start method honours ``REPRO_FARM_START_METHOD`` so the CI matrix can
run the whole directory under both ``fork`` and ``spawn`` without test
changes; locally it defaults to the platform's cheapest method.
"""

from __future__ import annotations

import multiprocessing as mp

import pytest

from repro import compile_c
from repro.farm.pool import _pick_start_method

SRC = ("long f(long a, long b) { long s = 0; "
       "for (long i = 0; i < a; i++) s += i * b; return s; }")


def expected(a, b):
    return sum(i * b for i in range(a))


@pytest.fixture()
def prog():
    return compile_c(SRC)


@pytest.fixture(scope="session")
def mp_ctx():
    """The multiprocessing context the whole suite runs under."""
    return mp.get_context(_pick_start_method(None))
