"""Wire-protocol properties, mirroring tests/cache/test_keys_properties.py:

* every :class:`CompileJob` / :class:`CompileResult` field survives a
  pickle round-trip — including through a real child process under the
  suite's start method (fork and spawn in CI);
* the job content key is stable across processes and hash seeds, and
  every key ingredient perturbs it;
* an :class:`ImageSpec` rebuilds a bit-identical image with a stable
  content digest.
"""

from __future__ import annotations

import dataclasses
import pickle
import subprocess
import sys
from pathlib import Path

from repro.cpu import Image, Simulator
from repro.farm import protocol as fp
from repro.guard.verify import GateOptions
from repro.ir.codegen import JITOptions
from repro.ir.passes import O3Options
from repro.lift import FunctionSignature, LiftOptions
from repro.x86 import parse_asm
from repro.x86.asm import assemble

_SRC = Path(__file__).resolve().parents[2] / "src"

_ASM = "mov rax, rdi\nimul rax, rsi\nadd rax, 7\nret"


def _fixed_image() -> Image:
    img = Image()
    code, _ = assemble(parse_asm(_ASM), base=img.next_code_addr())
    img.add_function("f", code)
    return img


def _sample_job(**overrides) -> fp.CompileJob:
    base = dict(
        key="k" * 32, name="f.t2.e1.s9", tier=2, func="f",
        signature=FunctionSignature(("i", "i"), "i"),
        fixes=fp.freeze_fixes({1: 7}), mem_regions=((4096, 64),),
        probes=((10, 3), (5, 0)), dbrew_func="f", ladder=("dbrew+llvm",),
        image_key="farmimg-abc",
        lift=fp.freeze_lift_options(LiftOptions(stack_size=8192)),
        o3=O3Options.lightweight(), jit=JITOptions(),
        gate=GateOptions(), budget=fp.freeze_budget(None), epoch=3, seq=17,
        trace=True, parent_span_id=42,
    )
    base.update(overrides)
    return fp.CompileJob(**base)


def _sample_result(**overrides) -> fp.CompileResult:
    base = dict(
        key="k" * 32, name="f.t2.e1.s9", tier=2, epoch=3, seq=17, ok=False,
        retryable=True, mode="dbrew+llvm", verified=True,
        reject_reason="why", module=None, main_name="f_opt",
        cache_stage="farm", coalesced=True,
        stats=(("lift.facet_cache.hits", 3.0),),
        trace_records={"pid": 1, "anchor_wall": 0.0, "anchor_clock": 0.0,
                       "spans": [], "events": []},
        worker_pid=1234, seconds=0.5,
    )
    base.update(overrides)
    return fp.CompileResult(**base)


def test_every_job_field_roundtrips():
    job = _sample_job()
    back = pickle.loads(pickle.dumps(job))
    for f in dataclasses.fields(fp.CompileJob):
        assert getattr(back, f.name) == getattr(job, f.name), f.name


def test_every_result_field_roundtrips():
    res = _sample_result()
    back = pickle.loads(pickle.dumps(res))
    for f in dataclasses.fields(fp.CompileResult):
        assert getattr(back, f.name) == getattr(res, f.name), f.name


def test_job_roundtrips_through_child_process(mp_ctx):
    """A real queue hop under the suite's start method (fork/spawn)."""
    job = _sample_job()
    res = _sample_result()
    q_in, q_out = mp_ctx.Queue(), mp_ctx.Queue()
    proc = mp_ctx.Process(target=_echo_main, args=(q_in, q_out))
    proc.start()
    try:
        q_in.put((job, res))
        back_job, back_res = q_out.get(timeout=30)
    finally:
        proc.join(timeout=10)
        if proc.is_alive():
            proc.terminate()
    assert back_job == job
    for f in dataclasses.fields(fp.CompileResult):
        assert getattr(back_res, f.name) == getattr(res, f.name), f.name


def _echo_main(q_in, q_out):  # top-level: must pickle under spawn
    q_out.put(q_in.get())


def test_thaw_helpers_invert_freeze():
    fixes = {1: 7, 0: 3}
    assert fp.thaw_fixes(fp.freeze_fixes(fixes)) == fixes
    assert fp.thaw_fixes(fp.freeze_fixes(None)) is None
    opts = LiftOptions(stack_size=4096, flag_cache=False,
                       known_functions={
                           0x1000: ("g", FunctionSignature(("i",), "i"))})
    back = fp.thaw_lift_options(fp.freeze_lift_options(opts))
    assert back.stack_size == opts.stack_size
    assert back.flag_cache == opts.flag_cache
    assert back.known_functions == opts.known_functions
    from repro.guard import Budget
    budget = fp.thaw_budget(fp.freeze_budget(
        Budget(deadline_seconds=2.5, max_lift_blocks=99)))
    assert budget.deadline_seconds == 2.5
    assert budget.limits["lift_blocks"] == 99


# -- image spec --------------------------------------------------------------


def test_image_spec_rebuilds_bit_identical():
    img = _fixed_image()
    spec = fp.ImageSpec.capture(img)
    rebuilt = pickle.loads(pickle.dumps(spec)).build()
    assert rebuilt.memory.snapshot() == img.memory.snapshot()
    assert rebuilt.symbols == img.symbols
    assert rebuilt.func_sizes == img.func_sizes
    assert rebuilt.generation == img.generation
    # re-capturing the pristine rebuild yields the same content digest
    assert fp.ImageSpec.capture(rebuilt).digest() == spec.digest()
    # and the rebuilt image actually runs (mutates its stack, hence last)
    assert Simulator(rebuilt).call("f", (6, 7)).rax == 49


def _key_ingredients():
    img = _fixed_image()
    sig = FunctionSignature(("i", "i"), "i")
    return dict(image=img, func="f", signature=sig, fixes={1: 7},
                mem_regions=(), probes=((10, 3),), tier=2,
                ladder=("dbrew+llvm",), dbrew_func="f",
                lift_options=LiftOptions(), o3=O3Options(),
                jit=JITOptions(), gate=GateOptions())


def _job_key_digest() -> str:
    kw = _key_ingredients()
    key = fp.compute_job_key(**kw)
    assert key is not None
    return key


def test_job_key_stable_across_processes():
    script = (
        "import tests.farm.test_protocol_roundtrip as m\n"
        "print(m._job_key_digest())\n"
    )
    local = _job_key_digest()
    for hashseed in ("0", "12345"):
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            cwd=str(_SRC.parent),
            env={"PYTHONPATH": str(_SRC), "PYTHONHASHSEED": hashseed,
                 "PATH": "/usr/bin:/bin"},
        )
        assert proc.stdout.strip() == local, f"PYTHONHASHSEED={hashseed}"


def test_every_ingredient_perturbs_job_key():
    base = _job_key_digest()
    perturbations = dict(
        fixes={1: 8}, mem_regions=((4096, 64),), probes=((11, 3),),
        tier=1, ladder=("llvm",), dbrew_func=None,
        lift_options=LiftOptions(stack_size=8192),
        o3=O3Options.lightweight(), jit=JITOptions(mul_style="shifts"),
        gate=GateOptions(samples=7),
    )
    for field_name, value in perturbations.items():
        kw = _key_ingredients()
        kw[field_name] = value
        key = fp.compute_job_key(**kw)
        assert key is not None and key != base, field_name
    # different function bytes perturb too
    img = Image()
    code, _ = assemble(parse_asm("mov rax, rdi\nret"),
                       base=img.next_code_addr())
    img.add_function("f", code)
    kw = _key_ingredients()
    kw["image"] = img
    assert fp.compute_job_key(**kw) != base


def test_unkeyable_function_returns_none():
    kw = _key_ingredients()
    kw["func"] = 0xDEAD0000  # no extent known at a raw address
    assert fp.compute_job_key(**kw) is None
