"""Farm-level record integrity: a bit-flipped ``farmres-`` record in the
shared store is quarantined and the job recompiled — corrupt bytes are
never executed (acceptance bar, counter-verified)."""

from __future__ import annotations

import os

from repro import FarmClient, FarmPool, Simulator
from repro.cache.store import QUARANTINE_DIR
from repro.farm.protocol import result_key
from repro.ir.codegen import JITEngine, JITOptions
from repro.obs.metrics import MetricsRegistry
from tests.farm.conftest import expected
from tests.farm.test_pool import _job_for


def _flip_byte(path: str, offset: int = 12) -> None:
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0x5A]))


def test_bitflipped_result_quarantined_counted_then_recompiled(prog,
                                                               tmp_path):
    """Client-side read path: the checksum catches the flip, the record is
    moved into quarantine (counted), and the next farm compile is a fresh
    recompile whose module matches the oracle."""
    pool = FarmPool(workers=1, disk_dir=str(tmp_path / "farm"),
                    registry=MetricsRegistry())
    client = FarmClient(pool)
    try:
        job = _job_for(prog, client, fixes={1: 7})
        first = client.compile(job, timeout=120.0)
        assert first is not None and first.ok

        rkey = result_key(job.key)
        path = pool.store._path(rkey)
        _flip_byte(path)

        # counter-verified: the corrupt record is never served
        assert pool.store.get(rkey) is None
        assert pool.store.integrity_failures == 1
        assert pool.store.quarantined == 1
        assert not os.path.exists(path)
        qdir = os.path.join(pool.store.root, QUARANTINE_DIR)
        assert any(n.endswith(".corrupt") for n in os.listdir(qdir))

        # the recompile: a fresh farm compile, not a cache hit
        res = client.compile(job, timeout=120.0)
        assert res is not None and res.ok
        assert res.cache_stage is None
        main = res.module.functions[res.main_name]
        addr = JITEngine(prog.image, JITOptions()).compile_function(
            main, name="integ.client")
        assert Simulator(prog.image).call(addr, (10, 99)).rax \
            == expected(10, 7)
        # and the store is healthy again
        assert pool.store.get(rkey) is not None
    finally:
        pool.close()


def test_worker_warm_path_never_serves_corrupt_record(prog, tmp_path):
    """Worker-side read path: the worker's warm probe hits the flipped
    record, quarantines it in the *shared* on-disk quarantine and
    recompiles instead of serving it."""
    pool = FarmPool(workers=1, disk_dir=str(tmp_path / "farm"),
                    registry=MetricsRegistry())
    client = FarmClient(pool)
    try:
        job = _job_for(prog, client, fixes={1: 4}, name="integ.f")
        first = client.compile(job, timeout=120.0)
        assert first is not None and first.ok

        rkey = result_key(job.key)
        _flip_byte(pool.store._path(rkey))

        res = client.compile(job, timeout=120.0)
        assert res is not None and res.ok
        assert res.cache_stage is None  # recompiled, not served warm
        qdir = os.path.join(pool.store.root, QUARANTINE_DIR)
        assert any(n.endswith(".corrupt") for n in os.listdir(qdir))
        main = res.module.functions[res.main_name]
        addr = JITEngine(prog.image, JITOptions()).compile_function(
            main, name="integ.worker")
        assert Simulator(prog.image).call(addr, (10, 99)).rax \
            == expected(10, 4)
    finally:
        pool.close()
