"""Crash storm (satellite d): 200 jobs against an 8-process farm while a
killer thread SIGKILLs random workers.  Every job must complete — via
retry, shared-cache hit or post-storm resubmission — and every compiled
module must match the farm-less oracle."""

from __future__ import annotations

import random
import threading
import time

from repro import FarmClient, FarmPool, Simulator
from repro.farm.health import RetryPolicy
from repro.ir.codegen import JITEngine, JITOptions
from repro.obs.metrics import MetricsRegistry
from tests.farm.conftest import expected
from tests.farm.test_pool import _job_for

N_WORKERS = 8
N_JOBS = 200
N_KEYS = 10


def test_crash_storm_every_job_completes_and_matches_oracle(prog, tmp_path):
    pool = FarmPool(
        workers=N_WORKERS, disk_dir=str(tmp_path / "farm"),
        poll_interval=0.02, heartbeat_interval=0.1,
        poison_threshold=1000,  # random murder must not look like poison
        retry=RetryPolicy(max_attempts=10, base_delay=0.02, max_delay=0.2),
        registry=MetricsRegistry())
    client = FarmClient(pool)
    stop = threading.Event()
    kills = [0]

    def killer():
        rng = random.Random(0xC0FFEE)
        while not stop.is_set():
            slots = [s for s in pool._slots if s.proc.is_alive()]
            if slots:
                victim = rng.choice(slots)
                try:
                    victim.proc.kill()
                    kills[0] += 1
                except Exception:
                    pass
            stop.wait(0.25)

    try:
        jobs = [_job_for(prog, client, fixes={1: k % N_KEYS},
                         name=f"storm.f{k % N_KEYS}")
                for k in range(N_JOBS)]
        futs = [pool.submit(j) for j in jobs]
        th = threading.Thread(target=killer, daemon=True)
        th.start()

        # every future must resolve — retry and respawn guarantee progress
        results = []
        deadline = time.monotonic() + 600.0
        for fut in futs:
            remaining = max(1.0, deadline - time.monotonic())
            results.append(fut.result(timeout=remaining))
        stop.set()
        th.join(timeout=10.0)

        assert kills[0] > 0, "the storm never fired"
        snap = pool.snapshot()
        assert snap["crashes"] > 0 and snap["respawns"] > 0

        # collect the best result per unique key; a key whose every storm
        # attempt died retryable gets one calm resubmission (the fallback
        # a real engine would also take)
        ok_by_key = {}
        for job, res in zip(jobs, results):
            assert res is not None
            if res.ok:
                ok_by_key.setdefault(job.key, res)
            else:
                assert res.retryable, res.reject_reason
        for job in jobs:
            if job.key not in ok_by_key:
                res = pool.submit(job).result(timeout=240.0)
                assert res.ok, res.reject_reason
                ok_by_key[job.key] = res

        assert len(ok_by_key) == N_KEYS

        # oracle check: each surviving module computes exactly what the
        # farm-less compile would — b is fixed per key, a stays live
        engine = JITEngine(prog.image, JITOptions())
        sim = Simulator(prog.image)
        seen_fixes = set()
        for job, res in ((j, ok_by_key[j.key]) for j in jobs
                         if j.key in ok_by_key):
            fix = int(job.name.rsplit("f", 1)[1])
            if fix in seen_fixes:
                continue
            seen_fixes.add(fix)
            main = res.module.functions[res.main_name]
            addr = engine.compile_function(main, name=f"storm.k{fix}")
            assert sim.call(addr, (10, 99)).rax == expected(10, fix)
            assert sim.call(addr, (3, 99)).rax == expected(3, fix)
        assert seen_fixes == set(range(N_KEYS))
    finally:
        stop.set()
        pool.close()
