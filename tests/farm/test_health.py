"""Worker health: watchdog classification, retry policy, hang detection,
poison quarantine — unit-level with fake clocks, then end-to-end against
real worker processes."""

from __future__ import annotations

import os
import random
import signal
import time

import pytest

from repro import FarmClient, FarmPool
from repro.cache.negative import NegativeCache
from repro.farm.health import (ALIVE, BOOTING, CRASHED, HUNG, RetryPolicy,
                               WorkerWatchdog)
from tests.farm.test_pool import _job_for


# -- watchdog policy (no processes) ------------------------------------------


class _Clock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t


def test_watchdog_classifies_crash_vs_hang_vs_boot():
    clock = _Clock()
    wd = WorkerWatchdog(heartbeat_interval=0.5, boot_timeout=10.0,
                        clock=clock)
    # dead process: crashed regardless of heartbeat freshness
    assert wd.classify(alive=False, heartbeat=clock.t,
                       spawned_at=clock.t) == CRASHED
    # alive, never beaten, young: still booting
    assert wd.classify(alive=True, heartbeat=0.0,
                       spawned_at=clock.t - 1.0) == BOOTING
    # alive, never beaten, past the boot grace: hung
    assert wd.classify(alive=True, heartbeat=0.0,
                       spawned_at=clock.t - 11.0) == HUNG
    # fresh heartbeat: alive
    assert wd.classify(alive=True, heartbeat=clock.t - 0.1,
                       spawned_at=clock.t - 60.0) == ALIVE
    # stale heartbeat (default hang_timeout = 5x interval = 2.5s): hung
    assert wd.classify(alive=True, heartbeat=clock.t - 3.0,
                       spawned_at=clock.t - 60.0) == HUNG


def test_watchdog_explicit_hang_timeout_and_age():
    clock = _Clock()
    wd = WorkerWatchdog(heartbeat_interval=0.1, hang_timeout=7.0,
                        clock=clock)
    assert wd.classify(alive=True, heartbeat=clock.t - 6.0,
                       spawned_at=0.0) == ALIVE
    assert wd.classify(alive=True, heartbeat=clock.t - 7.5,
                       spawned_at=0.0) == HUNG
    assert wd.heartbeat_age(clock.t - 2.0, 0.0) == pytest.approx(2.0)
    # never-beaten workers age from their spawn time
    assert wd.heartbeat_age(0.0, clock.t - 4.0) == pytest.approx(4.0)


def test_retry_policy_backoff_and_exhaustion():
    pol = RetryPolicy(max_attempts=4, base_delay=0.1, max_delay=1.0,
                      jitter=0.0)
    rng = random.Random(0)
    # exponential from the second dispatch, capped at max_delay
    assert pol.delay(1, rng) == pytest.approx(0.1)
    assert pol.delay(2, rng) == pytest.approx(0.2)
    assert pol.delay(3, rng) == pytest.approx(0.4)
    assert pol.delay(10, rng) == pytest.approx(1.0)
    assert not pol.exhausted(3)
    assert pol.exhausted(4)


def test_retry_policy_jitter_is_seed_deterministic():
    pol = RetryPolicy(base_delay=0.1, jitter=0.5)
    a = [pol.delay(n, random.Random(7)) for n in range(1, 5)]
    b = [pol.delay(n, random.Random(7)) for n in range(1, 5)]
    assert a == b
    # jitter only ever stretches, never shrinks below the raw backoff
    assert all(x >= 0.1 for x in a[:1])


# -- end-to-end against real workers -----------------------------------------


def _fast_pool(tmp_path, **kw):
    from repro.obs.metrics import MetricsRegistry
    kw.setdefault("workers", 1)
    kw.setdefault("poll_interval", 0.02)
    kw.setdefault("heartbeat_interval", 0.1)
    kw.setdefault("registry", MetricsRegistry())
    return FarmPool(disk_dir=str(tmp_path / "farm"), **kw)


def _wait(pred, timeout=60.0, msg="condition"):
    deadline = time.monotonic() + timeout
    while not pred():
        assert time.monotonic() < deadline, f"timed out waiting for {msg}"
        time.sleep(0.02)


def test_sigstopped_worker_is_detected_hung_and_respawned(prog, tmp_path):
    """SIGSTOP leaves the process alive (is_alive True) but silences the
    heartbeat — only the watchdog's hang verdict can recover the slot."""
    pool = _fast_pool(tmp_path, hang_timeout=0.3)
    client = FarmClient(pool)
    try:
        _wait(lambda: pool._slots[0].hb.value > 0.0, msg="first heartbeat")
        victim = pool._slots[0].proc
        os.kill(victim.pid, signal.SIGSTOP)
        _wait(lambda: pool.snapshot()["hangs"] >= 1, msg="hang detection")
        _wait(lambda: pool.snapshot()["respawns"] >= 1, msg="respawn")
        kinds = [e.kind for e in pool.health_events]
        assert "hang" in kinds and "respawn" in kinds
        # the respawned worker serves jobs
        res = client.compile(_job_for(prog, client, fixes={1: 2}),
                             timeout=120.0)
        assert res is not None and res.ok
        assert pool.snapshot()["crashes"] == 0  # hang, not crash
    finally:
        pool.close()


def test_heartbeat_ages_view(tmp_path):
    pool = _fast_pool(tmp_path, workers=2)
    try:
        _wait(lambda: all(s.hb.value > 0.0 for s in pool._slots),
              msg="heartbeats")
        ages = pool.heartbeat_ages()
        assert len(ages) == 2
        assert all(age < 5.0 for age in ages.values())
    finally:
        pool.close()


def test_poisoned_job_is_quarantined_after_successive_crashes(prog, tmp_path):
    """A job that SIGKILLs every worker that touches it must be blacklisted
    after poison_threshold workers, resolve retryable, and be served from
    the quarantine on the next submit without burning another worker."""
    quarantine = NegativeCache(ttl=60.0)
    pool = _fast_pool(
        tmp_path, poison_threshold=2, quarantine=quarantine,
        retry=RetryPolicy(max_attempts=10, base_delay=0.02, max_delay=0.1),
        worker_chaos={"die_on_name_prefix": "poison"})
    client = FarmClient(pool)
    try:
        job = _job_for(prog, client, fixes={1: 9}, name="poison.f")
        fut = pool.submit(job)
        res = fut.result(timeout=120.0)
        assert not res.ok and res.retryable
        assert "quarantined" in res.reject_reason
        snap = pool.snapshot()
        assert snap["crashes"] >= 2
        assert snap["quarantined"] == 1
        assert quarantine.check(job.key) is not None
        # second submit of the poisoned key: instant, no worker involved
        res2 = pool.submit(job).result(timeout=5.0)
        assert not res2.ok and res2.retryable
        assert pool.snapshot()["quarantine_served"] == 1
        # an innocent job still compiles on the (respawned) pool
        ok = client.compile(_job_for(prog, client, fixes={1: 4}),
                            timeout=120.0)
        assert ok is not None and ok.ok
        kinds = [e.kind for e in pool.health_events]
        assert "quarantine" in kinds
    finally:
        pool.close()


def test_hanging_job_is_quarantined_via_hang_path(prog, tmp_path):
    """Same poison accounting when the job *hangs* workers instead of
    killing them (stops heartbeating, sleeps forever)."""
    pool = _fast_pool(
        tmp_path, hang_timeout=0.3, poison_threshold=2,
        retry=RetryPolicy(max_attempts=10, base_delay=0.02, max_delay=0.1),
        worker_chaos={"hang_on_name_prefix": "wedge"})
    client = FarmClient(pool)
    try:
        job = _job_for(prog, client, fixes={1: 8}, name="wedge.f")
        res = pool.submit(job).result(timeout=120.0)
        assert not res.ok and res.retryable
        assert "quarantined" in res.reject_reason
        snap = pool.snapshot()
        assert snap["hangs"] >= 2
        assert snap["quarantined"] == 1
    finally:
        pool.close()


def test_lost_jobs_are_retried_with_attempt_accounting(prog, tmp_path):
    """Jobs queued on a crashed worker come back through the retry heap
    and eventually complete on the respawn; the retry counter records it."""
    pool = _fast_pool(
        tmp_path,
        retry=RetryPolicy(max_attempts=8, base_delay=0.02, max_delay=0.1))
    client = FarmClient(pool)
    try:
        jobs = [_job_for(prog, client, fixes={1: k}, name=f"retry.f{k}")
                for k in range(3)]
        futs = [pool.submit(j) for j in jobs]
        pool._slots[0].proc.kill()
        results = [f.result(timeout=180.0) for f in futs]
        assert all(r.ok for r in results), \
            [r.reject_reason for r in results if not r.ok]
        snap = pool.snapshot()
        assert snap["crashes"] >= 1
        # at least the jobs caught on the dead worker were re-dispatched
        assert snap["retries"] >= 1 or snap["results"] == 3
    finally:
        pool.close()
