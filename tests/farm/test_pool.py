"""FarmPool lifecycle: submit/resolve, batching, crash respawn, shutdown."""

from __future__ import annotations

import time

import pytest

from repro import FarmClient, FarmPool, Simulator, compile_c
from repro.farm import protocol as fp
from repro.guard.verify import GateOptions
from repro.ir.codegen import JITOptions, JITEngine
from repro.ir.passes import O3Options
from repro.lift import FunctionSignature, LiftOptions
from tests.farm.conftest import SRC, expected


def _job_for(prog, client, *, fixes=None, tier=1, name="f.farm",
             ladder=(), probes=(), trace=False):
    o3 = O3Options.lightweight()
    if fixes:
        o3 = o3.replace(enable_inline=True)
    sig = FunctionSignature(("i", "i"), "i")
    key = fp.compute_job_key(prog.image, "f", sig, fixes, (), probes, tier,
                             ladder, "f" if tier == 2 else None,
                             None, o3, JITOptions(), GateOptions())
    return fp.CompileJob(
        key=key, name=name, tier=tier, func="f", signature=sig,
        fixes=fp.freeze_fixes(fixes), mem_regions=(), probes=tuple(probes),
        dbrew_func="f" if tier == 2 else None, ladder=ladder,
        image_key=client.ensure_image(prog.image),
        lift=fp.freeze_lift_options(None), o3=o3, jit=JITOptions(),
        trace=trace)


@pytest.fixture()
def farm(tmp_path):
    from repro.obs.metrics import MetricsRegistry
    pool = FarmPool(workers=2, disk_dir=str(tmp_path / "farm"),
                    registry=MetricsRegistry())
    client = FarmClient(pool)
    yield pool, client
    pool.close()


def test_submit_resolves_and_module_installs(prog, farm):
    pool, client = farm
    job = _job_for(prog, client, fixes={1: 7})
    res = client.compile(job, timeout=120.0)
    assert res is not None and res.ok, res and res.reject_reason
    assert res.mode == "llvm-fix"
    assert res.worker_pid != 0
    # the shipped module is position-independent: install it client-side
    main = res.module.functions[res.main_name]
    addr = JITEngine(prog.image, JITOptions()).compile_function(
        main, name="f.farm")
    sim = Simulator(prog.image)
    assert sim.call(addr, (10, 99)).rax == expected(10, 7)  # b fixed to 7


def test_warm_result_is_shared_cache_hit(prog, farm):
    pool, client = farm
    job = _job_for(prog, client, fixes={1: 7})
    first = client.compile(job, timeout=120.0)
    assert first is not None and first.ok and first.cache_stage is None
    second = client.compile(job, timeout=120.0)
    assert second is not None and second.ok
    assert second.cache_stage == "farm"  # served from the shared store


def test_batching_under_storm(prog, tmp_path):
    """Submitting faster than one worker drains must produce batched
    queue messages (the load-adaptive batching contract)."""
    from repro.obs.metrics import MetricsRegistry
    pool = FarmPool(workers=1, disk_dir=str(tmp_path / "farm"),
                    batch_max=8, registry=MetricsRegistry())
    client = FarmClient(pool)
    try:
        jobs = [_job_for(prog, client, fixes={1: k}, name=f"f.b{k}")
                for k in range(10)]
        futs = [pool.submit(j) for j in jobs]
        for fut in futs:
            res = fut.result(timeout=180)
            assert res.ok, res.reject_reason
        snap = pool.snapshot()
        assert snap["results"] == 10
        assert snap["batches"] < 10  # at least one message carried > 1 job
        assert snap["batched_jobs"] > 0
    finally:
        pool.close()


def test_dead_worker_respawns(prog, tmp_path):
    from repro.obs.metrics import MetricsRegistry
    pool = FarmPool(workers=1, disk_dir=str(tmp_path / "farm"),
                    poll_interval=0.02, registry=MetricsRegistry())
    client = FarmClient(pool)
    try:
        assert pool.alive_workers() == 1
        pool._slots[0].proc.kill()  # simulate a crash
        deadline = time.monotonic() + 30
        while pool.snapshot()["respawns"] == 0:
            assert time.monotonic() < deadline, "no respawn"
            time.sleep(0.02)
        deadline = time.monotonic() + 30
        while pool.alive_workers() == 0:
            assert time.monotonic() < deadline
            time.sleep(0.02)
        # the respawned worker serves jobs
        res = client.compile(_job_for(prog, client, fixes={1: 5}),
                             timeout=120.0)
        assert res is not None and res.ok
    finally:
        pool.close()


def test_close_fails_pending_futures(prog, tmp_path):
    pool = FarmPool(workers=1, disk_dir=str(tmp_path / "farm"))
    client = FarmClient(pool)
    job = _job_for(prog, client, fixes={1: 3})
    pool.close()
    with pytest.raises(RuntimeError):
        pool.submit(job)
    # the client maps a closed pool to a soft None
    assert client.compile(job, timeout=5.0) is None


def test_missing_image_spec_is_retryable(prog, farm):
    pool, client = farm
    job = _job_for(prog, client, fixes={1: 7})
    import dataclasses
    job = dataclasses.replace(job, image_key="farmimg-missing",
                              key="0" * 32)
    res = client.compile(job, timeout=120.0)
    assert res is not None and not res.ok and res.retryable
