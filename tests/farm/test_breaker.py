"""Circuit breaker: the state machine under a fake clock, then the
client-level contract (fast-fail while open, half-open probe restores
service without client-visible errors)."""

from __future__ import annotations

from concurrent.futures import Future

import pytest

from repro import FarmClient, FarmPool
from repro.farm.health import (CLOSED, HALF_OPEN, OPEN, CircuitBreaker)
from repro.farm.protocol import CompileResult
from repro.obs.metrics import MetricsRegistry
from tests.farm.test_pool import _job_for


class _Clock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


# -- state machine ------------------------------------------------------------


def test_opens_after_exactly_threshold_consecutive_failures():
    clock = _Clock()
    br = CircuitBreaker(failure_threshold=3, reset_timeout=10.0, clock=clock)
    for _ in range(2):
        br.record_failure()
    assert br.state == CLOSED and br.allow()
    br.record_failure()
    assert br.state == OPEN
    assert br.opens == 1
    assert not br.allow()
    assert br.refusals >= 1


def test_success_resets_the_consecutive_count():
    br = CircuitBreaker(failure_threshold=3, clock=_Clock())
    br.record_failure()
    br.record_failure()
    br.record_success()
    br.record_failure()
    br.record_failure()
    assert br.state == CLOSED  # never 3 *consecutive*


def test_half_open_single_probe_then_close():
    clock = _Clock()
    transitions = []
    br = CircuitBreaker(failure_threshold=1, reset_timeout=5.0, clock=clock,
                        on_transition=lambda old, new: transitions.append(
                            (old, new)))
    br.record_failure()
    assert br.state == OPEN
    clock.t += 5.0
    assert br.state == HALF_OPEN
    # exactly one probe is admitted; concurrent requests are refused
    assert br.allow()
    assert not br.allow()
    assert br.probes == 1
    br.record_success()
    assert br.state == CLOSED
    assert br.closes == 1
    assert transitions == [(CLOSED, OPEN), (OPEN, HALF_OPEN),
                           (HALF_OPEN, CLOSED)]


def test_half_open_probe_failure_reopens_and_rearms_timer():
    clock = _Clock()
    br = CircuitBreaker(failure_threshold=1, reset_timeout=5.0, clock=clock)
    br.record_failure()
    clock.t += 5.0
    assert br.allow()  # the probe
    br.record_failure()
    assert br.state == OPEN
    assert br.opens == 2
    clock.t += 4.9
    assert not br.allow()  # timer restarted at the probe failure
    clock.t += 0.2
    assert br.allow()


def test_would_allow_never_claims_the_probe():
    clock = _Clock()
    br = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
    br.record_failure()
    clock.t += 1.0
    assert br.would_allow()
    assert br.would_allow()  # peeking twice is fine
    assert br.probes == 0
    assert br.allow()  # the probe is still available to claim
    assert not br.would_allow()  # ... and now it is not


def test_late_success_while_open_closes():
    """A request admitted just before the trip may resolve late; its
    success is proof of life exactly like a probe success."""
    br = CircuitBreaker(failure_threshold=1, clock=_Clock())
    br.record_failure()
    assert br.state == OPEN
    br.record_success()
    assert br.state == CLOSED


def test_threshold_must_be_positive():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)


# -- client integration -------------------------------------------------------


class _ScriptedPool:
    """A fake pool: fails submissions until told to recover."""

    def __init__(self):
        self.healthy = False
        self.submits = 0

        class _Store:
            def contains(self, key):
                return True

            def get(self, key):
                return None

            def put(self, key, value):
                return True

        self.store = _Store()

    def submit(self, job):
        self.submits += 1
        if not self.healthy:
            raise RuntimeError("farm pool is closed")
        fut = Future()
        fut.set_result(CompileResult(key=job.key, name=job.name,
                                     tier=job.tier, ok=True))
        return fut

    def forget(self, fut):
        pass


def _stub_job():
    from repro.farm.protocol import CompileJob
    from repro.ir.codegen import JITOptions
    from repro.ir.passes import O3Options
    from repro.lift import FunctionSignature
    return CompileJob(
        key="k" * 32, name="stub.f", tier=1, func="f",
        signature=FunctionSignature(("i",), "i"), fixes=None,
        mem_regions=(), probes=(), dbrew_func=None, ladder=(),
        image_key="farmimg-stub", lift=None,
        o3=O3Options.lightweight(), jit=JITOptions())


def test_client_fast_fails_while_open_then_probe_restores_service():
    """The acceptance bar: the breaker opens within failure_threshold
    consecutive transport errors, open-state requests degrade without
    touching the pool, and the half-open probe restores service with no
    client-visible error."""
    clock = _Clock()
    pool = _ScriptedPool()
    reg = MetricsRegistry()
    client = FarmClient(
        pool, breaker=CircuitBreaker(failure_threshold=3, reset_timeout=2.0,
                                     clock=clock), registry=reg)
    job = _stub_job()
    for _ in range(3):
        assert client.compile(job, timeout=1.0) is None
    assert client.breaker.state == OPEN
    assert pool.submits == 3  # opened after exactly the threshold
    # while open: degrade instantly, the pool is never touched
    assert client.compile(job, timeout=1.0) is None
    assert pool.submits == 3
    assert reg.counter("farm.client.breaker_fastfails").value == 1
    assert reg.counter("farm.client.breaker_opens").value == 1
    assert reg.gauge("farm.client.breaker_state").value == 2
    # farm recovers; the half-open probe restores service transparently
    pool.healthy = True
    clock.t += 2.0
    res = client.compile(job, timeout=1.0)
    assert res is not None and res.ok  # no client-visible error
    assert client.breaker.state == CLOSED
    assert reg.counter("farm.client.breaker_closes").value == 1
    assert reg.gauge("farm.client.breaker_state").value == 0


def test_client_breaker_on_closed_real_pool(prog, tmp_path):
    """Transport failures from a real (closed) pool trip the breaker and
    available() reflects it for the engine's fast-skip."""
    pool = FarmPool(workers=1, disk_dir=str(tmp_path / "farm"),
                    registry=MetricsRegistry())
    client = FarmClient(pool, failure_threshold=2,
                        registry=MetricsRegistry())
    job = _job_for(prog, client, fixes={1: 5})
    pool.close()
    assert client.available()
    assert client.compile(job, timeout=5.0) is None
    assert client.compile(job, timeout=5.0) is None
    assert client.breaker.state == OPEN
    assert not client.available()
    snap = client.snapshot()
    assert snap["breaker"]["opens"] == 1
