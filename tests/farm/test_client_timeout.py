"""Client timeout hygiene (satellite b): when a farm request times out,
the client must evict the timed-out entry from its thread-level flight
table and forget the job pool-side, so the next request for the same key
actually retries instead of waiting on a stale in-flight entry."""

from __future__ import annotations

import time

from repro import FarmClient, FarmPool
from repro.obs.metrics import MetricsRegistry
from tests.farm.test_pool import _job_for


def test_timeout_evicts_flight_entry_and_next_request_retries(prog,
                                                              tmp_path):
    """Workers that never reply (drop_result_rate=1.0 completes every job
    but reports nothing) force the client timeout path.  The regression
    this pins down: a timed-out (key, epoch) left in the FlightTable made
    every later request for that key a follower of a flight that would
    never resolve."""
    reg = MetricsRegistry()
    pool = FarmPool(workers=1, disk_dir=str(tmp_path / "farm"),
                    poll_interval=0.02, registry=reg,
                    worker_chaos={"drop_result_rate": 1.0})
    client = FarmClient(pool, registry=reg)
    try:
        job = _job_for(prog, client, fixes={1: 7})
        t0 = time.monotonic()
        res = client.compile(job, timeout=3.0)
        assert res is None  # timed out: the worker swallowed the result
        assert time.monotonic() - t0 >= 3.0 - 0.5
        # the flight table entry is gone — not leaked as a stale leader
        assert client._flights.snapshot()["in_flight"] == 0
        # the pool-side job state is forgotten: nothing left to retry or
        # crash-account for a caller that stopped waiting
        snap = pool.snapshot()
        assert snap["inflight"] == 0
        assert snap["retry_pending"] == 0
        first_submits = snap["jobs"]
        assert first_submits == 1
        # a second request is a *fresh* submission, not a follower of the
        # dead flight: the pool sees a new job immediately
        res2 = client.compile(job, timeout=3.0)
        assert res2 is None  # every result is dropped in this config
        assert pool.snapshot()["jobs"] == first_submits + 1
        assert pool.snapshot()["inflight"] == 0
        # both timeouts fed the breaker as transport failures
        assert client.breaker.snapshot()["consecutive_failures"] >= 2
        assert reg.counter("farm.client.timeouts").value == 2
    finally:
        pool.close()


def test_forget_is_idempotent_and_ignores_foreign_futures(prog, tmp_path):
    from concurrent.futures import Future
    pool = FarmPool(workers=1, disk_dir=str(tmp_path / "farm"),
                    registry=MetricsRegistry())
    client = FarmClient(pool)
    try:
        fut = pool.submit(_job_for(prog, client, fixes={1: 3}))
        pool.forget(fut)
        pool.forget(fut)  # second forget: no-op
        pool.forget(Future())  # never-submitted future: ignored
        assert pool.snapshot()["inflight"] == 0
    finally:
        pool.close()
