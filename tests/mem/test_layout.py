"""Struct layout rules must match the System V AMD64 ABI."""

import pytest

from repro.mem.layout import StructLayout, align_up


def test_align_up():
    assert align_up(0, 8) == 0
    assert align_up(1, 8) == 8
    assert align_up(8, 8) == 8
    assert align_up(9, 16) == 16


def test_align_up_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        align_up(5, 3)


def test_fp_struct_layout():
    # struct FP { double f; int dx, dy; };  (Fig. 7 names the doubles first)
    fp = StructLayout("FP", [("f", "double", 1), ("dx", "int", 1), ("dy", "int", 1)])
    assert fp.offset_of("f") == 0
    assert fp.offset_of("dx") == 8
    assert fp.offset_of("dy") == 12
    assert fp.size == 16
    assert fp.align == 8


def test_padding_between_members():
    s = StructLayout("S", [("c", "char", 1), ("d", "double", 1)])
    assert s.offset_of("d") == 8
    assert s.size == 16


def test_trailing_padding():
    s = StructLayout("S", [("d", "double", 1), ("c", "char", 1)])
    assert s.size == 16


def test_flat_stencil_struct():
    # struct FS { int ps; struct FP p[]; };
    fp = StructLayout("FP", [("f", "double", 1), ("dx", "int", 1), ("dy", "int", 1)])
    fs = StructLayout("FS", [("ps", "int", 1), ("p", fp, 0)])
    assert fs.offset_of("ps") == 0
    assert fs.offset_of("p") == 8  # aligned for the doubles inside FP
    assert fs.sizeof_with_flexible(4) == 8 + 4 * 16


def test_flexible_member_must_be_last():
    fp = StructLayout("FP", [("f", "double", 1)])
    with pytest.raises(ValueError):
        StructLayout("FS", [("p", fp, 0), ("ps", "int", 1)])


def test_array_member():
    s = StructLayout("S", [("a", "int", 4), ("b", "long", 1)])
    assert s.offset_of("b") == 16
    assert s.size == 24


def test_nested_struct_alignment():
    inner = StructLayout("I", [("x", "long", 1)])
    s = StructLayout("S", [("c", "char", 1), ("i", inner, 1)])
    assert s.offset_of("i") == 8
    assert s.size == 16


def test_no_flexible_sizeof_guard():
    s = StructLayout("S", [("x", "int", 1)])
    assert s.sizeof_with_flexible(0) == 4
    with pytest.raises(ValueError):
        s.sizeof_with_flexible(2)
