"""Unit + property tests for the simulated memory."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemoryAccessError
from repro.mem.memory import Memory


@pytest.fixture
def mem():
    m = Memory()
    m.map(0x1000, 0x1000)
    return m


def test_zero_initialized(mem):
    assert mem.read(0x1000, 16) == bytes(16)


def test_write_read_bytes(mem):
    mem.write(0x1100, b"hello")
    assert mem.read(0x1100, 5) == b"hello"


def test_unmapped_read_raises(mem):
    with pytest.raises(MemoryAccessError):
        mem.read(0x3000, 1)


def test_straddling_region_end_raises(mem):
    with pytest.raises(MemoryAccessError):
        mem.read(0x1FFF, 2)


def test_overlapping_map_rejected(mem):
    with pytest.raises(MemoryAccessError):
        mem.map(0x1800, 0x1000)


def test_adjacent_map_allowed(mem):
    mem.map(0x2000, 0x1000)
    mem.write_u8(0x2000, 7)
    assert mem.read_u8(0x2000) == 7


def test_map_with_initializer():
    m = Memory()
    m.map(0x0, 16, data=b"\x01\x02")
    assert m.read(0, 4) == b"\x01\x02\x00\x00"


def test_little_endian_u32(mem):
    mem.write_u32(0x1000, 0x12345678)
    assert mem.read(0x1000, 4) == bytes.fromhex("78563412")


def test_is_mapped(mem):
    assert mem.is_mapped(0x1000, 0x1000)
    assert not mem.is_mapped(0xFFF, 2)
    assert not mem.is_mapped(0x1FFF, 2)


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_u64_roundtrip(v):
    m = Memory()
    m.map(0, 8)
    m.write_u64(0, v)
    assert m.read_u64(0) == v


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_i32_roundtrip(v):
    m = Memory()
    m.map(0, 4)
    m.write_uint(0, v, 4)
    assert m.read_i32(0) == v


@given(st.floats(allow_nan=False))
def test_f64_roundtrip(v):
    m = Memory()
    m.map(0, 8)
    m.write_f64(0, v)
    assert m.read_f64(0) == v


def test_f64_nan_roundtrip():
    m = Memory()
    m.map(0, 8)
    m.write_f64(0, float("nan"))
    assert m.read_f64(0) != m.read_f64(0)


@given(st.integers(min_value=0, max_value=2**128 - 1))
def test_u128_roundtrip(v):
    m = Memory()
    m.map(0, 16)
    m.write_u128(0, v)
    assert m.read_u128(0) == v


def test_write_uint_masks():
    m = Memory()
    m.map(0, 8)
    m.write_uint(0, -1, 4)
    assert m.read_u32(0) == 0xFFFFFFFF
    assert m.read_u64(0) == 0xFFFFFFFF
