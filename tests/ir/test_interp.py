"""IR interpreter semantics, including property tests against Python ints."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IRInterpError
from repro.ir import (
    DOUBLE, I1, I8, I32, I64, I128, V2F64,
    Function, FunctionType, IRBuilder, Interpreter, Module, verify, ptr,
)
from repro.ir.values import Constant, ConstantFP


def build_binop_fn(op, t=I64):
    m = Module("t")
    f = Function("f", FunctionType(t, (t, t)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    b.ret(b.binop(op, f.args[0], f.args[1]))
    verify(f)
    return Interpreter(m)


U64 = st.integers(min_value=0, max_value=2**64 - 1)


def signed(v, bits=64):
    s = 1 << (bits - 1)
    return (v & (s - 1)) - (v & s)


@given(a=U64, b=U64)
def test_add_matches_python(a, b):
    assert build_binop_fn("add").run("f", [a, b]) == (a + b) % 2**64


@given(a=U64, b=U64)
def test_mul_matches_python(a, b):
    assert build_binop_fn("mul").run("f", [a, b]) == (a * b) % 2**64


@given(a=U64, b=st.integers(min_value=1, max_value=2**63 - 1))
def test_sdiv_truncates(a, b):
    got = build_binop_fn("sdiv").run("f", [a, b])
    # exact truncating division: float-based int(x / y) loses precision
    # beyond 2**53 and would reject correct results for large magnitudes
    sa = signed(a)
    expected = -(-sa // b) if sa < 0 else sa // b
    assert signed(got) == expected


@given(a=U64, b=st.integers(min_value=0, max_value=63))
def test_lshr_matches(a, b):
    assert build_binop_fn("lshr").run("f", [a, b]) == a >> b


@given(a=U64, b=st.integers(min_value=0, max_value=63))
def test_ashr_matches(a, b):
    got = build_binop_fn("ashr").run("f", [a, b])
    assert signed(got) == signed(a) >> b


def test_sdiv_by_zero_raises():
    with pytest.raises(IRInterpError):
        build_binop_fn("sdiv").run("f", [1, 0])


@given(a=st.integers(min_value=-(2**63), max_value=2**63 - 1),
       b=st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_icmp_slt(a, b):
    m = Module("t")
    f = Function("f", FunctionType(I1, (I64, I64)))
    m.add_function(f)
    builder = IRBuilder(f.add_block("entry"))
    builder.ret(builder.icmp("slt", f.args[0], f.args[1]))
    assert Interpreter(m).run("f", [a & (2**64 - 1), b & (2**64 - 1)]) == int(a < b)


def test_fcmp_unordered_handling():
    m = Module("t")
    f = Function("f", FunctionType(I1, (DOUBLE, DOUBLE)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    b.ret(b.fcmp("uno", f.args[0], f.args[1]))
    i = Interpreter(m)
    assert i.run("f", [float("nan"), 1.0]) == 1
    assert i.run("f", [1.0, 2.0]) == 0


def test_memory_load_store():
    m = Module("t")
    f = Function("f", FunctionType(I64, (ptr(I64),)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    v = b.load(f.args[0])
    b.store(b.add(v, b.const(I64, 1)), f.args[0])
    b.ret(v)
    i = Interpreter(m)
    i.memory.map(0x100, 8)
    i.memory.write_u64(0x100, 41)
    assert i.run("f", [0x100]) == 41
    assert i.memory.read_u64(0x100) == 42


def test_alloca_isolated_per_call():
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    slot = b.alloca(I64, 8)
    b.store(f.args[0], slot)
    b.ret(b.load(slot))
    i = Interpreter(m)
    assert i.run("f", [7]) == 7
    assert i.run("f", [9]) == 9


def test_vector_ops():
    m = Module("t")
    f = Function("f", FunctionType(DOUBLE, (DOUBLE, DOUBLE)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    from repro.ir import Undef
    v = b.insertelement(Undef(V2F64), f.args[0], 0)
    v = b.insertelement(v, f.args[1], 1)
    v2 = b.fadd(v, v)
    sw = b.shufflevector(v2, v2, (1, 0))
    b.ret(b.extractelement(sw, 0))
    assert Interpreter(m).run("f", [1.0, 3.0]) == 6.0  # 2*args[1]


def test_bitcast_double_int():
    m = Module("t")
    f = Function("f", FunctionType(I64, (DOUBLE,)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    b.ret(b.bitcast(f.args[0], I64))
    assert Interpreter(m).run("f", [1.0]) == 0x3FF0000000000000


def test_call_between_functions():
    m = Module("t")
    callee = Function("sq", FunctionType(I64, (I64,)))
    m.add_function(callee)
    b = IRBuilder(callee.add_block("entry"))
    b.ret(b.mul(callee.args[0], callee.args[0]))
    caller = Function("f", FunctionType(I64, (I64,)))
    m.add_function(caller)
    b = IRBuilder(caller.add_block("entry"))
    r = b.call(callee, [caller.args[0]], I64)
    b.ret(b.add(r, b.const(I64, 1)))
    assert Interpreter(m).run("f", [6]) == 37


def test_extern_function_hook():
    m = Module("t")
    decl = Function("ext", FunctionType(I64, (I64,)))
    decl.is_declaration = True
    m.add_function(decl)
    caller = Function("f", FunctionType(I64, (I64,)))
    m.add_function(caller)
    b = IRBuilder(caller.add_block("entry"))
    b.ret(b.call(decl, [caller.args[0]], I64))
    i = Interpreter(m, extern_functions={"ext": lambda x: x * 3})
    assert i.run("f", [5]) == 15


def test_ctpop_intrinsic():
    m = Module("t")
    f = Function("f", FunctionType(I8, (I8,)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    b.ret(b.call("llvm.ctpop.i8", [f.args[0]], I8))
    assert Interpreter(m).run("f", [0b10110100]) == 4


def test_step_limit():
    m = Module("t")
    f = Function("f", FunctionType(I64, ()))
    m.add_function(f)
    e = f.add_block("entry")
    IRBuilder(e).br(e)  # infinite loop
    i = Interpreter(m)
    i.max_steps = 100
    with pytest.raises(IRInterpError, match="step limit"):
        i.run("f", [])


def test_globals_placed_lazily():
    from repro.ir import GlobalVariable
    m = Module("t")
    g = GlobalVariable("data", I8, bytes([1, 2, 3, 4]))
    m.add_global(g)
    f = Function("f", FunctionType(I32, ()))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    p = b.bitcast(g, ptr(I32))
    b.ret(b.load(p))
    assert Interpreter(m).run("f", []) == 0x04030201
