"""Strengthened verifier Φ rules + the verify-after-every-pass debug flag."""

import pytest

from repro.errors import IRError
from repro.ir import I64, Function, FunctionType, IRBuilder, Module, verify
from repro.ir import instructions as I
from repro.ir.passes import run_o3
from repro.ir.passes.pipeline import set_verify_after_each_pass
from repro.ir.values import Constant
from repro.testing.faults import inject_faults


def _diamond():
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)))
    m.add_function(f)
    entry = f.add_block("entry")
    then = f.add_block("then")
    els = f.add_block("els")
    merge = f.add_block("merge")
    b = IRBuilder(entry)
    cond = b.icmp("eq", f.args[0], b.const(I64, 0))
    b.cond_br(cond, then, els)
    b.position_at_end(then)
    t = b.add(f.args[0], b.const(I64, 1))
    b.br(merge)
    b.position_at_end(els)
    e = b.add(f.args[0], b.const(I64, 2))
    b.br(merge)
    b.position_at_end(merge)
    phi = b.phi(I64)
    phi.add_incoming(t, then)
    phi.add_incoming(e, els)
    b.ret(phi)
    return f, (entry, then, els, merge), phi, (t, e)


def test_clean_diamond_verifies():
    f, *_ = _diamond()
    verify(f)


def test_duplicate_incoming_block_raises():
    f, (entry, then, els, merge), phi, (t, e) = _diamond()
    phi.operands.append(t)
    phi.incoming_blocks.append(then)
    with pytest.raises(IRError, match="more than once"):
        verify(f)


def test_zero_incoming_phi_raises():
    f, (entry, then, els, merge), phi, _ = _diamond()
    phi.remove_incoming(then)
    phi.remove_incoming(els)
    with pytest.raises(IRError, match="no incoming edges"):
        verify(f)


def test_operand_block_skew_raises():
    f, (entry, then, els, merge), phi, _ = _diamond()
    phi.incoming_blocks.pop()
    with pytest.raises(IRError, match="value.*incoming block"):
        verify(f)


def test_missing_predecessor_still_raises():
    f, (entry, then, els, merge), phi, _ = _diamond()
    phi.remove_incoming(els)
    with pytest.raises(IRError, match="incoming mismatch"):
        verify(f)


def _fresh_opt_input():
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64, I64)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    b.ret(b.add(b.mul(f.args[0], b.const(I64, 3)), f.args[1]))
    return f


@pytest.fixture
def verify_each_pass():
    set_verify_after_each_pass(True)
    yield
    set_verify_after_each_pass(False)


def test_verify_after_each_pass_clean(verify_each_pass):
    report = run_o3(_fresh_opt_input())
    assert report.iterations >= 1


def test_verify_after_each_pass_catches_corruption(verify_each_pass):
    def drop_terminator(result, func):
        func.blocks[-1].instructions.pop()
        return None

    f = _fresh_opt_input()
    with inject_faults("pass:dce", corrupt=drop_terminator):
        with pytest.raises(IRError, match="terminator"):
            run_o3(f)


def test_flag_off_by_default():
    # without the debug flag the same corruption sails through run_o3 —
    # the flag (not a hidden verifier call) is what catches it above
    def poison_ret(result, func):
        for blk in func.blocks:
            for ins in blk.instructions:
                if isinstance(ins, I.Ret) and ins.value is not None:
                    ins.operands[0] = Constant(I64, 7)
                    return None
        return None

    f = _fresh_opt_input()
    with inject_faults("pass:dce", corrupt=poison_ret):
        run_o3(f)  # no raise
