"""Loop vectorizer unit tests: recognition, refusal reasons, transform."""

import pytest

from repro.ir import (
    DOUBLE, I8, I64, Function, FunctionType, IRBuilder, Interpreter, Module,
    verify, ptr,
)
from repro.ir.passes import vectorize
from repro.ir.values import Constant, ConstantFP


def build_row_loop(*, align=1, with_accumulator=False):
    """for (i = 0; i < n; i++) dst[i] = 0.25 * (src[i-1] + src[i+1])"""
    m = Module("t")
    f = Function("f", FunctionType(I64, (ptr(DOUBLE), ptr(DOUBLE), I64)))
    m.add_function(f)
    entry = f.add_block("entry")
    head = f.add_block("head")
    body = f.add_block("body")
    exit_ = f.add_block("exit")
    IRBuilder(entry).br(head)
    b = IRBuilder(head)
    i = b.phi(I64, "i")
    extra = None
    if with_accumulator:
        extra = b.phi(DOUBLE, "acc")
    c = b.icmp("slt", i, f.args[2])
    b.cond_br(c, body, exit_)
    b = IRBuilder(body)
    lo = b.load(b.gep(f.args[0], b.add(i, b.const(I64, -1))), align=align)
    hi = b.load(b.gep(f.args[0], b.add(i, b.const(I64, 1))), align=align)
    s = b.fadd(lo, hi)
    v = b.fmul(ConstantFP(DOUBLE, 0.25), s)
    b.store(v, b.gep(f.args[1], i), align=align)
    i2 = b.add(i, b.const(I64, 1))
    if with_accumulator:
        acc2 = b.fadd(extra, v)
        extra.add_incoming(ConstantFP(DOUBLE, 0.0), entry)
        extra.add_incoming(acc2, body)
    b.br(head)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, body)
    IRBuilder(exit_).ret(Constant(I64, 0))
    verify(f)
    return m, f


def test_gate_refuses_unaligned_without_force():
    _m, f = build_row_loop(align=1)
    report = vectorize.run(f)
    assert not report.vectorized
    assert "alignment" in report.reason


def test_force_vectorizes():
    m, f = build_row_loop(align=1)
    report = vectorize.run(f, force_vector_width=2)
    assert report.vectorized, report.reason
    verify(f)


def test_forced_loop_still_correct():
    m, f = build_row_loop(align=1)
    vectorize.run(f, force_vector_width=2)
    interp = Interpreter(m)
    interp.memory.map(0x1000, 0x1000)
    src, dst = 0x1000, 0x1800
    vals = [float(k * k % 13) for k in range(32)]
    for k, v in enumerate(vals):
        interp.memory.write_f64(src + 8 * k, v)
    interp.run(f, [src + 8, dst, 20])  # src offset so i-1 stays mapped
    for k in range(20):
        want = 0.25 * (vals[k] + vals[k + 2])
        assert interp.memory.read_f64(dst + 8 * k) == want


def test_aligned_loop_vectorizes_without_force():
    _m, f = build_row_loop(align=16)
    report = vectorize.run(f)
    assert report.vectorized


def test_accumulator_loop_refused():
    _m, f = build_row_loop(with_accumulator=True)
    report = vectorize.run(f, force_vector_width=2)
    assert not report.vectorized  # reductions are not supported


def test_unsupported_width_refused():
    _m, f = build_row_loop()
    report = vectorize.run(f, force_vector_width=4)
    assert not report.vectorized
    assert "width" in report.reason


def test_no_loop_found():
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    b.ret(f.args[0])
    report = vectorize.run(f)
    assert not report.vectorized
    assert "no vectorizable loop" in report.reason


def test_loop_with_call_refused():
    m = Module("t")
    decl = Function("ext", FunctionType(DOUBLE, (DOUBLE,)))
    decl.is_declaration = True
    m.add_function(decl)
    f = Function("f", FunctionType(I64, (ptr(DOUBLE), I64)))
    m.add_function(f)
    entry = f.add_block("entry")
    head = f.add_block("head")
    body = f.add_block("body")
    exit_ = f.add_block("exit")
    IRBuilder(entry).br(head)
    b = IRBuilder(head)
    i = b.phi(I64, "i")
    c = b.icmp("slt", i, f.args[1])
    b.cond_br(c, body, exit_)
    b = IRBuilder(body)
    v = b.load(b.gep(f.args[0], i))
    r = b.call(decl, [v], DOUBLE)
    b.store(r, b.gep(f.args[0], i))
    i2 = b.add(i, b.const(I64, 1))
    b.br(head)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, body)
    IRBuilder(exit_).ret(Constant(I64, 0))
    verify(f)
    report = vectorize.run(f, force_vector_width=2)
    assert not report.vectorized
