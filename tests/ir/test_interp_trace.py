"""Threaded-dispatch trace cache: invalidation, parity, preemption.

The speed campaign's interpreter caches a compiled trace per function,
keyed by the function's mutation version (plus a structural guard).  These
tests prove the core soundness claim: after *any* sanctioned mutation —
pass rewrite, RAUW, direct list surgery, callee replacement — a stale
trace is never executed, including under an 8-thread preemption hammer.
"""

from __future__ import annotations

import threading

from repro.ir import (
    I64, Function, FunctionType, IRBuilder, Interpreter, Module, verify,
)
from repro.ir import interp as interp_mod
from repro.ir.passes import run_o3

B = IRBuilder()  # constant factory only (never positioned)

M64 = (1 << 64) - 1


def build_add_const(m: Module, k: int, name: str = "f"):
    """f(x) = x + k, with the constant as a distinct RAUW-able operand."""
    f = Function(name, FunctionType(I64, (I64,)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    c = b.const(I64, k)
    b.ret(b.add(f.args[0], c))
    verify(f)
    return f, c


def test_trace_cached_and_reused():
    interp_mod.clear_traces()
    m = Module("t")
    f, _ = build_add_const(m, 3)
    it = Interpreter(m, threaded=True)
    s0 = interp_mod.trace_cache_stats()
    assert it.run(f, [4]) == 7
    t1 = interp_mod.trace_for(f)
    assert it.run(f, [5]) == 8
    assert interp_mod.trace_for(f) is t1
    s1 = interp_mod.trace_cache_stats()
    assert s1["compiles"] == s0["compiles"] + 1
    assert s1["hits"] > s0["hits"]
    assert interp_mod.trace_is_current(f)


def test_pass_rewrite_invalidates():
    """run_o3 mutates the body; the old trace must not be reused."""
    interp_mod.clear_traces()
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    five = b.add(b.const(I64, 2), b.const(I64, 3))  # foldable
    b.ret(b.add(f.args[0], five))
    verify(f)
    it = Interpreter(m, threaded=True)
    assert it.run(f, [10]) == 15
    old = interp_mod.trace_for(f)
    v0 = f.version
    run_o3(f)
    assert f.version > v0, "a changing pass run must bump the version"
    assert not (interp_mod.trace_for(f) is old), "stale trace survived O3"
    assert it.run(f, [10]) == 15
    assert interp_mod.trace_is_current(f)
    assert interp_mod.trace_cache_stats()["invalidations"] >= 1


def test_rauw_changes_semantics():
    """replace_all_uses is a sanctioned mutation: next run sees new IR."""
    interp_mod.clear_traces()
    m = Module("t")
    f, c = build_add_const(m, 1)
    it = Interpreter(m, threaded=True)
    assert it.run(f, [100]) == 101  # trace for +1 now cached
    c2 = B.const(I64, 40)
    assert f.replace_all_uses(c, c2) == 1
    assert it.run(f, [100]) == 140, "stale +1 trace executed after RAUW"
    assert interp_mod.trace_is_current(f)


def test_structural_surgery_guard():
    """Raw list surgery bypasses version bumps; the shape guard catches it."""
    interp_mod.clear_traces()
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    b.add(f.args[0], b.const(I64, 7), "dead")  # unused
    b.ret(b.add(f.args[0], b.const(I64, 1)))
    verify(f)
    it = Interpreter(m, threaded=True)
    assert it.run(f, [5]) == 6
    v0 = f.version
    f.entry.instructions.pop(0)  # direct surgery: no version bump
    assert f.version == v0
    assert not interp_mod.trace_is_current(f), \
        "structural guard missed an instruction-count change"
    assert it.run(f, [5]) == 6  # recompiled, not the stale 3-instr trace
    assert interp_mod.trace_is_current(f)


def test_callee_mutation_seen_through_calls():
    """Calls dispatch through trace_for at call time, so a mutated callee
    is re-traced even when the caller's trace is untouched."""
    interp_mod.clear_traces()
    m = Module("t")
    callee, c = build_add_const(m, 5, name="callee")
    caller = Function("caller", FunctionType(I64, (I64,)))
    m.add_function(caller)
    b = IRBuilder(caller.add_block("entry"))
    b.ret(b.call(callee, [b.add(caller.args[0], b.const(I64, 1))], I64))
    verify(caller)
    it = Interpreter(m, threaded=True)
    assert it.run(caller, [10]) == 16
    caller_trace = interp_mod.trace_for(caller)
    assert callee.replace_all_uses(c, B.const(I64, 50)) == 1
    assert it.run(caller, [10]) == 61, "stale callee trace executed"
    assert interp_mod.trace_for(caller) is caller_trace


def test_validator_rollback_invalidates():
    """restore_function (the validator's rollback) counts as a mutation."""
    from repro.analysis.clone import clone_function, restore_function

    interp_mod.clear_traces()
    m = Module("t")
    f, c = build_add_const(m, 9)
    it = Interpreter(m, threaded=True)
    snapshot = clone_function(f)
    assert it.run(f, [1]) == 10
    f.replace_all_uses(c, B.const(I64, 90))
    assert it.run(f, [1]) == 91
    v = f.version
    restore_function(f, snapshot)
    assert f.version > v, "rollback must bump the version"
    assert it.run(f, [1]) == 10, "stale post-mutation trace after rollback"


def test_preemption_hammer_8_threads():
    """8 threads run while the main thread mutates between rounds: every
    run started after a mutation must see the mutated semantics, and the
    cache must never report a stale trace as current."""
    interp_mod.clear_traces()
    m = Module("t")
    f, cur = build_add_const(m, 0)
    it = Interpreter(m, threaded=True)
    it.max_steps = 1 << 40

    NTHREADS, NROUNDS, RUNS = 8, 25, 10
    start = threading.Barrier(NTHREADS + 1)
    done = threading.Barrier(NTHREADS + 1)
    state = {"k": 0, "stop": False}
    errors: list = []

    def worker():
        while True:
            start.wait()
            if state["stop"]:
                return
            k = state["k"]
            for _ in range(RUNS):
                got = it.run(f, [1000])
                if got != (1000 + k) & M64:
                    errors.append(("value", k, got))
                if not interp_mod.trace_is_current(f):
                    errors.append(("stale", k))
            done.wait()

    threads = [threading.Thread(target=worker) for _ in range(NTHREADS)]
    for t in threads:
        t.start()
    try:
        c = cur
        for rnd in range(1, NROUNDS + 1):
            start.wait()  # workers hammer round rnd-1 concurrently
            done.wait()   # quiesce before mutating
            c2 = B.const(I64, rnd)
            assert f.replace_all_uses(c, c2) == 1
            c = c2
            state["k"] = rnd
    finally:
        state["stop"] = True
        start.wait()
        for t in threads:
            t.join()
    assert not errors, errors[:5]
    stats = interp_mod.trace_cache_stats()
    assert stats["invalidations"] >= NROUNDS - 1


def _instrumented_memfn():
    """f(x) = x + 1 via a scratch slot, plus the probe machinery to
    instrument/strip it against a real image memory."""
    from repro.cpu import Image
    from repro.instrument import (
        InstrumentOptions, ProbeBuffer, inject_probes, plan_probes,
    )
    from repro.ir import ptr

    img = Image()
    slot = img.alloc_data(8, align=8)
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    p = b.inttoptr(b.const(I64, slot), ptr(I64), "p")
    b.store(f.args[0], p, align=8)
    v = b.load(p, "v", align=8)
    b.ret(b.add(v, b.const(I64, 1)))
    verify(f)

    def instrument():
        plan = plan_probes(f, InstrumentOptions(trace_memory=True,
                                                ring_capacity=64))
        buf = ProbeBuffer.allocate(img, plan)
        inject_probes(f, plan, buf)
        return buf

    return img, m, f, instrument


def test_instrumentation_invalidates_trace():
    """inject_probes and strip_instrumentation are sanctioned mutations:
    both bump the version, so cached traces are never reused across an
    instrumentation boundary."""
    from repro.instrument import strip_instrumentation

    interp_mod.clear_traces()
    img, m, f, instrument = _instrumented_memfn()
    it = Interpreter(m, img.memory, threaded=True)
    assert it.run(f, [4]) == 5
    plain_trace = interp_mod.trace_for(f)

    v0 = f.version
    buf = instrument()
    assert f.version > v0, "inject_probes must bump the version"
    assert not (interp_mod.trace_for(f) is plain_trace), \
        "stale uninstrumented trace survived probe injection"
    assert it.run(f, [4]) == 5           # effect-only: same value
    assert interp_mod.trace_is_current(f)
    assert buf.call_count() == 1 and len(buf.events()) == 2

    v1 = f.version
    assert strip_instrumentation(f) > 0
    assert f.version > v1, "strip must bump the version"
    assert it.run(f, [4]) == 5
    assert interp_mod.trace_is_current(f)
    assert buf.call_count() == 1, "stale instrumented trace kept counting"


def test_instrument_strip_preemption_hammer_8_threads():
    """8 threads interpret while the main thread instruments and strips
    between barrier-quiesced rounds: the observable value never changes
    (probes are effect-only), no stale trace is ever current, and probes
    count exactly the runs of instrumented rounds."""
    from repro.instrument import strip_instrumentation

    interp_mod.clear_traces()
    img, m, f, instrument = _instrumented_memfn()
    it = Interpreter(m, img.memory, threaded=True)
    it.max_steps = 1 << 40

    NTHREADS, NROUNDS, RUNS = 8, 12, 8
    start = threading.Barrier(NTHREADS + 1)
    done = threading.Barrier(NTHREADS + 1)
    state = {"stop": False}
    errors: list = []

    def worker():
        while True:
            start.wait()
            if state["stop"]:
                return
            for _ in range(RUNS):
                got = it.run(f, [41])
                if got != 42:
                    errors.append(("value", got))
                if not interp_mod.trace_is_current(f):
                    errors.append(("stale",))
            done.wait()

    threads = [threading.Thread(target=worker) for _ in range(NTHREADS)]
    for t in threads:
        t.start()
    buf = None
    try:
        for rnd in range(NROUNDS):
            start.wait()  # workers hammer the current body concurrently
            done.wait()   # quiesce before mutating
            if buf is None:
                buf = instrument()  # fresh zeroed buffer each time
            else:
                # counters are plain (non-atomic) u64 adds: with 8 threads
                # racing, some increments may be lost, never invented
                if not 0 < buf.call_count() <= NTHREADS * RUNS:
                    errors.append(("count", buf.call_count()))
                assert strip_instrumentation(f) > 0
                buf = None
    finally:
        state["stop"] = True
        start.wait()
        for t in threads:
            t.join()
    assert not errors, errors[:5]
    assert interp_mod.trace_cache_stats()["invalidations"] >= NROUNDS - 1


def test_engine_parity_on_mutation_sequence():
    """Legacy and threaded engines agree across a mutation sequence."""
    for k in (0, 7, 123):
        m1, m2 = Module("a"), Module("b")
        f1, c1 = build_add_const(m1, k)
        f2, c2 = build_add_const(m2, k)
        legacy = Interpreter(m1, threaded=False)
        threaded = Interpreter(m2, threaded=True)
        assert legacy.run(f1, [9]) == threaded.run(f2, [9])
        f1.replace_all_uses(c1, B.const(I64, k + 1))
        f2.replace_all_uses(c2, B.const(I64, k + 1))
        assert legacy.run(f1, [9]) == threaded.run(f2, [9])
