"""Profile-guided O3 scheduling: soundness of skips, validator interlock.

Three claims from the speed campaign:

1. Every static no-fire rule is *sound*: whenever the shape fingerprint
   says a pass cannot fire, actually running that pass reports no change
   and leaves the function structurally identical.
2. Static scheduling is output-identical to scheduling disabled.
3. Skipping can never hide a miscompiling pass from the PassValidator:
   a quarantined pass disables all skipping (pre-probe), and a pass that
   miscompiles mid-run is rejected, rolled back, and kills scheduling
   for the rest of the run.
"""

from __future__ import annotations

import pytest

from repro.analysis.clone import clone_function, functions_structurally_equal
from repro.analysis.validate import PassValidator
from repro.cache.keys import options_digest
from repro.ir import (
    I64, Function, FunctionType, IRBuilder, Interpreter, Module, verify,
)
from repro.ir.passes import (
    O3Options, constprop, dce, gvn, inline, instcombine, mem2reg, run_o3,
    simplifycfg, unroll, vectorize,
)
from repro.ir.passes.schedule import (
    PASS_NAMES, Scheduler, ShapeFingerprint, _rule_no_fire, resolve_mode,
)

#: how to actually run each schedulable pass, mirroring pipeline.step()
PASS_RUNNERS = {
    "simplifycfg": lambda f: simplifycfg.run(f),
    "mem2reg": lambda f: mem2reg.run(f),
    "inline": lambda f: inline.run(f),
    "constprop": lambda f: constprop.run(f),
    "instcombine": lambda f: instcombine.run(f, True),
    "gvn": lambda f: gvn.run(f),
    "dce": lambda f: dce.run(f),
    "unroll": lambda f: unroll.run(f),
    "vectorize": lambda f: vectorize.run(f).vectorized,
}


def build_straight_const(m: Module) -> Function:
    """Single block, constant operands, one ret: maximally skippable."""
    f = Function("straight", FunctionType(I64, (I64,)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    b.ret(b.add(b.mul(f.args[0], b.const(I64, 3)), b.const(I64, 7)))
    verify(f)
    return f


def build_const_free(m: Module) -> Function:
    """No constant operands, loads or selects: constprop provably idle."""
    f = Function("nocons", FunctionType(I64, (I64, I64)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    v = b.add(f.args[0], f.args[1])
    b.ret(b.mul(v, f.args[0]))
    verify(f)
    return f


def build_loop(m: Module) -> Function:
    """sum_{i<n} i*3: cyclic CFG, phis — unroll/vectorize must not skip."""
    f = Function("loop", FunctionType(I64, (I64,)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    body = f.add_block("body")
    done = f.add_block("done")
    b.br(body)
    b.position_at_end(body)
    i = b.phi(I64, "i")
    s = b.phi(I64, "s")
    s2 = b.add(s, b.mul(i, b.const(I64, 3)))
    i2 = b.add(i, b.const(I64, 1))
    i.add_incoming(b.const(I64, 0), f.entry)
    i.add_incoming(i2, body)
    s.add_incoming(b.const(I64, 0), f.entry)
    s.add_incoming(s2, body)
    b.cond_br(b.icmp("slt", i2, f.args[0]), body, done)
    b.position_at_end(done)
    b.ret(s2)
    verify(f)
    return f


def build_alloca(m: Module) -> Function:
    f = Function("stk", FunctionType(I64, (I64,)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    slot = b.alloca(I64)
    b.store(f.args[0], slot)
    b.ret(b.load(slot))
    verify(f)
    return f


BUILDERS = (build_straight_const, build_const_free, build_loop, build_alloca)


@pytest.mark.parametrize("build", BUILDERS, ids=lambda b: b.__name__)
def test_static_rules_sound(build):
    """A provable no-fire claim must survive actually running the pass."""
    m = Module("t")
    f = build(m)
    fp = ShapeFingerprint(f)
    provable = [n for n in PASS_NAMES if _rule_no_fire(n, fp)]
    assert provable, "every builder should prove at least one pass idle"
    for name in provable:
        probe = clone_function(f)
        before = clone_function(probe)
        changed = PASS_RUNNERS[name](probe)
        assert not changed, f"{name} fired despite a no-fire proof"
        assert functions_structurally_equal(probe, before), \
            f"{name} mutated the function while reporting no change"


def test_rule_expectations_per_shape():
    m = Module("t")
    fp_straight = ShapeFingerprint(build_straight_const(m))
    fp_nocons = ShapeFingerprint(build_const_free(m))
    fp_loop = ShapeFingerprint(build_loop(m))
    fp_stk = ShapeFingerprint(build_alloca(m))
    # straight-line const fn: everything but constprop is provably idle
    assert _rule_no_fire("unroll", fp_straight)
    assert _rule_no_fire("simplifycfg", fp_straight)
    assert not _rule_no_fire("constprop", fp_straight)  # consts present
    # const-free fn: constprop provably idle
    assert _rule_no_fire("constprop", fp_nocons)
    # loop: cyclic, so loop passes must run
    assert fp_loop.cyclic
    assert not _rule_no_fire("unroll", fp_loop)
    assert not _rule_no_fire("vectorize", fp_loop)
    assert not _rule_no_fire("simplifycfg", fp_loop)
    # alloca fn: mem2reg must run, inline is idle
    assert not _rule_no_fire("mem2reg", fp_stk)
    assert _rule_no_fire("inline", fp_stk)


def test_version_rule():
    """'No change at version V' only skips while the version is still V."""
    m = Module("t")
    f = build_const_free(m)
    sched = Scheduler(f, "static")
    assert not sched.should_skip("gvn")
    sched.note_result("gvn", changed=False)
    assert sched.should_skip("gvn"), "no-change at same version must skip"
    f.bump_version()
    assert not sched.should_skip("gvn"), "version bump must clear the skip"
    sched.note_result("gvn", changed=True)
    assert not sched.should_skip("gvn"), "a firing pass is never skipped"


def test_static_output_identical_to_off():
    ma, mb = Module("a"), Module("b")
    fa, fb = build_loop(ma), build_loop(mb)
    ra = run_o3(fa, O3Options(pass_schedule="off"))
    rb = run_o3(fb, O3Options(pass_schedule="static"))
    assert ra.skipped_passes == []
    assert rb.skipped_passes, "static mode should skip something on a loop fn"
    assert functions_structurally_equal(fa, fb), \
        "static scheduling changed the produced IR"
    it_a, it_b = Interpreter(ma), Interpreter(mb)
    for n in (0, 1, 17):
        assert it_a.run(fa, [n]) == it_b.run(fb, [n])


def test_second_sweep_skips_via_version_rule():
    """An already-optimized body re-optimizes with skips and no changes."""
    m = Module("t")
    f = build_loop(m)
    run_o3(f, O3Options(pass_schedule="static"))
    snap = clone_function(f)
    report = run_o3(f, O3Options(pass_schedule="static"))
    assert report.converged
    assert report.skipped_passes
    assert functions_structurally_equal(f, snap)


def test_quarantine_preprobe_disables_scheduling():
    """A pass already in quarantine means zero skips for the whole run."""
    m = Module("t")
    f = build_loop(m)
    validator = PassValidator()
    validator.negative.record("o3pass:gvn", "o3", "seeded by test")
    report = run_o3(f, O3Options(pass_schedule="static"), validator=validator)
    assert report.schedule_mode == "static"
    assert report.schedule_disabled == "quarantined:gvn"
    assert report.skipped_passes == [], \
        "a quarantined pipeline must not skip anything"


def test_miscompile_is_rejected_not_hidden(monkeypatch):
    """Regression: scheduling can never hide a miscompiling pass from the
    validator — the bad pass is rejected + rolled back, and scheduling is
    disabled for the remainder of the run."""
    from repro.ir.passes import pipeline as pipe
    from repro.ir.values import Constant

    real_run = gvn.run

    def evil_run(func):
        changed = real_run(func)
        ret = func.blocks[-1].terminator
        ret.operands[0] = Constant(I64, 12345)  # miscompile: clobber result
        func.bump_version()
        return True

    monkeypatch.setattr(pipe.gvn, "run", evil_run)
    m = Module("t")
    f = build_straight_const(m)
    report = run_o3(f, O3Options(pass_schedule="static"), validate=True)
    assert "gvn" in report.rejected_passes
    assert report.schedule_disabled == "quarantined:gvn"
    assert "gvn" not in report.skipped_passes, \
        "the miscompiling pass was skipped instead of caught"
    # rollback preserved semantics: straight(x) = x*3 + 7
    assert Interpreter(m).run(f, [5]) == 22
    # the quarantine now outlives this run via the validator's negative
    # cache: a fresh run under the same validator gets zero skips too
    validator = PassValidator()
    r1 = run_o3(build_straight_const(Module("u")),
                O3Options(pass_schedule="static"), validator=validator)
    assert "gvn" in r1.rejected_passes
    f2 = build_straight_const(Module("v"))
    r2 = run_o3(f2, O3Options(pass_schedule="static"), validator=validator)
    assert r2.schedule_disabled == "quarantined:gvn"
    assert r2.skipped_passes == []


def test_resolve_mode_tracks_speed_switch():
    from repro import speed

    assert resolve_mode("static") == "static"
    assert resolve_mode("off") == "off"
    try:
        speed.set_enabled(True)
        assert resolve_mode("auto") == "static"
        speed.set_enabled(False)
        assert resolve_mode("auto") == "off"
    finally:
        speed.set_enabled(None)


def test_profile_mode_is_digest_distinct():
    """Learned skips may change IR, so "profile" must never share cache
    entries with the output-identical modes."""
    base = options_digest(O3Options())
    assert options_digest(O3Options(pass_schedule="profile")) != base
    # ... while "auto" IS the default and shares by construction
    assert options_digest(O3Options(pass_schedule="auto")) == base
