"""IR -> machine-code lowering specifics, checked on generated instructions."""

import pytest

from repro.cpu import Image, Simulator
from repro.ir import (
    DOUBLE, I1, I8, I32, I64, I128, V2F64,
    Function, FunctionType, IRBuilder, Module, Undef, verify, ptr,
)
from repro.ir.codegen import JITEngine, JITOptions
from repro.ir.values import Constant, ConstantFP, ConstantVector
from repro.x86.decoder import decode_block


def build(ret, params):
    m = Module("t")
    f = Function("f", FunctionType(ret, tuple(params)))
    m.add_function(f)
    return m, f, IRBuilder(f.add_block("entry"))


def compile_and_decode(f, options=None):
    img = Image()
    jit = JITEngine(img, options or JITOptions())
    addr = jit.compile_function(f)
    code = img.function_bytes(f.name)
    return img, decode_block(code, addr, len(code), base_addr=addr)


def mnemonics(instrs):
    return [i.mnemonic for i in instrs]


def test_select_lowered_to_cmov():
    _m, f, b = build(I64, (I64, I64))
    c = b.icmp("slt", f.args[0], f.args[1])
    b.ret(b.select(c, f.args[1], f.args[0]))
    verify(f)
    img, instrs = compile_and_decode(f)
    ms = mnemonics(instrs)
    assert "cmovl" in ms
    assert not any(m.startswith("j") and m != "jmp" for m in ms)
    sim = Simulator(img)
    assert sim.call_int("f", (3, 9)) == 9


def test_imul_style_for_constants():
    _m, f, b = build(I64, (I64,))
    b.ret(b.mul(f.args[0], b.const(I64, 649)))
    img, instrs = compile_and_decode(f)
    ms = mnemonics(instrs)
    assert "imul" in ms and "lea" not in ms  # LLVM personality (Sec. VI-A)


def test_gep_chain_folds_into_addressing():
    # load base[8*i - 8] must become ONE instruction with a scaled operand
    _m, f, b = build(DOUBLE, (ptr(I8), I64))
    off = b.add(b.mul(f.args[1], b.const(I64, 8)), b.const(I64, -8))
    p = b.bitcast(b.gep(f.args[0], off), ptr(DOUBLE))
    b.ret(b.load(p))
    img, instrs = compile_and_decode(f)
    from repro.x86.instr import Mem
    loads = [i for i in instrs if i.mnemonic == "movsd"]
    assert len(loads) == 1
    mem = loads[0].operands[1]
    assert isinstance(mem, Mem) and mem.scale == 8 and mem.disp == -8
    img.memory.write_f64(0x800010, 42.0)
    sim = Simulator(img)
    assert sim.call_f64("f", (0x800000, 3)) == 42.0


def test_vector_roundtrip_shuffle_lanes():
    _m, f, b = build(DOUBLE, (DOUBLE, DOUBLE))
    v = b.insertelement(Undef(V2F64), f.args[0], 0)
    v = b.insertelement(v, f.args[1], 1)
    swapped = b.shufflevector(v, v, (1, 2))  # [v[1], v[0]]
    lo = b.extractelement(swapped, 0)
    hi = b.extractelement(swapped, 1)
    b.ret(b.fsub(lo, hi))
    verify(f)
    img, _ = compile_and_decode(f)
    sim = Simulator(img)
    assert sim.call_f64("f", (), (10.0, 4.0)) == -6.0  # 4 - 10


def test_i128_phi_through_loop():
    m, f, _ = build(I64, (I64,))
    entry = f.entry
    head = f.add_block("head")
    body = f.add_block("body")
    exit_ = f.add_block("exit")
    b = IRBuilder(entry)
    init = b.zext(f.args[0], I128)
    b.br(head)
    b = IRBuilder(head)
    from repro.ir.instructions import Phi
    acc = b.phi(I128, "acc")
    i = b.phi(I64, "i")
    c = b.icmp("slt", i, b.const(I64, 3))
    b.cond_br(c, body, exit_)
    b = IRBuilder(body)
    # i128 bitwise ops are what the lifter produces (pxor/pand/por)
    acc2 = b.binop("xor", acc, Constant(I128, 0xFF00FF))
    i2 = b.add(i, b.const(I64, 1))
    b.br(head)
    acc.add_incoming(init, entry)
    acc.add_incoming(acc2, body)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, body)
    b = IRBuilder(exit_)
    b.ret(b.trunc(acc, I64))
    verify(f)
    img, _ = compile_and_decode(f)
    sim = Simulator(img)
    assert sim.call_int("f", (5,)) == 5 ^ 0xFF00FF  # odd number of toggles


def test_i128_vector_add_uses_paddq_semantics():
    # add <i128> lowered through pxor/pand? we lower via vadd family -> but
    # integer i128 add is lane-less; ensure the add path above produced
    # correct doubling, covered by test_i128_phi_through_loop's assertion.
    pass


def test_unaligned_vector_load_split_option():
    _m, f, b = build(DOUBLE, (ptr(V2F64),))
    v = b.load(f.args[0], align=1)  # vectorizer-style unaligned load
    b.ret(b.extractelement(v, 1))
    img, instrs = compile_and_decode(f)
    from repro.x86.instr import Mem
    ms = mnemonics(instrs)
    assert "movsd" in ms and "movhpd" in ms
    # no 16-byte *memory* access remains (reg-reg movupd copies are fine)
    assert not any(
        i.mnemonic == "movupd" and any(isinstance(op, Mem) for op in i.operands)
        for i in instrs
    )


def test_aligned_vector_load_uses_movapd():
    _m, f, b = build(DOUBLE, (ptr(V2F64),))
    v = b.load(f.args[0], align=16)
    b.ret(b.extractelement(v, 0))
    img, instrs = compile_and_decode(f)
    assert "movapd" in mnemonics(instrs)


def test_element_aligned_vector_load_uses_movupd():
    _m, f, b = build(DOUBLE, (ptr(V2F64),))
    v = b.load(f.args[0], align=8)  # lifted movupd
    b.ret(b.extractelement(v, 0))
    img, instrs = compile_and_decode(f)
    assert "movupd" in mnemonics(instrs)


def test_i1_zext_and_branch():
    _m, f, b = build(I64, (I64,))
    c = b.icmp("eq", f.args[0], b.const(I64, 7))
    b.ret(b.zext(c, I64))
    img, _ = compile_and_decode(f)
    sim = Simulator(img)
    assert sim.call_int("f", (7,)) == 1
    assert sim.call_int("f", (8,)) == 0


def test_sdiv_srem_i32():
    _m, f, b = build(I32, (I32, I32))
    q = b.binop("sdiv", f.args[0], f.args[1])
    r = b.binop("srem", f.args[0], f.args[1])
    b.ret(b.add(q, r))
    img, _ = compile_and_decode(f)
    sim = Simulator(img)
    # -100/7 = -14 rem -2 -> -16 (as u32)
    assert sim.call_int("f", ((-100) & 0xFFFFFFFF, 7)) == ((-16) & 0xFFFFFFFF)


def test_call_between_jitted_functions():
    m = Module("t")
    callee = Function("sq", FunctionType(I64, (I64,)))
    m.add_function(callee)
    b = IRBuilder(callee.add_block("entry"))
    b.ret(b.mul(callee.args[0], callee.args[0]))
    caller = Function("f", FunctionType(I64, (I64, DOUBLE)))
    m.add_function(caller)
    b = IRBuilder(caller.add_block("entry"))
    r = b.call(callee, [caller.args[0]], I64)
    as_int = b.fptosi(caller.args[1], I64)
    b.ret(b.add(r, as_int))
    verify(caller)
    img = Image()
    JITEngine(img).compile_module(m)
    sim = Simulator(img)
    assert sim.call_int("f", (6,), (2.0,)) == 38


def test_constant_vector_materialization():
    _m, f, b = build(DOUBLE, (DOUBLE,))
    v = b.insertelement(
        ConstantVector(V2F64, (ConstantFP(DOUBLE, 1.5), ConstantFP(DOUBLE, 2.5))),
        f.args[0], 0,
    )
    lo = b.extractelement(v, 0)
    hi = b.extractelement(v, 1)
    b.ret(b.fadd(lo, hi))
    img, _ = compile_and_decode(f)
    sim = Simulator(img)
    assert sim.call_f64("f", (), (10.0,)) == 12.5


def test_riprel_vs_absolute_const_addressing():
    _m, f, b = build(DOUBLE, ())
    b.ret(b.fconst(DOUBLE, 3.25))
    img, instrs = compile_and_decode(f, JITOptions(const_addressing="riprel"))
    load = next(i for i in instrs if i.mnemonic == "movsd")
    assert load.operands[1].riprel

    _m2, f2, b2 = build(DOUBLE, ())
    b2.ret(b2.fconst(DOUBLE, 3.25))
    img2, instrs2 = compile_and_decode(f2, JITOptions(const_addressing="absolute"))
    load2 = next(i for i in instrs2 if i.mnemonic == "movsd")
    assert load2.operands[1].is_absolute
