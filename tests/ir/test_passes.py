"""Optimization pass unit tests: each pass in isolation plus the pipeline."""

import struct

import pytest

from repro.ir import (
    DOUBLE, I1, I8, I32, I64, I128, V2F64,
    Function, FunctionType, GlobalVariable, IRBuilder, Interpreter, Module,
    Undef, verify, ptr,
)
from repro.ir.passes import O3Options, run_o3
from repro.ir.passes import constprop, dce, gvn, inline, instcombine, simplifycfg, unroll
from repro.ir.values import Constant, ConstantFP


def fresh(params=(I64,), ret=I64, name="f"):
    m = Module("t")
    f = Function(name, FunctionType(ret, tuple(params)))
    m.add_function(f)
    return m, f, IRBuilder(f.add_block("entry"))


def n_instrs(f):
    return sum(len(b.instructions) for b in f.blocks)


# -- constprop -----------------------------------------------------------------


def test_constprop_folds_arith():
    _m, f, b = fresh(())
    x = b.add(b.const(I64, 40), b.const(I64, 2))
    b.ret(x)
    constprop.run(f)
    verify(f)
    assert n_instrs(f) == 1


def test_constprop_folds_constant_global_loads():
    m, f, b = fresh(())
    g = GlobalVariable("c", I8, struct.pack("<q", 1234))
    m.add_global(g)
    p = b.bitcast(g, ptr(I64))
    b.ret(b.load(p))
    constprop.run(f)
    dce.run(f)
    verify(f)
    from repro.ir.instructions import Ret
    ret = f.entry.instructions[-1]
    assert isinstance(ret, Ret) and isinstance(ret.value, Constant)
    assert ret.value.value == 1234


def test_constprop_does_not_fold_mutable_global():
    m, f, b = fresh(())
    g = GlobalVariable("v", I8, struct.pack("<q", 5), constant=False)
    m.add_global(g)
    b.ret(b.load(b.bitcast(g, ptr(I64))))
    constprop.run(f)
    assert any(i.opcode == "load" for i in f.instructions())


def test_constprop_does_not_follow_nested_pointers():
    # Sec. IV: a pointer loaded out of a fixed region is opaque
    m, f, b = fresh(())
    g = GlobalVariable("s", I8, struct.pack("<Q", 0xDEAD0000))
    m.add_global(g)
    pp = b.bitcast(g, ptr(ptr(I64)))
    inner = b.load(pp)  # pointer-typed load: not folded
    b.ret(b.ptrtoint(inner, I64))
    constprop.run(f)
    assert any(i.opcode == "load" for i in f.instructions())


def test_constprop_resolves_ptrtoint_chains():
    _m, f, b = fresh(())
    p = b.inttoptr(b.const(I64, 0x1000), ptr(I8))
    p2 = b.gep_i(p, 0x24)
    b.ret(b.ptrtoint(p2, I64))
    constprop.run(f)
    dce.run(f)
    ret = f.entry.instructions[-1]
    assert isinstance(ret.value, Constant) and ret.value.value == 0x1024


# -- instcombine ---------------------------------------------------------------


def test_instcombine_identities():
    _m, f, b = fresh()
    x = f.args[0]
    v = b.add(x, b.const(I64, 0))
    v = b.mul(v, b.const(I64, 1))
    v = b.or_(v, b.const(I64, 0))
    v = b.xor(v, b.const(I64, 0))
    b.ret(v)
    instcombine.run(f)
    verify(f)
    assert n_instrs(f) == 1  # just ret x


def test_instcombine_facet_cast_chain():
    _m, f, b = fresh((DOUBLE,), DOUBLE)
    v = b.insertelement(Undef(V2F64), f.args[0], 0)
    i = b.bitcast(v, I128)
    back = b.bitcast(i, V2F64)
    b.ret(b.extractelement(back, 0))
    instcombine.run(f)
    dce.run(f)
    verify(f)
    assert n_instrs(f) == 1


def test_instcombine_zero_flag_pattern_recovered():
    # icmp eq (sub a b), 0 -> icmp eq a, b (LLVM recognizes this one)
    _m, f, b = fresh((I64, I64), I1)
    s = b.sub(f.args[0], f.args[1])
    b.ret(b.icmp("eq", s, b.const(I64, 0)))
    instcombine.run(f)
    dce.run(f)
    cmp = f.entry.instructions[0]
    assert cmp.opcode == "icmp"
    assert cmp.operands[0] is f.args[0] and cmp.operands[1] is f.args[1]


def test_instcombine_does_not_recover_signed_lt_bit_pattern():
    # Fig. 6b: sf != of via xor chains must NOT become icmp slt
    _m, f, b = fresh((I64, I64), I1)
    a, c = f.args
    cmp = b.sub(a, c)
    sf = b.icmp("slt", cmp, b.const(I64, 0))
    t1 = b.xor(cmp, a)
    t2 = b.xor(c, a)
    t3 = b.and_(t1, t2)
    of = b.icmp("slt", t3, b.const(I64, 0))
    b.ret(b.xor(sf, of))
    before = n_instrs(f)
    instcombine.run(f)
    dce.run(f)
    # the bit-arithmetic chain survives (no icmp slt a, c appears)
    assert not any(
        i.opcode == "icmp" and i.pred == "slt"
        and i.operands[0] is a and i.operands[1] is c
        for i in f.instructions()
    )
    assert n_instrs(f) >= before - 1


def test_instcombine_gep_chain_folding():
    _m, f, b = fresh((ptr(I8),), I64)
    p = b.gep_i(f.args[0], 8)
    p2 = b.gep_i(p, 16)
    b.ret(b.ptrtoint(p2, I64))
    instcombine.run(f)
    dce.run(f)
    geps = [i for i in f.instructions() if i.opcode == "gep"]
    assert len(geps) == 1
    assert geps[0].operands[1].value == 24


def test_instcombine_fastmath_reassociation():
    _m, f, b = fresh((DOUBLE, DOUBLE), DOUBLE)
    c = b.fconst(DOUBLE, 0.25)
    m1 = b.fmul(c, f.args[0])
    m2 = b.fmul(c, f.args[1])
    b.ret(b.fadd(m1, m2))
    instcombine.run(f, fast_math=True)
    dce.run(f)
    muls = [i for i in f.instructions() if i.opcode == "fmul"]
    assert len(muls) == 1  # 0.25*(a+b)


def test_instcombine_no_fastmath_without_flag():
    _m, f, b = fresh((DOUBLE,), DOUBLE)
    b.ret(b.fadd(f.args[0], b.fconst(DOUBLE, 0.0)))
    instcombine.run(f, fast_math=False)
    assert any(i.opcode == "fadd" for i in f.instructions())


# -- dce --------------------------------------------------------------------------


def test_dce_removes_phi_cycles():
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)))
    m.add_function(f)
    e = f.add_block("entry")
    h = f.add_block("head")
    x = f.add_block("exit")
    IRBuilder(e).br(h)
    b = IRBuilder(h)
    dead_phi = b.phi(I64, "dead")
    live = b.phi(I64, "live")
    dead2 = b.add(dead_phi, b.const(I64, 1))
    c = b.icmp("slt", live, b.const(I64, 10))
    live2 = b.add(live, b.const(I64, 1))
    b.cond_br(c, h, x)
    dead_phi.add_incoming(Constant(I64, 0), e)
    dead_phi.add_incoming(dead2, h)
    live.add_incoming(Constant(I64, 0), e)
    live.add_incoming(live2, h)
    IRBuilder(x).ret(live)
    verify(f)
    dce.run(f)
    verify(f)
    names = {i.name for i in f.instructions()}
    assert "dead" not in names
    assert "live" in names


def test_dce_keeps_stores_and_calls():
    m, f, b = fresh((ptr(I64),), I64)
    decl = Function("ext", FunctionType(I64, ()))
    decl.is_declaration = True
    m.add_function(decl)
    b.store(b.const(I64, 1), f.args[0])
    b.call(decl, [], I64)  # result unused but side effects possible
    b.ret(b.const(I64, 0))
    dce.run(f)
    ops = [i.opcode for i in f.instructions()]
    assert "store" in ops and "call" in ops


def test_dce_removes_pure_intrinsics():
    _m, f, b = fresh((I8,), I8)
    b.call("llvm.ctpop.i8", [f.args[0]], I8)  # unused
    b.ret(f.args[0])
    dce.run(f)
    assert not any(i.opcode == "call" for i in f.instructions())


# -- simplifycfg -------------------------------------------------------------------


def test_simplifycfg_folds_constant_branch():
    m, f, b = fresh((), I64)
    t = f.blocks[0].function.add_block("t")
    o = f.blocks[0].function.add_block("o")
    b.cond_br(Constant(I1, 1), t, o)
    IRBuilder(t).ret(Constant(I64, 1))
    IRBuilder(o).ret(Constant(I64, 2))
    simplifycfg.run(f)
    verify(f)
    assert len(f.blocks) == 1
    assert f.entry.instructions[-1].value.value == 1


def test_simplifycfg_merges_straight_line():
    m, f, b = fresh((I64,), I64)
    nxt = f.add_block("next")
    b.br(nxt)
    nb = IRBuilder(nxt)
    nb.ret(f.args[0])
    simplifycfg.run(f)
    assert len(f.blocks) == 1


def test_simplifycfg_phi_undef_requires_dominance():
    # phi [v, A], [undef, B] where v does not dominate the join: must stay
    m = Module("t")
    f = Function("f", FunctionType(I64, (I1, I64)))
    m.add_function(f)
    e = f.add_block("entry")
    a = f.add_block("a")
    c = f.add_block("c")
    j = f.add_block("j")
    b = IRBuilder(e)
    b.cond_br(f.args[0], a, c)
    ab = IRBuilder(a)
    v = ab.add(f.args[1], ab.const(I64, 1))
    ab.br(j)
    IRBuilder(c).br(j)
    jb = IRBuilder(j)
    phi = jb.phi(I64, "p")
    phi.add_incoming(v, a)
    phi.add_incoming(Undef(I64), c)
    jb.ret(phi)
    verify(f)
    simplifycfg.run(f)
    verify(f)  # must still be valid SSA whatever it did


# -- gvn -----------------------------------------------------------------------------


def test_gvn_cse_within_block():
    _m, f, b = fresh((I64, I64), I64)
    x1 = b.add(f.args[0], f.args[1])
    x2 = b.add(f.args[0], f.args[1])
    b.ret(b.mul(x1, x2))
    gvn.run(f)
    adds = [i for i in f.instructions() if i.opcode == "add"]
    assert len(adds) == 1


def test_gvn_commutative_normalization():
    _m, f, b = fresh((I64, I64), I64)
    x1 = b.add(f.args[0], f.args[1])
    x2 = b.add(f.args[1], f.args[0])
    b.ret(b.mul(x1, x2))
    gvn.run(f)
    assert len([i for i in f.instructions() if i.opcode == "add"]) == 1


def test_gvn_is_block_local():
    # redundancy across blocks survives (the paper's cross-block limitation)
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64, I64)))
    m.add_function(f)
    e = f.add_block("entry")
    n = f.add_block("next")
    b = IRBuilder(e)
    x1 = b.add(f.args[0], f.args[1])
    b.br(n)
    nb = IRBuilder(n)
    x2 = nb.add(f.args[0], f.args[1])
    nb.ret(nb.mul(x1, x2))
    gvn.run(f)
    assert len([i for i in f.instructions() if i.opcode == "add"]) == 2


def test_gvn_store_load_forwarding():
    _m, f, b = fresh((ptr(I64), I64), I64)
    b.store(f.args[1], f.args[0])
    v = b.load(f.args[0])
    b.ret(v)
    gvn.run(f)
    dce.run(f)
    assert not any(i.opcode == "load" for i in f.instructions())


def test_gvn_load_invalidated_by_store():
    _m, f, b = fresh((ptr(I64), ptr(I64)), I64)
    v1 = b.load(f.args[0])
    b.store(b.const(I64, 9), f.args[1])  # may alias
    v2 = b.load(f.args[0])
    b.ret(b.add(v1, v2))
    gvn.run(f)
    assert len([i for i in f.instructions() if i.opcode == "load"]) == 2


# -- inline -----------------------------------------------------------------------


def test_inline_always_inline():
    m = Module("t")
    callee = Function("c", FunctionType(I64, (I64,)))
    m.add_function(callee)
    cb = IRBuilder(callee.add_block("entry"))
    cb.ret(cb.mul(callee.args[0], callee.args[0]))
    callee.always_inline = True
    caller = Function("f", FunctionType(I64, (I64,)))
    m.add_function(caller)
    b = IRBuilder(caller.add_block("entry"))
    b.ret(b.call(callee, [caller.args[0]], I64))
    inline.run(caller)
    simplifycfg.run(caller)
    verify(caller)
    assert not any(i.opcode == "call" for i in caller.instructions())
    assert Interpreter(m).run("f", [7]) == 49


def test_inline_multi_return_builds_phi():
    m = Module("t")
    callee = Function("absv", FunctionType(I64, (I64,)))
    m.add_function(callee)
    e = callee.add_block("entry")
    neg = callee.add_block("neg")
    pos = callee.add_block("pos")
    cb = IRBuilder(e)
    c = cb.icmp("slt", callee.args[0], cb.const(I64, 0))
    cb.cond_br(c, neg, pos)
    nb = IRBuilder(neg)
    nb.ret(nb.sub(nb.const(I64, 0), callee.args[0]))
    IRBuilder(pos).ret(callee.args[0])
    callee.always_inline = True

    caller = Function("f", FunctionType(I64, (I64,)))
    m.add_function(caller)
    b = IRBuilder(caller.add_block("entry"))
    b.ret(b.call(callee, [caller.args[0]], I64))
    inline.run(caller)
    verify(caller)
    i = Interpreter(m)
    assert i.run("f", [(-5) & (2**64 - 1)]) == 5
    assert i.run("f", [5]) == 5


def test_inline_refuses_recursion():
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    b.ret(b.call(f, [f.args[0]], I64))
    f.always_inline = True
    assert not inline.run(f)


def test_inline_small_function_heuristic():
    m = Module("t")
    callee = Function("tiny", FunctionType(I64, (I64,)))
    m.add_function(callee)
    cb = IRBuilder(callee.add_block("entry"))
    cb.ret(cb.add(callee.args[0], cb.const(I64, 1)))
    # NOT marked always_inline: size heuristic triggers
    caller = Function("f", FunctionType(I64, (I64,)))
    m.add_function(caller)
    b = IRBuilder(caller.add_block("entry"))
    b.ret(b.call(callee, [caller.args[0]], I64))
    assert inline.run(caller)


# -- unroll --------------------------------------------------------------------------


def build_counted_loop(trip, step=1):
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)))
    m.add_function(f)
    e = f.add_block("entry")
    h = f.add_block("head")
    body = f.add_block("body")
    x = f.add_block("exit")
    IRBuilder(e).br(h)
    b = IRBuilder(h)
    i = b.phi(I64, "i")
    s = b.phi(I64, "s")
    c = b.icmp("slt", i, b.const(I64, trip))
    b.cond_br(c, body, x)
    bb = IRBuilder(body)
    s2 = bb.add(s, f.args[0])
    i2 = bb.add(i, bb.const(I64, step))
    bb.br(h)
    i.add_incoming(Constant(I64, 0), e)
    i.add_incoming(i2, body)
    s.add_incoming(Constant(I64, 0), e)
    s.add_incoming(s2, body)
    IRBuilder(x).ret(s)
    verify(f)
    return m, f


def test_unroll_constant_trip():
    m, f = build_counted_loop(5)
    unroll.run(f)
    verify(f)
    from repro.ir.passes import simplifycfg as scfg
    scfg.run(f)
    assert len(f.blocks) == 1
    assert Interpreter(m).run("f", [3]) == 15


def test_unroll_respects_max_trip():
    m, f = build_counted_loop(1000)
    blocks_before = len(f.blocks)
    unroll.run(f)
    verify(f)
    assert len(f.blocks) >= blocks_before  # loop survives
    assert Interpreter(m).run("f", [1]) == 1000


def test_unroll_zero_trip_loop_removed():
    m, f = build_counted_loop(0)
    unroll.run(f)
    verify(f)
    assert Interpreter(m).run("f", [3]) == 0
    assert len(f.blocks) == 1


# -- pipeline ---------------------------------------------------------------------


def test_o3_is_idempotent_on_clean_code():
    _m, f, b = fresh((I64,))
    b.ret(b.add(f.args[0], b.const(I64, 1)))
    run_o3(f)
    n1 = n_instrs(f)
    run_o3(f)
    assert n_instrs(f) == n1


def test_o3_ablation_options():
    m, f = build_counted_loop(4)
    run_o3(f, O3Options(enable_unroll=False))
    verify(f)
    assert len(f.blocks) > 1  # loop not unrolled
    assert Interpreter(m).run("f", [2]) == 8
