"""Module-level printing and miscellaneous IR repr coverage."""

from repro.cc import compile_c
from repro.ir import (
    DOUBLE, I64, Function, FunctionType, GlobalVariable, IRBuilder, Module,
    print_function, print_module,
)
from repro.ir.printer import print_block
from repro.lift import FunctionSignature, LiftOptions, lift_function


def test_print_module_with_globals_and_declarations():
    m = Module("t")
    m.add_global(GlobalVariable("cfg", I64, b"\x01" * 8))
    decl = Function("ext", FunctionType(I64, (I64,)))
    decl.is_declaration = True
    m.add_function(decl)
    f = Function("main", FunctionType(I64, ()))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    b.ret(b.call(decl, [b.const(I64, 1)], I64))
    text = print_module(m)
    assert "@cfg = constant [8 x i8]" in text
    assert "declare i64 @ext(i64 %arg0)" in text
    assert "define i64 @main()" in text
    assert "call i64 @ext(i64 1)" in text


def test_print_alwaysinline_attribute():
    m = Module("t")
    f = Function("f", FunctionType(I64, ()))
    m.add_function(f)
    IRBuilder(f.add_block("entry")).ret(IRBuilder(f.entry).const(I64, 0))
    f.always_inline = True
    assert "alwaysinline" in print_function(f)


def test_instruction_repr_is_printable():
    prog = compile_c("long f(long a) { if (a > 2) return a * 3; return 1; }")
    m = Module("t")
    func = lift_function(prog.image.memory, prog.image.symbol("f"),
                         FunctionSignature(("i",), "i"),
                         LiftOptions(name="f"), m)
    # every instruction repr must render without raising
    for blk in func.blocks:
        text = print_block(blk)
        assert blk.name in text
        for ins in blk.instructions:
            assert repr(ins)


def test_whole_lifted_module_prints():
    prog = compile_c("""
    long helper(long x) { return x + 1; }
    long f(long a) { return helper(a) * 2; }
    """)
    img = prog.image
    m = Module("t")
    lift_function(img.memory, img.symbol("f"), FunctionSignature(("i",), "i"),
                  LiftOptions(name="f", known_functions={
                      img.symbol("helper"): ("helper",
                                             FunctionSignature(("i",), "i")),
                  }), m)
    text = print_module(m)
    assert "declare i64 @helper" in text
    assert "define i64 @f" in text
