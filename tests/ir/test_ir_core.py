"""MiniLLVM core: types, builder, verifier, printer."""

import pytest

from repro.errors import IRError
from repro.ir import (
    DOUBLE, I1, I8, I32, I64, I128, V2F64, VOID,
    Function, FunctionType, IRBuilder, Module, Undef, verify,
    print_function,
)
from repro.ir.irtypes import IntType, PointerType, VectorType, ptr
from repro.ir.values import Constant, ConstantFP, ConstantVector


# -- types -------------------------------------------------------------------


def test_int_types_interned():
    assert IntType(64) is I64
    assert IntType(32) is I32


def test_bad_int_width_rejected():
    with pytest.raises(ValueError):
        IntType(24)


def test_pointer_types_interned():
    assert ptr(I64) is ptr(I64)
    assert ptr(I64) is not ptr(I32)
    assert ptr(I8, 256) is not ptr(I8)


def test_sizes():
    assert I64.size_bytes() == 8
    assert I128.size_bytes() == 16
    assert V2F64.size_bytes() == 16
    assert ptr(DOUBLE).size_bytes() == 8
    assert VectorType(DOUBLE, 4).size_bytes() == 32


def test_constant_masks_to_width():
    c = Constant(I8, 0x1FF)
    assert c.value == 0xFF
    assert c.signed == -1


def test_constant_requires_int_type():
    with pytest.raises(TypeError):
        Constant(DOUBLE, 1)


def test_constant_vector_zeroinitializer_rendering():
    z = ConstantVector(V2F64, (ConstantFP(DOUBLE, 0.0), ConstantFP(DOUBLE, 0.0)))
    assert z.short() == "zeroinitializer"


# -- builder & verifier -----------------------------------------------------------


def build_simple():
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)))
    m.add_function(f)
    b = IRBuilder(f.add_block("entry"))
    return m, f, b


def test_verifier_accepts_wellformed():
    _m, f, b = build_simple()
    b.ret(b.add(f.args[0], b.const(I64, 1)))
    verify(f)


def test_verifier_rejects_missing_terminator():
    _m, f, b = build_simple()
    b.add(f.args[0], b.const(I64, 1))
    with pytest.raises(IRError, match="terminator"):
        verify(f)


def test_verifier_rejects_type_mismatch():
    _m, f, b = build_simple()
    from repro.ir.instructions import BinOp
    bad = BinOp("add", f.args[0], Constant(I32, 1))
    bad.name = "bad"
    f.entry.append(bad)
    b.ret(f.args[0])
    with pytest.raises(IRError, match="type mismatch"):
        verify(f)


def test_verifier_rejects_use_before_def():
    _m, f, b = build_simple()
    v1 = b.add(f.args[0], b.const(I64, 1))
    v2 = b.add(v1, b.const(I64, 2))
    blk = f.entry
    i1 = blk.instructions.index(v1)
    i2 = blk.instructions.index(v2)
    blk.instructions[i1], blk.instructions[i2] = blk.instructions[i2], blk.instructions[i1]
    b.ret(v2)
    with pytest.raises(IRError, match="before definition"):
        verify(f)


def test_verifier_rejects_non_dominating_use():
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64, I64)))
    m.add_function(f)
    e = f.add_block("entry")
    t = f.add_block("then")
    o = f.add_block("other")
    j = f.add_block("join")
    b = IRBuilder(e)
    c = b.icmp("slt", f.args[0], f.args[1])
    b.cond_br(c, t, o)
    b = IRBuilder(t)
    v = b.add(f.args[0], b.const(I64, 1))
    b.br(j)
    b = IRBuilder(o)
    b.br(j)
    b = IRBuilder(j)
    b.ret(v)  # v only defined on the then-path
    with pytest.raises(IRError, match="dominate"):
        verify(f)


def test_verifier_rejects_phi_incoming_mismatch():
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)))
    m.add_function(f)
    e = f.add_block("entry")
    j = f.add_block("join")
    IRBuilder(e).br(j)
    b = IRBuilder(j)
    phi = b.phi(I64)
    # no incoming registered for the entry edge
    b.ret(phi)
    with pytest.raises(IRError, match="incoming"):
        verify(f)


def test_verifier_rejects_ret_type():
    _m, f, b = build_simple()
    b.ret(b.fconst(DOUBLE, 1.0))
    with pytest.raises(IRError, match="ret"):
        verify(f)


def test_verifier_ignores_unreachable_blocks():
    _m, f, b = build_simple()
    b.ret(f.args[0])
    dead = f.add_block("dead")
    db = IRBuilder(dead)
    v = db.add(f.args[0], db.const(I64, 1))
    db.ret(v)
    verify(f)  # dead block uses are not dominance-checked


def test_builder_bitcast_same_type_is_noop():
    _m, f, b = build_simple()
    assert b.bitcast(f.args[0], I64) is f.args[0]


def test_verifier_rejects_invalid_cast():
    _m, f, b = build_simple()
    from repro.ir.instructions import Cast
    bad = Cast("trunc", f.args[0], I128)  # trunc must narrow
    bad.name = "bad"
    f.entry.append(bad)
    b.ret(f.args[0])
    with pytest.raises(IRError, match="invalid trunc"):
        verify(f)


# -- printer -----------------------------------------------------------------------


def test_printer_round_shape():
    _m, f, b = build_simple()
    v = b.add(f.args[0], b.const(I64, 5), "sum")
    b.ret(v)
    text = print_function(f)
    assert "define i64 @f(i64 %arg0)" in text
    assert "%sum = add i64 %arg0, 5" in text
    assert "ret i64 %sum" in text


def test_printer_phi_and_branches():
    m = Module("t")
    f = Function("g", FunctionType(I64, (I1,)))
    m.add_function(f)
    e = f.add_block("entry")
    a = f.add_block("a")
    j = f.add_block("j")
    b = IRBuilder(e)
    b.cond_br(f.args[0], a, j)
    IRBuilder(a).br(j)
    bj = IRBuilder(j)
    phi = bj.phi(I64, "x")
    phi.add_incoming(Constant(I64, 1), e)
    phi.add_incoming(Constant(I64, 2), a)
    bj.ret(phi)
    text = print_function(f)
    assert "br i1 %arg0, label %a, label %j" in text
    assert "phi i64 [ 1, %entry ], [ 2, %a ]" in text


def test_module_duplicate_function_rejected():
    m = Module("t")
    m.add_function(Function("f", FunctionType(VOID, ())))
    with pytest.raises(IRError):
        m.add_function(Function("f", FunctionType(VOID, ())))
