"""Extensions implementing the paper's Sec. VII future-work items."""

import pytest

from repro.ir.passes import O3Options
from repro.jit import BinaryTransformer
from repro.lift import FunctionSignature
from repro.lift.fixation import FixedMemory
from repro.stencil.jacobi import JacobiSetup, StencilWorkspace, matrices_equal
from repro.stencil.sources import LINE_SIGNATURE


@pytest.fixture(scope="module")
def ws():
    return StencilWorkspace(JacobiSetup(sz=17, sweeps=2))


@pytest.fixture(scope="module")
def reference(ws):
    ws.reset_matrices()
    return ws.reference_sweeps(2)


def _run(ws, addr, reference):
    ws.sim.invalidate_code()
    ws.reset_matrices()
    stats = ws.run_sweeps(addr, line=True, stencil_arg=ws.flat.addr)
    assert matrices_equal(ws.read_matrix(1), reference)
    return ws.cycles_per_cell(stats)


def test_explicit_vectorization_api(ws, reference):
    """llvm_vectorized: the first-class version of -force-vector-width=2."""
    sig = FunctionSignature(tuple(LINE_SIGNATURE), None)
    tx = BinaryTransformer(ws.image)
    scalar = tx.llvm_fixed("line_flat", sig,
                           {0: FixedMemory(ws.flat.addr, ws.flat.size)},
                           name="k.ext.scalar")
    vec = tx.llvm_vectorized("line_flat", sig,
                             {0: FixedMemory(ws.flat.addr, ws.flat.size)},
                             name="k.ext.vec")
    c_scalar = _run(ws, scalar.addr, reference)
    c_vec = _run(ws, vec.addr, reference)
    assert c_vec < c_scalar  # explicit vectorization pays off
    # and the o3 options of the transformer are restored
    assert tx.o3_options.force_vector_width == 0


def test_lightweight_pipeline_quality_vs_cost(ws, reference):
    """Sec. VII: a small pass subset as cheap DBrew post-processing.

    The lightweight pipeline must (a) be meaningfully cheaper to run than
    full -O3 and (b) recover most of the DBrew+LLVM quality.
    """
    from repro.bench.modes import _dbrew_rewrite

    dbrew_addr = _dbrew_rewrite(ws, "flat", True, "k.ext.dbrew")
    sig = FunctionSignature(tuple(LINE_SIGNATURE), None)

    full_tx = BinaryTransformer(ws.image)
    full = full_tx.llvm_identity(dbrew_addr, sig, name="k.ext.full")

    light_tx = BinaryTransformer(ws.image, o3_options=O3Options.lightweight())
    light = light_tx.llvm_identity(dbrew_addr, sig, name="k.ext.light")

    c_dbrew = _run(ws, dbrew_addr, reference)
    c_full = _run(ws, full.addr, reference)
    c_light = _run(ws, light.addr, reference)

    # quality: lightweight beats raw DBrew and is within 40% of full -O3
    assert c_light < c_dbrew
    assert c_light <= 1.4 * c_full
    # cost: the optimize stage must not regress (strict comparisons are
    # left to the benchmarks, which average over rounds)
    assert light.optimize_seconds <= full.optimize_seconds * 1.25


def test_lightweight_options_shape():
    o = O3Options.lightweight()
    assert not o.enable_gvn and not o.enable_unroll and not o.enable_inline
    assert o.enable_mem2reg  # the essential pass stays
