"""End-to-end BinaryTransformer tests plus a three-way differential:
native simulation vs lifted-IR interpretation vs re-JITted simulation."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc import compile_c
from repro.cpu import Simulator
from repro.ir import Interpreter, verify
from repro.jit import BinaryTransformer
from repro.lift import FunctionSignature
from repro.lift.fixation import FixedMemory

PROGRAMS = [
    # (source, fn, param classes, ret class, test args)
    ("long f(long a, long b) { return a * b - (a ^ b); }", "f", ("i", "i"), "i",
     [(3, 4), (100, -7), (0, 0)]),
    ("long f(long n) { long s = 1; while (n > 1) { s *= n; n--; } return s; }",
     "f", ("i",), "i", [(1,), (5,), (10,)]),
    ("double f(double x, double y) { if (x < y) return y - x; return x * y; }",
     "f", ("f", "f"), "f", [(1.0, 2.0), (3.0, 0.5)]),
    ("long f(long a) { long r = 0; for (long i = 0; i < 16; i++) if ((a >> i) & 1) r++; return r; }",
     "f", ("i",), "i", [(0xFFFF,), (0b1010101,), (0,)]),
    ("long f(long a, long b, long c) { return a > b ? (b > c ? b : c) : (a > c ? a : c); }",
     "f", ("i", "i", "i"), "i", [(1, 2, 3), (3, 2, 1), (2, 3, 1)]),
]


@pytest.mark.parametrize("src,fn,params,ret,cases", PROGRAMS)
def test_three_way_differential(src, fn, params, ret, cases):
    prog = compile_c(src)
    img = prog.image
    sim = Simulator(img)
    tx = BinaryTransformer(img)
    res = tx.llvm_identity(fn, FunctionSignature(params, ret), name=fn + "_tx")
    verify(res.function)
    interp = Interpreter(res.module, img.memory)
    sim.invalidate_code()
    for case in cases:
        iargs = tuple(a & (2**64 - 1) for a in case if isinstance(a, int))
        fargs = tuple(a for a in case if isinstance(a, float))
        if ret == "i":
            want = sim.call_int(fn, iargs, fargs)
            got_jit = sim.call_int(fn + "_tx", iargs, fargs)
            got_ir = interp.run(res.function, list(iargs) + list(fargs))
            got_ir = got_ir - 2**64 if got_ir >= 2**63 else got_ir
        else:
            want = sim.call_f64(fn, iargs, fargs)
            got_jit = sim.call_f64(fn + "_tx", iargs, fargs)
            got_ir = interp.run(res.function, list(iargs) + list(fargs))
        assert got_jit == want, (case, got_jit, want)
        assert got_ir == want, (case, got_ir, want)


def test_transform_reports_stage_timings():
    prog = compile_c("long f(long a) { return a + 1; }")
    tx = BinaryTransformer(prog.image)
    res = tx.llvm_identity("f", FunctionSignature(("i",), "i"))
    assert res.lift_seconds > 0
    assert res.optimize_seconds > 0
    assert res.codegen_seconds > 0
    assert res.total_seconds == pytest.approx(
        res.lift_seconds + res.optimize_seconds + res.codegen_seconds
    )


def test_llvm_fixed_specializes_memory():
    prog = compile_c("""
    long f(long* cfg, long x) { return cfg[0] * x + cfg[1]; }
    """)
    img = prog.image
    data = img.alloc_data(16)
    img.memory.write_u64(data, 3)
    img.memory.write_u64(data + 8, 100)
    tx = BinaryTransformer(img)
    res = tx.llvm_fixed("f", FunctionSignature(("i", "i"), "i"),
                        {0: FixedMemory(data, 16)}, name="f_fix")
    sim = Simulator(img)
    sim.invalidate_code()
    assert sim.call_int("f_fix", (0, 7)) == 121
    # the constants are baked in: loads from the region are gone
    assert not any(i.opcode == "load" for i in res.function.instructions())


def test_llvm_fixed_scalar_parameter():
    prog = compile_c("long f(long a, long b) { return a * b; }")
    tx = BinaryTransformer(prog.image)
    res = tx.llvm_fixed("f", FunctionSignature(("i", "i"), "i"),
                        {0: 9}, name="f_fix9")
    sim = Simulator(prog.image)
    sim.invalidate_code()
    assert sim.call_int("f_fix9", (12345, 6)) == 54


def test_llvm_fixed_double_parameter():
    prog = compile_c("double f(double k, double x) { return k * x; }")
    tx = BinaryTransformer(prog.image)
    res = tx.llvm_fixed("f", FunctionSignature(("f", "f"), "f"),
                        {0: 2.5}, name="f_k")
    sim = Simulator(prog.image)
    sim.invalidate_code()
    assert sim.call_f64("f_k", (), (0.0, 4.0)) == 10.0


def test_dbrew_then_llvm_composition():
    prog = compile_c("""
    long f(long* v, long n) {
        long s = 0;
        for (long i = 0; i < n; i++) s += v[i] * v[i];
        return s;
    }
    """)
    img = prog.image
    v = img.alloc_data(8 * 4)
    for i in range(4):
        img.memory.write_u64(v + 8 * i, i + 1)
    from repro.dbrew import Rewriter
    r = Rewriter(img, "f").set_signature(("i", "i")) \
        .set_par(0, v).set_par(1, 4).set_mem(v, v + 32)
    dbrew_addr = r.rewrite(name="f_dbrew")
    tx = BinaryTransformer(img)
    res = tx.llvm_identity(dbrew_addr, FunctionSignature(("i", "i"), "i"),
                           name="f_both")
    sim = Simulator(img)
    sim.invalidate_code()
    want = sum((i + 1) ** 2 for i in range(4))
    assert sim.call_int("f_dbrew", (0, 0)) == want
    assert sim.call_int("f_both", (0, 0)) == want
    # LLVM post-processing must not be worse than raw DBrew output
    c_dbrew = sim.call("f_dbrew", (0, 0)).stats.cycles
    c_both = sim.call("f_both", (0, 0)).stats.cycles
    assert c_both <= c_dbrew


# -- randomized differential over generated C programs ------------------------------

_ops = ["+", "-", "*", "&", "|", "^"]


@st.composite
def expr(draw, depth=0):
    if depth > 2 or draw(st.booleans()):
        return draw(st.sampled_from(["a", "b", str(draw(st.integers(-100, 100)))]))
    lhs = draw(expr(depth + 1))
    rhs = draw(expr(depth + 1))
    op = draw(st.sampled_from(_ops))
    return f"({lhs} {op} {rhs})"


@settings(max_examples=20, deadline=None)
@given(e=expr(), a=st.integers(-(2**30), 2**30), b=st.integers(-(2**30), 2**30))
def test_random_expression_differential(e, a, b):
    src = f"long f(long a, long b) {{ return {e}; }}"
    prog = compile_c(src)
    img = prog.image
    sim = Simulator(img)
    tx = BinaryTransformer(img)
    tx.llvm_identity("f", FunctionSignature(("i", "i"), "i"), name="f_tx")
    sim.invalidate_code()
    ua, ub = a & (2**64 - 1), b & (2**64 - 1)
    assert sim.call_int("f_tx", (ua, ub)) == sim.call_int("f", (ua, ub))
