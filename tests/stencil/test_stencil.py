"""Stencil case-study tests: data builders, kernels, Jacobi workspace."""

import struct

import pytest

from repro.cpu import Image
from repro.stencil.data import (
    FOUR_POINT, FP_LAYOUT, FS_LAYOUT, SG_LAYOUT, SS_LAYOUT,
    build_flat, build_sorted,
)
from repro.stencil.jacobi import JacobiSetup, StencilWorkspace, matrices_equal


def test_fs_layout_matches_fig7():
    assert FS_LAYOUT.offset_of("ps") == 0
    assert FS_LAYOUT.offset_of("p") == 8
    assert FP_LAYOUT.size == 16


def test_build_flat_bytes():
    img = Image()
    st = build_flat(img)
    mem = img.memory
    assert mem.read_u32(st.addr) == 4  # ps
    for i, (dx, dy, f) in enumerate(FOUR_POINT):
        base = st.addr + 8 + 16 * i
        assert mem.read_f64(base) == f
        assert struct.unpack("<i", mem.read(base + 8, 4))[0] == dx
        assert struct.unpack("<i", mem.read(base + 12, 4))[0] == dy


def test_build_sorted_structure():
    img = Image()
    st = build_sorted(img)
    mem = img.memory
    assert mem.read_u32(st.addr) == 1  # one group (all coefficients 0.25)
    sg = mem.read_u64(st.addr + SS_LAYOUT.offset_of("g"))
    assert mem.read_f64(sg) == 0.25
    assert mem.read_u32(sg + 8) == 4
    sp = mem.read_u64(sg + SG_LAYOUT.offset_of("p"))
    assert struct.unpack("<i", mem.read(sp, 4))[0] == -1  # first dx
    # every region is recorded for set_mem
    assert len(st.regions) == 3


def test_build_sorted_groups_by_coefficient():
    img = Image()
    points = ((-1, 0, 0.25), (1, 0, 0.25), (0, 0, 0.5))
    st = build_sorted(img, points)
    assert img.memory.read_u32(st.addr) == 2  # two coefficient groups


@pytest.fixture(scope="module")
def ws():
    return StencilWorkspace(JacobiSetup(sz=17, sweeps=2))


def test_all_native_kernels_agree_with_reference(ws):
    ws.reset_matrices()
    ref = ws.reference_sweeps(2)
    for kernel, line, sarg in [
        ("apply_direct", False, 0),
        ("apply_flat", False, ws.flat.addr),
        ("apply_sorted", False, ws.sorted.addr),
        ("line_direct", True, 0),
        ("line_flat", True, ws.flat.addr),
        ("line_sorted", True, ws.sorted.addr),
        ("line_call_direct", True, 0),
        ("line_call_flat", True, ws.flat.addr),
        ("line_call_sorted", True, ws.sorted.addr),
    ]:
        ws.reset_matrices()
        ws.run_sweeps(kernel, line=line, stencil_arg=sarg)
        assert matrices_equal(ws.read_matrix(1), ref), kernel


def test_boundary_preserved(ws):
    ws.reset_matrices()
    ws.run_sweeps("apply_direct", line=False, stencil_arg=0)
    m = ws.read_matrix(1)
    sz = ws.setup.sz
    for k in range(sz):
        assert m[0][k] == 1.0 and m[sz - 1][k] == 1.0
        assert m[k][0] == 1.0 and m[k][sz - 1] == 1.0


def test_direct_line_kernel_is_vectorized(ws):
    assert "line_direct" in ws.program.vectorized


def test_cycles_accounting_scale_free(ws):
    ws.reset_matrices()
    s1 = ws.run_sweeps("apply_direct", line=False, stencil_arg=0, sweeps=1)
    ws.reset_matrices()
    s2 = ws.run_sweeps("apply_direct", line=False, stencil_arg=0, sweeps=2)
    c1 = ws.cycles_per_cell(s1, sweeps=1)
    c2 = ws.cycles_per_cell(s2, sweeps=2)
    assert c1 == pytest.approx(c2, rel=0.01)


def test_extrapolation_formula(ws):
    ws.reset_matrices()
    stats = ws.run_sweeps("apply_direct", line=False, stencil_arg=0, sweeps=1)
    per_cell = ws.cycles_per_cell(stats, sweeps=1)
    secs = ws.extrapolated_seconds(stats, sweeps=1)
    paper_cells = (649 - 2) ** 2 * 50_000
    assert secs == pytest.approx(
        per_cell * paper_cells
        / (ws.costs.clock_ghz * 1e9 * ws.costs.effective_parallelism)
    )


def test_jacobi_converges_towards_boundary():
    ws2 = StencilWorkspace(JacobiSetup(sz=9, sweeps=1))
    ws2.reset_matrices()
    # even sweep count: the ping-pong result lands back in m1
    ws2.run_sweeps("apply_direct", line=False, stencil_arg=0, sweeps=200)
    m = ws2.read_matrix(1)
    # after many sweeps the interior approaches the boundary value 1.0
    assert m[4][4] > 0.9
