"""Tracer unit tests: nesting, cross-thread adoption, export, report."""

from __future__ import annotations

import json
import threading

from repro.obs import Span, Tracer, trace_to_chrome
from repro.obs.export import metrics_to_json, write_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import build_breakdown, format_breakdown, main


class FakeClock:
    """Deterministic clock: each read advances by ``tick`` seconds."""

    def __init__(self, tick: float = 1e-3) -> None:
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        self.now += self.tick
        return self.now


def test_disabled_tracer_records_nothing():
    tr = Tracer()
    assert not tr.enabled
    with tr.span("x") as s:
        assert s is None
    tr.instant("ev")
    assert tr.spans == [] and tr.events == []


def test_span_nesting_and_parent_ids():
    tr = Tracer()
    tr.enable()
    with tr.span("outer") as outer:
        assert tr.current() is outer
        with tr.span("inner") as inner:
            assert inner.parent_id == outer.span_id
        with tr.span("inner2") as inner2:
            assert inner2.parent_id == outer.span_id
    assert outer.parent_id is None
    assert tr.current() is None
    assert [s.name for s in tr.spans] == ["inner", "inner2", "outer"]
    assert all(s.duration > 0 for s in tr.spans)


def test_start_finish_attrs_and_clear():
    tr = Tracer()
    tr.enable()
    s = tr.start("work", {"k": 7})
    tr.finish(s)
    assert tr.spans[0].attrs == {"k": 7}
    tr.clear()
    assert tr.spans == [] and tr.events == []
    s2 = tr.start("again")
    tr.finish(s2)
    assert s2.span_id == 1, "clear() restarts span ids"


def test_max_spans_cap():
    tr = Tracer(max_spans=2)
    tr.enable()
    for i in range(5):
        tr.finish(tr.start(f"s{i}"))
    assert len(tr.spans) == 2


def test_cross_thread_adoption():
    """A worker adopting the submit-site span nests its spans under it."""
    tr = Tracer()
    tr.enable()
    recorded = {}

    def worker(parent: Span | None) -> None:
        token = tr.adopt(parent)
        try:
            with tr.span("child") as child:
                recorded["parent_id"] = child.parent_id
        finally:
            tr.release(token)
        recorded["after"] = tr.current()

    with tr.span("submit") as submit:
        t = threading.Thread(target=worker, args=(tr.current(),))
        t.start()
        t.join()
    assert recorded["parent_id"] == submit.span_id
    assert recorded["after"] is None, "release() restores the worker context"


def test_instant_events_recorded_only_when_enabled():
    tr = Tracer()
    tr.instant("off")
    tr.enable()
    tr.instant("on", {"tier": 2})
    assert [e[0] for e in tr.events] == ["on"]
    assert tr.events[0][3] == {"tier": 2}


# -- export -----------------------------------------------------------------


def test_chrome_export_shape(tmp_path):
    tr = Tracer(clock=FakeClock())
    tr.enable()
    with tr.span("outer", {"addr": 1}):
        with tr.span("inner"):
            pass
        tr.instant("mark", {"x": 1})
    open_span = tr.start("never-finished")  # still open at export time
    doc = trace_to_chrome(tr)
    tr.finish(open_span)  # close it afterwards: the context var is global
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert {e["name"] for e in complete} == {"outer", "inner"}
    assert [e["name"] for e in instants] == ["mark"]
    for e in complete:
        assert e["dur"] > 0 and e["ts"] >= 0
        assert "span_id" in e["args"]
    outer = next(e for e in complete if e["name"] == "outer")
    inner = next(e for e in complete if e["name"] == "inner")
    assert inner["args"]["parent_id"] == outer["args"]["span_id"]
    assert "never-finished" not in {e["name"] for e in events}
    # round-trips through json and the file writer
    path = tmp_path / "trace.json"
    write_chrome_trace(path, tr)
    assert json.loads(path.read_text())["traceEvents"]


def test_metrics_to_json_uses_registry():
    r = MetricsRegistry()
    r.counter("a").inc(3)
    assert metrics_to_json(r)["a"] == 3


# -- report -----------------------------------------------------------------


def _synthetic_trace() -> dict:
    """transform(10 ticks of children + overhead) with staged children."""
    tr = Tracer(clock=FakeClock(tick=1.0))
    tr.enable()
    with tr.span("transform"):
        with tr.span("lift"):
            with tr.span("lift.block"):
                pass
        with tr.span("o3.pass.gvn"):
            pass
        with tr.span("jit.compile"):
            with tr.span("jit.lower"):
                pass
    return trace_to_chrome(tr)


def test_build_breakdown_buckets_and_coverage():
    b = build_breakdown(_synthetic_trace())
    assert set(b["stages_us"]) >= {"lift", "o3", "encode"}
    # every staged span's self-time lands in exactly one bucket and the
    # totals never exceed the wall clock of the root span
    assert b["staged_total_us"] <= b["wall_us"] + 1e-6
    assert 0.0 < b["coverage"] <= 1.0
    assert b["stages_us"]["o3"] > 0
    assert b["stages_us"]["encode"] > 0
    assert b["span_counts"]["o3.pass.gvn"] == 1


def test_format_breakdown_mentions_stages():
    text = format_breakdown(build_breakdown(_synthetic_trace()))
    for word in ("decode", "lift", "o3", "encode", "wall"):
        assert word in text


def test_report_cli(tmp_path, capsys):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(_synthetic_trace()))
    mpath = tmp_path / "metrics.json"
    mpath.write_text(json.dumps({"cache.stores": 2}))
    assert main([str(path), "--metrics", str(mpath)]) == 0
    out = capsys.readouterr().out
    assert "o3" in out and "cache.stores" in out
