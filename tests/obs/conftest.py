"""Shared hygiene for the obs tests: the current-span context var is
process-global, so a test that leaves a span open must not poison the
parent attribution of every test after it."""

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def _clean_span_context():
    yield
    trace._CURRENT.set(None)
    trace.TRACER.disable()
