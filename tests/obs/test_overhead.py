"""Trace-overhead regression tests (the DESIGN §10 cost contract).

Disabled tracing must be a single attribute check on every hot path:

* ``DispatchHandle.address()`` — the zero-stall dispatch from PR 4 — is
  never wrapped when tracing is off (checked structurally *and* by a
  lap-interleaved timing comparison against the bare class function);
* a warm ``GuardedTransformer.transform`` (machine-stage cache hit) pays
  at most 5% over calling its untraced ``_transform_impl`` directly.

With tracing enabled, coverage must be complete where the tentpole
promises it: every O3 pass application gets a matching span.
"""

from __future__ import annotations

import statistics
import time

from repro.cache import SpecializationCache
from repro.cc import compile_c
from repro.cpu import Image
from repro.guard import GuardedTransformer
from repro.ir import Module, verify
from repro.ir.passes import run_o3
from repro.lift import FunctionSignature, LiftOptions, lift_function
from repro.obs.trace import TRACER
from repro.tier import TieredEngine, TierPolicy
from repro.tier.handle import DispatchHandle

MAX_DISABLED_OVERHEAD = 0.05

#: thresholds no test run can reach: the handle never promotes, so the
#: timing loop below exercises exactly the dispatch hot path
_COLD = TierPolicy(promote_calls=(10**9, 10**9))


def _median_pair(fn_a, fn_b, rounds: int) -> tuple[float, float]:
    """Median of interleaved laps per arm (robust to drift/preemption)."""
    def lap(fn):
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    pairs = [(lap(fn_a), lap(fn_b)) for _ in range(rounds)]
    return (statistics.median(p[0] for p in pairs),
            statistics.median(p[1] for p in pairs))


# -- disabled path: dispatch ------------------------------------------------


def test_dispatch_hot_path_structurally_untouched():
    assert not TRACER.enabled
    with TieredEngine(Image(), policy=_COLD) as eng:
        h = eng.register(0x1000, FunctionSignature(("i",), "i"))
        assert "address" not in h.__dict__, \
            "disabled tracing must not shadow the dispatch method"
    # the class-level hot path contains no tracer hooks at all
    names = DispatchHandle.address.__code__.co_names
    assert not any("TR" in n or "trace" in n or "obs" in n for n in names), \
        names


def test_dispatch_disabled_overhead_within_budget():
    assert not TRACER.enabled
    with TieredEngine(Image(), policy=_COLD) as eng:
        h = eng.register(0x1000, FunctionSignature(("i",), "i"))
        plain = DispatchHandle.address
        n = 20_000

        def bare():
            for _ in range(n):
                plain(h)

        def dispatched():
            for _ in range(n):
                h.address()

        base, traced_off = _median_pair(bare, dispatched, rounds=40)
    overhead = traced_off / base - 1.0
    assert overhead < MAX_DISABLED_OVERHEAD, \
        f"disabled dispatch costs {overhead:+.1%} over the bare hot path"


# -- disabled path: warm guarded transform ----------------------------------


def test_warm_guard_transform_disabled_overhead():
    assert not TRACER.enabled
    prog = compile_c("long f(long a, long b) { return a * b + 3; }")
    guard = GuardedTransformer(prog.image, cache=SpecializationCache())
    sig = FunctionSignature(("i", "i"), "i")
    kwargs = dict(name="f.obs", ladder=("llvm",))
    out = guard.transform("f", sig, **kwargs)  # cold: warms the cache
    assert not out.degraded
    warm = guard.transform("f", sig, **kwargs)
    assert warm.result is not None and warm.result.cache_stage is not None, \
        "the timing loop below must run on the machine-cache hit path"

    base, traced_off = _median_pair(
        lambda: guard._transform_impl("f", sig, None, mem_regions=(),
                                      probes=(), dbrew_func=None, **kwargs),
        lambda: guard.transform("f", sig, **kwargs),
        rounds=60)
    overhead = traced_off / base - 1.0
    assert overhead < MAX_DISABLED_OVERHEAD, \
        f"disabled-tracing warm transform costs {overhead:+.1%}"


# -- enabled path: complete O3 coverage -------------------------------------


def test_every_o3_pass_application_has_a_span():
    prog = compile_c("""
    long f(long a, long b) {
        long s = 0;
        for (long i = 0; i < a; i++) s += i * b;
        return s;
    }
    """)
    img = prog.image
    m = Module("t")
    f = lift_function(img.memory, img.symbol("f"),
                      FunctionSignature(("i", "i"), "i"),
                      LiftOptions(name="f.traced"), m)
    verify(f)

    TRACER.clear()
    TRACER.enable()
    try:
        report = run_o3(f, validate=True)
    finally:
        TRACER.disable()

    assert report.pass_log, "validate mode logs every pass application"
    logged = sorted(f"o3.pass.{v.pass_name}" for v in report.pass_log)
    spans = sorted(s.name for s in TRACER.spans
                   if s.name.startswith("o3.pass.")
                   and (s.attrs or {}).get("func") == "f.traced")
    assert spans == logged, "span multiset must match the pass log exactly"
    TRACER.clear()
