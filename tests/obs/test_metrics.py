"""Metrics registry unit tests + the stats-unification contract.

The second half pins the satellite-4 guarantee: the legacy stats objects
(``CacheStats``, ``GuardStats``, ``TierStats``) are thin views over
registry-owned metrics, so one ``registry.snapshot()``/``reset()`` is
authoritative and a shared registry aggregates across instances.
"""

from __future__ import annotations

import pytest

from repro.cache.cache import CacheStats, SpecializationCache
from repro.guard.guarded import GuardStats
from repro.obs.metrics import (
    Counter,
    CounterFamily,
    CounterView,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.tier.engine import TierStats


# -- primitives -------------------------------------------------------------


def test_counter_and_gauge_basics():
    c = Counter("c")
    c.inc()
    c.inc(4)
    assert int(c) == c.value == 5
    c.reset()
    assert c.value == 0
    g = Gauge("g")
    g.inc(2.5)
    g.dec()
    assert g.value == 1.5
    g.set(-3.0)
    assert g.value == -3.0


def test_histogram_buckets_quantile_reset():
    h = Histogram("h", bounds=(1.0, 10.0, 100.0))
    for v in (0.5, 1.0, 5.0, 50.0, 500.0):
        h.observe(v)
    # <=1, <=10, <=100, +inf
    assert h.counts == [2, 1, 1, 1]
    assert h.total == 5 and h.sum == pytest.approx(556.5)
    assert h.quantile(0.0) == 1.0
    assert h.quantile(0.5) == 10.0
    assert h.quantile(1.0) == float("inf")
    h.reset()
    assert h.total == 0 and h.counts == [0, 0, 0, 0]
    with pytest.raises(ValueError):
        Histogram("empty", bounds=())


def test_registry_get_or_create_and_type_mismatch():
    r = MetricsRegistry()
    assert r.counter("x") is r.counter("x")
    with pytest.raises(TypeError):
        r.gauge("x")
    h = r.histogram("lat", (1.0,))
    assert r.histogram("lat", (2.0,)) is h, "bounds fixed at creation"


def test_family_is_a_dict_and_resets_in_place():
    r = MetricsRegistry()
    fam = r.family("served", {"a": 0, "b": 0})
    fam["a"] += 2
    fam.inc("c")
    assert dict(fam) == {"a": 2, "b": 0, "c": 1}
    assert isinstance(fam, dict)
    alias = r.family("served")
    assert alias is fam, "same registry + name => same family"
    r.reset()
    assert dict(fam) == {"a": 0, "b": 0, "c": 0}, "reset zeroes, keeps keys"


def test_snapshot_includes_views_reset_spares_them():
    r = MetricsRegistry()
    r.counter("n").inc(3)
    state = {"ewma": 7.5}
    r.view("derived", lambda: dict(state))
    snap = r.snapshot()
    assert snap["n"] == 3 and snap["derived"] == {"ewma": 7.5}
    r.view("broken", lambda: 1 / 0)
    assert r.snapshot()["broken"] is None, "a dead view reports None"
    r.reset()
    assert r.snapshot()["n"] == 0
    assert r.snapshot()["derived"] == {"ewma": 7.5}, "views survive reset"


def test_counter_view_descriptor_protocol():
    class S:
        hits = CounterView("_hits")

        def __init__(self, r):
            self._hits = r.counter("s.hits")

    r = MetricsRegistry()
    s = S(r)
    s.hits += 3
    assert s.hits == 3
    assert r.snapshot()["s.hits"] == 3, "attribute writes reach the registry"
    assert isinstance(S.hits, CounterView)


# -- stats unification (satellite 4) ----------------------------------------


def test_cache_stats_registry_is_authoritative():
    stats = CacheStats()
    stats.disk_hits += 2
    stats.stage_hits["machine"] += 1
    snap = stats.registry.snapshot()
    assert snap["cache.disk_hits"] == 2
    assert snap["cache.stage_hits"]["machine"] == 1
    stats.registry.reset()
    assert stats.disk_hits == 0 and stats.stage_hits["machine"] == 0


def test_guard_stats_registry_is_authoritative():
    stats = GuardStats()
    stats.transforms += 1
    stats.served_by["llvm"] += 1
    snap = stats.registry.snapshot()
    assert snap["guard.transforms"] == 1
    assert snap["guard.served_by"]["llvm"] == 1
    stats.reset()
    assert stats.transforms == 0 and stats.served_by["llvm"] == 0


def test_tier_stats_registry_is_authoritative():
    stats = TierStats()
    stats.refixes += 1
    stats.installs[2] += 1
    stats.compile_seconds[1] += 0.25
    snap = stats.registry.snapshot()
    assert snap["tier.refixes"] == 1
    assert snap["tier.installs"][2] == 1
    assert snap["tier.compile_seconds"][1] == 0.25
    assert stats.snapshot()["installs"] == {1: 0, 2: 1}, "legacy shape intact"
    stats.reset()
    assert stats.refixes == 0 and stats.installs[2] == 0


def test_shared_registry_aggregates_across_instances():
    """Two stats objects on one registry share the underlying counters —
    how a TieredEngine aggregates its per-job GuardedTransformers."""
    r = MetricsRegistry()
    a, b = GuardStats(r), GuardStats(r)
    a.transforms += 1
    b.transforms += 2
    assert a.transforms == b.transforms == 3
    assert r.snapshot()["guard.transforms"] == 3


def test_private_registries_stay_isolated():
    a, b = GuardStats(), GuardStats()
    a.transforms += 5
    assert b.transforms == 0


def test_specialization_cache_flight_counters_in_registry():
    cache = SpecializationCache()
    cache.flights.run("k", lambda: 1)
    snap = cache.registry.snapshot()
    assert snap["cache.flight.led"] == 1
    assert cache.flights.led == 1, "legacy property reads the same counter"
