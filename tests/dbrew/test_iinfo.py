"""Instruction dataflow facts (repro.dbrew.iinfo)."""

from repro.dbrew.iinfo import analyze
from repro.x86.asmparser import parse_line


def facts(line):
    return analyze(parse_line(line))


def test_mov_reg_reg():
    i = facts("mov rax, rbx")
    assert i.reads == {("gp", 3)}
    assert i.writes == {("gp", 0)}
    assert not i.mem_read and not i.mem_write


def test_add_is_rmw():
    i = facts("add rax, rbx")
    assert ("gp", 0) in i.reads and ("gp", 0) in i.writes
    assert "z" in i.writes_flags


def test_cmp_reads_both_writes_none():
    i = facts("cmp rax, rbx")
    assert i.reads == {("gp", 0), ("gp", 3)}
    assert i.writes == set()


def test_load_reads_address_registers():
    i = facts("mov rax, [rsi + 8*rcx]")
    assert ("gp", 6) in i.reads and ("gp", 1) in i.reads
    assert i.mem_read and not i.mem_write
    assert i.writes == {("gp", 0)}


def test_store_dst_memory():
    i = facts("mov [rdi], rax")
    assert i.mem_write and not i.mem_read
    assert ("gp", 7) in i.reads and ("gp", 0) in i.reads


def test_rmw_memory_dst():
    i = facts("add qword ptr [rdi], rax")
    assert i.mem_read and i.mem_write


def test_lea_is_not_a_memory_access():
    i = facts("lea rax, [rsi + 8*rcx]")
    assert not i.mem_read and not i.mem_write
    assert ("gp", 6) in i.reads


def test_movsd_load_form_is_write_only():
    i = facts("movsd xmm0, [rdi]")
    assert ("xmm", 0) in i.writes
    assert ("xmm", 0) not in i.reads


def test_addsd_merges_dst():
    i = facts("addsd xmm0, xmm1")
    assert ("xmm", 0) in i.reads and ("xmm", 0) in i.writes
    assert ("xmm", 1) in i.reads


def test_cmov_reads_dst_and_flags():
    i = facts("cmovl rax, rbx")
    assert ("gp", 0) in i.reads
    assert i.reads_flags == "so"


def test_cqo_implicit_regs():
    i = facts("cqo")
    assert i.reads == {("gp", 0)}
    assert i.writes == {("gp", 2)}


def test_idiv_implicit_regs():
    i = facts("idiv rbx")
    assert {("gp", 0), ("gp", 2), ("gp", 3)} <= i.reads
    assert {("gp", 0), ("gp", 2)} <= i.writes


def test_push_touches_stack():
    i = facts("push rbx")
    assert ("gp", 4) in i.reads and ("gp", 4) in i.writes
    assert i.mem_write


def test_setcc_writes_only():
    i = facts("sete al")
    assert ("gp", 0) in i.writes
    assert ("gp", 0) not in i.reads
    assert i.reads_flags == "z"


def test_ucomisd_reads_only_flags_out():
    i = facts("ucomisd xmm0, xmm1")
    assert ("xmm", 0) in i.reads and ("xmm", 1) in i.reads
    assert i.writes == set()
    assert "z" in i.writes_flags and "c" in i.writes_flags
