"""DBrew rewriter tests: emulation, specialization, forks, widening, API."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc import compile_c
from repro.cpu import Image, Simulator
from repro.dbrew import Rewriter
from repro.dbrew.metastate import MetaState, MetaValue, VSP_BASE, is_stack_address
from repro.errors import RewriteError


def compile_and_sim(src):
    prog = compile_c(src)
    return prog.image, Simulator(prog.image)


# -- metastate ----------------------------------------------------------------


def test_metavalue_masks():
    assert MetaValue.of(-1).value == 2**64 - 1
    assert MetaValue.of(1 << 127, 128).value == 1 << 127


def test_stack_address_classification():
    assert is_stack_address(VSP_BASE)
    assert is_stack_address(VSP_BASE - 4096)
    assert not is_stack_address(0x400000)


def test_stack_slot_subword_reads():
    st_ = MetaState()
    st_.stack_write(-8, 8, MetaValue.of(0x1122334455667788))
    assert st_.stack_read(-8, 4).value == 0x55667788
    assert st_.stack_read(-4, 4).value == 0x11223344
    assert st_.stack_read(-6, 2).value == 0x5566


def test_stack_slot_partial_write_merges():
    st_ = MetaState()
    st_.stack_write(-8, 8, MetaValue.of(0))
    st_.stack_write(-8, 4, MetaValue.of(0xAABBCCDD))
    assert st_.stack_read(-8, 8).value == 0xAABBCCDD


def test_stack_unknown_poisons():
    st_ = MetaState()
    st_.stack_write(-8, 8, MetaValue.of(7))
    st_.stack_write(-8, 4, MetaValue.unknown())
    assert not st_.stack_read(-8, 8).known


def test_digest_distinguishes_values():
    a = MetaState()
    b = MetaState()
    assert a.digest() == b.digest()
    b.gpr[3] = MetaValue.of(9)
    assert a.digest() != b.digest()


# -- basic rewriting ----------------------------------------------------------------


def test_identity_rewrite_preserves_semantics():
    img, sim = compile_and_sim(
        "long f(long a, long b) { if (a < b) return a * 3; return b - a; }"
    )
    r = Rewriter(img, "f").set_signature(("i", "i"))
    addr = r.rewrite(name="f_id")
    assert addr != img.symbol("f")
    sim.invalidate_code()
    for a, b in [(1, 5), (5, 1), (0, 0), (2**63, 1)]:
        assert sim.call_int("f_id", (a, b)) == sim.call_int("f", (a, b))


def test_full_constant_folding():
    img, sim = compile_and_sim("long f(long a, long b) { return a * b + 3; }")
    r = Rewriter(img, "f").set_signature(("i", "i")).set_par(0, 6).set_par(1, 7)
    addr = r.rewrite(name="f_c")
    sim.invalidate_code()
    assert sim.call_int("f_c", (0, 0)) == 45
    res = sim.call("f_c", (0, 0))
    # specialized code is a handful of instructions
    assert res.stats.instructions < 10


def test_branch_folding_with_known_condition():
    img, sim = compile_and_sim(
        "long f(long a, long b) { if (a < 10) return b + 1; return b - 1; }"
    )
    r = Rewriter(img, "f").set_signature(("i", "i")).set_par(0, 5)
    addr = r.rewrite(name="f_b")
    sim.invalidate_code()
    assert sim.call_int("f_b", (999, 41)) == 42
    # the not-taken path is not even in the generated code
    code = img.function_bytes("f_b")
    from repro.x86.decoder import decode_block
    instrs = decode_block(code, addr, len(code), base_addr=addr)
    assert not any(i.mnemonic.startswith("j") and i.mnemonic != "jmp"
                   for i in instrs)


def test_setmem_folds_loads():
    img, sim = compile_and_sim("long f(long* p, long x) { return p[0] * x + p[1]; }")
    data = img.alloc_data(16)
    img.memory.write_u64(data, 100)
    img.memory.write_u64(data + 8, 23)
    r = Rewriter(img, "f").set_signature(("i", "i")) \
        .set_par(0, data).set_mem(data, data + 16)
    r.rewrite(name="f_m")
    sim.invalidate_code()
    assert sim.call_int("f_m", (0, 7)) == 723
    # no loads from the fixed region remain
    code = img.function_bytes("f_m")
    from repro.x86.decoder import decode_block
    from repro.x86.instr import Mem
    instrs = decode_block(code, img.symbol("f_m"), len(code), base_addr=img.symbol("f_m"))
    for ins in instrs:
        for op in ins.operands:
            if isinstance(op, Mem) and op.is_absolute:
                assert not data <= op.disp < data + 16


def test_known_pointer_without_setmem_keeps_loads():
    img, sim = compile_and_sim("long f(long* p) { return p[0]; }")
    data = img.alloc_data(8)
    img.memory.write_u64(data, 55)
    r = Rewriter(img, "f").set_signature(("i",)).set_par(0, data)
    r.rewrite(name="f_nm")
    sim.invalidate_code()
    img.memory.write_u64(data, 66)  # data may change at runtime
    assert sim.call_int("f_nm", (0,)) == 66


def test_loop_full_unroll_with_known_bound():
    img, sim = compile_and_sim("""
    long f(long* v, long n) {
        long s = 0;
        for (long i = 0; i < n; i++) s += v[i];
        return s;
    }
    """)
    v = img.alloc_data(8 * 5)
    for i in range(5):
        img.memory.write_u64(v + 8 * i, i + 1)
    r = Rewriter(img, "f").set_signature(("i", "i")).set_par(1, 5)
    r.rewrite(name="f_u")
    sim.invalidate_code()
    res = sim.call("f_u", (v, 0))
    assert res.int_value == 15
    assert res.stats.taken_branches == 0  # fully unrolled: straight line


def test_generic_loop_closes_via_digest():
    img, sim = compile_and_sim("""
    long f(long* v, long n) {
        long s = 0;
        for (long i = 0; i < n; i++) s += v[i];
        return s;
    }
    """)
    v = img.alloc_data(8 * 64)
    for i in range(64):
        img.memory.write_u64(v + 8 * i, i)
    r = Rewriter(img, "f").set_signature(("i", "i"))
    r.rewrite(name="f_g")
    sim.invalidate_code()
    assert sim.call_int("f_g", (v, 64)) == sum(range(64))
    assert r.stats.points < 10  # the loop must not unroll 64 times


def test_widening_bounds_unrolling():
    img, sim = compile_and_sim("""
    long f(long* v, long n) {
        long s = 0;
        for (long i = 0; i < n; i++) s += v[i];
        return s;
    }
    """)
    v = img.alloc_data(8 * 64)
    for i in range(64):
        img.memory.write_u64(v + 8 * i, 2 * i)
    r = Rewriter(img, "f").set_signature(("i", "i")).set_par(1, 64)
    r.set_unroll_limit(4)
    r.rewrite(name="f_w")
    assert r.stats.widenings >= 1
    sim.invalidate_code()
    assert sim.call_int("f_w", (v, 0)) == sum(2 * i for i in range(64))


def test_call_inlining():
    img, sim = compile_and_sim("""
    long sq(long x) { return x * x; }
    long f(long a) { return sq(a) + sq(a + 1); }
    """)
    r = Rewriter(img, "f").set_signature(("i",))
    r.rewrite(name="f_i")
    sim.invalidate_code()
    res = sim.call("f_i", (5,))
    assert res.int_value == 25 + 36
    assert res.stats.per_mnemonic.get("call", 0) == 0  # calls inlined


def test_call_beyond_inline_depth_emitted():
    img, sim = compile_and_sim("""
    long sq(long x) { return x * x; }
    long f(long a) { return sq(a) + 1; }
    """)
    r = Rewriter(img, "f").set_signature(("i",)).set_inline_depth(0)
    r.rewrite(name="f_d0")
    sim.invalidate_code()
    res = sim.call("f_d0", (6,))
    assert res.int_value == 37
    assert res.stats.per_mnemonic.get("call", 0) == 1


def test_double_parameter_fixation():
    img, sim = compile_and_sim("double f(double a, double b) { return a * b; }")
    r = Rewriter(img, "f").set_signature(("f", "f"), "f").set_par_f64(0, 2.5)
    r.rewrite(name="f_f")
    sim.invalidate_code()
    assert sim.call_f64("f_f", (), (0.0, 4.0)) == 10.0


def test_default_error_handler_returns_original():
    img, _sim = compile_and_sim("long f(long a) { return a; }")
    r = Rewriter(img, "f").set_signature(("i",))
    r.code_size_limit = 1  # impossible budget -> internal error
    addr = r.rewrite(name="f_tiny")
    assert addr == img.symbol("f")  # Sec. II default fallback


def test_custom_error_handler_invoked():
    img, _sim = compile_and_sim("long f(long a) { return a; }")
    r = Rewriter(img, "f").set_signature(("i",))
    r.code_size_limit = 1
    seen = []

    def handler(rw, exc):
        seen.append(exc)
        rw.code_size_limit = 1 << 16  # enlarge the buffer and retry
        return rw._rewrite("f_retry")

    r.error_handler = handler
    addr = r.rewrite()
    assert seen and isinstance(seen[0], RewriteError)
    assert addr == img.symbol("f_retry")


def test_rewriter_is_drop_in_replacement():
    # same signature; extra/ignored fixed args don't change the ABI (Fig. 2)
    img, sim = compile_and_sim("long f(long a, long b) { return a + b; }")
    r = Rewriter(img, "f").set_signature(("i", "i")).set_par(1, 10)
    r.rewrite(name="f_p")
    sim.invalidate_code()
    assert sim.call_int("f_p", (5, 999999)) == 15  # second arg ignored


@settings(max_examples=25, deadline=None)
@given(a=st.integers(min_value=-(2**31), max_value=2**31 - 1),
       b=st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_specialized_matches_original_property(a, b):
    src = """
    long f(long a, long b) {
        long s = 0;
        if (a > b) s = a - b; else s = b - a;
        return s * 3 + (a & b);
    }
    """
    img, sim = compile_and_sim(src)
    want = sim.call_int("f", (a & (2**64 - 1), b & (2**64 - 1)))
    r = Rewriter(img, "f").set_signature(("i", "i")).set_par(0, a)
    r.rewrite(name="f_s")
    sim.invalidate_code()
    got = sim.call_int("f_s", (12345, b & (2**64 - 1)))
    assert got == want


def test_stats_counters():
    img, _sim = compile_and_sim("long f(long a) { return a * 649; }")
    r = Rewriter(img, "f").set_signature(("i",))
    r.rewrite(name="f_st")
    assert r.stats.decoded > 0
    assert r.stats.emitted > 0
    assert r.stats.points >= 1


def test_stack_16_byte_slots():
    from repro.dbrew.metastate import MetaState, MetaValue

    st_ = MetaState()
    v = (0xAAAA << 64) | 0xBBBB
    st_.stack_write(-16, 16, MetaValue.of(v, 128))
    assert st_.stack_read(-16, 16).value == v
    assert st_.stack_read(-16, 8).value == 0xBBBB
    assert st_.stack_read(-8, 8).value == 0xAAAA
    st_.stack_write(-16, 16, MetaValue.unknown())
    assert not st_.stack_read(-16, 16).known
    assert not st_.stack_read(-16, 8).known


def test_vector_spill_through_rewrite():
    """A function that spills a vector to its stack must survive DBrew."""
    img, sim = compile_and_sim("""
    double f(double* a, double* b, long n) {
        double s = 0.0;
        for (long i = 0; i < n; i++) {
            s = s + a[i] * b[i];
        }
        return s;
    }
    """)
    a = img.alloc_data(8 * 4)
    b = img.alloc_data(8 * 4)
    for i in range(4):
        img.memory.write_f64(a + 8 * i, float(i + 1))
        img.memory.write_f64(b + 8 * i, 2.0)
    r = Rewriter(img, "f").set_signature(("i", "i", "i"), "f").set_par(2, 4)
    r.rewrite(name="f_vs")
    sim.invalidate_code()
    assert sim.call_f64("f_vs", (a, b, 0)) == 2 * (1 + 2 + 3 + 4)


def test_fixed_value_in_vsp_sentinel_window_stays_a_value():
    """Regression: a fixed parameter that happens to land inside the
    virtual-stack sentinel window (|v - VSP_BASE| < VSP_WINDOW) must not
    be misread as a rewrite-time stack pointer.  The rewriter pins such
    collisions into the register at entry and tracks them unknown."""
    img, sim = compile_and_sim(
        "long f(long a, long b) { return a + b * 2; }")
    colliding = VSP_BASE + 0x1  # squarely inside the sentinel window
    assert is_stack_address(colliding)
    r = Rewriter(img, "f").set_signature(("i", "i")).set_par(0, colliding)
    addr = r.rewrite(name="f_vsp")
    assert addr != img.symbol("f")
    sim.invalidate_code()
    for b in (0, 7, -3):
        assert sim.call_int("f_vsp", (0, b)) == \
            sim.call_int("f", (colliding, b))


def test_fixed_value_near_window_edges():
    """Both edges of the sentinel window and a just-outside value."""
    img, sim = compile_and_sim("long f(long a, long b) { return a ^ b; }")
    from repro.dbrew.metastate import VSP_WINDOW
    cases = [VSP_BASE - VSP_WINDOW + 1,   # inside, low edge
             VSP_BASE + VSP_WINDOW - 1,   # inside, high edge
             VSP_BASE + VSP_WINDOW]       # outside: folds as a constant
    for i, v in enumerate(cases):
        r = Rewriter(img, "f").set_signature(("i", "i")).set_par(0, v)
        r.rewrite(name=f"f_edge{i}")
        sim.invalidate_code()
        assert sim.call_int(f"f_edge{i}", (0, 5)) == \
            sim.call_int("f", (v, 5))
