"""DBrew on SSE-vectorized input code, and miscellaneous rewriter paths."""

import pytest

from repro.cpu import Image, Simulator
from repro.dbrew import Rewriter
from repro.errors import RewriteError
from repro.stencil.jacobi import JacobiSetup, StencilWorkspace, matrices_equal
from repro.stencil.sources import LINE_SIGNATURE
from repro.x86 import parse_asm
from repro.x86.asm import assemble


def test_dbrew_identity_of_vectorized_kernel():
    """movapd/movupd/addpd/mulpd flow through emulation + emission."""
    ws = StencilWorkspace(JacobiSetup(sz=17, sweeps=2))
    ws.reset_matrices()
    ref = ws.reference_sweeps(2)
    r = Rewriter(ws.image, "line_direct").set_signature(tuple(LINE_SIGNATURE), None)
    addr = r.rewrite(name="ld_db")
    assert addr != ws.image.symbol("line_direct")
    ws.sim.invalidate_code()
    ws.reset_matrices()
    stats = ws.run_sweeps(addr, line=True, stencil_arg=0)
    assert matrices_equal(ws.read_matrix(1), ref)
    # the identity rewrite of already-vectorized code stays vectorized
    native = ws.cycles_per_cell(
        ws.run_sweeps("line_direct", line=True, stencil_arg=0)
    )
    assert ws.cycles_per_cell(stats) < native * 1.15


def _mk(src, name="f"):
    img = Image()
    base = img.next_code_addr()
    code, _ = assemble(parse_asm(src), base=base)
    img.add_function(name, code)
    return img, Simulator(img)


def test_setcc_with_known_flags_is_emulated():
    img, sim = _mk("""
        cmp rdi, 5
        setl al
        movzx eax, al
        ret
    """)
    r = Rewriter(img, "f").set_signature(("i",)).set_par(0, 3)
    addr = r.rewrite(name="f_s")
    sim.invalidate_code()
    res = sim.call("f_s", (999,))
    assert res.int_value == 1
    assert res.stats.per_mnemonic.get("cmp", 0) == 0  # folded away


def test_cmov_known_flags_unknown_data():
    img, sim = _mk("""
        cmp rdi, 5
        cmovl rax, rsi
        ret
    """)
    # rdi fixed below 5: the cmov becomes an unconditional mov of rsi
    r = Rewriter(img, "f").set_signature(("i", "i")).set_par(0, 3)
    addr = r.rewrite(name="f_lt")
    sim.invalidate_code()
    assert sim.call_int("f_lt", (0, 42)) == 42
    # rdi fixed above 5: the cmov disappears entirely
    r2 = Rewriter(img, "f").set_signature(("i", "i")).set_par(0, 9)
    addr2 = r2.rewrite(name="f_ge")
    sim.invalidate_code()
    res = sim.call("f_ge", (0, 42))
    assert res.stats.per_mnemonic.get("cmov", 0) == 0
    assert res.stats.per_mnemonic.get("cmovl", 0) == 0


def test_cmov_unknown_flags_emitted():
    img, sim = _mk("""
        cmp rdi, rsi
        cmovl rdi, rsi
        mov rax, rdi
        ret
    """)
    r = Rewriter(img, "f").set_signature(("i", "i"))
    r.rewrite(name="f_g")
    sim.invalidate_code()
    assert sim.call_int("f_g", (3, 9)) == 9
    assert sim.call_int("f_g", (9, 3)) == 9


def test_known_memory_write_to_runtime_region_is_emitted():
    # a store to a *known* address outside set_mem must still happen at runtime
    img, sim = _mk("""
        mov qword ptr [rdi], 7
        mov rax, 0
        ret
    """)
    dst = img.alloc_data(8)
    r = Rewriter(img, "f").set_signature(("i",)).set_par(0, dst)
    r.rewrite(name="f_st")
    sim.invalidate_code()
    img.memory.write_u64(dst, 0)
    sim.call("f_st", (0,))
    assert img.memory.read_u64(dst) == 7


def test_trace_point_cap_raises():
    img, sim = _mk("""
    head:
        cmp rdi, rsi
        jl other
        add rdi, 1
        jmp head
    other:
        add rsi, 1
        cmp rsi, 100
        jl head
        mov rax, rsi
        ret
    """)
    r = Rewriter(img, "f").set_signature(("i", "i"))
    # pathological: still must terminate (either by widening or by the cap,
    # in which case the default handler falls back to the original)
    addr = r.rewrite(name="f_path")
    sim.invalidate_code()
    name = "f_path" if addr != img.symbol("f") else "f"
    assert sim.call_int(name, (0, 5)) == sim.call_int("f", (0, 5))


def test_fixed_double_param_with_mixed_signature():
    img, sim = _mk("""
        addsd xmm0, xmm1
        cvttsd2si rax, xmm0
        add rax, rdi
        ret
    """)
    r = Rewriter(img, "f").set_signature(("i", "f", "f"), "i").set_par_f64(1, 2.5)
    r.rewrite(name="f_fp")
    sim.invalidate_code()
    # xmm0=2.5 (fixed), xmm1=1.5 -> 4.0 -> 4 + rdi
    assert sim.call_int("f_fp", (10,), (0.0, 1.5)) == 14
