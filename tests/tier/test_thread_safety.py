"""Concurrent hammer tests for the cache stores.

Eight threads mixing misses, hits and evictions on a small-capacity
LRUStore: before the stores took a lock, the ``OrderedDict`` underneath
corrupts under this load — ``move_to_end`` racing ``popitem`` raises
``KeyError``, iteration during ``put`` raises ``RuntimeError: OrderedDict
mutated during iteration``, and link-list corruption loses entries.  The
tiny switch interval forces the interpreter to preempt threads inside
those compound operations, so the pre-lock failure reproduces in well
under a second rather than once a week in CI.
"""

import sys
import threading

import pytest

from repro.cache import NegativeCache, SpecializationCache
from repro.cache.store import LRUStore

N_THREADS = 8
OPS = 800


@pytest.fixture(autouse=True)
def _aggressive_preemption():
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        yield
    finally:
        sys.setswitchinterval(old)


def hammer(n_threads, worker):
    errors = []
    barrier = threading.Barrier(n_threads)

    def run(tid):
        try:
            barrier.wait()
            worker(tid)
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,))
               for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


def test_lru_hammer_miss_hit_evict():
    store = LRUStore(capacity=16)  # far below the live key range: constant
    # eviction pressure while other threads hit

    def worker(tid):
        for i in range(OPS):
            key = f"k{(tid * OPS + i) % 64}"
            if i % 3 == 0:
                store.put(key, (tid, i))
            elif i % 3 == 1:
                v = store.get(key)
                assert v is None or isinstance(v, tuple)
            else:
                for k in store.keys():  # iteration during mutation
                    assert isinstance(k, str)
                store.discard(key)

    hammer(N_THREADS, worker)
    assert len(store) <= 16
    assert store.evictions > 0


def test_lru_hammer_single_hot_key():
    # everyone fighting over one key maximizes move_to_end/popitem overlap
    store = LRUStore(capacity=2)

    def worker(tid):
        for i in range(OPS):
            store.put("hot", i)
            store.get("hot")
            store.put(f"cold{tid}-{i % 8}", i)  # forces "hot" toward eviction

    hammer(N_THREADS, worker)
    assert len(store) <= 2


def test_negative_cache_hammer_record_check():
    neg = NegativeCache(ttl=0.001, capacity=32)

    def worker(tid):
        for i in range(OPS):
            key = f"g{(tid + i) % 48}"
            if i % 2 == 0:
                neg.record(key, "llvm", f"fault {tid}", {"tid": tid})
            else:
                entry = neg.check(key)
                if entry is not None:
                    assert entry.failures >= 1
            if i % 17 == 0:
                neg.forget(key)

    hammer(N_THREADS, worker)
    assert len(neg) <= 32


def test_attach_image_registers_one_invalidation_hook():
    from repro import compile_c

    prog = compile_c("long f(long a, long b) { return a + b; }")
    cache = SpecializationCache()
    barrier = threading.Barrier(N_THREADS)
    errors = []

    def worker():
        try:
            barrier.wait()
            for _ in range(50):
                cache.attach_image(prog.image)
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # double-checked locking: exactly one hook, one per-image state
    assert len(prog.image._invalidation_hooks) == 1
