"""TieredEngine behavior: zero-stall dispatch, background promotion,
epoch-stale discards, rejection pinning, measured-cost demotion."""

import time

import pytest

from repro import FunctionSignature, Simulator, TieredEngine, compile_c
from repro.errors import IRError
from repro.testing.faults import inject_faults
from repro.tier import T0, T1, T2, TierPolicy

SRC = "long f(long a, long b) { long s = 0; for (long i = 0; i < a; i++) s += i * b; return s; }"


def expected(a, b):
    return sum(i * b for i in range(a))


@pytest.fixture()
def prog():
    return compile_c(SRC)


def make_engine(prog, **kw):
    kw.setdefault("policy", TierPolicy(promote_calls=(4, 12)))
    return TieredEngine(prog.image, **kw)


def spin_to_tier(handle, sim, tier, *, args=(10, 3), calls=200,
                 timeout=60.0):
    """Dispatch until the handle reaches ``tier`` (never blocking a call)."""
    deadline = time.monotonic() + timeout
    for _ in range(calls):
        addr = handle.address()
        sim.invalidate_code()
        assert sim.call(addr, args).rax == expected(*args)
        if handle.tier >= tier:
            return
        time.sleep(0.005)
    assert handle.wait_for_tier(tier, max(0.0, deadline - time.monotonic())), \
        handle.snapshot()


def test_first_call_is_t0_with_no_compile(prog):
    with make_engine(prog) as eng:
        h = eng.register("f", FunctionSignature(("i", "i"), "i"))
        t0 = time.perf_counter()
        addr = h.address()
        dt = time.perf_counter() - t0
        assert addr == prog.image.symbol("f")
        assert h.tier == T0
        # zero-stall: the first dispatch never waits on a compiler
        assert dt < 0.01
        assert eng.stats.submitted[T1] == 0


def test_background_promotion_reaches_t2_verified(prog):
    sim = Simulator(prog.image)
    with make_engine(prog) as eng:
        h = eng.register("f", FunctionSignature(("i", "i"), "i"),
                         fixes={1: 3}, probes=((10,), (5,)))
        spin_to_tier(h, sim, T2, args=(10, 3))
        assert h.code.mode == "dbrew+llvm"
        assert h.code.verified  # admitted through the differential gate
        assert sorted(h.codes) == [T0, T1, T2]
        assert eng.stats.installs[T1] == 1
        assert eng.stats.installs[T2] == 1
        # the T2 kernel computes the same thing
        sim.invalidate_code()
        assert sim.call(h.address(), (10, 3)).rax == expected(10, 3)


def test_dispatch_never_blocks_while_compiling(prog):
    sim = Simulator(prog.image)
    with make_engine(prog) as eng:
        h = eng.register("f", FunctionSignature(("i", "i"), "i"),
                         fixes={1: 3})
        eng.pause()  # compiles park at their first budget checkpoint
        try:
            for _ in range(50):
                t0 = time.perf_counter()
                addr = h.address()
                assert time.perf_counter() - t0 < 0.01
                assert addr == prog.image.symbol("f")
            assert h.tier == T0
            assert eng.stats.submitted[T1] == 1  # queued, not blocking
        finally:
            eng.resume()
        eng.drain(60.0)


def test_refix_discards_superseded_compile(prog):
    with make_engine(prog) as eng:
        h = eng.register("f", FunctionSignature(("i", "i"), "i"),
                         fixes={1: 3})
        eng.pause()
        for _ in range(10):
            h.address()  # crosses the T1 threshold; job parks at the gate
        assert eng.stats.submitted[T1] == 1
        eng.refix(h, fixes={1: 7})  # new fixation key: epoch bumps
        assert h.epoch == 1
        eng.resume()
        assert eng.drain(60.0)
        # the old-epoch result finished but was never installed
        assert eng.stats.stale_discards >= 1
        assert eng.stats.installs[T1] == 0
        assert h.tier == T0
        assert all(code.epoch == h.epoch or code.tier == T0
                   for code in h.codes.values())


def test_compile_failure_pins_the_tier(prog):
    with make_engine(prog) as eng:
        h = eng.register("f", FunctionSignature(("i", "i"), "i"))
        with inject_faults("opt", every=True,
                           error=IRError("injected optimizer fault",
                                         stage="opt", injected=True)):
            for _ in range(10):
                h.address()
                time.sleep(0.01)
            assert eng.drain(60.0)
        assert eng.stats.rejections[T1] == 1
        assert h.governor.pinned_max == T0
        assert "injected" in h.governor.pin_reason
        assert h.tier == T0
        # pinned: no matter how hot, nothing is ever requested again
        before = eng.stats.submitted[T1] + eng.stats.submitted[T2]
        for _ in range(500):
            h.address()
        eng.drain(60.0)
        assert eng.stats.submitted[T1] + eng.stats.submitted[T2] == before
        # and a waiter on an unreachable tier returns instead of hanging
        assert h.wait_for_tier(T1, timeout=0.5) is False


def test_gate_rejection_pins_t2(prog):
    # corrupt codegen output on the dbrew+llvm rung only: T1 (call 1)
    # compiles clean, T2's candidate (later calls) computes a+1 instead —
    # the differential gate must reject it and pin the handle at T1
    def corrupt(result, jit_self, func, **kw):
        name = kw.get("name") or func.name
        if ".t2." in name:
            bad = compile_c("long g(long a, long b) { return a + 1; }",
                            image=jit_self.image)
            return bad.functions["g"]
        return None

    with make_engine(prog) as eng:
        h = eng.register("f", FunctionSignature(("i", "i"), "i"),
                         fixes={1: 3}, probes=((10,), (5,)))
        with inject_faults("codegen", every=True, corrupt=corrupt):
            for _ in range(50):
                h.address()
                time.sleep(0.01)
                if eng.stats.rejections[T2]:
                    break
            assert eng.drain(60.0)
        assert eng.stats.installs[T1] == 1
        assert eng.stats.rejections[T2] == 1
        assert h.governor.pinned_max == T1
        assert h.tier == T1  # quietly pinned at the current tier
        assert h.wait_for_tier(T2, timeout=0.5) is False


def test_measured_cost_demotion_with_backoff(prog):
    policy = TierPolicy(promote_calls=(4, 100_000), demote_after=3,
                        hysteresis=0.10, ewma_alpha=1.0,
                        repromote_backoff=4.0)
    with make_engine(prog, policy=policy) as eng:
        h = eng.register("f", FunctionSignature(("i", "i"), "i"),
                         fixes={1: 3})
        # while still at T0, record its (cheap) measured cost
        h.observe(100.0)
        for _ in range(10):
            h.address()
            time.sleep(0.01)
        assert h.wait_for_tier(T1, timeout=60.0)
        # T1 measures consistently worse: demote after the streak
        h.observe(200.0)
        h.observe(200.0)
        assert h.tier == T1
        h.observe(200.0)
        assert h.tier == T0
        assert eng.stats.demotions == 1
        # back-off: T1 is not immediately re-requested
        submitted = eng.stats.submitted[T1]
        for _ in range(10):
            h.address()
        assert eng.stats.submitted[T1] == submitted


def test_close_is_idempotent_and_rejects_new_registrations(prog):
    eng = make_engine(prog)
    eng.close()
    eng.close()
    with pytest.raises(RuntimeError):
        eng.register("f", FunctionSignature(("i", "i"), "i"))
