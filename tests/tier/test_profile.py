"""Edge-profile governor source: deterministic fake-clock/fake-buffer tests.

The :class:`EdgeProfile` source replaces raw call counting with basic-block
heat read from an instrumented T1's probe buffer.  The contract under test:

* a loopy kernel promotes on *iterations*, never later than call counting
  would promote it (the profile only accelerates, it cannot starve);
* hysteresis still prevents flapping with a profile attached;
* instrumented farm-job keys are digest-distinct from plain ones.
"""

from __future__ import annotations

from repro import FunctionSignature, Simulator, compile_c
from repro.instrument import InstrumentOptions
from repro.tier import (
    T0, T1, T2, EdgeProfile, TieredEngine, TierGovernor, TierPolicy,
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class FakeBuffer:
    """Duck-typed probe buffer: ``heat`` = hottest block counter."""

    def __init__(self) -> None:
        self.heat = 0
        self.addr = 0x0200_0000

    def hotness(self) -> int:
        return self.heat


def governor(profile=None, **policy_kw):
    policy_kw.setdefault("promote_calls", (8, 64))
    return TierGovernor(policy=TierPolicy(**policy_kw), clock=FakeClock(),
                        profile=profile)


# -- promotion: edge heat vs call counting -----------------------------------


def test_edge_heat_promotes_loopy_kernel_early():
    """A skewed-branch kernel (100 iterations/call) reaches every tier's
    threshold in strictly fewer calls than the call-count baseline."""
    buf = FakeBuffer()
    edges = governor(EdgeProfile(buf))
    calls_only = governor()

    ITERS = 100  # loop-body heat per call
    t1_edge = t1_calls = None
    for call in range(1, 200):
        buf.heat = call * ITERS
        if t1_edge is None and edges.next_target(call, T0) is not None:
            t1_edge = call
        if t1_calls is None and calls_only.next_target(call, T0) is not None:
            t1_calls = call
    assert t1_edge == 1          # 100 heat >= threshold 8 on the first call
    assert t1_calls == 8
    assert t1_edge <= t1_calls   # the acceptance bound: never later

    buf.heat = ITERS
    assert edges.next_target(1, T1) == T2, \
        "hot-past-T2-threshold heat must skip the ladder"


def test_frozen_profile_degrades_to_call_counting():
    """A dead buffer (stale epoch, never executed) must behave exactly
    like the call-count baseline — the profile can never starve."""
    edges = governor(EdgeProfile(FakeBuffer()))   # heat stays 0
    calls_only = governor()
    for call in range(0, 100):
        assert edges.next_target(call, T0) == calls_only.next_target(call, T0)
        assert edges.next_review(call, T0) >= call + 1


def test_next_review_tightens_under_profile_but_stays_bounded():
    buf = FakeBuffer()
    edges = governor(EdgeProfile(buf))
    calls_only = governor()
    buf.heat = 6              # 2 short of the T1 threshold
    review = edges.next_review(4, T0)
    assert review == 4 + 2    # re-check as soon as the gap could close
    assert review <= calls_only.next_review(4, T0)
    buf.heat = 0
    # no profile signal: never re-check later than the call-count baseline
    assert edges.next_review(4, T0) <= calls_only.next_review(4, T0)


def test_rebase_rebases_profile_and_snapshot_names_source():
    buf = FakeBuffer()
    buf.heat = 5000
    gov = governor(EdgeProfile(buf))
    assert gov.snapshot()["profile"] == f"edges@{buf.addr:#x}"
    gov.rebase(calls=37)
    assert gov.profile.hotness() == 0, "rebase must zero accumulated heat"
    buf.heat = 5008
    assert gov.next_target(38, T0) == T1   # fresh heat counts from the base
    assert governor().snapshot()["profile"] == "calls"


# -- hysteresis: no flapping with a profile attached -------------------------


def test_demotion_hysteresis_no_flap_with_hot_profile():
    """Even with scorching edge heat, a demoted tier must not re-promote
    until the backed-off threshold is met, and demotion still needs
    ``demote_after`` consecutive worse observations."""
    buf = FakeBuffer()
    gov = governor(EdgeProfile(buf), demote_after=3, repromote_backoff=4.0,
                   ewma_alpha=1.0)
    buf.heat = 10_000
    assert gov.next_target(1, T0) == T2
    gov.on_install(T1)
    gov.observe(T0, 100.0)
    # one noisy worse sample must not demote
    assert gov.observe(T1, 200.0) is None
    gov.observe(T1, 90.0)                  # recovery resets the streak
    assert gov.observe(T1, 200.0) is None
    assert gov.observe(T1, 200.0) is None
    assert gov.observe(T1, 200.0) == T0    # third consecutive: demote
    gov.on_demote(T1, calls=10)
    # heat is huge, but the backed-off threshold now gates re-promotion
    assert gov.thresholds[T1] >= 40
    buf.heat = gov.thresholds[T1] - 1
    assert gov.next_target(11, T0) != T1
    buf.heat = gov.thresholds[T1]
    assert gov.next_target(11, T0) == T1


# -- digest-distinct cache/job keys ------------------------------------------


def test_job_key_distinct_for_instrumented_compiles():
    from repro.farm import protocol as fp
    from repro.guard.verify import GateOptions
    from repro.ir.codegen import JITOptions
    from repro.ir.passes import O3Options

    prog = compile_c("long f(long a, long b) { return a * b; }")
    sig = FunctionSignature(("i", "i"), "i")
    args = (prog.image, "f", sig, None, (), (), T1, ("llvm",), None,
            None, O3Options.lightweight(), JITOptions(), GateOptions())
    plain = fp.compute_job_key(*args)
    instr = fp.compute_job_key(*args,
                               instrument=InstrumentOptions().digest())
    other = fp.compute_job_key(
        *args, instrument=InstrumentOptions(trace_memory=True).digest())
    assert plain is not None
    assert len({plain, instr, other}) == 3, \
        "instrumented jobs must never alias plain or differently-probed ones"


# -- engine level: profile="edges" -------------------------------------------


def test_tiered_engine_edges_profile_end_to_end():
    import time

    prog = compile_c(
        "long f(long a, long b) "
        "{ long s = 0; for (long i = 0; i < a; i++) s += i * b; return s; }")
    sim = Simulator(prog.image)
    want = sum(i * 3 for i in range(40))
    # T2 at 2000 heat: 40 iterations/call reach it in ~50 calls of edge
    # heat where raw call counting would need 2000 calls
    with TieredEngine(prog.image, profile="edges",
                      policy=TierPolicy(promote_calls=(4, 2000)),
                      instrument_options=InstrumentOptions()) as eng:
        h = eng.register("f", FunctionSignature(("i", "i"), "i"))
        deadline = time.monotonic() + 120.0
        calls = 0
        while h.tier < T2:
            sim.invalidate_code()
            assert sim.call(h.address(), (40, 3)).rax == want
            calls += 1
            assert time.monotonic() < deadline, h.snapshot()
            time.sleep(0.002)
        assert h.codes[T1].mode == "llvm+instr"
        assert isinstance(h.governor.profile, EdgeProfile)
        assert h.governor.profile.hotness() > calls, \
            "loop-body heat must outrun the call count"
        assert calls < 2000, "edge heat must beat the raw call budget"
        eng.drain(60.0)
    sim.invalidate_code()
    assert sim.call(h.address(), (40, 3)).rax == want


def test_unknown_profile_source_rejected():
    import pytest

    prog = compile_c("long f(long a) { return a; }")
    with pytest.raises(ValueError):
        TieredEngine(prog.image, profile="branchless")
