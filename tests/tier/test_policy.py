"""Deterministic (fake-clock) tests for the tier promotion/demotion policy."""

import pytest

from repro.tier import NUM_TIERS, T0, T1, T2, TierGovernor, TierPolicy


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make(policy: TierPolicy | None = None,
         clock: FakeClock | None = None) -> TierGovernor:
    return TierGovernor(policy=policy or TierPolicy(promote_calls=(8, 64)),
                        clock=clock or FakeClock())


# -- promotion thresholds ---------------------------------------------------


def test_cold_handle_requests_nothing():
    gov = make()
    assert gov.next_target(0, T0) is None
    assert gov.next_target(7, T0) is None


def test_t1_threshold():
    gov = make()
    assert gov.next_target(8, T0) == T1
    assert gov.next_target(63, T0) == T1


def test_hot_handle_skips_straight_to_t2():
    # a handle that got hot while T1 was still queued goes for T2 directly
    gov = make()
    assert gov.next_target(64, T0) == T2


def test_in_flight_tier_not_rerequested():
    gov = make()
    assert gov.next_target(8, T0, in_flight={T1}) is None
    assert gov.next_target(64, T0, in_flight={T2}) == T1
    assert gov.next_target(64, T0, in_flight={T1, T2}) is None


def test_current_tier_upper_bounds_requests():
    gov = make()
    assert gov.next_target(1000, T2) is None


def test_next_review_targets_the_nearest_pending_threshold():
    gov = make()
    assert gov.next_review(0, T0) == 8
    assert gov.next_review(8, T0) == 64  # T1 threshold already crossed
    # everything resolved: steady-state cadence
    assert gov.next_review(100, T2) == 100 + gov.policy.review_interval


# -- hysteresis / no flapping ----------------------------------------------


def test_single_noisy_sample_does_not_demote():
    gov = make()
    gov.cycles[T0] = 100.0
    assert gov.observe(T1, 500.0) is None  # one bad sample: streak only
    assert gov.worse_streak == 1


def test_consecutive_worse_observations_demote():
    gov = make(TierPolicy(demote_after=3, hysteresis=0.10))
    gov.cycles[T0] = 100.0
    assert gov.observe(T1, 200.0) is None
    assert gov.observe(T1, 200.0) is None
    assert gov.observe(T1, 200.0) == T0


def test_within_hysteresis_margin_never_demotes():
    gov = make(TierPolicy(demote_after=1, hysteresis=0.10, ewma_alpha=1.0))
    gov.cycles[T0] = 100.0
    # 5% worse is inside the 10% band: not even a streak
    for _ in range(50):
        assert gov.observe(T1, 105.0) is None
    assert gov.worse_streak == 0


def test_good_sample_resets_the_streak():
    gov = make(TierPolicy(demote_after=3, hysteresis=0.10, ewma_alpha=1.0))
    gov.cycles[T0] = 100.0
    gov.observe(T1, 200.0)
    gov.observe(T1, 200.0)
    assert gov.worse_streak == 2
    assert gov.observe(T1, 90.0) is None  # better than T0: streak cleared
    assert gov.worse_streak == 0
    gov.observe(T1, 200.0)
    assert gov.observe(T1, 200.0) is None  # needs 3 consecutive again


def test_demotion_backoff_prevents_flapping():
    # T2 threshold far out so only T1's back-off is visible
    policy = TierPolicy(promote_calls=(8, 100_000), demote_after=1,
                        repromote_backoff=4.0, ewma_alpha=1.0)
    gov = make(policy)
    gov.cycles[T0] = 100.0
    assert gov.observe(T1, 200.0) == T0
    gov.on_demote(T1, calls=20)
    # the demoted tier's threshold quadrupled from the demotion point: the
    # very next threshold crossing cannot re-request it
    assert gov.thresholds[T1] == 80
    assert gov.next_target(21, T0) is None
    assert gov.next_target(79, T0) is None
    assert gov.next_target(80, T0) == T1


def test_min_dwell_blocks_demotion_until_clock_advances():
    clock = FakeClock()
    gov = make(TierPolicy(demote_after=1, min_dwell_seconds=5.0,
                          ewma_alpha=1.0), clock)
    gov.cycles[T0] = 100.0
    gov.on_install(T1)
    assert gov.observe(T1, 200.0) is None  # inside the dwell window
    clock.advance(10.0)
    assert gov.observe(T1, 200.0) == T0


def test_ewma_smoothing():
    gov = make(TierPolicy(ewma_alpha=0.5))
    gov.observe(T0, 100.0)
    gov.observe(T0, 200.0)
    assert gov.cycles[T0] == pytest.approx(150.0)


# -- gate-rejection pinning -------------------------------------------------


def test_rejection_pins_below_the_rejected_tier():
    gov = make()
    gov.on_reject(T2, "gate divergence")
    assert gov.pinned_max == T1
    assert gov.pin_reason == "gate divergence"
    assert gov.next_target(10_000, T0) == T1
    assert gov.next_target(10_000, T1) is None


def test_pin_never_rises():
    gov = make()
    gov.on_reject(T1, "compile failed")
    assert gov.pinned_max == T0
    gov.on_reject(T2, "later, higher rejection")
    assert gov.pinned_max == T0
    assert gov.pin_reason == "compile failed"


def test_pinned_handle_requests_nothing_past_the_pin():
    gov = make()
    gov.on_reject(T1, "nope")
    assert gov.next_target(1_000_000, T0) is None


# -- rebase (fixation-key supersession) -------------------------------------


def test_rebase_resets_hotness_and_pin():
    gov = make()
    gov.on_reject(T2, "old key diverged")
    gov.on_demote(T1, calls=500)
    gov.cycles[T1] = 42.0
    gov.rebase(calls=500)
    assert gov.pinned_max == NUM_TIERS - 1
    assert gov.pin_reason is None
    assert gov.cycles == {}
    assert gov.thresholds == {T1: 8, T2: 64}
    # hotness counts from the rebase point, not from zero
    assert gov.next_target(500, T0) is None
    assert gov.next_target(507, T0) is None
    assert gov.next_target(508, T0) == T1
