"""Request coalescing: concurrent same-key compiles run the pipeline once.

The regression scenario: N threads miss on the same (function, fixation,
options) machine key at the same moment.  Without single-flight
coalescing each would run the full lift/optimize/codegen pipeline and
install N copies; with it, one leader compiles while the followers block
on the flight and are served the leader's installed code as a
machine-stage hit (``TransformResult.coalesced``).  The compile is slowed
via the fault injector's ``corrupt=`` hook so the race window is wide and
deterministic.
"""

import threading
import time

import pytest

from repro import BinaryTransformer, FunctionSignature, compile_c
from repro.cache import FlightTable, SpecializationCache
from repro.testing.faults import inject_faults

SRC = "long f(long a, long b) { return (a + 1) * b; }"


def slow_opt(result, *args):
    time.sleep(0.05)  # widen the window; keep the real result
    return None


def test_concurrent_same_key_transforms_coalesce():
    prog = compile_c(SRC)
    cache = SpecializationCache()
    sig = FunctionSignature(("i", "i"), "i")
    n = 8
    results, errors = [None] * n, []
    barrier = threading.Barrier(n)

    def worker(i):
        try:
            tx = BinaryTransformer(prog.image, cache=cache)
            barrier.wait()
            results[i] = tx.llvm_identity("f", sig, name=f"f.co{i}")
        except BaseException as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    with inject_faults("opt", every=True, corrupt=slow_opt):
        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    assert not errors
    # exactly one pipeline ran; everyone else joined its flight
    assert cache.flights.led == 1
    assert cache.flights.coalesced == n - 1
    coalesced = [r for r in results if r.coalesced]
    assert len(coalesced) == n - 1
    # identical installed code for every caller
    addrs = {r.addr for r in results}
    assert len(addrs) == 1
    # the followers were served as machine-stage hits under their own names
    for r in coalesced:
        assert r.cache_stage == "machine"
        assert prog.image.symbol(r.name) == r.addr


def test_distinct_keys_do_not_coalesce():
    prog = compile_c(SRC)
    cache = SpecializationCache()
    sig = FunctionSignature(("i", "i"), "i")
    tx = BinaryTransformer(prog.image, cache=cache)
    a = tx.llvm_identity("f", sig, name="f.a")
    b = tx.llvm_fixed("f", sig, {1: 7}, name="f.b")
    assert not a.coalesced and not b.coalesced
    assert a.addr != b.addr
    assert cache.flights.coalesced == 0


# -- FlightTable unit behavior ---------------------------------------------


def test_flight_leader_error_propagates_to_followers():
    table = FlightTable()
    barrier = threading.Barrier(2)
    outcomes = []

    def leader():
        def boom():
            barrier.wait()  # follower is now waiting on this flight
            time.sleep(0.05)
            raise ValueError("compile exploded")
        try:
            table.run("k", boom)
        except ValueError as exc:
            outcomes.append(("leader", str(exc)))

    def follower():
        barrier.wait()
        time.sleep(0.01)  # ensure we join, not lead
        try:
            table.run("k", lambda: "should not run")
        except ValueError as exc:
            outcomes.append(("follower", str(exc)))

    t1, t2 = threading.Thread(target=leader), threading.Thread(target=follower)
    t1.start(); t2.start(); t1.join(); t2.join()
    assert sorted(o[0] for o in outcomes) == ["follower", "leader"]
    assert all("compile exploded" in o[1] for o in outcomes)


def test_flight_timeout_falls_back_to_private_run():
    table = FlightTable()
    release = threading.Event()
    started = threading.Event()

    def slow():
        started.set()
        release.wait(5.0)
        return "leader-result"

    t = threading.Thread(target=lambda: table.run("k", slow))
    t.start()
    started.wait(5.0)
    # the follower gives up waiting and runs its own thunk
    value, led = table.run("k", lambda: "private-result", timeout=0.05)
    assert (value, led) == ("private-result", True)
    release.set()
    t.join()


def test_flight_sequential_runs_both_lead():
    table = FlightTable()
    assert table.run("k", lambda: 1) == (1, True)
    assert table.run("k", lambda: 2) == (2, True)
    assert table.led == 2
    assert table.coalesced == 0
    assert table.in_flight == 0
