"""MCC middle-end units: TAC shapes from lowering, vectorizer recognition."""

import pytest

from repro.backend.opt import optimize
from repro.backend.tac import TAddr, TInstr, VReg
from repro.cc.lower import lower_function
from repro.cc.parser import parse
from repro.cc.sema import analyze
from repro.cc.vectorize import try_vectorize


def lower(src, name=None):
    prog = parse(src)
    infos = analyze(prog)
    func = next(f for f in prog.functions
                if f.body is not None and (name is None or f.name == name))
    return lower_function(func, infos[func.name], infos)


def ops_of(tf):
    return [i.op for i in tf.instructions()]


# -- lowering shapes ---------------------------------------------------------


def test_index_constant_folds_into_displacement():
    tf = lower("double f(double* p, long i) { return p[i - 3]; }")
    optimize(tf)
    loads = [i for i in tf.instructions() if i.op == "fload"]
    assert len(loads) == 1
    assert loads[0].addr.disp == -24
    assert loads[0].addr.scale == 8


def test_index_cast_looked_through():
    # int index: sema inserts int->long casts; folding must survive them
    tf = lower("double f(double* p, int i) { return p[i + 2]; }")
    optimize(tf)
    loads = [i for i in tf.instructions() if i.op == "fload"]
    assert loads[0].addr.disp == 16


def test_scalar_locals_have_no_frame_slot():
    tf = lower("long f(long a) { long x = a + 1; long y = x * 2; return y; }")
    assert not tf.frame_objects


def test_address_taken_local_gets_frame_slot():
    tf = lower("""
    long g(long* p);
    long f(long a) { long x = a; return g(&x); }
    """, name="f")
    assert len(tf.frame_objects) == 1
    assert any(i.op == "frame" for i in tf.instructions())


def test_local_array_gets_frame_slot():
    tf = lower("long f() { long buf[4]; buf[0] = 1; return buf[0]; }")
    (slot,) = tf.frame_objects.values()
    assert slot[0] == 32


def test_struct_member_chain_is_single_addressing():
    tf = lower("""
    struct FP { double f; int dx, dy; };
    struct FS { int ps; struct FP p[]; };
    double f(struct FS* s, long i) { return s->p[i].f; }
    """)
    optimize(tf)
    loads = [i for i in tf.instructions() if i.op == "fload"]
    assert len(loads) == 1
    # address: s + 8 (p offset) + i*16; scale 16 is not encodable -> mul
    assert loads[0].addr.disp == 8 or any(i.op == "mul" for i in tf.instructions())


def test_short_circuit_and_produces_two_branches():
    tf = lower("long f(long a, long b) { if (a > 0 && b > 0) return 1; return 0; }")
    brs = [i for i in tf.instructions() if i.op == "br"]
    assert len(brs) == 2


def test_pointer_difference_scales_down():
    tf = lower("long f(double* a, double* b) { return a - b; }")
    assert any(i.op == "sar" and i.b == 3 for i in tf.instructions())


def test_signature_classification():
    tf = lower("double f(long a, double x, long* p, double y) { return x + y; }")
    assert len(tf.iparams) == 2
    assert len(tf.fparams) == 2
    assert tf.ret_cls == "f"


def test_void_function_ret():
    tf = lower("void f(long* p) { *p = 1; }")
    assert tf.ret_cls is None
    assert any(i.op == "ret" and i.a is None for i in tf.instructions())


# -- vectorizer ----------------------------------------------------------------


VEC_SRC = """
void line(double* r1, double* r2, long n) {
    for (long x = 1; x < n; x++)
        r2[x] = 0.5 * (r1[x - 1] + r1[x + 1]);
}
"""


def test_vectorizer_recognizes_canonical_loop():
    tf = lower(VEC_SRC)
    optimize(tf)
    assert try_vectorize(tf)
    ops = ops_of(tf)
    assert "vadd" in ops and "vmul" in ops and "vstore" in ops
    assert "vbroadcast" in ops  # the 0.5 splat


def test_vectorizer_store_is_aligned_loads_not():
    tf = lower(VEC_SRC)
    optimize(tf)
    try_vectorize(tf)
    vstores = [i for i in tf.instructions() if i.op == "vstore"]
    vloads = [i for i in tf.instructions() if i.op == "vload"]
    assert all(s.aligned for s in vstores)   # alignment peeling guarantees it
    assert all(not l.aligned for l in vloads)  # ±1 neighbours cannot be


def test_vectorizer_keeps_scalar_remainder():
    tf = lower(VEC_SRC)
    optimize(tf)
    try_vectorize(tf)
    # the scalar body survives (peel + tail)
    assert any(i.op == "fstore" for i in tf.instructions())


def test_vectorizer_rejects_non_unit_stride():
    tf = lower("""
    void f(double* r1, double* r2, long n) {
        for (long x = 1; x < n; x++) r2[x] = r1[2 * x];
    }
    """)
    optimize(tf)
    assert not try_vectorize(tf)


def test_vectorizer_rejects_integer_store():
    tf = lower("""
    void f(long* a, long n) {
        for (long x = 0; x < n; x++) a[x] = x;
    }
    """)
    optimize(tf)
    assert not try_vectorize(tf)


def test_vectorizer_rejects_two_stores():
    tf = lower("""
    void f(double* a, double* b, long n) {
        for (long x = 0; x < n; x++) { a[x] = 1.0; b[x] = 2.0; }
    }
    """)
    optimize(tf)
    assert not try_vectorize(tf)


def test_vectorizer_rejects_loop_carried_dependence_shape():
    # the stored value depends on a value from outside the recognized DAG
    tf = lower("""
    double f(double* a, long n) {
        double s = 0.0;
        for (long x = 0; x < n; x++) s = s + a[x];
        return s;
    }
    """)
    optimize(tf)
    assert not try_vectorize(tf)
