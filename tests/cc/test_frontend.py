"""MCC front-end units: lexer, parser AST shapes, sema diagnostics, types."""

import pytest

from repro.cc import cast as A
from repro.cc.ctypes import (
    CHAR, DOUBLE, INT, LONG, StructType, common_arith_type, pointer_to,
)
from repro.cc.lexer import tokenize
from repro.cc.parser import parse
from repro.cc.sema import analyze
from repro.errors import CompileError


# -- lexer -----------------------------------------------------------------


def test_tokenize_kinds():
    toks = tokenize("int x = 42 + 0x1F; // comment\ndouble y = 2.5e3;")
    kinds = [(t.kind, t.text) for t in toks if t.kind != "eof"]
    assert ("kw", "int") in kinds
    assert ("ident", "x") in kinds
    assert any(t.kind == "int" and t.value == 0x1F for t in toks)
    assert any(t.kind == "float" and t.value == 2500.0 for t in toks)


def test_block_comments():
    toks = tokenize("a /* multi\nline */ b")
    idents = [t.text for t in toks if t.kind == "ident"]
    assert idents == ["a", "b"]


def test_define_expansion():
    toks = tokenize("#define SZ 649\nint x = SZ * SZ;")
    values = [t.value for t in toks if t.kind == "int"]
    assert values == [649, 649]


def test_define_chains():
    toks = tokenize("#define A 2\n#define B A\nint x = B;")
    assert any(t.kind == "int" and t.value == 2 for t in toks)


def test_lexer_rejects_garbage():
    with pytest.raises(CompileError):
        tokenize("int x = `;")


def test_multichar_punct_longest_match():
    toks = tokenize("a <<= b >> c != d")
    puncts = [t.text for t in toks if t.kind == "punct"]
    assert puncts == ["<<=", ">>", "!="]


# -- parser -----------------------------------------------------------------


def test_parse_function_shape():
    prog = parse("long f(long a, double b) { return a; }")
    f = prog.functions[0]
    assert f.name == "f"
    assert f.ret is LONG
    assert [p.ctype for p in f.params] == [LONG, DOUBLE]


def test_parse_precedence_tree():
    prog = parse("int f() { return 1 + 2 * 3; }")
    ret = prog.functions[0].body.stmts[0]
    assert isinstance(ret.value, A.Binary) and ret.value.op == "+"
    assert isinstance(ret.value.rhs, A.Binary) and ret.value.rhs.op == "*"


def test_parse_struct_with_flexible_member():
    prog = parse("""
    struct FS { int ps; struct FP { double f; int dx, dy; } p[]; };
    int g(struct FS* s) { return s->ps; }
    """)
    fs = prog.structs["FS"]
    assert fs.layout.offset_of("p") == 8
    assert fs.layout.flexible is not None


def test_parse_multiple_declarators():
    prog = parse("int f() { int a = 1, b = 2; return a + b; }")
    block = prog.functions[0].body
    assert isinstance(block.stmts[0], A.Block)
    assert len(block.stmts[0].stmts) == 2


def test_parse_cast_vs_parenthesized_expr():
    prog = parse("long f(double x) { return (long)x + (1); }")
    ret = prog.functions[0].body.stmts[0]
    assert isinstance(ret.value.lhs, A.Cast)


def test_parse_sizeof_type():
    prog = parse("long f() { return sizeof(double*); }")
    ret = prog.functions[0].body.stmts[0]
    assert isinstance(ret.value, A.SizeofType)
    assert ret.value.of.is_pointer


def test_parse_for_without_clauses():
    prog = parse("int f() { for (;;) { break; } return 0; }")
    loop = prog.functions[0].body.stmts[0]
    assert isinstance(loop, A.For) and loop.init is None and loop.cond is None


def test_parse_errors():
    for bad in [
        "int f( { return 0; }",
        "int f() { return 0 }",
        "int f() { int x[n]; return 0; }",
        "struct S { struct T t[]; int tail; }; int f() { return 0; }",
    ]:
        with pytest.raises(CompileError):
            parse(bad)


# -- types ---------------------------------------------------------------------


def test_common_arith_type_promotions():
    assert common_arith_type(INT, DOUBLE) is DOUBLE
    assert common_arith_type(CHAR, CHAR).size == 4  # integer promotion
    assert common_arith_type(INT, LONG).size == 8


def test_pointer_type_str():
    assert str(pointer_to(pointer_to(DOUBLE))) == "double**"


def test_struct_member_lookup():
    st = StructType("S")
    st.define([("a", INT, 1), ("b", DOUBLE, 1)])
    t, off = st.member("b")
    assert t is DOUBLE and off == 8
    with pytest.raises(CompileError):
        st.member("nope")


def test_struct_redefinition_rejected():
    with pytest.raises(CompileError):
        parse("struct S { int a; }; struct S { int b; }; int f() { return 0; }")


# -- sema --------------------------------------------------------------------


def test_sema_scoping_shadowing():
    prog = parse("""
    int f(int x) {
        int y = x;
        { int x = 2; y = y + x; }
        return y + x;
    }
    """)
    analyze(prog)  # must not raise; inner x shadows the parameter


def test_sema_rejects_shadow_in_same_scope():
    prog = parse("int f() { int x = 1; int x = 2; return x; }")
    with pytest.raises(CompileError, match="redeclaration"):
        analyze(prog)


def test_sema_inserts_conversions():
    prog = parse("double f(int n) { return n; }")
    analyze(prog)
    ret = prog.functions[0].body.stmts[0]
    assert isinstance(ret.value, A.Cast)
    assert ret.value.ctype is DOUBLE


def test_sema_pointer_arith_types():
    prog = parse("double* f(double* p, int i) { return p + i; }")
    analyze(prog)
    ret = prog.functions[0].body.stmts[0]
    assert ret.value.ctype.is_pointer


def test_sema_rejects_bad_operations():
    cases = [
        "int f(int* p, double d) { return p * d; }",
        "int f(int a) { return *a; }",
        "int f(struct S* s) { return s.x; }",
        "void g(void); int f() { int x = g(); return x; }",
        "int f() { return g(); }",
        "int f(int a) { 5 = a; return 0; }",
        "int f(int a, int b) { return f(a); }",
    ]
    for src in cases:
        with pytest.raises(CompileError):
            analyze(parse("struct S { int x; };\n" + src))


def test_sema_arg_count_checked():
    prog = parse("""
    int g(int a, int b) { return a + b; }
    int f() { return g(1); }
    """)
    with pytest.raises(CompileError, match="expects 2"):
        analyze(prog)


def test_sema_void_return_checked():
    with pytest.raises(CompileError):
        analyze(parse("void f() { return 5; }"))
    with pytest.raises(CompileError):
        analyze(parse("int f() { return; }"))


def test_sema_rejects_side_effects_in_compound_target():
    prog = parse("int f(int* a) { long i = 0; a[i++] += 5; return 0; }")
    with pytest.raises(CompileError, match="side effects"):
        analyze(prog)


def test_sema_allows_plain_compound_assign():
    analyze(parse("int f(int* a, long i) { a[i] += 5; return a[i]; }"))
