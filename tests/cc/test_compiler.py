"""End-to-end MCC tests: compile C, run on the simulator, check results."""

import struct

import pytest

from repro.cc import compile_c
from repro.cc.compiler import CompilerOptions
from repro.cpu import Simulator
from repro.errors import CompileError


def run_int(src, fn, *args):
    prog = compile_c(src)
    return Simulator(prog.image).call_int(fn, tuple(args))


def run_f64(src, fn, iargs=(), fargs=()):
    prog = compile_c(src)
    return Simulator(prog.image).call_f64(fn, tuple(iargs), tuple(fargs))


# -- basic expressions -------------------------------------------------------


def test_return_constant():
    assert run_int("int f() { return 42; }", "f") == 42


def test_arith_precedence():
    assert run_int("int f() { return 2 + 3 * 4; }", "f") == 14


def test_parentheses():
    assert run_int("int f() { return (2 + 3) * 4; }", "f") == 20


def test_params():
    assert run_int("long f(long a, long b, long c) { return a*100 + b*10 + c; }",
                   "f", 1, 2, 3) == 123


def test_negative_numbers():
    assert run_int("int f(int a) { return -a + -7; }", "f", 5) == -12


def test_division_truncates_toward_zero():
    assert run_int("int f(int a, int b) { return a / b; }", "f",
                   (-7) & (2**64 - 1), 2) == -3


def test_modulo():
    assert run_int("int f(int a) { return a % 10; }", "f", 1234) == 4


def test_bitwise_ops():
    assert run_int("int f(int a, int b) { return (a & b) | (a ^ b); }",
                   "f", 0b1100, 0b1010) == 0b1110


def test_shifts():
    assert run_int("long f(long a) { return (a << 4) >> 2; }", "f", 3) == 12


def test_comparison_values():
    assert run_int("int f(int a, int b) { return (a < b) + (a == a)*10; }",
                   "f", 1, 2) == 11


def test_logical_and_short_circuit():
    # (n != 0 && 100/n > 5): must not divide when n == 0
    src = "int f(int n) { return n != 0 && 100 / n > 5; }"
    assert run_int(src, "f", 0) == 0
    assert run_int(src, "f", 10) == 1
    assert run_int(src, "f", 50) == 0


def test_logical_or():
    src = "int f(int a, int b) { return a > 0 || b > 0; }"
    assert run_int(src, "f", 0, 1) == 1
    assert run_int(src, "f", 0, 0) == 0


def test_conditional_expression():
    src = "int f(int a, int b) { return a > b ? a : b; }"
    assert run_int(src, "f", 3, 9) == 9
    assert run_int(src, "f", 9, 3) == 9


def test_unary_not():
    assert run_int("int f(int a) { return !a; }", "f", 0) == 1
    assert run_int("int f(int a) { return !a; }", "f", 77) == 0


def test_sizeof():
    src = """
    struct P { double f; int dx, dy; };
    long f() { return sizeof(struct P) + sizeof(int) * 100 + sizeof(double*); }
    """
    assert run_int(src, "f") == 16 + 400 + 8


# -- control flow ----------------------------------------------------------


def test_if_else_chain():
    src = """
    int grade(int score) {
        if (score >= 90) return 4;
        else if (score >= 80) return 3;
        else if (score >= 70) return 2;
        return 0;
    }
    """
    assert run_int(src, "grade", 95) == 4
    assert run_int(src, "grade", 85) == 3
    assert run_int(src, "grade", 75) == 2
    assert run_int(src, "grade", 10) == 0


def test_while_loop():
    src = "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }"
    assert run_int(src, "f", 10) == 55


def test_do_while():
    src = "int f(int n) { int c = 0; do { c++; n /= 2; } while (n > 0); return c; }"
    assert run_int(src, "f", 8) == 4
    assert run_int(src, "f", 0) == 1  # body runs at least once


def test_for_with_break_continue():
    src = """
    int f(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) {
            if (i % 2 == 0) continue;
            if (i > 10) break;
            s += i;
        }
        return s;
    }
    """
    assert run_int(src, "f", 100) == 1 + 3 + 5 + 7 + 9


def test_nested_loops():
    src = """
    int f(int n) {
        int s = 0;
        for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++)
                s += i * j;
        return s;
    }
    """
    assert run_int(src, "f", 4) == sum(i * j for i in range(4) for j in range(4))


def test_recursion():
    src = "long fib(long n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }"
    assert run_int(src, "fib", 15) == 610


def test_mutual_calls():
    src = """
    int is_odd(int n);
    int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
    int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
    """
    assert run_int(src, "is_even", 10) == 1
    assert run_int(src, "is_odd", 10) == 0


# -- doubles ----------------------------------------------------------------


def test_double_arith():
    assert run_f64("double f(double a, double b) { return a*b + 1.5; }",
                   "f", fargs=(3.0, 4.0)) == 13.5


def test_double_int_mixing():
    assert run_f64("double f(int n) { return n / 4.0; }", "f", iargs=(10,)) == 2.5


def test_double_cast_truncation():
    assert run_int("int f(double x) { return (int)x; }", "f") == 0
    src = "int f(double x) { return (int)x; }"
    prog = compile_c(src)
    sim = Simulator(prog.image)
    assert sim.call("f", (), (-2.9,)).int_value == -2


def test_double_comparison():
    src = "int f(double a, double b) { return a < b; }"
    prog = compile_c(src)
    sim = Simulator(prog.image)
    assert sim.call("f", (), (1.0, 2.0)).int_value == 1
    assert sim.call("f", (), (2.0, 1.0)).int_value == 0


def test_double_negation():
    assert run_f64("double f(double x) { return -x; }", "f", fargs=(2.5,)) == -2.5


# -- pointers / arrays / structs ----------------------------------------------


@pytest.fixture
def sum_prog():
    return compile_c("""
    double sum(double* a, int n) {
        double s = 0.0;
        for (int i = 0; i < n; i++) s += a[i];
        return s;
    }
    """)


def test_array_sum(sum_prog):
    sim = Simulator(sum_prog.image)
    a = sum_prog.image.alloc_data(8 * 10)
    sum_prog.image.memory.write(a, struct.pack("<10d", *range(10)))
    assert sim.call_f64("sum", (a, 10)) == 45.0


def test_pointer_deref_and_store():
    src = """
    void swap(long* a, long* b) { long t = *a; *a = *b; *b = t; }
    """
    prog = compile_c(src)
    sim = Simulator(prog.image)
    p = prog.image.alloc_data(16)
    prog.image.memory.write_u64(p, 111)
    prog.image.memory.write_u64(p + 8, 222)
    sim.call("swap", (p, p + 8))
    assert prog.image.memory.read_u64(p) == 222
    assert prog.image.memory.read_u64(p + 8) == 111


def test_pointer_arithmetic():
    src = "long f(long* p, int i) { return *(p + i); }"
    prog = compile_c(src)
    sim = Simulator(prog.image)
    a = prog.image.alloc_data(8 * 4)
    for i in range(4):
        prog.image.memory.write_u64(a + 8 * i, 100 + i)
    assert sim.call_int("f", (a, 3)) == 103


def test_address_of_local():
    src = """
    void set7(int* p) { *p = 7; }
    int f() { int x = 1; set7(&x); return x; }
    """
    assert run_int(src, "f") == 7


def test_struct_member_access():
    src = """
    struct FP { double f; int dx, dy; };
    int f(struct FP* p) { return p->dx * 100 + p->dy; }
    """
    prog = compile_c(src)
    sim = Simulator(prog.image)
    s = prog.image.alloc_data(16)
    prog.image.memory.write_f64(s, 0.25)
    prog.image.memory.write_u32(s + 8, 3)
    prog.image.memory.write_u32(s + 12, 4)
    assert sim.call_int("f", (s,)) == 304


def test_flexible_array_member():
    src = """
    struct FS { int ps; struct FP { double f; int dx, dy; } p[]; };
    double f(struct FS* s) {
        double v = 0.0;
        for (int i = 0; i < s->ps; i++) v += s->p[i].f;
        return v;
    }
    """
    prog = compile_c(src)
    sim = Simulator(prog.image)
    base = prog.image.alloc_data(8 + 16 * 3)
    prog.image.memory.write_u32(base, 3)
    for i in range(3):
        prog.image.memory.write_f64(base + 8 + 16 * i, 0.5 * (i + 1))
    assert sim.call_f64("f", (base,)) == 0.5 + 1.0 + 1.5


def test_char_sign_extension():
    src = "int f(char* p) { return p[0]; }"
    prog = compile_c(src)
    sim = Simulator(prog.image)
    a = prog.image.alloc_data(4)
    prog.image.memory.write_u8(a, 0xF0)
    assert sim.call_int("f", (a,)) == -16


def test_unsigned_char_zero_extension():
    src = "int f(unsigned char* p) { return p[0]; }"
    prog = compile_c(src)
    sim = Simulator(prog.image)
    a = prog.image.alloc_data(4)
    prog.image.memory.write_u8(a, 0xF0)
    assert sim.call_int("f", (a,)) == 0xF0


def test_int_store_truncates():
    src = "void f(int* p, long v) { *p = v; }"
    prog = compile_c(src)
    sim = Simulator(prog.image)
    a = prog.image.alloc_data(8)
    prog.image.memory.write_u64(a, 0)
    sim.call("f", (a, 0x1_2345_6789))
    assert prog.image.memory.read_u32(a) == 0x2345_6789
    assert prog.image.memory.read_u32(a + 4) == 0


def test_local_array():
    src = """
    int f(int n) {
        int tmp[8];
        for (int i = 0; i < 8; i++) tmp[i] = i * n;
        int s = 0;
        for (int i = 0; i < 8; i++) s += tmp[i];
        return s;
    }
    """
    assert run_int(src, "f", 3) == 3 * sum(range(8))


# -- diagnostics ----------------------------------------------------------------


def test_undeclared_variable_rejected():
    with pytest.raises(CompileError):
        compile_c("int f() { return x; }")


def test_undeclared_function_rejected():
    with pytest.raises(CompileError):
        compile_c("int f() { return g(); }")


def test_type_mismatch_rejected():
    with pytest.raises(CompileError):
        compile_c("struct S { int x; }; int f(struct S* s) { return s + 1.0; }")


def test_break_outside_loop_rejected():
    with pytest.raises(CompileError):
        compile_c("int f() { break; return 0; }")


def test_syntax_error_rejected():
    with pytest.raises(CompileError):
        compile_c("int f( { return 0; }")


def test_float_type_rejected():
    with pytest.raises(CompileError):
        compile_c("float f(float* p) { return p[0]; }")


# -- code-quality characteristics the paper relies on ----------------------------


def test_mul_by_649_uses_lea_chain():
    prog = compile_c("long f(long x) { return x * 649; }")
    text = prog.disasm("f")
    assert "lea" in text
    assert "imul" not in text


def test_mul_style_imul_option():
    prog = compile_c("long f(long x) { return x * 649; }",
                     options=CompilerOptions(mul_style="imul"))
    assert "imul" in prog.disasm("f")


def test_vectorizer_applies_to_stencil_loop():
    src = """
    void line(double* r1, double* r2, int n) {
        for (int x = 1; x < n; x++)
            r2[x] = 0.25*(r1[x-1] + r1[x+1] + r1[x-16] + r1[x+16]);
    }
    """
    prog = compile_c(src)
    assert prog.vectorized == {"line"}
    text = prog.disasm("line")
    assert "addpd" in text and "movapd" in text


def test_vectorizer_skips_loop_with_call():
    src = """
    double g(double x) { return x * 2.0; }
    void line(double* r1, double* r2, int n) {
        for (int x = 1; x < n; x++) r2[x] = g(r1[x]);
    }
    """
    prog = compile_c(src)
    assert prog.vectorized == set()


def test_vectorized_matches_scalar():
    src = """
    void line(double* r1, double* r2, int n) {
        for (int x = 1; x < n; x++)
            r2[x] = 0.25*(r1[x-1] + r1[x+1] + r1[x-16] + r1[x+16]);
    }
    """
    results = []
    for vec in (False, True):
        prog = compile_c(src, options=CompilerOptions(vectorize=vec))
        sim = Simulator(prog.image)
        m = prog.image.alloc_data(8 * 64, align=16)
        out = prog.image.alloc_data(8 * 64, align=16)
        vals = [float((i * 37) % 23) for i in range(64)]
        prog.image.memory.write(m, struct.pack("<64d", *vals))
        res = sim.call("line", (m + 8 * 16, out + 8 * 16, 15))
        results.append((
            [prog.image.memory.read_f64(out + 8 * (16 + x)) for x in range(1, 15)],
            res.stats.cycles,
        ))
    assert results[0][0] == results[1][0]
    assert results[1][1] < results[0][1]  # vector version is faster


def test_vectorized_store_alignment_peeling():
    # odd starting offset forces the peel loop to run exactly once
    src = """
    void line(double* r1, double* r2, int n) {
        for (int x = 1; x < n; x++)
            r2[x] = r1[x-1] + r1[x+1];
    }
    """
    prog = compile_c(src)
    assert prog.vectorized == {"line"}
    sim = Simulator(prog.image)
    m = prog.image.alloc_data(8 * 32, align=16)
    out = prog.image.alloc_data(8 * 32, align=16)
    vals = [float(i) for i in range(32)]
    prog.image.memory.write(m, struct.pack("<32d", *vals))
    sim.call("line", (m, out, 20))
    got = [prog.image.memory.read_f64(out + 8 * x) for x in range(1, 20)]
    assert got == [vals[x - 1] + vals[x + 1] for x in range(1, 20)]
