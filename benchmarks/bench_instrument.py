"""Instrumentation-as-a-workload benchmarks: overhead, drain, admission.

Four claims of the ``repro.instrument`` subsystem, each measured and
asserted on the Jacobi line kernel (the paper's hot stencil code):

1. **Steady-state overhead** — the default probe load (call + edge
   counters) must cost at most 2x the plain T1 kernel in simulated
   cycles.  Probes are straight-line load/add/store chains, so the
   overhead is a constant per block, not per-workload chaos.
2. **Counter drain** — reading every per-block counter *and* draining the
   event ring must stay under 1 ms; the governor polls block heat on the
   dispatch slow path, so this is dispatch-adjacent cost.
3. **Admission cost** — one fully-verified instrumented install (lift,
   O3, inject, probe-ops pregate, codegen, machine proof, effects-
   whitelist gate) must finish within the install budget, and the
   gate/verify share is reported per stage.
4. **Edge-profile time-to-T2** (the acceptance bar) — with a T2 threshold
   of 400 heat, the edge-profile governor must promote the loopy Jacobi
   kernel to T2 in *no more* dispatch calls than the call-count baseline:
   one call contributes ~35 inner-loop heat, so edges promote in tens of
   calls where call counting needs the full 400-call budget.

Standalone (CI smoke): ``python bench_instrument.py --quick --json
BENCH_instrument.json``.
"""

import argparse
import json
import time

from repro import FunctionSignature
from repro.cpu.simulator import RunStats
from repro.guard.verify import GateOptions
from repro.instrument import InstrumentOptions, Instrumenter
from repro.jit import BinaryTransformer
from repro.stencil.jacobi import JacobiSetup, StencilWorkspace
from repro.tier import T1, T2, TieredEngine, TierPolicy

MAX_STEADY_OVERHEAD = 2.0    # instrumented vs plain T1, simulated cycles
MAX_DRAIN_US = 1_000.0       # counters + event-ring drain, per poll
MAX_INSTALL_SECONDS = 2.0    # full verified instrumented install
T2_HEAT_BUDGET = 400         # promotion threshold for the tiering race

SIG = FunctionSignature(("i",) * 6, None)


def _workspace() -> tuple[StencilWorkspace, tuple]:
    ws = StencilWorkspace(JacobiSetup(sz=9, sweeps=1))
    sz = ws.setup.sz
    args = (ws.flat.addr, ws.m1, ws.m2, 1, 1, sz - 1)
    return ws, args


# -- 1+2+3. overhead / drain / admission ------------------------------------


def bench_probe_costs(calls: int = 5, polls: int = 1_000) -> dict:
    ws, args = _workspace()
    out = {}

    plain = BinaryTransformer(ws.image).llvm_identity("line_flat", SIG,
                                                      name="lf.plain")

    t0 = time.perf_counter()
    res = Instrumenter(ws.image, gate_options=GateOptions(samples=1)) \
        .instrument("line_flat", SIG, probes=(args,), name="lf.instr")
    out["install_seconds"] = time.perf_counter() - t0
    out["install_stage_seconds"] = {k: round(v, 5)
                                    for k, v in res.seconds.items()}
    gate_s = res.seconds.get("gate", 0.0) + res.seconds.get(
        "machine_verify", 0.0)
    out["gate_verify_share"] = gate_s / out["install_seconds"]
    assert res.machine_verdict in ("proved", "inconclusive")
    assert res.gate_report is not None and res.gate_report.passed

    res.buffer.reset()
    ws.sim.invalidate_code()

    def cycles_per_call(addr: int) -> float:
        st = RunStats()
        for _ in range(calls):
            ws.sim.call(addr, args, stats=st)
        return st.cycles / calls

    out["plain_cycles"] = cycles_per_call(plain.addr)
    out["instr_cycles"] = cycles_per_call(res.addr)
    out["steady_overhead"] = out["instr_cycles"] / out["plain_cycles"]
    out["heat_per_call"] = res.buffer.hotness() / res.buffer.call_count()

    t0 = time.perf_counter()
    for _ in range(polls):
        res.buffer.block_counts()
        res.buffer.drain()
    out["drain_us"] = (time.perf_counter() - t0) * 1e6 / polls
    return out


# -- 4. edge profile vs call counting: the tiering race ----------------------


def _calls_to_t2(profile: str) -> tuple[int, str]:
    ws, args = _workspace()
    with TieredEngine(ws.image, profile=profile,
                      policy=TierPolicy(promote_calls=(2, T2_HEAT_BUDGET)),
                      instrument_options=InstrumentOptions()) as eng:
        h = eng.register("line_flat", SIG, probes=(args,))
        calls = 0
        deadline = time.monotonic() + 180.0
        while h.tier < T2:
            addr = h.address()
            ws.sim.invalidate_code()
            ws.sim.call(addr, args)
            calls += 1
            assert time.monotonic() < deadline, h.snapshot()
            time.sleep(0.002)
        t1_mode = h.codes[T1].mode if T1 in h.codes else "-"
        eng.drain(60.0)
    return calls, t1_mode


def bench_time_to_t2() -> dict:
    call_budget, _ = _calls_to_t2("calls")
    edge_calls, t1_mode = _calls_to_t2("edges")
    return {
        "t2_heat_budget": T2_HEAT_BUDGET,
        "callcount_calls_to_t2": call_budget,
        "edge_calls_to_t2": edge_calls,
        "edge_t1_mode": t1_mode,
        "speedup_calls": call_budget / edge_calls,
    }


# -- harness ----------------------------------------------------------------


def run_all(*, quick: bool = False) -> dict:
    report = {
        "probes": bench_probe_costs(polls=200 if quick else 1_000),
        "tiering": bench_time_to_t2(),
        "quick": quick,
    }
    p, t = report["probes"], report["tiering"]
    report["pass"] = {
        "steady_overhead_under_2x":
            p["steady_overhead"] <= MAX_STEADY_OVERHEAD,
        "drain_under_1ms": p["drain_us"] <= MAX_DRAIN_US,
        "install_within_budget":
            p["install_seconds"] <= MAX_INSTALL_SECONDS,
        "edge_t1_instrumented": t["edge_t1_mode"] == "llvm+instr",
        "edge_promotes_no_later":
            t["edge_calls_to_t2"] <= t["callcount_calls_to_t2"],
    }
    return report


def _report_lines(r: dict) -> list[str]:
    p, t = r["probes"], r["tiering"]
    return [
        f"steady state {p['instr_cycles']:8.1f} cyc instrumented vs "
        f"{p['plain_cycles']:8.1f} plain   {p['steady_overhead']:.2f}x "
        f"(heat {p['heat_per_call']:.0f}/call)",
        f"drain        {p['drain_us']:8.2f} us per counters+ring poll",
        f"install      {p['install_seconds'] * 1e3:8.1f} ms total   "
        f"gate+verify share {p['gate_verify_share']:.0%}   "
        f"stages {p['install_stage_seconds']}",
        f"time-to-T2   {t['edge_calls_to_t2']:5d} calls (edge profile) vs "
        f"{t['callcount_calls_to_t2']:5d} calls (call counting)   "
        f"{t['speedup_calls']:.1f}x fewer "
        f"(budget {t['t2_heat_budget']}, T1 mode {t['edge_t1_mode']})",
    ]


def test_instrument_targets():
    from conftest import record

    r = run_all(quick=True)
    for line in _report_lines(r):
        record("Instrumentation workload (jacobi line kernel, sz=9)", line)
    assert all(r["pass"].values()), r["pass"]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="fewer drain polls (CI smoke)")
    ap.add_argument("--json", metavar="PATH",
                    help="write the full metric report as JSON")
    args = ap.parse_args(argv)

    r = run_all(quick=args.quick)
    for line in _report_lines(r):
        print(line)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(r, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    failed = [k for k, ok in r["pass"].items() if not ok]
    if failed:
        print(f"FAIL: {', '.join(failed)}")
        return 1
    print("OK: " + ", ".join(sorted(r["pass"])))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
