"""Sec. VII future work, implemented: DBrew + a lightweight pass subset.

The paper hopes to "identify a small subset of optimizations we would like
to implement as lightweight post-processing for DBrew without the heavy
cost of LLVM".  This bench compares, for each stencil code's line kernel:

* raw DBrew output,
* DBrew + lightweight subset (``O3Options.lightweight()``),
* DBrew + full -O3,

in both result quality (simulated cycles/cell) and transformation cost.
"""

import time

import pytest

from conftest import record
from repro.bench.harness import stencil_arg
from repro.bench.modes import CODES, _dbrew_rewrite
from repro.ir.passes import O3Options
from repro.jit import BinaryTransformer
from repro.lift import FunctionSignature
from repro.stencil.jacobi import matrices_equal
from repro.stencil.sources import LINE_SIGNATURE

_ROWS = {}


@pytest.mark.parametrize("code", CODES)
def test_lightweight_vs_full(benchmark, workspace, reference, code):
    ws = workspace
    sig = FunctionSignature(tuple(LINE_SIGNATURE), None)
    dbrew_addr = _dbrew_rewrite(ws, code, True, f"k.lw.{code}.dbrew")

    t0 = time.perf_counter()
    light = BinaryTransformer(
        ws.image, o3_options=O3Options.lightweight()
    ).llvm_identity(dbrew_addr, sig, name=f"k.lw.{code}.light")
    t_light = time.perf_counter() - t0

    t0 = time.perf_counter()
    full = BinaryTransformer(ws.image).llvm_identity(
        dbrew_addr, sig, name=f"k.lw.{code}.full"
    )
    t_full = time.perf_counter() - t0

    sarg = stencil_arg(ws, code)

    def sweep():
        ws.sim.invalidate_code()
        ws.reset_matrices()
        return ws.run_sweeps(light.addr, line=True, stencil_arg=sarg, sweeps=1)

    stats = benchmark.pedantic(sweep, rounds=2, iterations=1)
    m2 = ws.read_matrix(2)
    ws.reset_matrices()
    ws.run_sweeps("line_direct", line=True, stencil_arg=0, sweeps=1)
    assert matrices_equal(m2, ws.read_matrix(2))

    def cycles(addr):
        ws.sim.invalidate_code()
        ws.reset_matrices()
        st = ws.run_sweeps(addr, line=True, stencil_arg=sarg, sweeps=1)
        return ws.cycles_per_cell(st, sweeps=1)

    c_dbrew = cycles(dbrew_addr)
    c_light = ws.cycles_per_cell(stats, sweeps=1)
    c_full = cycles(full.addr)
    benchmark.extra_info.update({
        "dbrew_cycles": round(c_dbrew, 1),
        "light_cycles": round(c_light, 1),
        "full_cycles": round(c_full, 1),
        "light_opt_ms": round(1000 * light.optimize_seconds, 2),
        "full_opt_ms": round(1000 * full.optimize_seconds, 2),
    })
    record(
        "Sec VII  DBrew + lightweight pass subset (line kernels)",
        f"{code:8s} dbrew={c_dbrew:7.1f}  +light={c_light:7.1f} "
        f"(opt {1000 * light.optimize_seconds:6.1f}ms)  "
        f"+full-O3={c_full:7.1f} (opt {1000 * full.optimize_seconds:6.1f}ms) "
        f"cycles/cell",
    )
    assert c_light <= c_dbrew * 1.02
    # the pass subset is measurably cheaper on complex inputs (generic
    # structures); on the trivial direct kernel both pipelines converge
    # after one iteration and the wall times coincide within noise, so no
    # timing assertion there
    if code != "direct":
        assert light.optimize_seconds < full.optimize_seconds
