"""Specialization-cache warm-path benchmark: cold vs warm latency.

The paper pays the full decode -> lift -> -O3 -> codegen cost on every
rewrite request (Fig. 10).  With the :class:`SpecializationCache` attached,
only the *first* request for a given specialization compiles; repeats are
served from the installed-code (machine) stage.  This bench measures the
request latency over consecutive identical ``llvm-fix`` requests and the
cumulative hit rate — the warm path must be at least 50x faster than the
cold path, and every post-warmup request must be a cache hit.

Also runnable standalone (CI smoke): ``python bench_cache_warmup.py --quick``.
"""

import argparse
import statistics
import time

from repro.bench.harness import stencil_arg
from repro.bench.modes import prepare_kernel
from repro.cache import SpecializationCache
from repro.stencil.jacobi import JacobiSetup, StencilWorkspace, matrices_equal

MIN_SPEEDUP = 50.0


def run_warmup(sz: int = 17, warm_rounds: int = 10):
    """1 cold + ``warm_rounds`` identical llvm-fix requests on a fresh
    workspace/cache; returns (ws, cache, per-request seconds, ModeResults)."""
    ws = StencilWorkspace(JacobiSetup(sz=sz, sweeps=1))
    cache = SpecializationCache()
    laps: list[float] = []
    results = []
    for i in range(1 + warm_rounds):
        t0 = time.perf_counter()
        res = prepare_kernel(ws, "flat", "llvm-fix", line=False,
                             uid=f".w{i}", cache=cache)
        laps.append(time.perf_counter() - t0)
        results.append(res)
    return ws, cache, laps, results


def check_kernel_correct(ws, res) -> bool:
    ws.reset_matrices()
    want = ws.reference_sweeps(1)
    ws.sim.invalidate_code()
    ws.run_sweeps(res.kernel_addr, line=False,
                  stencil_arg=stencil_arg(ws, "flat"), sweeps=1)
    return matrices_equal(ws.read_matrix(2), want)


def _curve_lines(laps, results, cache):
    lines = []
    hits = 0
    for i, (dt, res) in enumerate(zip(laps, results)):
        if res.cache_stage is not None:
            hits += 1
        lines.append(
            f"request {i:2d}  {dt * 1e3:9.3f} ms   "
            f"stage={res.cache_stage or 'full-compile':12s} "
            f"hit-rate={hits / (i + 1):5.1%}")
    lines.append(
        f"stats: {cache.stats.transform_hits}/{cache.stats.transforms} "
        f"transform hits, {cache.stats.stores} stores, "
        f"{cache.stats.invalidations} invalidations")
    return lines


def test_cache_warmup_speedup_and_hit_rate():
    from conftest import record

    ws, cache, laps, results = run_warmup(sz=17, warm_rounds=8)
    cold, warm = laps[0], laps[1:]

    assert results[0].cache_stage is None
    # every repeat is served without compiling: 100% warm hit rate,
    # reported both per transform and by the aggregate counters
    assert all(r.cache_stage == "machine" for r in results[1:])
    assert cache.stats.transforms == len(results)
    assert cache.stats.transform_hits == len(warm)
    assert cache.stats.hit_rate == len(warm) / len(results)

    speedup = cold / statistics.median(warm)
    assert speedup >= MIN_SPEEDUP, (cold, warm)
    assert check_kernel_correct(ws, results[-1])

    for line in _curve_lines(laps, results, cache):
        record("Cache  warm-path latency (llvm-fix of apply_flat, sz=17)",
               line)
    record("Cache  warm-path latency (llvm-fix of apply_flat, sz=17)",
           f"cold {cold * 1e3:.2f} ms  /  warm median "
           f"{statistics.median(warm) * 1e3:.4f} ms  =  {speedup:.0f}x")


def test_warm_transform_latency(benchmark, workspace):
    """pytest-benchmark stats for the steady-state (machine-hit) request."""
    ws = workspace
    cache = SpecializationCache()
    prepare_kernel(ws, "flat", "llvm-fix", line=False, uid=".bw", cache=cache)

    def warm():
        return prepare_kernel(ws, "flat", "llvm-fix", line=False,
                              uid=".bw", cache=cache)

    res = benchmark(warm)
    assert res.cache_stage == "machine"
    benchmark.extra_info["hit_rate"] = round(cache.stats.hit_rate, 4)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="small workspace + few rounds (CI smoke)")
    ap.add_argument("--rounds", type=int, default=None)
    args = ap.parse_args(argv)
    sz = 9 if args.quick else 17
    rounds = args.rounds if args.rounds is not None else (3 if args.quick else 10)
    if rounds < 1:
        ap.error("--rounds must be >= 1 (need at least one warm request)")

    ws, cache, laps, results = run_warmup(sz=sz, warm_rounds=rounds)
    for line in _curve_lines(laps, results, cache):
        print(line)

    cold, warm = laps[0], laps[1:]
    speedup = cold / statistics.median(warm)
    ok = True
    if results[0].cache_stage is not None:
        print("FAIL: first request unexpectedly hit the cache")
        ok = False
    if not all(r.cache_stage == "machine" for r in results[1:]):
        print("FAIL: a warm request missed the machine stage")
        ok = False
    if cache.stats.transform_hits != len(warm):
        print("FAIL: hit counters disagree with per-transform stages")
        ok = False
    if speedup < MIN_SPEEDUP:
        print(f"FAIL: warm path only {speedup:.1f}x faster "
              f"(need >= {MIN_SPEEDUP:.0f}x)")
        ok = False
    if not check_kernel_correct(ws, results[-1]):
        print("FAIL: cached kernel computes a wrong matrix")
        ok = False
    print(f"{'OK' if ok else 'FAIL'}: cold {cold * 1e3:.2f} ms, warm median "
          f"{statistics.median(warm) * 1e3:.4f} ms ({speedup:.0f}x), "
          f"hit rate {cache.stats.hit_rate:.1%}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
