"""Tiered-execution benchmarks: dispatch latency, zero-stall, steady state.

Four claims of the tiered engine, each measured and asserted:

1. **Dispatch overhead** — ``DispatchHandle.address()`` is a counter bump
   plus an attribute read; p50 must stay under 1 µs (it measures ~0.3 µs
   including the timer).
2. **Zero stall** — the first tiered call runs the original code: its
   simulated cost must be within 1.1x of calling T0 directly (it is
   exactly 1.0x — same address), and no dispatch ever waits on a compile.
3. **Steady state** — once T2 is installed, cycles/cell must be within 2%
   of the eager ``dbrew+llvm`` kernel (it is identical code, built by the
   same pipeline from the same fixation key).
4. **Time-to-T2** — for a hot function the governor promotes straight to
   the top tier, and delivering it in the background must take at most
   1.5x a *synchronous* guarded dbrew+llvm compile: the queueing, budget
   checkpoints and waiter wakeups are cheap.  The gradual T0 > T1 > T2
   path costs more in total compile work (both rungs run) and is
   reported alongside.

Plus a compile-queue scaling measurement: 64 functions registered at
once, drained through the background workers, then re-registered on a
fresh engine sharing the cache to measure the warm-hit rate.

Standalone (CI smoke): ``python bench_tiering.py --quick --json BENCH_tiering.json``.
"""

import argparse
import gc
import json
import time

from repro import FunctionSignature, Simulator, compile_c
from repro.bench.modes import prepare_kernel, register_tiered
from repro.cache import SpecializationCache
from repro.guard import GuardedTransformer
from repro.stencil.jacobi import JacobiSetup, StencilWorkspace
from repro.tier import T1, T2, TieredEngine, TierPolicy

MAX_DISPATCH_P50_NS = 1_000  # satellite: dispatch overhead < 1 µs
MAX_FIRST_CALL_RATIO = 1.10  # first tiered call vs direct T0
MAX_STEADY_DELTA = 0.02      # steady-state T2 vs eager dbrew+llvm
MAX_TIME_TO_T2_RATIO = 1.5   # background vs synchronous compile


# -- 1. dispatch latency ----------------------------------------------------


def bench_dispatch_latency(samples: int = 50_000) -> dict:
    prog = compile_c("long f(long a, long b) { return a + b; }")
    # thresholds out of reach: measure the pure hot path, no reviews
    with TieredEngine(prog.image,
                      policy=TierPolicy(promote_calls=(10**9, 10**9))) as eng:
        h = eng.register("f", FunctionSignature(("i", "i"), "i"))
        for _ in range(1_000):
            h.address()  # warm the attribute caches
        lat = []
        for _ in range(samples):
            t0 = time.perf_counter_ns()
            h.address()
            lat.append(time.perf_counter_ns() - t0)
    lat.sort()
    return {
        "samples": samples,
        "p50_ns": lat[len(lat) // 2],
        "p99_ns": lat[int(len(lat) * 0.99)],
    }


# -- 2+3+4. the jacobi promotion story --------------------------------------


def bench_stencil_tiering(sz: int = 9) -> dict:
    out = {}

    # eager baseline: synchronous *guarded* dbrew+llvm (gate included —
    # that is what the tiered T2 admission runs too)
    ws = StencilWorkspace(JacobiSetup(sz=sz, sweeps=1))
    guard = GuardedTransformer(ws.image, cache=SpecializationCache())
    t0 = time.perf_counter()
    eager = prepare_kernel(ws, "flat", "dbrew+llvm", line=False, uid=".sync",
                           guard=guard)
    out["sync_t2_cold_seconds"] = time.perf_counter() - t0
    assert eager.guard_mode == "dbrew+llvm" and eager.verified
    st = ws.run_sweeps(eager.kernel_addr, line=False,
                       stencil_arg=ws.flat.addr, sweeps=2)
    out["eager_cycles_per_cell"] = ws.cycles_per_cell(st, 2)
    st0 = ws.run_sweeps("apply_flat", line=False, stencil_arg=ws.flat.addr,
                        sweeps=1)
    out["t0_cycles_per_cell"] = ws.cycles_per_cell(st0, 1)

    # tiered: fresh workspace, background promotion
    ws2 = StencilWorkspace(JacobiSetup(sz=sz, sweeps=1))
    with TieredEngine(ws2.image,
                      policy=TierPolicy(promote_calls=(2, 4))) as eng:
        h = register_tiered(ws2, "flat", eng, line=False, uid=".bg")

        # zero-stall: the very first tiered sweep runs T0 at T0's price
        first = ws2.run_tiered_sweeps(h, stencil_arg=ws2.flat.addr,
                                      line=False, sweeps=1)
        out["first_call_cycles_per_cell"] = ws2.cycles_per_cell(first, 1)
        out["first_call_ratio"] = (out["first_call_cycles_per_cell"]
                                   / out["t0_cycles_per_cell"])

        # keep dispatching until T2 lands; this path pays the T1 detour
        # on top of the T2 compile, so its total is informational — the
        # asserted delivery latency is measured without the detour below
        # (10 ms poll so the compile workers actually get the GIL; a
        # 0.5 ms spin convoys it)
        t0 = time.perf_counter()
        deadline = t0 + 120.0
        while not h.wait_for_tier(T2, timeout=0.01):
            h.address()
            assert time.perf_counter() < deadline, h.snapshot()
        out["time_to_t2_with_detour_seconds"] = time.perf_counter() - t0
        assert h.code.mode == "dbrew+llvm" and h.code.verified

        # steady state: identical code, identical cycles
        steady = ws2.run_tiered_sweeps(h, stencil_arg=ws2.flat.addr,
                                       line=False, sweeps=2)
        out["steady_cycles_per_cell"] = ws2.cycles_per_cell(steady, 2)
        out["steady_delta"] = abs(
            out["steady_cycles_per_cell"] / out["eager_cycles_per_cell"] - 1.0)
        out["tier_path"] = [c for c in sorted(h.codes)]
        eng.drain(60.0)
        out["compile_seconds"] = dict(eng.stats.compile_seconds)

    # time-to-T2 delivery: background vs synchronous.  For a function this
    # hot the governor promotes straight to the top tier (T1's threshold is
    # out of reach here), isolating the background machinery's overhead —
    # queueing, budget checkpoints, waiter wakeups — from the detour.
    # Each ~100 ms compile arm is noisy (gen-2 GC pauses land inside it),
    # so the arms are interleaved and the best of three is compared.
    sync_times, bg_times = [], []
    for rep in range(3):
        gc.collect()
        wss = StencilWorkspace(JacobiSetup(sz=sz, sweeps=1))
        guard = GuardedTransformer(wss.image, cache=SpecializationCache())
        t0 = time.perf_counter()
        prepare_kernel(wss, "flat", "dbrew+llvm", line=False,
                       uid=f".sync{rep}", guard=guard)
        sync_times.append(time.perf_counter() - t0)

        gc.collect()
        ws3 = StencilWorkspace(JacobiSetup(sz=sz, sweeps=1))
        with TieredEngine(ws3.image,
                          policy=TierPolicy(promote_calls=(10**9, 1))) as eng:
            h = register_tiered(ws3, "flat", eng, line=False, uid=f".hot{rep}")
            t0 = time.perf_counter()
            deadline = t0 + 120.0
            h.address()  # already hot: the first dispatch submits the T2 job
            while not h.wait_for_tier(T2, timeout=0.01):
                h.address()
                assert time.perf_counter() < deadline, h.snapshot()
            bg_times.append(time.perf_counter() - t0)
            assert h.code.mode == "dbrew+llvm" and h.code.verified
            assert T1 not in h.codes  # promoted straight past the detour
    out["sync_t2_seconds"] = min(sync_times)
    out["time_to_t2_seconds"] = min(bg_times)
    out["time_to_t2_ratio"] = (out["time_to_t2_seconds"]
                               / out["sync_t2_seconds"])
    return out


# -- 5. compile-queue scaling ----------------------------------------------


def bench_compile_queue(n_funcs: int = 64) -> dict:
    src = "\n".join(
        f"long f{i}(long a, long b) {{ return (a + {i}) * b; }}"
        for i in range(n_funcs))
    prog = compile_c(src)
    sig = FunctionSignature(("i", "i"), "i")
    cache = SpecializationCache()
    # promote on the first call; T2 out of reach (the queue measures T1
    # pipeline throughput, not the gate)
    policy = TierPolicy(promote_calls=(1, 10**9))

    def round_trip(uid: str) -> tuple[float, dict, list[int]]:
        with TieredEngine(prog.image, cache=cache, policy=policy,
                          max_workers=4) as eng:
            handles = [eng.register(f"f{i}", sig, name=f"f{i}.{uid}")
                       for i in range(n_funcs)]
            t0 = time.perf_counter()
            for h in handles:
                h.address()
            ok = eng.drain(300.0)
            dt = time.perf_counter() - t0
            assert ok, "compile queue did not drain"
            assert sum(eng.stats.installs.values()) == n_funcs, \
                eng.stats.snapshot()
            for h in handles:
                assert h.tier == T1
            addrs = [h.address() for h in handles]
            stats = eng.stats.snapshot()
        return dt, stats, addrs

    cold_dt, cold_stats, addrs = round_trip("r1")
    warm_dt, warm_stats, _ = round_trip("r2")

    # spot-check a few installed T1 kernels
    sim = Simulator(prog.image)
    for i in (0, n_funcs // 2, n_funcs - 1):
        sim.invalidate_code()
        assert sim.call(addrs[i], (5, 3)).rax == (5 + i) * 3

    warm_hits = warm_stats["cache_served"].get("machine", 0)
    return {
        "functions": n_funcs,
        "cold_drain_seconds": cold_dt,
        "cold_throughput_per_s": n_funcs / cold_dt,
        "warm_drain_seconds": warm_dt,
        "warm_hit_rate": warm_hits / n_funcs,
    }


# -- harness ----------------------------------------------------------------


def run_all(*, quick: bool = False) -> dict:
    report = {
        "dispatch": bench_dispatch_latency(20_000 if quick else 50_000),
        "stencil": bench_stencil_tiering(sz=9),
        "queue": bench_compile_queue(16 if quick else 64),
        "quick": quick,
    }
    report["pass"] = {
        "dispatch_p50_under_1us":
            report["dispatch"]["p50_ns"] < MAX_DISPATCH_P50_NS,
        "first_call_zero_stall":
            report["stencil"]["first_call_ratio"] <= MAX_FIRST_CALL_RATIO,
        "steady_state_within_2pct":
            report["stencil"]["steady_delta"] <= MAX_STEADY_DELTA,
        "time_to_t2_within_1_5x":
            report["stencil"]["time_to_t2_ratio"] <= MAX_TIME_TO_T2_RATIO,
        "warm_hit_rate_full":
            report["queue"]["warm_hit_rate"] == 1.0,
    }
    return report


def _report_lines(r: dict) -> list[str]:
    d, s, q = r["dispatch"], r["stencil"], r["queue"]
    return [
        f"dispatch     p50 {d['p50_ns']:5d} ns   p99 {d['p99_ns']:5d} ns   "
        f"({d['samples']} samples, timer included)",
        f"first call   {s['first_call_cycles_per_cell']:8.2f} cyc/cell   "
        f"{s['first_call_ratio']:.3f}x T0 (zero-stall)",
        f"steady T2    {s['steady_cycles_per_cell']:8.2f} cyc/cell   "
        f"delta {s['steady_delta']:.2%} vs eager dbrew+llvm",
        f"time-to-T2   {s['time_to_t2_seconds'] * 1e3:8.1f} ms bg   "
        f"{s['sync_t2_seconds'] * 1e3:8.1f} ms sync   "
        f"ratio {s['time_to_t2_ratio']:.2f}x   "
        f"(T0>T1>T2 detour total {s['time_to_t2_with_detour_seconds'] * 1e3:.0f} ms)",
        f"queue        {q['functions']} funcs: "
        f"{q['cold_throughput_per_s']:6.1f} compiles/s cold, "
        f"warm-hit rate {q['warm_hit_rate']:.0%} "
        f"({q['warm_drain_seconds'] * 1e3:.0f} ms warm drain)",
    ]


def test_tiering_targets():
    from conftest import record

    r = run_all(quick=True)
    for line in _report_lines(r):
        record("Tiered execution engine (flat element kernel, sz=9)", line)
    assert all(r["pass"].values()), r["pass"]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="fewer samples / smaller queue (CI smoke)")
    ap.add_argument("--json", metavar="PATH",
                    help="write the full metric report as JSON")
    args = ap.parse_args(argv)

    r = run_all(quick=args.quick)
    for line in _report_lines(r):
        print(line)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(r, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    failed = [k for k, ok in r["pass"].items() if not ok]
    if failed:
        print(f"FAIL: {', '.join(failed)}")
        return 1
    print("OK: " + ", ".join(sorted(r["pass"])))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
