"""Chaos sweep: seeded fault scenarios against the real tiered engine +
compile farm, with the resilience recovery bars asserted (acceptance
criteria of the robustness PR):

1. **Zero invariant violations** — >= 25 seeded scenarios over the full
   fault taxonomy (kill, stop, torn_write, bitflip, slow_io, drop_result,
   clock_skew, budget) report no divergence, no dispatch stall, full
   termination and store integrity; any failing scenario is replayable
   from its seed alone (demonstrated on a sample seed).
2. **Hung-worker recovery** — a SIGSTOPped worker is detected *hung* and
   respawned within two heartbeat intervals (best-of-N against scheduler
   noise on a loaded box).
3. **Breaker discipline** — the client's circuit opens after exactly
   ``failure_threshold`` consecutive transport errors, and the half-open
   probe restores service with no client-visible error.
4. **Zero-stall dispatch under chaos** — the warm (post-drain) dispatch
   p99 of a chaotic run stays within 10% of a fault-free farm run.

Standalone (CI smoke): ``python bench_chaos.py --quick --json
BENCH_chaos.json``.
"""

import argparse
import json
import os
import signal
import tempfile
import time
from concurrent.futures import Future

from repro import FarmClient, FarmPool
from repro.farm.health import CLOSED, OPEN, CircuitBreaker
from repro.farm.protocol import CompileJob, CompileResult
from repro.ir.codegen import JITOptions
from repro.ir.passes import O3Options
from repro.lift import FunctionSignature
from repro.obs.metrics import MetricsRegistry
from repro.testing.chaos import ChaosOptions, run_scenario, run_suite

MIN_SCENARIOS = 25
MAX_HANG_RECOVERY_HEARTBEATS = 2.0
MAX_WARM_DISPATCH_RATIO = 1.10


# -- 1. the seeded sweep ------------------------------------------------------


def sweep_options(quick: bool) -> ChaosOptions:
    return ChaosOptions(
        workers=2, functions=2, steps=8 if quick else 20, calls_per_step=2,
        fault_rate=0.5, heartbeat_interval=0.2, hang_timeout=0.4,
        step_sleep=0.01 if quick else 0.02)


def bench_sweep(quick: bool, scenarios: int) -> dict:
    opts = sweep_options(quick)
    seeds = list(range(1, scenarios + 1))
    t0 = time.monotonic()
    agg = run_suite(seeds, opts)
    agg["seconds"] = round(time.monotonic() - t0, 3)

    # replayability: the sample seed's fault script is a pure function of
    # the seed — rerunning it yields the identical decision stream
    sample = seeds[len(seeds) // 2]
    script = next(tuple((e["step"], e["kind"]) for e in r["events"])
                  for r in agg["reports"] if r["seed"] == sample)
    replay = run_scenario(sample, opts)
    agg["replay"] = {
        "seed": sample,
        "identical_script":
            tuple((e.step, e.kind) for e in replay.events) == script,
    }
    return agg


# -- 2. hung-worker recovery --------------------------------------------------


def bench_hang_recovery(trials: int = 3) -> dict:
    """SIGSTOP a live worker; wall-clock from the signal to the respawn
    event, best of ``trials`` (the bar tracks detection policy, not
    scheduler noise on a 1-CPU box)."""
    hb = 0.5
    latencies = []
    for _ in range(trials):
        with tempfile.TemporaryDirectory(prefix="repro-hang-") as td:
            pool = FarmPool(workers=1, disk_dir=os.path.join(td, "farm"),
                            poll_interval=0.05, heartbeat_interval=hb,
                            hang_timeout=hb,  # detect after one missed beat
                            registry=MetricsRegistry())
            try:
                deadline = time.monotonic() + 60.0
                while pool._slots[0].hb.value == 0.0:
                    if time.monotonic() > deadline:
                        raise RuntimeError("worker never heartbeat")
                    time.sleep(0.01)
                t0 = time.monotonic()
                os.kill(pool._slots[0].proc.pid, signal.SIGSTOP)
                while pool.snapshot()["respawns"] == 0:
                    if time.monotonic() > t0 + 30.0:
                        raise RuntimeError("no respawn after SIGSTOP")
                    time.sleep(0.01)
                latencies.append(time.monotonic() - t0)
            finally:
                pool.close()
    best = min(latencies)
    return {
        "heartbeat_interval_s": hb,
        "trials": [round(x, 4) for x in latencies],
        "best_s": round(best, 4),
        "best_heartbeats": round(best / hb, 3),
        "ok": best <= MAX_HANG_RECOVERY_HEARTBEATS * hb,
    }


# -- 3. breaker discipline ----------------------------------------------------


class _ScriptedPool:
    """Fails every submission until told to recover."""

    def __init__(self):
        self.healthy = False
        self.submits = 0

        class _Store:
            def contains(self, key):
                return True

            def get(self, key):
                return None

            def put(self, key, value):
                return True

        self.store = _Store()

    def submit(self, job):
        self.submits += 1
        if not self.healthy:
            raise RuntimeError("farm pool is sick")
        fut = Future()
        fut.set_result(CompileResult(key=job.key, name=job.name,
                                     tier=job.tier, ok=True))
        return fut

    def forget(self, fut):
        pass


def _stub_job() -> CompileJob:
    return CompileJob(
        key="k" * 32, name="bench.f", tier=1, func="f",
        signature=FunctionSignature(("i",), "i"), fixes=None,
        mem_regions=(), probes=(), dbrew_func=None, ladder=(),
        image_key="farmimg-bench", lift=None,
        o3=O3Options.lightweight(), jit=JITOptions())


def bench_breaker(threshold: int = 5) -> dict:
    clock_t = [0.0]
    pool = _ScriptedPool()
    client = FarmClient(
        pool, breaker=CircuitBreaker(failure_threshold=threshold,
                                     reset_timeout=2.0,
                                     clock=lambda: clock_t[0]),
        registry=MetricsRegistry())
    job = _stub_job()
    opened_after = None
    for n in range(1, threshold + 3):
        client.compile(job, timeout=1.0)
        if client.breaker.state == OPEN:
            opened_after = n
            break
    submits_at_open = pool.submits
    client.compile(job, timeout=1.0)  # while open: must not touch the pool
    fastfail_skipped_pool = pool.submits == submits_at_open
    # recovery: the half-open probe restores service transparently
    pool.healthy = True
    clock_t[0] += 2.0
    res = client.compile(job, timeout=1.0)
    return {
        "failure_threshold": threshold,
        "opened_after_failures": opened_after,
        "fastfail_skipped_pool": fastfail_skipped_pool,
        "probe_result_ok": bool(res is not None and res.ok),
        "state_after_probe": client.breaker.state,
        "ok": (opened_after == threshold and fastfail_skipped_pool
               and res is not None and res.ok
               and client.breaker.state == CLOSED),
    }


# -- 4. warm dispatch under chaos ---------------------------------------------


def bench_warm_dispatch(quick: bool) -> dict:
    laps = 700 if quick else 2000
    base_opts = ChaosOptions(workers=2, functions=2,
                             steps=6 if quick else 12, calls_per_step=1,
                             fault_rate=0.0, faults=(), warm_laps=laps)
    chaos_opts = ChaosOptions(workers=2, functions=2,
                              steps=6 if quick else 12, calls_per_step=1,
                              fault_rate=0.6, heartbeat_interval=0.2,
                              hang_timeout=0.4, warm_laps=laps)
    # best-of-2 per side: one descheduled lap must not decide the ratio
    base_p99, chaos_p99, violations = None, None, []
    for _ in range(2):
        rep = run_scenario(901, base_opts)
        violations += rep.violations
        p = rep.dispatch_warm["p99"]
        base_p99 = p if base_p99 is None else min(base_p99, p)
    for _ in range(2):
        rep = run_scenario(902, chaos_opts)
        violations += rep.violations
        p = rep.dispatch_warm["p99"]
        chaos_p99 = p if chaos_p99 is None else min(chaos_p99, p)
    ratio = chaos_p99 / max(base_p99, 1e-9)
    return {
        "warm_laps": laps,
        "base_p99_us": round(base_p99 * 1e6, 3),
        "chaos_p99_us": round(chaos_p99 * 1e6, 3),
        "ratio": round(ratio, 4),
        "violations": violations,
        "ok": ratio <= MAX_WARM_DISPATCH_RATIO and not violations,
    }


# -- driver -------------------------------------------------------------------


def run_all(quick: bool, scenarios: int) -> dict:
    report = {
        "sweep": bench_sweep(quick, scenarios),
        "hang_recovery": bench_hang_recovery(),
        "breaker": bench_breaker(),
        "warm_dispatch": bench_warm_dispatch(quick),
        "quick": quick,
    }
    sw = report["sweep"]
    report["pass"] = {
        "min_scenarios_run": sw["scenarios"] >= MIN_SCENARIOS,
        "zero_invariant_violations": sw["violations"] == 0,
        "replayable_by_seed": sw["replay"]["identical_script"],
        "hung_recovery_within_2_heartbeats": report["hang_recovery"]["ok"],
        "breaker_opens_at_threshold_probe_restores":
            report["breaker"]["ok"],
        "warm_dispatch_p99_within_10pct": report["warm_dispatch"]["ok"],
    }
    return report


def _report_lines(r: dict) -> list[str]:
    sw, hg = r["sweep"], r["hang_recovery"]
    br, wd = r["breaker"], r["warm_dispatch"]
    rec = sw["recovery_latency"]
    return [
        f"sweep        {sw['scenarios']} scenarios  "
        f"{sw['violations']} violations  {sw['calls']} calls  "
        f"faults {sum(sw['faults_injected'].values())}  "
        f"({sw['seconds']:.1f}s)",
        f"recovery     p50 {rec['p50']:.3f}s  p99 {rec['p99']:.3f}s  "
        f"max {rec['max']:.3f}s (death -> respawn, in-sweep)",
        f"hang         best {hg['best_s']:.3f}s = "
        f"{hg['best_heartbeats']:.2f} heartbeats "
        f"(bar {MAX_HANG_RECOVERY_HEARTBEATS:.0f})",
        f"breaker      opened after {br['opened_after_failures']} failures "
        f"(threshold {br['failure_threshold']})  "
        f"probe ok={br['probe_result_ok']}  "
        f"state={br['state_after_probe']}",
        f"dispatch     base p99 {wd['base_p99_us']:.1f}us  "
        f"chaos p99 {wd['chaos_p99_us']:.1f}us  ratio {wd['ratio']:.3f}x "
        f"(bar {MAX_WARM_DISPATCH_RATIO:.2f})",
    ]


def test_chaos_targets():
    from conftest import record

    r = run_all(quick=True, scenarios=MIN_SCENARIOS)
    for line in _report_lines(r):
        record("Resilience (chaos sweep + recovery bars)", line)
    assert all(r["pass"].values()), r["pass"]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="smaller scenarios (CI smoke); still >= 25 seeds")
    ap.add_argument("--scenarios", type=int, default=MIN_SCENARIOS,
                    help="number of seeded scenarios (min 25)")
    ap.add_argument("--json", metavar="PATH",
                    help="write the full metric report as JSON")
    args = ap.parse_args(argv)

    r = run_all(quick=args.quick, scenarios=max(args.scenarios,
                                                MIN_SCENARIOS))
    for line in _report_lines(r):
        print(line)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(r, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    failed = [k for k, ok in r["pass"].items() if not ok]
    if failed:
        print(f"FAIL: {', '.join(failed)}")
        return 1
    print("OK: " + ", ".join(sorted(r["pass"])))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
