"""Guard-ladder overhead: guarded vs bare pipeline on the warm Jacobi path.

The guard is a front door, not a new pipeline: on a healthy input the
ladder's first rung runs exactly the bare transform, plus the guard key,
the quarantine check and (cold only) the differential gate.  On the *warm*
path — the steady state of a server specializing the same function
repeatedly — a machine-stage cache hit skips the gate entirely (the entry
carries the gated bit from its verified install), so the guard must cost
almost nothing: this
bench asserts <5% best-of-N overhead over the bare cached pipeline for the
warm-cache ``llvm-fix`` Jacobi request, and prints the cold-request
comparison alongside.

Also runnable standalone (CI smoke): ``python bench_guard_overhead.py --quick``.
"""

import argparse
import time

from repro.bench.modes import prepare_kernel
from repro.cache import SpecializationCache
from repro.guard import GateOptions, GuardedTransformer
from repro.stencil.jacobi import JacobiSetup, StencilWorkspace

MAX_WARM_OVERHEAD = 0.05  # the guarded warm request may cost at most +5%


def _best_lap(fn, rounds: int) -> float:
    """Best-of-N wall time: the usual noise-robust microbenchmark
    estimator — scheduler preemption only ever *adds* time, so the
    minimum lap is the closest observation to the true cost."""
    laps = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        laps.append(time.perf_counter() - t0)
    return min(laps)


def run_overhead(sz: int = 17, rounds: int = 30):
    """Measure cold and warm llvm-fix requests, bare vs guarded.

    Separate workspaces/caches per arm so neither warms the other; the
    guarded arm carries the full ladder machinery (key, quarantine, gate).
    Returns a dict of seconds: cold_bare, cold_guarded, warm_bare,
    warm_guarded.
    """
    out = {}

    ws = StencilWorkspace(JacobiSetup(sz=sz, sweeps=1))
    cache = SpecializationCache()
    t0 = time.perf_counter()
    prepare_kernel(ws, "flat", "llvm-fix", line=False, uid=".g0",
                   cache=cache)
    out["cold_bare"] = time.perf_counter() - t0
    out["warm_bare"] = _best_lap(
        lambda: prepare_kernel(ws, "flat", "llvm-fix", line=False,
                               uid=".g0", cache=cache), rounds)

    ws2 = StencilWorkspace(JacobiSetup(sz=sz, sweeps=1))
    cache2 = SpecializationCache()
    guard = GuardedTransformer(ws2.image, cache=cache2,
                               gate_options=GateOptions(samples=2))
    t0 = time.perf_counter()
    res = prepare_kernel(ws2, "flat", "llvm-fix", line=False, uid=".g0",
                         cache=cache2, guard=guard)
    out["cold_guarded"] = time.perf_counter() - t0
    assert res.guard_mode == "llvm-fix" and res.verified
    out["warm_guarded"] = _best_lap(
        lambda: prepare_kernel(ws2, "flat", "llvm-fix", line=False,
                               uid=".g0", cache=cache2, guard=guard), rounds)
    assert guard.stats.failures["llvm-fix"] == 0
    return out


def _report_lines(t):
    warm_over = t["warm_guarded"] / t["warm_bare"] - 1.0
    cold_over = t["cold_guarded"] / t["cold_bare"] - 1.0
    return [
        f"cold  bare {t['cold_bare'] * 1e3:9.3f} ms   "
        f"guarded {t['cold_guarded'] * 1e3:9.3f} ms   "
        f"(+{cold_over:6.1%}, includes the differential gate)",
        f"warm  bare {t['warm_bare'] * 1e3:9.3f} ms   "
        f"guarded {t['warm_guarded'] * 1e3:9.3f} ms   "
        f"(+{warm_over:6.1%}, gate skipped on machine hit)",
    ], warm_over


def test_guard_overhead_under_five_percent():
    from conftest import record

    t = run_overhead(sz=17, rounds=30)
    lines, warm_over = _report_lines(t)
    for line in lines:
        record("Guard  ladder+gate overhead (llvm-fix of apply_flat, sz=17)",
               line)
    assert warm_over < MAX_WARM_OVERHEAD, t


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="small workspace + few rounds (CI smoke)")
    ap.add_argument("--rounds", type=int, default=None)
    args = ap.parse_args(argv)
    sz = 9 if args.quick else 17
    rounds = args.rounds if args.rounds is not None else (10 if args.quick else 30)

    t = run_overhead(sz=sz, rounds=rounds)
    lines, warm_over = _report_lines(t)
    for line in lines:
        print(line)
    if warm_over >= MAX_WARM_OVERHEAD:
        print(f"FAIL: warm guarded request costs +{warm_over:.1%} "
              f"(budget {MAX_WARM_OVERHEAD:.0%})")
        return 1
    print(f"OK: warm guard overhead +{warm_over:.1%} "
          f"< {MAX_WARM_OVERHEAD:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
