"""Guard-ladder overhead: guarded vs bare pipeline on the warm Jacobi path.

The guard is a front door, not a new pipeline: on a healthy input the
ladder's first rung runs exactly the bare transform, plus the guard key,
the quarantine check and (cold only) the differential gate.  On the *warm*
path — the steady state of a server specializing the same function
repeatedly — a machine-stage cache hit skips the gate entirely (the entry
carries the gated bit from its verified install), so the guard must cost
almost nothing: the front door that remains — guard key, quarantine
lookup, stats — is a few µs on a ~30 µs cached request.  This bench
asserts <15% median overhead over the bare cached pipeline for the
warm-cache ``llvm-fix`` Jacobi request, and prints the cold-request
comparison alongside.

Also runnable standalone (CI smoke): ``python bench_guard_overhead.py --quick``.
"""

import argparse
import statistics
import time

from repro.bench.modes import prepare_kernel
from repro.cache import SpecializationCache
from repro.guard import GateOptions, GuardedTransformer
from repro.stencil.jacobi import JacobiSetup, StencilWorkspace

MAX_WARM_OVERHEAD = 0.15  # the guarded warm request may cost at most +15%


def _lap(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _median_pair(fn_bare, fn_guarded, rounds: int) -> tuple[float, float]:
    """Median of interleaved laps, per arm.

    The arms alternate so slow drift and bursty load hit both equally;
    the median (unlike best-of-N per arm, which can pair a clean bare
    lap with a preempted guarded lap) is robust at the ~20 µs scale of
    a warm cache hit, where single laps jitter by ±50%."""
    pairs = [(_lap(fn_bare), _lap(fn_guarded)) for _ in range(rounds)]
    return (statistics.median(p[0] for p in pairs),
            statistics.median(p[1] for p in pairs))


def run_overhead(sz: int = 17, rounds: int = 30):
    """Measure cold and warm llvm-fix requests, bare vs guarded.

    Separate workspaces/caches per arm so neither warms the other; the
    guarded arm carries the full ladder machinery (key, quarantine, gate).
    Returns a dict of seconds: cold_bare, cold_guarded, warm_bare,
    warm_guarded.
    """
    out = {}

    ws = StencilWorkspace(JacobiSetup(sz=sz, sweeps=1))
    cache = SpecializationCache()
    t0 = time.perf_counter()
    prepare_kernel(ws, "flat", "llvm-fix", line=False, uid=".g0",
                   cache=cache)
    out["cold_bare"] = time.perf_counter() - t0

    ws2 = StencilWorkspace(JacobiSetup(sz=sz, sweeps=1))
    cache2 = SpecializationCache()
    guard = GuardedTransformer(ws2.image, cache=cache2,
                               gate_options=GateOptions(samples=2))
    t0 = time.perf_counter()
    res = prepare_kernel(ws2, "flat", "llvm-fix", line=False, uid=".g0",
                         cache=cache2, guard=guard)
    out["cold_guarded"] = time.perf_counter() - t0
    assert res.guard_mode == "llvm-fix" and res.verified

    out["warm_bare"], out["warm_guarded"] = _median_pair(
        lambda: prepare_kernel(ws, "flat", "llvm-fix", line=False,
                               uid=".g0", cache=cache),
        lambda: prepare_kernel(ws2, "flat", "llvm-fix", line=False,
                               uid=".g0", cache=cache2, guard=guard),
        rounds)
    assert guard.stats.failures["llvm-fix"] == 0
    return out


def _report_lines(t):
    warm_over = t["warm_guarded"] / t["warm_bare"] - 1.0
    cold_over = t["cold_guarded"] / t["cold_bare"] - 1.0
    return [
        f"cold  bare {t['cold_bare'] * 1e3:9.3f} ms   "
        f"guarded {t['cold_guarded'] * 1e3:9.3f} ms   "
        f"(+{cold_over:6.1%}, includes the differential gate)",
        f"warm  bare {t['warm_bare'] * 1e3:9.3f} ms   "
        f"guarded {t['warm_guarded'] * 1e3:9.3f} ms   "
        f"(+{warm_over:6.1%}, gate skipped on machine hit)",
    ], warm_over


def test_guard_overhead_within_budget():
    from conftest import record

    t = run_overhead(sz=17, rounds=30)
    lines, warm_over = _report_lines(t)
    for line in lines:
        record("Guard  ladder+gate overhead (llvm-fix of apply_flat, sz=17)",
               line)
    assert warm_over < MAX_WARM_OVERHEAD, t


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="small workspace + few rounds (CI smoke)")
    ap.add_argument("--rounds", type=int, default=None)
    args = ap.parse_args(argv)
    sz = 9 if args.quick else 17
    rounds = args.rounds if args.rounds is not None else (10 if args.quick else 30)

    t = run_overhead(sz=sz, rounds=rounds)
    lines, warm_over = _report_lines(t)
    for line in lines:
        print(line)
    if warm_over >= MAX_WARM_OVERHEAD:
        print(f"FAIL: warm guarded request costs +{warm_over:.1%} "
              f"(budget {MAX_WARM_OVERHEAD:.0%})")
        return 1
    print(f"OK: warm guard overhead +{warm_over:.1%} "
          f"< {MAX_WARM_OVERHEAD:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
