"""Sec. VI-B's closing experiment: forcing vectorization of the lifted loop.

The paper: specialized lifted loops are never auto-vectorized (missing
metadata), but with ``-force-vector-width=2`` the LLVM-vectorized loop is
"only 23% slower than the loop vectorized by GCC at compile-time", the
difference caused by unaligned memory accesses.
"""

import pytest

from conftest import record
from repro.bench.harness import stencil_arg
from repro.ir.passes import O3Options
from repro.jit import BinaryTransformer
from repro.lift import FunctionSignature
from repro.lift.fixation import FixedMemory
from repro.stencil.jacobi import matrices_equal
from repro.stencil.sources import LINE_SIGNATURE

_CYCLES = {}


def _measure(ws, kernel_addr, reference):
    ws.sim.invalidate_code()
    ws.reset_matrices()
    stats = ws.run_sweeps(kernel_addr, line=True, stencil_arg=ws.flat.addr,
                          sweeps=1)
    return stats


@pytest.mark.parametrize("variant", ["gcc-vectorized", "scalar-fix", "forced-vec"])
def test_forced_vectorization(benchmark, workspace, reference, variant):
    ws = workspace
    sig = FunctionSignature(tuple(LINE_SIGNATURE), None)
    if variant == "gcc-vectorized":
        addr = ws.image.symbol("line_direct")
    else:
        force = 2 if variant == "forced-vec" else 0
        tx = BinaryTransformer(ws.image,
                               o3_options=O3Options(force_vector_width=force))
        res = tx.llvm_fixed("line_flat", sig,
                            {0: FixedMemory(ws.flat.addr, ws.flat.size)},
                            name=f"k.fv.{variant}")
        addr = res.addr

    def sweep():
        ws.sim.invalidate_code()
        ws.reset_matrices()
        return ws.run_sweeps(addr, line=True,
                             stencil_arg=stencil_arg(ws, "flat"), sweeps=1)

    stats = benchmark.pedantic(sweep, rounds=2, iterations=1)
    per_cell = ws.cycles_per_cell(stats, sweeps=1)
    benchmark.extra_info["cycles_per_cell"] = round(per_cell, 2)
    _CYCLES[variant] = per_cell

    # correctness against the native direct kernel
    m2 = ws.read_matrix(2)
    ws.reset_matrices()
    ws.run_sweeps("line_direct", line=True, stencil_arg=0, sweeps=1)
    assert matrices_equal(m2, ws.read_matrix(2))

    if variant == "forced-vec":
        gcc = _CYCLES["gcc-vectorized"]
        scalar = _CYCLES["scalar-fix"]
        forced = _CYCLES["forced-vec"]
        slowdown = 100 * (forced / gcc - 1)
        record("Sec VI-B  forced vectorization of the lifted loop",
               f"gcc-vectorized={gcc:.1f}  scalar={scalar:.1f}  "
               f"forced={forced:.1f} cycles/cell -> forced is "
               f"{slowdown:+.1f}% vs GCC (paper: +23%)")
        assert forced < scalar            # forcing does vectorize profitably
        assert gcc < forced               # ... but unaligned accesses cost
        assert slowdown < 60              # same order as the paper's 23%
