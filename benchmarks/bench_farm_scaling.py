"""Compile-farm scaling benchmarks: throughput, warm hits, dispatch cost.

Four claims of the multi-process compile farm, each measured and asserted
(acceptance criteria of the farm PR):

1. **Cold throughput scaling** — a registration storm of K distinct
   jobs drained by N workers must reach at least
   ``0.5 x min(N, cpus) x thr_1`` jobs/s (linear scaling with a 50%
   efficiency floor, capped by the physical core count: on a 1-CPU CI
   box extra workers only add overlap, not parallel compile capacity).
2. **Warm shared-cache hit rate** — a *fresh* pool (new processes,
   nothing in memory) over the same disk store must serve 100% of the
   same storm from the shared cache, compiling nothing.
3. **Dispatch cost** — attaching a farm to a ``TieredEngine`` must leave
   the ``address()`` hot path untouched: p99 within 10% of the no-farm
   engine (the farm is only consulted at compile time, never at
   dispatch time).
4. **Lifter memoization** — workers lifting the same function for many
   fixation keys hit the facet/decode memos; the observed hit rates ride
   along in the report (satellite: memo hit rate surfaced per job).

Standalone (CI smoke): ``python bench_farm_scaling.py --quick --json
BENCH_farm.json``.
"""

import argparse
import gc
import json
import os
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

from repro import FarmClient, FarmPool, FunctionSignature, TieredEngine, \
    compile_c
from repro.farm import protocol as fp
from repro.guard.verify import GateOptions
from repro.ir.codegen import JITOptions
from repro.ir.passes import O3Options
from repro.obs.metrics import MetricsRegistry
from repro.tier import TierPolicy

MIN_SCALE_EFFICIENCY = 0.5   # thr_N >= 0.5 x min(N, cpus) x thr_1
MIN_WARM_HIT_RATE = 1.0      # fresh pool, same store: all warm
MAX_DISPATCH_P99_RATIO = 1.10  # farm-attached vs bare engine

SRC = ("long f(long a, long b) "
       "{ long s = 0; for (long i = 0; i < a; i++) s += i * b; return s; }")


#: signature-variant jobs appended to every storm: same machine code,
#: different lift keys.  A padded signature (unused trailing params) lifts
#: the identical bytes to a different module, so the module-stage disk
#: cache cannot serve it — the only way these jobs skip decoding is the
#: decoded-trace cache, which is exactly what they exist to exercise.
SIG_VARIANTS = 2


def _jobs(prog, client, count):
    """K distinct T1 jobs over one function (a registration storm's worth
    of fixation keys, what a line-kernel sweep produces) plus
    ``SIG_VARIANTS`` signature-variant re-lifts of the same bytes."""
    sig = FunctionSignature(("i", "i"), "i")
    o3 = O3Options.lightweight().replace(enable_inline=True)
    jobs = []
    for k in range(count):
        fixes = {1: k + 3}
        key = fp.compute_job_key(prog.image, "f", sig, fixes, (), (), 1,
                                 (), None, None, o3, JITOptions(),
                                 GateOptions())
        jobs.append(fp.CompileJob(
            key=key, name=f"f.storm{k}", tier=1, func="f", signature=sig,
            fixes=fp.freeze_fixes(fixes), mem_regions=(), probes=(),
            dbrew_func=None, ladder=(),
            image_key=client.ensure_image(prog.image),
            lift=fp.freeze_lift_options(None), o3=o3, jit=JITOptions()))
    for extra in range(SIG_VARIANTS):
        sig_v = FunctionSignature(("i",) * (3 + extra), "i")
        key = fp.compute_job_key(prog.image, "f", sig_v, None, (), (), 1,
                                 (), None, None, o3, JITOptions(),
                                 GateOptions())
        jobs.append(fp.CompileJob(
            key=key, name=f"f.sigv{extra}", tier=1, func="f",
            signature=sig_v, fixes=None, mem_regions=(), probes=(),
            dbrew_func=None, ladder=(),
            image_key=client.ensure_image(prog.image),
            lift=fp.freeze_lift_options(None), o3=o3, jit=JITOptions()))
    return jobs


def _drain_storm(prog, disk_dir, workers, count):
    """Submit ``count`` jobs through a fresh pool; return metrics."""
    registry = MetricsRegistry()
    pool = FarmPool(workers=workers, disk_dir=disk_dir,
                    registry=registry)
    client = FarmClient(pool, timeout=600.0, registry=registry)
    try:
        jobs = _jobs(prog, client, count)
        total_jobs = len(jobs)
        gc.disable()
        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=total_jobs) as tp:
            results = list(tp.map(client.compile, jobs))
        elapsed = time.perf_counter() - t0
        gc.enable()
        ok = sum(1 for r in results if r is not None and r.ok)
        warm = sum(1 for r in results
                   if r is not None and r.cache_stage == "farm")
        snap = registry.snapshot()

        def rate(stem):
            hits = snap.get(f"farm.worker.lift.{stem}.hits", 0)
            misses = snap.get(f"farm.worker.lift.{stem}.misses", 0)
            total = hits + misses
            return (hits / total) if total else None

        trace_hits = (snap.get("farm.worker.lift.decode_trace.hits", 0)
                      + snap.get("farm.worker.lift.decode_trace.store_hits",
                                 0))
        return {
            "workers": workers,
            "jobs": total_jobs,
            "ok": ok,
            "seconds": elapsed,
            "throughput_per_s": ok / elapsed if elapsed > 0 else 0.0,
            "warm_hits": warm,
            "warm_hit_rate": warm / total_jobs if total_jobs else 0.0,
            "batches": pool.snapshot()["batches"],
            "facet_hit_rate": rate("facet_cache"),
            "decode_memo_hit_rate": rate("decode_memo"),
            "decode_trace_hit_rate": rate("decode_trace"),
            "decode_trace_hits": trace_hits,
        }
    finally:
        pool.close()


def bench_throughput_scaling(count=8, workers=4):
    """Cold 1-worker vs cold N-worker storms, then a warm storm through a
    fresh pool over the N-worker run's store."""
    prog = compile_c(SRC)
    with tempfile.TemporaryDirectory(prefix="repro-farm-bench-") as d1, \
            tempfile.TemporaryDirectory(prefix="repro-farm-bench-") as dn:
        one = _drain_storm(prog, d1, 1, count)
        many = _drain_storm(prog, dn, workers, count)
        warm = _drain_storm(prog, dn, workers, count)  # fresh processes
    cpus = os.cpu_count() or 1
    required = (MIN_SCALE_EFFICIENCY * min(workers, cpus)
                * one["throughput_per_s"])
    return {
        "cold_1": one,
        "cold_n": many,
        "warm": warm,
        "cpus": cpus,
        "required_throughput_per_s": required,
        "scale_ok": many["throughput_per_s"] >= required,
    }


def _dispatch_p99(engine_kwargs, prog, samples):
    """p99 of ``address()`` on an engine that never promotes (thresholds
    out of reach): the pure hot path, farm attached or not."""
    with TieredEngine(prog.image,
                      policy=TierPolicy(promote_calls=(10**9, 10**9)),
                      **engine_kwargs) as eng:
        h = eng.register("f", FunctionSignature(("i", "i"), "i"))
        for _ in range(1_000):
            h.address()
        lat = []
        for _ in range(samples):
            t0 = time.perf_counter_ns()
            h.address()
            lat.append(time.perf_counter_ns() - t0)
    lat.sort()
    return lat[int(len(lat) * 0.99)]


def bench_dispatch_overhead(samples=20_000, repeats=3):
    """Farm-attached vs bare engine dispatch p99 (best of ``repeats`` each
    to shed scheduler noise on shared CI boxes)."""
    prog = compile_c(SRC)
    with tempfile.TemporaryDirectory(prefix="repro-farm-bench-") as d:
        pool = FarmPool(workers=1, disk_dir=d, registry=MetricsRegistry())
        client = FarmClient(pool, registry=MetricsRegistry())
        try:
            gc.disable()
            bare = min(_dispatch_p99({}, prog, samples)
                       for _ in range(repeats))
            farm = min(_dispatch_p99({"farm": client}, prog, samples)
                       for _ in range(repeats))
            gc.enable()
        finally:
            pool.close()
    return {
        "samples": samples,
        "bare_p99_ns": bare,
        "farm_p99_ns": farm,
        "ratio": farm / bare if bare else float("inf"),
    }


# -- harness ----------------------------------------------------------------


def run_all(*, quick: bool = False) -> dict:
    report = {
        "scaling": bench_throughput_scaling(
            count=6 if quick else 12, workers=2 if quick else 4),
        "dispatch": bench_dispatch_overhead(
            samples=10_000 if quick else 20_000),
        "quick": quick,
    }
    s, d = report["scaling"], report["dispatch"]
    report["pass"] = {
        "all_jobs_compiled":
            s["cold_1"]["ok"] == s["cold_1"]["jobs"]
            and s["cold_n"]["ok"] == s["cold_n"]["jobs"],
        "cold_scaling_50pct_linear_cpu_capped": s["scale_ok"],
        "warm_hit_rate_full":
            s["warm"]["warm_hit_rate"] >= MIN_WARM_HIT_RATE,
        "dispatch_p99_within_10pct":
            d["ratio"] <= MAX_DISPATCH_P99_RATIO,
        # per-instruction decode-memo traffic is absorbed by the
        # module-stage disk cache in a same-key storm, so only the facet
        # memo must show hits...
        "lifter_memo_hits_observed":
            (s["cold_n"]["facet_hit_rate"] or 0) > 0,
        # ...but the signature-variant jobs force full re-lifts of the
        # same bytes, which must be served by the decoded-trace cache:
        # cold_1 is sequential (one worker), so its hits are deterministic
        "decode_trace_hits_observed":
            s["cold_1"]["decode_trace_hits"] > 0,
    }
    return report


def _fmt_rate(v):
    return "n/a" if v is None else f"{v:.0%}"


def _report_lines(r: dict) -> list[str]:
    s, d = r["scaling"], r["dispatch"]
    one, many, warm = s["cold_1"], s["cold_n"], s["warm"]
    return [
        f"cold 1w      {one['throughput_per_s']:6.2f} jobs/s   "
        f"({one['jobs']} jobs in {one['seconds']:.1f}s, "
        f"{one['batches']} batches)",
        f"cold {many['workers']}w      {many['throughput_per_s']:6.2f} jobs/s   "
        f"required >= {s['required_throughput_per_s']:.2f} "
        f"({s['cpus']} cpu(s) visible)",
        f"warm fresh   {warm['warm_hit_rate']:.0%} shared-cache hits   "
        f"({warm['throughput_per_s']:6.2f} jobs/s)",
        f"dispatch     bare p99 {d['bare_p99_ns']:5d} ns   "
        f"farm p99 {d['farm_p99_ns']:5d} ns   ratio {d['ratio']:.3f}x",
        f"lift memos   facet {_fmt_rate(many['facet_hit_rate'])} hit   "
        f"decode {_fmt_rate(many['decode_memo_hit_rate'])} hit "
        f"(cold {many['workers']}w round)",
        f"decode trace {_fmt_rate(one['decode_trace_hit_rate'])} hit, "
        f"{one['decode_trace_hits']} cross-job hit(s) (cold 1w round)",
    ]


def test_farm_targets():
    from conftest import record

    r = run_all(quick=True)
    for line in _report_lines(r):
        record("Compile farm (multi-process rewrite service)", line)
    assert all(r["pass"].values()), r["pass"]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="fewer jobs / fewer workers (CI smoke)")
    ap.add_argument("--json", metavar="PATH",
                    help="write the full metric report as JSON")
    args = ap.parse_args(argv)

    r = run_all(quick=args.quick)
    for line in _report_lines(r):
        print(line)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(r, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    failed = [k for k, ok in r["pass"].items() if not ok]
    if failed:
        print(f"FAIL: {', '.join(failed)}")
        return 1
    print("OK: " + ", ".join(sorted(r["pass"])))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
